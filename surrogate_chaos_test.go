package aide

import (
	"sync"
	"testing"
	"time"

	"aide/internal/faults"
	"aide/internal/remote"
	"aide/internal/vm"
)

// chaosTenant is one tenant of the multi-tenant chaos run: a raw client
// VM whose transport runs through a fault injector, so the test can sever
// exactly one tenant's connection while the others are mid-call.
type chaosTenant struct {
	vm   *vm.VM
	peer *remote.Peer
	inj  *faults.Transport
	th   *vm.Thread
	doc  vm.ObjectID
}

// TestMultiTenantChaosSever is the multi-tenant blast-radius test: ten
// concurrent tenant sessions hammer one surrogate, one tenant's link is
// severed hard mid-workload, and the isolation contract must hold — every
// other tenant completes its exactly-once append sequence untouched, the
// victim's session is reaped, and the survivors' distributed-GC release
// ledgers stay clean (every decref sent exactly once, none dropped).
func TestMultiTenantChaosSever(t *testing.T) {
	const (
		tenants = 10
		victim  = 3
		appends = 60
	)
	reg := demoRegistry(t)
	s := NewSurrogate(reg, WithHeap(64<<20))
	defer func() {
		if err := s.Close(); err != nil {
			t.Errorf("close surrogate: %v", err)
		}
	}()

	cts := make([]*chaosTenant, tenants)
	for i := range cts {
		cv := vm.New(reg, vm.Config{Role: vm.RoleClient, HeapCapacity: 4 << 20})
		ct, st := remote.NewChannelPair()
		prof := faults.Profile{Seed: int64(i + 1)}
		if i == victim {
			// Slow the victim's link so the sever reliably lands while a
			// call is in flight rather than between calls.
			prof.DelayRate = 1.0
			prof.DelayMax = 2 * time.Millisecond
		}
		inj := faults.Wrap(ct, prof)
		s.Serve(st)
		p := remote.NewPeer(cv, inj, remote.Options{
			Workers:     2,
			RetryMax:    4,
			RetryBase:   100 * time.Microsecond,
			CallTimeout: 5 * time.Second,
		})
		cts[i] = &chaosTenant{vm: cv, peer: p, inj: inj, th: cv.NewThread()}
		t.Cleanup(func() { _ = p.Close() })

		id, err := cts[i].th.New("Doc", 16<<10)
		if err != nil {
			t.Fatalf("tenant %d new: %v", i, err)
		}
		cv.SetRoot("doc", id)
		cts[i].doc = id
		if _, _, err := p.Offload([]string{"Doc"}); err != nil {
			t.Fatalf("tenant %d offload: %v", i, err)
		}
	}
	waitSessions(t, s, tenants)

	// Every tenant appends concurrently; the victim's link is severed
	// once it is provably mid-workload. Survivor appends assert the
	// exactly-once sequence k*delta on every call, so a lost, duplicated,
	// or cross-tenant-corrupted execution fails loudly at the exact op.
	var (
		wg            sync.WaitGroup
		victimStarted = make(chan struct{})
		victimOps     int
		victimErr     error
	)
	for i := range cts {
		i, rt := i, cts[i]
		wg.Add(1)
		go func() {
			defer wg.Done()
			delta := int64(i+1) * 10
			for k := 1; k <= appends; k++ {
				ret, err := rt.th.Invoke(rt.doc, "append", Int(delta))
				if i == victim {
					if k == 5 {
						close(victimStarted) // sever fires while we keep calling
					}
					if err != nil {
						victimOps, victimErr = k-1, err
						return // severed mid-call: expected
					}
				} else if err != nil {
					t.Errorf("tenant %d append %d: %v", i, k, err)
					return
				}
				if err == nil && ret.I != int64(k)*delta {
					t.Errorf("tenant %d append %d returned %d, want %d: isolation broken", i, k, ret.I, int64(k)*delta)
					return
				}
			}
			if i == victim {
				victimOps = appends
			}
		}()
	}
	<-victimStarted
	if err := cts[victim].inj.Sever(); err != nil {
		t.Fatalf("sever: %v", err)
	}
	wg.Wait()
	if victimErr == nil {
		t.Log("victim finished its workload before the sever landed; blast-radius check still valid")
	} else {
		t.Logf("victim severed after %d ops: %v", victimOps, victimErr)
	}

	// The victim's session is reaped; the nine survivors remain admitted
	// and their state is exactly what each wrote.
	waitSessions(t, s, tenants-1)
	for i, rt := range cts {
		if i == victim {
			continue
		}
		got, err := rt.th.GetField(rt.doc, "len")
		if err != nil {
			t.Fatalf("tenant %d final read: %v", i, err)
		}
		if want := int64(appends) * int64(i+1) * 10; got.I != want {
			t.Fatalf("tenant %d final = %d, want %d", i, got.I, want)
		}
	}

	// Release ledger: every survivor drops its root; the stub collection
	// must emit exactly one decref per object and lose none, even with
	// the victim's wreckage being reaped concurrently.
	for i, rt := range cts {
		if i == victim {
			continue
		}
		rt.th.ClearTemps()
		rt.vm.SetRoot("doc", vm.InvalidObject)
		rt.vm.Collect()
	}
	deadline := time.Now().Add(5 * time.Second)
	for i, rt := range cts {
		if i == victim {
			continue
		}
		for {
			cs := rt.peer.Stats()
			if cs.ReleasesDropped > 0 {
				t.Fatalf("tenant %d lost %d releases", i, cs.ReleasesDropped)
			}
			if cs.ReleasesSent > 1 {
				t.Fatalf("tenant %d sent %d releases for one object: double release", i, cs.ReleasesSent)
			}
			if cs.ReleasesSent == 1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("tenant %d release never flushed (sent %d)", i, cs.ReleasesSent)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	if st := s.Stats(); st.Active != tenants-1 || st.Admitted != tenants {
		t.Fatalf("stats = %+v, want %d active of %d admitted", st, tenants-1, tenants)
	}
}
