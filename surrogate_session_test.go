package aide

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"aide/internal/remote"
	"aide/internal/vm"
)

// rawTenant is one tenant session driven below the Client layer: a bare
// client VM and peer, so typed wire errors reach the test unfiltered by
// the Client's disconnect failover.
type rawTenant struct {
	vm   *vm.VM
	peer *remote.Peer
	th   *vm.Thread
	doc  vm.ObjectID
}

// attachTenant connects a fresh raw tenant to the surrogate over an
// in-memory transport. The tenant is in the lobby until its first work
// request (or explicit Attach) runs admission.
func attachTenant(t *testing.T, s *Surrogate, reg *Registry) *rawTenant {
	t.Helper()
	cv := vm.New(reg, vm.Config{Role: vm.RoleClient, HeapCapacity: 4 << 20})
	ct, st := remote.NewChannelPair()
	s.Serve(st)
	p := remote.NewPeer(cv, ct, remote.Options{Workers: 2, CallTimeout: 5 * time.Second})
	t.Cleanup(func() { _ = p.Close() })
	return &rawTenant{vm: cv, peer: p, th: cv.NewThread()}
}

// offloadDoc gives the tenant one offloaded Doc object of the given heap
// size, rooted so it survives client collections.
func (rt *rawTenant) offloadDoc(t *testing.T, size int64) {
	t.Helper()
	id, err := rt.th.New("Doc", size)
	if err != nil {
		t.Fatalf("new Doc: %v", err)
	}
	rt.vm.SetRoot("doc", id)
	rt.doc = id
	if _, _, err := rt.peer.Offload([]string{"Doc"}); err != nil {
		t.Fatalf("offload: %v", err)
	}
}

// appendN runs n cumulative appends and asserts the exactly-once
// sequence: the k-th append must observe k*delta.
func (rt *rawTenant) appendN(t *testing.T, n int, delta int64) {
	t.Helper()
	for k := 1; k <= n; k++ {
		ret, err := rt.th.Invoke(rt.doc, "append", Int(delta))
		if err != nil {
			t.Fatalf("append %d: %v", k, err)
		}
		if ret.I != int64(k)*delta {
			t.Fatalf("append %d returned %d, want %d: another tenant's state bled in", k, ret.I, int64(k)*delta)
		}
	}
}

func waitSessions(t *testing.T, s *Surrogate, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.Sessions() != want && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := s.Sessions(); got != want {
		t.Fatalf("sessions = %d, want %d", got, want)
	}
}

// TestSessionLifecycle is the table-driven attach/admit/detach/reap walk:
// tenants attach into the lobby (not yet admitted), admission happens on
// the first work request or explicit handshake, and closing a tenant's
// connection reaps its session and releases its capacity.
func TestSessionLifecycle(t *testing.T) {
	cases := []struct {
		name    string
		tenants int
		// explicitAttach admits via the MsgAttach handshake instead of
		// the first work request.
		explicitAttach bool
		// closeFirst reaps this many tenants before the final count.
		closeFirst int
	}{
		{name: "single_lazy_admit", tenants: 1},
		{name: "single_handshake", tenants: 1, explicitAttach: true},
		{name: "many_lazy_admit", tenants: 4, closeFirst: 2},
		{name: "many_handshake", tenants: 8, explicitAttach: true, closeFirst: 3},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			reg := demoRegistry(t)
			s := NewSurrogate(reg, WithHeap(32<<20))
			defer func() {
				if err := s.Close(); err != nil {
					t.Errorf("close: %v", err)
				}
			}()

			tenants := make([]*rawTenant, tc.tenants)
			for i := range tenants {
				tenants[i] = attachTenant(t, s, reg)
			}
			// Lobby: connected but nothing admitted, and bookkeeping
			// requests (ping, info) must flow regardless.
			if got := s.Sessions(); got != 0 {
				t.Fatalf("sessions before any work = %d, want 0", got)
			}
			for _, rt := range tenants {
				if err := rt.peer.Ping(); err != nil {
					t.Fatalf("lobby ping: %v", err)
				}
			}
			if got := s.Sessions(); got != 0 {
				t.Fatalf("bookkeeping traffic admitted a session: %d", got)
			}

			for i, rt := range tenants {
				if tc.explicitAttach {
					info, err := rt.peer.Attach(context.Background())
					if err != nil {
						t.Fatalf("attach: %v", err)
					}
					if info.Sessions != int64(i+1) {
						t.Fatalf("attach reply sessions = %d, want %d", info.Sessions, i+1)
					}
				} else {
					rt.offloadDoc(t, 4096)
				}
			}
			waitSessions(t, s, tc.tenants)
			if st := s.Stats(); st.Admitted != int64(tc.tenants) || st.Active != tc.tenants {
				t.Fatalf("stats = %+v, want %d admitted/active", st, tc.tenants)
			}

			for i := 0; i < tc.closeFirst; i++ {
				if err := tenants[i].peer.Close(); err != nil {
					t.Fatalf("close tenant %d: %v", i, err)
				}
			}
			// Reaping is asynchronous: the surrogate notices the dropped
			// transport and releases the session's slot.
			waitSessions(t, s, tc.tenants-tc.closeFirst)
			// Survivors still work after their neighbors were reaped.
			for _, rt := range tenants[tc.closeFirst:] {
				if err := rt.peer.Ping(); err != nil {
					t.Fatalf("survivor ping after reap: %v", err)
				}
			}
		})
	}
}

// TestSessionAdmissionRejection is the table-driven rejection matrix:
// each refusal path must produce its typed sentinel on the wire, the
// decision must be sticky, and bookkeeping traffic must keep flowing so
// the fleet can still probe a full surrogate.
func TestSessionAdmissionRejection(t *testing.T) {
	cases := []struct {
		name string
		opts []Option
		// seed sessions admitted before the probe tenant arrives.
		seed int
		want error
	}{
		{
			name: "session_cap",
			opts: []Option{WithMaxSessions(2)},
			seed: 2,
			want: ErrAdmissionRejected,
		},
		{
			name: "heap_quota",
			opts: []Option{WithHeap(4 << 20), WithSessionQuota(2 << 20)},
			seed: 2, // 2 x 2MiB commits the whole 4MiB budget
			want: ErrAdmissionRejected,
		},
		{
			name: "degraded_sheds",
			opts: []Option{WithHealthCheck(func() error { return errors.New("overheating") })},
			seed: 0,
			want: ErrShed,
		},
		{
			name: "degraded_sheds_before_cap",
			opts: []Option{
				WithMaxSessions(1),
				WithHealthCheck(func() error { return errors.New("overheating") }),
			},
			seed: 0, // even a full-and-degraded surrogate reports shed, not the cap
			want: ErrShed,
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			reg := demoRegistry(t)
			s := NewSurrogate(reg, append([]Option{WithHeap(32 << 20)}, tc.opts...)...)
			defer func() {
				if err := s.Close(); err != nil {
					t.Errorf("close: %v", err)
				}
			}()
			for i := 0; i < tc.seed; i++ {
				seed := attachTenant(t, s, reg)
				if _, err := seed.peer.Attach(context.Background()); err != nil {
					t.Fatalf("seed attach %d: %v", i, err)
				}
			}

			probe := attachTenant(t, s, reg)
			_, err := probe.peer.Attach(context.Background())
			if !errors.Is(err, tc.want) {
				t.Fatalf("attach error = %v, want %v", err, tc.want)
			}
			var re *remote.RemoteError
			if !errors.As(err, &re) || re.Code == remote.CodeNone {
				t.Fatalf("rejection carried no wire error code: %v", err)
			}

			// Sticky: a later work request gets the same typed answer, not
			// a second admission run.
			if _, err := probe.th.New("Doc", 256); err != nil {
				t.Fatalf("local new: %v", err)
			}
			if _, _, err := probe.peer.Offload([]string{"Doc"}); !errors.Is(err, tc.want) {
				t.Fatalf("post-rejection offload error = %v, want %v", err, tc.want)
			}
			// Bookkeeping still flows: probes must rank a full surrogate.
			if err := probe.peer.Ping(); err != nil {
				t.Fatalf("rejected tenant ping: %v", err)
			}
			if _, err := probe.peer.Info(); err != nil {
				t.Fatalf("rejected tenant info: %v", err)
			}
			if got := s.Sessions(); got != tc.seed {
				t.Fatalf("sessions after rejection = %d, want %d", got, tc.seed)
			}
			wantStats := SurrogateStats{Active: tc.seed, Admitted: int64(tc.seed)}
			if tc.want == ErrShed {
				wantStats.Shed = 1
			} else {
				wantStats.Rejected = 1
			}
			if st := s.Stats(); st != wantStats {
				t.Fatalf("stats = %+v, want %+v", st, wantStats)
			}
		})
	}
}

// TestSessionRejectionClientVisible proves the acceptance criterion that
// admission rejections are typed all the way up: the public Client sees
// errors.Is(err, aide.ErrAdmissionRejected) from Attach, not a generic
// transport failure.
func TestSessionRejectionClientVisible(t *testing.T) {
	reg := demoRegistry(t)
	s := NewSurrogate(reg, WithMaxSessions(1))
	defer func() {
		if err := s.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	first := attachTenant(t, s, reg)
	if _, err := first.peer.Attach(context.Background()); err != nil {
		t.Fatalf("first attach: %v", err)
	}

	c := NewClient(reg, WithHeap(1<<20))
	defer c.Close()
	ct, st := remote.NewChannelPair()
	s.Serve(st)
	err := c.Attach(ct)
	if !errors.Is(err, ErrAdmissionRejected) {
		t.Fatalf("client attach error = %v, want ErrAdmissionRejected", err)
	}
	// The rejected client is fully usable locally afterwards.
	th := c.Thread()
	id, err := th.New("Doc", 1024)
	if err != nil {
		t.Fatalf("local new after rejection: %v", err)
	}
	if _, err := th.Invoke(id, "append", Int(5)); err != nil {
		t.Fatalf("local invoke after rejection: %v", err)
	}
}

// TestSessionQuotaReleasedOnReap verifies capacity accounting across the
// session lifecycle: a reaped tenant's quota returns to the budget, so
// the next tenant admits where it would have been rejected.
func TestSessionQuotaReleasedOnReap(t *testing.T) {
	reg := demoRegistry(t)
	s := NewSurrogate(reg, WithHeap(4<<20), WithSessionQuota(2<<20))
	defer func() {
		if err := s.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	a := attachTenant(t, s, reg)
	b := attachTenant(t, s, reg)
	for _, rt := range []*rawTenant{a, b} {
		if _, err := rt.peer.Attach(context.Background()); err != nil {
			t.Fatalf("attach: %v", err)
		}
	}
	full := attachTenant(t, s, reg)
	if _, err := full.peer.Attach(context.Background()); !errors.Is(err, ErrAdmissionRejected) {
		t.Fatalf("attach at quota = %v, want ErrAdmissionRejected", err)
	}

	if err := a.peer.Close(); err != nil {
		t.Fatalf("close tenant: %v", err)
	}
	waitSessions(t, s, 1)
	next := attachTenant(t, s, reg)
	if _, err := next.peer.Attach(context.Background()); err != nil {
		t.Fatalf("attach after reap freed quota: %v", err)
	}
}

// TestEvictionOrdering pins the deterministic eviction policy: most live
// bytes first, ties broken toward the newest session.
func TestEvictionOrdering(t *testing.T) {
	t.Run("heaviest_first", func(t *testing.T) {
		reg := demoRegistry(t)
		s := NewSurrogate(reg, WithHeap(64<<20))
		defer func() {
			if err := s.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		}()
		light := attachTenant(t, s, reg)
		heavy := attachTenant(t, s, reg)
		light.offloadDoc(t, 8<<10)
		heavy.offloadDoc(t, 4<<20)
		waitSessions(t, s, 2)

		if got := s.EvictSessions(1); got != 1 {
			t.Fatalf("evicted %d sessions, want 1", got)
		}
		waitForPeerDown(t, heavy.peer, "heavy tenant")
		if err := light.peer.Ping(); err != nil {
			t.Fatalf("light tenant was disturbed by the eviction: %v", err)
		}
		if st := s.Stats(); st.Evicted != 1 || st.Active != 1 {
			t.Fatalf("stats = %+v, want 1 evicted / 1 active", st)
		}
	})
	t.Run("ties_evict_newest", func(t *testing.T) {
		reg := demoRegistry(t)
		s := NewSurrogate(reg, WithHeap(64<<20))
		defer func() {
			if err := s.Close(); err != nil {
				t.Errorf("close: %v", err)
			}
		}()
		elder := attachTenant(t, s, reg)
		newer := attachTenant(t, s, reg)
		elder.offloadDoc(t, 64<<10)
		newer.offloadDoc(t, 64<<10)
		waitSessions(t, s, 2)

		if got := s.EvictSessions(1); got != 1 {
			t.Fatalf("evicted %d sessions, want 1", got)
		}
		waitForPeerDown(t, newer.peer, "newer tenant")
		if err := elder.peer.Ping(); err != nil {
			t.Fatalf("longest-standing tenant evicted on a tie: %v", err)
		}
	})
}

func waitForPeerDown(t *testing.T, p *remote.Peer, who string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if p.Ping() != nil {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("%s still reachable after eviction", who)
}

// TestCrossTenantHeapIsolation is the non-interference core: tenants
// hammer same-named state on one surrogate and each must read back
// exactly what it wrote, while the surrogate's aggregate heap accounts
// for every tenant against the shared budget.
func TestCrossTenantHeapIsolation(t *testing.T) {
	reg := demoRegistry(t)
	s := NewSurrogate(reg, WithHeap(64<<20))
	defer func() {
		if err := s.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()

	const tenants = 4
	rts := make([]*rawTenant, tenants)
	for i := range rts {
		rts[i] = attachTenant(t, s, reg)
		rts[i].offloadDoc(t, 32<<10)
	}
	// Interleave appends round-robin with per-tenant deltas: any heap or
	// stub bleed between session VMs breaks a sequence immediately.
	for round := 1; round <= 10; round++ {
		for i, rt := range rts {
			delta := int64(i+1) * 100
			ret, err := rt.th.Invoke(rt.doc, "append", Int(delta))
			if err != nil {
				t.Fatalf("tenant %d round %d: %v", i, round, err)
			}
			if want := int64(round) * delta; ret.I != want {
				t.Fatalf("tenant %d round %d read %d, want %d", i, round, ret.I, want)
			}
		}
	}
	for i, rt := range rts {
		got, err := rt.th.GetField(rt.doc, "len")
		if err != nil {
			t.Fatalf("tenant %d final read: %v", i, err)
		}
		if want := int64(i+1) * 100 * 10; got.I != want {
			t.Fatalf("tenant %d final = %d, want %d", i, got.I, want)
		}
	}

	// The aggregate heap sees every tenant's objects against the shared
	// budget, and per-tenant stats stay per-tenant: one tenant's objects
	// are not visible in another's session VM.
	h := s.Heap()
	if h.Capacity != 64<<20 {
		t.Fatalf("aggregate capacity = %d, want the surrogate budget", h.Capacity)
	}
	if h.Objects < tenants {
		t.Fatalf("aggregate objects = %d, want >= %d (one Doc per tenant)", h.Objects, tenants)
	}
}

// TestSurrogateHealthz pins the health surface the shedding decision and
// the /healthz endpoint share: nil while healthy, the probe's error while
// degraded, and a closed error after Close.
func TestSurrogateHealthz(t *testing.T) {
	reg := demoRegistry(t)
	sick := errors.New("thermal throttling")
	var degraded bool
	s := NewSurrogate(reg, WithHealthCheck(func() error {
		if degraded {
			return sick
		}
		return nil
	}))
	if err := s.Healthz(); err != nil {
		t.Fatalf("healthy Healthz = %v", err)
	}
	if s.Clock() != 0 {
		t.Fatalf("idle surrogate clock = %v, want 0", s.Clock())
	}
	degraded = true
	if err := s.Healthz(); !errors.Is(err, sick) {
		t.Fatalf("degraded Healthz = %v, want the probe error", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := s.Healthz(); err == nil {
		t.Fatal("closed surrogate reported healthy")
	}
}

// TestSurrogateCloseTearsDownSessions verifies Close against live
// tenants: every session ends, every goroutine joins (the package leak
// gate enforces the latter), and late Serve calls are refused cleanly.
func TestSurrogateCloseTearsDownSessions(t *testing.T) {
	reg := demoRegistry(t)
	s := NewSurrogate(reg, WithHeap(32<<20))
	tenants := make([]*rawTenant, 3)
	for i := range tenants {
		tenants[i] = attachTenant(t, s, reg)
		tenants[i].offloadDoc(t, 4096)
	}
	waitSessions(t, s, 3)
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if got := s.Sessions(); got != 0 {
		t.Fatalf("sessions after close = %d, want 0", got)
	}
	for i, rt := range tenants {
		waitForPeerDown(t, rt.peer, fmt.Sprintf("tenant %d after surrogate close", i))
	}
	// Serving a new transport after close must refuse, not leak.
	ct, st := remote.NewChannelPair()
	s.Serve(st)
	cv := vm.New(reg, vm.Config{Role: vm.RoleClient, HeapCapacity: 1 << 20})
	p := remote.NewPeer(cv, ct, remote.Options{Workers: 1, CallTimeout: time.Second})
	defer func() { _ = p.Close() }()
	if err := p.Ping(); err == nil {
		t.Fatal("ping succeeded against a closed surrogate")
	}
}
