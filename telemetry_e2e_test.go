package aide

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"testing"

	"aide/internal/telemetry"
)

// getBody fetches a URL and returns status and body.
func getBody(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// metricValue extracts a plain `name value` sample from Prometheus text.
func metricValue(t *testing.T, body, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(body, "\n") {
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[0] == name {
			v, err := strconv.ParseFloat(fields[1], 64)
			if err != nil {
				t.Fatalf("metric %s: bad value %q", name, fields[1])
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in exposition:\n%s", name, body)
	return 0
}

// TestTelemetryEndToEnd boots a surrogate and a TCP client with live
// telemetry on both sides, exposes each over HTTP, drives a workload,
// and scrapes the endpoints the way aide-stat (and CI) do.
func TestTelemetryEndToEnd(t *testing.T) {
	reg := demoRegistry(t)

	sReg, sTr := NewTelemetry(), NewTracer(64)
	sTr.SetEnabled(true)
	surrogate := NewSurrogate(reg, WithTelemetry(sReg, sTr))
	addr, err := surrogate.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer surrogate.Close()
	sSrv, err := telemetry.Serve("127.0.0.1:0", telemetry.Handler(sReg, sTr, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer sSrv.Close()

	cReg, cTr := NewTelemetry(), NewTracer(64)
	cTr.SetEnabled(true)
	client := NewClient(reg, WithHeap(1<<20), WithTelemetry(cReg, cTr))
	defer client.Close()
	cSrv, err := telemetry.Serve("127.0.0.1:0", telemetry.Handler(cReg, cTr, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer cSrv.Close()

	if err := client.AttachTCP(addr); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := client.Ping(); err != nil {
			t.Fatal(err)
		}
	}
	// A heavy Doc on the 1 MiB heap, then an explicit offload: exercises
	// the policy metrics, the migration path, and the repartition span.
	th := client.Thread()
	doc, err := th.New("Doc", 300<<10)
	if err != nil {
		t.Fatal(err)
	}
	client.VM().SetRoot("doc", doc)
	for i := 0; i < 3; i++ {
		if _, err := th.Invoke(doc, "append", Int(1)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := client.Offload(); err != nil {
		t.Fatal(err)
	}

	// Surrogate side: health and served-request accounting.
	sBase := "http://" + sSrv.Addr()
	if code, body := getBody(t, sBase+"/healthz"); code != http.StatusOK || body != "ok\n" {
		t.Fatalf("surrogate /healthz = %d %q, want 200 ok", code, body)
	}
	_, sMetrics := getBody(t, sBase+"/metrics")
	if v := metricValue(t, sMetrics, "aide_remote_requests_served_total"); v <= 0 {
		t.Fatalf("surrogate served %v requests, want > 0", v)
	}

	// Client side: sent-request accounting and the policy pipeline.
	cBase := "http://" + cSrv.Addr()
	_, cMetrics := getBody(t, cBase+"/metrics")
	if v := metricValue(t, cMetrics, "aide_remote_requests_sent_total"); v <= 0 {
		t.Fatalf("client sent %v requests, want > 0", v)
	}
	if v := metricValue(t, cMetrics, "aide_policy_partitions_total"); v <= 0 {
		t.Fatalf("partitioning pipeline ran %v times, want > 0", v)
	}
	if v := metricValue(t, cMetrics, "aide_vm_invocations_local_total"); v <= 0 {
		t.Fatalf("client local invocations = %v, want > 0", v)
	}
	if !strings.Contains(cMetrics, "# TYPE aide_remote_call_latency_seconds histogram") {
		t.Fatal("client exposition missing the call-latency histogram family")
	}

	// /metrics.json decodes into a snapshot with the same families.
	_, cJSON := getBody(t, cBase+"/metrics.json")
	var snap telemetry.Snapshot
	if err := json.Unmarshal([]byte(cJSON), &snap); err != nil {
		t.Fatalf("decode /metrics.json: %v", err)
	}
	if len(snap.Families) == 0 {
		t.Fatal("/metrics.json returned no families")
	}

	// /events returns the span ring; the client traced its RPCs.
	_, cEvents := getBody(t, cBase+"/events")
	var spans []telemetry.Span
	if err := json.Unmarshal([]byte(cEvents), &spans); err != nil {
		t.Fatalf("decode /events: %v", err)
	}
	rpcs := 0
	for _, s := range spans {
		if s.Kind == telemetry.SpanRPC {
			rpcs++
		}
	}
	if rpcs == 0 {
		t.Fatalf("client /events has no RPC spans: %+v", spans)
	}

	// A bad health hook turns /healthz into a 503.
	bad := telemetry.Handler(sReg, sTr, func() error { return fmt.Errorf("heap exhausted") })
	bSrv, err := telemetry.Serve("127.0.0.1:0", bad)
	if err != nil {
		t.Fatal(err)
	}
	defer bSrv.Close()
	if code, body := getBody(t, "http://"+bSrv.Addr()+"/healthz"); code != http.StatusServiceUnavailable ||
		!strings.Contains(body, "heap exhausted") {
		t.Fatalf("unhealthy /healthz = %d %q, want 503 with cause", code, body)
	}
}
