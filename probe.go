package aide

import (
	"context"
	"fmt"
	"net"
	"sort"
	"time"

	"aide/internal/remote"
	"aide/internal/telemetry"
	"aide/internal/vm"
)

// SurrogateProbe is the result of probing one candidate surrogate.
type SurrogateProbe struct {
	Addr string
	Info remote.PeerInfo
	Err  error
}

// ProbeSurrogates dials each candidate surrogate and measures its
// round-trip latency and available resources. The paper's vision (§2) has
// clients "determine which surrogate(s) are the most appropriate to be
// used based on factors such as latency of access and resource
// availability"; this is that probe. Unreachable candidates carry a
// non-nil Err.
func ProbeSurrogates(addrs []string) []SurrogateProbe {
	return ProbeSurrogatesContext(context.Background(), addrs)
}

// ProbeSurrogatesContext is ProbeSurrogates bounded by ctx: the dials
// and resource queries abort when ctx is cancelled or its deadline
// expires (candidates not yet probed report the cancellation error).
func ProbeSurrogatesContext(ctx context.Context, addrs []string) []SurrogateProbe {
	return probeSurrogates(ctx, nil, addrs)
}

// probeSurrogates implements ProbeSurrogates, emitting one SpanProbe per
// candidate (reachable or not) when the tracer is enabled: the span's
// duration is the measured RTT for a successful probe and the elapsed
// dial-plus-query time for a failed one.
func probeSurrogates(ctx context.Context, tr *telemetry.Tracer, addrs []string) []SurrogateProbe {
	probes := make([]SurrogateProbe, len(addrs))
	// Probes are resource queries only; any registry works.
	reg := vm.NewRegistry()
	for i, addr := range addrs {
		probes[i].Addr = addr
		traced := tr.Enabled()
		var start time.Time
		if traced {
			start = time.Now()
		}
		info, err := probeOne(ctx, reg, addr)
		if err != nil {
			probes[i].Err = err
		} else {
			probes[i].Info = info
		}
		if traced {
			dur := info.RTT
			if err != nil {
				dur = time.Since(start)
			}
			tr.Emit(telemetry.Span{
				Kind:  telemetry.SpanProbe,
				Note:  addr,
				Bytes: info.FreeBytes,
				Err:   err != nil,
				Start: start,
				Dur:   dur,
			})
		}
	}
	return probes
}

// probeOne dials one candidate and queries its resources under ctx
// (plus a 3 s dial cap so one dead candidate cannot stall the sweep).
func probeOne(ctx context.Context, reg *Registry, addr string) (remote.PeerInfo, error) {
	d := net.Dialer{Timeout: 3 * time.Second}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return remote.PeerInfo{}, fmt.Errorf("aide: probe %s: %w", addr, err)
	}
	v := vm.New(reg, vm.Config{Role: vm.RoleClient, HeapCapacity: 1 << 16})
	peer := remote.NewPeer(v, remote.NewConnTransport(conn), remote.Options{Workers: 1})
	info, err := peer.InfoContext(ctx)
	if cerr := peer.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return remote.PeerInfo{}, fmt.Errorf("aide: probe %s: %w", addr, err)
	}
	return info, nil
}

// RankSurrogates orders reachable probes best-first: lowest latency
// (bucketed at 500 µs so LAN jitter does not dominate), then fewest
// admitted sessions, then most free memory, then fastest CPU, then
// lexicographic address. Failed probes sort last. The address tie-break
// makes the ranking a pure function of the probe results — two callers
// seeing the same probes always rank candidates identically, so
// placement decisions built on the ranking are replay-testable.
func RankSurrogates(probes []SurrogateProbe) []SurrogateProbe {
	out := append([]SurrogateProbe(nil), probes...)
	bucket := func(d time.Duration) int64 { return int64(d / (500 * time.Microsecond)) }
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if (a.Err == nil) != (b.Err == nil) {
			return a.Err == nil
		}
		if a.Err != nil {
			return false
		}
		if ba, bb := bucket(a.Info.RTT), bucket(b.Info.RTT); ba != bb {
			return ba < bb
		}
		if a.Info.Sessions != b.Info.Sessions {
			return a.Info.Sessions < b.Info.Sessions
		}
		if a.Info.FreeBytes != b.Info.FreeBytes {
			return a.Info.FreeBytes > b.Info.FreeBytes
		}
		if a.Info.CPUSpeed != b.Info.CPUSpeed {
			return a.Info.CPUSpeed > b.Info.CPUSpeed
		}
		return a.Addr < b.Addr
	})
	return out
}

// AttachBestTCP probes every candidate surrogate, ranks them, and attaches
// the client to the best reachable one, returning its address.
func (c *Client) AttachBestTCP(addrs []string) (string, error) {
	return c.AttachBestTCPContext(context.Background(), addrs)
}

// AttachBestTCPContext is AttachBestTCP bounded by ctx: the probe sweep
// and the attach dials abort when ctx is cancelled or expires, so a
// reattach after a disconnection stays cancellable end to end. A
// candidate that rejects the attach (admission cap, load shedding, or
// the ErrDrained gate of a surrogate mid-handoff) falls through to the
// next-ranked one; the error reports the last failure when every
// reachable candidate refuses.
func (c *Client) AttachBestTCPContext(ctx context.Context, addrs []string) (string, error) {
	if len(addrs) == 0 {
		return "", fmt.Errorf("aide: no surrogate candidates")
	}
	ranked := RankSurrogates(probeSurrogates(ctx, c.tracer, addrs))
	if ranked[0].Err != nil {
		return "", fmt.Errorf("aide: no reachable surrogate: %w", ranked[0].Err)
	}
	var lastErr error
	for _, cand := range ranked {
		if cand.Err != nil {
			break // failed probes sort last; nothing reachable remains
		}
		if err := c.AttachTCPContext(ctx, cand.Addr); err != nil {
			lastErr = err
			if cerr := ctx.Err(); cerr != nil {
				return "", fmt.Errorf("aide: attach sweep: %w", cerr)
			}
			continue
		}
		return cand.Addr, nil
	}
	return "", fmt.Errorf("aide: every reachable surrogate refused the attach: %w", lastErr)
}
