package aide

import (
	"bytes"
	"context"
	"sync"
	"time"

	"aide/internal/remote"
	"aide/internal/snapshot"
	"aide/internal/telemetry"
	"aide/internal/vm"
)

// specCloneHeap sizes the shadow clone's heap: generous, because the
// clone holds a surrogate session that was sized to the surrogate's
// budget, not the constrained client's.
const specCloneHeap = 256 << 20

// SpeculationStats reports the outcomes of speculative clone execution.
type SpeculationStats struct {
	// LocalWins counts races the local clone won (the connection was then
	// dropped and the clone's state promoted into the client VM);
	// RemoteWins races the remote call won; Misses speculation attempts
	// that fell back to remote-only execution (non-scalar call shape,
	// unseedable clone, or a clone-side failure).
	LocalWins  int64
	RemoteWins int64
	Misses     int64
}

// SpeculationStats returns the client's speculation outcome counters.
func (c *Client) SpeculationStats() SpeculationStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return SpeculationStats{
		LocalWins:  c.specLocalWins,
		RemoteWins: c.specRemoteWins,
		Misses:     c.specMisses,
	}
}

// specPeer interposes between the client VM and a surrogate connection
// (WithSpeculation). While the connection is healthy every call passes
// straight through. While it is degraded — timing out but not yet
// disconnected — invocations race a local shadow clone of the session
// against the remote call and the first result wins: a local win
// promotes the clone's state into the client VM and abandons the
// session (the remote execution's effects die with it), a remote win
// returns the remote result. Exactly one side's effects survive either
// way, because the clone is private until promoted and the session is
// abandoned wholesale when it loses.
type specPeer struct {
	c     *Client
	inner *remote.Peer

	// mu guards clone: the shadow session VM seeded from the last pulled
	// snapshot, nil when no speculation is in progress. Dropped whenever
	// a passthrough mutates the remote session (the clone is then stale).
	mu    sync.Mutex
	clone *vm.VM
}

func newSpecPeer(c *Client, inner *remote.Peer) *specPeer {
	return &specPeer{c: c, inner: inner}
}

// dropClone discards the shadow clone; the next speculative call re-pulls
// a fresh snapshot.
func (sp *specPeer) dropClone() {
	sp.mu.Lock()
	sp.clone = nil
	sp.mu.Unlock()
}

// ensureClone returns the shadow clone, seeding it from a freshly pulled
// session snapshot when none is live.
func (sp *specPeer) ensureClone(ctx context.Context) (*vm.VM, error) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.clone != nil {
		return sp.clone, nil
	}
	img, err := sp.inner.PullSnapshot(ctx)
	if err != nil {
		return nil, err
	}
	im, err := snapshot.Decode(img)
	if err != nil {
		return nil, err
	}
	cl := vm.New(sp.c.reg, vm.Config{Role: vm.RoleSurrogate, HeapCapacity: specCloneHeap})
	if err := snapshot.Restore(cl, im); err != nil {
		return nil, err
	}
	sp.clone = cl
	return cl, nil
}

// scalarValues reports whether every value is free of object references;
// speculation only races calls whose inputs and output can be compared
// and returned without translating between object namespaces.
func scalarValues(vs []Value) bool {
	for _, v := range vs {
		if v.Kind == vm.KindRef || v.Kind == vm.KindDeferred {
			return false
		}
	}
	return true
}

// sameScalar compares two scalar results for the convergence check.
func sameScalar(a, b Value) bool {
	if a.Kind != b.Kind {
		return false
	}
	if a.Kind == vm.KindBytes {
		return bytes.Equal(a.Bytes, b.Bytes)
	}
	return a.I == b.I && a.F == b.F && a.B == b.B && a.S == b.S && a.Ref == b.Ref
}

// noteSpec records one race outcome ("local", "remote", "miss") in the
// client counters, the metrics registry, and the tracer.
func (c *Client) noteSpec(outcome string, start time.Time, traced bool, peerIdx int) {
	c.mu.Lock()
	switch outcome {
	case "local":
		c.specLocalWins++
	case "remote":
		c.specRemoteWins++
	default:
		c.specMisses++
	}
	c.mu.Unlock()
	switch outcome {
	case "local":
		c.pm.specLocalWins.Inc()
	case "remote":
		c.pm.specRemoteWins.Inc()
	default:
		c.pm.specMisses.Inc()
	}
	if traced {
		c.tracer.Emit(telemetry.Span{
			Kind: telemetry.SpanSpeculate, Note: outcome, Peer: peerIdx,
			Start: start, Dur: time.Since(start),
		})
	}
}

// InvokeRemote races the call against the shadow clone while the
// connection is degraded; otherwise it passes through (dropping any
// stale clone, since the passthrough mutates the remote session).
func (sp *specPeer) InvokeRemote(peerObj ObjectID, method string, args []Value) (Value, time.Duration, error) {
	if sp.inner.State() != remote.StateDegraded {
		sp.dropClone()
		return sp.inner.InvokeRemote(peerObj, method, args)
	}
	c := sp.c
	idx := sp.inner.VMIndex()
	traced := c.tracer.Enabled()
	var tStart time.Time
	if traced {
		tStart = time.Now()
	}
	if !scalarValues(args) {
		c.noteSpec("miss", tStart, traced, idx)
		return sp.inner.InvokeRemote(peerObj, method, args)
	}
	clone, err := sp.ensureClone(sp.inner.LifeContext())
	if err != nil {
		c.noteSpec("miss", tStart, traced, idx)
		return sp.inner.InvokeRemote(peerObj, method, args)
	}

	// Claim the race goroutine against Detach's join in the same critical
	// section that verifies the slot is still ours.
	c.mu.Lock()
	ok := idx >= 0 && idx < len(c.peers) && c.peers[idx] == sp.inner
	if ok {
		c.bg.Add(1)
	}
	c.mu.Unlock()
	if !ok {
		c.noteSpec("miss", tStart, traced, idx)
		return sp.inner.InvokeRemote(peerObj, method, args)
	}

	type remoteResult struct {
		v   Value
		d   time.Duration
		err error
	}
	rch := make(chan remoteResult, 1)
	go func() {
		defer c.bg.Done()
		v, d, rerr := sp.inner.InvokeRemote(peerObj, method, args)
		rch <- remoteResult{v, d, rerr}
	}()

	// Local attempt, inline on the calling thread. Snapshot restores keep
	// object IDs, so the peer-namespace target addresses the same object
	// in the clone. A clone-side failure (the call reached a back-stub to
	// the client, heap pressure) is a miss, never a verdict.
	lv, lerr := clone.NewThread().Invoke(peerObj, method, args...)
	if lerr != nil || !scalarValues([]Value{lv}) {
		sp.dropClone() // the failed attempt may have half-mutated the clone
		c.noteSpec("miss", tStart, traced, idx)
		r := <-rch
		return r.v, r.d, r.err
	}

	var r remoteResult
	haveRemote := false
	select {
	case r = <-rch:
		if r.err == nil {
			// The remote finished first with a verdict. Both sides applied
			// the same call; deterministic execution means the clone
			// converged with the session — keep it only when the results
			// agree.
			if !sameScalar(r.v, lv) {
				sp.dropClone()
			}
			c.noteSpec("remote", tStart, traced, idx)
			return r.v, r.d, nil
		}
		// The remote call failed; the local result stands.
		haveRemote = true
	default:
		// The remote call is still in flight; the local result wins and
		// the session is abandoned — the straggler's effects die with it.
	}
	if sp.promote(clone) {
		c.noteSpec("local", tStart, traced, idx)
		return lv, 0, nil
	}
	// The slot was taken from under us (concurrent handoff or disconnect):
	// the clone's effects cannot be promoted, so returning lv would report
	// a success whose side effects never happened. The remote execution is
	// the only one whose effects can survive — await its verdict and
	// surface that instead (its error feeds the normal drain-redirect and
	// failover retries).
	sp.dropClone()
	if !haveRemote {
		r = <-rch
	}
	if r.err == nil {
		c.noteSpec("remote", tStart, traced, idx)
	} else {
		c.noteSpec("miss", tStart, traced, idx)
	}
	return r.v, r.d, r.err
}

// promote makes the clone the authoritative copy: detach the degraded
// connection, upgrade every stub that pointed at the session using the
// clone's state, and close the connection. The remote execution — won
// or still straggling — is discarded with the abandoned session. It
// reports whether it actually claimed the peer slot; false means the
// clone was NOT promoted (a concurrent handoff or disconnect owns the
// slot) and the caller must not present the clone's result as applied.
func (sp *specPeer) promote(clone *vm.VM) bool {
	c := sp.c
	idx := sp.inner.VMIndex()
	c.discMu.Lock()
	defer c.discMu.Unlock()
	c.mu.Lock()
	if idx < 0 || idx >= len(c.peers) || c.peers[idx] != sp.inner {
		c.mu.Unlock()
		return false // a disconnect or another racing thread already owns the slot
	}
	p := c.peers[idx]
	c.peers[idx] = nil
	for cls, i := range c.offloaded {
		if i == idx {
			delete(c.offloaded, cls)
		}
	}
	logf := c.opts.logf
	c.bg.Add(1)
	c.mu.Unlock()

	c.vm.DetachPeer(idx)
	n := c.vm.ReclaimStubsFrom(idx, clone.ExportSnapshot())
	if logf != nil {
		logf("aide: speculation won against surrogate %d; promoted clone, upgraded %d stubs", idx, n)
	}
	go func() {
		defer c.bg.Done()
		if err := p.Close(); err != nil && logf != nil {
			logf("aide: close out-speculated surrogate %d: %v", idx, err)
		}
	}()
	return true
}

// The remaining vm.Peer methods delegate to the wire connection. Reads
// leave the clone alone; mutations drop it (the session state moved on).

func (sp *specPeer) GetFieldRemote(peerObj ObjectID, field string) (Value, error) {
	return sp.inner.GetFieldRemote(peerObj, field)
}

func (sp *specPeer) SetFieldRemote(peerObj ObjectID, field string, v Value) error {
	sp.dropClone()
	return sp.inner.SetFieldRemote(peerObj, field, v)
}

func (sp *specPeer) GetStaticRemote(class, field string) (Value, error) {
	return sp.inner.GetStaticRemote(class, field)
}

func (sp *specPeer) SetStaticRemote(class, field string, v Value) error {
	sp.dropClone()
	return sp.inner.SetStaticRemote(class, field, v)
}

// InvokeNativeRemote drops the clone too: a native body is opaque and
// may mutate session state, so the clone must be assumed stale.
func (sp *specPeer) InvokeNativeRemote(class, method string, peerSelf ObjectID, selfIsCallerLocal bool, args []Value) (Value, time.Duration, error) {
	sp.dropClone()
	return sp.inner.InvokeNativeRemote(class, method, peerSelf, selfIsCallerLocal, args)
}

func (sp *specPeer) Release(peerObj ObjectID) {
	sp.inner.Release(peerObj)
}

// InvokePipeline forwards pipelined frames; the batch mutates the
// session, so the clone is dropped.
func (sp *specPeer) InvokePipeline(ctx context.Context, calls []vm.PipelineCall) (vm.PipelineOutcome, error) {
	sp.dropClone()
	return sp.inner.InvokePipeline(ctx, calls)
}

// FetchFieldsRemote forwards lazy-migration field pulls (a read).
func (sp *specPeer) FetchFieldsRemote(peerObj ObjectID, fields []string) ([]string, []Value, int64, error) {
	return sp.inner.FetchFieldsRemote(peerObj, fields)
}
