package aide

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"aide/internal/graph"
	"aide/internal/mincut"
	"aide/internal/monitor"
	"aide/internal/policy"
	"aide/internal/remote"
	"aide/internal/telemetry"
	"aide/internal/vm"
)

// ErrNoSurrogate is returned when an operation requires an attached
// surrogate and none is connected.
var ErrNoSurrogate = errors.New("aide: no surrogate attached")

// ErrNotBeneficial is returned when the partitioning policy finds no
// beneficial offloading; the application stays local.
var ErrNotBeneficial = policy.ErrNotBeneficial

// ErrPinnedLocal is returned by Offload while the client is in the
// post-disconnection cooldown: after losing a surrogate the application
// runs locally for a few GC cycles before offloading may resume.
var ErrPinnedLocal = errors.New("aide: offloading pinned local after disconnection")

// OffloadReport summarizes one offloading operation.
type OffloadReport struct {
	// Classes lists the classes whose objects moved to the surrogate.
	Classes []string

	// Objects and Bytes count what moved.
	Objects int
	Bytes   int64

	// CutBytes is the historical information transfer across the chosen
	// cut; FreedFraction relates Bytes to the heap capacity.
	CutBytes      int64
	FreedFraction float64

	// At is the client's simulated clock when the offload completed.
	At time.Duration
}

// Client is the platform on the resource-constrained device: a VM plus
// AIDE's monitoring, partitioning, and remote-invocation modules.
type Client struct {
	opts options

	reg *Registry
	vm  *vm.VM
	mon *monitor.Monitor

	// pm and tracer instrument the partitioning pipeline; both are
	// nil-safe no-ops without WithTelemetry.
	pm     platformMetrics
	tracer *telemetry.Tracer

	mu sync.Mutex
	// peers is positional: a slot keeps its index for the life of the
	// client because offloaded and the VM's stubs address surrogates by
	// index. A disconnected surrogate's slot is nil, never removed.
	peers       []*remote.Peer
	trigger     policy.MemoryTrigger
	disc        policy.DisconnectTrigger
	adaptive    bool
	reports     []OffloadReport
	rejected    int
	offloaded   map[string]int // class → index of the surrogate hosting it
	gcCount     int
	rebalances  int
	disconnects int

	// handoffs tracks, per peer slot, the waiter that calls bounced with
	// ErrDrained block on until a live handoff re-points the slot;
	// handoffsDone counts completed handoffs. Both under c.mu.
	handoffs     map[int]*handoffWait
	handoffsDone int

	// Speculation outcome counters (see speculate.go), under c.mu.
	specLocalWins, specRemoteWins, specMisses int64

	// discMu serializes disconnect handling so that concurrent failure
	// observers (the receive loop's OnDown, failed calls entering the
	// VM's failover hook) each return only after the peer's stubs have
	// been reclaimed locally.
	discMu sync.Mutex

	// bg joins the asynchronous peer-close goroutines disconnect
	// handling spawns; Detach waits for them so no goroutine outlives
	// the client. Add happens under c.mu in the same critical section
	// that claims the peer slot, so it is serialized against Detach's
	// peers-clearing section and can never race a Wait at zero.
	bg sync.WaitGroup
}

// NewClient builds a client platform over the shared class registry.
func NewClient(reg *Registry, opts ...Option) *Client {
	o := defaultOptions()
	for _, opt := range opts {
		opt(&o)
	}
	c := &Client{opts: o, reg: reg}
	c.pm = newPlatformMetrics(o.telemetry)
	c.tracer = o.tracer
	c.vm = vm.New(reg, vm.Config{
		Role:                vm.RoleClient,
		HeapCapacity:        o.heap,
		CPUSpeed:            o.cpuSpeed,
		MonitorCostPerEvent: o.monCost,
		Telemetry:           o.telemetry,
		Tracer:              o.tracer,
	})
	c.vm.SetStatelessNativeLocal(o.stateless)
	if o.monitor {
		c.mon = monitor.New(monitor.RegistryMeta(reg))
		c.vm.SetHooks(c.mon)
		if o.lazyMigration {
			min := o.lazyMinAccesses
			if min < 1 {
				min = o.params.LazyMinAccesses
			}
			c.vm.SetFieldPredictor(c.mon.FieldPredictor(min))
		}
	}
	c.trigger = policy.MemoryTrigger{
		FreeFraction: o.params.TriggerFreeFraction,
		Tolerance:    o.params.Tolerance,
	}
	c.disc = policy.DisconnectTrigger{CooldownCycles: o.disconnectCool}
	c.offloaded = make(map[string]int)
	c.handoffs = make(map[int]*handoffWait)
	c.vm.SetFailoverHandler(c.failoverPeer)
	c.vm.SetDrainHandler(c.waitHandoff)
	return c
}

// Thread returns an execution context for running application code.
func (c *Client) Thread() *Thread { return c.vm.NewThread() }

// NewPipeline starts a promise pipeline: a chain of dependent remote
// invocations that ships as one wire frame when every receiver lives on
// the same surrogate.
//
//	p := c.NewPipeline()
//	a := p.Invoke(obj, "f")
//	b := p.Invoke(a, "g", a) // receiver and argument from a's promise
//	res, err := p.Run(ctx)
//
// Against an old surrogate without multi-invoke support, or after a
// mid-frame disconnection, the pipeline transparently degrades to
// sequential calls.
func (c *Client) NewPipeline() *Pipeline { return c.vm.NewPipeline() }

// VM exposes the underlying client VM (roots, heap statistics, clock).
func (c *Client) VM() *vm.VM { return c.vm }

// Clock returns the client's simulated clock.
func (c *Client) Clock() time.Duration { return c.vm.Clock() }

// Heap returns client heap statistics.
func (c *Client) Heap() vm.HeapStats { return c.vm.Heap() }

// Graph returns a snapshot of the monitored execution graph.
func (c *Client) Graph() (*graph.Graph, error) {
	if c.mon == nil {
		return nil, errors.New("aide: monitoring disabled")
	}
	return c.mon.Graph(), nil
}

// Attach connects the client to a surrogate over the given transport and
// enables adaptive offloading: memory pressure and low-memory trigger
// events now partition and offload automatically (ad-hoc platform
// creation, paper §2). A client may attach several surrogates; the
// partitioner then spreads offloaded classes across them by available
// memory ("multiple surrogates could be used by the client", §2).
func (c *Client) Attach(t remote.Transport) error {
	return c.AttachContext(context.Background(), t)
}

// AttachContext is Attach bounded by ctx. It runs the session handshake:
// the surrogate's admission control either opens the session or rejects
// it with a typed error — errors.Is(err, ErrAdmissionRejected) when the
// surrogate is at capacity, ErrShed when it is degraded and shedding
// load. Surrogates predating the handshake admit implicitly; the client
// attaches to them exactly as before.
func (c *Client) AttachContext(ctx context.Context, t remote.Transport) error {
	ro := c.opts.remoteOptions()
	ro.OnDown = c.onPeerDown
	p := remote.NewPeer(c.vm, t, ro)
	c.installHandoffHandler(p)
	c.mu.Lock()
	c.peers = append(c.peers, p)
	c.mu.Unlock()
	if _, err := p.Attach(ctx); err != nil && !errors.Is(err, remote.ErrAttachUnsupported) {
		// Rejected (or the transport died mid-handshake): free the slot.
		// The VM's peer table never reuses indexes, so nilling the
		// positional entry keeps every other peer's index aligned.
		idx := p.VMIndex()
		c.mu.Lock()
		if idx >= 0 && idx < len(c.peers) && c.peers[idx] == p {
			c.peers[idx] = nil
		}
		c.mu.Unlock()
		c.vm.DetachPeer(idx)
		if cerr := p.Close(); cerr != nil && c.opts.logf != nil {
			c.opts.logf("aide: close rejected attach: %v", cerr)
		}
		return fmt.Errorf("aide: attach: %w", err)
	}
	if c.opts.speculate {
		// Interpose the speculation wrapper between the VM and the wire:
		// while the connection is degraded, invocations race a local clone
		// against the remote call (see speculate.go).
		if err := c.vm.ReplacePeer(p.VMIndex(), newSpecPeer(c, p)); err != nil && c.opts.logf != nil {
			c.opts.logf("aide: install speculation wrapper: %v", err)
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pm.attaches.Inc()
	if c.tracer.Enabled() {
		c.tracer.Emit(telemetry.Span{Kind: telemetry.SpanReattach, Peer: p.VMIndex()})
	}
	c.disc.Reset() // a fresh surrogate ends any post-disconnect cooldown
	if c.mon != nil && !c.adaptive {
		c.adaptive = true
		c.mon.OnGCListener(c.onGC)
		c.vm.SetPressureHandler(c.onPressure)
	}
	return nil
}

// Surrogates returns the number of connected surrogates.
func (c *Client) Surrogates() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, p := range c.peers {
		if p != nil {
			n++
		}
	}
	return n
}

// Disconnects reports how many surrogate connections the client has lost
// involuntarily (transport failure or timeout escalation).
func (c *Client) Disconnects() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.disconnects
}

// PinnedLocal reports whether the post-disconnection cooldown currently
// suppresses offloading.
func (c *Client) PinnedLocal() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.disc.Active()
}

// onPeerDown is the remote module's OnDown hook: it runs on the goroutine
// that observed the connection failure, so the actual teardown must not
// block on that goroutine (Close joins it) — handleDisconnect closes the
// peer asynchronously.
func (c *Client) onPeerDown(p *remote.Peer, cause error) {
	_ = cause // the peer already logged it via Logf
	c.discMu.Lock()
	defer c.discMu.Unlock()
	// Identity-guarded: after a live handoff the old connection's eventual
	// transport failure must not tear down the replacement peer now
	// occupying the same slot.
	c.disconnectLocked(p.VMIndex(), p)
}

// failoverPeer is the VM's disconnect-failover hook: a remote call failed
// because its hosting peer vanished. Re-home the peer's objects locally
// and tell the VM to retry the call against the reclaimed copies.
func (c *Client) failoverPeer(idx int) bool {
	c.discMu.Lock()
	defer c.discMu.Unlock()
	c.disconnectLocked(idx, nil)
	return true
}

// disconnectLocked tears down one surrogate connection and fails its
// objects over to local execution. Idempotent: the first caller does the
// work; later callers find the slot empty and return at once (discMu
// guarantees they return only after the reclaim completed). A non-nil
// expect restricts the teardown to that specific peer, so a failure
// report from a connection that already left the slot (handed off,
// reattached) is ignored. Requires discMu; takes c.mu itself.
func (c *Client) disconnectLocked(idx int, expect *remote.Peer) {
	c.mu.Lock()
	if idx < 0 || idx >= len(c.peers) || c.peers[idx] == nil ||
		(expect != nil && c.peers[idx] != expect) {
		c.mu.Unlock()
		return
	}
	p := c.peers[idx]
	c.peers[idx] = nil
	for cls, i := range c.offloaded {
		if i == idx {
			delete(c.offloaded, cls)
		}
	}
	c.disconnects++
	c.pm.disconnects.Inc()
	c.disc.Fire()
	logf := c.opts.logf
	c.bg.Add(1)
	c.mu.Unlock()

	// Detach before reclaiming so the export-pin check inside
	// ReclaimStubs sees the slot empty, then re-home every stub that
	// pointed at the lost surrogate.
	c.vm.DetachPeer(idx)
	n := c.vm.ReclaimStubs(idx)
	if logf != nil {
		logf("aide: surrogate %d disconnected; reclaimed %d stubs, pinned local", idx, n)
	}
	// Close asynchronously: this may run on the peer's own receive loop
	// (via OnDown), which Close joins. Detach joins the closer via c.bg.
	go func() {
		defer c.bg.Done()
		if err := p.Close(); err != nil && logf != nil {
			logf("aide: close disconnected surrogate %d: %v", idx, err)
		}
	}()
}

// AttachTCP dials a surrogate's listener and attaches to it.
func (c *Client) AttachTCP(addr string) error {
	return c.AttachTCPContext(context.Background(), addr)
}

// AttachTCPContext is AttachTCP with a cancellable dial: a client
// reattaching after a disconnection can abandon a slow candidate.
func (c *Client) AttachTCPContext(ctx context.Context, addr string) error {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return fmt.Errorf("aide: dial surrogate: %w", err)
	}
	return c.AttachContext(ctx, remote.NewConnTransport(conn))
}

// Detach tears the platform down: every surrogate connection closes and
// adaptive offloading stops. Objects already offloaded become unreachable;
// detach only when the application is done with them.
func (c *Client) Detach() error {
	c.mu.Lock()
	peers := c.peers
	c.peers = nil
	c.adaptive = false
	c.mu.Unlock()
	c.vm.SetPressureHandler(nil)
	var firstErr error
	for _, p := range peers {
		if p == nil {
			continue // lost earlier; already closed by disconnect handling
		}
		if err := p.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	// Join the disconnect handlers' async peer-close goroutines.
	c.bg.Wait()
	return firstErr
}

// Close releases the client's resources.
func (c *Client) Close() error { return c.Detach() }

// Ping round-trips a null message to every attached surrogate.
func (c *Client) Ping() error {
	return c.PingContext(context.Background())
}

// PingContext is Ping bounded by ctx: probes of the remaining
// surrogates abort when ctx is cancelled or its deadline expires.
func (c *Client) PingContext(ctx context.Context) error {
	c.mu.Lock()
	peers := append([]*remote.Peer(nil), c.peers...)
	c.mu.Unlock()
	live := 0
	for _, p := range peers {
		if p == nil {
			continue
		}
		if err := p.Probe(ctx); err != nil {
			return err
		}
		live++
	}
	if live == 0 {
		return ErrNoSurrogate
	}
	return nil
}

// onGC feeds collection reports into the memory trigger and drives
// periodic re-evaluation.
func (c *Client) onGC(free, capacity int64, freed bool) {
	c.mu.Lock()
	pinned := c.disc.Active()
	c.disc.Report() // each GC cycle ages the post-disconnect cooldown
	fire := c.adaptive && !pinned && c.trigger.Report(free, capacity, freed)
	c.gcCount++
	rebalance := c.adaptive && !pinned && !fire && c.opts.rebalanceGC > 0 &&
		len(c.offloaded) > 0 && c.gcCount%c.opts.rebalanceGC == 0
	c.mu.Unlock()
	if fire {
		// Best effort: a failed or non-beneficial partitioning leaves the
		// application running locally.
		if _, err := c.Offload(); err != nil {
			c.mu.Lock()
			c.rejected++
			c.mu.Unlock()
		}
		return
	}
	if rebalance {
		if rep, err := c.Rebalance(); err == nil && rep.Moved() {
			c.mu.Lock()
			c.rebalances++
			c.mu.Unlock()
		}
	}
}

// Rebalances reports how many periodic re-evaluations changed the
// placement.
func (c *Client) Rebalances() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rebalances
}

// partition runs the modified MINCUT heuristic over a graph snapshot,
// timing the run into the partition-runtime histogram when telemetry is
// attached. A fresh Scratch per call keeps concurrent pipeline runs (GC
// trigger vs. pressure handler) independent.
func (c *Client) partition(g *graph.Graph) ([]mincut.Candidate, error) {
	c.pm.partitions.Inc()
	sc := &mincut.Scratch{}
	if c.pm.partitionRuntime != nil {
		sc.Clock = time.Now
		sc.Runtime = c.pm.partitionRuntime
	}
	return sc.Candidates(sc.FromGraph(g, graph.BytesWeight))
}

// memoryPolicy builds the configured memory policy with decision-outcome
// counters attached.
func (c *Client) memoryPolicy() policy.MemoryPolicy {
	return policy.MemoryPolicy{
		MinFreeFraction: c.opts.params.MinFreeFraction,
		Chosen:          c.pm.chosen,
		Rejected:        c.pm.rejected,
	}
}

// onPressure handles a failed post-GC allocation: offload or die.
func (c *Client) onPressure(needed int64) bool {
	_, err := c.Offload()
	return err == nil
}

// Offload runs the partitioning pipeline once: snapshot the execution
// graph, generate candidate partitionings with the modified MINCUT
// heuristic, apply the memory policy, and migrate the chosen classes'
// objects. With several surrogates attached, classes are spread across
// them greedily by available memory (paper §2: "If the necessary resources
// for a client are not available at the closest surrogate, multiple
// surrogates could be used").
func (c *Client) Offload() (*OffloadReport, error) {
	return c.OffloadContext(context.Background())
}

// OffloadContext is Offload bounded by ctx: the placement probes and
// migration calls abort when ctx is cancelled or its deadline expires.
func (c *Client) OffloadContext(ctx context.Context) (*OffloadReport, error) {
	c.mu.Lock()
	pinned := c.disc.Active()
	peers := append([]*remote.Peer(nil), c.peers...)
	c.mu.Unlock()
	if pinned {
		return nil, ErrPinnedLocal
	}
	if countLive(peers) == 0 {
		return nil, ErrNoSurrogate
	}
	if c.mon == nil {
		return nil, errors.New("aide: monitoring disabled; nothing to partition")
	}

	traced := c.tracer.Enabled()
	var tStart time.Time
	if traced {
		tStart = time.Now()
	}
	g := c.mon.Graph()
	cands, err := c.partition(g)
	if err != nil {
		return nil, fmt.Errorf("aide: partition: %w", err)
	}
	mp := c.memoryPolicy()
	dec, err := mp.Choose(g, c.opts.heap, cands)
	if err != nil {
		// Hard fallback: when the heap is critically full, free whatever
		// we can rather than fail the application.
		heap := c.vm.Heap()
		if float64(heap.Free)/float64(heap.Capacity) < 0.05 {
			mp.MinFreeFraction = 0
			dec, err = mp.Choose(g, c.opts.heap, cands)
		}
		if err != nil {
			return nil, err
		}
	}

	chosen := make([]classInfo, 0, dec.OffloadClasses)
	for _, n := range g.Nodes() {
		if !dec.InClient[n.ID] {
			chosen = append(chosen, classInfo{name: n.Name, size: n.Memory})
		}
	}
	sort.Slice(chosen, func(i, j int) bool {
		if chosen[i].size != chosen[j].size {
			return chosen[i].size > chosen[j].size // biggest first
		}
		return chosen[i].name < chosen[j].name
	})

	placement, err := c.placeAcross(ctx, peers, chosen)
	if err != nil {
		return nil, err
	}

	rep := OffloadReport{
		CutBytes: dec.CutBytes,
		At:       c.vm.Clock(),
	}
	moved := make(map[string]int)
	for idx, classes := range placement {
		if len(classes) == 0 {
			continue
		}
		objects, bytes, err := peers[idx].OffloadContext(ctx, classes)
		if err != nil {
			return nil, fmt.Errorf("aide: offload to surrogate %d: %w", idx, err)
		}
		rep.Objects += objects
		rep.Bytes += bytes
		rep.Classes = append(rep.Classes, classes...)
		for _, cls := range classes {
			moved[cls] = idx
		}
	}
	sort.Strings(rep.Classes)
	c.vm.Collect() // reclaim the space the migrated objects occupied
	rep.FreedFraction = float64(rep.Bytes) / float64(c.opts.heap)
	rep.At = c.vm.Clock()

	c.mu.Lock()
	c.trigger.Reset()
	c.reports = append(c.reports, rep)
	for cls, idx := range moved {
		c.offloaded[cls] = idx
	}
	c.mu.Unlock()
	c.pm.offloads.Inc()
	c.pm.offloadedBytes.Add(rep.Bytes)
	if traced {
		c.tracer.Emit(telemetry.Span{
			Kind:  telemetry.SpanRepartition,
			Note:  "offload",
			N:     int64(rep.Objects),
			Bytes: rep.Bytes,
			Start: tStart,
			Dur:   time.Since(tStart),
		})
	}
	return &rep, nil
}

// placeAcross assigns classes (largest first) to surrogates, greedily
// filling the one with the most remaining free memory. With a single
// surrogate everything goes to it without probing.
// classInfo pairs a class with its live memory for placement decisions.
type classInfo struct {
	name string
	size int64
}

func (c *Client) placeAcross(ctx context.Context, peers []*remote.Peer, chosen []classInfo) (map[int][]string, error) {
	live := make([]int, 0, len(peers))
	for i, p := range peers {
		if p != nil {
			live = append(live, i)
		}
	}
	if len(live) == 0 {
		return nil, ErrNoSurrogate
	}
	placement := make(map[int][]string, len(live))
	if len(live) == 1 {
		for _, ci := range chosen {
			placement[live[0]] = append(placement[live[0]], ci.name)
		}
		return placement, nil
	}
	free := make(map[int]int64, len(live))
	for _, i := range live {
		info, err := peers[i].InfoContext(ctx)
		if err != nil {
			return nil, fmt.Errorf("aide: probe surrogate %d: %w", i, err)
		}
		free[i] = info.FreeBytes
	}
	for _, ci := range chosen {
		best := live[0]
		for _, i := range live {
			if free[i] > free[best] {
				best = i
			}
		}
		placement[best] = append(placement[best], ci.name)
		free[best] -= ci.size
	}
	return placement, nil
}

// countLive counts the non-nil (still connected) entries of a peer
// snapshot.
func countLive(peers []*remote.Peer) int {
	n := 0
	for _, p := range peers {
		if p != nil {
			n++
		}
	}
	return n
}

// OffloadedClasses returns the classes currently placed on the surrogate,
// sorted.
func (c *Client) OffloadedClasses() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.offloaded))
	for cls := range c.offloaded {
		out = append(out, cls)
	}
	sort.Strings(out)
	return out
}

// Offloads returns the reports of every offload performed so far and the
// number of rejected (non-beneficial) attempts.
func (c *Client) Offloads() ([]OffloadReport, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]OffloadReport(nil), c.reports...), c.rejected
}

// Recall migrates the surrogate's live objects of the named classes back
// to the client: the reverse of Offload (the paper's §8 "global placement"
// direction). References held on either side stay valid.
func (c *Client) Recall(classes []string) (objects int, bytes int64, err error) {
	return c.RecallContext(context.Background(), classes)
}

// RecallContext is Recall bounded by ctx: the per-surrogate migration
// calls abort when ctx is cancelled or its deadline expires.
func (c *Client) RecallContext(ctx context.Context, classes []string) (objects int, bytes int64, err error) {
	c.mu.Lock()
	peers := append([]*remote.Peer(nil), c.peers...)
	byPeer := make(map[int][]string)
	for _, cls := range classes {
		idx, ok := c.offloaded[cls]
		if !ok {
			idx = 0 // not tracked: ask the first surrogate (harmless no-op)
		}
		byPeer[idx] = append(byPeer[idx], cls)
	}
	c.mu.Unlock()
	if countLive(peers) == 0 {
		return 0, 0, ErrNoSurrogate
	}
	for idx, group := range byPeer {
		if idx >= len(peers) || peers[idx] == nil {
			continue
		}
		n, b, rerr := peers[idx].RecallContext(ctx, group)
		if rerr != nil {
			return objects, bytes, rerr
		}
		objects += n
		bytes += b
		c.mu.Lock()
		for _, cls := range group {
			delete(c.offloaded, cls)
		}
		c.mu.Unlock()
	}
	return objects, bytes, nil
}

// RebalanceReport summarizes one global-placement pass.
type RebalanceReport struct {
	// Offloaded and Recalled list the classes that moved in each
	// direction.
	Offloaded []string
	Recalled  []string

	// BytesOut and BytesIn count payload moved each way.
	BytesOut, BytesIn int64
}

// Moved reports whether the pass changed anything.
func (r *RebalanceReport) Moved() bool { return len(r.Offloaded)+len(r.Recalled) > 0 }

// Rebalance re-evaluates the placement of every class against the current
// execution graph and moves objects in *both* directions to realize it —
// the paper's §8 "global placement strategies ... moving objects from the
// surrogate to the client device". If no partitioning is beneficial any
// more, everything comes home.
func (c *Client) Rebalance() (*RebalanceReport, error) {
	return c.RebalanceContext(context.Background())
}

// RebalanceContext is Rebalance bounded by ctx: both migration
// directions abort when ctx is cancelled or its deadline expires.
func (c *Client) RebalanceContext(ctx context.Context) (*RebalanceReport, error) {
	c.mu.Lock()
	nPeers := countLive(c.peers)
	current := make(map[string]bool, len(c.offloaded))
	for cls := range c.offloaded {
		current[cls] = true
	}
	c.mu.Unlock()
	if nPeers == 0 {
		return nil, ErrNoSurrogate
	}
	if c.mon == nil {
		return nil, errors.New("aide: monitoring disabled; nothing to partition")
	}

	traced := c.tracer.Enabled()
	var tStart time.Time
	if traced {
		tStart = time.Now()
	}
	c.pm.rebalances.Inc()

	// Desired placement from a fresh snapshot. Memory annotations for
	// offloaded classes live on the surrogate, so weigh the decision by
	// the recorded (historical) graph, which still carries their totals.
	g := c.mon.Graph()
	desired := make(map[string]bool)
	cands, err := c.partition(g)
	if err == nil {
		mp := c.memoryPolicy()
		if dec, derr := mp.Choose(g, c.opts.heap, cands); derr == nil {
			for _, n := range g.Nodes() {
				if !dec.InClient[n.ID] {
					desired[n.Name] = true
				}
			}
		}
		// ErrNotBeneficial leaves desired empty: recall everything.
	} else {
		return nil, fmt.Errorf("aide: rebalance: %w", err)
	}

	rep := &RebalanceReport{}
	for cls := range desired {
		if !current[cls] {
			rep.Offloaded = append(rep.Offloaded, cls)
		}
	}
	for cls := range current {
		if !desired[cls] {
			rep.Recalled = append(rep.Recalled, cls)
		}
	}
	sort.Strings(rep.Offloaded)
	sort.Strings(rep.Recalled)

	if len(rep.Recalled) > 0 {
		_, bytes, err := c.RecallContext(ctx, rep.Recalled)
		if err != nil {
			return nil, fmt.Errorf("aide: rebalance recall: %w", err)
		}
		rep.BytesIn = bytes
	}
	if len(rep.Offloaded) > 0 {
		c.mu.Lock()
		peers := append([]*remote.Peer(nil), c.peers...)
		c.mu.Unlock()
		chosen := make([]classInfo, 0, len(rep.Offloaded))
		for _, cls := range rep.Offloaded {
			var size int64
			if n, ok := g.Lookup(cls); ok {
				size = n.Memory
			}
			chosen = append(chosen, classInfo{name: cls, size: size})
		}
		placement, err := c.placeAcross(ctx, peers, chosen)
		if err != nil {
			return nil, fmt.Errorf("aide: rebalance: %w", err)
		}
		for idx, group := range placement {
			if len(group) == 0 {
				continue
			}
			_, bytes, err := peers[idx].OffloadContext(ctx, group)
			if err != nil {
				return nil, fmt.Errorf("aide: rebalance offload: %w", err)
			}
			rep.BytesOut += bytes
			c.mu.Lock()
			for _, cls := range group {
				c.offloaded[cls] = idx
			}
			c.mu.Unlock()
		}
		c.vm.Collect()
	}
	if traced {
		c.tracer.Emit(telemetry.Span{
			Kind:  telemetry.SpanRepartition,
			Note:  "rebalance",
			N:     int64(len(rep.Offloaded) + len(rep.Recalled)),
			Bytes: rep.BytesOut + rep.BytesIn,
			Start: tStart,
			Dur:   time.Since(tStart),
		})
	}
	return rep, nil
}

// SurrogateInfo probes the first attached surrogate's resources and
// round-trip latency.
func (c *Client) SurrogateInfo() (remote.PeerInfo, error) {
	infos, err := c.SurrogateInfos()
	if err != nil {
		return remote.PeerInfo{}, err
	}
	return infos[0], nil
}

// SurrogateInfos probes every attached surrogate.
func (c *Client) SurrogateInfos() ([]remote.PeerInfo, error) {
	return c.SurrogateInfosContext(context.Background())
}

// SurrogateInfosContext is SurrogateInfos bounded by ctx: the resource
// probes abort when ctx is cancelled or its deadline expires.
func (c *Client) SurrogateInfosContext(ctx context.Context) ([]remote.PeerInfo, error) {
	c.mu.Lock()
	peers := append([]*remote.Peer(nil), c.peers...)
	c.mu.Unlock()
	if countLive(peers) == 0 {
		return nil, ErrNoSurrogate
	}
	infos := make([]remote.PeerInfo, 0, len(peers))
	for i, p := range peers {
		if p == nil {
			continue
		}
		info, err := p.InfoContext(ctx)
		if err != nil {
			return nil, fmt.Errorf("aide: surrogate %d: %w", i, err)
		}
		infos = append(infos, info)
	}
	return infos, nil
}
