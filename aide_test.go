package aide

import (
	"errors"
	"strings"
	"testing"
	"time"

	"aide/internal/apps"
	"aide/internal/vm"
)

// demoRegistry builds a small editor-like application: pinned GUI, an
// offloadable document, and a stateless math native.
func demoRegistry(t *testing.T) *Registry {
	t.Helper()
	reg := NewRegistry()
	mustRegister(t, reg, ClassSpec{
		Name: "Screen",
		Methods: []MethodSpec{
			{Name: "draw", Native: true, Body: func(th *Thread, self ObjectID, args []Value) (Value, error) {
				th.Work(50 * time.Microsecond)
				return Nil(), nil
			}},
		},
	})
	mustRegister(t, reg, ClassSpec{
		Name:   "Doc",
		Fields: []string{"len"},
		Methods: []MethodSpec{
			{Name: "append", Body: func(th *Thread, self ObjectID, args []Value) (Value, error) {
				th.Work(20 * time.Microsecond)
				cur, err := th.GetField(self, "len")
				if err != nil {
					return Nil(), err
				}
				n := cur.I + args[0].I
				return Int(n), th.SetField(self, "len", Int(n))
			}},
		},
	})
	mustRegister(t, reg, ClassSpec{
		Name: "MathLib",
		Methods: []MethodSpec{
			{Name: "sqrt", Native: true, Stateless: true, Static: true, Body: func(th *Thread, self ObjectID, args []Value) (Value, error) {
				return Float(1.414), nil
			}},
		},
	})
	mustRegister(t, reg, ClassSpec{Name: "Chunk", Fields: []string{"next"}})
	return reg
}

func mustRegister(t testing.TB, reg *Registry, spec ClassSpec) {
	t.Helper()
	if _, err := reg.Register(spec); err != nil {
		t.Fatalf("register %s: %v", spec.Name, err)
	}
}

func TestLocalPairLifecycle(t *testing.T) {
	reg := demoRegistry(t)
	client, surrogate, err := NewLocalPair(reg,
		[]Option{WithHeap(1 << 20)},
		[]Option{WithCPUSpeed(3.5)})
	if err != nil {
		t.Fatalf("NewLocalPair: %v", err)
	}
	defer func() {
		if err := client.Close(); err != nil {
			t.Errorf("close client: %v", err)
		}
		if err := surrogate.Close(); err != nil {
			t.Errorf("close surrogate: %v", err)
		}
	}()
	if err := client.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}

	th := client.Thread()
	doc, err := th.New("Doc", 300<<10)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	client.VM().SetRoot("doc", doc)
	if _, err := th.Invoke(doc, "append", Int(3)); err != nil {
		t.Fatalf("invoke: %v", err)
	}

	rep, err := client.Offload()
	if err != nil {
		t.Fatalf("offload: %v", err)
	}
	found := false
	for _, c := range rep.Classes {
		if c == "Doc" {
			found = true
		}
		if c == "Screen" {
			t.Fatal("pinned native class Screen must never offload")
		}
	}
	if !found {
		t.Fatalf("Doc not offloaded; classes = %v", rep.Classes)
	}

	// Execution continues transparently against the migrated object.
	v, err := th.Invoke(doc, "append", Int(4))
	if err != nil {
		t.Fatalf("remote invoke: %v", err)
	}
	if v.I != 7 {
		t.Fatalf("state after migration = %d, want 7", v.I)
	}
}

func TestAdaptiveOffloadRescuesOOM(t *testing.T) {
	reg := demoRegistry(t)
	const heap = 256 << 10
	client, surrogate, err := NewLocalPair(reg, []Option{WithHeap(heap)}, nil)
	if err != nil {
		t.Fatalf("NewLocalPair: %v", err)
	}
	defer client.Close()
	defer surrogate.Close()

	// Allocate 4× the client heap in chained chunks: without offloading
	// this dies; the platform must detect pressure and offload.
	th := client.Thread()
	var prev ObjectID
	for i := 0; i < 512; i++ {
		id, err := th.New("Chunk", 2048)
		if err != nil {
			t.Fatalf("alloc %d: %v (adaptive offload should have rescued)", i, err)
		}
		if prev != InvalidObject {
			if err := th.SetField(id, "next", RefOf(prev)); err != nil {
				t.Fatalf("link: %v", err)
			}
		}
		client.VM().SetRoot("head", id)
		prev = id
		th.ClearTemps()
	}
	reports, _ := client.Offloads()
	if len(reports) == 0 {
		t.Fatal("no offload happened")
	}
	if surrogate.Heap().Live == 0 {
		t.Fatal("surrogate holds no migrated objects")
	}
}

func TestOffloadWithoutSurrogate(t *testing.T) {
	client := NewClient(demoRegistry(t))
	defer client.Close()
	if _, err := client.Offload(); !errors.Is(err, ErrNoSurrogate) {
		t.Fatalf("err = %v, want ErrNoSurrogate", err)
	}
}

func TestTCPPlatform(t *testing.T) {
	reg := demoRegistry(t)
	surrogate := NewSurrogate(reg)
	addr, err := surrogate.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer surrogate.Close()

	client := NewClient(reg, WithHeap(1<<20), WithLink(WaveLAN()))
	defer client.Close()
	if err := client.AttachTCP(addr); err != nil {
		t.Fatalf("attach: %v", err)
	}
	if err := client.Ping(); err != nil {
		t.Fatalf("ping over TCP: %v", err)
	}

	th := client.Thread()
	doc, err := th.New("Doc", 300<<10)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	client.VM().SetRoot("doc", doc)
	if _, err := th.Invoke(doc, "append", Int(1)); err != nil {
		t.Fatalf("invoke: %v", err)
	}
	if _, err := client.Offload(); err != nil {
		t.Fatalf("offload over TCP: %v", err)
	}
	v, err := th.Invoke(doc, "append", Int(1))
	if err != nil {
		t.Fatalf("remote invoke over TCP: %v", err)
	}
	if v.I != 2 {
		t.Fatalf("remote state = %d, want 2", v.I)
	}
	// With a link model attached, remote work must stretch the simulated
	// clock.
	if client.Clock() <= 0 {
		t.Fatal("client clock did not advance")
	}
}

// TestJavaNoteLiveRescue runs the paper's headline §5.1 scenario on the
// real platform: JavaNote's full workload on a constrained client heap,
// rescued by adaptive offloading.
func TestJavaNoteLiveRescue(t *testing.T) {
	if testing.Short() {
		t.Skip("full JavaNote scenario is slow")
	}
	spec, err := apps.ByName("JavaNote")
	if err != nil {
		t.Fatal(err)
	}
	reg, driver, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}

	// First confirm the unmodified VM fails on the constrained heap.
	plain := vm.New(reg, vm.Config{Role: vm.RoleClient, HeapCapacity: spec.EmuHeap})
	if err := driver(plain.NewThread()); !errors.Is(err, vm.ErrOutOfMemory) {
		t.Fatalf("unmodified VM err = %v, want ErrOutOfMemory", err)
	}

	client, surrogate, err := NewLocalPair(reg, []Option{WithHeap(spec.EmuHeap)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	defer surrogate.Close()
	if err := driver(client.Thread()); err != nil {
		t.Fatalf("JavaNote died despite offloading: %v", err)
	}
	reports, _ := client.Offloads()
	if len(reports) == 0 {
		t.Fatal("JavaNote completed without offloading; heap should have been constrained")
	}
	var moved int64
	var offloadedDoc bool
	for _, r := range reports {
		moved += r.Bytes
		for _, cls := range r.Classes {
			if strings.HasPrefix(cls, "doc.") {
				offloadedDoc = true
			}
			if strings.HasPrefix(cls, "gui.Screen") {
				t.Fatalf("pinned class offloaded: %v", r.Classes)
			}
		}
	}
	if !offloadedDoc {
		t.Errorf("expected document classes among offloads: %+v", reports)
	}
	if moved == 0 {
		t.Error("no bytes moved")
	}
}
