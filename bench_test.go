package aide

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation (§5), plus micro-benchmarks of the platform's hot
// paths. Run with:
//
//	go test -bench=. -benchmem
//
// Each experiment benchmark regenerates its artifact per iteration and
// reports the headline quantity as a custom metric, so the paper-vs-
// measured comparison of EXPERIMENTS.md can be refreshed from the bench
// output. cmd/aide-bench prints the same rows with the paper's values
// alongside.

import (
	"strconv"
	"sync"
	"testing"
	"time"

	"aide/internal/apps"
	"aide/internal/emulator"
	"aide/internal/experiments"
	"aide/internal/graph"
	"aide/internal/mincut"
	"aide/internal/monitor"
	"aide/internal/netmodel"
	"aide/internal/policy"
	"aide/internal/remote"
	"aide/internal/remote/rpcbench"
	"aide/internal/trace"
	"aide/internal/vm"
)

var (
	benchOnce  sync.Once
	benchSuite *experiments.Suite
)

func suite(b *testing.B) *experiments.Suite {
	b.Helper()
	benchOnce.Do(func() { benchSuite = experiments.NewSuite() })
	return benchSuite
}

// BenchmarkTable1Apps regenerates the application catalog (paper Table 1).
func BenchmarkTable1Apps(b *testing.B) {
	skipBench(b)
	for i := 0; i < b.N; i++ {
		if rows := experiments.Table1(); len(rows) != 5 {
			b.Fatal("catalog broken")
		}
	}
}

// BenchmarkTable2Metrics recomputes JavaNote's execution metrics (paper
// Table 2: classes 134/138/138, objects 1230/2810/6808, interactions
// 1126/1190/1186532).
func BenchmarkTable2Metrics(b *testing.B) {
	skipBench(b)
	s := suite(b)
	var last *experiments.Table2Result
	for i := 0; i < b.N; i++ {
		r, err := s.Table2()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(float64(last.Stats.ClassEvents), "classes")
	b.ReportMetric(float64(last.Stats.InteractionEvents), "interaction-events")
}

// BenchmarkFigure5Partition reruns the JavaNote out-of-memory rescue
// (paper Figure 5: ~90% of the heap offloaded, ~100 KB/s predicted
// bandwidth, ~0.1 s heuristic).
func BenchmarkFigure5Partition(b *testing.B) {
	skipBench(b)
	s := suite(b)
	var last *experiments.Figure5Result
	for i := 0; i < b.N; i++ {
		r, err := s.Figure5()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.FractionOfHeap*100, "%heap-offloaded")
	b.ReportMetric(float64(last.HeuristicTime.Microseconds()), "heuristic-µs")
}

// BenchmarkFigure6Overhead reruns the initial-policy overhead study
// (paper Figure 6: JavaNote 4.8%, Dia 8.5%, Biomer 27.5%).
func BenchmarkFigure6Overhead(b *testing.B) {
	skipBench(b)
	s := suite(b)
	var rows []experiments.Figure6Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.Figure6()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.OverheadFrac*100, "%ovh-"+r.App)
	}
}

// BenchmarkFigure7PolicySweep reruns the policy-parameter sweep (paper
// Figure 7: Biomer/Dia overhead reduced 30–43%, JavaNote unchanged). The
// coarse grid keeps per-iteration cost manageable; `go run ./cmd/aide-bench
// -only figure7 -full` runs the complete 168-point grid.
func BenchmarkFigure7PolicySweep(b *testing.B) {
	skipBench(b)
	s := suite(b)
	var rows []experiments.Figure7Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.Figure7(true)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.ReductionFrac*100, "%reduction-"+r.App)
	}
}

// BenchmarkFigure7PolicySweepParallel is the same sweep with an 8-wide
// worker pool: the speedup over BenchmarkFigure7PolicySweep is the
// experiment engine's parallel efficiency (the output is bit-identical;
// TestGoldenParallelDeterminism checks that).
func BenchmarkFigure7PolicySweepParallel(b *testing.B) {
	skipBench(b)
	s := suite(b)
	old := s.Parallelism
	s.Parallelism = 8
	defer func() { s.Parallelism = old }()
	var rows []experiments.Figure7Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.Figure7(true)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.ReductionFrac*100, "%reduction-"+r.App)
	}
}

// BenchmarkFigure8Native reruns the remote-native-invocation counts (paper
// Figure 8: large native share for JavaNote/Dia, small for Biomer).
func BenchmarkFigure8Native(b *testing.B) {
	skipBench(b)
	s := suite(b)
	var rows []experiments.Figure8Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.Figure8()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.NativeShare*100, "%native-"+r.App)
	}
}

// BenchmarkMonitoringOverhead reruns the §5.1 monitoring-overhead
// measurement (paper: 31.59 s → 35.04 s, ≈11%).
func BenchmarkMonitoringOverhead(b *testing.B) {
	skipBench(b)
	s := suite(b)
	var last *experiments.MonitoringResult
	for i := 0; i < b.N; i++ {
		r, err := s.MonitoringOverhead()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	b.ReportMetric(last.OverheadFrac*100, "%overhead")
}

// BenchmarkFigure9Attribution reruns the nested-call time-attribution
// example (paper Figure 9: a::f 0.12 s total → a 0.02 s, b 0.10 s).
func BenchmarkFigure9Attribution(b *testing.B) {
	skipBench(b)
	for i := 0; i < b.N; i++ {
		d, err := experiments.Figure9()
		if err != nil {
			b.Fatal(err)
		}
		if !d.Expected {
			b.Fatal("attribution broken")
		}
	}
}

// BenchmarkFigure10CPU reruns the processing-constraint study (paper
// Figure 10: Voxel/Tracer improve up to ~15% with both enhancements;
// Biomer correctly declines).
func BenchmarkFigure10CPU(b *testing.B) {
	skipBench(b)
	s := suite(b)
	var rows []experiments.Figure10Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.Figure10()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Speedup()*100, "%speedup-"+r.App)
	}
}

// --- Platform micro-benchmarks -------------------------------------------

// BenchmarkMinCutCandidates measures the modified MINCUT heuristic on a
// JavaNote-scale execution graph (the paper reports ~0.1 s on a 600 MHz
// Pentium).
func BenchmarkMinCutCandidates(b *testing.B) {
	skipBench(b)
	s := suite(b)
	tr, err := s.Trace("JavaNote")
	if err != nil {
		b.Fatal(err)
	}
	m := monitor.New(nil)
	for i := range tr.Events {
		m.Feed(tr, &tr.Events[i])
	}
	g := m.Graph()
	in := mincut.FromGraph(g, graph.BytesWeight)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mincut.Candidates(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRepartitionFresh measures one repartitioning step — dense input
// construction plus the MINCUT heuristic — allocating fresh buffers every
// call, as the emulator did before buffer reuse.
func BenchmarkRepartitionFresh(b *testing.B) {
	skipBench(b)
	g := repartitionGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := mincut.FromGraph(g, graph.BytesWeight)
		if _, err := mincut.Candidates(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRepartitionScratch is the same step through a mincut.Scratch,
// the emulator's current hot path: the N×N weight matrix, pinned slice,
// and connectivity array are amortized across calls.
func BenchmarkRepartitionScratch(b *testing.B) {
	skipBench(b)
	g := repartitionGraph(b)
	var sc mincut.Scratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in := sc.FromGraph(g, graph.BytesWeight)
		if _, err := sc.Candidates(in); err != nil {
			b.Fatal(err)
		}
	}
}

// repartitionGraph builds the JavaNote-scale execution graph both
// repartition benchmarks run against.
func repartitionGraph(b *testing.B) *graph.Graph {
	b.Helper()
	s := suite(b)
	tr, err := s.Trace("JavaNote")
	if err != nil {
		b.Fatal(err)
	}
	m := monitor.New(nil)
	for i := range tr.Events {
		m.Feed(tr, &tr.Events[i])
	}
	return m.Graph()
}

// BenchmarkStoerWagnerExact measures the exact global minimum cut on the
// same graph (the ablation baseline for the modified heuristic).
func BenchmarkStoerWagnerExact(b *testing.B) {
	skipBench(b)
	s := suite(b)
	tr, err := s.Trace("JavaNote")
	if err != nil {
		b.Fatal(err)
	}
	m := monitor.New(nil)
	for i := range tr.Events {
		m.Feed(tr, &tr.Events[i])
	}
	in := mincut.FromGraph(m.Graph(), graph.BytesWeight)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := mincut.GlobalMinCut(in.N, in.Weight); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMonitorFeed measures execution-monitoring throughput: events
// consumed per second while building the execution graph.
func BenchmarkMonitorFeed(b *testing.B) {
	skipBench(b)
	s := suite(b)
	tr, err := s.Trace("Dia")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := monitor.New(nil)
		for j := range tr.Events {
			m.Feed(tr, &tr.Events[j])
		}
	}
	b.ReportMetric(float64(len(tr.Events)), "events/op")
}

// BenchmarkEmulatorReplay measures full trace-replay throughput with
// partitioning enabled.
func BenchmarkEmulatorReplay(b *testing.B) {
	skipBench(b)
	s := suite(b)
	tr, err := s.Trace("Dia")
	if err != nil {
		b.Fatal(err)
	}
	cfg := emulator.Config{
		Mode:           emulator.MemoryMode,
		HeapCapacity:   6 << 20,
		Link:           netmodel.WaveLAN(),
		ClientSlowdown: 10,
		GCBytesTrigger: 96 << 10,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := emulator.Run(tr, cfg); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(tr.Events)), "events/op")
}

// BenchmarkVMInvokeLocal measures local method dispatch with monitoring
// attached.
func BenchmarkVMInvokeLocal(b *testing.B) {
	skipBench(b)
	reg := vm.NewRegistry()
	mustRegister(b, reg, vm.ClassSpec{
		Name:   "C",
		Fields: []string{"n"},
		Methods: []vm.MethodSpec{{
			Name: "inc",
			Body: func(th *vm.Thread, self vm.ObjectID, args []vm.Value) (vm.Value, error) {
				v, err := th.GetField(self, "n")
				if err != nil {
					return vm.Nil(), err
				}
				return vm.Nil(), th.SetField(self, "n", vm.Int(v.I+1))
			},
		}},
	})
	v := vm.New(reg, vm.Config{HeapCapacity: 1 << 20})
	v.SetHooks(monitor.New(monitor.RegistryMeta(reg)))
	th := v.NewThread()
	id, err := th.New("C", 64)
	if err != nil {
		b.Fatal(err)
	}
	v.SetRoot("c", id)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := th.Invoke(id, "inc"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRemoteInvoke measures a full remote invocation round trip over
// the in-memory transport (the RPC fast path of the prototype).
func BenchmarkRemoteInvoke(b *testing.B) {
	skipBench(b)
	reg := vm.NewRegistry()
	mustRegister(b, reg, vm.ClassSpec{
		Name: "Svc",
		Methods: []vm.MethodSpec{{
			Name: "echo",
			Body: func(th *vm.Thread, self vm.ObjectID, args []vm.Value) (vm.Value, error) {
				return args[0], nil
			},
		}},
	})
	client := vm.New(reg, vm.Config{Role: vm.RoleClient, HeapCapacity: 1 << 20})
	surrogate := vm.New(reg, vm.Config{Role: vm.RoleSurrogate, HeapCapacity: 1 << 20})
	pc, ps := remote.NewPair(client, surrogate, remote.Options{Workers: 2})
	defer pc.Close()
	defer ps.Close()

	th := client.NewThread()
	id, err := th.New("Svc", 64)
	if err != nil {
		b.Fatal(err)
	}
	client.SetRoot("svc", id)
	if _, _, err := pc.Offload([]string{"Svc"}); err != nil {
		b.Fatal(err)
	}
	arg := vm.Int(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := th.Invoke(id, "echo", arg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOffloadMigration measures object-batch migration throughput.
func BenchmarkOffloadMigration(b *testing.B) {
	skipBench(b)
	reg := vm.NewRegistry()
	mustRegister(b, reg, vm.ClassSpec{Name: "Data", Fields: []string{"next"}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		client := vm.New(reg, vm.Config{Role: vm.RoleClient, HeapCapacity: 64 << 20})
		surrogate := vm.New(reg, vm.Config{Role: vm.RoleSurrogate, HeapCapacity: 64 << 20})
		pc, ps := remote.NewPair(client, surrogate, remote.Options{Workers: 2})
		th := client.NewThread()
		var prev vm.ObjectID
		for j := 0; j < 1000; j++ {
			id, err := th.New("Data", 1024)
			if err != nil {
				b.Fatal(err)
			}
			if prev != vm.InvalidObject {
				if err := th.SetField(id, "next", vm.RefOf(prev)); err != nil {
					b.Fatal(err)
				}
			}
			client.SetRoot("head", id)
			prev = id
			th.ClearTemps()
		}
		b.StartTimer()
		if n, _, err := pc.Offload([]string{"Data"}); err != nil || n != 1000 {
			b.Fatalf("offload: %d, %v", n, err)
		}
		b.StopTimer()
		pc.Close()
		ps.Close()
		b.StartTimer()
	}
	b.ReportMetric(1000, "objects/op")
}

// BenchmarkTraceRecordJavaNote measures full-scenario trace extraction
// through the live VM (the paper's trace-acquisition step).
func BenchmarkTraceRecordJavaNote(b *testing.B) {
	skipBench(b)
	spec, err := apps.ByName("JavaNote")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		tr, err := apps.Record(spec)
		if err != nil {
			b.Fatal(err)
		}
		if len(tr.Events) == 0 {
			b.Fatal("empty trace")
		}
	}
}

// BenchmarkTraceStats measures Table 2 statistics computation.
func BenchmarkTraceStats(b *testing.B) {
	skipBench(b)
	s := suite(b)
	tr, err := s.Trace("JavaNote")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := trace.ComputeStats(tr)
		if st.InteractionEvents == 0 {
			b.Fatal("no interactions")
		}
	}
}

// BenchmarkLinkModel measures network-cost computation.
func BenchmarkLinkModel(b *testing.B) {
	skipBench(b)
	l := netmodel.WaveLAN()
	var sink time.Duration
	for i := 0; i < b.N; i++ {
		sink += l.RPC(int64(i%4096), 64)
	}
	_ = sink
}

// BenchmarkPolicyChoose measures memory-policy evaluation over a
// JavaNote-scale candidate family.
func BenchmarkPolicyChoose(b *testing.B) {
	skipBench(b)
	s := suite(b)
	tr, err := s.Trace("JavaNote")
	if err != nil {
		b.Fatal(err)
	}
	m := monitor.New(nil)
	for i := range tr.Events {
		m.Feed(tr, &tr.Events[i])
	}
	g := m.Graph()
	cands, err := mincut.Candidates(mincut.FromGraph(g, graph.BytesWeight))
	if err != nil {
		b.Fatal(err)
	}
	mp := policy.MemoryPolicy{MinFreeFraction: 0.2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mp.Choose(g, 6<<20, cands); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationHeuristics compares partitioning-heuristic variants
// (extension of the paper's §8: modified MINCUT vs KL-refined vs greedy
// memory-density) under the Figure 6 setup.
func BenchmarkAblationHeuristics(b *testing.B) {
	skipBench(b)
	s := suite(b)
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.AblationHeuristics()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.MinCut*100, "%mincut-"+r.App)
		b.ReportMetric(r.MinCutKL*100, "%mincutKL-"+r.App)
		b.ReportMetric(r.Greedy*100, "%greedy-"+r.App)
	}
}

// BenchmarkEnergyStudy measures the battery-life extension study (paper
// §2/§8): client energy local vs offloaded, always-on radio vs 802.11
// power-save.
func BenchmarkEnergyStudy(b *testing.B) {
	skipBench(b)
	s := suite(b)
	var rows []experiments.EnergyRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = s.EnergyStudy()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.PSMSavingFrac*100, "%psm-saving-"+r.App)
	}
}

// BenchmarkRecallRoundTrip measures offload + recall of a 1,000-object
// working set: the §8 "global placement" reverse path.
func BenchmarkRecallRoundTrip(b *testing.B) {
	skipBench(b)
	reg := vm.NewRegistry()
	mustRegister(b, reg, vm.ClassSpec{Name: "Data", Fields: []string{"next"}})
	client := vm.New(reg, vm.Config{Role: vm.RoleClient, HeapCapacity: 64 << 20})
	surrogate := vm.New(reg, vm.Config{Role: vm.RoleSurrogate, HeapCapacity: 64 << 20})
	pc, ps := remote.NewPair(client, surrogate, remote.Options{Workers: 2})
	defer pc.Close()
	defer ps.Close()
	th := client.NewThread()
	var prev vm.ObjectID
	for j := 0; j < 1000; j++ {
		id, err := th.New("Data", 512)
		if err != nil {
			b.Fatal(err)
		}
		if prev != vm.InvalidObject {
			if err := th.SetField(id, "next", vm.RefOf(prev)); err != nil {
				b.Fatal(err)
			}
		}
		client.SetRoot("head", id)
		prev = id
		th.ClearTemps()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := pc.Offload([]string{"Data"}); err != nil {
			b.Fatal(err)
		}
		if _, _, err := pc.Recall([]string{"Data"}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(2000, "migrations/op")
}

// BenchmarkRPCInvoke measures remote echo invocations (string + 96-byte
// blob + int out, blob back) from concurrent client threads — the
// paper's apps issue crossings from many threads at once, and this is
// the load the sharded call table and lock-free send path exist for —
// per transport flavor: the binary codec over in-process channels, the
// binary codec over a TCP loopback, and the legacy gob framing over the
// same loopback, the baseline the codec's speedup and allocation
// targets are measured against (BENCH_rpc.json records the comparison).
func BenchmarkRPCInvoke(b *testing.B) {
	skipBench(b)
	for _, mode := range rpcbench.Modes() {
		b.Run(string(mode), func(b *testing.B) {
			env, err := rpcbench.New(rpcbench.Config{Mode: mode, Workers: 8})
			if err != nil {
				b.Fatal(err)
			}
			defer func() {
				if err := env.Close(); err != nil {
					b.Errorf("close: %v", err)
				}
			}()
			b.ReportAllocs()
			// 8 in-flight callers regardless of core count: with requests
			// pipelined on the socket the cost per op is the CPU the stack
			// burns, not the loopback round-trip latency.
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				invoke := env.Caller()
				for pb.Next() {
					if err := invoke(); err != nil {
						b.Error(err)
						return
					}
				}
			})
		})
	}
}

// BenchmarkRPCInvokeSerial is the single-caller latency variant: one
// blocked round trip at a time, dominated by socket syscalls on the TCP
// flavors.
func BenchmarkRPCInvokeSerial(b *testing.B) {
	skipBench(b)
	for _, mode := range rpcbench.Modes() {
		b.Run(string(mode), func(b *testing.B) {
			env, err := rpcbench.New(rpcbench.Config{Mode: mode})
			if err != nil {
				b.Fatal(err)
			}
			defer func() {
				if err := env.Close(); err != nil {
					b.Errorf("close: %v", err)
				}
			}()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := env.Invoke(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRPCCodec isolates the wire codec from sockets and
// scheduling: one encode+decode round trip of the representative invoke
// message, hand-rolled binary framing vs a persistent gob stream. This
// is the layer the codec rewrite targets; over a real socket the
// kernel's round-trip floor (BenchmarkRPCRawTCPFloor) dominates both
// flavors and compresses the visible gap.
func BenchmarkRPCCodec(b *testing.B) {
	skipBench(b)
	for _, cfg := range []struct {
		name string
		step func() error
	}{
		{"binary", rpcbench.BinaryCodec()},
		{"gob", rpcbench.GobCodec()},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := cfg.step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRPCRawTCPFloor measures a codec-free, platform-free echo of
// one frame-sized buffer over TCP loopback: the host's syscall floor
// under every end-to-end RPC number above it.
func BenchmarkRPCRawTCPFloor(b *testing.B) {
	skipBench(b)
	step, closeConn, err := rpcbench.RawTCPEcho(256)
	if err != nil {
		b.Fatal(err)
	}
	defer func() {
		if err := closeConn(); err != nil {
			b.Errorf("close: %v", err)
		}
	}()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRPCReleaseStorm measures a 1,000-stub distributed-GC death
// storm with coalescing on (default batching) and off (batch size 1,
// the one-message-per-decref wire behavior before batching). The
// releases/msg metric is the coalescing win.
func BenchmarkRPCReleaseStorm(b *testing.B) {
	skipBench(b)
	const storm = 1000
	for _, cfg := range []struct {
		name  string
		batch int
	}{
		{"batched", 0},
		{"unbatched", 1},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			env, err := rpcbench.New(rpcbench.Config{Mode: rpcbench.ModeChan, ReleaseBatchSize: cfg.batch})
			if err != nil {
				b.Fatal(err)
			}
			defer func() {
				if err := env.Close(); err != nil {
					b.Errorf("close: %v", err)
				}
			}()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := env.ReleaseStorm(storm); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			st := env.PC.Stats()
			if st.ReleaseBatchesSent > 0 {
				b.ReportMetric(float64(st.ReleasesSent)/float64(st.ReleaseBatchesSent), "releases/msg")
			}
		})
	}
}

// BenchmarkRPCPipeline measures one chained-call transaction — depth
// dependent hops, each needing the previous result as its receiver —
// pipelined as one MsgInvokeBatch frame versus issued as depth blocking
// round trips, at the paper-style depths 1/4/16/64 over the in-process
// and TCP transports. The wire/op metric is the client's two-way wire
// volume per transaction; BENCH_rpc.json records the speedup claim
// (≥5x at depth 16 over TCP) machine-checkably.
func BenchmarkRPCPipeline(b *testing.B) {
	skipBench(b)
	for _, mode := range []rpcbench.Mode{rpcbench.ModeChan, rpcbench.ModeTCP} {
		for _, depth := range []int{1, 4, 16, 64} {
			for _, variant := range []struct {
				name string
				run  func(*rpcbench.Env, int) error
			}{
				{"sequential", (*rpcbench.Env).SequentialChain},
				{"pipelined", (*rpcbench.Env).PipelineChain},
			} {
				name := string(mode) + "/depth-" + strconv.Itoa(depth) + "/" + variant.name
				b.Run(name, func(b *testing.B) {
					env, err := rpcbench.New(rpcbench.Config{Mode: mode, Workers: 2})
					if err != nil {
						b.Fatal(err)
					}
					defer func() {
						if err := env.Close(); err != nil {
							b.Errorf("close: %v", err)
						}
					}()
					wireBefore := env.WireBytes()
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						if err := variant.run(env, depth); err != nil {
							b.Fatal(err)
						}
					}
					b.StopTimer()
					b.ReportMetric(float64(env.WireBytes()-wireBefore)/float64(b.N), "wire/op")
					if variant.name == "pipelined" && env.PipelineFrames() != int64(b.N) {
						b.Fatalf("pipelined run sent %d frames for %d chains: it degraded to sequential",
							env.PipelineFrames(), b.N)
					}
				})
			}
		}
	}
}

// BenchmarkRPCLazyMigration migrates the JavaNote-like document set
// (1 KiB hot text + 16 KiB cold thumbnail per note) full-state and
// lazily, reporting the measured migration wire bytes per run — the
// number the lazy_migration section of BENCH_rpc.json is built from.
func BenchmarkRPCLazyMigration(b *testing.B) {
	skipBench(b)
	const notes = 16
	for _, cfg := range []struct {
		name string
		lazy bool
	}{
		{"full", false},
		{"lazy", true},
	} {
		b.Run(cfg.name, func(b *testing.B) {
			var wire int64
			for i := 0; i < b.N; i++ {
				m, err := rpcbench.MeasureLazyMigration(notes, cfg.lazy)
				if err != nil {
					b.Fatal(err)
				}
				if m.HotFaults != 0 {
					b.Fatalf("hot fields faulted %d times", m.HotFaults)
				}
				wire = m.WireBytes
			}
			b.ReportMetric(float64(wire), "migration-wire-bytes")
		})
	}
}

// skipBench skips heavyweight benchmarks when the binary runs with the
// race detector (5-20x slowdown makes `go test -race ./...` crawl) or in
// -short mode. Correctness under -race is covered by the regular tests.
func skipBench(b *testing.B) {
	b.Helper()
	if raceEnabled {
		b.Skip("skipping benchmark under the race detector")
	}
	if testing.Short() {
		b.Skip("skipping benchmark in short mode")
	}
}
