package aide

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"aide/internal/remote"
	"aide/internal/vm"
)

// handoffFixture stands up a client attached to one TCP surrogate with a
// second TCP surrogate waiting as the drain destination, and one
// offloaded Doc the appender can drive.
type handoffFixture struct {
	client   *Client
	s1, s2   *Surrogate
	addr1    string
	addr2    string
	th       *Thread
	doc      ObjectID
	expected int64 // the Doc counter's current value
}

func newHandoffFixture(t *testing.T, clientOpts ...Option) *handoffFixture {
	t.Helper()
	return newHandoffFixtureOpts(t, clientOpts, nil)
}

func newHandoffFixtureOpts(t *testing.T, clientOpts, surrogateOpts []Option) *handoffFixture {
	t.Helper()
	reg := demoRegistry(t)
	f := &handoffFixture{
		s1: NewSurrogate(reg, surrogateOpts...),
		s2: NewSurrogate(reg, surrogateOpts...),
	}
	var err error
	if f.addr1, err = f.s1.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatalf("listen s1: %v", err)
	}
	if f.addr2, err = f.s2.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatalf("listen s2: %v", err)
	}
	opts := append([]Option{WithHeap(1 << 20), WithCallTimeout(5 * time.Second)}, clientOpts...)
	f.client = NewClient(reg, opts...)
	t.Cleanup(func() {
		_ = f.client.Close()
		_ = f.s1.Close()
		_ = f.s2.Close()
	})
	if err := f.client.AttachTCP(f.addr1); err != nil {
		t.Fatalf("attach: %v", err)
	}
	f.th = f.client.Thread()
	if f.doc, err = f.th.New("Doc", 300<<10); err != nil {
		t.Fatalf("new Doc: %v", err)
	}
	f.client.VM().SetRoot("doc", f.doc)
	f.append(t) // one interaction so the monitor has a graph to partition
	if _, err := f.client.Offload(); err != nil {
		t.Fatalf("offload: %v", err)
	}
	return f
}

// append adds 2 to the Doc counter and asserts the exactly-once
// cumulative sequence.
func (f *handoffFixture) append(t *testing.T) {
	t.Helper()
	if err := f.tryAppend(); err != nil {
		t.Fatal(err)
	}
}

func (f *handoffFixture) tryAppend() error {
	v, err := f.th.Invoke(f.doc, "append", Int(2))
	if err != nil {
		return fmt.Errorf("append: %w", err)
	}
	f.expected += 2
	if v.I != f.expected {
		return fmt.Errorf("append returned %d, want %d (lost or duplicated an increment)", v.I, f.expected)
	}
	return nil
}

// TestLiveHandoffBetweenTCPSurrogates drains a surrogate while the
// application keeps calling: the session must move to the second
// surrogate with the client observing no errors and no lost or repeated
// increments — only latency.
func TestLiveHandoffBetweenTCPSurrogates(t *testing.T) {
	f := newHandoffFixture(t)

	// Hammer appends from a background goroutine so calls are in flight
	// when the drain hits; each one must see the exact cumulative value.
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				done <- nil
				return
			default:
			}
			if err := f.tryAppend(); err != nil {
				done <- err
				return
			}
		}
	}()

	time.Sleep(50 * time.Millisecond) // let the appender reach steady state
	moved, err := f.s1.Drain(context.Background(), f.addr2)
	if err != nil {
		t.Fatalf("drain: %v", err)
	}
	if moved != 1 {
		t.Fatalf("drain moved %d sessions, want 1", moved)
	}
	time.Sleep(50 * time.Millisecond) // let post-handoff appends land on s2
	close(stop)
	if err := <-done; err != nil {
		t.Fatalf("appender during drain: %v", err)
	}

	if n := f.client.Handoffs(); n != 1 {
		t.Fatalf("client completed %d handoffs, want 1", n)
	}
	if st := f.s1.Stats(); st.Drained != 1 {
		t.Fatalf("s1 drained %d sessions, want 1", st.Drained)
	}
	if n := f.s1.Sessions(); n != 0 {
		t.Fatalf("s1 still holds %d sessions after drain", n)
	}
	if n := f.s2.Sessions(); n != 1 {
		t.Fatalf("s2 holds %d sessions after drain, want 1", n)
	}
	// The moved session must serve the same counter: state survived.
	f.append(t)
	if n := f.client.Surrogates(); n != 1 {
		t.Fatalf("client sees %d surrogates after handoff, want 1", n)
	}
}

// TestDrainFailureKeepsSessionServing points a drain at an address
// nothing listens on: the handoff must fail, the session must resume in
// place, and the application must keep running against the original
// surrogate.
func TestDrainFailureKeepsSessionServing(t *testing.T) {
	f := newHandoffFixture(t)

	if _, err := f.s1.Drain(context.Background(), "127.0.0.1:1"); err == nil {
		t.Fatal("drain to a dead destination reported success")
	}
	if st := f.s1.Stats(); st.Drained != 0 {
		t.Fatalf("s1 drained %d sessions despite the failed handoff", st.Drained)
	}
	if n := f.client.Handoffs(); n != 0 {
		t.Fatalf("client counted %d handoffs despite the failure", n)
	}
	// The session recovered: appends keep the exactly-once sequence on s1.
	f.append(t)
	f.append(t)
	if n := f.s1.Sessions(); n != 1 {
		t.Fatalf("s1 holds %d sessions after the failed drain, want 1", n)
	}
}

// drainDirective dials addr as a throwaway directive connection (the
// shape fleet.TCPTarget.DrainSessions uses) and sends a wire drain order
// carrying key.
func drainDirective(t *testing.T, addr, dest string, key []byte) error {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial directive connection: %v", err)
	}
	v := vm.New(vm.NewRegistry(), vm.Config{Role: vm.RoleClient, HeapCapacity: 1 << 16})
	peer := remote.NewPeer(v, remote.NewConnTransport(conn), remote.Options{Workers: 1})
	defer func() { _ = peer.Close() }()
	return peer.DrainRemote(context.Background(), dest, key)
}

// TestDrainDirectiveAuthorization pins the wire drain directive's
// credential check: a surrogate honors SnapDrain only from a sender
// presenting its WithDrainKey secret — any connected tenant reaches the
// directive handler, and an unauthenticated drain would let one tenant
// exfiltrate every other tenant's session to an address of its choosing.
func TestDrainDirectiveAuthorization(t *testing.T) {
	f := newHandoffFixtureOpts(t, nil, []Option{WithDrainKey("fleet-secret")})

	if err := drainDirective(t, f.addr1, f.addr2, nil); err == nil {
		t.Fatal("key-less drain directive accepted")
	}
	if err := drainDirective(t, f.addr1, f.addr2, []byte("wrong")); err == nil {
		t.Fatal("wrong-key drain directive accepted")
	}
	if st := f.s1.Stats(); st.Drained != 0 {
		t.Fatalf("s1 drained %d sessions on unauthorized directives", st.Drained)
	}
	if n := f.client.Handoffs(); n != 0 {
		t.Fatalf("client completed %d handoffs on unauthorized directives", n)
	}
	f.append(t) // the session never moved and keeps serving

	// The fleet credential is honored and the drain completes end to end.
	if err := drainDirective(t, f.addr1, f.addr2, []byte("fleet-secret")); err != nil {
		t.Fatalf("authorized drain directive: %v", err)
	}
	if st := f.s1.Stats(); st.Drained != 1 {
		t.Fatalf("s1 drained %d sessions, want 1", st.Drained)
	}
	if n := f.s2.Sessions(); n != 1 {
		t.Fatalf("s2 holds %d sessions after the drain, want 1", n)
	}
	f.append(t) // same counter, new home
}

// TestDrainDirectiveRefusedWithoutKey pins the default: a surrogate
// constructed without WithDrainKey refuses every wire drain directive,
// whatever credential it presents. Only the local Surrogate.Drain API
// can order a drain then.
func TestDrainDirectiveRefusedWithoutKey(t *testing.T) {
	f := newHandoffFixture(t)
	if err := drainDirective(t, f.addr1, f.addr2, []byte("anything")); err == nil {
		t.Fatal("wire drain directive accepted by a surrogate with no drain key")
	}
	if st := f.s1.Stats(); st.Drained != 0 {
		t.Fatalf("s1 drained %d sessions, want 0", st.Drained)
	}
	f.append(t)
	// The local API still drains.
	if _, err := f.s1.Drain(context.Background(), f.addr2); err != nil {
		t.Fatalf("local drain: %v", err)
	}
	f.append(t)
}

// TestAbortedHandoffWakesParkedCallers pins the abort path's wake-up:
// application calls that bounced off the draining gate and parked must
// resume as soon as the handoff aborts and the session resumes in place
// — not sit out the full handoff timeout and surface ErrDrained.
func TestAbortedHandoffWakesParkedCallers(t *testing.T) {
	f := newHandoffFixture(t,
		WithHandoffTimeout(30*time.Second),
		WithDialer(func(ctx context.Context, addr string) (remote.Transport, error) {
			// Hold the handoff open long enough for appends to bounce and
			// park, then fail it.
			time.Sleep(150 * time.Millisecond)
			return nil, errors.New("handoff destination unreachable")
		}),
	)

	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		for {
			select {
			case <-stop:
				done <- nil
				return
			default:
			}
			if err := f.tryAppend(); err != nil {
				done <- err
				return
			}
		}
	}()
	time.Sleep(30 * time.Millisecond) // let the appender reach steady state

	start := time.Now()
	if _, err := f.s1.Drain(context.Background(), f.addr2); err == nil {
		t.Fatal("drain succeeded despite the failing dialer")
	}
	time.Sleep(100 * time.Millisecond) // woken appends land in place
	close(stop)
	if err := <-done; err != nil {
		t.Fatalf("appender during aborted handoff: %v", err)
	}
	// Well under the 30 s handoff timeout: the abort woke the parked
	// calls instead of leaving them to time out.
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("appender resumed only after %v; parked callers were not woken", elapsed)
	}
	if n := f.client.Handoffs(); n != 0 {
		t.Fatalf("client counted %d handoffs despite the abort", n)
	}
	if n := f.s1.Sessions(); n != 1 {
		t.Fatalf("s1 holds %d sessions after the aborted handoff, want 1", n)
	}
	f.append(t) // exactly-once sequence intact, still served by s1
}

// TestDrainEmptyDestinationRejected covers the argument check.
func TestDrainEmptyDestinationRejected(t *testing.T) {
	reg := demoRegistry(t)
	s := NewSurrogate(reg)
	defer func() { _ = s.Close() }()
	if _, err := s.Drain(context.Background(), ""); err == nil {
		t.Fatal("drain with empty destination succeeded")
	}
}

// fakeVMPeer is an inert vm.Peer used only for pointer identity in the
// waitHandoff round-detection tests; no method is ever called.
type fakeVMPeer struct{ vm.Peer }

// TestWaitHandoffRounds pins the drain handler's round detection: a
// bounce from the peer a completed handoff replaced is a straggler and
// retries immediately, while a bounce from the peer that handoff
// installed means the new home is draining — the caller must park on a
// fresh round and wake only when that round completes (or time out).
func TestWaitHandoffRounds(t *testing.T) {
	reg := demoRegistry(t)
	c := NewClient(reg, WithHeap(1<<20), WithHandoffTimeout(50*time.Millisecond))
	defer func() { _ = c.Close() }()

	oldPeer := &fakeVMPeer{}
	newPeer := &fakeVMPeer{}
	done := make(chan struct{})
	close(done)
	c.mu.Lock()
	c.handoffs[0] = &handoffWait{ch: done, done: true, installed: newPeer}
	c.mu.Unlock()

	// A straggler bounced by the replaced peer retries immediately.
	if !c.waitHandoff(0, oldPeer) {
		t.Fatal("straggler of a completed handoff did not retry")
	}
	// So does one whose peer identity was lost.
	if !c.waitHandoff(0, nil) {
		t.Fatal("identity-less straggler did not retry")
	}

	// A bounce from the installed home opens a new round: the caller
	// parks until that round's handoff lands.
	released := make(chan bool, 1)
	go func() { released <- c.waitHandoff(0, newPeer) }()
	// The parker must have replaced the stale done entry with a fresh
	// open round before blocking.
	deadline := time.Now().Add(time.Second)
	var hw *handoffWait
	for time.Now().Before(deadline) {
		c.mu.Lock()
		hw = c.handoffs[0]
		open := hw != nil && !hw.done
		c.mu.Unlock()
		if open {
			break
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case r := <-released:
		t.Fatalf("parker returned %v before the new round completed", r)
	default:
	}
	c.mu.Lock()
	hw.done = true
	hw.installed = oldPeer
	close(hw.ch)
	c.mu.Unlock()
	if !<-released {
		t.Fatal("parker did not retry after the new round completed")
	}

	// With no handoff arriving, a new-round park gives up at the
	// handoff timeout and surfaces the drained error.
	c.mu.Lock()
	c.handoffs[0] = &handoffWait{ch: make(chan struct{}), done: true, installed: oldPeer}
	c.mu.Unlock()
	if c.waitHandoff(0, oldPeer) {
		t.Fatal("abandoned round did not time out")
	}
}
