package aide

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"aide/internal/remote"
	"aide/internal/telemetry"
	"aide/internal/vm"
)

// handoffWait parks the application threads whose calls bounced off a
// draining surrogate until the session's new home is wired in. done
// stays set after the channel closes so a straggler that reads the
// drained error late still retries immediately; installed records the
// peer the completed handoff wired in, so a bounce coming from that
// very peer is recognized as the start of the NEXT drain rather than a
// straggler of the last one. An aborted handoff closes the round with
// installed nil — the session resumed in place, so every bounce retries
// immediately against it. Guarded by c.mu.
type handoffWait struct {
	ch        chan struct{}
	done      bool
	installed vm.Peer
}

// waitHandoff is the VM's drain handler: a remote call on slot idx came
// back with the typed drained redirect, issued through peer used. Block
// until the concurrent handoff replaces the slot's peer (then retry the
// call against the new home), or give up after the handoff timeout (the
// call then surfaces ErrDrained to the application).
func (c *Client) waitHandoff(idx int, used vm.Peer) bool {
	c.mu.Lock()
	hw := c.handoffs[idx]
	switch {
	case hw == nil:
		hw = &handoffWait{ch: make(chan struct{})}
		c.handoffs[idx] = hw
	case hw.done && (used == nil || used != hw.installed):
		// Straggler of the completed handoff: the bounce came from the
		// replaced peer and the slot already points at the new home.
		aborted := hw.installed == nil
		c.mu.Unlock()
		if aborted {
			// The round aborted and the session resumed in place. The
			// surrogate clears its draining gate only when our error
			// reply lands, which can lag this wake-up by a round trip; a
			// short pause keeps the caller's bounded redirect retries
			// from burning out against the still-closing gate.
			time.Sleep(2 * time.Millisecond)
		}
		return true
	case hw.done:
		// The bounce came from the peer the last handoff installed: that
		// home is draining now. Open a fresh round and park on it.
		hw = &handoffWait{ch: make(chan struct{})}
		c.handoffs[idx] = hw
	}
	timeout := c.opts.handoffTimeout
	c.mu.Unlock()
	if timeout <= 0 {
		timeout = 10 * time.Second
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case <-hw.ch:
		return true
	case <-timer.C:
		return false
	}
}

// installHandoffHandler subscribes a surrogate connection to live
// handoffs: when the surrogate drains, it pushes the session snapshot
// here with the destination's address.
func (c *Client) installHandoffHandler(p *remote.Peer) {
	p.SetSnapshotHandler(func(method, dest string, img []byte) error {
		if method != remote.SnapHandoff {
			return fmt.Errorf("aide: client cannot consume snapshot push %q", method)
		}
		return c.handleHandoff(p, dest, img)
	})
}

// dial resolves a destination surrogate address to a transport, through
// the WithDialer override when one is installed.
func (c *Client) dial(ctx context.Context, addr string) (remote.Transport, error) {
	if c.opts.dialer != nil {
		return c.opts.dialer(ctx, addr)
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return remote.NewConnTransport(conn), nil
}

// handleHandoff re-homes one session: the draining surrogate shipped its
// snapshot of our session with the destination's address. Dial the
// destination, open a replacement connection that inherits the old
// slot's index (so every stub and import table stays valid), restore the
// image there, and atomically swap the slot. Returning nil acknowledges
// the handoff — the old surrogate then retires the session; any error
// makes it resume in place instead.
func (c *Client) handleHandoff(old *remote.Peer, dest string, img []byte) error {
	idx := old.VMIndex()
	traced := c.tracer.Enabled()
	var tStart time.Time
	if traced {
		tStart = time.Now()
	}

	// Publish (or adopt) the wait entry before any slow work so threads
	// bounced by the draining gate park instead of erroring.
	c.mu.Lock()
	hw := c.handoffs[idx]
	if hw == nil || hw.done {
		hw = &handoffWait{ch: make(chan struct{})}
		c.handoffs[idx] = hw
	}
	c.mu.Unlock()

	// fail abandons the handoff: the surrogate sees our error, clears
	// draining, and the session resumes in place — so wake every parked
	// waiter now (done with no installed peer: any later bounce is
	// treated as a retriable straggler) instead of leaving them to sit
	// out the full handoff timeout and surface ErrDrained for a session
	// that is serving again.
	fail := func(err error) error {
		c.mu.Lock()
		if c.handoffs[idx] == hw && !hw.done {
			hw.done = true
			hw.installed = nil
			close(hw.ch)
		}
		c.mu.Unlock()
		return err
	}

	// Scope the re-homing to the old connection's lifetime: if it dies
	// mid-handoff the disconnect path owns the slot.
	ctx := old.LifeContext()
	t, err := c.dial(ctx, dest)
	if err != nil {
		return fail(fmt.Errorf("aide: handoff dial %s: %w", dest, err))
	}
	ro := c.opts.remoteOptions()
	ro.OnDown = c.onPeerDown
	ro.Takeover = &idx
	np := remote.NewPeer(c.vm, t, ro)
	c.installHandoffHandler(np)
	abort := func(err error) error {
		if cerr := np.Close(); cerr != nil && c.opts.logf != nil {
			c.opts.logf("aide: close aborted handoff peer: %v", cerr)
		}
		return fail(err)
	}
	if _, err := np.Attach(ctx); err != nil && !errors.Is(err, remote.ErrAttachUnsupported) {
		return abort(fmt.Errorf("aide: handoff attach %s: %w", dest, err))
	}
	if err := np.PushSnapshot(ctx, remote.SnapRestore, "", img); err != nil {
		return abort(fmt.Errorf("aide: handoff restore at %s: %w", dest, err))
	}

	// Swap under discMu so the exchange cannot interleave with a
	// disconnect teardown of the same slot.
	c.discMu.Lock()
	c.mu.Lock()
	if idx < 0 || idx >= len(c.peers) || c.peers[idx] != old {
		c.mu.Unlock()
		c.discMu.Unlock()
		return abort(errors.New("aide: handoff: peer slot lost mid-transfer"))
	}
	c.peers[idx] = np
	// Claim the async old-peer closer in the same critical section that
	// claims the slot, so it is serialized against Detach's bg.Wait.
	c.bg.Add(1)
	c.mu.Unlock()
	var vp vm.Peer = np
	if c.opts.speculate {
		vp = newSpecPeer(c, np)
	}
	if err := c.vm.ReplacePeer(idx, vp); err != nil {
		c.mu.Lock()
		c.peers[idx] = old
		c.bg.Done()
		c.mu.Unlock()
		c.discMu.Unlock()
		return abort(fmt.Errorf("aide: handoff swap: %w", err))
	}
	c.discMu.Unlock()

	c.mu.Lock()
	hw.done = true
	hw.installed = vp
	close(hw.ch)
	c.handoffsDone++
	logf := c.opts.logf
	c.mu.Unlock()
	c.pm.handoffs.Inc()
	if traced {
		c.tracer.Emit(telemetry.Span{
			Kind: telemetry.SpanDrain, Note: "client:" + dest, Peer: idx,
			Bytes: int64(len(img)), Start: tStart, Dur: time.Since(tStart),
		})
	}
	// Close the old connection asynchronously: this handler runs on one
	// of its own serve workers, which Close joins. Let the old peer's
	// in-flight replies land first — a call answered before the drain
	// quiesced may still be on the wire, and closing under it would turn
	// an executed call into a spurious failure.
	go func() {
		defer c.bg.Done()
		deadline := time.Now().Add(time.Second)
		for old.PendingCalls() > 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if err := old.Close(); err != nil && logf != nil {
			logf("aide: close handed-off surrogate %d: %v", idx, err)
		}
	}()
	return nil
}

// Handoffs reports how many live session handoffs this client has
// completed.
func (c *Client) Handoffs() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.handoffsDone
}
