// Package aide is a distributed platform for resource-constrained devices:
// a Go reproduction of AIDE from "Towards a Distributed Platform for
// Resource-Constrained Devices" (ICDCS 2002).
//
// A resource-constrained client device runs applications on an interpreted
// object VM. The platform monitors the application's execution and the
// state of system resources; when a trigger event occurs — resources
// running low or periodic re-evaluation — it analyzes the collected
// execution graph, decides whether offloading part of the application to a
// nearby surrogate server would be beneficial, and if so transparently
// migrates the selected classes' objects. Remote data accesses and method
// invocations then transparently cross the network in both directions.
//
// The package exposes the platform's three roles:
//
//   - Client: the constrained device. Runs the application, monitors it,
//     partitions it, offloads to a surrogate.
//   - Surrogate: a nearby server that lends memory and CPU.
//   - The application model: classes with Go-closure method bodies
//     registered in a Registry shared by both sides (the stand-in for Java
//     bytecode, which the paper assumes both VMs can access).
//
// Use NewLocalPair for an in-process platform, or NewClient /
// NewSurrogate with a TCP transport for a real two-process deployment.
package aide

import (
	"context"
	"time"

	"aide/internal/netmodel"
	"aide/internal/policy"
	"aide/internal/remote"
	"aide/internal/vm"
)

// Re-exported application-model types. The aliases make the VM's object
// model usable through the public API.
type (
	// Registry holds class definitions shared by client and surrogate.
	Registry = vm.Registry

	// ClassSpec declares a class; MethodSpec declares a method.
	ClassSpec = vm.ClassSpec
	// MethodSpec declares one method of a ClassSpec.
	MethodSpec = vm.MethodSpec

	// Thread is the execution context handed to method bodies.
	Thread = vm.Thread

	// Value is the VM's tagged scalar/reference union.
	Value = vm.Value

	// ObjectID identifies an object in a VM's namespace.
	ObjectID = vm.ObjectID

	// Link models the client↔surrogate network for simulated costing.
	Link = netmodel.Link

	// PolicyParams bundles the trigger/partitioning policy parameters.
	PolicyParams = policy.Params

	// Pipeline batches a chain of dependent remote invocations into one
	// round trip (promise pipelining); build one with Client.NewPipeline.
	Pipeline = vm.Pipeline

	// Promise is the not-yet-resolved result of a pipelined call.
	Promise = vm.Promise

	// PipelineError identifies the failing call of a pipelined frame;
	// every dependent promise yields the same *PipelineError.
	PipelineError = vm.PipelineError
)

// InvalidObject is the zero object reference.
const InvalidObject = vm.InvalidObject

// Typed session-control errors, re-exported from the remote module.
// Attach (and any later call on a rejected session) matches them with
// errors.Is across the wire.
var (
	// ErrAdmissionRejected reports an attach refused by the surrogate's
	// session or heap-quota cap.
	ErrAdmissionRejected = remote.ErrAdmissionRejected
	// ErrShed reports an attach refused because the surrogate's health
	// check says it is degraded and shedding load.
	ErrShed = remote.ErrShed
	// ErrEvicted reports a session the surrogate tore down to reclaim
	// capacity.
	ErrEvicted = remote.ErrEvicted
	// ErrDrained reports a request that reached a surrogate mid-handoff:
	// the session is moving to another surrogate. Clients handle the
	// redirect transparently (the call blocks until the handoff lands and
	// retries against the new home); the error surfaces only when the
	// handoff cannot complete.
	ErrDrained = remote.ErrDrained
)

// NewRegistry returns an empty class registry.
func NewRegistry() *Registry { return vm.NewRegistry() }

// Value constructors, re-exported.
var (
	// Nil returns the nil value.
	Nil = vm.Nil
	// Int boxes an integer.
	Int = vm.Int
	// Float boxes a float.
	Float = vm.Float
	// Bool boxes a boolean.
	Bool = vm.Bool
	// Str boxes a string.
	Str = vm.Str
	// Blob boxes a byte payload.
	Blob = vm.Blob
	// RefOf boxes an object reference.
	RefOf = vm.RefOf
)

// WaveLAN returns the paper's 11 Mbps / 2.4 ms RTT link model.
func WaveLAN() Link { return netmodel.WaveLAN() }

// InitialPolicy returns the paper's initial policy parameters: trigger
// below 5% free memory on three consecutive collection cycles, free at
// least 20% of the heap.
func InitialPolicy() PolicyParams { return policy.InitialParams() }

// Options configure a Client or Surrogate.

// Option configures platform construction.
type Option func(*options)

type options struct {
	heap        int64
	cpuSpeed    float64
	workers     int
	link        *netmodel.Link
	params      policy.Params
	monitor     bool
	monCost     time.Duration
	stateless   bool
	rebalanceGC int

	// Connection-robustness knobs, passed through to remote.Options.
	callTimeout     time.Duration
	retryMax        int
	retryBase       time.Duration
	disconnectAfter int
	probeInterval   time.Duration
	disconnectCool  int
	logf            func(format string, args ...any)

	// Observability, from WithTelemetry. Both nil by default: every
	// instrument the platform holds is then a nil-safe no-op.
	telemetry *TelemetryRegistry
	tracer    *Tracer

	// Lazy state transfer, from WithLazyMigration.
	lazyMigration   bool
	lazyMinAccesses int64

	// Surrogate session control, from WithMaxSessions, WithSessionQuota,
	// WithHealthCheck, and WithEvictOnDegraded. All inert on clients.
	maxSessions     int
	sessionQuota    int64
	healthCheck     func() error
	evictOnDegraded bool

	// Live-handoff and speculation knobs, from WithDialer,
	// WithHandoffTimeout, and WithSpeculation. All inert on surrogates.
	dialer         func(ctx context.Context, addr string) (remote.Transport, error)
	handoffTimeout time.Duration
	speculate      bool

	// Fleet-control credential, from WithDrainKey. Inert on clients.
	drainKey string
}

// remoteOptions maps the platform options onto the remote module's
// connection options.
func (o *options) remoteOptions() remote.Options {
	return remote.Options{
		Workers:         o.workers,
		Link:            o.link,
		CallTimeout:     o.callTimeout,
		RetryMax:        o.retryMax,
		RetryBase:       o.retryBase,
		DisconnectAfter: o.disconnectAfter,
		ProbeInterval:   o.probeInterval,
		Logf:            o.logf,
		Telemetry:       o.telemetry,
		Tracer:          o.tracer,
		LazyMigration:   o.lazyMigration,
	}
}

func defaultOptions() options {
	return options{
		heap:     64 << 20,
		cpuSpeed: 1,
		workers:  4,
		params:   policy.InitialParams(),
		monitor:  true,
	}
}

// WithHeap sets the VM heap budget in bytes (the client device's Java
// heap).
func WithHeap(bytes int64) Option { return func(o *options) { o.heap = bytes } }

// WithCPUSpeed scales the VM's simulated execution speed (the paper's
// surrogate runs 3.5× the client).
func WithCPUSpeed(speed float64) Option { return func(o *options) { o.cpuSpeed = speed } }

// WithWorkers sizes the RPC service thread pool.
func WithWorkers(n int) Option { return func(o *options) { o.workers = n } }

// WithLink attaches a simulated network-cost model to remote operations.
func WithLink(l Link) Option { return func(o *options) { o.link = &l } }

// WithPolicy sets the adaptive-offloading policy parameters.
func WithPolicy(p PolicyParams) Option { return func(o *options) { o.params = p } }

// WithoutMonitoring disables execution monitoring (and with it, adaptive
// offloading): the configuration of the paper's monitoring-overhead
// baseline.
func WithoutMonitoring() Option { return func(o *options) { o.monitor = false } }

// WithMonitorCost charges simulated time per monitored event, modeling the
// prototype's ~11% monitoring overhead.
func WithMonitorCost(d time.Duration) Option { return func(o *options) { o.monCost = d } }

// WithStatelessNativeLocal executes stateless native methods on the device
// where they are invoked (the paper's §5.2 enhancement).
func WithStatelessNativeLocal() Option { return func(o *options) { o.stateless = true } }

// WithCallTimeout bounds every remote call: a reply that has not arrived
// after d fails the call with remote.ErrCallTimeout and marks the
// connection degraded. Zero (the default) waits indefinitely.
func WithCallTimeout(d time.Duration) Option {
	return func(o *options) { o.callTimeout = d }
}

// WithRetryPolicy configures the remote module's bounded retry: up to max
// re-sends after transient transport failures, with exponential backoff
// starting at base. max < 0 disables retries; max == 0 keeps the default
// budget.
func WithRetryPolicy(max int, base time.Duration) Option {
	return func(o *options) { o.retryMax = max; o.retryBase = base }
}

// WithDisconnectAfter escalates a connection to disconnected — triggering
// local fallback — after n consecutive call timeouts. n < 0 disables the
// escalation; n == 0 keeps the default of 3.
func WithDisconnectAfter(n int) Option {
	return func(o *options) { o.disconnectAfter = n }
}

// WithHealthProbe pings each connection at the given period so that a
// silent link failure is detected even while the application is idle.
// Zero disables probing.
func WithHealthProbe(interval time.Duration) Option {
	return func(o *options) { o.probeInterval = interval }
}

// WithDisconnectCooldown sets how many garbage-collection cycles the
// client stays pinned local after losing a surrogate before adaptive
// offloading may resume. Zero keeps the default of 3.
func WithDisconnectCooldown(cycles int) Option {
	return func(o *options) { o.disconnectCool = cycles }
}

// WithLogf receives the platform's rare diagnostic lines (disconnections,
// orphan replies, dropped release batches). Nil discards them.
func WithLogf(f func(format string, args ...any)) Option {
	return func(o *options) { o.logf = f }
}

// WithLazyMigration enables monitor-driven lazy state transfer:
// migrations ship only the fields the access graph predicts will be
// touched (at least minAccesses recorded accesses make a field hot);
// cold fields stay behind and cross on first access, all of an object's
// remaining fields in one batched pull. minAccesses < 1 defaults to 1.
// Requires monitoring; with WithoutMonitoring the option is inert and
// migrations stay full-state.
func WithLazyMigration(minAccesses int64) Option {
	return func(o *options) { o.lazyMigration = true; o.lazyMinAccesses = minAccesses }
}

// WithPeriodicRebalance re-evaluates the whole placement every n
// garbage-collection cycles while a surrogate is attached, moving classes
// in both directions (the paper's §2 "periodic re-evaluation" combined
// with its §8 global-placement direction). Zero disables it.
func WithPeriodicRebalance(everyNGCs int) Option {
	return func(o *options) { o.rebalanceGC = everyNGCs }
}

// WithMaxSessions caps how many tenant sessions a surrogate admits
// concurrently; an attach beyond the cap fails with the typed
// remote.ErrAdmissionRejected wire error. Zero (the default) is
// unlimited. Client-side the option is inert.
func WithMaxSessions(n int) Option { return func(o *options) { o.maxSessions = n } }

// WithSessionQuota sets each tenant session's private heap quota in
// bytes and turns on heap-cap admission: a surrogate refuses new
// sessions once the committed quotas would exceed its WithHeap budget.
// Zero (the default) gives every session the full budget and disables
// the heap cap, the single-tenant behavior. Client-side the option is
// inert.
func WithSessionQuota(bytes int64) Option { return func(o *options) { o.sessionQuota = bytes } }

// WithHealthCheck installs a surrogate health probe consulted at
// admission (and served by Healthz): while fn returns an error the
// surrogate is degraded and sheds new sessions with the typed
// remote.ErrShed wire error. fn runs under the surrogate's session lock
// and must be fast and concurrency-safe. Client-side the option is
// inert.
func WithHealthCheck(fn func() error) Option { return func(o *options) { o.healthCheck = fn } }

// WithEvictOnDegraded lets a degraded surrogate actively reclaim
// capacity: each shed attach attempt also evicts the admitted session
// holding the most live bytes (remote.ErrEvicted for its late requests;
// the tenant sees a disconnect and fails over locally). Off by default;
// requires WithHealthCheck to ever trigger.
func WithEvictOnDegraded() Option { return func(o *options) { o.evictOnDegraded = true } }

// WithDialer overrides how the client reaches a destination surrogate
// during a live handoff (default: a TCP dial of the address the draining
// surrogate named). Fleet deployments with in-process surrogates inject
// a dialer that resolves addresses to channel transports.
func WithDialer(dial func(ctx context.Context, addr string) (remote.Transport, error)) Option {
	return func(o *options) { o.dialer = dial }
}

// WithHandoffTimeout bounds how long a call that hit a draining
// surrogate waits for the session's new home before failing with
// ErrDrained. Zero keeps the default of 10 seconds.
func WithHandoffTimeout(d time.Duration) Option {
	return func(o *options) { o.handoffTimeout = d }
}

// WithDrainKey arms a surrogate to accept wire drain directives: a
// SnapDrain push is honored only when it presents this key, so only the
// fleet coordinator (configured with the same key) can order the
// surrogate to hand its tenants' sessions to another address. Without a
// key — the default — every wire drain directive is refused: an
// ordinary tenant connection must never be able to redirect other
// tenants' session state. The in-process Surrogate.Drain API is not
// affected. Client-side the option is inert.
func WithDrainKey(key string) Option { return func(o *options) { o.drainKey = key } }

// WithSpeculation enables speculative clone execution: while a surrogate
// connection is degraded (timing out but not yet disconnected), remote
// invocations race a local clone of the session — seeded from the last
// pulled snapshot — against the remote call, and the first result wins.
// A local win promotes the clone's state into the client VM and drops
// the connection; a remote win discards the clone. Exactly one side's
// effects survive.
func WithSpeculation() Option { return func(o *options) { o.speculate = true } }
