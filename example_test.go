package aide_test

import (
	"fmt"
	"log"
	"time"

	"aide"
)

// exampleRegistry defines a tiny application: a pinned native Display and
// an offloadable Model.
func exampleRegistry() *aide.Registry {
	reg := aide.NewRegistry()
	mustRegister(reg, aide.ClassSpec{
		Name: "Display",
		Methods: []aide.MethodSpec{{
			Name:   "paint",
			Native: true,
			Body: func(th *aide.Thread, self aide.ObjectID, args []aide.Value) (aide.Value, error) {
				th.Work(10 * time.Microsecond)
				return aide.Nil(), nil
			},
		}},
	})
	mustRegister(reg, aide.ClassSpec{
		Name:   "Model",
		Fields: []string{"sum"},
		Methods: []aide.MethodSpec{{
			Name: "add",
			Body: func(th *aide.Thread, self aide.ObjectID, args []aide.Value) (aide.Value, error) {
				th.Work(10 * time.Microsecond)
				cur, err := th.GetField(self, "sum")
				if err != nil {
					return aide.Nil(), err
				}
				n := cur.I + args[0].I
				return aide.Int(n), th.SetField(self, "sum", aide.Int(n))
			},
		}},
	})
	return reg
}

// The simplest complete platform: create a client/surrogate pair, offload,
// and keep invoking the same reference.
func ExampleNewLocalPair() {
	client, surrogate, err := aide.NewLocalPair(exampleRegistry(),
		[]aide.Option{aide.WithHeap(1 << 20)},
		[]aide.Option{aide.WithCPUSpeed(3.5)},
	)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	defer surrogate.Close()

	th := client.Thread()
	model, err := th.New("Model", 400<<10)
	if err != nil {
		log.Fatal(err)
	}
	client.VM().SetRoot("model", model)
	if _, err := th.Invoke(model, "add", aide.Int(40)); err != nil {
		log.Fatal(err)
	}

	rep, err := client.Offload()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("offloaded:", rep.Classes)

	v, err := th.Invoke(model, "add", aide.Int(2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("sum:", v.I)
	// Output:
	// offloaded: [Model]
	// sum: 42
}

// Recall reverses an offload: the objects come home and the same
// references keep working.
func ExampleClient_Recall() {
	client, surrogate, err := aide.NewLocalPair(exampleRegistry(),
		[]aide.Option{aide.WithHeap(1 << 20)}, nil)
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()
	defer surrogate.Close()

	th := client.Thread()
	model, _ := th.New("Model", 400<<10)
	client.VM().SetRoot("model", model)
	if _, err := th.Invoke(model, "add", aide.Int(1)); err != nil {
		log.Fatal(err)
	}
	if _, err := client.Offload(); err != nil {
		log.Fatal(err)
	}
	n, _, err := client.Recall([]string{"Model"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("recalled objects:", n)
	v, _ := th.Invoke(model, "add", aide.Int(1))
	fmt.Println("sum:", v.I)
	// Output:
	// recalled objects: 1
	// sum: 2
}

// mustRegister registers a class during example setup, panicking on the
// spec errors that Register reports (setup bugs, not example behavior).
func mustRegister(reg *aide.Registry, spec aide.ClassSpec) {
	if _, err := reg.Register(spec); err != nil {
		panic(err)
	}
}
