//go:build race

package aide

// raceEnabled reports whether this test binary was built with the race
// detector; the heavyweight experiment benchmarks skip under it.
const raceEnabled = true
