package aide

import (
	"testing"
	"time"
)

func TestSurrogateListenLifecycle(t *testing.T) {
	reg := demoRegistry(t)
	s := NewSurrogate(reg)
	addr, err := s.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.ListenAndServe("127.0.0.1:0"); err == nil {
		t.Fatal("double listen accepted")
	}
	// Two clients can share one surrogate.
	c1 := NewClient(reg, WithHeap(1<<20))
	defer c1.Close()
	c2 := NewClient(reg, WithHeap(1<<20))
	defer c2.Close()
	if err := c1.AttachTCP(addr); err != nil {
		t.Fatal(err)
	}
	if err := c2.AttachTCP(addr); err != nil {
		t.Fatal(err)
	}
	if err := c1.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c2.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal("second close must be fine")
	}
	// After close, pings eventually fail.
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if c1.Ping() != nil {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("ping kept succeeding after surrogate close")
}

func TestOptionsApply(t *testing.T) {
	reg := demoRegistry(t)
	c := NewClient(reg,
		WithHeap(2<<20),
		WithCPUSpeed(0.5),
		WithWorkers(2),
		WithPolicy(PolicyParams{TriggerFreeFraction: 0.1, Tolerance: 2, MinFreeFraction: 0.3}),
		WithMonitorCost(time.Microsecond),
		WithStatelessNativeLocal(),
		WithPeriodicRebalance(4),
	)
	defer c.Close()
	if c.Heap().Capacity != 2<<20 {
		t.Fatalf("heap = %d", c.Heap().Capacity)
	}
	if c.VM().CPUSpeed() != 0.5 {
		t.Fatalf("speed = %v", c.VM().CPUSpeed())
	}
	// Monitoring on by default: a graph is available.
	if _, err := c.Graph(); err != nil {
		t.Fatal(err)
	}

	noMon := NewClient(reg, WithoutMonitoring())
	defer noMon.Close()
	if _, err := noMon.Graph(); err == nil {
		t.Fatal("graph without monitoring")
	}
}

func TestInitialPolicyConstant(t *testing.T) {
	p := InitialPolicy()
	if p.TriggerFreeFraction != 0.05 || p.Tolerance != 3 || p.MinFreeFraction != 0.20 {
		t.Fatalf("initial policy = %+v", p)
	}
	l := WaveLAN()
	if l.BandwidthBps != 11e6 {
		t.Fatalf("WaveLAN = %+v", l)
	}
}
