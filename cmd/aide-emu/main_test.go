package main

import (
	"path/filepath"
	"testing"

	"aide/internal/apps"
	"aide/internal/trace"
)

func TestRunErrors(t *testing.T) {
	if err := run("Nope", "", 6, "memory", 0.05, 3, 0.2, 1, 10, false, false, false, 11, 2.4); err == nil {
		t.Fatal("unknown app accepted")
	}
	if err := run("Tracer", "", 6, "warp", 0.05, 3, 0.2, 1, 10, false, false, false, 11, 2.4); err == nil {
		t.Fatal("unknown mode accepted")
	}
	if err := run("", "/nonexistent/trace", 6, "memory", 0.05, 3, 0.2, 1, 10, false, false, false, 11, 2.4); err == nil {
		t.Fatal("missing trace file accepted")
	}
}

func TestRunFromTraceFile(t *testing.T) {
	if testing.Short() {
		t.Skip("records a trace")
	}
	spec, err := apps.ByName("Tracer")
	if err != nil {
		t.Fatal(err)
	}
	tr, err := apps.Record(spec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "t.trace.gz")
	if err := trace.WriteFile(path, tr); err != nil {
		t.Fatal(err)
	}
	if err := run("", path, 8, "cpu", 0.05, 3, 0.2, 3.5, 10, true, true, false, 11, 2.4); err != nil {
		t.Fatalf("cpu-mode replay from file: %v", err)
	}
	if err := run("", path, 8, "memory", 0.05, 3, 0.2, 1, 10, false, false, true, 11, 2.4); err != nil {
		t.Fatalf("original replay from file: %v", err)
	}
}
