// Command aide-emu runs a single trace-driven emulation: pick an
// application (or a recorded trace file), a resource mode, and policy
// parameters, and it reports the simulated execution breakdown and every
// partitioning decision.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"aide/internal/apps"
	"aide/internal/emulator"
	"aide/internal/netmodel"
	"aide/internal/policy"
	"aide/internal/trace"
)

func main() {
	var (
		app       = flag.String("app", "JavaNote", "application to emulate (JavaNote, Dia, Biomer, Voxel, Tracer)")
		traceFile = flag.String("trace", "", "replay a recorded trace file instead of -app")
		heapMB    = flag.Int("heap", 6, "client heap size in MiB")
		mode      = flag.String("mode", "memory", "constraint mode: memory or cpu")
		threshold = flag.Float64("threshold", 0.05, "low-memory trigger threshold (fraction free)")
		tolerance = flag.Int("tolerance", 3, "consecutive low-memory reports before triggering")
		minFree   = flag.Float64("minfree", 0.20, "minimum heap fraction a partitioning must free")
		speedup   = flag.Float64("speedup", 1.0, "surrogate/client CPU ratio (3.5 in the paper's §5.2)")
		slowdown  = flag.Float64("slowdown", 10.0, "client slowdown vs the tracing PC")
		stateless = flag.Bool("stateless-native", false, "execute stateless natives where invoked (§5.2)")
		arrays    = flag.Bool("array-granularity", false, "place primitive arrays per object (§5.2)")
		baseline  = flag.Bool("original", false, "replay without offloading (the Original bars)")
		bwMbps    = flag.Float64("bandwidth", 11, "link bandwidth in Mbps (paper: 11 Mbps WaveLAN)")
		rttMS     = flag.Float64("rtt", 2.4, "link null round-trip time in ms (paper: 2.4 ms)")
	)
	flag.Parse()
	if err := run(*app, *traceFile, *heapMB, *mode, *threshold, *tolerance, *minFree,
		*speedup, *slowdown, *stateless, *arrays, *baseline, *bwMbps, *rttMS); err != nil {
		fmt.Fprintln(os.Stderr, "aide-emu:", err)
		os.Exit(1)
	}
}

func run(app, traceFile string, heapMB int, mode string, threshold float64, tolerance int,
	minFree, speedup, slowdown float64, stateless, arrays, baseline bool, bwMbps, rttMS float64) error {
	var tr *trace.Trace
	var err error
	if traceFile != "" {
		tr, err = trace.ReadFile(traceFile)
	} else {
		var spec *apps.Spec
		spec, err = apps.ByName(app)
		if err == nil {
			fmt.Fprintf(os.Stderr, "recording %s trace...\n", spec.Name)
			tr, err = apps.Record(spec)
		}
	}
	if err != nil {
		return err
	}

	cfg := emulator.Config{
		HeapCapacity: int64(heapMB) << 20,
		Link: netmodel.Link{
			BandwidthBps: bwMbps * 1e6,
			RTT:          time.Duration(rttMS * float64(time.Millisecond)),
			HeaderBytes:  32,
		},
		SurrogateSpeedup:     speedup,
		ClientSlowdown:       slowdown,
		Params:               policy.Params{TriggerFreeFraction: threshold, Tolerance: tolerance, MinFreeFraction: minFree},
		StatelessNativeLocal: stateless,
		ArrayGranularity:     arrays,
		DisableOffload:       baseline,
		GCBytesTrigger:       96 << 10,
	}
	switch strings.ToLower(mode) {
	case "memory":
		cfg.Mode = emulator.MemoryMode
	case "cpu":
		cfg.Mode = emulator.CPUMode
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}

	res, err := emulator.Run(tr, cfg)
	if err != nil {
		return err
	}

	fmt.Printf("%s on a %d MiB client heap (%s mode)\n", tr.App, heapMB, mode)
	fmt.Printf("  simulated time  %10.2fs\n", res.Time.Seconds())
	fmt.Printf("    execution     %10.2fs\n", res.ExecTime.Seconds())
	fmt.Printf("    communication %10.2fs (%d remote invocations, %d accesses, %d native)\n",
		res.CommTime.Seconds(), res.RemoteInvocations, res.RemoteAccesses, res.RemoteNative)
	fmt.Printf("    offload xfer  %10.2fs\n", res.TransferTime.Seconds())
	fmt.Printf("  GC cycles %d, events %d\n", res.GCCycles, res.Events)
	if res.OOM {
		fmt.Printf("  *** OUT OF MEMORY at event %d ***\n", res.OOMEvent)
	}
	for _, p := range res.Partitions {
		if p.Rejected {
			fmt.Printf("  partition attempt at t=%.1fs: rejected (%s)\n", p.At.Seconds(), p.RejectedReason)
			continue
		}
		fmt.Printf("  partitioned at t=%.1fs: %d classes, %.0f KB moved (%.0f%% of heap), cut %.0f KB\n",
			p.At.Seconds(), len(p.OffloadedClasses), float64(p.TransferBytes)/1024,
			p.HeapFreedFraction*100, float64(p.Decision.CutBytes)/1024)
	}
	return nil
}
