// Command aide-loadgen drives simulated tenant sessions against a
// surrogate fleet and reports session/op latency percentiles, admission
// outcomes, and — the point of the exercise — the cross-tenant failure
// count, which must be zero. By default it builds an in-process fleet of
// surrogates (channel transports, no sockets, so 10k+ sessions need no
// file descriptors); -addrs points it at real aide-surrogate processes
// instead.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"aide"
	"aide/internal/fleet"
)

func main() {
	surrogates := flag.Int("surrogates", 2, "size of the in-process surrogate fleet (ignored with -addrs)")
	addrs := flag.String("addrs", "", "comma-separated TCP surrogate addresses to drive instead of an in-process fleet")
	sessions := flag.Int("sessions", 10_000, "total tenant sessions to run")
	concurrency := flag.Int("concurrency", 128, "sessions in flight at once")
	ops := flag.Int("ops", 4, "remote invocations per session")
	bytes := flag.Int64("bytes", 8<<10, "offloaded object size per session")
	heap := flag.Int64("heap", 256<<20, "per-surrogate heap capacity (in-process fleet)")
	maxSessions := flag.Int("max-sessions", 0, "per-surrogate admission cap (0 = uncapped; in-process fleet)")
	sessionQuota := flag.Int64("session-quota", 0, "per-session heap quota in bytes (0 = whole heap; in-process fleet)")
	refreshEvery := flag.Int("refresh-every", 64, "re-probe the fleet after this many dispatched sessions")
	drainEvery := flag.Int("drain-every", 0, "live-drain one fleet target (round-robin) every N dispatched sessions (0 disables; sessions then run with handoff support)")
	drainKey := flag.String("drain-key", "", "drain credential presented to TCP surrogates (must match their -drain-key; in-process fleets drain directly and ignore it)")
	timeout := flag.Duration("timeout", 10*time.Minute, "overall run deadline")
	jsonPath := flag.String("json", "", "file to write the machine-readable report into (empty disables)")
	flag.Parse()

	if err := run(*surrogates, *addrs, *sessions, *concurrency, *ops, *bytes, *heap,
		*maxSessions, *sessionQuota, *refreshEvery, *drainEvery, *drainKey, *timeout, *jsonPath); err != nil {
		fmt.Fprintln(os.Stderr, "aide-loadgen:", err)
		os.Exit(1)
	}
}

func run(surrogates int, addrs string, sessions, concurrency, ops int, bytes, heap int64,
	maxSessions int, sessionQuota int64, refreshEvery, drainEvery int, drainKey string, timeout time.Duration, jsonPath string) error {
	reg, err := fleet.WorkloadRegistry()
	if err != nil {
		return err
	}

	var targets []fleet.Target
	var owned []*aide.Surrogate
	if addrs != "" {
		for _, addr := range strings.Split(addrs, ",") {
			targets = append(targets, &fleet.TCPTarget{Addr: strings.TrimSpace(addr), DrainKey: drainKey})
		}
	} else {
		if surrogates < 1 {
			return fmt.Errorf("need at least one surrogate, got %d", surrogates)
		}
		opts := []aide.Option{aide.WithHeap(heap)}
		if maxSessions > 0 {
			opts = append(opts, aide.WithMaxSessions(maxSessions))
		}
		if sessionQuota > 0 {
			opts = append(opts, aide.WithSessionQuota(sessionQuota))
		}
		for i := 0; i < surrogates; i++ {
			s := aide.NewSurrogate(reg, opts...)
			owned = append(owned, s)
			targets = append(targets, &fleet.LocalTarget{
				TargetName: fmt.Sprintf("s%d", i),
				Surrogate:  s,
			})
		}
	}
	defer func() {
		for _, s := range owned {
			if cerr := s.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "aide-loadgen: close surrogate:", cerr)
			}
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	coord := fleet.New(targets...)
	t0 := time.Now()
	r, err := fleet.Run(ctx, coord, reg, fleet.Config{
		Sessions:        sessions,
		Concurrency:     concurrency,
		Ops:             ops,
		BytesPerSession: bytes,
		RefreshEvery:    refreshEvery,
		DrainEvery:      drainEvery,
	})
	if err != nil {
		return err
	}
	wall := time.Since(t0)

	fmt.Printf("sessions   %d (%d completed, %d failed, %d unplaced) in %v — %.0f sessions/s\n",
		r.Sessions, r.Completed, r.Failed, r.Unplaced, wall.Round(time.Millisecond),
		float64(r.Completed)/wall.Seconds())
	fmt.Printf("admission  %d rejected, %d shed, %d evicted (surrogate-side)\n", r.Rejected, r.Shed, r.Evicted())
	fmt.Printf("latency    session p50 %v p99 %v — op p50 %v p99 %v\n",
		r.SessionP50.Round(time.Microsecond), r.SessionP99.Round(time.Microsecond),
		r.OpP50.Round(time.Microsecond), r.OpP99.Round(time.Microsecond))
	for name, n := range r.Placed {
		fmt.Printf("placed     %-12s %d\n", name, n)
	}
	if drainEvery > 0 {
		fmt.Printf("drains     %d completed, %d failed\n", r.Drains, r.DrainErrors)
	}
	fmt.Printf("isolation  %d cross-tenant failures\n", r.CrossTenantFailures)

	if jsonPath != "" {
		buf, merr := json.MarshalIndent(r, "", "  ")
		if merr != nil {
			return merr
		}
		if werr := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); werr != nil {
			return werr
		}
	}
	if r.CrossTenantFailures != 0 {
		return fmt.Errorf("%d cross-tenant failures: session isolation is broken", r.CrossTenantFailures)
	}
	return nil
}
