// Command aide-trace records application execution traces (the paper's §4
// trace-acquisition step) and inspects recorded trace files.
package main

import (
	"flag"
	"fmt"
	"os"

	"aide/internal/apps"
	"aide/internal/trace"
)

func main() {
	var (
		record = flag.String("record", "", "application to record (JavaNote, Dia, Biomer, Voxel, Tracer)")
		out    = flag.String("o", "", "output file for -record (default <app>.trace.gz)")
		info   = flag.String("info", "", "print statistics of a recorded trace file")
	)
	flag.Parse()
	if err := run(*record, *out, *info); err != nil {
		fmt.Fprintln(os.Stderr, "aide-trace:", err)
		os.Exit(1)
	}
}

func run(record, out, info string) error {
	switch {
	case record != "":
		spec, err := apps.ByName(record)
		if err != nil {
			return err
		}
		tr, err := apps.Record(spec)
		if err != nil {
			return err
		}
		if out == "" {
			out = spec.Name + ".trace.gz"
		}
		if err := trace.WriteFile(out, tr); err != nil {
			return err
		}
		fmt.Printf("recorded %s: %d classes, %d events -> %s\n",
			spec.Name, len(tr.Classes), len(tr.Events), out)
		return nil
	case info != "":
		tr, err := trace.ReadFile(info)
		if err != nil {
			return err
		}
		if err := tr.Validate(); err != nil {
			return fmt.Errorf("trace is corrupt: %w", err)
		}
		s := trace.ComputeStats(tr)
		fmt.Printf("application    %s\n", tr.App)
		fmt.Printf("record heap    %.1f MiB\n", float64(tr.HeapCapacity)/(1<<20))
		fmt.Printf("classes        %d (avg %.0f live, max %d)\n", len(tr.Classes), s.ClassesAvg, s.ClassesMax)
		fmt.Printf("objects        avg %.0f live, max %d, %d events\n", s.ObjectsAvg, s.ObjectsMax, s.ObjectEvents)
		fmt.Printf("interactions   avg %.0f links, max %d, %d events (%d invocations, %d accesses)\n",
			s.LinksAvg, s.LinksMax, s.InteractionEvents, s.Invocations, s.Accesses)
		fmt.Printf("bytes moved    %.1f MiB between classes\n", float64(s.BytesTransferred)/(1<<20))
		fmt.Printf("peak live heap %.2f MiB\n", float64(s.PeakLiveBytes)/(1<<20))
		fmt.Printf("self time      %.2f s at tracing-PC speed\n", s.SelfTime.Seconds())
		pinned, arrays, stateless := 0, 0, 0
		for _, c := range tr.Classes {
			if c.Pinned {
				pinned++
			}
			if c.Array {
				arrays++
			}
			if c.Stateless {
				stateless++
			}
		}
		fmt.Printf("pinned classes %d (%d stateless-native), array classes %d\n", pinned, stateless, arrays)
		return nil
	default:
		return fmt.Errorf("specify -record <app> or -info <file>")
	}
}
