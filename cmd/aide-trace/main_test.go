package main

import (
	"path/filepath"
	"testing"
)

func TestRecordAndInfo(t *testing.T) {
	if testing.Short() {
		t.Skip("records a trace")
	}
	out := filepath.Join(t.TempDir(), "tracer.trace.gz")
	if err := run("Tracer", out, ""); err != nil {
		t.Fatalf("record: %v", err)
	}
	if err := run("", "", out); err != nil {
		t.Fatalf("info: %v", err)
	}
}

func TestArgumentErrors(t *testing.T) {
	if err := run("", "", ""); err == nil {
		t.Fatal("no arguments accepted")
	}
	if err := run("Nope", "", ""); err == nil {
		t.Fatal("unknown app accepted")
	}
	if err := run("", "", "/nonexistent"); err == nil {
		t.Fatal("missing file accepted")
	}
}
