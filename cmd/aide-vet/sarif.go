package main

import "aide/internal/lint"

// Minimal SARIF 2.1.0 document: one run, one rule per analyzer, one
// result per diagnostic. Enough structure for GitHub code-scanning
// upload and workflow artifacts without modelling the full schema.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

func toSARIF(diags []lint.Diagnostic) sarifLog {
	// One rule per analyzer that actually fired, plus the suite's own
	// docs for every registered analyzer so rule IDs always resolve.
	var rules []sarifRule
	seen := map[string]bool{}
	for _, a := range lint.All() {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
		seen[a.Name] = true
	}
	for _, d := range diags {
		if !seen[d.Analyzer] {
			// e.g. the framework's own "lint" diagnostics (malformed
			// suppressions, budget violations).
			rules = append(rules, sarifRule{ID: d.Analyzer, ShortDescription: sarifMessage{Text: "lint framework diagnostic"}})
			seen[d.Analyzer] = true
		}
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:  d.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: d.Pos.Filename},
					Region:           sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		})
	}
	return sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "aide-vet", Rules: rules}},
			Results: results,
		}},
	}
}
