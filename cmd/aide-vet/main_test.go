package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// The driver is exercised end to end: built once per test run, then
// executed against the lint testdata packages (which the `./...`
// pattern never matches, so the repo-wide run stays clean while these
// packages deliberately carry findings).

var vetBin string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "aide-vet-test")
	if err != nil {
		panic(err)
	}
	vetBin = filepath.Join(dir, "aide-vet")
	cmd := exec.Command("go", "build", "-o", vetBin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		panic("building aide-vet: " + err.Error() + "\n" + string(out))
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// repoRoot locates the module root from the test's working directory
// (cmd/aide-vet).
func repoRoot(t *testing.T) string {
	t.Helper()
	cwd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(cwd))
}

// runVet executes the built driver from the repo root and returns its
// stdout, stderr, and exit code.
func runVet(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(vetBin, args...)
	cmd.Dir = repoRoot(t)
	var stdout, stderr strings.Builder
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("running aide-vet: %v", err)
		}
		code = ee.ExitCode()
	}
	return stdout.String(), stderr.String(), code
}

// writeBudget writes a temp budget file covering the testdata packages'
// deliberate suppressions.
func writeBudget(t *testing.T, lines string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "lint.budget")
	if err := os.WriteFile(path, []byte(lines), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// jsonDiag mirrors the -json output element shape.
type jsonDiag struct {
	Analyzer string
	Pos      struct {
		Filename string
		Line     int
		Column   int
	}
	Message string
}

func TestJSONOutputAndExitOnFindings(t *testing.T) {
	stdout, _, code := runVet(t, "-json", "./internal/lint/testdata/src/ctx_bad")
	if code != 2 {
		t.Fatalf("exit = %d, want 2 on findings", code)
	}
	var diags []jsonDiag
	if err := json.Unmarshal([]byte(stdout), &diags); err != nil {
		t.Fatalf("-json output is not a diagnostic array: %v\n%s", err, stdout)
	}
	if len(diags) == 0 {
		t.Fatal("-json produced no diagnostics for ctx_bad")
	}
	for _, d := range diags {
		if d.Analyzer != "ctxcheck" {
			t.Errorf("unexpected analyzer %q in ctx_bad", d.Analyzer)
		}
		if d.Pos.Filename == "" || d.Pos.Line == 0 || d.Message == "" {
			t.Errorf("incomplete diagnostic: %+v", d)
		}
	}
}

func TestCleanPackageExitsZero(t *testing.T) {
	budget := writeBudget(t, "ctxcheck 1 testdata suppression exercise\n")
	stdout, stderr, code := runVet(t, "-json", "-budget", budget, "./internal/lint/testdata/src/ctx_clean")
	if code != 0 {
		t.Fatalf("exit = %d, want 0 on a clean package\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
}

func TestSARIFOutput(t *testing.T) {
	budget := writeBudget(t, "atomiccheck 0 unused\n")
	stdout, _, code := runVet(t, "-sarif", "-budget", budget, "./internal/lint/testdata/src/atomic_bad")
	if code != 2 {
		t.Fatalf("exit = %d, want 2 on findings", code)
	}
	var log struct {
		Version string
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string
					Rules []struct{ ID string }
				}
			}
			Results []struct {
				RuleID    string `json:"ruleId"`
				Message   struct{ Text string }
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct{ URI string }
						Region           struct{ StartLine int }
					}
				}
			}
		}
	}
	if err := json.Unmarshal([]byte(stdout), &log); err != nil {
		t.Fatalf("-sarif output is not SARIF JSON: %v\n%s", err, stdout)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version = %q, runs = %d; want SARIF 2.1.0 with one run", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "aide-vet" {
		t.Errorf("driver name = %q", run.Tool.Driver.Name)
	}
	ruleIDs := map[string]bool{}
	for _, r := range run.Tool.Driver.Rules {
		ruleIDs[r.ID] = true
	}
	if !ruleIDs["atomiccheck"] {
		t.Error("rules do not include atomiccheck")
	}
	if len(run.Results) == 0 {
		t.Fatal("no results for atomic_bad")
	}
	for _, r := range run.Results {
		if r.RuleID != "atomiccheck" || r.Message.Text == "" {
			t.Errorf("unexpected result %+v", r)
		}
		if len(r.Locations) != 1 || r.Locations[0].PhysicalLocation.Region.StartLine == 0 {
			t.Errorf("result without a concrete location: %+v", r)
		}
	}
}

// TestBudgetRegressionFails pins the suppression-debt contract: a
// suppression whose analyzer has no budget line fails the run even when
// the analyzers themselves report nothing.
func TestBudgetRegressionFails(t *testing.T) {
	budget := writeBudget(t, "goroutinecheck 0 unrelated\n")
	_, stderr, code := runVet(t, "-budget", budget, "./internal/lint/testdata/src/ctx_clean")
	if code != 2 {
		t.Fatalf("exit = %d, want 2 on a budget violation\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "no lint.budget entry") {
		t.Errorf("stderr does not explain the missing budget entry:\n%s", stderr)
	}
}

// TestBudgetOverspendFails pins the other direction: more live
// suppressions than the budget grants.
func TestBudgetOverspendFails(t *testing.T) {
	budget := writeBudget(t, "ctxcheck 0 grandfathered none\n")
	_, stderr, code := runVet(t, "-budget", budget, "./internal/lint/testdata/src/ctx_clean")
	if code != 2 {
		t.Fatalf("exit = %d, want 2 on overspent budget\nstderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "budget allows 0") {
		t.Errorf("stderr does not report the overspend:\n%s", stderr)
	}
}
