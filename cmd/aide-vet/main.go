// Command aide-vet runs AIDE's custom static-analysis suite: lockcheck,
// detcheck, rpcerr, gobwire, telemetrycheck, goroutinecheck, ctxcheck,
// and atomiccheck (see internal/lint).
//
// Standalone:
//
//	go run ./cmd/aide-vet ./...
//
// or as a go vet tool, which integrates with the build cache:
//
//	go vet -vettool=$(which aide-vet) ./...
//
// Output modes: human-readable text (default), -json (a machine-stable
// diagnostic array), and -sarif (SARIF 2.1.0, for code-scanning upload).
// -timings appends a per-analyzer wall-clock breakdown to stderr.
//
// In standalone mode the driver also audits suppression debt: every
// //lint:allow must carry a reason (enforced by the lint framework) and
// the per-analyzer suppression counts must fit the checked-in
// lint.budget file (see -budget). Exit status is non-zero when any
// finding survives suppression or the budget is exceeded.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"aide/internal/lint"
)

func main() {
	versionFlag := flag.String("V", "", "print version and exit (go vet protocol)")
	flagsFlag := flag.Bool("flags", false, "print analyzer flags as JSON and exit (go vet protocol)")
	jsonFlag := flag.Bool("json", false, "emit diagnostics as JSON")
	sarifFlag := flag.Bool("sarif", false, "emit diagnostics as SARIF 2.1.0")
	timingsFlag := flag.Bool("timings", false, "report per-analyzer wall-clock timings on stderr")
	budgetFlag := flag.String("budget", "", "suppression budget file (standalone mode; default: lint.budget in the working directory if present)")
	flag.Int("c", -1, "display context lines (accepted for go vet protocol, unused)")
	flag.Parse()

	if *versionFlag != "" {
		// The go command calls with -V=full and keys its build cache on
		// the output; a devel version must carry an explicit buildID
		// token (the unitchecker convention).
		fmt.Printf("aide-vet version devel buildID=do-not-cache\n")
		return
	}
	if *flagsFlag {
		fmt.Println("[]")
		return
	}

	mode := modeText
	if *jsonFlag && *sarifFlag {
		fmt.Fprintln(os.Stderr, "aide-vet: -json and -sarif are mutually exclusive")
		os.Exit(1)
	}
	if *jsonFlag {
		mode = modeJSON
	}
	if *sarifFlag {
		mode = modeSARIF
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vetUnit(args[0], mode))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(standalone(args, mode, *timingsFlag, *budgetFlag))
}

type outputMode int

const (
	modeText outputMode = iota
	modeJSON
	modeSARIF
)

// standalone loads the patterns itself and analyzes every matched
// package, then audits suppression debt against the budget file.
func standalone(patterns []string, mode outputMode, timings bool, budgetPath string) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	pkgs, err := lint.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var all []lint.Diagnostic
	var allTimings []lint.Timing
	var sites []lint.Suppression
	for _, pkg := range pkgs {
		diags, t, err := lint.RunTimed(pkg, lint.For(pkg.Path))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		all = append(all, diags...)
		allTimings = append(allTimings, t...)
		sites = append(sites, lint.Suppressions(pkg)...)
	}
	if diags, err := auditBudget(cwd, budgetPath, sites); err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	} else {
		all = append(all, diags...)
	}
	if timings {
		reportTimings(allTimings)
	}
	return emit(all, mode)
}

// auditBudget runs the suppression-debt check. An explicit -budget path
// must exist; otherwise lint.budget in the working directory is used
// when present and the audit is skipped when it is not (so the driver
// still works from arbitrary directories).
func auditBudget(cwd, budgetPath string, sites []lint.Suppression) ([]lint.Diagnostic, error) {
	explicit := budgetPath != ""
	if !explicit {
		budgetPath = filepath.Join(cwd, "lint.budget")
	}
	data, err := os.ReadFile(budgetPath)
	if err != nil {
		if !explicit && os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("aide-vet: %w", err)
	}
	entries, err := lint.ParseBudget(data)
	if err != nil {
		return nil, fmt.Errorf("aide-vet: %w", err)
	}
	return lint.CheckBudget(entries, sites), nil
}

// reportTimings prints wall-clock totals per analyzer, slowest first.
func reportTimings(timings []lint.Timing) {
	totals := map[string]int64{}
	for _, t := range timings {
		totals[t.Analyzer] += int64(t.Elapsed)
	}
	names := make([]string, 0, len(totals))
	for name := range totals {
		names = append(names, name)
	}
	sort.Slice(names, func(i, j int) bool { return totals[names[i]] > totals[names[j]] })
	fmt.Fprintln(os.Stderr, "aide-vet timings:")
	for _, name := range names {
		fmt.Fprintf(os.Stderr, "  %-16s %8.3fms\n", name, float64(totals[name])/1e6)
	}
}

func emit(diags []lint.Diagnostic, mode outputMode) int {
	switch mode {
	case modeJSON:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	case modeSARIF:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(toSARIF(diags)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// vetConfig mirrors the fields of the go vet unit-checker protocol's
// per-package configuration file that aide-vet needs.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit analyzes one package unit on behalf of `go vet -vettool`.
func vetUnit(cfgPath string, mode outputMode) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "aide-vet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The go command requires the facts file to exist afterwards even
	// though aide-vet's analyzers exchange no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	// Analyze the same set standalone mode does: the non-test sources.
	var files []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			files = append(files, f)
		}
	}
	importPath := cfg.ImportPath
	if i := strings.Index(importPath, " ["); i >= 0 {
		importPath = importPath[:i] // test variant: "p [p.test]"
	}
	analyzers := lint.For(importPath)
	if len(files) == 0 || len(analyzers) == 0 {
		return 0
	}

	fset := token.NewFileSet()
	var parsed []*ast.File
	for _, name := range files {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		parsed = append(parsed, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	tpkg, err := conf.Check(importPath, fset, parsed, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	pkg := &lint.Package{
		Path:  importPath,
		Dir:   cfg.Dir,
		Fset:  fset,
		Files: parsed,
		Types: tpkg,
		Info:  info,
	}
	diags, err := lint.Run(pkg, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return emit(diags, mode)
}
