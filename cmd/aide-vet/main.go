// Command aide-vet runs AIDE's custom static-analysis suite: lockcheck,
// detcheck, rpcerr, gobwire, and telemetrycheck (see internal/lint).
//
// Standalone:
//
//	go run ./cmd/aide-vet ./...
//
// or as a go vet tool, which integrates with the build cache:
//
//	go vet -vettool=$(which aide-vet) ./...
//
// Exit status is non-zero when any finding survives suppression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"strings"

	"aide/internal/lint"
)

func main() {
	versionFlag := flag.String("V", "", "print version and exit (go vet protocol)")
	flagsFlag := flag.Bool("flags", false, "print analyzer flags as JSON and exit (go vet protocol)")
	jsonFlag := flag.Bool("json", false, "emit diagnostics as JSON")
	flag.Int("c", -1, "display context lines (accepted for go vet protocol, unused)")
	flag.Parse()

	if *versionFlag != "" {
		// The go command calls with -V=full and keys its build cache on
		// the output; a devel version must carry an explicit buildID
		// token (the unitchecker convention).
		fmt.Printf("aide-vet version devel buildID=do-not-cache\n")
		return
	}
	if *flagsFlag {
		fmt.Println("[]")
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(vetUnit(args[0], *jsonFlag))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	os.Exit(standalone(args, *jsonFlag))
}

// standalone loads the patterns itself and analyzes every matched
// package.
func standalone(patterns []string, asJSON bool) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	pkgs, err := lint.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var all []lint.Diagnostic
	for _, pkg := range pkgs {
		diags, err := lint.Run(pkg, lint.For(pkg.Path))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		all = append(all, diags...)
	}
	return emit(all, asJSON)
}

func emit(diags []lint.Diagnostic, asJSON bool) int {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

// vetConfig mirrors the fields of the go vet unit-checker protocol's
// per-package configuration file that aide-vet needs.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// vetUnit analyzes one package unit on behalf of `go vet -vettool`.
func vetUnit(cfgPath string, asJSON bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "aide-vet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// The go command requires the facts file to exist afterwards even
	// though aide-vet's analyzers exchange no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}

	// Analyze the same set standalone mode does: the non-test sources.
	var files []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			files = append(files, f)
		}
	}
	importPath := cfg.ImportPath
	if i := strings.Index(importPath, " ["); i >= 0 {
		importPath = importPath[:i] // test variant: "p [p.test]"
	}
	analyzers := lint.For(importPath)
	if len(files) == 0 || len(analyzers) == 0 {
		return 0
	}

	fset := token.NewFileSet()
	var parsed []*ast.File
	for _, name := range files {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		parsed = append(parsed, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	tpkg, err := conf.Check(importPath, fset, parsed, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, err)
		return 1
	}

	pkg := &lint.Package{
		Path:  importPath,
		Dir:   cfg.Dir,
		Fset:  fset,
		Files: parsed,
		Types: tpkg,
		Info:  info,
	}
	diags, err := lint.Run(pkg, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	return emit(diags, asJSON)
}
