// Command aide-stat scrapes a running AIDE process's telemetry endpoint
// (see telemetry.Serve and the -telemetry flag of aide-surrogate /
// aide-client) and pretty-prints the platform's health, metrics, and
// recent offload events.
//
//	aide-stat -addr 127.0.0.1:7780            # health + metric families
//	aide-stat -addr 127.0.0.1:7780 -events 20 # plus the last 20 spans
//	aide-stat -addr 127.0.0.1:7780 -json      # raw snapshot JSON
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"aide/internal/telemetry"
)

func main() {
	var (
		addr   = flag.String("addr", "127.0.0.1:7780", "telemetry address to scrape")
		events = flag.Int("events", 0, "also show the newest N offload events")
		asJSON = flag.Bool("json", false, "dump the raw snapshot JSON instead of formatting")
	)
	flag.Parse()
	if err := run(os.Stdout, *addr, *events, *asJSON); err != nil {
		fmt.Fprintln(os.Stderr, "aide-stat:", err)
		os.Exit(1)
	}
}

// run scrapes one endpoint and writes the report to w.
func run(w io.Writer, addr string, events int, asJSON bool) error {
	base := "http://" + addr
	health := "ok"
	if body, err := get(base + "/healthz"); err != nil {
		health = err.Error()
	} else {
		health = strings.TrimSpace(body)
	}

	body, err := get(base + "/metrics.json")
	if err != nil {
		return fmt.Errorf("scrape %s: %w", addr, err)
	}
	if asJSON {
		_, err := io.WriteString(w, body)
		return err
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		return fmt.Errorf("decode snapshot: %w", err)
	}

	fmt.Fprintf(w, "aide %s  health=%s  taken=%s\n\n", addr, health,
		snap.TakenAt.Format(time.RFC3339))
	printSessions(w, snap.Families)
	printFamilies(w, snap.Families)

	if events > 0 {
		body, err := get(fmt.Sprintf("%s/events?limit=%d", base, events))
		if err != nil {
			return fmt.Errorf("scrape events: %w", err)
		}
		var spans []telemetry.Span
		if err := json.Unmarshal([]byte(body), &spans); err != nil {
			return fmt.Errorf("decode events: %w", err)
		}
		fmt.Fprintf(w, "\nevents (%d newest first):\n", len(spans))
		for i := len(spans) - 1; i >= 0; i-- {
			printSpan(w, spans[i])
		}
	}
	return nil
}

func get(url string) (string, error) {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return string(body), nil
}

// printSessions renders a compact session/quota panel for surrogate
// endpoints: live session and lifecycle counts plus the shared-heap
// quota ledger. Endpoints without surrogate metrics (clients) skip it.
func printSessions(w io.Writer, families []telemetry.FamilySnapshot) {
	vals := make(map[string]int64, len(families))
	for _, f := range families {
		vals[f.Name] = f.Value
	}
	if _, ok := vals["aide_surrogate_sessions_active"]; !ok {
		return
	}
	fmt.Fprintf(w, "sessions   live=%d admitted=%d drained=%d sheds=%d evictions=%d rejected=%d\n",
		vals["aide_surrogate_sessions_active"],
		vals["aide_surrogate_sessions_admitted_total"],
		vals["aide_surrogate_sessions_drained_total"],
		vals["aide_surrogate_sessions_shed_total"],
		vals["aide_surrogate_sessions_evicted_total"],
		vals["aide_surrogate_sessions_rejected_total"])
	capacity := vals["aide_surrogate_heap_capacity_bytes"]
	used := vals["aide_surrogate_heap_committed_bytes"]
	free := capacity - used
	if capacity > 0 {
		fmt.Fprintf(w, "quota      used=%s free=%s of %s (%.0f%% committed), heap live=%s\n\n",
			mib(used), mib(free), mib(capacity),
			100*float64(used)/float64(capacity),
			mib(vals["aide_surrogate_heap_live_bytes"]))
	} else {
		fmt.Fprintf(w, "quota      used=%s (no capacity reported), heap live=%s\n\n",
			mib(used), mib(vals["aide_surrogate_heap_live_bytes"]))
	}
}

// mib renders a byte count in MiB with one decimal.
func mib(v int64) string {
	return fmt.Sprintf("%.1fMiB", float64(v)/(1<<20))
}

func printFamilies(w io.Writer, families []telemetry.FamilySnapshot) {
	width := 0
	for _, f := range families {
		if len(f.Name) > width {
			width = len(f.Name)
		}
	}
	for _, f := range families {
		switch f.Kind {
		case telemetry.KindHistogram.String():
			h := f.Histogram
			if h == nil || h.Count == 0 {
				fmt.Fprintf(w, "%-*s  (no observations)\n", width, f.Name)
				continue
			}
			fmt.Fprintf(w, "%-*s  count=%d avg=%s p50=%s p99=%s\n", width, f.Name,
				h.Count, formatUnit(h, avg(h)), formatUnit(h, quantile(h, 0.50)),
				formatUnit(h, quantile(h, 0.99)))
		default:
			fmt.Fprintf(w, "%-*s  %d\n", width, f.Name, f.Value)
		}
	}
}

// avg returns the mean observation.
func avg(h *telemetry.HistSnapshot) float64 {
	return float64(h.Sum) / float64(h.Count)
}

// quantile estimates the q-quantile from bucket counts, interpolating
// linearly within the winning bucket (the standard Prometheus
// histogram_quantile estimate). The overflow bucket reports its lower
// bound.
func quantile(h *telemetry.HistSnapshot, q float64) float64 {
	rank := q * float64(h.Count)
	var seen int64
	for i, c := range h.Buckets {
		if float64(seen+c) < rank {
			seen += c
			continue
		}
		if i >= len(h.Bounds) { // overflow bucket: unbounded above
			if len(h.Bounds) == 0 {
				return 0
			}
			return float64(h.Bounds[len(h.Bounds)-1])
		}
		upper := float64(h.Bounds[i])
		lower := 0.0
		if i > 0 {
			lower = float64(h.Bounds[i-1])
		}
		if c == 0 {
			return upper
		}
		return lower + (upper-lower)*(rank-float64(seen))/float64(c)
	}
	return 0
}

// formatUnit renders a bucket-space value in the histogram's unit.
func formatUnit(h *telemetry.HistSnapshot, v float64) string {
	if h.Unit == telemetry.UnitNanoseconds.String() {
		return time.Duration(v).Round(time.Microsecond).String()
	}
	return fmt.Sprintf("%.1f", v)
}

func printSpan(w io.Writer, s telemetry.Span) {
	var b strings.Builder
	fmt.Fprintf(&b, "  %-11s", s.Kind)
	if s.Note != "" {
		fmt.Fprintf(&b, " %s", s.Note)
	}
	fmt.Fprintf(&b, " peer=%d", s.Peer)
	if s.N != 0 {
		fmt.Fprintf(&b, " n=%d", s.N)
	}
	if s.Bytes != 0 {
		fmt.Fprintf(&b, " bytes=%d", s.Bytes)
	}
	if s.Dur != 0 {
		fmt.Fprintf(&b, " dur=%s", s.Dur.Round(time.Microsecond))
	}
	if s.Err {
		b.WriteString(" ERR")
	}
	if s.Parent != 0 {
		fmt.Fprintf(&b, " parent=%d", s.Parent)
	}
	fmt.Fprintf(w, "%s\n", b.String())
}
