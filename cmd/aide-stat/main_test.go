package main

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"aide/internal/telemetry"
)

// statFixture builds a registry and tracer with known contents and
// serves them the way a platform process would.
func statFixture(t *testing.T) string {
	t.Helper()
	clock := func() time.Time { return time.Unix(1754000000, 0).UTC() }
	reg := telemetry.NewWithClock(clock)
	reg.Counter("aide_calls_total", "calls").Add(42)
	reg.Gauge("aide_live_bytes", "live").Set(1 << 20)
	h := reg.Histogram("aide_call_latency_seconds", "latency",
		[]time.Duration{time.Millisecond, 10 * time.Millisecond})
	h.Observe(500 * time.Microsecond)
	h.Observe(2 * time.Millisecond)
	h.Observe(4 * time.Millisecond)
	h.Observe(50 * time.Millisecond)

	tr := telemetry.NewTracerWithClock(8, clock)
	tr.SetEnabled(true)
	tr.Emit(telemetry.Span{Kind: telemetry.SpanRPC, Note: "invoke", Peer: 0, Dur: 3 * time.Millisecond})
	tr.Emit(telemetry.Span{Kind: telemetry.SpanMigration, Note: "offload", Peer: 1, N: 7, Bytes: 4096})
	tr.Emit(telemetry.Span{Kind: telemetry.SpanDisconnect, Note: "timeout", Peer: 1, Err: true})

	srv := httptest.NewServer(telemetry.Handler(reg, tr, nil))
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://")
}

func TestRunFormatsMetricsAndEvents(t *testing.T) {
	addr := statFixture(t)
	var out strings.Builder
	if err := run(&out, addr, 2, false); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"health=ok",
		"aide_calls_total",
		"42",
		"aide_live_bytes",
		"aide_call_latency_seconds",
		"count=4",
		"p50=",
		"events (2 newest first):",
		"migration",
		"disconnect",
		"ERR",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	// -events 2 must drop the oldest (rpc) span.
	if strings.Contains(got, "rpc") {
		t.Errorf("events limit not honored, oldest span present:\n%s", got)
	}
}

// TestRunSessionPanel verifies the session/quota gauges render as the
// compact panel when surrogate metrics are present.
func TestRunSessionPanel(t *testing.T) {
	clock := func() time.Time { return time.Unix(1754000000, 0).UTC() }
	reg := telemetry.NewWithClock(clock)
	reg.Gauge("aide_surrogate_sessions_active", "live sessions").Set(3)
	reg.Counter("aide_surrogate_sessions_admitted_total", "admitted").Add(120)
	reg.Counter("aide_surrogate_sessions_drained_total", "drained").Add(2)
	reg.Counter("aide_surrogate_sessions_shed_total", "shed").Add(1)
	reg.Counter("aide_surrogate_sessions_evicted_total", "evicted").Add(4)
	reg.Counter("aide_surrogate_sessions_rejected_total", "rejected").Add(5)
	reg.Gauge("aide_surrogate_heap_capacity_bytes", "capacity").Set(256 << 20)
	reg.Gauge("aide_surrogate_heap_committed_bytes", "committed").Set(64 << 20)
	reg.Gauge("aide_surrogate_heap_live_bytes", "live").Set(8 << 20)
	srv := httptest.NewServer(telemetry.Handler(reg, nil, nil))
	t.Cleanup(srv.Close)

	var out strings.Builder
	if err := run(&out, strings.TrimPrefix(srv.URL, "http://"), 0, false); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"sessions   live=3 admitted=120 drained=2 sheds=1 evictions=4 rejected=5",
		"quota      used=64.0MiB free=192.0MiB of 256.0MiB (25% committed), heap live=8.0MiB",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	// A client endpoint (no surrogate metrics) must not render the panel.
	var clientOut strings.Builder
	if err := run(&clientOut, statFixture(t), 0, false); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(clientOut.String(), "sessions   live=") {
		t.Errorf("session panel rendered without surrogate metrics:\n%s", clientOut.String())
	}
}

func TestRunJSONDump(t *testing.T) {
	addr := statFixture(t)
	var out strings.Builder
	if err := run(&out, addr, 0, true); err != nil {
		t.Fatal(err)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal([]byte(out.String()), &snap); err != nil {
		t.Fatalf("-json output is not a snapshot: %v", err)
	}
	if len(snap.Families) != 3 {
		t.Fatalf("got %d families, want 3", len(snap.Families))
	}
}

func TestRunUnreachable(t *testing.T) {
	var out strings.Builder
	// Port 1 refuses: the scrape must fail loudly, not print garbage.
	if err := run(&out, "127.0.0.1:1", 0, false); err == nil {
		t.Fatal("scraping a dead endpoint must fail")
	}
}

func TestQuantileEstimates(t *testing.T) {
	h := &telemetry.HistSnapshot{
		Unit:    telemetry.UnitCount.String(),
		Bounds:  []int64{10, 20, 40},
		Buckets: []int64{2, 2, 0, 0}, // 2 in (0,10], 2 in (10,20]
		Count:   4,
		Sum:     50,
	}
	if q := quantile(h, 0.5); q != 10 {
		t.Errorf("p50 = %v, want the first bucket's upper bound 10", q)
	}
	if q := quantile(h, 1.0); q != 20 {
		t.Errorf("p100 = %v, want 20", q)
	}
	over := &telemetry.HistSnapshot{
		Unit:    telemetry.UnitCount.String(),
		Bounds:  []int64{10},
		Buckets: []int64{0, 5}, // everything overflowed
		Count:   5,
	}
	if q := quantile(over, 0.5); q != 10 {
		t.Errorf("overflow p50 = %v, want the last bound 10", q)
	}
}
