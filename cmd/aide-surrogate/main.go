// Command aide-surrogate runs a surrogate server: a nearby machine that
// lends its memory and CPU to resource-constrained clients over TCP. Pair
// it with aide-client for a two-process demonstration of the platform.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"aide"
	"aide/internal/apps"
	"aide/internal/telemetry"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7707", "listen address")
		app      = flag.String("app", "JavaNote", "application whose classes to serve (must match the client)")
		heapMB   = flag.Int("heap", 256, "surrogate heap in MiB")
		speed    = flag.Float64("speed", 3.5, "surrogate CPU speed relative to the client")
		telAddr  = flag.String("telemetry", "", "serve /metrics, /events, /healthz, /debug/pprof on this address (empty disables)")
		drainKey = flag.String("drain-key", "", "credential wire drain directives must present (empty refuses all wire drains)")
	)
	flag.Parse()
	if err := run(*addr, *app, *heapMB, *speed, *telAddr, *drainKey); err != nil {
		fmt.Fprintln(os.Stderr, "aide-surrogate:", err)
		os.Exit(1)
	}
}

func run(addr, app string, heapMB int, speed float64, telAddr, drainKey string) error {
	spec, err := apps.ByName(app)
	if err != nil {
		return err
	}
	// Both VMs must have access to the application's classes (paper §4).
	reg, _, err := spec.Build()
	if err != nil {
		return err
	}
	opts := []aide.Option{
		aide.WithHeap(int64(heapMB) << 20),
		aide.WithCPUSpeed(speed),
	}
	if drainKey != "" {
		opts = append(opts, aide.WithDrainKey(drainKey))
	}
	var treg *aide.TelemetryRegistry
	var tr *aide.Tracer
	if telAddr != "" {
		treg = aide.NewTelemetry()
		tr = aide.NewTracer(1024)
		tr.SetEnabled(true)
		opts = append(opts, aide.WithTelemetry(treg, tr))
	}
	s := aide.NewSurrogate(reg, opts...)
	if telAddr != "" {
		srv, err := telemetry.Serve(telAddr, telemetry.Handler(treg, tr, nil))
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("telemetry on http://%s/metrics\n", srv.Addr())
	}
	bound, err := s.ListenAndServe(addr)
	if err != nil {
		return err
	}
	fmt.Printf("surrogate for %s listening on %s (heap %d MiB, %.1fx CPU)\n",
		spec.Name, bound, heapMB, speed)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(5 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			fmt.Println("\nshutting down")
			return s.Close()
		case <-ticker.C:
			h := s.Heap()
			fmt.Printf("  heap: %.2f MiB live, %d objects hosted\n",
				float64(h.Live)/(1<<20), h.Objects)
		}
	}
}
