// Command aide-client runs an application on a resource-constrained client
// VM, attached to an aide-surrogate over TCP. With a heap too small for
// the workload, the platform detects memory pressure, partitions the
// execution graph, and offloads — the paper's §5.1 scenario, live.
package main

import (
	"flag"
	"fmt"
	"os"

	"aide"
	"aide/internal/apps"
	"aide/internal/telemetry"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7707", "surrogate address")
		app     = flag.String("app", "JavaNote", "application to run")
		heapMB  = flag.Int("heap", 6, "client heap in MiB (JavaNote needs ~6.5 alone)")
		local   = flag.Bool("local", false, "run without a surrogate (demonstrates the OOM failure)")
		telAddr = flag.String("telemetry", "", "serve /metrics, /events, /healthz, /debug/pprof on this address (empty disables)")
	)
	flag.Parse()
	if err := run(*addr, *app, *heapMB, *local, *telAddr); err != nil {
		fmt.Fprintln(os.Stderr, "aide-client:", err)
		os.Exit(1)
	}
}

func run(addr, app string, heapMB int, local bool, telAddr string) error {
	spec, err := apps.ByName(app)
	if err != nil {
		return err
	}
	reg, driver, err := spec.Build()
	if err != nil {
		return err
	}
	opts := []aide.Option{
		aide.WithHeap(int64(heapMB) << 20),
		aide.WithLink(aide.WaveLAN()),
	}
	var treg *aide.TelemetryRegistry
	var tr *aide.Tracer
	if telAddr != "" {
		treg = aide.NewTelemetry()
		tr = aide.NewTracer(1024)
		tr.SetEnabled(true)
		opts = append(opts, aide.WithTelemetry(treg, tr))
	}
	client := aide.NewClient(reg, opts...)
	defer client.Close()
	if telAddr != "" {
		srv, err := telemetry.Serve(telAddr, telemetry.Handler(treg, tr, nil))
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("telemetry on http://%s/metrics\n", srv.Addr())
	}

	if !local {
		if err := client.AttachTCP(addr); err != nil {
			return err
		}
		if err := client.Ping(); err != nil {
			return err
		}
		fmt.Printf("attached to surrogate %s\n", addr)
	}

	fmt.Printf("running %s on a %d MiB heap...\n", spec.Name, heapMB)
	if err := driver(client.Thread()); err != nil {
		return fmt.Errorf("application failed: %w", err)
	}
	fmt.Printf("completed; simulated client time %.2fs\n", client.Clock().Seconds())

	reports, rejected := client.Offloads()
	if len(reports) == 0 {
		fmt.Println("no offloading was needed")
	}
	for i, r := range reports {
		fmt.Printf("offload #%d at t=%.2fs: %d objects, %.0f KB (%.0f%% of heap), %d classes\n",
			i+1, r.At.Seconds(), r.Objects, float64(r.Bytes)/1024, r.FreedFraction*100, len(r.Classes))
	}
	if rejected > 0 {
		fmt.Printf("%d trigger(s) found no beneficial partitioning\n", rejected)
	}
	h := client.Heap()
	fmt.Printf("final client heap: %.2f MiB live of %.0f MiB\n",
		float64(h.Live)/(1<<20), float64(h.Capacity)/(1<<20))
	return nil
}
