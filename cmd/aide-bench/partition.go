package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"

	"aide/internal/experiments/partbench"
)

// partitionReport is the machine-readable record of the incremental
// monitor→partition pipeline study: repartition latency versus class
// count at a fixed dirty fraction, monitor ingestion throughput versus
// stripe count under concurrent sources, and the streaming-decay
// overhead. The headline claims: ≥10x repartition speedup at N≥1000
// with ≤5% dirty edges, ≥3x ingestion throughput at 8 sources.
type partitionReport struct {
	GOMAXPROCS int `json:"gomaxprocs"`

	Repartition []partbench.RepartitionPoint `json:"repartition"`

	// RepartitionSpeedupAt1000 is the headline incremental-vs-classic
	// latency multiple at the largest measured class count.
	RepartitionSpeedupAt1000 float64 `json:"repartition_speedup_at_n1000_x"`

	// EquivalenceGates is true only if every measured point's forced
	// full pass over the maintained matrix reproduced a from-scratch
	// partition exactly.
	EquivalenceGates bool `json:"incremental_equals_scratch_all"`

	Ingestion []partbench.IngestionPoint `json:"ingestion"`

	// IngestionSpeedup8 is striped (16 shards) over single-shard
	// throughput at 8 concurrent event sources.
	IngestionSpeedup8 float64 `json:"ingestion_speedup_8_sources_x"`

	Decay partbench.DecayPoint `json:"decay"`
}

// partitionBench runs the partition study and writes the report. smoke
// shrinks every axis to a CI-sized single pass.
func partitionBench(path string, smoke bool) error {
	counts := []int{100, 300, 1000}
	rounds := 9
	ingestEvents := 2_000_000
	decayEvents := 1_000_000
	if smoke {
		counts = []int{100, 300}
		rounds = 3
		ingestEvents = 200_000
		decayEvents = 100_000
	}

	rep := partitionReport{GOMAXPROCS: runtime.GOMAXPROCS(0)}

	rep.Repartition = partbench.MeasureRepartition(counts, 0.05, rounds)
	rep.EquivalenceGates = true
	for _, p := range rep.Repartition {
		fmt.Printf("N=%-5d edges=%-6d dirty=%.0f%%  classic %8.2fms  incremental %8.3fms  speedup %6.1fx  warm/full %d/%d  equal=%t\n",
			p.N, p.Edges, p.DirtyFrac*100, p.ClassicNs/1e6, p.IncrNs/1e6, p.SpeedupX, p.WarmRounds, p.FullRounds, p.Equivalent)
		if !p.Equivalent {
			rep.EquivalenceGates = false
		}
	}
	last := rep.Repartition[len(rep.Repartition)-1]
	rep.RepartitionSpeedupAt1000 = last.SpeedupX

	rep.Ingestion = partbench.MeasureIngestion([]int{1, 16}, 8, ingestEvents, 1024, 1024)
	var legacy, striped float64
	for _, p := range rep.Ingestion {
		fmt.Printf("%-11s sources=%d snapshots=%-5d  %10.0f events/s\n", p.Design, p.Sources, p.Snapshots, p.EventsPerSec)
		switch p.Design {
		case "legacy":
			legacy = p.EventsPerSec
		case "striped-16":
			striped = p.EventsPerSec
		}
	}
	if legacy > 0 {
		rep.IngestionSpeedup8 = striped / legacy
	}

	rep.Decay = partbench.MeasureDecay(decayEvents, 256, 4096)
	fmt.Printf("decay: plain %.1f ns/event, decayed %.1f ns/event (overhead %.1f%%)\n",
		rep.Decay.PlainNs, rep.Decay.DecayNs, rep.Decay.OverheadFrac*100)
	fmt.Printf("headline: repartition %0.1fx @ N=%d, ingestion %0.1fx @ 8 sources, equivalence=%t\n",
		rep.RepartitionSpeedupAt1000, last.N, rep.IngestionSpeedup8, rep.EquivalenceGates)

	if !rep.EquivalenceGates {
		return fmt.Errorf("partition: incremental != from-scratch partition")
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
