package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"aide"
	"aide/internal/faults"
	"aide/internal/fleet"
	"aide/internal/remote"
	"aide/internal/snapshot"
)

// snapshotPoint is one point of the snapshot-encoding sweep: the wire
// cost of imaging a session heap of Objects objects against its live
// bytes. The image encodes object metadata and scalar fields (payload
// bytes are size accounting in the VM model), so wire cost grows with
// the object population, not the modeled payload — the headline is the
// per-object overhead and how small the image stays relative to the
// heap it moves.
type snapshotPoint struct {
	Objects      int     `json:"objects"`
	HeapLive     int64   `json:"heap_live_bytes"`
	EncodedBytes int     `json:"encoded_bytes"`
	BytesPerObj  float64 `json:"wire_bytes_per_object"`
	RatioToLive  float64 `json:"encoded_over_live"`
}

// blackoutReport measures live handoff under traffic: one tenant keeps
// invoking while its session ping-pongs between two TCP surrogates.
// Blackout samples are the wall time of each whole-fleet drain; op
// percentiles cover every tenant call issued during the run, including
// the ones that landed mid-handoff and were transparently redirected.
type blackoutReport struct {
	Drains        int     `json:"drains"`
	SessionsMoved int64   `json:"sessions_moved"`
	BlackoutP50Ms float64 `json:"blackout_p50_ms"`
	BlackoutP99Ms float64 `json:"blackout_p99_ms"`
	Ops           int     `json:"ops"`
	OpErrors      int     `json:"op_errors"`
	OpP50Ms       float64 `json:"op_p50_ms"`
	OpP99Ms       float64 `json:"op_p99_ms"`
}

// specPoint is one fault-link profile of the speculation study: how
// often the local clone beat the degraded remote, with the
// exactly-once arithmetic checked on every acknowledged call.
type specPoint struct {
	Profile     string  `json:"profile"`
	Rounds      int     `json:"rounds"`
	LocalWins   int64   `json:"local_wins"`
	RemoteWins  int64   `json:"remote_wins"`
	Misses      int64   `json:"misses"`
	WinRate     float64 `json:"local_win_rate"`
	Disconnects int     `json:"disconnects"`
	Violations  int     `json:"exactly_once_violations"`
}

type handoffReport struct {
	Snapshots   []snapshotPoint `json:"snapshots"`
	Blackout    blackoutReport  `json:"blackout"`
	Speculation []specPoint     `json:"speculation"`
}

// pct returns the q-quantile of lat by sorted index (nearest-rank on
// q*(n-1), matching the load generator's estimator).
func pct(lat []time.Duration, q float64) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), lat...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[int(q*float64(len(s)-1))]
}

func ms(d time.Duration) float64 { return float64(d) / 1e6 }

// handoffBench runs the three snapshot-subsystem studies and writes
// BENCH_handoff.json: snapshot size vs heap bytes, handoff blackout
// percentiles under live traffic, and speculation win-rate under
// degraded fault-link profiles.
func handoffBench(path string, smoke bool) error {
	var rep handoffReport

	snaps, err := snapshotSweep(smoke)
	if err != nil {
		return err
	}
	rep.Snapshots = snaps

	bl, err := blackoutStudy(smoke)
	if err != nil {
		return err
	}
	rep.Blackout = bl

	spec, err := speculationStudy(smoke)
	if err != nil {
		return err
	}
	rep.Speculation = spec

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// snapshotSweep encodes a session image at several heap populations and
// reports wire bytes against live heap bytes. Every image must decode
// and re-encode byte-identically (the golden round-trip invariant).
func snapshotSweep(smoke bool) ([]snapshotPoint, error) {
	counts := []int{16, 128, 1024, 8192}
	if smoke {
		counts = []int{16, 512}
	}
	const objBytes = int64(8 << 10)
	reg, err := fleet.WorkloadRegistry()
	if err != nil {
		return nil, err
	}
	var points []snapshotPoint
	for _, n := range counts {
		client := aide.NewClient(reg, aide.WithHeap(2*int64(n)*objBytes))
		th := client.Thread()
		for i := 0; i < n; i++ {
			obj, err := th.New(fleet.WorkloadClass, objBytes)
			if err != nil {
				_ = client.Close()
				return nil, fmt.Errorf("snapshot sweep %d objects: %w", n, err)
			}
			if i == 0 {
				client.VM().SetRoot("acct", obj)
			}
			if err := th.SetField(obj, "bal", aide.Int(int64(i))); err != nil {
				_ = client.Close()
				return nil, err
			}
		}
		img := snapshot.Snapshot(client.VM())
		enc := img.Encode()
		re, err := snapshot.Decode(enc)
		if err != nil {
			_ = client.Close()
			return nil, fmt.Errorf("snapshot sweep %d objects: decode own image: %w", n, err)
		}
		if !bytes.Equal(re.Encode(), enc) {
			_ = client.Close()
			return nil, fmt.Errorf("snapshot sweep %d objects: round trip not byte-identical", n)
		}
		live := client.VM().Heap().Live
		p := snapshotPoint{
			Objects:      n,
			HeapLive:     live,
			EncodedBytes: len(enc),
			BytesPerObj:  float64(len(enc)) / float64(n),
			RatioToLive:  float64(len(enc)) / float64(live),
		}
		points = append(points, p)
		fmt.Printf("snapshot  %5d objects  live %9dB  wire %8dB  (%.1fB/object, %.4fx live)\n",
			p.Objects, p.HeapLive, p.EncodedBytes, p.BytesPerObj, p.RatioToLive)
		if err := client.Close(); err != nil {
			return nil, err
		}
	}
	return points, nil
}

// blackoutStudy ping-pongs one live session between two TCP surrogates
// while a tenant loop keeps invoking it, and reports drain blackout and
// tenant-op percentiles. The tenant's cumulative counter proves
// exactly-once execution across every move.
func blackoutStudy(smoke bool) (blackoutReport, error) {
	drains := 20
	if smoke {
		drains = 6
	}
	reg, err := fleet.WorkloadRegistry()
	if err != nil {
		return blackoutReport{}, err
	}
	s1 := aide.NewSurrogate(reg, aide.WithHeap(64<<20))
	s2 := aide.NewSurrogate(reg, aide.WithHeap(64<<20))
	defer func() { _ = s1.Close(); _ = s2.Close() }()
	addr1, err := s1.ListenAndServe("127.0.0.1:0")
	if err != nil {
		return blackoutReport{}, err
	}
	addr2, err := s2.ListenAndServe("127.0.0.1:0")
	if err != nil {
		return blackoutReport{}, err
	}

	const objBytes = 64 << 10
	client := aide.NewClient(reg,
		aide.WithHeap(3*objBytes+1<<13),
		aide.WithCallTimeout(5*time.Second),
		aide.WithHandoffTimeout(5*time.Second),
	)
	defer func() { _ = client.Close() }()
	if err := client.AttachTCP(addr1); err != nil {
		return blackoutReport{}, err
	}
	th := client.Thread()
	obj, err := th.New(fleet.WorkloadClass, objBytes)
	if err != nil {
		return blackoutReport{}, err
	}
	client.VM().SetRoot("acct", obj)
	if err := th.SetField(obj, "bal", aide.Int(0)); err != nil {
		return blackoutReport{}, err
	}
	if _, err := th.Invoke(obj, "add", aide.Int(1)); err != nil {
		return blackoutReport{}, err
	}
	if _, err := client.Offload(); err != nil {
		return blackoutReport{}, fmt.Errorf("blackout: offload: %w", err)
	}

	// The tenant loop: keep adding 1 until stop, recording call latency.
	var (
		mu     sync.Mutex
		opLat  []time.Duration
		opErrs int
		adds   int64 = 1 // the pre-offload seed call
		stop         = make(chan struct{})
		done         = make(chan struct{})
	)
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			t0 := time.Now()
			_, err := th.Invoke(obj, "add", aide.Int(1))
			d := time.Since(t0)
			mu.Lock()
			opLat = append(opLat, d)
			if err != nil {
				opErrs++
			} else {
				adds++
			}
			mu.Unlock()
		}
	}()

	// Ping-pong drains: each drain moves the whole (one-session) fleet
	// the other way. The drain wall time is the blackout sample.
	var blackout []time.Duration
	var moved int64
	srcs := []*aide.Surrogate{s1, s2}
	dests := []string{addr2, addr1}
	for i := 0; i < drains; i++ {
		src, dst := srcs[i%2], dests[i%2]
		t0 := time.Now()
		n, err := src.Drain(context.Background(), dst)
		blackout = append(blackout, time.Since(t0))
		if err != nil {
			close(stop)
			<-done
			return blackoutReport{}, fmt.Errorf("blackout drain %d: %w", i, err)
		}
		moved += int64(n)
		// Wait for the source's reaper to release the departed session so
		// the next drain sees a clean single-session fleet.
		deadline := time.Now().Add(5 * time.Second)
		for src.Sessions() != 0 && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
		if src.Sessions() != 0 {
			close(stop)
			<-done
			return blackoutReport{}, fmt.Errorf("blackout drain %d: source never released the session", i)
		}
		// Let the tenant loop accumulate steady-state samples at the new
		// home before the next move, so the op percentiles cover both
		// mid-handoff and settled traffic.
		floor := (i + 1) * 25
		for time.Now().Before(deadline) {
			mu.Lock()
			enough := len(opLat) >= floor
			mu.Unlock()
			if enough {
				break
			}
			time.Sleep(time.Millisecond)
		}
	}
	close(stop)
	<-done

	// The counter must equal exactly the acknowledged adds: no increment
	// lost or duplicated across any of the moves.
	v, err := th.GetField(obj, "bal")
	if err != nil {
		return blackoutReport{}, fmt.Errorf("blackout: final read: %w", err)
	}
	mu.Lock()
	defer mu.Unlock()
	if opErrs == 0 && v.I != adds {
		return blackoutReport{}, fmt.Errorf("blackout: counter %d after %d acknowledged adds — lost or duplicated an increment", v.I, adds)
	}
	if moved != int64(drains) {
		return blackoutReport{}, fmt.Errorf("blackout: %d sessions moved across %d drains, want one per drain", moved, drains)
	}
	r := blackoutReport{
		Drains:        drains,
		SessionsMoved: moved,
		BlackoutP50Ms: ms(pct(blackout, 0.50)),
		BlackoutP99Ms: ms(pct(blackout, 0.99)),
		Ops:           len(opLat),
		OpErrors:      opErrs,
		OpP50Ms:       ms(pct(opLat, 0.50)),
		OpP99Ms:       ms(pct(opLat, 0.99)),
	}
	fmt.Printf("blackout  %d drains  p50 %.2fms p99 %.2fms  |  %d tenant ops (%d errs) p50 %.2fms p99 %.2fms  handoffs %d\n",
		r.Drains, r.BlackoutP50Ms, r.BlackoutP99Ms, r.Ops, r.OpErrors, r.OpP50Ms, r.OpP99Ms, client.Handoffs())
	return r, nil
}

// speculationStudy replays the chaos workload under named fault-link
// profiles and reports how often the local clone won the race. Every
// acknowledged call is checked against the exactly-once arithmetic; a
// single violation fails the bench.
func speculationStudy(smoke bool) ([]specPoint, error) {
	rounds := 60
	if smoke {
		rounds = 10
	}
	profiles := []struct {
		name string
		p    faults.Profile
	}{
		// Delays past the 20ms call timeout degrade the link and arm
		// speculation; drops surface synchronously and count toward the
		// disconnect threshold.
		{"delay-light", faults.Profile{DropRate: 0.02, DelayRate: 0.08, DelayMin: 30 * time.Millisecond, DelayMax: 60 * time.Millisecond}},
		{"delay-heavy", faults.Profile{DropRate: 0.02, DelayRate: 0.25, DelayMin: 40 * time.Millisecond, DelayMax: 80 * time.Millisecond}},
		{"lossy", faults.Profile{DropRate: 0.10, DelayRate: 0.12, DelayMin: 30 * time.Millisecond, DelayMax: 60 * time.Millisecond}},
	}
	reg, err := fleet.WorkloadRegistry()
	if err != nil {
		return nil, err
	}

	var points []specPoint
	for _, prof := range profiles {
		s := aide.NewSurrogate(reg, aide.WithHeap(1<<30))
		client := aide.NewClient(reg,
			aide.WithHeap(1<<20),
			aide.WithSpeculation(),
			aide.WithCallTimeout(20*time.Millisecond),
			aide.WithDisconnectAfter(2),
			aide.WithRetryPolicy(-1, 0),
			aide.WithHandoffTimeout(100*time.Millisecond),
		)
		th := client.Thread()
		obj, err := th.New(fleet.WorkloadClass, 300<<10)
		if err != nil {
			return nil, err
		}
		client.VM().SetRoot("acct", obj)
		if err := th.SetField(obj, "bal", aide.Int(0)); err != nil {
			return nil, err
		}

		rng := rand.New(rand.NewSource(11))
		var (
			base       int64
			uncertain  int64
			violations int
		)
		step := func() {
			v, err := th.Invoke(obj, "add", aide.Int(2))
			if err != nil {
				uncertain++ // the call may still have landed remotely
				return
			}
			ok := v.I == 2 // a zeroed reclaim restarts the sequence
			for extra := int64(0); extra <= uncertain; extra++ {
				if v.I == base+(1+extra)*2 {
					ok = true
				}
			}
			if !ok {
				violations++
			}
			base, uncertain = v.I, 0
		}
		for round := 0; round < rounds; round++ {
			ct, st := remote.NewChannelPair()
			p := prof.p
			p.Seed = int64(round + 1)
			p.SeverAfter = int64(15 + rng.Intn(60))
			inj := faults.Wrap(ct, p)
			s.Serve(st)
			if err := client.Attach(inj); err != nil {
				_ = inj.Sever()
				for k := 0; k < 5; k++ {
					step()
				}
				continue
			}
			_, _ = client.Offload() // best effort: a failed placement leaves the round local
			for k := 0; k < 5; k++ {
				step()
			}
			_ = inj.Sever()
			step()
		}
		st := client.SpeculationStats()
		total := st.LocalWins + st.RemoteWins + st.Misses
		pt := specPoint{
			Profile:     prof.name,
			Rounds:      rounds,
			LocalWins:   st.LocalWins,
			RemoteWins:  st.RemoteWins,
			Misses:      st.Misses,
			Disconnects: client.Disconnects(),
			Violations:  violations,
		}
		if total > 0 {
			pt.WinRate = float64(st.LocalWins) / float64(total)
		}
		points = append(points, pt)
		fmt.Printf("spec      %-12s %3d rounds  local %3d  remote %3d  miss %3d  win-rate %.2f  disconnects %d\n",
			prof.name, rounds, pt.LocalWins, pt.RemoteWins, pt.Misses, pt.WinRate, pt.Disconnects)
		if err := client.Close(); err != nil {
			return nil, err
		}
		if err := s.Close(); err != nil {
			return nil, err
		}
		if violations != 0 {
			return nil, fmt.Errorf("speculation %s: %d exactly-once violations", prof.name, violations)
		}
	}
	return points, nil
}
