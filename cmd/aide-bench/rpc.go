package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"aide/internal/remote/rpcbench"
)

// rpcRow is one benchmark measurement in BENCH_rpc.json.
type rpcRow struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// rpcReport is the machine-readable record of the RPC fast-path
// comparison: the hand-rolled binary codec against the gob baseline at
// the codec layer and end-to-end over each transport flavor, plus the
// host's raw syscall floor that bounds the end-to-end rows, and the
// distributed-GC release-coalescing win.
type rpcReport struct {
	// RawTCPEchoNs is a codec-free, platform-free loopback round trip:
	// the floor under every end-to-end number below.
	RawTCPEchoNs float64 `json:"raw_tcp_echo_floor_ns"`

	Codec           map[string]rpcRow `json:"codec"`
	CodecSpeedup    float64           `json:"codec_speedup_vs_gob"`
	CodecAllocsShed float64           `json:"codec_allocs_shed_frac_vs_gob"`

	Invoke           map[string]rpcRow `json:"invoke"`
	TCPSpeedup       float64           `json:"invoke_tcp_speedup_vs_gob"`
	TCPAllocsShed    float64           `json:"invoke_tcp_allocs_shed_frac_vs_gob"`
	TCPFloorAdjusted float64           `json:"invoke_tcp_speedup_vs_gob_above_floor"`

	Storm rpcStorm `json:"release_storm"`

	// Pipeline is the chained-call comparison over the TCP transport:
	// one transaction of depth dependent hops, issued as blocking round
	// trips versus shipped as one MsgInvokeBatch frame.
	Pipeline []rpcPipelineRow `json:"pipeline"`

	// PipelineSpeedup16 is the headline promise-pipelining claim: chain
	// throughput multiple at the paper-style depth of 16.
	PipelineSpeedup16 float64 `json:"pipeline_tcp_speedup_at_depth_16"`

	LazyMigration rpcLazy `json:"lazy_migration"`
}

// rpcPipelineRow is one chained-call measurement at a given depth.
type rpcPipelineRow struct {
	Depth          int     `json:"depth"`
	SequentialNs   float64 `json:"sequential_ns_per_chain"`
	PipelinedNs    float64 `json:"pipelined_ns_per_chain"`
	SpeedupX       float64 `json:"speedup_x"`
	SequentialWire int64   `json:"sequential_wire_bytes_per_chain"`
	PipelinedWire  int64   `json:"pipelined_wire_bytes_per_chain"`
}

// rpcLazy records the lazy-vs-full migration comparison: the same
// document set shipped full-state and with monitor-predicted hot fields
// only, cold fields pulled on demand.
type rpcLazy struct {
	Objects       int     `json:"objects"`
	FullWireBytes int64   `json:"full_migration_wire_bytes"`
	LazyWireBytes int64   `json:"lazy_migration_wire_bytes"`
	DeferredBytes int64   `json:"deferred_logical_bytes"`
	ReductionFrac float64 `json:"wire_byte_reduction_frac"`
	HotFaults     int64   `json:"hot_field_faults"`
	ColdFaults    int64   `json:"cold_field_faults"`
}

// rpcStorm records the release-coalescing comparison for one
// 1,000-decref storm.
type rpcStorm struct {
	Releases          int64   `json:"releases"`
	BatchedMessages   int64   `json:"batched_wire_messages"`
	UnbatchedMessages int64   `json:"unbatched_wire_messages"`
	MessageReduction  float64 `json:"wire_message_reduction_x"`
	BatchedNs         float64 `json:"batched_ns_per_storm"`
	UnbatchedNs       float64 `json:"unbatched_ns_per_storm"`
}

func row(r testing.BenchmarkResult) rpcRow {
	return rpcRow{
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// benchStep measures one serial step function.
func benchStep(step func() error) (testing.BenchmarkResult, error) {
	var stepErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := step(); err != nil {
				stepErr = err
				return
			}
		}
	})
	return r, stepErr
}

// benchInvoke measures end-to-end echo invocations over one transport
// flavor with eight pipelined callers (the workload the sharded call
// table exists for).
func benchInvoke(mode rpcbench.Mode) (testing.BenchmarkResult, error) {
	env, err := rpcbench.New(rpcbench.Config{Mode: mode, Workers: 8})
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	var benchErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.SetParallelism(8)
		b.RunParallel(func(pb *testing.PB) {
			invoke := env.Caller()
			for pb.Next() {
				if err := invoke(); err != nil {
					benchErr = err
					return
				}
			}
		})
	})
	if err := env.Close(); benchErr == nil {
		benchErr = err
	}
	return r, benchErr
}

// benchStorm measures one 1,000-decref release storm and returns the
// wire-message count it produced.
func benchStorm(batch int) (testing.BenchmarkResult, int64, error) {
	env, err := rpcbench.New(rpcbench.Config{Mode: rpcbench.ModeChan, ReleaseBatchSize: batch})
	if err != nil {
		return testing.BenchmarkResult{}, 0, err
	}
	var benchErr error
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := env.ReleaseStorm(1000); err != nil {
				benchErr = err
				return
			}
		}
	})
	st := env.PC.Stats()
	var perStorm int64
	if st.ReleasesSent > 0 {
		perStorm = st.ReleaseBatchesSent * 1000 / st.ReleasesSent
	}
	if err := env.Close(); benchErr == nil {
		benchErr = err
	}
	return r, perStorm, benchErr
}

// benchChain measures one chained-call depth over the TCP transport:
// sequential blocking round trips versus one pipelined batch frame, plus
// the deterministic wire cost of a single chain (measured outside the
// timed loops so Stats polling cannot skew ns/op).
func benchChain(depth int) (rpcPipelineRow, error) {
	env, err := rpcbench.New(rpcbench.Config{Mode: rpcbench.ModeTCP, Workers: 2})
	if err != nil {
		return rpcPipelineRow{}, err
	}
	prow, err := measureChain(env, depth)
	if cerr := env.Close(); err == nil {
		err = cerr
	}
	return prow, err
}

func measureChain(env *rpcbench.Env, depth int) (rpcPipelineRow, error) {
	w0 := env.WireBytes()
	if err := env.SequentialChain(depth); err != nil {
		return rpcPipelineRow{}, err
	}
	seqWire := env.WireBytes() - w0
	w0 = env.WireBytes()
	if err := env.PipelineChain(depth); err != nil {
		return rpcPipelineRow{}, err
	}
	pipeWire := env.WireBytes() - w0

	seq, err := benchStep(func() error { return env.SequentialChain(depth) })
	if err != nil {
		return rpcPipelineRow{}, err
	}
	frames0 := env.PipelineFrames()
	pipe, err := benchStep(func() error { return env.PipelineChain(depth) })
	if err != nil {
		return rpcPipelineRow{}, err
	}
	if env.PipelineFrames() == frames0 {
		return rpcPipelineRow{}, fmt.Errorf("pipelined run sent no batch frames (degraded to sequential)")
	}

	prow := rpcPipelineRow{
		Depth:          depth,
		SequentialNs:   float64(seq.NsPerOp()),
		PipelinedNs:    float64(pipe.NsPerOp()),
		SequentialWire: seqWire,
		PipelinedWire:  pipeWire,
	}
	if prow.PipelinedNs > 0 {
		prow.SpeedupX = prow.SequentialNs / prow.PipelinedNs
	}
	return prow, nil
}

// rpcBench runs the RPC fast-path comparison and writes BENCH_rpc.json.
func rpcBench(jsonPath string) error {
	rep := rpcReport{
		Codec:  make(map[string]rpcRow),
		Invoke: make(map[string]rpcRow),
	}

	step, closeConn, err := rpcbench.RawTCPEcho(256)
	if err != nil {
		return err
	}
	floor, err := benchStep(step)
	if cerr := closeConn(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("raw tcp floor: %w", err)
	}
	rep.RawTCPEchoNs = float64(floor.NsPerOp())
	fmt.Printf("raw TCP loopback echo floor: %d ns/op (no codec, no platform)\n", floor.NsPerOp())

	binCodec, err := benchStep(rpcbench.BinaryCodec())
	if err != nil {
		return fmt.Errorf("binary codec: %w", err)
	}
	gobCodec, err := benchStep(rpcbench.GobCodec())
	if err != nil {
		return fmt.Errorf("gob codec: %w", err)
	}
	rep.Codec["binary"] = row(binCodec)
	rep.Codec["gob"] = row(gobCodec)
	rep.CodecSpeedup = float64(gobCodec.NsPerOp()) / float64(binCodec.NsPerOp())
	if g := gobCodec.AllocsPerOp(); g > 0 {
		rep.CodecAllocsShed = 1 - float64(binCodec.AllocsPerOp())/float64(g)
	}
	fmt.Printf("codec round trip: binary %d ns/op %d allocs, gob %d ns/op %d allocs (%.1fx faster, %.0f%% fewer allocs)\n",
		binCodec.NsPerOp(), binCodec.AllocsPerOp(), gobCodec.NsPerOp(), gobCodec.AllocsPerOp(),
		rep.CodecSpeedup, rep.CodecAllocsShed*100)

	for _, mode := range rpcbench.Modes() {
		r, err := benchInvoke(mode)
		if err != nil {
			return fmt.Errorf("invoke %s: %w", mode, err)
		}
		rep.Invoke[string(mode)] = row(r)
		fmt.Printf("invoke %-8s %6d ns/op  %3d allocs/op  %5d B/op\n",
			mode, r.NsPerOp(), r.AllocsPerOp(), r.AllocedBytesPerOp())
	}
	tcp, gob := rep.Invoke[string(rpcbench.ModeTCP)], rep.Invoke[string(rpcbench.ModeTCPGob)]
	if tcp.NsPerOp > 0 {
		rep.TCPSpeedup = gob.NsPerOp / tcp.NsPerOp
	}
	if gob.AllocsPerOp > 0 {
		rep.TCPAllocsShed = 1 - float64(tcp.AllocsPerOp)/float64(gob.AllocsPerOp)
	}
	if above := tcp.NsPerOp - rep.RawTCPEchoNs; above > 0 {
		rep.TCPFloorAdjusted = (gob.NsPerOp - rep.RawTCPEchoNs) / above
	}
	fmt.Printf("end-to-end tcp vs gob: %.2fx ns/op (%.2fx above the syscall floor), %.0f%% fewer allocs\n",
		rep.TCPSpeedup, rep.TCPFloorAdjusted, rep.TCPAllocsShed*100)

	batched, batchedMsgs, err := benchStorm(0)
	if err != nil {
		return fmt.Errorf("batched storm: %w", err)
	}
	unbatched, unbatchedMsgs, err := benchStorm(1)
	if err != nil {
		return fmt.Errorf("unbatched storm: %w", err)
	}
	rep.Storm = rpcStorm{
		Releases:          1000,
		BatchedMessages:   batchedMsgs,
		UnbatchedMessages: unbatchedMsgs,
		BatchedNs:         float64(batched.NsPerOp()),
		UnbatchedNs:       float64(unbatched.NsPerOp()),
	}
	if batchedMsgs > 0 {
		rep.Storm.MessageReduction = float64(unbatchedMsgs) / float64(batchedMsgs)
	}
	fmt.Printf("release storm (1000 decrefs): %d wire messages batched vs %d unbatched (%.1fx fewer), %.2fms vs %.2fms\n",
		batchedMsgs, unbatchedMsgs, rep.Storm.MessageReduction,
		rep.Storm.BatchedNs/1e6, rep.Storm.UnbatchedNs/1e6)

	for _, depth := range []int{1, 4, 16, 64} {
		prow, err := benchChain(depth)
		if err != nil {
			return fmt.Errorf("pipeline depth %d: %w", depth, err)
		}
		rep.Pipeline = append(rep.Pipeline, prow)
		if depth == 16 {
			rep.PipelineSpeedup16 = prow.SpeedupX
		}
		fmt.Printf("chained calls depth %-3d (tcp): sequential %7.0f ns, pipelined %7.0f ns (%.1fx), wire %d vs %d B/chain\n",
			depth, prow.SequentialNs, prow.PipelinedNs, prow.SpeedupX, prow.SequentialWire, prow.PipelinedWire)
	}

	full, err := rpcbench.MeasureLazyMigration(16, false)
	if err != nil {
		return fmt.Errorf("full migration: %w", err)
	}
	lazy, err := rpcbench.MeasureLazyMigration(16, true)
	if err != nil {
		return fmt.Errorf("lazy migration: %w", err)
	}
	if lazy.HotFaults != 0 {
		return fmt.Errorf("lazy migration: %d faults on predicted-hot fields", lazy.HotFaults)
	}
	rep.LazyMigration = rpcLazy{
		Objects:       lazy.Objects,
		FullWireBytes: full.WireBytes,
		LazyWireBytes: lazy.WireBytes,
		DeferredBytes: lazy.SavedBytes,
		HotFaults:     lazy.HotFaults,
		ColdFaults:    lazy.ColdFaults,
	}
	if full.WireBytes > 0 {
		rep.LazyMigration.ReductionFrac = 1 - float64(lazy.WireBytes)/float64(full.WireBytes)
	}
	fmt.Printf("lazy migration (%d notes): %d B on the wire vs %d full-state (%.0f%% less), %d cold faults, %d hot faults\n",
		lazy.Objects, lazy.WireBytes, full.WireBytes, rep.LazyMigration.ReductionFrac*100,
		lazy.ColdFaults, lazy.HotFaults)

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", jsonPath)
	return nil
}
