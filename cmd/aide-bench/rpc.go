package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"aide/internal/remote/rpcbench"
)

// rpcRow is one benchmark measurement in BENCH_rpc.json.
type rpcRow struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// rpcReport is the machine-readable record of the RPC fast-path
// comparison: the hand-rolled binary codec against the gob baseline at
// the codec layer and end-to-end over each transport flavor, plus the
// host's raw syscall floor that bounds the end-to-end rows, and the
// distributed-GC release-coalescing win.
type rpcReport struct {
	// RawTCPEchoNs is a codec-free, platform-free loopback round trip:
	// the floor under every end-to-end number below.
	RawTCPEchoNs float64 `json:"raw_tcp_echo_floor_ns"`

	Codec           map[string]rpcRow `json:"codec"`
	CodecSpeedup    float64           `json:"codec_speedup_vs_gob"`
	CodecAllocsShed float64           `json:"codec_allocs_shed_frac_vs_gob"`

	Invoke           map[string]rpcRow `json:"invoke"`
	TCPSpeedup       float64           `json:"invoke_tcp_speedup_vs_gob"`
	TCPAllocsShed    float64           `json:"invoke_tcp_allocs_shed_frac_vs_gob"`
	TCPFloorAdjusted float64           `json:"invoke_tcp_speedup_vs_gob_above_floor"`

	Storm rpcStorm `json:"release_storm"`
}

// rpcStorm records the release-coalescing comparison for one
// 1,000-decref storm.
type rpcStorm struct {
	Releases          int64   `json:"releases"`
	BatchedMessages   int64   `json:"batched_wire_messages"`
	UnbatchedMessages int64   `json:"unbatched_wire_messages"`
	MessageReduction  float64 `json:"wire_message_reduction_x"`
	BatchedNs         float64 `json:"batched_ns_per_storm"`
	UnbatchedNs       float64 `json:"unbatched_ns_per_storm"`
}

func row(r testing.BenchmarkResult) rpcRow {
	return rpcRow{
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// benchStep measures one serial step function.
func benchStep(step func() error) (testing.BenchmarkResult, error) {
	var stepErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := step(); err != nil {
				stepErr = err
				return
			}
		}
	})
	return r, stepErr
}

// benchInvoke measures end-to-end echo invocations over one transport
// flavor with eight pipelined callers (the workload the sharded call
// table exists for).
func benchInvoke(mode rpcbench.Mode) (testing.BenchmarkResult, error) {
	env, err := rpcbench.New(rpcbench.Config{Mode: mode, Workers: 8})
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	var benchErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.SetParallelism(8)
		b.RunParallel(func(pb *testing.PB) {
			invoke := env.Caller()
			for pb.Next() {
				if err := invoke(); err != nil {
					benchErr = err
					return
				}
			}
		})
	})
	if err := env.Close(); benchErr == nil {
		benchErr = err
	}
	return r, benchErr
}

// benchStorm measures one 1,000-decref release storm and returns the
// wire-message count it produced.
func benchStorm(batch int) (testing.BenchmarkResult, int64, error) {
	env, err := rpcbench.New(rpcbench.Config{Mode: rpcbench.ModeChan, ReleaseBatchSize: batch})
	if err != nil {
		return testing.BenchmarkResult{}, 0, err
	}
	var benchErr error
	r := testing.Benchmark(func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := env.ReleaseStorm(1000); err != nil {
				benchErr = err
				return
			}
		}
	})
	st := env.PC.Stats()
	var perStorm int64
	if st.ReleasesSent > 0 {
		perStorm = st.ReleaseBatchesSent * 1000 / st.ReleasesSent
	}
	if err := env.Close(); benchErr == nil {
		benchErr = err
	}
	return r, perStorm, benchErr
}

// rpcBench runs the RPC fast-path comparison and writes BENCH_rpc.json.
func rpcBench(jsonPath string) error {
	rep := rpcReport{
		Codec:  make(map[string]rpcRow),
		Invoke: make(map[string]rpcRow),
	}

	step, closeConn, err := rpcbench.RawTCPEcho(256)
	if err != nil {
		return err
	}
	floor, err := benchStep(step)
	if cerr := closeConn(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("raw tcp floor: %w", err)
	}
	rep.RawTCPEchoNs = float64(floor.NsPerOp())
	fmt.Printf("raw TCP loopback echo floor: %d ns/op (no codec, no platform)\n", floor.NsPerOp())

	binCodec, err := benchStep(rpcbench.BinaryCodec())
	if err != nil {
		return fmt.Errorf("binary codec: %w", err)
	}
	gobCodec, err := benchStep(rpcbench.GobCodec())
	if err != nil {
		return fmt.Errorf("gob codec: %w", err)
	}
	rep.Codec["binary"] = row(binCodec)
	rep.Codec["gob"] = row(gobCodec)
	rep.CodecSpeedup = float64(gobCodec.NsPerOp()) / float64(binCodec.NsPerOp())
	if g := gobCodec.AllocsPerOp(); g > 0 {
		rep.CodecAllocsShed = 1 - float64(binCodec.AllocsPerOp())/float64(g)
	}
	fmt.Printf("codec round trip: binary %d ns/op %d allocs, gob %d ns/op %d allocs (%.1fx faster, %.0f%% fewer allocs)\n",
		binCodec.NsPerOp(), binCodec.AllocsPerOp(), gobCodec.NsPerOp(), gobCodec.AllocsPerOp(),
		rep.CodecSpeedup, rep.CodecAllocsShed*100)

	for _, mode := range rpcbench.Modes() {
		r, err := benchInvoke(mode)
		if err != nil {
			return fmt.Errorf("invoke %s: %w", mode, err)
		}
		rep.Invoke[string(mode)] = row(r)
		fmt.Printf("invoke %-8s %6d ns/op  %3d allocs/op  %5d B/op\n",
			mode, r.NsPerOp(), r.AllocsPerOp(), r.AllocedBytesPerOp())
	}
	tcp, gob := rep.Invoke[string(rpcbench.ModeTCP)], rep.Invoke[string(rpcbench.ModeTCPGob)]
	if tcp.NsPerOp > 0 {
		rep.TCPSpeedup = gob.NsPerOp / tcp.NsPerOp
	}
	if gob.AllocsPerOp > 0 {
		rep.TCPAllocsShed = 1 - float64(tcp.AllocsPerOp)/float64(gob.AllocsPerOp)
	}
	if above := tcp.NsPerOp - rep.RawTCPEchoNs; above > 0 {
		rep.TCPFloorAdjusted = (gob.NsPerOp - rep.RawTCPEchoNs) / above
	}
	fmt.Printf("end-to-end tcp vs gob: %.2fx ns/op (%.2fx above the syscall floor), %.0f%% fewer allocs\n",
		rep.TCPSpeedup, rep.TCPFloorAdjusted, rep.TCPAllocsShed*100)

	batched, batchedMsgs, err := benchStorm(0)
	if err != nil {
		return fmt.Errorf("batched storm: %w", err)
	}
	unbatched, unbatchedMsgs, err := benchStorm(1)
	if err != nil {
		return fmt.Errorf("unbatched storm: %w", err)
	}
	rep.Storm = rpcStorm{
		Releases:          1000,
		BatchedMessages:   batchedMsgs,
		UnbatchedMessages: unbatchedMsgs,
		BatchedNs:         float64(batched.NsPerOp()),
		UnbatchedNs:       float64(unbatched.NsPerOp()),
	}
	if batchedMsgs > 0 {
		rep.Storm.MessageReduction = float64(unbatchedMsgs) / float64(batchedMsgs)
	}
	fmt.Printf("release storm (1000 decrefs): %d wire messages batched vs %d unbatched (%.1fx fewer), %.2fms vs %.2fms\n",
		batchedMsgs, unbatchedMsgs, rep.Storm.MessageReduction,
		rep.Storm.BatchedNs/1e6, rep.Storm.UnbatchedNs/1e6)

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", jsonPath)
	return nil
}
