// Command aide-bench regenerates every table and figure of the paper's
// evaluation (§5) and prints paper-style rows alongside the paper's
// published values.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"aide/internal/experiments"
)

func main() {
	full := flag.Bool("full", false, "run the full Figure 7 policy sweep (slow)")
	only := flag.String("only", "", "run a single experiment (table1, table2, figure5, figure6, figure7, figure8, figure9, figure10, monitoring, ablation, energy, heapsweep, linksweep, rpc, faults, telemetry, partition, fleet, handoff)")
	smoke := flag.Bool("smoke", false, "shrink benchmark axes to CI-sized single passes")
	dot := flag.String("dot", "", "directory to write Figure 5 execution-graph DOT files into")
	parallel := flag.Int("parallel", 0, "worker-pool width for experiment replays (0 = GOMAXPROCS, 1 = serial; output is bit-identical at any width)")
	jsonPath := flag.String("json", "BENCH_sweeps.json", "file to write per-artifact wall-clock seconds into (empty disables)")
	flag.Parse()
	if err := run(*full, *smoke, *only, *dot, *parallel, *jsonPath); err != nil {
		fmt.Fprintln(os.Stderr, "aide-bench:", err)
		os.Exit(1)
	}
}

func run(full, smoke bool, only, dotDir string, parallel int, jsonPath string) error {
	s := experiments.NewSuite()
	s.Parallelism = parallel
	section := func(title, paper string) {
		fmt.Printf("\n== %s ==\n   paper: %s\n", title, paper)
	}

	start := time.Now()
	if only == "diag" {
		return diag(s)
	}

	// timings collects per-artifact wall-clock seconds for the
	// machine-readable perf trajectory (BENCH_sweeps.json).
	timings := make(map[string]float64)
	artifact := func(name string, f func() error) error {
		if only != "" && only != name {
			return nil
		}
		t0 := time.Now()
		if err := f(); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		secs := time.Since(t0).Seconds()
		timings[name] = secs
		fmt.Printf("   [%s: %.2fs wall]\n", name, secs)
		return nil
	}

	// Warming the trace cache up front parallelizes the recording of all
	// five applications, the most expensive serial stretch of a fresh
	// suite; every later artifact then replays warm traces.
	if only == "" {
		if err := artifact("warmup", func() error { return s.Warm() }); err != nil {
			return err
		}
	}

	steps := []struct {
		name string
		f    func() error
	}{
		{"table1", func() error {
			section("Table 1: study applications", "five Java applications with varied resource demands")
			for _, r := range experiments.Table1() {
				fmt.Printf("%-9s %-32s %s\n", r.Name, r.Description, r.Profile)
			}
			return nil
		}},
		{"table2", func() error {
			section("Table 2: JavaNote execution metrics",
				"classes 134/138/138, objects 1230/2810/6808, interactions 1126/1190/1186532")
			r, err := s.Table2()
			if err != nil {
				return err
			}
			fmt.Print(r)
			return nil
		}},
		{"figure5", func() error {
			section("Figure 5: JavaNote OOM rescue", "~90% of heap offloaded, ~100KB/s predicted, heuristic ~0.1s")
			r, err := s.Figure5()
			if err != nil {
				return err
			}
			fmt.Println(r)
			if dotDir != "" {
				before := filepath.Join(dotDir, "figure5a.dot")
				after := filepath.Join(dotDir, "figure5b.dot")
				if err := os.WriteFile(before, []byte(r.DOTBefore), 0o644); err != nil {
					return err
				}
				if err := os.WriteFile(after, []byte(r.DOTAfter), 0o644); err != nil {
					return err
				}
				fmt.Printf("wrote %s and %s (render with graphviz: neato -Tpng)\n", before, after)
			}
			return nil
		}},
		{"figure6", func() error {
			section("Figure 6: remote execution overhead (initial policy)", "JavaNote 4.8%, Dia 8.5%, Biomer 27.5%")
			rows, err := s.Figure6()
			if err != nil {
				return err
			}
			for _, r := range rows {
				fmt.Println(r)
			}
			return nil
		}},
		{"figure7", func() error {
			section("Figure 7: policy sweep", "Biomer/Dia overhead reduced 30-43%, JavaNote unchanged")
			rows, err := s.Figure7(!full)
			if err != nil {
				return err
			}
			for _, r := range rows {
				fmt.Println(r)
			}
			return nil
		}},
		{"figure8", func() error {
			section("Figure 8: remote native invocations", "large native share for JavaNote/Dia, smaller for Biomer")
			rows, err := s.Figure8()
			if err != nil {
				return err
			}
			for _, r := range rows {
				fmt.Println(r)
			}
			return nil
		}},
		{"monitoring", func() error {
			section("Monitoring overhead", "31.59s -> 35.04s (~11%)")
			r, err := s.MonitoringOverhead()
			if err != nil {
				return err
			}
			fmt.Println(r)
			return nil
		}},
		{"figure9", func() error {
			section("Figure 9: execution time attribution", "a::f 0.12s total -> a 0.02s, b 0.10s")
			d, err := experiments.Figure9()
			if err != nil {
				return err
			}
			fmt.Println(d)
			return nil
		}},
		{"figure10", func() error {
			section("Figure 10: offloading under processing constraints",
				"Voxel/Tracer improve up to ~15% combined; Biomer declined (790s predicted vs 750s, manual 711s)")
			rows, err := s.Figure10()
			if err != nil {
				return err
			}
			for _, r := range rows {
				fmt.Println(r)
			}
			return nil
		}},
		{"ablation", func() error {
			section("Extension: partitioning-heuristic ablation (paper §8)",
				"modified MINCUT vs KL-refined vs greedy memory-density")
			rows, err := s.AblationHeuristics()
			if err != nil {
				return err
			}
			for _, r := range rows {
				fmt.Println(r)
			}
			return nil
		}},
		{"heapsweep", func() error {
			section("Extension: client heap sweep", "below the floor even offloading cannot help; with enough memory the platform never offloads")
			points, err := s.HeapSweep()
			if err != nil {
				return err
			}
			for _, p := range points {
				fmt.Println(p)
			}
			return nil
		}},
		{"linksweep", func() error {
			section("Extension: link-technology sweep", "offloading viability tracks RTT more than bandwidth")
			points, err := s.LinkSweep()
			if err != nil {
				return err
			}
			for _, p := range points {
				fmt.Println(p)
			}
			return nil
		}},
		{"rpc", func() error {
			section("Extension: RPC fast path", "binary codec vs gob baseline; coalesced distributed-GC releases")
			return rpcBench("BENCH_rpc.json")
		}},
		{"faults", func() error {
			section("Extension: disconnection study", "graceful degradation to local execution when the surrogate vanishes (paper §2, §7)")
			return faultsBench("BENCH_faults.json")
		}},
		{"telemetry", func() error {
			section("Extension: telemetry overhead", "disabled instrumentation must cost ≤10 ns and 0 allocs per site")
			return telemetryBench("BENCH_telemetry.json")
		}},
		{"partition", func() error {
			section("Extension: incremental repartitioning",
				"O(changed edges) delta pipeline vs O(N²) from-scratch; striped vs global-mutex ingestion")
			return partitionBench("BENCH_partition.json", smoke)
		}},
		{"fleet", func() error {
			section("Extension: multi-tenant fleet",
				"per-session isolation under >=100 concurrent tenants; admission, shedding, eviction across a surrogate fleet")
			return fleetBench("BENCH_fleet.json", smoke)
		}},
		{"handoff", func() error {
			section("Extension: snapshots, speculation, live handoff",
				"snapshot wire size tracks live bytes; drain blackout stays bounded under live traffic; speculation wins degraded rounds")
			return handoffBench("BENCH_handoff.json", smoke)
		}},
		{"energy", func() error {
			section("Extension: client battery drain (paper §2/§8)",
				"offloading trades CPU-seconds for radio-seconds")
			rows, err := s.EnergyStudy()
			if err != nil {
				return err
			}
			for _, r := range rows {
				fmt.Println(r)
			}
			return nil
		}},
	}
	for _, step := range steps {
		if err := artifact(step.name, step.f); err != nil {
			return err
		}
	}
	fmt.Printf("\n(total %v, parallelism %d)\n", time.Since(start).Round(time.Millisecond), parallel)
	if jsonPath != "" && len(timings) > 0 {
		// encoding/json emits map keys sorted, so the file is stable
		// across runs of the same artifact set.
		buf, err := json.MarshalIndent(timings, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote per-artifact wall-clock seconds to %s\n", jsonPath)
	}
	return nil
}

// diag prints calibration internals: per-application trace statistics and
// the partitioning records of the Figure 6 runs.
func diag(s *experiments.Suite) error {
	for _, name := range []string{"JavaNote", "Dia", "Biomer", "Voxel", "Tracer"} {
		t, err := s.Trace(name)
		if err != nil {
			return err
		}
		st := experiments.TraceStats(t)
		fmt.Printf("%-9s classes %3d  events %8d  interactions %8d  peakLive %5.2fMB  selfTime %7.1fs\n",
			name, len(t.Classes), len(t.Events), st.InteractionEvents,
			float64(st.PeakLiveBytes)/(1<<20), st.SelfTime.Seconds())
	}
	for _, name := range []string{"JavaNote", "Dia", "Biomer"} {
		res, err := s.DiagMemoryRun(name)
		if err != nil {
			return err
		}
		fmt.Printf("\n%s: time %.1fs exec %.1fs comm %.1fs xfer %.1fs gc %d remoteInv %d remoteNative %d remoteAcc %d\n",
			name, res.Time.Seconds(), res.ExecTime.Seconds(), res.CommTime.Seconds(),
			res.TransferTime.Seconds(), res.GCCycles, res.RemoteInvocations, res.RemoteNative, res.RemoteAccesses)
		for _, p := range res.Partitions {
			fmt.Printf("  partition@%d t=%.1fs forced=%t rejected=%t moved=%dKB classes=%d cutBytes=%dKB reason=%s\n",
				p.EventIndex, p.At.Seconds(), p.Forced, p.Rejected, p.TransferBytes/1024,
				len(p.OffloadedClasses), p.Decision.CutBytes/1024, p.RejectedReason)
			if len(p.OffloadedClasses) > 0 && len(p.OffloadedClasses) <= 140 {
				fmt.Printf("  offloaded: %v\n", p.OffloadedClasses)
			}
		}
	}
	return nil
}
