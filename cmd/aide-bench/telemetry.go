package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"
	"time"

	"aide/internal/telemetry"
)

// telemetryPoint is one measured instrumentation site.
type telemetryPoint struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Disabled-path sites carry the ISSUE acceptance budget; enabled
	// sites are informational (Budgeted false).
	Budgeted bool  `json:"budgeted"`
	BudgetNs int64 `json:"budget_ns,omitempty"`
	Pass     bool  `json:"pass"`
}

// telemetryReport is the machine-readable record of the telemetry
// overhead study (BENCH_telemetry.json).
type telemetryReport struct {
	BudgetNs int64            `json:"budget_ns"`
	Pass     bool             `json:"pass"`
	Points   []telemetryPoint `json:"points"`
}

// disabledBudgetNs is the acceptance bar for suppressed instrumentation:
// a metric update or span emission on a process wired without telemetry
// must cost at most this many nanoseconds and zero allocations.
const disabledBudgetNs = 10

// telemetryBench measures the platform's instrumentation sites in both
// states — disabled (nil instruments / off tracer, the default for
// every process) and enabled — and writes BENCH_telemetry.json. The
// disabled rows are pass/fail against the ≤10 ns, 0-alloc budget.
func telemetryBench(jsonPath string) error {
	var nilReg *telemetry.Registry
	nilCounter := nilReg.Counter("aide_bench_ops_total", "")
	var nilHist *telemetry.Histogram
	offTracer := telemetry.NewTracer(256)

	liveReg := telemetry.New()
	liveCounter := liveReg.Counter("aide_bench_ops_total", "")
	liveHist := liveReg.Histogram("aide_bench_latency_seconds", "", telemetry.DefaultLatencyBuckets())
	base := time.Unix(0, 0)
	onTracer := telemetry.NewTracerWithClock(256, func() time.Time { return base })
	onTracer.SetEnabled(true)
	span := telemetry.Span{Kind: telemetry.SpanRPC, Peer: 1, Bytes: 128, Start: base}

	cases := []struct {
		name     string
		budgeted bool
		body     func(b *testing.B)
	}{
		{"disabled_counter_add", true, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				nilCounter.Add(1)
			}
		}},
		{"disabled_histogram_observe", true, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				nilHist.Observe(time.Microsecond)
			}
		}},
		{"disabled_tracer_emit", true, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				// The instrumentation-site pattern: gate before
				// building the span, so a disabled tracer costs one
				// atomic load.
				if offTracer.Enabled() {
					offTracer.Emit(telemetry.Span{Kind: telemetry.SpanRPC, Peer: 1})
				}
			}
		}},
		{"enabled_counter_add", false, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				liveCounter.Add(1)
			}
		}},
		{"enabled_histogram_observe", false, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				liveHist.Observe(time.Duration(i) * time.Nanosecond)
			}
		}},
		{"enabled_tracer_emit", false, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				onTracer.Emit(span)
			}
		}},
	}

	rep := telemetryReport{BudgetNs: disabledBudgetNs, Pass: true}
	for _, c := range cases {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			c.body(b)
		})
		p := telemetryPoint{
			Name:        c.name,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			Budgeted:    c.budgeted,
			Pass:        true,
		}
		if c.budgeted {
			p.BudgetNs = disabledBudgetNs
			p.Pass = p.NsPerOp <= disabledBudgetNs && p.AllocsPerOp == 0
			if !p.Pass {
				rep.Pass = false
			}
		}
		status := ""
		if c.budgeted {
			status = "  [PASS]"
			if !p.Pass {
				status = "  [FAIL > 10ns budget]"
			}
		}
		fmt.Printf("%-28s %8.2f ns/op %4d allocs/op%s\n", c.name, p.NsPerOp, p.AllocsPerOp, status)
		rep.Points = append(rep.Points, p)
	}

	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", jsonPath)
	if !rep.Pass {
		return fmt.Errorf("disabled-path instrumentation exceeded the %d ns / 0 alloc budget", disabledBudgetNs)
	}
	return nil
}
