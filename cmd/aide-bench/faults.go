package main

import (
	"encoding/json"
	"fmt"
	"os"
	"time"

	"aide/internal/experiments"
)

// faultsReport is the machine-readable record of the disconnection
// study (BENCH_faults.json): the retry cost of staying exactly-once on
// lossy links, and the latency of failing over to local execution after
// a hard sever.
type faultsReport struct {
	Tolerance []experiments.FaultPoint  `json:"tolerance"`
	Recovery  experiments.RecoveryStats `json:"recovery"`
}

// faultsBench runs the disconnection study on the live platform and
// writes BENCH_faults.json.
func faultsBench(jsonPath string) error {
	points, err := experiments.FaultToleranceSweep()
	if err != nil {
		return err
	}
	for _, p := range points {
		fmt.Println(p)
	}
	rec, err := experiments.RecoveryStudy(time.Now, 50)
	if err != nil {
		return err
	}
	fmt.Println(rec)

	buf, err := json.MarshalIndent(&faultsReport{Tolerance: points, Recovery: rec}, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(jsonPath, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", jsonPath)
	return nil
}
