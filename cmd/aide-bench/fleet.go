package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"aide"
	"aide/internal/fleet"
)

// fleetPoint is one sweep point of the multi-tenant fleet study: a
// surrogate topology, a session load, and what the load generator and the
// surrogates measured.
type fleetPoint struct {
	Name        string `json:"name"`
	Surrogates  int    `json:"surrogates"`
	Sessions    int    `json:"sessions"`
	Concurrency int    `json:"concurrency"`

	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Unplaced  int64 `json:"unplaced"`
	Rejected  int64 `json:"rejected"`
	Shed      int64 `json:"shed"`
	Evicted   int64 `json:"evicted"`

	CrossTenantFailures int64 `json:"cross_tenant_failures"`

	SessionP50Ms float64 `json:"session_p50_ms"`
	SessionP99Ms float64 `json:"session_p99_ms"`
	OpP50Ms      float64 `json:"op_p50_ms"`
	OpP99Ms      float64 `json:"op_p99_ms"`

	SessionsPerSec float64          `json:"sessions_per_sec"`
	Placed         map[string]int64 `json:"placed"`
}

// fleetReport is the machine-readable record of the fleet study. The
// headline claim: every sweep point — including the capped and degraded
// fleets, where admission control and shedding are actively refusing and
// evicting tenants — completes with zero cross-tenant failures.
type fleetReport struct {
	GOMAXPROCS int          `json:"gomaxprocs"`
	Points     []fleetPoint `json:"points"`

	// ZeroCrossTenant is true only if no sweep point observed a tenant
	// reading state it did not write.
	ZeroCrossTenant bool `json:"zero_cross_tenant_all"`
}

// fleetBench runs the multi-tenant fleet sweep and writes the report.
// smoke shrinks the session counts to CI size (the baseline keeps >= 100
// concurrent sessions either way — that floor is the isolation claim).
func fleetBench(path string, smoke bool) error {
	sessions := 10_000
	if smoke {
		sessions = 1_000
	}

	rep := fleetReport{GOMAXPROCS: runtime.GOMAXPROCS(0), ZeroCrossTenant: true}
	ctx := context.Background()

	runPoint := func(name string, coord *fleet.Coordinator, reg *aide.Registry, cfg fleet.Config, surrogates map[string]*aide.Surrogate) (fleet.Report, error) {
		t0 := time.Now()
		r, err := fleet.Run(ctx, coord, reg, cfg)
		if err != nil {
			return fleet.Report{}, fmt.Errorf("%s: %w", name, err)
		}
		wall := time.Since(t0).Seconds()
		var evicted int64
		for _, s := range surrogates {
			evicted += s.Stats().Evicted
		}
		p := fleetPoint{
			Name:                name,
			Surrogates:          len(surrogates),
			Sessions:            cfg.Sessions,
			Concurrency:         cfg.Concurrency,
			Completed:           r.Completed,
			Failed:              r.Failed,
			Unplaced:            r.Unplaced,
			Rejected:            r.Rejected,
			Shed:                r.Shed,
			Evicted:             evicted,
			CrossTenantFailures: r.CrossTenantFailures,
			SessionP50Ms:        float64(r.SessionP50) / 1e6,
			SessionP99Ms:        float64(r.SessionP99) / 1e6,
			OpP50Ms:             float64(r.OpP50) / 1e6,
			OpP99Ms:             float64(r.OpP99) / 1e6,
			SessionsPerSec:      float64(r.Completed) / wall,
			Placed:              r.Placed,
		}
		rep.Points = append(rep.Points, p)
		if r.CrossTenantFailures != 0 {
			rep.ZeroCrossTenant = false
		}
		fmt.Printf("%-12s %d surrogate(s)  %5d sessions @%3d conc  p50 %.2fms p99 %.2fms  rej %d shed %d evict %d  cross-tenant %d  %.0f sessions/s\n",
			name, len(surrogates), cfg.Sessions, cfg.Concurrency,
			p.SessionP50Ms, p.SessionP99Ms, p.Rejected, p.Shed, p.Evicted, p.CrossTenantFailures, p.SessionsPerSec)
		return *r, nil
	}

	newFleet := func(names []string, mk func(name string, reg *aide.Registry) *aide.Surrogate, rtts []time.Duration) (*fleet.Coordinator, *aide.Registry, map[string]*aide.Surrogate, func() error) {
		reg, err := fleet.WorkloadRegistry()
		if err != nil {
			panic(err) // registry specs are static; failure is a programming error
		}
		surrogates := make(map[string]*aide.Surrogate, len(names))
		targets := make([]fleet.Target, len(names))
		for i, name := range names {
			s := mk(name, reg)
			surrogates[name] = s
			targets[i] = &fleet.LocalTarget{TargetName: name, Surrogate: s, SyntheticRTT: rtts[i]}
		}
		closeAll := func() error {
			var firstErr error
			for _, s := range surrogates {
				if err := s.Close(); err != nil && firstErr == nil {
					firstErr = err
				}
			}
			return firstErr
		}
		return fleet.New(targets...), reg, surrogates, closeAll
	}

	// Point 1 — baseline: one surrogate, the full session load, >= 100
	// concurrent tenants. The isolation floor the ISSUE demands.
	{
		coord, reg, surrogates, closeAll := newFleet([]string{"s0"},
			func(_ string, reg *aide.Registry) *aide.Surrogate {
				return aide.NewSurrogate(reg, aide.WithHeap(256<<20))
			}, []time.Duration{0})
		r, err := runPoint("baseline_1x", coord, reg, fleet.Config{
			Sessions: sessions, Concurrency: 128, Ops: 4, BytesPerSession: 8 << 10,
		}, surrogates)
		if cerr := closeAll(); err == nil && cerr != nil {
			err = fmt.Errorf("baseline_1x close: %w", cerr)
		}
		if err != nil {
			return err
		}
		if r.Failed != 0 || r.Unplaced != 0 {
			return fmt.Errorf("baseline_1x: %d failed, %d unplaced sessions on an uncontended surrogate", r.Failed, r.Unplaced)
		}
	}

	// Point 2 — fleet spread: two equal surrogates, same load; placement
	// must use both.
	{
		coord, reg, surrogates, closeAll := newFleet([]string{"s0", "s1"},
			func(_ string, reg *aide.Registry) *aide.Surrogate {
				return aide.NewSurrogate(reg, aide.WithHeap(256<<20))
			}, []time.Duration{0, 0})
		r, err := runPoint("fleet_2x", coord, reg, fleet.Config{
			Sessions: sessions, Concurrency: 128, Ops: 4, BytesPerSession: 8 << 10, RefreshEvery: 256,
		}, surrogates)
		if cerr := closeAll(); err == nil && cerr != nil {
			err = fmt.Errorf("fleet_2x close: %w", cerr)
		}
		if err != nil {
			return err
		}
		if r.Placed["s0"] == 0 || r.Placed["s1"] == 0 {
			return fmt.Errorf("fleet_2x: placement dogpiled one surrogate (%v)", r.Placed)
		}
	}

	// Point 3 — admission control: the preferred surrogate caps at 8
	// sessions (well under the sustained in-flight load, so the cap is
	// genuinely contended); the overflow must be typed rejections that
	// reroute to the open surrogate, never failures.
	{
		coord, reg, surrogates, closeAll := newFleet([]string{"capped", "open"},
			func(name string, reg *aide.Registry) *aide.Surrogate {
				if name == "capped" {
					return aide.NewSurrogate(reg, aide.WithHeap(256<<20), aide.WithMaxSessions(8))
				}
				return aide.NewSurrogate(reg, aide.WithHeap(256<<20))
			}, []time.Duration{0, 5 * time.Millisecond})
		r, err := runPoint("capped", coord, reg, fleet.Config{
			Sessions: sessions / 2, Concurrency: 128, Ops: 4, BytesPerSession: 8 << 10, RefreshEvery: 64,
		}, surrogates)
		if cerr := closeAll(); err == nil && cerr != nil {
			err = fmt.Errorf("capped close: %w", cerr)
		}
		if err != nil {
			return err
		}
		if r.Rejected == 0 {
			return errors.New("capped: admission control never rejected a session")
		}
		if r.Failed != 0 {
			return fmt.Errorf("capped: %d sessions failed instead of rerouting", r.Failed)
		}
	}

	// Point 4 — degradation: the preferred surrogate's health check trips
	// partway through the run; with evict-on-degraded it sheds new
	// tenants and evicts live ones, and the fleet absorbs the rest.
	{
		var healthChecks atomic.Int64
		trip := int64(sessions / 8)
		coord, reg, surrogates, closeAll := newFleet([]string{"sick", "backup"},
			func(name string, reg *aide.Registry) *aide.Surrogate {
				if name == "sick" {
					return aide.NewSurrogate(reg,
						aide.WithHeap(256<<20),
						aide.WithEvictOnDegraded(),
						aide.WithHealthCheck(func() error {
							if healthChecks.Add(1) > trip {
								return errors.New("synthetic degradation")
							}
							return nil
						}))
				}
				return aide.NewSurrogate(reg, aide.WithHeap(256<<20))
			}, []time.Duration{0, 5 * time.Millisecond})
		r, err := runPoint("degraded", coord, reg, fleet.Config{
			Sessions: sessions / 4, Concurrency: 64, Ops: 4, BytesPerSession: 8 << 10, RefreshEvery: 64,
		}, surrogates)
		if cerr := closeAll(); err == nil && cerr != nil {
			err = fmt.Errorf("degraded close: %w", cerr)
		}
		if err != nil {
			return err
		}
		if r.Shed == 0 {
			return errors.New("degraded: health-based shedding never triggered")
		}
	}

	if !rep.ZeroCrossTenant {
		return errors.New("fleet: cross-tenant interference observed — isolation broken")
	}
	fmt.Printf("headline: %d sweep points, zero cross-tenant failures everywhere\n", len(rep.Points))

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
