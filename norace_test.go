//go:build !race

package aide

const raceEnabled = false
