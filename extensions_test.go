package aide

import (
	"testing"
	"time"
)

func TestRecallBringsObjectsHome(t *testing.T) {
	reg := demoRegistry(t)
	client, surrogate, err := NewLocalPair(reg, []Option{WithHeap(1 << 20)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	defer surrogate.Close()

	th := client.Thread()
	doc, err := th.New("Doc", 300<<10)
	if err != nil {
		t.Fatal(err)
	}
	client.VM().SetRoot("doc", doc)
	if _, err := th.Invoke(doc, "append", Int(5)); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Offload(); err != nil {
		t.Fatal(err)
	}
	if surrogate.Heap().Live < 300<<10 {
		t.Fatal("offload did not move the document")
	}

	// Bring it back: the paper's §8 "global placement" reverse direction.
	n, bytes, err := client.Recall([]string{"Doc"})
	if err != nil {
		t.Fatalf("recall: %v", err)
	}
	if n != 1 || bytes < 300<<10 {
		t.Fatalf("recall moved %d objects, %d bytes", n, bytes)
	}
	surrogate.VM().Collect()
	if live := surrogate.Heap().Live; live >= 300<<10 {
		t.Fatalf("surrogate still hosts the document: %d live", live)
	}
	// The original reference still works, locally again.
	v, err := th.Invoke(doc, "append", Int(2))
	if err != nil {
		t.Fatalf("invoke after recall: %v", err)
	}
	if v.I != 7 {
		t.Fatalf("state after round trip = %d, want 7", v.I)
	}
	if o := client.VM().Object(doc); o == nil || o.Remote {
		t.Fatal("client object must be real (not a stub) after recall")
	}
}

func TestRecallWithoutSurrogate(t *testing.T) {
	client := NewClient(demoRegistry(t))
	defer client.Close()
	if _, _, err := client.Recall([]string{"Doc"}); err != ErrNoSurrogate {
		t.Fatalf("err = %v", err)
	}
}

func TestSurrogateInfo(t *testing.T) {
	reg := demoRegistry(t)
	client, surrogate, err := NewLocalPair(reg, nil, []Option{WithHeap(64 << 20), WithCPUSpeed(3.5)})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	defer surrogate.Close()

	info, err := client.SurrogateInfo()
	if err != nil {
		t.Fatal(err)
	}
	if info.CapacityBytes != 64<<20 || info.CPUSpeed != 3.5 {
		t.Fatalf("info = %+v", info)
	}
	if info.FreeBytes <= 0 || info.FreeBytes > info.CapacityBytes {
		t.Fatalf("free bytes out of range: %+v", info)
	}
}

func TestSurrogateSelection(t *testing.T) {
	reg := demoRegistry(t)
	// Two candidates: a small one and a roomy, faster one.
	small := NewSurrogate(reg, WithHeap(1<<20), WithCPUSpeed(1))
	smallAddr, err := small.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer small.Close()
	big := NewSurrogate(reg, WithHeap(512<<20), WithCPUSpeed(3.5))
	bigAddr, err := big.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer big.Close()

	// The ranking asserted here is the resource tiebreak, which only
	// applies when the two loopback RTTs land in the same 500 µs latency
	// bucket. On a loaded host (the full suite under -race) a probe can
	// jitter across a bucket boundary, so re-probe until the buckets tie
	// rather than asserting on a run that measured a stalled scheduler.
	sameBucket := func(a, b SurrogateProbe) bool {
		const bucket = 500 * time.Microsecond
		return a.Info.RTT/bucket == b.Info.RTT/bucket
	}
	var probes []SurrogateProbe
	for attempt := 0; ; attempt++ {
		probes = ProbeSurrogates([]string{smallAddr, bigAddr, "127.0.0.1:1"})
		if probes[0].Err != nil || probes[1].Err != nil {
			t.Fatalf("live surrogates unreachable: %+v", probes)
		}
		if probes[2].Err == nil {
			t.Fatal("dead address must fail")
		}
		if sameBucket(probes[0], probes[1]) {
			break
		}
		if attempt == 10 {
			t.Skipf("loopback RTTs never tied in 10 probes (loaded host): %v vs %v",
				probes[0].Info.RTT, probes[1].Info.RTT)
		}
	}
	ranked := RankSurrogates(probes)
	if ranked[len(ranked)-1].Err == nil {
		t.Fatal("failed probe must rank last")
	}
	// The latency bucket ties (ensured above); the roomier surrogate wins.
	if ranked[0].Addr != bigAddr {
		t.Fatalf("ranked[0] = %s, want the roomy surrogate %s (probes: %+v)", ranked[0].Addr, bigAddr, ranked)
	}

	// AttachBestTCP re-probes internally, so it can hit the same jitter;
	// give it the same benefit of the doubt with fresh clients.
	for attempt := 0; ; attempt++ {
		client := NewClient(reg, WithHeap(1<<20))
		chosen, err := client.AttachBestTCP([]string{smallAddr, bigAddr})
		if err != nil {
			client.Close()
			t.Fatal(err)
		}
		if chosen == bigAddr {
			defer client.Close()
			if err := client.Ping(); err != nil {
				t.Fatal(err)
			}
			return
		}
		client.Close()
		if attempt == 10 {
			t.Fatalf("attached to %s in 11 attempts, want %s", chosen, bigAddr)
		}
	}
}

func TestAttachBestTCPNoCandidates(t *testing.T) {
	client := NewClient(demoRegistry(t))
	defer client.Close()
	if _, err := client.AttachBestTCP(nil); err == nil {
		t.Fatal("empty candidate list accepted")
	}
	if _, err := client.AttachBestTCP([]string{"127.0.0.1:1"}); err == nil {
		t.Fatal("unreachable candidates accepted")
	}
}

func TestRebalanceRecallsWhenPressureLifts(t *testing.T) {
	reg := demoRegistry(t)
	client, surrogate, err := NewLocalPair(reg, []Option{WithHeap(1 << 20)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	defer surrogate.Close()

	th := client.Thread()
	doc, err := th.New("Doc", 300<<10)
	if err != nil {
		t.Fatal(err)
	}
	client.VM().SetRoot("doc", doc)
	if _, err := th.Invoke(doc, "append", Int(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Offload(); err != nil {
		t.Fatal(err)
	}
	if got := client.OffloadedClasses(); len(got) == 0 || got[0] != "Doc" {
		t.Fatalf("offloaded classes = %v", got)
	}

	// The document shrinks (most of it garbage-collected): a fresh
	// partitioning no longer frees 20% of the heap, so rebalancing must
	// bring everything home.
	if err := th.Free(doc); err != nil {
		t.Fatal(err)
	}
	small, err := th.New("Doc", 4<<10)
	if err != nil {
		t.Fatal(err)
	}
	client.VM().SetRoot("doc", small)
	client.VM().Collect()

	rep, err := client.Rebalance()
	if err != nil {
		t.Fatalf("rebalance: %v", err)
	}
	if !rep.Moved() {
		t.Fatal("rebalance should have moved something")
	}
	found := false
	for _, cls := range rep.Recalled {
		if cls == "Doc" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Doc not recalled: %+v", rep)
	}
	if got := client.OffloadedClasses(); len(got) != 0 {
		t.Fatalf("classes still marked offloaded: %v", got)
	}
	surrogate.VM().Collect()
	if live := surrogate.Heap().Live; live > 8<<10 {
		t.Fatalf("surrogate still hosts %d bytes", live)
	}
}

func TestRebalanceStableWhenNothingChanges(t *testing.T) {
	reg := demoRegistry(t)
	client, surrogate, err := NewLocalPair(reg, []Option{WithHeap(1 << 20)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	defer surrogate.Close()

	th := client.Thread()
	doc, err := th.New("Doc", 300<<10)
	if err != nil {
		t.Fatal(err)
	}
	client.VM().SetRoot("doc", doc)
	if _, err := th.Invoke(doc, "append", Int(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Offload(); err != nil {
		t.Fatal(err)
	}
	rep, err := client.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Moved() {
		t.Fatalf("placement churned with no workload change: %+v", rep)
	}
}

func TestPeriodicRebalance(t *testing.T) {
	reg := demoRegistry(t)
	client, surrogate, err := NewLocalPair(reg,
		[]Option{WithHeap(1 << 20), WithPeriodicRebalance(2)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	defer surrogate.Close()

	th := client.Thread()
	doc, err := th.New("Doc", 300<<10)
	if err != nil {
		t.Fatal(err)
	}
	client.VM().SetRoot("doc", doc)
	if _, err := th.Invoke(doc, "append", Int(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Offload(); err != nil {
		t.Fatal(err)
	}

	// The document dies; churn drives collection cycles, and the periodic
	// re-evaluation notices nothing is worth offloading any more and
	// recalls the class marker.
	if err := th.Free(doc); err != nil {
		t.Fatal(err)
	}
	client.VM().SetRoot("doc", InvalidObject)
	for i := 0; i < 12; i++ {
		id, err := th.New("Chunk", 2<<10)
		if err != nil {
			t.Fatal(err)
		}
		_ = id
		th.ClearTemps()
		client.VM().Collect()
	}
	if client.Rebalances() == 0 {
		t.Fatal("periodic re-evaluation never rebalanced")
	}
	if got := client.OffloadedClasses(); len(got) != 0 {
		t.Fatalf("classes still offloaded after rebalance: %v", got)
	}
}

func TestMultiSurrogateOffloadSpreads(t *testing.T) {
	reg := demoRegistry(t)
	s1 := NewSurrogate(reg, WithHeap(8<<20))
	a1, err := s1.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s1.Close()
	s2 := NewSurrogate(reg, WithHeap(8<<20))
	a2, err := s2.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()

	client := NewClient(reg, WithHeap(2<<20))
	defer client.Close()
	if err := client.AttachTCP(a1); err != nil {
		t.Fatal(err)
	}
	if err := client.AttachTCP(a2); err != nil {
		t.Fatal(err)
	}
	if got := client.Surrogates(); got != 2 {
		t.Fatalf("surrogates = %d", got)
	}
	if err := client.Ping(); err != nil {
		t.Fatal(err)
	}
	infos, err := client.SurrogateInfos()
	if err != nil || len(infos) != 2 {
		t.Fatalf("infos = %v, %v", infos, err)
	}

	// Two sizeable classes: the greedy spreader should use both
	// surrogates (each can hold the pieces, and balancing by free memory
	// splits them).
	th := client.Thread()
	doc, err := th.New("Doc", 600<<10)
	if err != nil {
		t.Fatal(err)
	}
	client.VM().SetRoot("doc", doc)
	var prev ObjectID
	for i := 0; i < 64; i++ {
		id, err := th.New("Chunk", 8<<10)
		if err != nil {
			t.Fatal(err)
		}
		if prev != InvalidObject {
			if err := th.SetField(id, "next", RefOf(prev)); err != nil {
				t.Fatal(err)
			}
		}
		client.VM().SetRoot("chunks", id)
		prev = id
		th.ClearTemps()
	}
	if _, err := th.Invoke(doc, "append", Int(3)); err != nil {
		t.Fatal(err)
	}

	rep, err := client.Offload()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Classes) < 2 {
		t.Fatalf("expected both classes offloaded: %v", rep.Classes)
	}
	if s1.Heap().Live == 0 || s2.Heap().Live == 0 {
		t.Fatalf("offload did not spread: s1=%d s2=%d", s1.Heap().Live, s2.Heap().Live)
	}

	// Transparent invocation still works wherever Doc landed.
	v, err := th.Invoke(doc, "append", Int(4))
	if err != nil {
		t.Fatal(err)
	}
	if v.I != 7 {
		t.Fatalf("state = %d, want 7", v.I)
	}

	// Recall routes each class back from the surrogate that hosts it.
	n, _, err := client.Recall(rep.Classes)
	if err != nil {
		t.Fatal(err)
	}
	if n != 65 { // 1 Doc + 64 Chunks
		t.Fatalf("recalled %d objects, want 65", n)
	}
	s1.VM().Collect()
	s2.VM().Collect()
	if s1.Heap().Live != 0 || s2.Heap().Live != 0 {
		t.Fatalf("surrogates not emptied: %d / %d", s1.Heap().Live, s2.Heap().Live)
	}
	if v, err := th.Invoke(doc, "append", Int(1)); err != nil || v.I != 8 {
		t.Fatalf("post-recall invoke: %v %v", v, err)
	}
}
