package aide

import (
	"math/rand"
	"testing"
	"time"

	"aide/internal/faults"
	"aide/internal/remote"
)

// TestSpeculationChaosSevers is the speculation soak: a client with
// speculative execution enabled survives a long seeded sequence of
// degraded links and hard severs — one sever per round — while running
// a non-idempotent cumulative append workload. The invariant checked on
// every successful call is exactly-once execution: the counter may only
// advance by one delta per acknowledged call, plus one delta per
// unacknowledged (errored) call that may or may not have landed, or
// restart from a zeroed reclaim after a disconnect. Any lost, repeated,
// or cross-contaminated execution breaks the arithmetic at the exact
// operation. Every call must also complete within a hard watchdog bound:
// no call may stall.
func TestSpeculationChaosSevers(t *testing.T) {
	rounds := 200
	if testing.Short() {
		rounds = 25
	}
	const (
		appends = 5
		delta   = int64(2)
	)
	reg := demoRegistry(t)
	s := NewSurrogate(reg, WithHeap(1 << 30))
	client := NewClient(reg,
		WithHeap(1<<20),
		WithSpeculation(),
		WithCallTimeout(20*time.Millisecond),
		WithDisconnectAfter(2),
		WithRetryPolicy(-1, 0), // a dropped frame is a timeout, not a resend
		WithHandoffTimeout(100*time.Millisecond),
	)
	defer func() {
		_ = client.Close()
		_ = s.Close()
	}()

	th := client.Thread()
	doc, err := th.New("Doc", 300<<10)
	if err != nil {
		t.Fatalf("new Doc: %v", err)
	}
	client.VM().SetRoot("doc", doc)

	rng := rand.New(rand.NewSource(7))
	var (
		base      int64 // last acknowledged counter value
		uncertain int64 // errored calls that may have executed remotely
	)
	// step runs one append and checks the exactly-once arithmetic.
	step := func(round, k int) {
		start := time.Now()
		v, err := th.Invoke(doc, "append", Int(delta))
		if d := time.Since(start); d > 5*time.Second {
			t.Fatalf("round %d append %d stalled for %v", round, k, d)
		}
		if err != nil {
			// The call may still execute remotely (a lost reply); widen
			// the window the next success may land in.
			uncertain++
			return
		}
		ok := v.I == delta // a zeroed reclaim restarts the sequence
		for extra := int64(0); extra <= uncertain; extra++ {
			if v.I == base+(1+extra)*delta {
				ok = true
			}
		}
		if !ok {
			t.Fatalf("round %d append %d returned %d (base %d, %d uncertain): lost or duplicated an increment",
				round, k, v.I, base, uncertain)
		}
		base, uncertain = v.I, 0
	}

	for round := 0; round < rounds; round++ {
		ct, st := remote.NewChannelPair()
		inj := faults.Wrap(ct, faults.Profile{
			Seed:     int64(round + 1),
			DropRate: 0.05,
			// Delays past the call timeout are what degrade the link: the
			// request still lands (late) and executes as a straggler while
			// the client times out, arming speculation for the next call.
			DelayRate:  0.12,
			DelayMin:   30 * time.Millisecond,
			DelayMax:   60 * time.Millisecond,
			SeverAfter: int64(15 + rng.Intn(60)),
		})
		s.Serve(st)
		// Attach resets the post-disconnect cooldown from the previous
		// round's sever, so each round gets a fresh offload opportunity.
		if err := client.Attach(inj); err != nil {
			// The handshake itself ate a drop or the sever; the round
			// still runs (locally) and still ends in a sever.
			_ = inj.Sever()
			for k := 1; k <= appends; k++ {
				step(round, k)
			}
			continue
		}
		// Best effort: a failed placement leaves the round local.
		_, _ = client.Offload()
		for k := 1; k <= appends; k++ {
			step(round, k)
		}
		_ = inj.Sever() // this round's sever, if the profile's didn't land
		step(round, appends+1)
	}

	st := client.SpeculationStats()
	if st.LocalWins+st.RemoteWins+st.Misses == 0 {
		t.Error("chaos run never exercised speculation; degraded windows were expected")
	}
	t.Logf("chaos: %d rounds, speculation stats %+v, disconnects %d, final counter %d",
		rounds, st, client.Disconnects(), base)
}
