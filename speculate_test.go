package aide

import (
	"sync/atomic"
	"testing"
	"time"

	"aide/internal/vm"
)

// specRegistry registers a Ctr class whose inc method can be made slow
// (wall-clock) selectively on the remote session or on the speculation
// clone. The clone is recognizable by its heap capacity: specCloneHeap
// is used nowhere else.
func specRegistry(t *testing.T, remoteSleep, cloneSleep *atomic.Int64) *Registry {
	t.Helper()
	reg := NewRegistry()
	mustRegister(t, reg, ClassSpec{
		Name:   "Ctr",
		Fields: []string{"n"},
		Methods: []MethodSpec{
			{Name: "inc", Body: func(th *Thread, self ObjectID, args []Value) (Value, error) {
				onClone := th.VM().Heap().Capacity == specCloneHeap
				if onClone {
					if ms := cloneSleep.Load(); ms > 0 {
						time.Sleep(time.Duration(ms) * time.Millisecond)
					}
				} else if th.VM().Role() == vm.RoleSurrogate {
					if ms := remoteSleep.Load(); ms > 0 {
						time.Sleep(time.Duration(ms) * time.Millisecond)
					}
				}
				cur, err := th.GetField(self, "n")
				if err != nil {
					return Nil(), err
				}
				n := cur.I + 1
				return Int(n), th.SetField(self, "n", Int(n))
			}},
		},
	})
	return reg
}

// specFixture builds a speculating client against an in-process
// surrogate with one offloaded Ctr object, then degrades the connection
// with a single deliberately slow remote call.
type specFixture struct {
	client      *Client
	surrogate   *Surrogate
	th          *Thread
	ctr         ObjectID
	remoteSleep *atomic.Int64
	cloneSleep  *atomic.Int64
}

func newSpecFixture(t *testing.T) *specFixture {
	t.Helper()
	f := &specFixture{remoteSleep: new(atomic.Int64), cloneSleep: new(atomic.Int64)}
	reg := specRegistry(t, f.remoteSleep, f.cloneSleep)
	var err error
	f.client, f.surrogate, err = NewLocalPair(reg,
		[]Option{
			WithHeap(1 << 20), WithSpeculation(),
			WithCallTimeout(150 * time.Millisecond),
			WithDisconnectAfter(-1), // stay degraded, never escalate
			WithRetryPolicy(-1, 0),  // no transport retries to muddy timing
		},
		// The surrogate heap must differ from specCloneHeap: the method
		// body tells the clone apart by its unmistakable heap capacity.
		[]Option{WithHeap(128 << 20)})
	if err != nil {
		t.Fatalf("local pair: %v", err)
	}
	t.Cleanup(func() {
		_ = f.client.Close()
		_ = f.surrogate.Close()
	})
	f.th = f.client.Thread()
	if f.ctr, err = f.th.New("Ctr", 300<<10); err != nil {
		t.Fatalf("new Ctr: %v", err)
	}
	f.client.VM().SetRoot("ctr", f.ctr)
	f.inc(t, 1) // build the interaction graph
	if _, err := f.client.Offload(); err != nil {
		t.Fatalf("offload: %v", err)
	}
	f.inc(t, 2) // healthy remote call

	// Degrade: one call sleeps past the timeout. The straggler still
	// executes remotely (n becomes 3); wait it out so later state is
	// deterministic.
	f.remoteSleep.Store(400)
	if _, err := f.th.Invoke(f.ctr, "inc"); err == nil {
		t.Fatal("slow call beat the timeout; cannot degrade the link")
	}
	time.Sleep(600 * time.Millisecond)
	return f
}

func (f *specFixture) inc(t *testing.T, want int64) {
	t.Helper()
	v, err := f.th.Invoke(f.ctr, "inc")
	if err != nil {
		t.Fatalf("inc: %v", err)
	}
	if v.I != want {
		t.Fatalf("inc returned %d, want %d", v.I, want)
	}
}

// TestSpeculationLocalWinPromotesClone keeps the remote slow: the
// speculative race must be won by the local clone, the clone's state
// promoted into the client VM, and the degraded connection dropped —
// with the straggling remote execution discarded along with the session.
func TestSpeculationLocalWinPromotesClone(t *testing.T) {
	f := newSpecFixture(t)

	// Remote still slow: the race's remote leg times out while the local
	// clone (seeded at n=3) answers. Exactly one increment lands: 4.
	f.inc(t, 4)

	st := f.client.SpeculationStats()
	if st.LocalWins != 1 {
		t.Fatalf("local wins = %d, want 1 (stats: %+v)", st.LocalWins, st)
	}
	if n := f.client.Surrogates(); n != 0 {
		t.Fatalf("client still sees %d surrogates after a local win", n)
	}
	// The promoted object now lives locally; the sequence continues.
	f.remoteSleep.Store(0)
	f.inc(t, 5)
	f.inc(t, 6)
}

// TestSpeculationRemoteWin makes the clone slow and the remote fast
// while degraded: the remote result must win and the connection must
// survive.
func TestSpeculationRemoteWin(t *testing.T) {
	f := newSpecFixture(t)

	f.remoteSleep.Store(0)  // remote answers immediately again
	f.cloneSleep.Store(400) // the clone lags behind
	f.inc(t, 4)

	st := f.client.SpeculationStats()
	if st.RemoteWins != 1 {
		t.Fatalf("remote wins = %d, want 1 (stats: %+v)", st.RemoteWins, st)
	}
	if n := f.client.Surrogates(); n != 1 {
		t.Fatalf("client sees %d surrogates after a remote win, want 1", n)
	}
	// Convergent results keep the clone and the session in lockstep; the
	// next degraded call races again without re-pulling.
	f.cloneSleep.Store(0)
	f.inc(t, 5)
}

// TestSpeculationMissOnRefArgs verifies calls carrying object references
// never speculate: they pass through to the remote and count as misses.
func TestSpeculationMissOnRefArgs(t *testing.T) {
	f := newSpecFixture(t)
	f.remoteSleep.Store(0)

	if _, err := f.th.Invoke(f.ctr, "inc", RefOf(f.ctr)); err != nil {
		t.Fatalf("inc with ref arg: %v", err)
	}
	st := f.client.SpeculationStats()
	if st.Misses == 0 {
		t.Fatalf("ref-arg call did not count as a speculation miss (stats: %+v)", st)
	}
	if st.LocalWins != 0 {
		t.Fatalf("ref-arg call speculated (stats: %+v)", st)
	}
}
