package aide

import (
	"errors"
	"testing"
	"time"

	"aide/internal/faults"
	"aide/internal/remote"
)

// TestClientSurvivesSurrogateDisconnect drives the full degradation
// path: offload, hard-sever the link, and verify the application keeps
// running locally — the in-flight placement fails over, offloading pins
// local for the cooldown, and a fresh surrogate restores service.
func TestClientSurvivesSurrogateDisconnect(t *testing.T) {
	reg := demoRegistry(t)
	client := NewClient(reg, WithHeap(1<<20))
	surrogate := NewSurrogate(reg)
	defer func() {
		_ = client.Close()
		_ = surrogate.Close()
	}()

	ct, st := remote.NewChannelPair()
	inj := faults.Wrap(ct, faults.Profile{})
	surrogate.Serve(st)
	if err := client.Attach(inj); err != nil {
		t.Fatalf("attach: %v", err)
	}

	th := client.Thread()
	doc, err := th.New("Doc", 300<<10)
	if err != nil {
		t.Fatalf("new: %v", err)
	}
	client.VM().SetRoot("doc", doc)
	if _, err := th.Invoke(doc, "append", Int(3)); err != nil {
		t.Fatalf("invoke: %v", err)
	}
	if _, err := client.Offload(); err != nil {
		t.Fatalf("offload: %v", err)
	}
	if v, err := th.Invoke(doc, "append", Int(4)); err != nil || v.I != 7 {
		t.Fatalf("remote invoke: v=%v err=%v, want 7", v, err)
	}

	// The link dies hard. The very next call must return a correct
	// local-fallback result: the stub is reclaimed in place and restarts
	// from zeroed fields.
	if err := inj.Sever(); err != nil {
		t.Fatalf("sever: %v", err)
	}
	v, err := th.Invoke(doc, "append", Int(5))
	if err != nil {
		t.Fatalf("invoke across disconnect must fall back locally: %v", err)
	}
	if v.I != 5 {
		t.Fatalf("local fallback returned %d, want 5 (zeroed reclaimed copy)", v.I)
	}

	if n := client.Surrogates(); n != 0 {
		t.Fatalf("Surrogates() = %d after disconnect, want 0", n)
	}
	if n := client.Disconnects(); n != 1 {
		t.Fatalf("Disconnects() = %d, want 1", n)
	}
	if !client.PinnedLocal() {
		t.Fatal("client must be pinned local right after a disconnect")
	}
	if _, err := client.Offload(); !errors.Is(err, ErrPinnedLocal) {
		t.Fatalf("Offload during cooldown: err = %v, want ErrPinnedLocal", err)
	}
	if len(client.OffloadedClasses()) != 0 {
		t.Fatalf("offloaded classes = %v after disconnect, want none", client.OffloadedClasses())
	}

	// The cooldown ages out with garbage-collection cycles (default: 3).
	for i := 0; i < 3; i++ {
		client.VM().Collect()
	}
	if client.PinnedLocal() {
		t.Fatal("cooldown should have expired after 3 GC cycles")
	}

	// A fresh surrogate restores full service.
	ct2, st2 := remote.NewChannelPair()
	surrogate.Serve(st2)
	if err := client.Attach(ct2); err != nil {
		t.Fatalf("re-attach: %v", err)
	}
	if n := client.Surrogates(); n != 1 {
		t.Fatalf("Surrogates() = %d after re-attach, want 1", n)
	}
	if err := client.Ping(); err != nil {
		t.Fatalf("ping after re-attach: %v", err)
	}
	if _, err := client.Offload(); err != nil {
		t.Fatalf("offload after re-attach: %v", err)
	}
	if v, err := th.Invoke(doc, "append", Int(2)); err != nil || v.I != 7 {
		t.Fatalf("remote invoke after re-attach: v=%v err=%v, want 7", v, err)
	}
}

// TestHealthProbeDetectsSilentDeath verifies the background prober finds
// a silently half-closed link while the application is idle: probe
// timeouts escalate to a disconnect without any application call.
func TestHealthProbeDetectsSilentDeath(t *testing.T) {
	reg := demoRegistry(t)
	client := NewClient(reg,
		WithHeap(1<<20),
		WithCallTimeout(25*time.Millisecond),
		WithHealthProbe(10*time.Millisecond),
		WithDisconnectAfter(2),
		WithRetryPolicy(-1, 0))
	surrogate := NewSurrogate(reg)
	defer func() {
		_ = client.Close()
		_ = surrogate.Close()
	}()

	ct, st := remote.NewChannelPair()
	inj := faults.Wrap(ct, faults.Profile{})
	surrogate.Serve(st)
	if err := client.Attach(inj); err != nil {
		t.Fatalf("attach: %v", err)
	}
	if err := client.Ping(); err != nil {
		t.Fatalf("healthy ping: %v", err)
	}

	inj.Blackhole() // sends vanish silently; no transport error ever

	deadline := time.Now().Add(5 * time.Second)
	for client.Disconnects() == 0 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if client.Disconnects() != 1 {
		t.Fatal("prober never escalated the silent half-close to a disconnect")
	}
	if n := client.Surrogates(); n != 0 {
		t.Fatalf("Surrogates() = %d, want 0 after probe-driven disconnect", n)
	}
	if !client.PinnedLocal() {
		t.Fatal("probe-driven disconnect must pin the client local")
	}
}
