package graph

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestInternAndLookup(t *testing.T) {
	g := New()
	a := g.Intern("A")
	if a2 := g.Intern("A"); a2 != a {
		t.Fatal("Intern must be idempotent")
	}
	b := g.Intern("B")
	if a.ID == b.ID {
		t.Fatal("distinct classes must get distinct IDs")
	}
	if n, ok := g.Lookup("A"); !ok || n != a {
		t.Fatal("Lookup(A) failed")
	}
	if _, ok := g.Lookup("missing"); ok {
		t.Fatal("Lookup must miss unknown classes")
	}
	if g.Node(a.ID) != a || g.Node(NodeID(99)) != nil || g.Node(-1) != nil {
		t.Fatal("Node accessor misbehaves")
	}
	if g.Len() != 2 {
		t.Fatalf("Len = %d, want 2", g.Len())
	}
}

func TestEdgesAreUndirectedAndAccumulate(t *testing.T) {
	g := New()
	a := g.Intern("A")
	b := g.Intern("B")
	g.AddInvocation(a.ID, b.ID, 100)
	g.AddInvocation(b.ID, a.ID, 50) // reverse direction, same edge
	g.AddAccess(a.ID, b.ID, 10)

	e := g.Edge(a.ID, b.ID)
	if e == nil {
		t.Fatal("edge missing")
	}
	if e != g.Edge(b.ID, a.ID) {
		t.Fatal("edge must be direction-independent")
	}
	if e.Invocations != 2 || e.Accesses != 1 || e.Bytes != 160 {
		t.Fatalf("edge = %+v", e)
	}
	if e.Interactions() != 3 {
		t.Fatalf("Interactions = %d, want 3", e.Interactions())
	}
	if g.EdgeCount() != 1 {
		t.Fatalf("EdgeCount = %d, want 1", g.EdgeCount())
	}
}

func TestSelfInteractionsIgnored(t *testing.T) {
	g := New()
	a := g.Intern("A")
	g.AddInvocation(a.ID, a.ID, 100)
	g.AddAccess(a.ID, a.ID, 100)
	if g.EdgeCount() != 0 {
		t.Fatal("intra-class interactions must not be recorded (paper §5.1)")
	}
}

func TestMemoryAccounting(t *testing.T) {
	g := New()
	a := g.Intern("A")
	g.AddObject(a.ID, 100)
	g.AddObject(a.ID, 200)
	if a.Memory != 300 || a.LiveObjects != 2 || a.TotalObjects != 2 || a.PeakMemory != 300 {
		t.Fatalf("node = %+v", a)
	}
	g.RemoveObject(a.ID, 100)
	if a.Memory != 200 || a.LiveObjects != 1 || a.PeakMemory != 300 {
		t.Fatalf("after remove: %+v", a)
	}
	if g.TotalMemory() != 200 {
		t.Fatalf("TotalMemory = %d", g.TotalMemory())
	}
	g.AddCPU(a.ID, 5*time.Millisecond)
	if g.TotalCPU() != 5*time.Millisecond {
		t.Fatalf("TotalCPU = %v", g.TotalCPU())
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := New()
	a := g.Intern("A")
	b := g.Intern("B")
	g.AddInvocation(a.ID, b.ID, 10)
	g.AddObject(a.ID, 100)

	c := g.Clone()
	g.AddInvocation(a.ID, b.ID, 90)
	g.AddObject(a.ID, 900)

	cn, _ := c.Lookup("A")
	if cn.Memory != 100 {
		t.Fatalf("clone node mutated: %d", cn.Memory)
	}
	ce := c.Edge(a.ID, b.ID)
	if ce.Bytes != 10 {
		t.Fatalf("clone edge mutated: %d", ce.Bytes)
	}
}

func TestCutWeightAndBytes(t *testing.T) {
	g := New()
	a := g.Intern("A")
	b := g.Intern("B")
	c := g.Intern("C")
	g.AddInvocation(a.ID, b.ID, 10)
	g.AddInvocation(b.ID, c.ID, 20)
	g.AddInvocation(a.ID, c.ID, 40)

	inA := func(id NodeID) bool { return id == a.ID }
	if w := g.CutWeight(inA, BytesWeight); w != 50 {
		t.Fatalf("bytes cut = %v, want 50 (edges A-B and A-C)", w)
	}
	if got := g.CutBytes(inA); got != 50 {
		t.Fatalf("CutBytes = %d, want 50", got)
	}
	if got := g.CutWeight(inA, InteractionWeight); got != 2 {
		t.Fatalf("interaction cut = %v, want 2", got)
	}
}

func TestEdgesDeterministicOrder(t *testing.T) {
	g := New()
	names := []string{"D", "B", "A", "C"}
	for _, n := range names {
		g.Intern(n)
	}
	r := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		a := NodeID(r.Intn(4))
		b := NodeID(r.Intn(4))
		g.AddInvocation(a, b, 1)
	}
	first := g.Edges()
	second := g.Edges()
	if len(first) != len(second) {
		t.Fatal("edge count unstable")
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatal("Edges() order must be deterministic")
		}
	}
	for i := 1; i < len(first); i++ {
		if first[i-1].A > first[i].A || (first[i-1].A == first[i].A && first[i-1].B >= first[i].B) {
			t.Fatal("Edges() must be sorted by (A,B)")
		}
	}
}

func TestCutBytesMatchesManualSum(t *testing.T) {
	check := func(seed int64, nRaw uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + int(nRaw)%10
		g := New()
		for i := 0; i < n; i++ {
			g.Intern(string(rune('a' + i)))
		}
		for i := 0; i < 30; i++ {
			a := NodeID(r.Intn(n))
			b := NodeID(r.Intn(n))
			g.AddInvocation(a, b, int64(r.Intn(100)))
		}
		inA := func(id NodeID) bool { return int(id)%2 == 0 }
		var want int64
		for _, e := range g.Edges() {
			if inA(e.A) != inA(e.B) {
				want += e.Bytes
			}
		}
		return g.CutBytes(inA) == want
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestDOT(t *testing.T) {
	g := New()
	a := g.Intern("A")
	b := g.Intern("B")
	g.AddInvocation(a.ID, b.ID, 10)
	dot := g.DOT(map[NodeID]bool{b.ID: true})
	for _, want := range []string{"graph execution", "shape=box", "style=dotted", "n0 -- n1"} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT output missing %q:\n%s", want, dot)
		}
	}
}
