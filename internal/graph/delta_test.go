package graph

import (
	"math"
	"testing"
	"time"
)

// TestDeltaLineage exercises the single-consumer delta contract: the
// first pull carries everything dirty since birth, later pulls carry only
// touched nodes/edges, and an out-of-lineage epoch forces Full.
func TestDeltaLineage(t *testing.T) {
	g := New()
	a := g.Intern("a")
	b := g.Intern("b")
	c := g.Intern("c")
	g.AddInvocation(a.ID, b.ID, 100)
	g.AddObject(a.ID, 64)

	d1 := g.Delta(0)
	if d1.Full {
		t.Fatal("first in-lineage pull must not be Full")
	}
	if d1.N != 3 || len(d1.Nodes) != 3 || len(d1.Edges) != 1 {
		t.Fatalf("d1 = N%d nodes%d edges%d", d1.N, len(d1.Nodes), len(d1.Edges))
	}
	if d1.Epoch != 1 {
		t.Fatalf("epoch = %d", d1.Epoch)
	}

	// Nothing changed: the next delta is empty.
	d2 := g.Delta(d1.Epoch)
	if d2.Full || len(d2.Nodes) != 0 || len(d2.Edges) != 0 {
		t.Fatalf("quiet delta = %+v", d2)
	}

	// Touch one edge and one node.
	g.AddAccess(b.ID, c.ID, 8)
	g.AddCPU(a.ID, time.Millisecond)
	d3 := g.Delta(d2.Epoch)
	// Only the touched edge and the CPU-attributed node are dirty; edge
	// endpoints ride on the edge copy itself.
	if d3.Full || len(d3.Edges) != 1 || len(d3.Nodes) != 1 || d3.Nodes[0].ID != a.ID {
		t.Fatalf("d3 = full=%t nodes=%d edges=%d", d3.Full, len(d3.Nodes), len(d3.Edges))
	}
	if d3.Edges[0].A != b.ID || d3.Edges[0].B != c.ID || d3.Edges[0].Accesses != 1 {
		t.Fatalf("d3 edge = %+v", d3.Edges[0])
	}

	// Wrong epoch: full resync.
	d4 := g.Delta(999)
	if !d4.Full || len(d4.Nodes) != 3 || len(d4.Edges) != 2 {
		t.Fatalf("d4 = full=%t nodes=%d edges=%d", d4.Full, len(d4.Nodes), len(d4.Edges))
	}
}

// The test above intentionally documents that AddCPU dirties exactly one
// node; keep the count assertion honest.
func TestDeltaDirtyNodeGranularity(t *testing.T) {
	g := New()
	a := g.Intern("a")
	g.Intern("b")
	g.Delta(0) // drain birth dirt
	g.AddCPU(a.ID, time.Second)
	d := g.Delta(1)
	if len(d.Nodes) != 1 || d.Nodes[0].ID != a.ID || d.Nodes[0].CPUTime != time.Second {
		t.Fatalf("delta nodes = %+v", d.Nodes)
	}
}

// Delta hands out value copies: mutating the graph afterwards must not
// alter an already-pulled delta.
func TestDeltaIsolation(t *testing.T) {
	g := New()
	a := g.Intern("a")
	b := g.Intern("b")
	g.AddInvocation(a.ID, b.ID, 10)
	d := g.Delta(0)
	g.AddInvocation(a.ID, b.ID, 90)
	if d.Edges[0].Bytes != 10 {
		t.Fatalf("delta mutated: %+v", d.Edges[0])
	}
}

func TestAddNodeDeltaPeakSemantics(t *testing.T) {
	// A window of +100, +200, -250, +30 has net -(-)= +80 over a 1000
	// base, but its intra-window peak is 1000+300.
	g := New()
	n := g.Intern("x")
	g.AddObject(n.ID, 1000)
	g.AddNodeDelta(n.ID, 80, 2, 3, 300, time.Millisecond)
	if n.Memory != 1080 || n.PeakMemory != 1300 || n.LiveObjects != 3 || n.TotalObjects != 4 {
		t.Fatalf("node = %+v", n)
	}
	if n.CPUTime != time.Millisecond {
		t.Fatalf("cpu = %v", n.CPUTime)
	}
	// A delete-only window (peakRise 0) never raises the peak.
	g.AddNodeDelta(n.ID, -500, -1, 0, 0, 0)
	if n.Memory != 580 || n.PeakMemory != 1300 {
		t.Fatalf("after deletes: %+v", n)
	}
}

// TestDecayHalves pins the decay semantics: after one half-life of
// event-time, an edge's absolute score halves; relative order between a
// stale and a fresh edge flips once the stale one ages.
func TestDecayHalves(t *testing.T) {
	g := New()
	g.SetDecay(100)
	a, b, c := g.Intern("a"), g.Intern("b"), g.Intern("c")

	g.AddInvocation(a.ID, b.ID, 1000) // at t=0
	e := g.Edge(a.ID, b.ID)
	if got := g.HotAt(e, 0); math.Abs(got-1000) > 1e-9 {
		t.Fatalf("hot@0 = %v", got)
	}
	if got := g.HotAt(e, 100); math.Abs(got-500) > 1e-9 {
		t.Fatalf("hot@half-life = %v", got)
	}

	// 400 events later a 200-byte edge outweighs the stale 1000-byte one.
	g.AdvanceClock(400)
	g.AddInvocation(a.ID, c.ID, 200)
	f := g.Edge(a.ID, c.ID)
	if HotWeight(f) <= HotWeight(e) {
		t.Fatalf("fresh edge must outweigh stale: fresh=%v stale=%v", f.Hot, e.Hot)
	}
	// Absolute readings agree with the closed form.
	if got, want := g.HotAt(e, 400), 1000*math.Exp2(-4); math.Abs(got-want) > 1e-9 {
		t.Fatalf("stale hot@400 = %v want %v", got, want)
	}
	if got := g.HotAt(f, 400); math.Abs(got-200) > 1e-9 {
		t.Fatalf("fresh hot@400 = %v", got)
	}
}

// TestDecayDisabledTracksBytes: with no half-life, Hot is exactly Bytes,
// so HotWeight degrades to BytesWeight.
func TestDecayDisabledTracksBytes(t *testing.T) {
	g := New()
	a, b := g.Intern("a"), g.Intern("b")
	g.AddInvocation(a.ID, b.ID, 123)
	g.AddAccess(a.ID, b.ID, 77)
	e := g.Edge(a.ID, b.ID)
	if e.Hot != 200 || HotWeight(e) != BytesWeight(e) {
		t.Fatalf("hot = %v bytes = %d", e.Hot, e.Bytes)
	}
}

// TestDecayRebase drives the clock past the rebase horizon and checks
// that relative weights survive and everything lands in the next delta.
func TestDecayRebase(t *testing.T) {
	g := New()
	g.SetDecay(1)
	a, b, c := g.Intern("a"), g.Intern("b"), g.Intern("c")
	g.AddInvocation(a.ID, b.ID, 100)
	g.AdvanceClock(2)
	g.AddInvocation(a.ID, c.ID, 100) // 2 half-lives fresher: 4x the weight
	g.Delta(0)                       // drain

	ratio := g.Edge(a.ID, c.ID).Hot / g.Edge(a.ID, b.ID).Hot
	g.AdvanceClock(600) // past rebaseExp=512 → rebase fires
	d := g.Delta(1)
	if len(d.Edges) != 2 {
		t.Fatalf("rebase must dirty every edge, got %d", len(d.Edges))
	}
	got := g.Edge(a.ID, c.ID).Hot / g.Edge(a.ID, b.ID).Hot
	if math.Abs(got-ratio) > 1e-9*ratio {
		t.Fatalf("rebase changed relative weights: %v vs %v", got, ratio)
	}
}

// TestEdgesCaching: repeated Edges calls return the same slice until a
// new class pair interacts; counter updates alone do not invalidate.
func TestEdgesCaching(t *testing.T) {
	g := New()
	a, b, c := g.Intern("a"), g.Intern("b"), g.Intern("c")
	g.AddInvocation(a.ID, b.ID, 1)
	s1 := g.Edges()
	g.AddInvocation(a.ID, b.ID, 1) // existing edge: set unchanged
	s2 := g.Edges()
	if &s1[0] != &s2[0] || len(s2) != 1 {
		t.Fatal("cache must survive counter updates")
	}
	g.AddAccess(b.ID, c.ID, 1) // new edge: invalidate
	s3 := g.Edges()
	if len(s3) != 2 || s3[0].A != a.ID || s3[1].B != c.ID {
		t.Fatalf("rebuilt edges = %v", s3)
	}
	// EdgesFunc visits every edge exactly once.
	seen := 0
	g.EdgesFunc(func(*Edge) { seen++ })
	if seen != 2 {
		t.Fatalf("EdgesFunc visited %d", seen)
	}
}

// TestCloneStartsFreshLineage: a clone's first delta pull must carry the
// whole graph, and decay state must survive the copy.
func TestCloneStartsFreshLineage(t *testing.T) {
	g := New()
	g.SetDecay(50)
	a, b := g.Intern("a"), g.Intern("b")
	g.AddInvocation(a.ID, b.ID, 10)
	g.AdvanceClock(25)
	g.Delta(0) // drain the original

	c := g.Clone()
	d := c.Delta(0)
	if len(d.Nodes) != 2 || len(d.Edges) != 1 {
		t.Fatalf("clone first delta = nodes%d edges%d", len(d.Nodes), len(d.Edges))
	}
	if c.HalfLife() != 50 || c.Clock() != 25 {
		t.Fatalf("decay state lost: hl=%v clock=%v", c.HalfLife(), c.Clock())
	}
}
