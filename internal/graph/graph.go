// Package graph implements the weighted execution graph that AIDE builds
// from run-time monitoring information (paper §3.4).
//
// Each node represents a class and is annotated with the amount of memory
// occupied by the objects of that class, the attributed CPU time, and
// whether the class is pinned to the client (native methods, static data).
// Each edge represents the interactions between two classes and is annotated
// with the number of interactions (method invocations and data accesses)
// and the total amount of information transferred between objects of the
// classes.
package graph

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// NodeID identifies a class node within a Graph. IDs are dense, starting at
// zero, in insertion order; they index internal tables directly.
type NodeID int32

// Node carries the per-class annotations of the execution graph.
type Node struct {
	ID   NodeID
	Name string

	// Memory is the number of bytes currently occupied by live objects of
	// this class.
	Memory int64

	// PeakMemory is the largest value Memory has held.
	PeakMemory int64

	// LiveObjects is the current number of live objects of this class.
	LiveObjects int64

	// TotalObjects counts every object of this class ever created.
	TotalObjects int64

	// CPUTime is the execution time attributed to this class: time spent in
	// its methods minus time spent in nested calls to methods of other
	// classes (paper Figure 9).
	CPUTime time.Duration

	// Pinned marks classes that cannot be offloaded, such as classes with
	// native methods or host-specific static data (paper §3.2, §3.3).
	Pinned bool

	// Array marks primitive-array pseudo-classes, which the §5.2
	// "array granularity" enhancement may place at object granularity.
	Array bool

	// Stateless marks pinned classes whose native methods are all
	// stateless (math functions, string copies); under the §5.2 native
	// enhancement their invocations execute on the calling device.
	Stateless bool
}

// Edge carries the per-pair interaction annotations of the execution graph.
// Edges are undirected: interactions between classes a and b accumulate on a
// single edge regardless of direction.
type Edge struct {
	A, B NodeID // A < B

	// Invocations counts method invocations between objects of the two
	// classes.
	Invocations int64

	// Accesses counts data-field accesses between objects of the two
	// classes.
	Accesses int64

	// Bytes is the total amount of information transferred between objects
	// of the two classes, as represented by the parameters and return
	// values used in inter-class interactions.
	Bytes int64
}

// Interactions returns the combined interaction-event count for the edge.
func (e *Edge) Interactions() int64 { return e.Invocations + e.Accesses }

// EdgeKey canonically orders an unordered class pair.
type EdgeKey struct{ A, B NodeID }

func makeEdgeKey(a, b NodeID) EdgeKey {
	if a > b {
		a, b = b, a
	}
	return EdgeKey{A: a, B: b}
}

// Graph is the fully connected weighted execution graph of paper §3.4. The
// zero value is not usable; call New.
type Graph struct {
	nodes  []*Node
	byName map[string]NodeID
	edges  map[EdgeKey]*Edge
}

// New returns an empty execution graph.
func New() *Graph {
	return &Graph{
		byName: make(map[string]NodeID),
		edges:  make(map[EdgeKey]*Edge),
	}
}

// Len returns the number of class nodes.
func (g *Graph) Len() int { return len(g.nodes) }

// EdgeCount returns the number of distinct class-pair links with recorded
// interactions. The paper's Table 2 reports this as "interactions"
// (average/maximum links), distinct from interaction events.
func (g *Graph) EdgeCount() int { return len(g.edges) }

// Intern returns the node for the named class, creating it if needed.
func (g *Graph) Intern(name string) *Node {
	if id, ok := g.byName[name]; ok {
		return g.nodes[id]
	}
	id := NodeID(len(g.nodes))
	n := &Node{ID: id, Name: name}
	g.nodes = append(g.nodes, n)
	g.byName[name] = id
	return n
}

// Lookup returns the node for the named class and whether it exists.
func (g *Graph) Lookup(name string) (*Node, bool) {
	id, ok := g.byName[name]
	if !ok {
		return nil, false
	}
	return g.nodes[id], true
}

// Node returns the node with the given ID. It returns nil if the ID is out
// of range.
func (g *Graph) Node(id NodeID) *Node {
	if id < 0 || int(id) >= len(g.nodes) {
		return nil
	}
	return g.nodes[id]
}

// Nodes returns the nodes in ID order. The returned slice is shared; treat
// it as read-only.
func (g *Graph) Nodes() []*Node { return g.nodes }

// Edge returns the edge between a and b, or nil if no interaction has been
// recorded.
func (g *Graph) Edge(a, b NodeID) *Edge {
	return g.edges[makeEdgeKey(a, b)]
}

// Edges returns all edges in deterministic (A, B) order.
func (g *Graph) Edges() []*Edge {
	out := make([]*Edge, 0, len(g.edges))
	for _, e := range g.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	return out
}

func (g *Graph) edge(a, b NodeID) *Edge {
	k := makeEdgeKey(a, b)
	e, ok := g.edges[k]
	if !ok {
		e = &Edge{A: k.A, B: k.B}
		g.edges[k] = e
	}
	return e
}

// AddInvocation records a method invocation from class a to class b
// transferring the given number of parameter/return bytes. Intra-class
// interactions are not recorded (paper §5.1: "Information is recorded only
// for interactions between two different classes").
func (g *Graph) AddInvocation(a, b NodeID, bytes int64) {
	if a == b {
		return
	}
	e := g.edge(a, b)
	e.Invocations++
	e.Bytes += bytes
}

// AddAccess records a data-field access from class a to class b transferring
// the given number of bytes.
func (g *Graph) AddAccess(a, b NodeID, bytes int64) {
	if a == b {
		return
	}
	e := g.edge(a, b)
	e.Accesses++
	e.Bytes += bytes
}

// AddObject records the creation of an object of the class with the given
// size in bytes.
func (g *Graph) AddObject(id NodeID, size int64) {
	n := g.nodes[id]
	n.Memory += size
	n.LiveObjects++
	n.TotalObjects++
	if n.Memory > n.PeakMemory {
		n.PeakMemory = n.Memory
	}
}

// RemoveObject records the deletion (collection) of an object of the class
// with the given size in bytes.
func (g *Graph) RemoveObject(id NodeID, size int64) {
	n := g.nodes[id]
	n.Memory -= size
	n.LiveObjects--
}

// AddCPU attributes self execution time to the class (paper Figure 9).
func (g *Graph) AddCPU(id NodeID, d time.Duration) {
	g.nodes[id].CPUTime += d
}

// TotalMemory returns the memory occupied by live objects across all
// classes.
func (g *Graph) TotalMemory() int64 {
	var total int64
	for _, n := range g.nodes {
		total += n.Memory
	}
	return total
}

// TotalCPU returns the total attributed CPU time across all classes.
func (g *Graph) TotalCPU() time.Duration {
	var total time.Duration
	for _, n := range g.nodes {
		total += n.CPUTime
	}
	return total
}

// Clone returns a deep copy of the graph. Partitioning runs against a clone
// so that monitoring can continue concurrently.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		nodes:  make([]*Node, len(g.nodes)),
		byName: make(map[string]NodeID, len(g.byName)),
		edges:  make(map[EdgeKey]*Edge, len(g.edges)),
	}
	for i, n := range g.nodes {
		cp := *n
		c.nodes[i] = &cp
		c.byName[n.Name] = n.ID
	}
	for k, e := range g.edges {
		cp := *e
		c.edges[k] = &cp
	}
	return c
}

// WeightFunc maps an edge to the weight used by partitioning. The paper's
// cost function uses the historical amount of information transferred
// (bytes); alternatives weight by interaction count.
type WeightFunc func(*Edge) float64

// BytesWeight weights edges by total bytes transferred (the paper's §3.3
// cost function).
func BytesWeight(e *Edge) float64 { return float64(e.Bytes) }

// InteractionWeight weights edges by interaction-event count.
func InteractionWeight(e *Edge) float64 { return float64(e.Interactions()) }

// CutWeight returns the total weight of edges crossing the cut defined by
// inA: edges with exactly one endpoint x for which inA(x) is true.
func (g *Graph) CutWeight(inA func(NodeID) bool, w WeightFunc) float64 {
	var total float64
	for _, e := range g.edges {
		if inA(e.A) != inA(e.B) {
			total += w(e)
		}
	}
	return total
}

// CutBytes returns the historical bytes crossing the cut, used to predict
// the network bandwidth a partitioning would consume.
func (g *Graph) CutBytes(inA func(NodeID) bool) int64 {
	var total int64
	for _, e := range g.edges {
		if inA(e.A) != inA(e.B) {
			total += e.Bytes
		}
	}
	return total
}

// DOT renders the graph in Graphviz format, used to visualize Figure 5
// style execution graphs. Nodes in offloaded (may be nil) render as boxes;
// cut edges render dotted, matching the paper's Figure 5b convention.
func (g *Graph) DOT(offloaded map[NodeID]bool) string {
	var b strings.Builder
	b.WriteString("graph execution {\n")
	for _, n := range g.nodes {
		shape := "ellipse"
		if offloaded[n.ID] {
			shape = "box"
		}
		fmt.Fprintf(&b, "  n%d [label=%q shape=%s];\n", n.ID, fmt.Sprintf("%s\\n%dB", n.Name, n.Memory), shape)
	}
	for _, e := range g.Edges() {
		style := "solid"
		if offloaded[e.A] != offloaded[e.B] {
			style = "dotted"
		}
		fmt.Fprintf(&b, "  n%d -- n%d [label=\"%d/%dB\" style=%s];\n", e.A, e.B, e.Interactions(), e.Bytes, style)
	}
	b.WriteString("}\n")
	return b.String()
}
