// Package graph implements the weighted execution graph that AIDE builds
// from run-time monitoring information (paper §3.4).
//
// Each node represents a class and is annotated with the amount of memory
// occupied by the objects of that class, the attributed CPU time, and
// whether the class is pinned to the client (native methods, static data).
// Each edge represents the interactions between two classes and is annotated
// with the number of interactions (method invocations and data accesses)
// and the total amount of information transferred between objects of the
// classes.
package graph

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// NodeID identifies a class node within a Graph. IDs are dense, starting at
// zero, in insertion order; they index internal tables directly.
type NodeID int32

// Node carries the per-class annotations of the execution graph.
type Node struct {
	ID   NodeID
	Name string

	// Memory is the number of bytes currently occupied by live objects of
	// this class.
	Memory int64

	// PeakMemory is the largest value Memory has held.
	PeakMemory int64

	// LiveObjects is the current number of live objects of this class.
	LiveObjects int64

	// TotalObjects counts every object of this class ever created.
	TotalObjects int64

	// CPUTime is the execution time attributed to this class: time spent in
	// its methods minus time spent in nested calls to methods of other
	// classes (paper Figure 9).
	CPUTime time.Duration

	// Pinned marks classes that cannot be offloaded, such as classes with
	// native methods or host-specific static data (paper §3.2, §3.3).
	Pinned bool

	// Array marks primitive-array pseudo-classes, which the §5.2
	// "array granularity" enhancement may place at object granularity.
	Array bool

	// Stateless marks pinned classes whose native methods are all
	// stateless (math functions, string copies); under the §5.2 native
	// enhancement their invocations execute on the calling device.
	Stateless bool
}

// Edge carries the per-pair interaction annotations of the execution graph.
// Edges are undirected: interactions between classes a and b accumulate on a
// single edge regardless of direction.
type Edge struct {
	A, B NodeID // A < B

	// Invocations counts method invocations between objects of the two
	// classes.
	Invocations int64

	// Accesses counts data-field accesses between objects of the two
	// classes.
	Accesses int64

	// Bytes is the total amount of information transferred between objects
	// of the two classes, as represented by the parameters and return
	// values used in inter-class interactions.
	Bytes int64

	// Hot is the edge's streaming-decay interaction score: bytes
	// transferred, exponentially decayed on the graph's event-time clock
	// (SetDecay). The stored value is *scale-free* — it is the decayed
	// score divided by a global decay factor shared by every edge — so
	// relative comparisons (and therefore minimum cuts) are exact without
	// ever rewriting untouched edges. Use Graph.HotAt for an absolute
	// reading; use HotWeight as the partitioning weight. With decay
	// disabled Hot equals float64(Bytes).
	Hot float64
}

// Interactions returns the combined interaction-event count for the edge.
func (e *Edge) Interactions() int64 { return e.Invocations + e.Accesses }

// EdgeKey canonically orders an unordered class pair.
type EdgeKey struct{ A, B NodeID }

func makeEdgeKey(a, b NodeID) EdgeKey {
	if a > b {
		a, b = b, a
	}
	return EdgeKey{A: a, B: b}
}

// Graph is the fully connected weighted execution graph of paper §3.4. The
// zero value is not usable; call New.
type Graph struct {
	nodes  []*Node
	byName map[string]NodeID
	edges  map[EdgeKey]*Edge

	// sorted caches the deterministic (A, B)-ordered edge slice Edges
	// returns. Counter updates on existing edges keep the set intact, so
	// the cache is invalidated only when a new edge is created.
	sorted   []*Edge
	sortedOK bool

	// Dirty tracking for delta-driven repartitioning: every node or edge
	// touched since the last Delta call. epoch counts Delta consumptions.
	dirtyNodes map[NodeID]struct{}
	dirtyEdges map[EdgeKey]struct{}
	epoch      int64

	// Streaming decay state (SetDecay): halfLife in event-time units,
	// clock the current event time, base the event-time origin of the
	// scale-free Hot values. Contributions at event time t are stored as
	// w·2^((t−base)/halfLife); the absolute decayed score at time T is
	// Hot·2^((base−T)/halfLife). When the exponent drifts too far the
	// graph rebases, rescaling every edge (rare, amortized O(1)).
	halfLife float64
	clock    float64
	base     float64
}

// New returns an empty execution graph.
func New() *Graph {
	return &Graph{
		byName:     make(map[string]NodeID),
		edges:      make(map[EdgeKey]*Edge),
		dirtyNodes: make(map[NodeID]struct{}),
		dirtyEdges: make(map[EdgeKey]struct{}),
	}
}

// Len returns the number of class nodes.
func (g *Graph) Len() int { return len(g.nodes) }

// EdgeCount returns the number of distinct class-pair links with recorded
// interactions. The paper's Table 2 reports this as "interactions"
// (average/maximum links), distinct from interaction events.
func (g *Graph) EdgeCount() int { return len(g.edges) }

// Intern returns the node for the named class, creating it if needed.
func (g *Graph) Intern(name string) *Node {
	if id, ok := g.byName[name]; ok {
		return g.nodes[id]
	}
	id := NodeID(len(g.nodes))
	n := &Node{ID: id, Name: name}
	g.nodes = append(g.nodes, n)
	g.byName[name] = id
	g.dirtyNodes[id] = struct{}{}
	return n
}

// MarkNodeDirty records an out-of-band node mutation (metadata flags set
// directly on the *Node) so the next Delta carries it.
func (g *Graph) MarkNodeDirty(id NodeID) {
	if id >= 0 && int(id) < len(g.nodes) {
		g.dirtyNodes[id] = struct{}{}
	}
}

// Lookup returns the node for the named class and whether it exists.
func (g *Graph) Lookup(name string) (*Node, bool) {
	id, ok := g.byName[name]
	if !ok {
		return nil, false
	}
	return g.nodes[id], true
}

// Node returns the node with the given ID. It returns nil if the ID is out
// of range.
func (g *Graph) Node(id NodeID) *Node {
	if id < 0 || int(id) >= len(g.nodes) {
		return nil
	}
	return g.nodes[id]
}

// Nodes returns the nodes in ID order. The returned slice is shared; treat
// it as read-only.
func (g *Graph) Nodes() []*Node { return g.nodes }

// Edge returns the edge between a and b, or nil if no interaction has been
// recorded.
func (g *Graph) Edge(a, b NodeID) *Edge {
	return g.edges[makeEdgeKey(a, b)]
}

// Edges returns all edges in deterministic (A, B) order. The returned
// slice is cached and shared — treat it as read-only, like Nodes. The
// cache survives counter updates and is rebuilt only after a new class
// pair interacts for the first time.
func (g *Graph) Edges() []*Edge {
	if g.sortedOK && len(g.sorted) == len(g.edges) {
		return g.sorted
	}
	// Rebuild into a fresh slice: earlier callers may still hold the old
	// one, and rebuilding in place would scramble their view.
	out := make([]*Edge, 0, len(g.edges))
	for _, e := range g.edges {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	g.sorted = out
	g.sortedOK = true
	return out
}

// EdgesFunc calls yield for every edge in unspecified order, without
// allocating or sorting. Hot paths whose per-edge work commutes (matrix
// fills, counter sums) should prefer it over Edges.
func (g *Graph) EdgesFunc(yield func(*Edge)) {
	for _, e := range g.edges {
		yield(e)
	}
}

func (g *Graph) edge(a, b NodeID) *Edge {
	k := makeEdgeKey(a, b)
	e, ok := g.edges[k]
	if !ok {
		e = &Edge{A: k.A, B: k.B}
		g.edges[k] = e
		g.sortedOK = false
	}
	g.dirtyEdges[k] = struct{}{}
	return e
}

// AddInvocation records a method invocation from class a to class b
// transferring the given number of parameter/return bytes. Intra-class
// interactions are not recorded (paper §5.1: "Information is recorded only
// for interactions between two different classes").
func (g *Graph) AddInvocation(a, b NodeID, bytes int64) {
	g.AddEdgeDelta(a, b, 1, 0, bytes)
}

// AddAccess records a data-field access from class a to class b transferring
// the given number of bytes.
func (g *Graph) AddAccess(a, b NodeID, bytes int64) {
	g.AddEdgeDelta(a, b, 0, 1, bytes)
}

// AddEdgeDelta merges a batch of interactions between classes a and b in
// one step: inv invocations and acc accesses transferring bytes in total.
// The sharded monitor drains its per-shard counters through this entry
// point, paying the edge lookup, dirty marking, and decay arithmetic once
// per touched edge per flush instead of once per event.
func (g *Graph) AddEdgeDelta(a, b NodeID, inv, acc, bytes int64) {
	if a == b || (inv == 0 && acc == 0 && bytes == 0) {
		return
	}
	e := g.edge(a, b)
	e.Invocations += inv
	e.Accesses += acc
	e.Bytes += bytes
	e.Hot += float64(bytes) * g.scale()
}

// AddObject records the creation of an object of the class with the given
// size in bytes.
func (g *Graph) AddObject(id NodeID, size int64) {
	n := g.nodes[id]
	n.Memory += size
	n.LiveObjects++
	n.TotalObjects++
	if n.Memory > n.PeakMemory {
		n.PeakMemory = n.Memory
	}
	g.dirtyNodes[id] = struct{}{}
}

// RemoveObject records the deletion (collection) of an object of the class
// with the given size in bytes.
func (g *Graph) RemoveObject(id NodeID, size int64) {
	n := g.nodes[id]
	n.Memory -= size
	n.LiveObjects--
	g.dirtyNodes[id] = struct{}{}
}

// AddNodeDelta merges a window of object-lifecycle and CPU attribution
// for one class: mem/live/total are net deltas, peakRise is the maximum
// prefix sum of the window's memory deltas (so the true intra-window peak
// survives batching), cpu is attributed self time.
func (g *Graph) AddNodeDelta(id NodeID, mem, live, total, peakRise int64, cpu time.Duration) {
	n := g.nodes[id]
	if p := n.Memory + peakRise; p > n.PeakMemory {
		n.PeakMemory = p
	}
	n.Memory += mem
	n.LiveObjects += live
	n.TotalObjects += total
	n.CPUTime += cpu
	g.dirtyNodes[id] = struct{}{}
}

// AddCPU attributes self execution time to the class (paper Figure 9).
func (g *Graph) AddCPU(id NodeID, d time.Duration) {
	g.nodes[id].CPUTime += d
	g.dirtyNodes[id] = struct{}{}
}

// rebaseExp is the scale exponent (in half-lives) beyond which the graph
// rebases its Hot values. 2^512 is far inside float64 range (max ~2^1023),
// leaving headroom for per-edge accumulation on top of the scale.
const rebaseExp = 512

// SetDecay enables streaming exponential decay of edge Hot scores with
// the given half-life, measured in event-time units (AdvanceClock).
// Configure it before recording interactions; a half-life of 0 disables
// decay, making Hot track Bytes exactly. Decay is applied lazily and
// scale-free: recording and reading both stay O(1) per edge, and a
// repartition over HotWeight never needs untouched edges rewritten.
func (g *Graph) SetDecay(halfLife float64) {
	if halfLife < 0 || math.IsNaN(halfLife) || math.IsInf(halfLife, 0) {
		halfLife = 0
	}
	g.halfLife = halfLife
}

// HalfLife returns the configured decay half-life (0 = decay disabled).
func (g *Graph) HalfLife() float64 { return g.halfLife }

// AdvanceClock moves the graph's event-time clock forward to now.
// Event-time is any monotonic, caller-defined measure (the monitor uses
// its consumed-event count), which keeps decay deterministic under
// replay. Moving backwards is ignored.
func (g *Graph) AdvanceClock(now float64) {
	if now <= g.clock {
		return
	}
	g.clock = now
	if g.halfLife > 0 && (g.clock-g.base)/g.halfLife > rebaseExp {
		g.rebase()
	}
}

// Clock returns the current event-time reading.
func (g *Graph) Clock() float64 { return g.clock }

// scale is the factor a contribution recorded now carries so that the
// shared decay divisor keeps every edge comparable: 2^((now−base)/halfLife).
func (g *Graph) scale() float64 {
	if g.halfLife == 0 {
		return 1
	}
	return math.Exp2((g.clock - g.base) / g.halfLife)
}

// rebase rescales every Hot value so the shared exponent returns to zero
// at the current clock. All edges change, so all are marked dirty —
// delta-driven partitioners refresh them on their next pull. Scores older
// than ~512 half-lives underflow to zero, which is exactly "aged out".
func (g *Graph) rebase() {
	f := math.Exp2((g.base - g.clock) / g.halfLife)
	for k, e := range g.edges {
		e.Hot *= f
		g.dirtyEdges[k] = struct{}{}
	}
	g.base = g.clock
}

// HotAt returns the absolute decayed score of an edge at event-time now:
// the scale-free Hot value re-anchored to the shared decay origin. Use it
// for diagnostics and thresholds; partitioning can consume Hot directly
// because a shared factor never changes relative order.
func (g *Graph) HotAt(e *Edge, now float64) float64 {
	if g.halfLife == 0 {
		return e.Hot
	}
	return e.Hot * math.Exp2((g.base-now)/g.halfLife)
}

// TotalMemory returns the memory occupied by live objects across all
// classes.
func (g *Graph) TotalMemory() int64 {
	var total int64
	for _, n := range g.nodes {
		total += n.Memory
	}
	return total
}

// TotalCPU returns the total attributed CPU time across all classes.
func (g *Graph) TotalCPU() time.Duration {
	var total time.Duration
	for _, n := range g.nodes {
		total += n.CPUTime
	}
	return total
}

// Clone returns a deep copy of the graph. Partitioning runs against a clone
// so that monitoring can continue concurrently. The clone starts a fresh
// delta lineage: everything is dirty and its epoch is zero, so a first
// Delta pull sees the full content.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		nodes:      make([]*Node, len(g.nodes)),
		byName:     make(map[string]NodeID, len(g.byName)),
		edges:      make(map[EdgeKey]*Edge, len(g.edges)),
		dirtyNodes: make(map[NodeID]struct{}, len(g.nodes)),
		dirtyEdges: make(map[EdgeKey]struct{}, len(g.edges)),
		halfLife:   g.halfLife,
		clock:      g.clock,
		base:       g.base,
	}
	for i, n := range g.nodes {
		cp := *n
		c.nodes[i] = &cp
		c.byName[n.Name] = n.ID
		c.dirtyNodes[n.ID] = struct{}{}
	}
	for k, e := range g.edges {
		cp := *e
		c.edges[k] = &cp
		c.dirtyEdges[k] = struct{}{}
	}
	return c
}

// Delta is the changed part of a graph since an epoch: value copies of
// every touched node and edge, safe to hand to a partitioner while the
// graph keeps mutating. When Full is set the receiver's state was not
// continuable from the caller's epoch (first pull, competing consumer, or
// a decay rebase made everything dirty anyway) and Nodes/Edges carry the
// entire graph.
type Delta struct {
	// Epoch identifies this delta; pass it to the next Delta call to
	// continue the lineage.
	Epoch int64

	// Full reports that Nodes/Edges are complete, not incremental.
	Full bool

	// N is the total node count at the snapshot (vertex IDs are dense,
	// so this sizes the partitioner's matrix).
	N int

	// Nodes and Edges are value copies in deterministic order (Nodes by
	// ID, Edges by (A, B)).
	Nodes []Node
	Edges []Edge
}

// Epoch returns the number of Delta pulls consumed so far.
func (g *Graph) Epoch() int64 { return g.epoch }

// Delta returns everything that changed since the given epoch and opens a
// new one. A caller that passes the Epoch of the delta it last consumed
// receives only the touched nodes/edges — O(changed) — with Full=false; a
// caller that is out of lineage (wrong epoch) receives the whole graph
// with Full=true. Either way the dirty sets reset, so a single consumer
// drives the lineage; concurrent consumers should each work from Clone.
func (g *Graph) Delta(since int64) Delta {
	d := Delta{N: len(g.nodes)}
	if since != g.epoch {
		d.Full = true
		d.Nodes = make([]Node, len(g.nodes))
		for i, n := range g.nodes {
			d.Nodes[i] = *n
		}
		d.Edges = make([]Edge, 0, len(g.edges))
		for _, e := range g.edges {
			d.Edges = append(d.Edges, *e)
		}
	} else {
		d.Nodes = make([]Node, 0, len(g.dirtyNodes))
		for id := range g.dirtyNodes {
			d.Nodes = append(d.Nodes, *g.nodes[id])
		}
		sort.Slice(d.Nodes, func(i, j int) bool { return d.Nodes[i].ID < d.Nodes[j].ID })
		d.Edges = make([]Edge, 0, len(g.dirtyEdges))
		for k := range g.dirtyEdges {
			d.Edges = append(d.Edges, *g.edges[k])
		}
	}
	sort.Slice(d.Edges, func(i, j int) bool {
		if d.Edges[i].A != d.Edges[j].A {
			return d.Edges[i].A < d.Edges[j].A
		}
		return d.Edges[i].B < d.Edges[j].B
	})
	clear(g.dirtyNodes)
	clear(g.dirtyEdges)
	g.epoch++
	d.Epoch = g.epoch
	return d
}

// WeightFunc maps an edge to the weight used by partitioning. The paper's
// cost function uses the historical amount of information transferred
// (bytes); alternatives weight by interaction count.
type WeightFunc func(*Edge) float64

// BytesWeight weights edges by total bytes transferred (the paper's §3.3
// cost function).
func BytesWeight(e *Edge) float64 { return float64(e.Bytes) }

// InteractionWeight weights edges by interaction-event count.
func InteractionWeight(e *Edge) float64 { return float64(e.Interactions()) }

// HotWeight weights edges by the streaming-decay byte score, so stale
// interactions age out of partitioning decisions (SetDecay). The value is
// scale-free — every edge shares one decay factor — which keeps relative
// order, and therefore cuts, exact. With decay disabled it equals
// BytesWeight.
func HotWeight(e *Edge) float64 { return e.Hot }

// CutWeight returns the total weight of edges crossing the cut defined by
// inA: edges with exactly one endpoint x for which inA(x) is true.
func (g *Graph) CutWeight(inA func(NodeID) bool, w WeightFunc) float64 {
	var total float64
	for _, e := range g.edges {
		if inA(e.A) != inA(e.B) {
			total += w(e)
		}
	}
	return total
}

// CutBytes returns the historical bytes crossing the cut, used to predict
// the network bandwidth a partitioning would consume.
func (g *Graph) CutBytes(inA func(NodeID) bool) int64 {
	var total int64
	for _, e := range g.edges {
		if inA(e.A) != inA(e.B) {
			total += e.Bytes
		}
	}
	return total
}

// DOT renders the graph in Graphviz format, used to visualize Figure 5
// style execution graphs. Nodes in offloaded (may be nil) render as boxes;
// cut edges render dotted, matching the paper's Figure 5b convention.
func (g *Graph) DOT(offloaded map[NodeID]bool) string {
	var b strings.Builder
	b.WriteString("graph execution {\n")
	for _, n := range g.nodes {
		shape := "ellipse"
		if offloaded[n.ID] {
			shape = "box"
		}
		fmt.Fprintf(&b, "  n%d [label=%q shape=%s];\n", n.ID, fmt.Sprintf("%s\\n%dB", n.Name, n.Memory), shape)
	}
	for _, e := range g.Edges() {
		style := "solid"
		if offloaded[e.A] != offloaded[e.B] {
			style = "dotted"
		}
		fmt.Fprintf(&b, "  n%d -- n%d [label=\"%d/%dB\" style=%s];\n", e.A, e.B, e.Interactions(), e.Bytes, style)
	}
	b.WriteString("}\n")
	return b.String()
}
