package vm

import (
	"fmt"
	"testing"
	"time"
)

// loopPeer is an in-package Peer implementation that couples two VMs
// directly through their Serve* endpoints, with full wire translation
// (EncodeOutgoing/DecodeIncoming) on both hops. It lets the VM tests
// exercise the whole remote-execution surface — migration, transparent
// invocation, field and static redirection, native routing, distributed
// GC — without importing the remote module (which would be an import
// cycle for this package's tests of its own coverage).
type loopPeer struct {
	self  *VM // the VM this peer is attached to
	other *VM // the VM on the far end

	selfIdx  int // this peer's index in self's peer table
	otherIdx int // the reverse peer's index in other's peer table
}

// wireLoopPair attaches a loopPeer to each VM and cross-links them.
func wireLoopPair(client, surrogate *VM) (*loopPeer, *loopPeer) {
	cp := &loopPeer{self: client, other: surrogate}
	sp := &loopPeer{self: surrogate, other: client}
	cp.selfIdx = client.AttachPeer(cp)
	sp.selfIdx = surrogate.AttachPeer(sp)
	cp.otherIdx = sp.selfIdx
	sp.otherIdx = cp.selfIdx
	return cp, sp
}

// ship moves an argument list across the link: encode in the sender's
// namespace, decode in the receiver's.
func (p *loopPeer) ship(args []Value) ([]Value, error) {
	ws, err := p.self.EncodeOutgoingAll(p.selfIdx, args)
	if err != nil {
		return nil, err
	}
	return p.other.DecodeIncomingAll(p.otherIdx, ws)
}

// shipBack moves a result value from the far end back to this side.
func (p *loopPeer) shipBack(ret Value) (Value, error) {
	w, err := p.other.EncodeOutgoing(p.otherIdx, ret)
	if err != nil {
		return Nil(), err
	}
	return p.self.DecodeIncoming(p.selfIdx, w)
}

func (p *loopPeer) InvokeRemote(peerObj ObjectID, method string, args []Value) (Value, time.Duration, error) {
	rargs, err := p.ship(args)
	if err != nil {
		return Nil(), 0, err
	}
	ret, elapsed, err := p.other.ServeInvoke(peerObj, method, rargs)
	if err != nil {
		return Nil(), 0, err
	}
	out, err := p.shipBack(ret)
	if err != nil {
		return Nil(), 0, err
	}
	return out, elapsed, nil
}

func (p *loopPeer) GetFieldRemote(peerObj ObjectID, field string) (Value, error) {
	ret, err := p.other.ServeGetField(peerObj, field)
	if err != nil {
		return Nil(), err
	}
	return p.shipBack(ret)
}

func (p *loopPeer) SetFieldRemote(peerObj ObjectID, field string, v Value) error {
	vals, err := p.ship([]Value{v})
	if err != nil {
		return err
	}
	return p.other.ServeSetField(peerObj, field, vals[0])
}

func (p *loopPeer) GetStaticRemote(class, field string) (Value, error) {
	ret, err := p.other.ServeGetStatic(class, field)
	if err != nil {
		return Nil(), err
	}
	return p.shipBack(ret)
}

func (p *loopPeer) SetStaticRemote(class, field string, v Value) error {
	vals, err := p.ship([]Value{v})
	if err != nil {
		return err
	}
	return p.other.ServeSetStatic(class, field, vals[0])
}

func (p *loopPeer) InvokeNativeRemote(class, method string, peerSelf ObjectID, selfIsCallerLocal bool, args []Value) (Value, time.Duration, error) {
	if selfIsCallerLocal {
		// Mirror the remote module's contract: instance natives exist only
		// on pinned classes, whose objects never migrate.
		return Nil(), 0, fmt.Errorf("loop: native %s.%s invoked on migrated object %d", class, method, peerSelf)
	}
	rargs, err := p.ship(args)
	if err != nil {
		return Nil(), 0, err
	}
	ret, elapsed, err := p.other.ServeNative(class, method, peerSelf, rargs)
	if err != nil {
		return Nil(), 0, err
	}
	out, err := p.shipBack(ret)
	if err != nil {
		return Nil(), 0, err
	}
	return out, elapsed, nil
}

func (p *loopPeer) Release(peerObj ObjectID) {
	p.other.ReleaseExport(peerObj)
}

// migRegistry builds the classes the migration tests use: a linked Node
// with statics and helper methods, a stay-behind Keep class, and native
// methods (stateful and stateless) on Sys/Gadget.
func migRegistry(t testing.TB) *Registry {
	t.Helper()
	reg := NewRegistry()
	register := func(spec ClassSpec) {
		t.Helper()
		if _, err := reg.Register(spec); err != nil {
			t.Fatalf("register %s: %v", spec.Name, err)
		}
	}
	register(ClassSpec{
		Name:         "Node",
		Fields:       []string{"val", "next"},
		StaticFields: []string{"config"},
		Methods: []MethodSpec{
			{Name: "getVal", Body: func(th *Thread, self ObjectID, args []Value) (Value, error) {
				return th.GetField(self, "val")
			}},
			{Name: "setVal", Body: func(th *Thread, self ObjectID, args []Value) (Value, error) {
				return Nil(), th.SetField(self, "val", args[0])
			}},
			{Name: "sum", Body: func(th *Thread, self ObjectID, args []Value) (Value, error) {
				cur, err := th.GetField(self, "val")
				if err != nil {
					return Nil(), err
				}
				next, err := th.GetField(self, "next")
				if err != nil {
					return Nil(), err
				}
				if next.Kind == KindRef && next.Ref != InvalidObject {
					sub, err := th.Invoke(next.Ref, "sum")
					if err != nil {
						return Nil(), err
					}
					return Int(cur.I + sub.I), nil
				}
				return cur, nil
			}},
			{Name: "readCfg", Body: func(th *Thread, self ObjectID, args []Value) (Value, error) {
				return th.GetStatic("Node", "config")
			}},
			{Name: "writeCfg", Body: func(th *Thread, self ObjectID, args []Value) (Value, error) {
				return Nil(), th.SetStatic("Node", "config", args[0])
			}},
			{Name: "hostname", Body: func(th *Thread, self ObjectID, args []Value) (Value, error) {
				return th.InvokeStatic("Sys", "host")
			}},
			{Name: "abs", Body: func(th *Thread, self ObjectID, args []Value) (Value, error) {
				return th.InvokeStatic("Sys", "abs", args[0])
			}},
			{Name: "work", Body: func(th *Thread, self ObjectID, args []Value) (Value, error) {
				th.Work(time.Millisecond)
				return Nil(), nil
			}},
		},
	})
	register(ClassSpec{
		Name:   "Keep",
		Fields: []string{"val"},
		Methods: []MethodSpec{
			{Name: "sum", Body: func(th *Thread, self ObjectID, args []Value) (Value, error) {
				return th.GetField(self, "val")
			}},
		},
	})
	register(ClassSpec{
		Name: "Sys",
		Methods: []MethodSpec{
			{Name: "host", Native: true, Static: true, Body: func(th *Thread, self ObjectID, args []Value) (Value, error) {
				return Str("client"), nil
			}},
			{Name: "abs", Native: true, Stateless: true, Static: true, Body: func(th *Thread, self ObjectID, args []Value) (Value, error) {
				if args[0].I < 0 {
					return Int(-args[0].I), nil
				}
				return args[0], nil
			}},
		},
	})
	register(ClassSpec{
		Name:   "Gadget",
		Fields: []string{"state"},
		Methods: []MethodSpec{
			{Name: "poke", Native: true, Body: func(th *Thread, self ObjectID, args []Value) (Value, error) {
				return Str("poked"), nil
			}},
		},
	})
	return reg
}

// newLoopVMs builds a wired client/surrogate pair over migRegistry.
func newLoopVMs(t testing.TB) (client, surrogate *VM, cp, sp *loopPeer) {
	t.Helper()
	reg := migRegistry(t)
	client = New(reg, Config{Role: RoleClient, HeapCapacity: 1 << 20, CPUSpeed: 1})
	surrogate = New(reg, Config{Role: RoleSurrogate, HeapCapacity: 8 << 20, CPUSpeed: 1})
	cp, sp = wireLoopPair(client, surrogate)
	return client, surrogate, cp, sp
}

// offload migrates every live local object of the named classes from the
// client to the surrogate and returns sender IDs and assigned IDs.
func offload(t testing.TB, client, surrogate *VM, cp, sp *loopPeer, classes ...string) (ids, assigned []ObjectID) {
	t.Helper()
	batch, err := client.ExtractMigration(classes)
	if err != nil {
		t.Fatalf("extract: %v", err)
	}
	assigned, err = surrogate.AdoptMigration(sp.selfIdx, batch)
	if err != nil {
		t.Fatalf("adopt: %v", err)
	}
	ids = make([]ObjectID, len(batch))
	for i := range batch {
		ids[i] = batch[i].SenderID
	}
	if err := client.ConvertToStubs(cp.selfIdx, ids, assigned); err != nil {
		t.Fatalf("convert: %v", err)
	}
	return ids, assigned
}
