package vm

import (
	"fmt"
	"sort"
)

// Monitor-driven lazy state transfer: a migration normally ships every
// field of every object. The access graph (internal/monitor) knows which
// fields the application actually touches, so a lazy migration ships only
// the fields a FieldPredictor marks hot and withholds the rest as
// KindDeferred placeholders. The origin VM keeps the withheld values in a
// residual store; the receiver pulls them on first access — one
// MsgFieldFetch fetches *all* of an object's remaining fields (prefetch
// batching), so an object faults at most once per migration.

// FieldPredictor reports whether a migration should ship the field's
// value eagerly (hot) or withhold it for on-demand pull (cold).
type FieldPredictor func(class, field string) bool

// SetFieldPredictor installs (or clears, with nil) the predictor that
// ExtractMigrationLazy consults. With no predictor a lazy migration
// degenerates to a full-state migration.
func (v *VM) SetFieldPredictor(f FieldPredictor) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.fieldPredictor = f
}

// FieldHooks is an optional extension of Hooks: when the installed Hooks
// value also implements it, the VM reports every instance-field access
// with the concrete class, field name, and value size — the signal the
// monitor's field-heat table (and hence the predictor) is built from.
type FieldHooks interface {
	OnFieldAccess(class, field string, bytes int64)
}

// FieldFetcher is the optional Peer extension for lazy state pull: it
// fetches withheld fields of a lazily migrated object from the origin VM.
// A nil fields slice requests every remaining residual field. The int64
// result is the wire size of the fetched values.
type FieldFetcher interface {
	FetchFieldsRemote(peerObj ObjectID, fields []string) ([]string, []Value, int64, error)
}

// residual holds the withheld field values of one lazily migrated object
// on its origin VM. bytes is the heap accounting the residual retains
// (capped at the object's size, so lazy accounting never goes negative).
type residual struct {
	fields map[string]Value
	bytes  int64
}

// LazyPlan describes what one ExtractMigrationLazy withheld; it carries
// the residuals from extraction to ConvertToStubsLazy, which installs
// them once the receiver has acknowledged the batch.
type LazyPlan struct {
	deferred map[ObjectID]*residual

	// SavedBytes is the migration wire volume the plan avoided shipping.
	SavedBytes int64

	// DeferredFields counts the withheld field slots.
	DeferredFields int64
}

// ExtractMigrationLazy is ExtractMigration with predictor-driven field
// deferral: fields the installed FieldPredictor calls cold are replaced
// by KindDeferred placeholders and recorded in the returned plan.
// References are never deferred (the receiver needs them for reachability
// and re-linking), and without a predictor nothing is deferred.
func (v *VM) ExtractMigrationLazy(classNames []string) ([]MigratedObject, *LazyPlan, error) {
	return v.extractMigration(classNames, true)
}

// lazyDeferrable reports whether a field value is eligible for deferral:
// scalars and blobs only — references must travel, KindNil saves nothing,
// and an already-deferred slot has no value here to withhold.
func lazyDeferrable(val Value) bool {
	switch val.Kind {
	case KindNil, KindRef, KindDeferred:
		return false
	default:
		return true
	}
}

// ConvertToStubsLazy completes a lazy migration on the sender: like
// ConvertToStubs, but the plan's residuals are installed in the VM's
// residual store, keyed by the local stub ID, and their bytes stay in the
// live-heap accounting until fetched, dropped, or reclaimed.
func (v *VM) ConvertToStubsLazy(peerIdx int, ids, peerIDs []ObjectID, plan *LazyPlan) error {
	if len(ids) != len(peerIDs) {
		return fmt.Errorf("vm: convert to stubs: %d ids but %d peer ids", len(ids), len(peerIDs))
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	for i, id := range ids {
		o, ok := v.objects[id]
		if !ok {
			return fmt.Errorf("vm: convert #%d: %w", id, ErrNoSuchObject)
		}
		if o.Remote {
			return fmt.Errorf("vm: convert #%d: already a stub", id)
		}
		keep := int64(0)
		if plan != nil {
			if res, ok := plan.deferred[id]; ok {
				if v.residuals == nil {
					v.residuals = make(map[ObjectID]*residual)
				}
				v.residuals[id] = res
				keep = res.bytes
			}
		}
		v.liveBytes -= o.Size - keep
		o.RemoteSize = o.Size
		o.Size = 0
		o.Fields = nil
		o.Remote = true
		o.PeerIdx = peerIdx
		o.PeerID = peerIDs[i]
		o.exported = 0
		v.imports[importKey{peer: peerIdx, id: peerIDs[i]}] = id
	}
	return nil
}

// ServeFetchFields serves a peer's lazy-field pull against the residual
// store. An empty names slice fetches every remaining field (served in
// sorted order for determinism). Served fields leave the residual; a
// fully drained residual is dropped and its heap accounting released.
// The int64 result is the wire size of the served values.
func (v *VM) ServeFetchFields(id ObjectID, names []string) ([]string, []Value, int64, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	res, ok := v.residuals[id]
	if !ok {
		return nil, nil, 0, fmt.Errorf("vm: fetch fields #%d: no residual state", id)
	}
	want := names
	if len(want) == 0 {
		want = make([]string, 0, len(res.fields))
		for name := range res.fields {
			want = append(want, name)
		}
		sort.Strings(want)
	}
	outNames := make([]string, 0, len(want))
	outVals := make([]Value, 0, len(want))
	var served int64
	for _, name := range want {
		val, ok := res.fields[name]
		if !ok {
			continue
		}
		outNames = append(outNames, name)
		outVals = append(outVals, val)
		served += val.WireSize()
		delete(res.fields, name)
	}
	switch {
	case len(res.fields) == 0:
		v.liveBytes -= res.bytes
		delete(v.residuals, id)
	case served < res.bytes:
		v.liveBytes -= served
		res.bytes -= served
	default:
		// res.bytes was capped at the object size; a partial drain can
		// still exhaust it.
		v.liveBytes -= res.bytes
		res.bytes = 0
	}
	return outNames, outVals, served, nil
}

// fetchDeferred resolves every KindDeferred field of a lazily migrated
// object by pulling the withheld values from the origin peer — called
// without v.mu held, from the GetField fault path. It always makes
// progress: after it returns, no field of the object is KindDeferred
// (fields the origin can no longer serve restart zeroed, the same
// semantics ReclaimStubs gives a lost peer's objects).
func (v *VM) fetchDeferred(id ObjectID) {
	v.mu.Lock()
	o, ok := v.objects[id]
	if !ok || o.Remote {
		v.mu.Unlock()
		return
	}
	peer := v.peerAt(o.lazyFrom)
	src := o.lazySrc
	v.mu.Unlock()

	var names []string
	var vals []Value
	if ff, ok := peer.(FieldFetcher); ok {
		var err error
		names, vals, _, err = ff.FetchFieldsRemote(src, nil)
		if err != nil {
			names, vals = nil, nil
		}
	}
	byName := make(map[string]Value, len(names))
	for i, name := range names {
		if i < len(vals) {
			byName[name] = vals[i]
		}
	}

	v.mu.Lock()
	defer v.mu.Unlock()
	o, ok = v.objects[id]
	if !ok || o.Remote {
		return
	}
	var fetched int64
	for i, name := range o.Class.Fields {
		if i >= len(o.Fields) || o.Fields[i].Kind != KindDeferred {
			continue
		}
		if val, ok := byName[name]; ok {
			o.Fields[i] = val
			fetched++
		} else {
			o.Fields[i] = Nil()
		}
	}
	v.tm.lazyFaults.Inc()
	v.tm.lazyFetched.Add(fetched)
}

// dropResidualLocked discards the residual state kept for a lazily
// migrated object, releasing its heap accounting — called when the stub
// dies (the receiver can never fault the fields back) or when the object
// returns home and the residual is folded back in.
func (v *VM) dropResidualLocked(id ObjectID) {
	if res, ok := v.residuals[id]; ok {
		v.liveBytes -= res.bytes
		delete(v.residuals, id)
	}
}

// ResidualCount reports how many objects currently have residual state
// (diagnostics and tests).
func (v *VM) ResidualCount() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return len(v.residuals)
}
