package vm

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Promise pipelining (paper §3.2's interaction-latency concern): a chain
// of N dependent remote invocations normally costs N round trips, because
// each call needs the previous result as its receiver or argument. A
// Pipeline ships the whole chain as one MsgInvokeBatch frame; the serving
// VM resolves the intra-frame references in order, so the chain costs one
// round trip. The wire structs below (PipelineCall, PromiseArg) live here
// next to the VM's other wire types; their binary codec lives with the
// message codec in internal/remote (the per-call receiver discriminator
// is a remote message kind).

// PipelineCall is one call of a pipelined multi-invoke frame.
type PipelineCall struct {
	// Recv selects the receiver: an index of an earlier call in the same
	// frame whose result is the receiver (promise form), or negative for
	// a concrete receiver named by Obj.
	Recv int32

	// Obj is the receiver in the serving VM's namespace (Recv < 0).
	Obj ObjectID

	Method string

	// Args are the call arguments; positions named by ArgPromises carry a
	// KindNil placeholder on the wire.
	Args []WireValue

	// ArgPromises substitutes results of earlier calls into Args.
	ArgPromises []PromiseArg
}

// PromiseArg names one argument position filled from an earlier call's
// result.
type PromiseArg struct {
	Pos  int32 // index into Args
	Call int32 // index of the earlier call in the same frame
}

// PipelineOutcome is the result of one pipelined frame.
type PipelineOutcome struct {
	// Rets holds the results of the calls that executed, in order. On a
	// frame error it covers the successful prefix only.
	Rets []WireValue

	// ErrIndex is the index of the failing call, or -1 when the whole
	// frame succeeded.
	ErrIndex int

	// ErrMsg describes the failing call's error (ErrIndex >= 0).
	ErrMsg string

	// Elapsed is the simulated execution time the serving VM spent on the
	// frame, charged to the requester like a single invocation's.
	Elapsed time.Duration
}

// PipelinePeer is the optional Peer extension for pipelined invocation.
// A peer that does not implement it (or whose remote end predates the
// frame kind) makes the pipeline fall back to sequential calls.
type PipelinePeer interface {
	InvokePipeline(ctx context.Context, calls []PipelineCall) (PipelineOutcome, error)
}

// ErrPipelineUnsupported reports that the remote end does not understand
// MsgInvokeBatch frames; the pipeline falls back to sequential calls.
var ErrPipelineUnsupported = errors.New("vm: peer does not support pipelined invocation")

// PipelineError is the error every promise at or after the failing call
// observes when a pipelined frame fails part-way: the first error
// propagates to all dependent promises, exactly once — the failing call
// and its dependents are not re-executed.
type PipelineError struct {
	// Index is the pipeline position of the call that failed.
	Index int
	Err   error
}

// Error implements error.
func (e *PipelineError) Error() string {
	return fmt.Sprintf("vm: pipeline call %d: %v", e.Index, e.Err)
}

// Unwrap exposes the failing call's error for errors.Is/As.
func (e *PipelineError) Unwrap() error { return e.Err }

// Promise is the not-yet-resolved result of a pipelined call. It may be
// the receiver or an argument of a later call in the same pipeline, and
// resolves when Run returns.
type Promise struct {
	p   *Pipeline
	idx int
}

// Value returns the promise's resolved result. Before Run it fails; after
// a failed frame every promise at or after the failing call returns the
// same *PipelineError.
func (pr *Promise) Value() (Value, error) {
	p := pr.p
	if !p.ran {
		return Nil(), errors.New("vm: pipeline has not run")
	}
	if p.buildErr != nil {
		return Nil(), p.buildErr
	}
	if err := p.errs[pr.idx]; err != nil {
		return Nil(), err
	}
	return p.results[pr.idx], nil
}

// pipeStep is one recorded call of a pipeline under construction.
type pipeStep struct {
	recv     ObjectID
	recvProm int // earlier-call index, or -1 for the concrete receiver
	method   string
	args     []Value
	argProms map[int]int // argument position -> earlier-call index
}

// Pipeline builds a chain of dependent invocations and runs it in one
// round trip when every receiver lives on the same pipelined peer:
//
//	p := v.NewPipeline()
//	a := p.Invoke(obj, "f")
//	b := p.Invoke(a, "g", a)
//	res, err := p.Run(ctx)
//
// When the chain cannot be batched — mixed placement, a local receiver,
// an old peer without MsgInvokeBatch support, or a peer lost mid-frame
// with failover re-homing its objects — Run degrades to plain sequential
// Thread.Invoke calls, preserving the exact pre-pipeline semantics.
// A Pipeline is single-use and not safe for concurrent use.
type Pipeline struct {
	vm       *VM
	steps    []pipeStep
	buildErr error
	ran      bool
	results  []Value
	errs     []error

	// promChunk and argChunk are block allocators for the build phase:
	// deep chains would otherwise allocate one Promise and one argument
	// slice per Invoke. Carved subslices are full-capacity and never
	// overlap, so handed-out promises and argument slices stay stable.
	promChunk []Promise
	argChunk  []Value
}

// NewPipeline returns an empty pipeline bound to the VM.
func (v *VM) NewPipeline() *Pipeline { return &Pipeline{vm: v} }

func (p *Pipeline) setBuildErr(err error) {
	if p.buildErr == nil {
		p.buildErr = err
	}
}

func (p *Pipeline) newPromise() *Promise {
	if len(p.promChunk) == 0 {
		p.promChunk = make([]Promise, 16)
	}
	pr := &p.promChunk[0]
	p.promChunk = p.promChunk[1:]
	pr.p, pr.idx = p, len(p.steps)
	return pr
}

func (p *Pipeline) allocArgs(n int) []Value {
	if n == 0 {
		return nil
	}
	if n > len(p.argChunk) {
		size := n
		if size < 32 {
			size = 32
		}
		p.argChunk = make([]Value, size)
	}
	out := p.argChunk[:n:n]
	p.argChunk = p.argChunk[n:]
	return out
}

// Invoke appends a call to the pipeline and returns its promise. The
// receiver is an ObjectID, a KindRef Value, or a *Promise from an earlier
// Invoke on this pipeline; each argument is a Value, an ObjectID (boxed
// as a reference), or a *Promise. A malformed receiver or argument poisons
// the pipeline: Run reports the first such error without executing
// anything.
func (p *Pipeline) Invoke(recv any, method string, args ...any) *Promise {
	pr := p.newPromise()
	step := pipeStep{recvProm: -1, method: method}
	if method == "" {
		p.setBuildErr(fmt.Errorf("vm: pipeline call %d: empty method name", pr.idx))
	}
	switch r := recv.(type) {
	case ObjectID:
		step.recv = r
	case *Promise:
		if r == nil || r.p != p {
			p.setBuildErr(fmt.Errorf("vm: pipeline call %d: receiver promise from another pipeline", pr.idx))
		} else {
			step.recvProm = r.idx
		}
	case Value:
		if r.Kind != KindRef {
			p.setBuildErr(fmt.Errorf("vm: pipeline call %d: receiver value is %s, not a reference", pr.idx, r))
		} else {
			step.recv = r.Ref
		}
	default:
		p.setBuildErr(fmt.Errorf("vm: pipeline call %d: receiver must be an ObjectID, reference Value, or *Promise", pr.idx))
	}
	step.args = p.allocArgs(len(args))
	for i, a := range args {
		switch v := a.(type) {
		case Value:
			step.args[i] = v
		case ObjectID:
			step.args[i] = RefOf(v)
		case *Promise:
			if v == nil || v.p != p {
				p.setBuildErr(fmt.Errorf("vm: pipeline call %d: argument %d promise from another pipeline", pr.idx, i))
				continue
			}
			if step.argProms == nil {
				step.argProms = make(map[int]int)
			}
			step.argProms[i] = v.idx
			step.args[i] = Nil() // wire placeholder
		default:
			p.setBuildErr(fmt.Errorf("vm: pipeline call %d: argument %d must be a Value, ObjectID, or *Promise", pr.idx, i))
		}
	}
	p.steps = append(p.steps, step)
	return pr
}

// Len returns the number of calls recorded so far.
func (p *Pipeline) Len() int { return len(p.steps) }

// Run executes the pipeline and returns the per-call results in order.
// On a mid-frame failure it returns the successful prefix plus a
// *PipelineError identifying the failing call; every promise at or after
// that call yields the same error. A pipeline runs at most once.
func (p *Pipeline) Run(ctx context.Context) ([]Value, error) {
	if p.ran {
		return nil, errors.New("vm: pipeline already run")
	}
	p.ran = true
	if p.buildErr != nil {
		return nil, p.buildErr
	}
	if len(p.steps) == 0 {
		return nil, nil
	}
	p.results = make([]Value, len(p.steps))
	p.errs = make([]error, len(p.steps))

	if peerIdx, pp, callees, ok := p.batchTarget(); ok {
		done, res, err := p.runBatched(ctx, peerIdx, pp, callees)
		if done {
			return res, err
		}
		// Old peer or failed-over peer: degrade to sequential calls.
	}
	return p.runSequential(ctx)
}

// batchTarget decides whether the pipeline can ship as one frame: every
// concrete receiver must be a stub hosted by the same peer, and that peer
// must support pipelined invocation. It also captures each concrete
// receiver's class for monitoring.
func (p *Pipeline) batchTarget() (int, PipelinePeer, []string, bool) {
	v := p.vm
	v.mu.Lock()
	defer v.mu.Unlock()
	peerIdx := -1
	callees := make([]string, len(p.steps))
	for i := range p.steps {
		step := &p.steps[i]
		if step.recvProm >= 0 {
			continue
		}
		o, ok := v.objects[step.recv]
		if !ok || !o.Remote {
			return 0, nil, nil, false
		}
		if peerIdx < 0 {
			peerIdx = o.PeerIdx
		} else if o.PeerIdx != peerIdx {
			return 0, nil, nil, false
		}
		callees[i] = o.Class.Name
	}
	if peerIdx < 0 {
		return 0, nil, nil, false
	}
	pp, ok := v.peerAt(peerIdx).(PipelinePeer)
	if !ok {
		return 0, nil, nil, false
	}
	return peerIdx, pp, callees, true
}

// runBatched ships the pipeline as one MsgInvokeBatch frame. done=false
// means the frame could not be used (old peer, or the peer vanished and
// failover re-homed its objects) and the caller should run sequentially.
func (p *Pipeline) runBatched(ctx context.Context, peerIdx int, pp PipelinePeer, callees []string) (done bool, res []Value, err error) {
	v := p.vm
	calls := make([]PipelineCall, len(p.steps))
	// exports remembers, per call, the local objects pinned by encoding
	// its arguments, so pins for calls the serving VM never decoded can
	// be dropped again on failure or fallback. Allocated lazily: most
	// frames carry no reference arguments.
	var exports [][]ObjectID
	// One argument arena for the whole frame; each call's Args is a
	// full-capacity subslice, so the frame costs one allocation instead
	// of one per call.
	total := 0
	for i := range p.steps {
		total += len(p.steps[i].args)
	}
	arena := make([]WireValue, total)
	for i, off := 0, 0; i < len(p.steps); i++ {
		step := &p.steps[i]
		c := &calls[i]
		c.Recv, c.Method = int32(step.recvProm), step.method
		if step.recvProm < 0 {
			c.Recv = -1
			v.mu.Lock()
			o, ok := v.objects[step.recv]
			if !ok || !o.Remote || o.PeerIdx != peerIdx {
				v.mu.Unlock()
				p.releaseExports(exports, 0)
				return false, nil, nil
			}
			c.Obj = o.PeerID
			v.mu.Unlock()
		}
		n := len(step.args)
		c.Args = arena[off : off+n : off+n]
		off += n
		for ai := range step.args {
			if ci, ok := step.argProms[ai]; ok {
				c.ArgPromises = append(c.ArgPromises, PromiseArg{Pos: int32(ai), Call: int32(ci)})
				continue
			}
			av := &step.args[ai]
			if eerr := v.EncodeOutgoingInto(peerIdx, av, &c.Args[ai]); eerr != nil {
				p.releaseExports(exports, 0)
				return true, nil, p.failAll(fmt.Errorf("vm: pipeline call %d: %w", i, eerr))
			}
			if c.Args[ai].Kind == KindRef && !c.Args[ai].Ref.ReceiverLocal {
				if exports == nil {
					exports = make([][]ObjectID, len(p.steps))
				}
				exports[i] = append(exports[i], av.Ref)
			}
		}
	}

	out, callErr := pp.InvokePipeline(ctx, calls)
	if callErr != nil {
		if errors.Is(callErr, ErrPipelineUnsupported) {
			// The frame never executed; drop the argument pins and run the
			// same calls sequentially over the wire.
			p.releaseExports(exports, 0)
			return false, nil, nil
		}
		if v.failoverIfGone(peerIdx, callErr) {
			// The peer vanished mid-frame and its objects were re-homed
			// locally; re-execute sequentially on the reclaimed copies.
			// (Failover already dropped a sole peer's pins wholesale.)
			return false, nil, nil
		}
		return true, nil, p.failAll(callErr)
	}

	limit := len(p.steps)
	if out.ErrIndex >= 0 && out.ErrIndex < limit {
		limit = out.ErrIndex
	}
	if len(out.Rets) < limit {
		// The serving VM answered with fewer results than executed calls:
		// a protocol violation, never expected.
		return true, nil, p.failAll(fmt.Errorf("vm: pipeline: peer returned %d results for %d calls", len(out.Rets), limit))
	}
	if derr := v.DecodeIncomingSlice(peerIdx, out.Rets[:limit], p.results[:limit]); derr != nil {
		return true, nil, p.failAll(fmt.Errorf("vm: pipeline result: %w", derr))
	}

	v.mu.Lock()
	v.clock += out.Elapsed
	hooks := v.hooks
	caller := v.currentClassLocked()
	for i := 0; i < limit; i++ {
		v.tm.invokeRemote.Inc()
		if p.results[i].Kind == KindRef {
			v.addTempLocked(p.results[i].Ref)
		}
		// Promise-receiver calls have no client-side class to attribute
		// the invocation to; monitoring sees concrete-receiver calls only.
		if hooks != nil && callees[i] != "" {
			hooks.OnInvoke(caller, callees[i], p.steps[i].method, p.steps[i].recv,
				WireSizeAll(p.steps[i].args), p.results[i].WireSize(), 0, false, false)
			v.chargeMonitorLocked()
		}
	}
	v.mu.Unlock()

	if out.ErrIndex >= 0 {
		// First error propagates to the failing call and everything after
		// it, exactly once; calls past the failure were never decoded by
		// the peer, so their argument pins are dropped again.
		ferr := &PipelineError{Index: out.ErrIndex, Err: errors.New(out.ErrMsg)}
		for i := out.ErrIndex; i < len(p.steps); i++ {
			p.errs[i] = ferr
		}
		p.releaseExports(exports, out.ErrIndex+1)
		return true, p.results, ferr
	}
	return true, p.results, nil
}

// failAll poisons every promise with the same *PipelineError — the path
// for whole-frame failures with no attributable call (transport death
// without failover, codec failure, protocol violation): nothing in the
// frame is known to have produced a usable result, so every promise
// reports the failure, starting at call 0.
func (p *Pipeline) failAll(err error) error {
	ferr := &PipelineError{Index: 0, Err: err}
	for i := range p.errs {
		p.errs[i] = ferr
	}
	return ferr
}

// releaseExports drops the argument export pins recorded for calls with
// index >= from (calls the serving VM never decoded).
func (p *Pipeline) releaseExports(exports [][]ObjectID, from int) {
	for i := from; i < len(exports); i++ {
		for _, id := range exports[i] {
			p.vm.ReleaseExport(id)
		}
	}
}

// runSequential executes the pipeline as plain in-order invocations —
// the fallback for unbatchable chains, old peers, and disconnect
// failover. Each call is an ordinary Thread.Invoke: observably
// sequential, one wire message per remote call, monitored like any other
// invocation.
func (p *Pipeline) runSequential(ctx context.Context) ([]Value, error) {
	t := p.vm.NewThread()
	for i := range p.steps {
		step := &p.steps[i]
		var err error
		recv := step.recv
		if step.recvProm >= 0 {
			rv := p.results[step.recvProm]
			if rv.Kind != KindRef || rv.Ref == InvalidObject {
				err = fmt.Errorf("vm: pipeline call %d: promise %d resolved to %s, not an object reference", i, step.recvProm, rv)
			} else {
				recv = rv.Ref
			}
		}
		if err == nil {
			err = ctx.Err()
		}
		var ret Value
		if err == nil {
			args := make([]Value, len(step.args))
			copy(args, step.args)
			for pos, ci := range step.argProms {
				args[pos] = p.results[ci]
			}
			ret, err = t.Invoke(recv, step.method, args...)
		}
		if err != nil {
			ferr := &PipelineError{Index: i, Err: err}
			for j := i; j < len(p.steps); j++ {
				p.errs[j] = ferr
			}
			return p.results, ferr
		}
		p.results[i] = ret
	}
	return p.results, nil
}
