package vm

import (
	"fmt"
	"sort"
)

// Body is a method implementation: the stand-in for Java bytecode. Bodies
// run with a Thread context that provides allocation, invocation, field and
// static access, and simulated work.
type Body func(t *Thread, self ObjectID, args []Value) (Value, error)

// Method describes one method of a class.
type Method struct {
	Name string

	// Native marks methods implemented with native code. Native methods
	// cannot be migrated and are directed back to the client (paper §3.2),
	// unless Stateless and the §5.2 enhancement is enabled.
	Native bool

	// Stateless marks native methods that are stateless and/or idempotent
	// operations such as string copy or mathematical functions, which may
	// execute on the device on which they are invoked (paper §5.1, §5.2).
	Stateless bool

	// Static marks class (non-instance) methods. Static methods written in
	// Java may execute locally on either VM (paper §4).
	Static bool

	Body Body
}

// Class describes one application class: the unit of monitoring and
// placement (paper §3.1).
type Class struct {
	Name string

	// Fields names the instance fields, in slot order.
	Fields []string

	// StaticFields names the class's static data slots. Static data lives
	// on the client VM and all access is directed there (paper §3.2).
	StaticFields []string

	// Array marks primitive-array pseudo-classes (eligible for the §5.2
	// object-granularity enhancement).
	Array bool

	methods map[string]*Method
	fieldIx map[string]int
	statIx  map[string]int
}

// HasNative reports whether any method of the class is native, which pins
// the class to the client partition (paper §3.3).
func (c *Class) HasNative() bool {
	for _, m := range c.methods {
		if m.Native {
			return true
		}
	}
	return false
}

// Pinned reports whether the class must stay on the client: it has native
// methods. (Static data is handled by redirecting access rather than by
// pinning the whole class; static Java methods may run on either VM.)
func (c *Class) Pinned() bool { return c.HasNative() }

// NativeStateless reports whether the class has native methods and all of
// them are stateless/idempotent: annotating such classes lets the §5.2
// enhancement execute them on the device where they are invoked.
func (c *Class) NativeStateless() bool {
	any := false
	for _, m := range c.methods {
		if m.Native {
			any = true
			if !m.Stateless {
				return false
			}
		}
	}
	return any
}

// Method returns the named method, or nil.
func (c *Class) Method(name string) *Method { return c.methods[name] }

// Methods returns the method names in sorted order.
func (c *Class) Methods() []string {
	out := make([]string, 0, len(c.methods))
	for name := range c.methods {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// FieldIndex returns the slot of the named instance field.
func (c *Class) FieldIndex(name string) (int, bool) {
	ix, ok := c.fieldIx[name]
	return ix, ok
}

// StaticIndex returns the slot of the named static field.
func (c *Class) StaticIndex(name string) (int, bool) {
	ix, ok := c.statIx[name]
	return ix, ok
}

// Registry holds the class definitions ("bytecodes") shared by the client
// and surrogate VMs. To simplify the platform, both VMs are assumed to have
// access to the application's bytecodes (paper §4).
type Registry struct {
	classes map[string]*Class
	order   []string
}

// NewRegistry returns an empty class registry.
func NewRegistry() *Registry {
	return &Registry{classes: make(map[string]*Class)}
}

// ClassSpec declares a class for registration.
type ClassSpec struct {
	Name         string
	Fields       []string
	StaticFields []string
	Array        bool
	Methods      []MethodSpec
}

// MethodSpec declares a method for registration.
type MethodSpec struct {
	Name      string
	Native    bool
	Stateless bool
	Static    bool
	Body      Body
}

// Register adds a class definition. It returns an error if the name is
// taken or the spec is malformed.
func (r *Registry) Register(spec ClassSpec) (*Class, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("vm: class name must not be empty")
	}
	if _, ok := r.classes[spec.Name]; ok {
		return nil, fmt.Errorf("vm: class %q already registered", spec.Name)
	}
	c := &Class{
		Name:         spec.Name,
		Fields:       append([]string(nil), spec.Fields...),
		StaticFields: append([]string(nil), spec.StaticFields...),
		Array:        spec.Array,
		methods:      make(map[string]*Method, len(spec.Methods)),
		fieldIx:      make(map[string]int, len(spec.Fields)),
		statIx:       make(map[string]int, len(spec.StaticFields)),
	}
	for i, f := range c.Fields {
		if _, dup := c.fieldIx[f]; dup {
			return nil, fmt.Errorf("vm: class %q duplicate field %q", spec.Name, f)
		}
		c.fieldIx[f] = i
	}
	for i, f := range c.StaticFields {
		if _, dup := c.statIx[f]; dup {
			return nil, fmt.Errorf("vm: class %q duplicate static %q", spec.Name, f)
		}
		c.statIx[f] = i
	}
	for _, m := range spec.Methods {
		if m.Name == "" {
			return nil, fmt.Errorf("vm: class %q has unnamed method", spec.Name)
		}
		if _, dup := c.methods[m.Name]; dup {
			return nil, fmt.Errorf("vm: class %q duplicate method %q", spec.Name, m.Name)
		}
		if m.Body == nil {
			return nil, fmt.Errorf("vm: class %q method %q has no body", spec.Name, m.Name)
		}
		mm := m
		c.methods[m.Name] = &Method{
			Name: mm.Name, Native: mm.Native, Stateless: mm.Stateless,
			Static: mm.Static, Body: mm.Body,
		}
	}
	r.classes[spec.Name] = c
	r.order = append(r.order, spec.Name)
	return c, nil
}

// Class returns the named class, or nil.
func (r *Registry) Class(name string) *Class { return r.classes[name] }

// Names returns registered class names in registration order.
func (r *Registry) Names() []string { return append([]string(nil), r.order...) }
