package vm

import (
	"aide/internal/telemetry"
)

// Metric names (lowercase_snake constants; telemetrycheck enforces the
// shape at registration sites). Client and surrogate VMs in the same
// process register children under the same names; exposition sums them.
const (
	metricInvokeLocal    = "aide_vm_invocations_local_total"
	metricInvokeRemote   = "aide_vm_invocations_remote_total"
	metricObjectsCreated = "aide_vm_objects_created_total"
	metricAllocBytes     = "aide_vm_allocated_bytes_total"
	metricGCCycles       = "aide_vm_gc_cycles_total"
	metricGCReclaimed    = "aide_vm_gc_reclaimed_bytes_total"
	metricMigratedOut    = "aide_vm_migrated_out_objects_total"
	metricMigratedIn     = "aide_vm_migrated_in_objects_total"
	metricReclaimedStubs = "aide_vm_reclaimed_stubs_total"
	metricLazyDeferred   = "aide_vm_lazy_fields_deferred_total"
	metricLazyFaults     = "aide_vm_lazy_field_faults_total"
	metricLazyFetched    = "aide_vm_lazy_fields_fetched_total"
	metricHeapLive       = "aide_vm_heap_live_bytes"
	metricHeapFree       = "aide_vm_heap_free_bytes"
	metricHeapObjects    = "aide_vm_heap_objects"
)

// vmMetrics carries the VM's instruments. All fields stay nil when the
// VM is built without a telemetry registry, making every update on the
// allocation/invocation/GC hot paths a nil-check no-op.
type vmMetrics struct {
	invokeLocal    *telemetry.Counter
	invokeRemote   *telemetry.Counter
	objectsCreated *telemetry.Counter
	allocBytes     *telemetry.Counter
	gcCycles       *telemetry.Counter
	gcReclaimed    *telemetry.Counter
	migratedOut    *telemetry.Counter
	migratedIn     *telemetry.Counter
	reclaimedStubs *telemetry.Counter
	lazyDeferred   *telemetry.Counter
	lazyFaults     *telemetry.Counter
	lazyFetched    *telemetry.Counter
}

func newVMMetrics(reg *telemetry.Registry) vmMetrics {
	if reg == nil {
		return vmMetrics{}
	}
	return vmMetrics{
		invokeLocal:    reg.Counter(metricInvokeLocal, "method invocations executed on this vm"),
		invokeRemote:   reg.Counter(metricInvokeRemote, "method invocations forwarded to a peer vm"),
		objectsCreated: reg.Counter(metricObjectsCreated, "objects allocated"),
		allocBytes:     reg.Counter(metricAllocBytes, "bytes allocated"),
		gcCycles:       reg.Counter(metricGCCycles, "garbage-collection cycles"),
		gcReclaimed:    reg.Counter(metricGCReclaimed, "bytes reclaimed by garbage collection"),
		migratedOut:    reg.Counter(metricMigratedOut, "objects extracted into outgoing migrations"),
		migratedIn:     reg.Counter(metricMigratedIn, "objects adopted from incoming migrations"),
		reclaimedStubs: reg.Counter(metricReclaimedStubs, "stubs re-materialized locally after a peer was lost"),
		lazyDeferred:   reg.Counter(metricLazyDeferred, "fields withheld from lazy migrations"),
		lazyFaults:     reg.Counter(metricLazyFaults, "accesses that faulted on a lazily withheld field"),
		lazyFetched:    reg.Counter(metricLazyFetched, "withheld fields pulled from their origin vm"),
	}
}

// registerHeapGauges samples the VM heap at scrape time. The callbacks
// take v.mu briefly; the exposition goroutine never holds it while the
// VM calls into telemetry, so there is no lock-order cycle.
func registerHeapGauges(reg *telemetry.Registry, v *VM) {
	reg.GaugeFunc(metricHeapLive, "live bytes in the vm heap", func() int64 { return v.Heap().Live })
	reg.GaugeFunc(metricHeapFree, "free bytes in the vm heap", func() int64 { return v.Heap().Free })
	reg.GaugeFunc(metricHeapObjects, "objects resident in the vm heap", func() int64 { return v.Heap().Objects })
}
