// Package vm implements an interpreted object virtual machine: the
// substrate standing in for the paper's modified HP Chai JVM.
//
// The VM exposes exactly the abstractions AIDE's mechanisms operate on:
// classes and objects with sizes, object references that may transparently
// point at a peer VM, native methods that are pinned to the client, static
// data that is consistent only on the client, a bounded heap with an
// incremental mark-and-sweep collector whose cycles report free memory, and
// monitoring hooks on method invocation, data-field access, object creation
// and deletion (paper §3.2, §3.4, §4).
//
// Method bodies are Go closures registered in a Registry shared by both
// VMs, mirroring the paper's simplifying assumption that "both VMs have
// access to the application's Java bytecodes".
package vm

import (
	"fmt"
	"time"
)

// ObjectID identifies an object within one VM's private reference
// namespace. Each JVM has a private object reference namespace and does not
// understand an object reference from another JVM (paper §3.2); the remote
// runtime maps namespaces onto each other via stubs.
type ObjectID int64

// InvalidObject is the zero-value object reference target.
const InvalidObject ObjectID = 0

// ValueKind discriminates Value.
type ValueKind uint8

// Value kinds.
const (
	KindNil ValueKind = iota
	KindInt
	KindFloat
	KindBool
	KindString
	KindBytes
	KindRef

	// KindDeferred marks a field whose value was withheld from a lazy
	// migration: the origin VM keeps the real value as a residual and the
	// receiver pulls it on first access (MsgFieldFetch). It never appears
	// as a method argument or return value, only inside MigratedObject
	// field lists and materialized object slots.
	KindDeferred
)

// Value is the VM's tagged scalar/reference union.
type Value struct {
	Kind  ValueKind
	I     int64
	F     float64
	B     bool
	S     string
	Bytes []byte
	Ref   ObjectID // local reference namespace of the holding VM
}

// Nil returns the nil value.
func Nil() Value { return Value{} }

// Int boxes an integer.
func Int(i int64) Value { return Value{Kind: KindInt, I: i} }

// Float boxes a float.
func Float(f float64) Value { return Value{Kind: KindFloat, F: f} }

// Bool boxes a boolean.
func Bool(b bool) Value { return Value{Kind: KindBool, B: b} }

// Str boxes a string.
func Str(s string) Value { return Value{Kind: KindString, S: s} }

// Blob boxes a byte payload. The payload is not copied.
func Blob(b []byte) Value { return Value{Kind: KindBytes, Bytes: b} }

// RefOf boxes an object reference in the local namespace.
func RefOf(id ObjectID) Value { return Value{Kind: KindRef, Ref: id} }

// IsNil reports whether the value is nil (or a nil reference).
func (v Value) IsNil() bool {
	return v.Kind == KindNil || (v.Kind == KindRef && v.Ref == InvalidObject)
}

// WireSize returns the number of bytes the value occupies as an RPC
// parameter or return value; interaction monitoring charges this amount
// (paper §3.4: "the amount of information exchanged between two classes as
// represented by the parameters and return values").
func (v Value) WireSize() int64 {
	switch v.Kind {
	case KindNil:
		return 1
	case KindInt, KindFloat:
		return 8
	case KindBool:
		return 1
	case KindString:
		return int64(len(v.S)) + 4
	case KindBytes:
		return int64(len(v.Bytes)) + 4
	case KindRef:
		return 12 // namespace tag + 8-byte id
	default:
		return 1
	}
}

// String renders the value for diagnostics.
func (v Value) String() string {
	switch v.Kind {
	case KindNil:
		return "nil"
	case KindInt:
		return fmt.Sprintf("%d", v.I)
	case KindFloat:
		return fmt.Sprintf("%g", v.F)
	case KindBool:
		return fmt.Sprintf("%t", v.B)
	case KindString:
		return fmt.Sprintf("%q", v.S)
	case KindBytes:
		return fmt.Sprintf("bytes[%d]", len(v.Bytes))
	case KindRef:
		return fmt.Sprintf("ref(%d)", v.Ref)
	case KindDeferred:
		return "deferred"
	default:
		return fmt.Sprintf("Value(kind=%d)", v.Kind)
	}
}

// WireSizeAll sums the wire sizes of a parameter list.
func WireSizeAll(vs []Value) int64 {
	var n int64
	for _, v := range vs {
		n += v.WireSize()
	}
	return n
}

// Hooks receive monitoring callbacks from the VM. The prototype augments
// the JVM's code for method invocations, data field accesses, object
// creation, and object deletion, and extracts resource information from the
// garbage collector (paper §3.4). A nil Hooks disables monitoring.
type Hooks interface {
	// OnInvoke fires when a method invocation returns. selfTime excludes
	// nested calls (paper Figure 9).
	OnInvoke(caller, callee string, method string, obj ObjectID, argBytes, retBytes int64, selfTime time.Duration, native, stateless bool)

	// OnAccess fires on a data-field access from the running class to the
	// target object's class.
	OnAccess(from, to string, obj ObjectID, bytes int64)

	// OnCreate fires when an object is allocated.
	OnCreate(class string, obj ObjectID, size int64)

	// OnDelete fires when the collector reclaims an object.
	OnDelete(class string, obj ObjectID, size int64)

	// OnGC fires after every collection cycle with the post-cycle free
	// memory, matching the prototype's "frequent memory usage updates".
	OnGC(free, capacity int64, freed bool)
}
