package vm

import (
	"strings"
	"testing"
)

// wireValues is one of each encodable kind, including both WireRef
// localities and the nil-canonical blob form.
func wireValues() []WireValue {
	return []WireValue{
		{Kind: KindNil},
		{Kind: KindInt, I: 0},
		{Kind: KindInt, I: -1},
		{Kind: KindInt, I: 1 << 40},
		{Kind: KindFloat, F: 3.25},
		{Kind: KindFloat, F: -0.0},
		{Kind: KindBool, B: true},
		{Kind: KindBool, B: false},
		{Kind: KindString, S: ""},
		{Kind: KindString, S: "hello, wire"},
		{Kind: KindBytes},
		{Kind: KindBytes, Bytes: []byte{0, 1, 2, 0xFF}},
		{Kind: KindRef, Ref: WireRef{ID: 7, Class: "Node"}},
		{Kind: KindRef, Ref: WireRef{ID: -3, ReceiverLocal: true}},
	}
}

func wireEq(a, b WireValue) bool {
	if a.Kind != b.Kind || a.I != b.I || a.F != b.F || a.B != b.B || a.S != b.S {
		return false
	}
	if len(a.Bytes) != len(b.Bytes) {
		return false
	}
	for i := range a.Bytes {
		if a.Bytes[i] != b.Bytes[i] {
			return false
		}
	}
	return a.Ref == b.Ref
}

func TestWireValueRoundTrip(t *testing.T) {
	for _, w := range wireValues() {
		buf := w.AppendWire(nil)
		if len(buf) != w.WireLen() {
			t.Errorf("%+v: encoded %d bytes, WireLen says %d", w, len(buf), w.WireLen())
		}
		// Trailing bytes must be left untouched for the next decoder.
		got, rest, err := DecodeWireValue(append(buf, 0xAA))
		if err != nil {
			t.Errorf("%+v: decode: %v", w, err)
			continue
		}
		if len(rest) != 1 || rest[0] != 0xAA {
			t.Errorf("%+v: decoder consumed the wrong span, rest=%v", w, rest)
		}
		if !wireEq(got, w) {
			t.Errorf("round trip changed %+v -> %+v", w, got)
		}
		// Re-encoding the decoded value is byte-identical (canonical form).
		if again := got.AppendWire(nil); string(again) != string(buf) {
			t.Errorf("%+v: re-encode differs: %v vs %v", w, again, buf)
		}
	}
}

func TestWireRefRoundTrip(t *testing.T) {
	for _, r := range []WireRef{
		{ID: 1, Class: "Doc"},
		{ID: 123456, Class: ""},
		{ID: 42, ReceiverLocal: true},
		{ID: -9, ReceiverLocal: true},
	} {
		buf := r.AppendWire(nil)
		if len(buf) != r.WireLen() {
			t.Errorf("%+v: encoded %d bytes, WireLen says %d", r, len(buf), r.WireLen())
		}
		got, rest, err := DecodeWireRef(buf)
		if err != nil || len(rest) != 0 {
			t.Errorf("%+v: decode err=%v rest=%v", r, err, rest)
			continue
		}
		if got != r {
			t.Errorf("round trip changed %+v -> %+v", r, got)
		}
	}
}

func TestMigratedObjectRoundTrip(t *testing.T) {
	m := MigratedObject{
		SenderID: 17,
		Class:    "Node",
		Size:     4096,
		Fields:   wireValues(),
	}
	buf := m.AppendWire(nil)
	if len(buf) != m.WireLen() {
		t.Fatalf("encoded %d bytes, WireLen says %d", len(buf), m.WireLen())
	}
	got, rest, err := DecodeMigratedObject(buf)
	if err != nil || len(rest) != 0 {
		t.Fatalf("decode err=%v rest=%v", err, rest)
	}
	if got.SenderID != m.SenderID || got.Class != m.Class || got.Size != m.Size || len(got.Fields) != len(m.Fields) {
		t.Fatalf("round trip changed header: %+v", got)
	}
	for i := range m.Fields {
		if !wireEq(got.Fields[i], m.Fields[i]) {
			t.Fatalf("field %d changed: %+v -> %+v", i, m.Fields[i], got.Fields[i])
		}
	}

	// Fieldless objects canonicalize to a nil slice.
	empty := MigratedObject{SenderID: 1, Class: "Keep", Size: 8}
	got, _, err = DecodeMigratedObject(empty.AppendWire(nil))
	if err != nil || got.Fields != nil {
		t.Fatalf("empty object: err=%v fields=%v", err, got.Fields)
	}
}

// TestWireDecodeTruncation feeds every decoder every strict prefix of a
// valid encoding: all must error, none may panic or succeed.
func TestWireDecodeTruncation(t *testing.T) {
	m := MigratedObject{SenderID: 300, Class: "Node", Size: 1024, Fields: wireValues()}
	full := m.AppendWire(nil)
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := DecodeMigratedObject(full[:cut]); err == nil {
			t.Fatalf("DecodeMigratedObject accepted a %d/%d-byte prefix", cut, len(full))
		}
	}
	for _, w := range wireValues() {
		buf := w.AppendWire(nil)
		for cut := 0; cut < len(buf); cut++ {
			if _, _, err := DecodeWireValue(buf[:cut]); err == nil {
				t.Fatalf("DecodeWireValue accepted a %d/%d-byte prefix of %+v", cut, len(buf), w)
			}
		}
	}
	r := WireRef{ID: 99, Class: "Doc"}
	buf := r.AppendWire(nil)
	for cut := 0; cut < len(buf); cut++ {
		if _, _, err := DecodeWireRef(buf[:cut]); err == nil {
			t.Fatalf("DecodeWireRef accepted a %d/%d-byte prefix", cut, len(buf))
		}
	}
}

func TestWireDecodeMalformed(t *testing.T) {
	// Unknown value kind.
	if _, _, err := DecodeWireValue([]byte{0x7F}); err == nil || !strings.Contains(err.Error(), "unknown value kind") {
		t.Fatalf("unknown kind: err = %v", err)
	}
	// Oversized uvarint (11 continuation bytes).
	over := []byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80}
	if _, _, err := ReadUvarint(over); err == nil {
		t.Fatal("oversized uvarint must error")
	}
	if _, _, err := ReadVarint(over); err == nil {
		t.Fatal("oversized varint must error")
	}
	// String length past the end of the buffer.
	if _, _, err := ReadString([]byte{0x05, 'a'}); err == nil {
		t.Fatal("string length beyond buffer must error")
	}
	// Blob length past the end of the buffer.
	if _, _, err := DecodeWireValue([]byte{byte(KindBytes), 0x05, 1}); err == nil {
		t.Fatal("blob length beyond buffer must error")
	}
	// Field count past the end of the buffer: SenderID 0, empty class,
	// size 0, then a huge count with no payload.
	if _, _, err := DecodeMigratedObject([]byte{0x00, 0x00, 0x00, 0x40}); err == nil || !strings.Contains(err.Error(), "field count") {
		t.Fatalf("oversized field count: err = %v", err)
	}
	// Varint sizes agree with the encoder for boundary values.
	for _, x := range []int64{0, -1, 63, 64, -65, 1 << 20, -(1 << 40)} {
		buf := (&WireValue{Kind: KindInt, I: x}).AppendWire(nil)
		if len(buf) != 1+VarintSize(x) {
			t.Fatalf("VarintSize(%d) = %d, encoder used %d", x, VarintSize(x), len(buf)-1)
		}
	}
}
