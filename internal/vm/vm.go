package vm

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"aide/internal/telemetry"
)

// Common VM errors.
var (
	// ErrOutOfMemory is returned when an allocation cannot be satisfied
	// even after garbage collection and (if installed) the memory-pressure
	// handler. The unmodified Chai VM fails here; AIDE's platform installs
	// a pressure handler that offloads instead (paper §5.1).
	ErrOutOfMemory = errors.New("vm: out of memory")

	// ErrNoSuchObject is returned for dangling or foreign references.
	ErrNoSuchObject = errors.New("vm: no such object")

	// ErrNoSuchMethod is returned when dispatch cannot resolve a method.
	ErrNoSuchMethod = errors.New("vm: no such method")

	// ErrNoSuchField is returned for unknown field slots.
	ErrNoSuchField = errors.New("vm: no such field")

	// ErrNotAttached is returned when remote execution is required but no
	// peer is attached.
	ErrNotAttached = errors.New("vm: no remote peer attached")

	// ErrPeerGone marks operations that failed because the hosting peer
	// disconnected involuntarily (transport death, timeout storm). The
	// remote module wraps its disconnect errors around this sentinel so
	// the VM can fail the operation over to local execution.
	ErrPeerGone = errors.New("vm: peer disconnected")
)

// Role distinguishes the client device VM from the surrogate server VM.
type Role int

// VM roles.
const (
	RoleClient Role = iota + 1
	RoleSurrogate
)

// String returns the role name.
func (r Role) String() string {
	switch r {
	case RoleClient:
		return "client"
	case RoleSurrogate:
		return "surrogate"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// Object is a VM heap object, or a stub placeholder for an object hosted by
// the peer VM (paper §3.2: "each JVM keeps stub local references for remote
// objects as a placeholder").
type Object struct {
	ID     ObjectID
	Class  *Class
	Fields []Value

	// Size is the heap memory the object occupies, fixed at creation.
	Size int64

	// Remote marks stubs. PeerIdx selects which attached peer hosts the
	// object and PeerID is its ID in that VM's namespace. RemoteSize
	// remembers the migrated object's heap size so that monitoring can
	// account for its release when the stub dies.
	Remote     bool
	PeerIdx    int
	PeerID     ObjectID
	RemoteSize int64

	// exported counts references the peer holds to this object; while
	// positive the object is a distributed-GC root.
	exported int64

	// lazyFrom/lazySrc remember where a lazily migrated object came from:
	// the peer index of the origin VM and the object's ID in that VM's
	// namespace (its residual-store key). Set when AdoptMigration installs
	// KindDeferred fields; the first access pulls the withheld values from
	// there (lazy.go).
	lazyFrom int
	lazySrc  ObjectID

	marked bool
}

// Peer is the remote-invocation module's interface as seen by the VM: the
// operations that cross to the other VM. The remote package implements it;
// tests may stub it.
type Peer interface {
	// InvokeRemote invokes method on the peer-namespace object, returning
	// the result, the simulated time the peer spent executing, and any
	// error.
	InvokeRemote(peerObj ObjectID, method string, args []Value) (Value, time.Duration, error)

	// GetFieldRemote and SetFieldRemote access a field of a peer object.
	GetFieldRemote(peerObj ObjectID, field string) (Value, error)
	SetFieldRemote(peerObj ObjectID, field string, v Value) error

	// GetStaticRemote and SetStaticRemote access static data, which lives
	// on the client VM (paper §3.2).
	GetStaticRemote(class, field string) (Value, error)
	SetStaticRemote(class, field string, v Value) error

	// InvokeNativeRemote directs a native method back to the client VM
	// (paper §3.2).
	InvokeNativeRemote(class, method string, peerSelf ObjectID, selfIsCallerLocal bool, args []Value) (Value, time.Duration, error)

	// Release tells the peer that this VM dropped its last stub reference
	// to the peer's object (distributed GC).
	Release(peerObj ObjectID)
}

// Config parametrizes a VM.
type Config struct {
	// Role is client or surrogate.
	Role Role

	// HeapCapacity is the Java-heap budget in bytes (the paper uses 6 MB
	// and 8 MB client heaps).
	HeapCapacity int64

	// CPUSpeed scales simulated work: a Thread.Work(d) advances the clock
	// by d/CPUSpeed. The paper's surrogate executes 3.5× faster than the
	// client. Zero defaults to 1.
	CPUSpeed float64

	// GC trigger thresholds, mirroring Chai's incremental mark-and-sweep,
	// which is "triggered by space limitations, the number of objects
	// created since the last collection, and the amount of memory occupied
	// by objects created since the last collection" (paper §5.1). Zeros
	// choose defaults.
	GCObjectTrigger int64
	GCBytesTrigger  int64

	// MonitorCostPerEvent is the simulated per-event cost of execution
	// monitoring, charged to the clock while Hooks are installed. The
	// prototype measured ≈11% wall overhead for JavaNote (paper §5.1).
	MonitorCostPerEvent time.Duration

	// Telemetry, when set, registers this VM's invocation/allocation/GC
	// counters plus heap gauges sampled at scrape time. Nil leaves every
	// instrument nil: hot-path updates reduce to nil-check no-ops.
	Telemetry *telemetry.Registry

	// Tracer, when set and enabled, receives gc and failover spans.
	Tracer *telemetry.Tracer
}

func (c Config) withDefaults() Config {
	if c.Role == 0 {
		c.Role = RoleClient
	}
	if c.CPUSpeed <= 0 {
		c.CPUSpeed = 1
	}
	if c.HeapCapacity <= 0 {
		c.HeapCapacity = 64 << 20
	}
	if c.GCObjectTrigger <= 0 {
		c.GCObjectTrigger = 512
	}
	if c.GCBytesTrigger <= 0 {
		c.GCBytesTrigger = c.HeapCapacity / 8
	}
	return c
}

// VM is one virtual machine instance. All exported methods are safe for
// concurrent use; remote calls release the VM lock while waiting so that
// the peer can call back in (the paper's VMs service each other's requests
// with a pool of threads while execution passes back and forth).
type VM struct {
	cfg      Config
	registry *Registry

	mu      sync.Mutex
	objects map[ObjectID]*Object
	nextID  ObjectID

	// imports maps (peer, peer-namespace ID) to local stub IDs: this VM's
	// half of the object reference mappings the VMs maintain (paper §3.2).
	imports map[importKey]ObjectID

	// statics[class] holds the class's static slots; populated lazily on
	// the client VM only.
	statics map[string][]Value

	// roots are named global references (thread entry points, app state).
	roots map[string]ObjectID

	liveBytes      int64
	objsSinceGC    int64
	bytesSinceGC   int64
	garbageBytes   int64
	collections    int64
	lastGCFreedAny bool

	clock time.Duration

	hooks Hooks

	// fieldHooks caches hooks' optional FieldHooks extension (SetHooks
	// type-asserts once, so the per-access check is a nil compare).
	fieldHooks FieldHooks

	// fieldPredictor, when set, lets ExtractMigrationLazy withhold
	// predictor-cold fields; residuals holds the withheld values of
	// objects this VM lazily migrated away, keyed by local stub ID.
	fieldPredictor FieldPredictor
	residuals      map[ObjectID]*residual

	// peers are the attached remote-invocation modules. A client may
	// attach several surrogates (paper §2: "multiple surrogates could be
	// used by the client"); a surrogate attaches exactly one client at
	// peers[0].
	peers []Peer

	// pressure is consulted after a failed post-GC allocation; returning
	// true retries the allocation (the AIDE platform offloads here).
	pressure func(needed int64) bool

	// tm and tracer are the telemetry instruments, fixed at construction
	// (nil members when Config.Telemetry/Tracer are unset).
	tm     vmMetrics
	tracer *telemetry.Tracer

	// failover is consulted when a remote operation fails with
	// ErrPeerGone; returning true means the handler re-homed the peer's
	// objects locally (ReclaimStubs) and the operation should be retried.
	failover func(peerIdx int) bool

	// drain is consulted when a remote operation is refused with
	// ErrSessionDrained; returning true means the handler re-pointed the
	// peer slot at the handoff destination (ReplacePeer) and the
	// operation should be retried.
	drain func(peerIdx int, used Peer) bool

	// statelessLocal enables the §5.2 enhancement: stateless native
	// methods execute on the VM where they are invoked.
	statelessLocal bool

	// frames of the single logical application thread (the platform's
	// serial-execution assumption); used as GC roots.
	frames []*frame

	// framePool recycles popped frames (and their temps backing arrays):
	// every served invocation pushes one, so the RPC hot path would
	// otherwise allocate a frame, a temps slice, and a thread per call.
	framePool []*frame

	// rootTemps protects objects created or received outside any method
	// frame (top-level driver code) until ClearTemps is called, so a
	// collection triggered mid-construction cannot reclaim them.
	rootTemps []ObjectID
}

// New constructs a VM bound to a class registry.
func New(registry *Registry, cfg Config) *VM {
	v := &VM{
		cfg:      cfg.withDefaults(),
		registry: registry,
		objects:  make(map[ObjectID]*Object),
		nextID:   1,
		imports:  make(map[importKey]ObjectID),
		statics:  make(map[string][]Value),
		roots:    make(map[string]ObjectID),
		tm:       newVMMetrics(cfg.Telemetry),
		tracer:   cfg.Tracer,
	}
	if cfg.Telemetry != nil {
		registerHeapGauges(cfg.Telemetry, v)
	}
	return v
}

// Role returns the VM's role.
func (v *VM) Role() Role { return v.cfg.Role }

// Registry returns the shared class registry.
func (v *VM) Registry() *Registry { return v.registry }

// CPUSpeed returns the VM's configured relative CPU speed.
func (v *VM) CPUSpeed() float64 { return v.cfg.CPUSpeed }

// SetHooks installs (or removes, with nil) monitoring hooks. A Hooks
// value that also implements FieldHooks additionally receives per-field
// access callbacks (the lazy-migration heat signal).
func (v *VM) SetHooks(h Hooks) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.hooks = h
	if fh, ok := h.(FieldHooks); ok {
		v.fieldHooks = fh
	} else {
		v.fieldHooks = nil
	}
}

// importKey identifies a foreign object: which peer hosts it and its ID
// in that peer's namespace.
type importKey struct {
	peer int
	id   ObjectID
}

// AttachPeer connects the VM to a remote-invocation module and returns the
// peer's index, used to address it in stubs and wire translation.
func (v *VM) AttachPeer(p Peer) int {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.peers = append(v.peers, p)
	return len(v.peers) - 1
}

// peerAt returns the attached peer with the given index, or nil.
func (v *VM) peerAt(idx int) Peer {
	if idx < 0 || idx >= len(v.peers) {
		return nil
	}
	return v.peers[idx]
}

// DetachPeer removes the peer at idx from the peer table. The slot is
// kept (nil) so later peers retain their indices; stubs still pointing
// at the slot fail with ErrNotAttached until ReclaimStubs re-homes them.
func (v *VM) DetachPeer(idx int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if idx >= 0 && idx < len(v.peers) {
		v.peers[idx] = nil
	}
}

// SetFailoverHandler installs the disconnect-failover hook: when a remote
// operation fails because its hosting peer is gone (ErrPeerGone), the VM
// invokes the handler with the peer's index and, if it reports success,
// retries the operation — by then the handler must have re-homed the
// affected objects locally (DetachPeer + ReclaimStubs). The handler runs
// without the VM lock held and must be idempotent: concurrent failed
// calls may each invoke it for the same peer.
func (v *VM) SetFailoverHandler(f func(peerIdx int) bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.failover = f
}

// failoverIfGone reports whether the caller should retry an operation
// that failed with err: true when err shows the hosting peer vanished
// and the installed failover handler re-homed its objects. Called
// without v.mu held.
func (v *VM) failoverIfGone(peerIdx int, err error) bool {
	if err == nil || !errors.Is(err, ErrPeerGone) {
		return false
	}
	v.mu.Lock()
	f := v.failover
	v.mu.Unlock()
	if f == nil {
		return false
	}
	return f(peerIdx)
}

// peerSlotErr classifies a missing peer for a remote stub: a slot inside
// the table that once held a peer (DetachPeer nils it in place) means the
// peer disconnected — ErrPeerGone, eligible for disconnect failover —
// while an index beyond the table means no peer was ever attached.
func (v *VM) peerSlotErr(idx int) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if idx >= 0 && idx < len(v.peers) {
		return ErrPeerGone
	}
	return ErrNotAttached
}

// SetPressureHandler installs the memory-pressure handler consulted after a
// failed post-GC allocation.
func (v *VM) SetPressureHandler(f func(needed int64) bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.pressure = f
}

// SetStatelessNativeLocal toggles the §5.2 stateless-native enhancement.
func (v *VM) SetStatelessNativeLocal(on bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.statelessLocal = on
}

// Clock returns the VM's simulated clock.
func (v *VM) Clock() time.Duration {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.clock
}

// AdvanceClock adds simulated time (e.g. network costs charged by the
// remote runtime).
func (v *VM) AdvanceClock(d time.Duration) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.clock += d
}

// HeapStats reports heap occupancy.
type HeapStats struct {
	Capacity    int64
	Live        int64
	Garbage     int64
	Free        int64
	Collections int64
	Objects     int64
}

// Heap returns current heap statistics.
func (v *VM) Heap() HeapStats {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.heapLocked()
}

func (v *VM) heapLocked() HeapStats {
	return HeapStats{
		Capacity:    v.cfg.HeapCapacity,
		Live:        v.liveBytes,
		Garbage:     v.garbageBytes,
		Free:        v.cfg.HeapCapacity - v.liveBytes - v.garbageBytes,
		Collections: v.collections,
		Objects:     int64(len(v.objects)),
	}
}

// SetRoot names an object as a global GC root (pass InvalidObject to
// clear).
func (v *VM) SetRoot(name string, id ObjectID) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if id == InvalidObject {
		delete(v.roots, name)
		return
	}
	v.roots[name] = id
}

// Root returns a named root.
func (v *VM) Root(name string) (ObjectID, bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	id, ok := v.roots[name]
	return id, ok
}

// Object returns the object record for diagnostics and migration. It
// returns nil for unknown IDs.
func (v *VM) Object(id ObjectID) *Object {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.objects[id]
}

// ObjectsOfClass returns the IDs of live, locally hosted (non-stub) objects
// of the named class, in ascending ID order.
func (v *VM) ObjectsOfClass(name string) []ObjectID {
	v.mu.Lock()
	defer v.mu.Unlock()
	var out []ObjectID
	for id, o := range v.objects {
		if !o.Remote && o.Class.Name == name {
			out = append(out, id)
		}
	}
	sortObjectIDs(out)
	return out
}

func sortObjectIDs(ids []ObjectID) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}

func (v *VM) chargeMonitorLocked() {
	if v.hooks != nil && v.cfg.MonitorCostPerEvent > 0 {
		v.clock += v.cfg.MonitorCostPerEvent
	}
}
