package vm

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"
)

// Binary wire-codec hooks: the hand-rolled encoding of the VM's wire
// types (WireValue, WireRef, MigratedObject), shared by the remote
// module's message codec. Keeping the per-type encoders next to the type
// definitions keeps the codec and the structs in one review unit; the
// gobwire analyzer additionally pins each struct's field count against
// the codec's contract (see internal/remote/codec.go).
//
// Encoding rules (DESIGN.md "Wire protocol"):
//
//   - unsigned counts and lengths are LEB128 uvarints,
//   - signed integers are zigzag varints (encoding/binary.AppendVarint),
//   - floats are 8-byte little-endian IEEE-754 bit patterns,
//   - strings and byte blobs are uvarint length + raw bytes,
//   - a decoded zero-length blob or list is canonicalized to nil, so
//     encode(decode(encode(x))) is byte-identical to encode(x).

// ReadUvarint decodes a uvarint from data, returning the value and the
// remaining bytes.
func ReadUvarint(data []byte) (uint64, []byte, error) {
	x, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, fmt.Errorf("vm: wire: truncated or oversized uvarint")
	}
	return x, data[n:], nil
}

// ReadVarint decodes a zigzag varint from data, returning the value and
// the remaining bytes.
func ReadVarint(data []byte) (int64, []byte, error) {
	x, n := binary.Varint(data)
	if n <= 0 {
		return 0, nil, fmt.Errorf("vm: wire: truncated or oversized varint")
	}
	return x, data[n:], nil
}

// UvarintSize returns the encoded size of x as a uvarint.
func UvarintSize(x uint64) int {
	n := 1
	for x >= 0x80 {
		x >>= 7
		n++
	}
	return n
}

// VarintSize returns the encoded size of x as a zigzag varint.
func VarintSize(x int64) int {
	return UvarintSize(uint64(x)<<1 ^ uint64(x>>63))
}

// AppendString appends a uvarint-length-prefixed string.
func AppendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// StringSize returns the encoded size of s.
func StringSize(s string) int {
	return UvarintSize(uint64(len(s))) + len(s)
}

// ReadString decodes a length-prefixed string. The returned string is a
// copy (or an interned equal); it never aliases data.
func ReadString(data []byte) (string, []byte, error) {
	n, rest, err := ReadUvarint(data)
	if err != nil {
		return "", nil, err
	}
	if n > uint64(len(rest)) {
		return "", nil, fmt.Errorf("vm: wire: string length %d exceeds %d remaining bytes", n, len(rest))
	}
	return internBytes(rest[:n]), rest[n:], nil
}

// Short-string interning for the decode path: wire traffic repeats the
// same method, class, and field names endlessly — a pipelined frame
// would otherwise allocate one copy per call. The cache is a small
// direct-mapped table of atomically published strings; collisions just
// fall back to a fresh copy, and concurrent decoders (one per peer)
// race benignly on publication.
const internMaxLen = 32

var internTab [512]atomic.Pointer[string]

func internBytes(b []byte) string {
	if len(b) == 0 || len(b) > internMaxLen {
		return string(b)
	}
	h := uint32(2166136261) // FNV-1a
	for _, c := range b {
		h = (h ^ uint32(c)) * 16777619
	}
	slot := &internTab[h%uint32(len(internTab))]
	if p := slot.Load(); p != nil && *p == string(b) {
		return *p
	}
	s := string(b)
	slot.Store(&s)
	return s
}

// AppendWire appends the reference's binary wire form: a locality byte,
// the zigzag-varint ID, and — for sender-namespace references only — the
// class name the receiver needs to type its stub.
func (r *WireRef) AppendWire(buf []byte) []byte {
	if r.ReceiverLocal {
		buf = append(buf, 1)
		return binary.AppendVarint(buf, int64(r.ID))
	}
	buf = append(buf, 0)
	buf = binary.AppendVarint(buf, int64(r.ID))
	return AppendString(buf, r.Class)
}

// WireLen returns the exact encoded size of the reference.
func (r *WireRef) WireLen() int {
	n := 1 + VarintSize(int64(r.ID))
	if !r.ReceiverLocal {
		n += StringSize(r.Class)
	}
	return n
}

// DecodeWireRef decodes one WireRef, returning the remaining bytes.
func DecodeWireRef(data []byte) (WireRef, []byte, error) {
	if len(data) == 0 {
		return WireRef{}, nil, fmt.Errorf("vm: wire: truncated ref")
	}
	var r WireRef
	r.ReceiverLocal = data[0] != 0
	id, rest, err := ReadVarint(data[1:])
	if err != nil {
		return WireRef{}, nil, err
	}
	r.ID = ObjectID(id)
	if !r.ReceiverLocal {
		r.Class, rest, err = ReadString(rest)
		if err != nil {
			return WireRef{}, nil, err
		}
	}
	return r, rest, nil
}

// AppendWire appends the value's binary wire form: a kind byte followed
// by the kind-dependent payload. Fields irrelevant to the kind are not
// encoded, so decoding always yields the canonical representation.
func (w *WireValue) AppendWire(buf []byte) []byte {
	buf = append(buf, byte(w.Kind))
	switch w.Kind {
	case KindInt:
		buf = binary.AppendVarint(buf, w.I)
	case KindFloat:
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(w.F))
	case KindBool:
		if w.B {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	case KindString:
		buf = AppendString(buf, w.S)
	case KindBytes:
		buf = binary.AppendUvarint(buf, uint64(len(w.Bytes)))
		buf = append(buf, w.Bytes...)
	case KindRef:
		buf = w.Ref.AppendWire(buf)
	}
	return buf
}

// WireLen returns the exact encoded size of the value.
func (w *WireValue) WireLen() int {
	switch w.Kind {
	case KindInt:
		return 1 + VarintSize(w.I)
	case KindFloat:
		return 1 + 8
	case KindBool:
		return 1 + 1
	case KindString:
		return 1 + StringSize(w.S)
	case KindBytes:
		return 1 + UvarintSize(uint64(len(w.Bytes))) + len(w.Bytes)
	case KindRef:
		return 1 + w.Ref.WireLen()
	default:
		return 1
	}
}

// DecodeWireValue decodes one WireValue, returning the remaining bytes.
// Byte payloads are copied; the result does not alias data.
func DecodeWireValue(data []byte) (WireValue, []byte, error) {
	var w WireValue
	rest, err := DecodeWireValueInto(&w, data)
	return w, rest, err
}

// DecodeWireValueInto decodes one WireValue in place, returning the
// remaining bytes. Decode loops use it to fill slice elements directly
// instead of copying the ~90-byte struct through a return value (the RPC
// hot path; a pipelined frame decodes dozens of values per message). On
// error *w is the zero value, matching DecodeWireValue.
func DecodeWireValueInto(w *WireValue, data []byte) ([]byte, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("vm: wire: truncated value")
	}
	*w = WireValue{Kind: ValueKind(data[0])}
	rest := data[1:]
	var err error
	switch w.Kind {
	case KindNil:
	case KindInt:
		w.I, rest, err = ReadVarint(rest)
	case KindFloat:
		if len(rest) < 8 {
			*w = WireValue{}
			return nil, fmt.Errorf("vm: wire: truncated float")
		}
		w.F = math.Float64frombits(binary.LittleEndian.Uint64(rest))
		rest = rest[8:]
	case KindBool:
		if len(rest) < 1 {
			*w = WireValue{}
			return nil, fmt.Errorf("vm: wire: truncated bool")
		}
		w.B = rest[0] != 0
		rest = rest[1:]
	case KindString:
		w.S, rest, err = ReadString(rest)
	case KindBytes:
		var n uint64
		n, rest, err = ReadUvarint(rest)
		if err == nil {
			if n > uint64(len(rest)) {
				*w = WireValue{}
				return nil, fmt.Errorf("vm: wire: blob length %d exceeds %d remaining bytes", n, len(rest))
			}
			if n > 0 {
				w.Bytes = append([]byte(nil), rest[:n]...)
			}
			rest = rest[n:]
		}
	case KindRef:
		w.Ref, rest, err = DecodeWireRef(rest)
	case KindDeferred:
		// No payload: the kind byte alone marks a withheld field.
	default:
		kind := w.Kind
		*w = WireValue{}
		return nil, fmt.Errorf("vm: wire: unknown value kind %d", kind)
	}
	if err != nil {
		*w = WireValue{}
		return nil, err
	}
	return rest, nil
}

// AppendWire appends the migrated object's binary wire form.
func (m *MigratedObject) AppendWire(buf []byte) []byte {
	buf = binary.AppendVarint(buf, int64(m.SenderID))
	buf = AppendString(buf, m.Class)
	buf = binary.AppendVarint(buf, m.Size)
	buf = binary.AppendUvarint(buf, uint64(len(m.Fields)))
	for i := range m.Fields {
		buf = m.Fields[i].AppendWire(buf)
	}
	return buf
}

// WireLen returns the exact encoded size of the migrated object.
func (m *MigratedObject) WireLen() int {
	n := VarintSize(int64(m.SenderID)) + StringSize(m.Class) + VarintSize(m.Size)
	n += UvarintSize(uint64(len(m.Fields)))
	for i := range m.Fields {
		n += m.Fields[i].WireLen()
	}
	return n
}

// DecodeMigratedObject decodes one MigratedObject, returning the
// remaining bytes.
func DecodeMigratedObject(data []byte) (MigratedObject, []byte, error) {
	var m MigratedObject
	id, rest, err := ReadVarint(data)
	if err != nil {
		return MigratedObject{}, nil, err
	}
	m.SenderID = ObjectID(id)
	m.Class, rest, err = ReadString(rest)
	if err != nil {
		return MigratedObject{}, nil, err
	}
	m.Size, rest, err = ReadVarint(rest)
	if err != nil {
		return MigratedObject{}, nil, err
	}
	n, rest, err := ReadUvarint(rest)
	if err != nil {
		return MigratedObject{}, nil, err
	}
	// Every encoded field occupies at least one byte, so a count beyond
	// the remaining bytes is corrupt — reject it before allocating.
	if n > uint64(len(rest)) {
		return MigratedObject{}, nil, fmt.Errorf("vm: wire: field count %d exceeds %d remaining bytes", n, len(rest))
	}
	if n > 0 {
		m.Fields = make([]WireValue, n)
		for i := range m.Fields {
			if rest, err = DecodeWireValueInto(&m.Fields[i], rest); err != nil {
				return MigratedObject{}, nil, err
			}
		}
	}
	return m, rest, nil
}

// ExportCount reports how many export pins the peers currently hold on a
// local object (distributed-GC diagnostics; the remote module's release
// tests assert pins are dropped exactly once).
func (v *VM) ExportCount(id ObjectID) int64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	if o, ok := v.objects[id]; ok {
		return o.exported
	}
	return 0
}
