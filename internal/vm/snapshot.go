package vm

import (
	"errors"
	"fmt"
	"sort"
)

// ErrSessionDrained marks remote operations refused because the hosting
// surrogate is draining: the session is being handed off to another
// surrogate. The remote module wraps its typed drain rejections around
// this sentinel so the VM can park the operation on the drain handler
// and retry once the peer slot has been re-pointed.
var ErrSessionDrained = errors.New("vm: session drained")

// SnapshotObject is one heap object's full state in a VM snapshot. IDs
// are the snapshotted VM's own namespace and are preserved exactly on
// restore, so references — including the peer's stubs into this VM —
// stay valid across a restore on a different host.
type SnapshotObject struct {
	ID    ObjectID
	Class string
	Size  int64

	// Stub state (Remote true): which peer slot hosts the object and its
	// ID in that VM's namespace.
	Remote     bool
	PeerIdx    int
	PeerID     ObjectID
	RemoteSize int64

	// Exported is the distributed-GC pin count the peer holds.
	Exported int64

	// Lazy-migration provenance (lazy.go): set when the object still has
	// KindDeferred fields to fault in from its origin VM.
	LazyFrom int
	LazySrc  ObjectID

	// Fields holds the instance slots. KindRef values reference the
	// snapshot's own ID namespace.
	Fields []Value
}

// SnapshotRoot is one named GC root.
type SnapshotRoot struct {
	Name string
	ID   ObjectID
}

// SnapshotStatic is one class's static slots.
type SnapshotStatic struct {
	Class  string
	Values []Value
}

// SnapshotResidual is the withheld field state of one lazily migrated
// object (the origin side of a lazy migration).
type SnapshotResidual struct {
	ID     ObjectID
	Bytes  int64
	Names  []string
	Values []Value
}

// SnapshotState is a VM's complete heap and class state in deterministic
// order: objects ascending by ID, roots by name, statics by class name,
// residual fields by field name. Two exports of the same VM state are
// structurally identical, which is what lets the snapshot package pin a
// byte-identical encoding.
type SnapshotState struct {
	NextID   ObjectID
	Objects  []SnapshotObject
	Roots    []SnapshotRoot
	Statics  []SnapshotStatic
	Residual []SnapshotResidual
}

// copyValue deep-copies a Value so the snapshot shares no mutable memory
// with the live heap.
func copyValue(val Value) Value {
	if val.Bytes != nil {
		val.Bytes = append([]byte(nil), val.Bytes...)
	}
	return val
}

// ExportSnapshot captures the VM's heap, roots, statics, and residual
// store as a self-contained, deterministically ordered state. The export
// shares no mutable memory with the VM: mutating the VM afterwards never
// changes the snapshot (copy-on-write at the granularity of the export).
func (v *VM) ExportSnapshot() *SnapshotState {
	v.mu.Lock()
	defer v.mu.Unlock()

	s := &SnapshotState{NextID: v.nextID}

	ids := make([]ObjectID, 0, len(v.objects))
	for id := range v.objects {
		ids = append(ids, id)
	}
	sortObjectIDs(ids)
	s.Objects = make([]SnapshotObject, 0, len(ids))
	for _, id := range ids {
		o := v.objects[id]
		so := SnapshotObject{
			ID:         o.ID,
			Class:      o.Class.Name,
			Size:       o.Size,
			Remote:     o.Remote,
			PeerIdx:    o.PeerIdx,
			PeerID:     o.PeerID,
			RemoteSize: o.RemoteSize,
			Exported:   o.exported,
			LazyFrom:   o.lazyFrom,
			LazySrc:    o.lazySrc,
		}
		if len(o.Fields) > 0 {
			so.Fields = make([]Value, len(o.Fields))
			for i, val := range o.Fields {
				so.Fields[i] = copyValue(val)
			}
		}
		s.Objects = append(s.Objects, so)
	}

	rootNames := make([]string, 0, len(v.roots))
	for name := range v.roots {
		rootNames = append(rootNames, name)
	}
	sort.Strings(rootNames)
	for _, name := range rootNames {
		s.Roots = append(s.Roots, SnapshotRoot{Name: name, ID: v.roots[name]})
	}

	classNames := make([]string, 0, len(v.statics))
	for name := range v.statics {
		classNames = append(classNames, name)
	}
	sort.Strings(classNames)
	for _, name := range classNames {
		slots := v.statics[name]
		ss := SnapshotStatic{Class: name, Values: make([]Value, len(slots))}
		for i, val := range slots {
			ss.Values[i] = copyValue(val)
		}
		s.Statics = append(s.Statics, ss)
	}

	resIDs := make([]ObjectID, 0, len(v.residuals))
	for id := range v.residuals {
		resIDs = append(resIDs, id)
	}
	sortObjectIDs(resIDs)
	for _, id := range resIDs {
		res := v.residuals[id]
		sr := SnapshotResidual{ID: id, Bytes: res.bytes}
		names := make([]string, 0, len(res.fields))
		for name := range res.fields {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			sr.Names = append(sr.Names, name)
			sr.Values = append(sr.Values, copyValue(res.fields[name]))
		}
		s.Residual = append(s.Residual, sr)
	}
	return s
}

// ImportSnapshot replaces the VM's heap, roots, statics, and residual
// store with the snapshot's state, preserving object IDs exactly. Every
// class named by the snapshot must exist in this VM's registry, every
// reference — in object fields, roots, statics, and residual values —
// must resolve to an object in the image (images arrive over the wire,
// so a dangling reference is hostile input, not a tolerable glitch),
// and the restored live bytes must fit the heap; on error the VM is
// unchanged.
// Peer slots are NOT part of the snapshot — stubs keep their PeerIdx and
// resolve against whatever peers the receiving VM has attached, which is
// what lets a restored session VM keep serving the same client.
func (v *VM) ImportSnapshot(s *SnapshotState) error {
	objects := make(map[ObjectID]*Object, len(s.Objects))
	imports := make(map[importKey]ObjectID, len(s.Objects))
	var live int64
	for i := range s.Objects {
		so := &s.Objects[i]
		class := v.registry.Class(so.Class)
		if class == nil {
			return fmt.Errorf("vm: restore #%d: unknown class %q", so.ID, so.Class)
		}
		if _, dup := objects[so.ID]; dup {
			return fmt.Errorf("vm: restore: duplicate object #%d", so.ID)
		}
		if so.ID >= s.NextID {
			return fmt.Errorf("vm: restore: object #%d not below next ID %d", so.ID, s.NextID)
		}
		o := &Object{
			ID:         so.ID,
			Class:      class,
			Size:       so.Size,
			Remote:     so.Remote,
			PeerIdx:    so.PeerIdx,
			PeerID:     so.PeerID,
			RemoteSize: so.RemoteSize,
			exported:   so.Exported,
			lazyFrom:   so.LazyFrom,
			lazySrc:    so.LazySrc,
		}
		if !o.Remote {
			o.Fields = make([]Value, len(class.Fields))
			for fi := range o.Fields {
				if fi < len(so.Fields) {
					o.Fields[fi] = copyValue(so.Fields[fi])
				}
			}
			live += o.Size
		}
		objects[so.ID] = o
		if o.Remote {
			imports[importKey{peer: o.PeerIdx, id: o.PeerID}] = o.ID
		}
	}
	for _, o := range objects {
		for fi, val := range o.Fields {
			if val.Kind == KindRef && val.Ref != InvalidObject {
				if _, ok := objects[val.Ref]; !ok {
					return fmt.Errorf("vm: restore %s#%d field %d: dangling reference #%d",
						o.Class.Name, o.ID, fi, val.Ref)
				}
			}
		}
	}

	statics := make(map[string][]Value, len(s.Statics))
	for _, ss := range s.Statics {
		class := v.registry.Class(ss.Class)
		if class == nil {
			return fmt.Errorf("vm: restore statics: unknown class %q", ss.Class)
		}
		slots := make([]Value, len(class.StaticFields))
		for i := range slots {
			if i < len(ss.Values) {
				val := ss.Values[i]
				if val.Kind == KindRef && val.Ref != InvalidObject {
					if _, ok := objects[val.Ref]; !ok {
						return fmt.Errorf("vm: restore static %s slot %d: dangling reference #%d",
							ss.Class, i, val.Ref)
					}
				}
				slots[i] = copyValue(val)
			}
		}
		statics[ss.Class] = slots
	}

	roots := make(map[string]ObjectID, len(s.Roots))
	for _, r := range s.Roots {
		if _, ok := objects[r.ID]; !ok {
			return fmt.Errorf("vm: restore root %q: dangling reference #%d", r.Name, r.ID)
		}
		roots[r.Name] = r.ID
	}

	var residuals map[ObjectID]*residual
	for _, sr := range s.Residual {
		if residuals == nil {
			residuals = make(map[ObjectID]*residual, len(s.Residual))
		}
		if len(sr.Names) != len(sr.Values) {
			return fmt.Errorf("vm: restore residual #%d: %d names, %d values", sr.ID, len(sr.Names), len(sr.Values))
		}
		res := &residual{fields: make(map[string]Value, len(sr.Names)), bytes: sr.Bytes}
		for i, name := range sr.Names {
			val := sr.Values[i]
			if val.Kind == KindRef && val.Ref != InvalidObject {
				if _, ok := objects[val.Ref]; !ok {
					return fmt.Errorf("vm: restore residual #%d field %q: dangling reference #%d",
						sr.ID, name, val.Ref)
				}
			}
			res.fields[name] = copyValue(val)
		}
		residuals[sr.ID] = res
		live += sr.Bytes
	}

	v.mu.Lock()
	defer v.mu.Unlock()
	if live > v.cfg.HeapCapacity {
		return fmt.Errorf("vm: restore needs %d bytes, heap capacity is %d: %w",
			live, v.cfg.HeapCapacity, ErrOutOfMemory)
	}
	v.objects = objects
	v.imports = imports
	v.statics = statics
	v.roots = roots
	v.residuals = residuals
	v.nextID = s.NextID
	v.liveBytes = live
	v.garbageBytes = 0
	v.objsSinceGC = 0
	v.bytesSinceGC = 0
	return nil
}

// ReplacePeer atomically swaps the peer at an occupied slot, leaving
// every stub's PeerIdx valid: the live-handoff primitive. Unlike
// AttachPeer it never grows the table, and unlike DetachPeer it leaves
// no nil hole — in-flight operations that raced the swap retry against
// the replacement.
func (v *VM) ReplacePeer(idx int, p Peer) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	if idx < 0 || idx >= len(v.peers) {
		return fmt.Errorf("vm: replace peer %d: %w", idx, ErrNotAttached)
	}
	v.peers[idx] = p
	return nil
}

// maxDrainRedirects bounds how many drained bounces a single operation
// will follow: each redirect means the hosting surrogate drained and the
// handler re-pointed the slot, so chains only occur when handoffs
// ping-pong under the call.
const maxDrainRedirects = 3

// SetDrainHandler installs the drain-redirect hook: when a remote
// operation is refused because the hosting surrogate is draining
// (ErrSessionDrained), the VM invokes the handler with the peer's index
// and the peer value the failed operation used and, if it reports
// success, retries the operation — by then the handler must have
// re-pointed the peer slot at the handoff destination (ReplacePeer).
// The used peer lets the handler tell a straggler of an already
// completed handoff (bounced by the replaced peer — retry immediately)
// from the first casualty of a new drain at the current home (park
// until that handoff lands). The handler runs without the VM lock held
// and must tolerate concurrent calls for the same peer.
func (v *VM) SetDrainHandler(f func(peerIdx int, used Peer) bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.drain = f
}

// drainIfRedirected reports whether the caller should retry an operation
// that failed with err: true when err shows the hosting surrogate is
// draining and the installed drain handler re-pointed the peer slot.
// Called without v.mu held.
func (v *VM) drainIfRedirected(peerIdx int, used Peer, err error) bool {
	if err == nil || !errors.Is(err, ErrSessionDrained) {
		return false
	}
	v.mu.Lock()
	f := v.drain
	v.mu.Unlock()
	if f == nil {
		return false
	}
	return f(peerIdx, used)
}

// ReclaimStubsFrom is ReclaimStubs with a donor: every stub hosted by
// peerIdx re-materializes from the donor snapshot's object of the same
// peer-namespace ID instead of restarting zeroed. The donor is a clone
// of the vanished peer's heap (speculative execution keeps one), so its
// ID namespace is the peer's. Donor references are followed: a donor
// object with no stub here is copied in as a fresh local object, and a
// donor stub pointing back at this VM resolves to the local object it
// names. Stubs the donor does not know re-materialize zeroed, exactly
// like ReclaimStubs. Returns the number of objects re-homed.
func (v *VM) ReclaimStubsFrom(peerIdx int, donor *SnapshotState) int {
	byID := make(map[ObjectID]*SnapshotObject, len(donor.Objects))
	for i := range donor.Objects {
		byID[donor.Objects[i].ID] = &donor.Objects[i]
	}

	v.mu.Lock()
	defer v.mu.Unlock()

	// Pass 1: map every donor ID we will materialize to a local ID.
	// Existing stubs upgrade in place, reachable donor-only objects get
	// fresh local IDs, and donor stubs pointing back at us collapse to
	// the local objects they name (those keep their live local state —
	// the donor's copy of them is the stale one). fill lists the locals
	// whose fields come from the donor.
	toLocal := make(map[ObjectID]ObjectID)
	fill := make(map[ObjectID]ObjectID) // local ID -> donor ID
	var work []ObjectID
	n := 0
	for _, o := range v.objects {
		if !o.Remote || o.PeerIdx != peerIdx {
			continue
		}
		delete(v.imports, importKey{peer: peerIdx, id: o.PeerID})
		toLocal[o.PeerID] = o.ID
		work = append(work, o.PeerID)
		so, known := byID[o.PeerID]
		o.Remote = false
		if known && !so.Remote {
			o.Size = so.Size
			fill[o.ID] = o.PeerID
		} else {
			o.Size = o.RemoteSize
		}
		o.PeerID = 0
		o.PeerIdx = 0
		o.RemoteSize = 0
		o.Fields = make([]Value, len(o.Class.Fields))
		v.dropResidualLocked(o.ID)
		v.liveBytes += o.Size
		n++
	}
	sortObjectIDs(work)
	for len(work) > 0 {
		donorID := work[0]
		work = work[1:]
		so, ok := byID[donorID]
		if !ok || so.Remote {
			continue
		}
		for _, val := range so.Fields {
			if val.Kind != KindRef || val.Ref == InvalidObject {
				continue
			}
			if _, seen := toLocal[val.Ref]; seen {
				continue
			}
			ref, ok := byID[val.Ref]
			if !ok {
				continue
			}
			if ref.Remote {
				// The donor's stub back into this VM: resolve to the local
				// object directly if it still exists.
				if _, live := v.objects[ref.PeerID]; live {
					toLocal[val.Ref] = ref.PeerID
				}
				continue
			}
			class := v.registry.Class(ref.Class)
			if class == nil {
				continue
			}
			id := v.nextID
			v.nextID++
			v.objects[id] = &Object{ID: id, Class: class, Size: ref.Size,
				Fields: make([]Value, len(class.Fields))}
			v.liveBytes += ref.Size
			toLocal[val.Ref] = id
			fill[id] = val.Ref
			work = append(work, val.Ref)
		}
	}

	// Pass 2: fill fields from the donor, rewriting references through
	// the map; unresolvable references zero out.
	for localID, donorID := range fill {
		o := v.objects[localID]
		so := byID[donorID]
		for fi := range o.Fields {
			if fi >= len(so.Fields) {
				break
			}
			val := copyValue(so.Fields[fi])
			if val.Kind == KindRef && val.Ref != InvalidObject {
				if mapped, ok := toLocal[val.Ref]; ok {
					val.Ref = mapped
				} else {
					val = Nil()
				}
			}
			if val.Kind == KindDeferred {
				// The donor never faulted the withheld value in; it is
				// unrecoverable now.
				val = Nil()
			}
			o.Fields[fi] = val
		}
	}

	// Pins the vanished peer held can never be released now; drop them
	// when it was the only attached peer, exactly like ReclaimStubs.
	sole := true
	for i, p := range v.peers {
		if i != peerIdx && p != nil {
			sole = false
			break
		}
	}
	if sole {
		for _, o := range v.objects {
			o.exported = 0
		}
	}
	v.tm.reclaimedStubs.Add(int64(n))
	return n
}
