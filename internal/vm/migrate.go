package vm

import (
	"fmt"
	"time"

	"aide/internal/telemetry"
)

// MigratedObject is one object in an offload batch: the serialized form in
// which selected objects move from the client to the surrogate (or back).
type MigratedObject struct {
	// SenderID is the object's ID in the sender's namespace.
	SenderID ObjectID
	Class    string
	Size     int64
	Fields   []WireValue
}

// ExtractMigration serializes the live local objects of the named classes
// for offloading. References between migrated objects are encoded in the
// sender's namespace and re-linked by the receiver; references to objects
// staying behind become exports (the receiver will hold stubs).
//
// The objects are not yet removed; call ConvertToStubs with the IDs the
// receiver assigned to complete the move.
func (v *VM) ExtractMigration(classNames []string) ([]MigratedObject, error) {
	batch, _, err := v.extractMigration(classNames, false)
	return batch, err
}

// extractMigration is the shared body of ExtractMigration and
// ExtractMigrationLazy. With lazy set and a FieldPredictor installed,
// predictor-cold scalar fields are withheld into the returned plan as
// KindDeferred placeholders (lazy.go).
func (v *VM) extractMigration(classNames []string, lazy bool) ([]MigratedObject, *LazyPlan, error) {
	moving := make(map[string]bool, len(classNames))
	for _, n := range classNames {
		moving[n] = true
	}
	v.mu.Lock()
	pred := v.fieldPredictor
	if !lazy {
		pred = nil
	}
	plan := &LazyPlan{deferred: make(map[ObjectID]*residual)}
	var ids []ObjectID
	for id, o := range v.objects {
		if !o.Remote && moving[o.Class.Name] {
			ids = append(ids, id)
		}
	}
	sortObjectIDs(ids)
	inBatch := make(map[ObjectID]bool, len(ids))
	for _, id := range ids {
		inBatch[id] = true
	}

	batch := make([]MigratedObject, 0, len(ids))
	for _, id := range ids {
		o := v.objects[id]
		m := MigratedObject{
			SenderID: id,
			Class:    o.Class.Name,
			Size:     o.Size,
			Fields:   make([]WireValue, len(o.Fields)),
		}
		var res *residual
		for i, val := range o.Fields {
			if pred != nil && lazyDeferrable(val) && i < len(o.Class.Fields) &&
				!pred(o.Class.Name, o.Class.Fields[i]) {
				if res == nil {
					res = &residual{fields: make(map[string]Value)}
				}
				res.fields[o.Class.Fields[i]] = val
				res.bytes += val.WireSize()
				m.Fields[i] = WireValue{Kind: KindDeferred}
				plan.DeferredFields++
				continue
			}
			w := WireValue{Kind: val.Kind, I: val.I, F: val.F, B: val.B, S: val.S, Bytes: val.Bytes}
			if val.Kind == KindRef && val.Ref != InvalidObject {
				ro, ok := v.objects[val.Ref]
				if !ok {
					v.mu.Unlock()
					return nil, nil, fmt.Errorf("vm: migrate %s#%d field %d: %w", o.Class.Name, id, i, ErrNoSuchObject)
				}
				switch {
				case ro.Remote:
					// The receiver must be the stub's host; forwarding a
					// reference to a third VM is unsupported (paper §8).
					w.Ref = WireRef{ReceiverLocal: true, ID: ro.PeerID}
				case inBatch[val.Ref]:
					// Re-linked by the receiver to the migrated copy.
					w.Ref = WireRef{ReceiverLocal: false, ID: val.Ref, Class: ro.Class.Name}
				default:
					ro.exported++
					w.Ref = WireRef{ReceiverLocal: false, ID: val.Ref, Class: ro.Class.Name}
				}
			} else if val.Kind == KindRef {
				w.Kind = KindNil
			}
			m.Fields[i] = w
		}
		if res != nil {
			// The residual keeps at most the object's own heap accounting
			// live, so withholding can never inflate the heap.
			if res.bytes > o.Size {
				res.bytes = o.Size
			}
			plan.deferred[id] = res
			plan.SavedBytes += res.bytes
		}
		batch = append(batch, m)
	}
	v.mu.Unlock()
	v.tm.migratedOut.Add(int64(len(batch)))
	v.tm.lazyDeferred.Add(plan.DeferredFields)
	return batch, plan, nil
}

// WireBytes returns the approximate on-the-wire size of the batch, used to
// charge the offload transfer to the network model.
func MigrationWireBytes(batch []MigratedObject) int64 {
	var n int64
	for i := range batch {
		n += batch[i].Size + 16 // payload plus per-object record overhead
	}
	return n
}

// AdoptMigration installs a received offload batch. If this VM already
// held a stub for an incoming object, the stub is upgraded in place to the
// real object, so existing local references stay valid. It returns the
// local ID assigned to each batch entry, in order.
func (v *VM) AdoptMigration(peerIdx int, batch []MigratedObject) ([]ObjectID, error) {
	v.mu.Lock()
	defer v.mu.Unlock()

	// Pass 1: create or upgrade every object so cross-references within
	// the batch can be re-linked.
	assigned := make([]ObjectID, len(batch))
	senderToLocal := make(map[ObjectID]ObjectID, len(batch))
	// recalled holds residuals this VM kept as the origin of an earlier
	// lazy migration of the same object: when the object comes home, the
	// withheld values fold back into any still-deferred slots.
	var recalled map[ObjectID]*residual
	for i := range batch {
		m := &batch[i]
		class := v.registry.Class(m.Class)
		if class == nil {
			return nil, fmt.Errorf("vm: adopt %s: unknown class", m.Class)
		}
		var o *Object
		if stubID, ok := v.imports[importKey{peer: peerIdx, id: m.SenderID}]; ok {
			o = v.objects[stubID]
			o.Remote = false
			o.PeerID = 0
			o.RemoteSize = 0
			delete(v.imports, importKey{peer: peerIdx, id: m.SenderID})
			if res, ok := v.residuals[stubID]; ok {
				if recalled == nil {
					recalled = make(map[ObjectID]*residual)
				}
				recalled[stubID] = res
				v.liveBytes -= res.bytes
				delete(v.residuals, stubID)
			}
		} else {
			id := v.nextID
			v.nextID++
			o = &Object{ID: id, Class: class}
			v.objects[id] = o
		}
		o.Size = m.Size
		o.Fields = make([]Value, len(class.Fields))
		v.liveBytes += m.Size
		v.objsSinceGC++
		v.bytesSinceGC += m.Size
		assigned[i] = o.ID
		senderToLocal[m.SenderID] = o.ID
		if v.hooks != nil {
			v.hooks.OnCreate(class.Name, o.ID, m.Size)
		}
	}

	// Pass 2: decode fields, re-linking intra-batch references and
	// creating stubs for references back to the sender.
	for i := range batch {
		m := &batch[i]
		o := v.objects[assigned[i]]
		for fi, w := range m.Fields {
			if fi >= len(o.Fields) {
				return nil, fmt.Errorf("vm: adopt %s: field %d out of range", m.Class, fi)
			}
			val := Value{Kind: w.Kind, I: w.I, F: w.F, B: w.B, S: w.S, Bytes: w.Bytes}
			if w.Kind == KindRef {
				if w.Ref.ReceiverLocal {
					val.Ref = w.Ref.ID
				} else if local, ok := senderToLocal[w.Ref.ID]; ok {
					val.Ref = local
				} else {
					id, err := v.stubForLocked(peerIdx, w.Ref.ID, w.Ref.Class)
					if err != nil {
						return nil, err
					}
					val.Ref = id
				}
			}
			if w.Kind == KindDeferred {
				if res := recalled[o.ID]; res != nil {
					// The object is home again; fold the withheld value back
					// in. A slot the residual no longer holds was fetched
					// while the object was away and came back concrete, so a
					// miss here means the value is unrecoverable — zero it.
					if fi < len(o.Class.Fields) {
						if rv, ok := res.fields[o.Class.Fields[fi]]; ok {
							val = rv
						} else {
							val = Nil()
						}
					} else {
						val = Nil()
					}
				} else {
					// Freshly adopted lazy field: remember the origin so the
					// first access can pull the value (fields.go fault path).
					o.lazyFrom = peerIdx
					o.lazySrc = m.SenderID
				}
			}
			o.Fields[fi] = val
		}
	}
	v.tm.migratedIn.Add(int64(len(assigned)))
	return assigned, nil
}

func (v *VM) stubForLocked(peerIdx int, peerID ObjectID, className string) (ObjectID, error) {
	class := v.registry.Class(className)
	if class == nil {
		return InvalidObject, fmt.Errorf("vm: stub for %s#%d: unknown class", className, peerID)
	}
	key := importKey{peer: peerIdx, id: peerID}
	if id, ok := v.imports[key]; ok {
		return id, nil
	}
	id := v.nextID
	v.nextID++
	v.objects[id] = &Object{ID: id, Class: class, Remote: true, PeerIdx: peerIdx, PeerID: peerID}
	v.imports[key] = id
	return id, nil
}

// ConvertToStubs completes a migration on the sender: each object becomes
// a stub pointing at the peer ID the receiver assigned, and its heap
// memory is freed. ids and peerIDs correspond positionally.
func (v *VM) ConvertToStubs(peerIdx int, ids, peerIDs []ObjectID) error {
	return v.ConvertToStubsLazy(peerIdx, ids, peerIDs, nil)
}

// ReclaimStubs re-materializes every stub hosted by the given peer as a
// fresh local object: the fallback half of the migrate path, run when a
// surrogate vanishes (paper §2: the client must keep running without the
// surrogate). The remote copies are unrecoverable, so each object
// restarts from zeroed fields with its remembered size; existing local
// references stay valid because the stub upgrades in place, exactly like
// AdoptMigration's stub upgrade. Pins the vanished peer held on local
// objects are dropped when it was the only attached peer (they could
// never be released now); with other peers still attached the pins are
// left in place — a leak, never a corruption. Returns the number of
// objects reclaimed.
func (v *VM) ReclaimStubs(peerIdx int) int {
	v.mu.Lock()
	defer v.mu.Unlock()
	n := 0
	for _, o := range v.objects {
		if !o.Remote || o.PeerIdx != peerIdx {
			continue
		}
		delete(v.imports, importKey{peer: peerIdx, id: o.PeerID})
		o.Remote = false
		o.Size = o.RemoteSize
		o.PeerID = 0
		o.PeerIdx = 0
		o.RemoteSize = 0
		o.Fields = make([]Value, len(o.Class.Fields))
		if res, ok := v.residuals[o.ID]; ok {
			// The object lazily migrated to the vanished peer earlier and we
			// are its origin: the withheld values survived locally, so the
			// re-materialized object keeps them instead of restarting zeroed.
			for name, val := range res.fields {
				if ix, ok := o.Class.FieldIndex(name); ok {
					o.Fields[ix] = val
				}
			}
			v.liveBytes -= res.bytes
			delete(v.residuals, o.ID)
		}
		v.liveBytes += o.Size
		n++
	}
	sole := true
	for i, p := range v.peers {
		if i != peerIdx && p != nil {
			sole = false
			break
		}
	}
	if sole {
		for _, o := range v.objects {
			o.exported = 0
		}
	}
	v.tm.reclaimedStubs.Add(int64(n))
	if v.tracer.Enabled() {
		v.tracer.Emit(telemetry.Span{Kind: telemetry.SpanFailover, Note: "reclaim_stubs", Peer: peerIdx, N: int64(n)})
	}
	return n
}

// Service entry points: the RPC worker pool calls these to execute requests
// on behalf of the peer VM. The time spent serving is measured and rolled
// back from this VM's clock — it is charged to the requesting VM via the
// returned elapsed duration, so that serial execution time is counted
// exactly once (paper §4's serial-execution assumption).

// ServeInvoke executes a peer-requested method invocation on a local
// object.
func (v *VM) ServeInvoke(localID ObjectID, method string, args []Value) (Value, time.Duration, error) {
	mark := v.ClockMark()
	t := v.NewThread()
	ret, err := t.Invoke(localID, method, args...)
	elapsed := v.ClockRewind(mark)
	if err != nil {
		return Nil(), 0, err
	}
	return ret, elapsed, nil
}

// ClockMark snapshots the virtual clock so a service bracket can later
// rewind it. ClockRewind returns the time accrued since the mark and
// resets the clock to it — the accrued time is charged to the requesting
// VM instead, so serial execution time is counted exactly once. The pair
// lets a pipelined frame bracket all of its calls with one mark/rewind
// rather than two lock acquisitions per call.
func (v *VM) ClockMark() time.Duration {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.clock
}

// ClockRewind returns the virtual time accrued since mark and resets the
// clock to mark (see ClockMark).
func (v *VM) ClockRewind(mark time.Duration) time.Duration {
	v.mu.Lock()
	defer v.mu.Unlock()
	elapsed := v.clock - mark
	v.clock = mark
	return elapsed
}

// ServeNative executes a native method directed back to this (client) VM.
func (v *VM) ServeNative(className, method string, self ObjectID, args []Value) (Value, time.Duration, error) {
	v.mu.Lock()
	start := v.clock
	v.mu.Unlock()
	t := v.NewThread()
	var ret Value
	var err error
	if self != InvalidObject {
		ret, err = t.Invoke(self, method, args...)
	} else {
		ret, err = t.InvokeStatic(className, method, args...)
	}
	v.mu.Lock()
	elapsed := v.clock - start
	v.clock = start
	v.mu.Unlock()
	if err != nil {
		return Nil(), 0, err
	}
	return ret, elapsed, nil
}

// ServeGetField reads a local object's field for the peer.
func (v *VM) ServeGetField(localID ObjectID, field string) (Value, error) {
	t := v.NewThread()
	return t.GetField(localID, field)
}

// ServeSetField writes a local object's field for the peer.
func (v *VM) ServeSetField(localID ObjectID, field string, val Value) error {
	t := v.NewThread()
	return t.SetField(localID, field, val)
}

// ServeGetStatic reads static data for the peer (this VM must be the
// client).
func (v *VM) ServeGetStatic(className, field string) (Value, error) {
	t := v.NewThread()
	return t.GetStatic(className, field)
}

// ServeSetStatic writes static data for the peer.
func (v *VM) ServeSetStatic(className, field string, val Value) error {
	t := v.NewThread()
	return t.SetStatic(className, field, val)
}
