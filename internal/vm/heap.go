package vm

import (
	"sort"

	"aide/internal/telemetry"
)

// Heap management and the mark-and-sweep collector.
//
// Chai (and hence the prototype) uses an incremental mark-and-sweep
// algorithm that is triggered by space limitations, the number of objects
// created since the last collection, and the amount of memory occupied by
// objects created since the last collection; this causes the collector to
// perform at least a partial sweep often, producing frequent memory usage
// updates (paper §5.1). This VM reproduces the trigger structure and the
// post-cycle reporting with a stop-the-world mark-and-sweep: deleted
// objects accrue as garbage between cycles and are reclaimed (and reported
// to monitoring) when a cycle runs.

func (v *VM) allocLocked(class *Class, size int64) (*Object, error) {
	if size < 0 {
		size = 0
	}
	if v.liveBytes+v.garbageBytes+size > v.cfg.HeapCapacity {
		v.collectLocked()
	}
	if v.liveBytes+size > v.cfg.HeapCapacity {
		// The collector could not make room. Consult the memory-pressure
		// handler (the AIDE platform offloads here); the unmodified VM
		// path fails with an out-of-memory error.
		if v.pressure != nil {
			h := v.pressure
			needed := v.liveBytes + size - v.cfg.HeapCapacity
			// The handler partitions and offloads, which re-enters the VM;
			// release the lock for the duration.
			v.mu.Unlock()
			retry := h(needed)
			v.mu.Lock()
			if retry {
				v.collectLocked()
			}
		}
		if v.liveBytes+size > v.cfg.HeapCapacity {
			return nil, ErrOutOfMemory
		}
	}

	id := v.nextID
	v.nextID++
	o := &Object{
		ID:     id,
		Class:  class,
		Fields: make([]Value, len(class.Fields)),
		Size:   size,
	}
	v.objects[id] = o
	v.liveBytes += size
	v.objsSinceGC++
	v.bytesSinceGC += size
	v.tm.objectsCreated.Inc()
	v.tm.allocBytes.Add(size)
	// Protect the newborn before any threshold collection can see it.
	v.addTempLocked(id)
	if v.hooks != nil {
		v.hooks.OnCreate(class.Name, id, size)
	}
	v.chargeMonitorLocked()

	if v.objsSinceGC >= v.cfg.GCObjectTrigger || v.bytesSinceGC >= v.cfg.GCBytesTrigger {
		v.collectLocked()
	}
	return o, nil
}

// Collect runs a full garbage-collection cycle.
func (v *VM) Collect() {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.collectLocked()
}

// collectLocked marks from roots and sweeps unmarked, non-exported local
// objects and unreferenced stubs. Stub collection notifies the peer so it
// can decrement its export count (the "simple distributed garbage
// collection scheme" of paper §4).
func (v *VM) collectLocked() {
	before := v.liveBytes
	garbageBefore := v.garbageBytes

	for _, o := range v.objects {
		o.marked = false
	}

	var stack []ObjectID
	push := func(id ObjectID) {
		if o, ok := v.objects[id]; ok && !o.marked {
			o.marked = true
			stack = append(stack, id)
		}
	}
	for _, id := range v.roots {
		push(id)
	}
	for _, slots := range v.statics {
		for _, val := range slots {
			if val.Kind == KindRef {
				push(val.Ref)
			}
		}
	}
	for _, f := range v.frames {
		for _, id := range f.temps {
			push(id)
		}
	}
	for _, id := range v.rootTemps {
		push(id)
	}
	for id, o := range v.objects {
		if o.exported > 0 {
			push(id)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		o := v.objects[id]
		if o == nil || o.Remote {
			continue // stubs hold no outgoing local references
		}
		for _, val := range o.Fields {
			if val.Kind == KindRef {
				push(val.Ref)
			}
		}
	}

	// Sweep in ID order so that monitoring (and hence recorded traces) is
	// deterministic run to run.
	var dead []ObjectID
	for id, o := range v.objects {
		if !o.marked {
			dead = append(dead, id)
		}
	}
	sortObjectIDs(dead)
	var released []importKey
	for _, id := range dead {
		o := v.objects[id]
		if o.Remote {
			released = append(released, importKey{peer: o.PeerIdx, id: o.PeerID})
			delete(v.imports, importKey{peer: o.PeerIdx, id: o.PeerID})
			delete(v.objects, id)
			// A dead stub can never fault its lazily withheld fields back.
			v.dropResidualLocked(id)
			// The migrated object is now releasable on the peer; tell
			// monitoring so class memory accounting follows the release.
			if v.hooks != nil && o.RemoteSize > 0 {
				v.hooks.OnDelete(o.Class.Name, id, o.RemoteSize)
				v.chargeMonitorLocked()
			}
			continue
		}
		v.liveBytes -= o.Size
		delete(v.objects, id)
		if v.hooks != nil {
			v.hooks.OnDelete(o.Class.Name, id, o.Size)
		}
		v.chargeMonitorLocked()
	}

	v.garbageBytes = 0
	v.objsSinceGC = 0
	v.bytesSinceGC = 0
	v.collections++
	v.tm.gcCycles.Inc()
	reclaimed := (before - v.liveBytes) + garbageBefore
	if reclaimed > 0 {
		v.tm.gcReclaimed.Add(reclaimed)
	}
	if v.tracer.Enabled() {
		v.tracer.Emit(telemetry.Span{Kind: telemetry.SpanGC, N: int64(len(dead)), Bytes: reclaimed})
	}
	freed := v.liveBytes < before || garbageBefore > 0
	v.lastGCFreedAny = freed
	free := v.cfg.HeapCapacity - v.liveBytes
	hooks := v.hooks
	peers := append([]Peer(nil), v.peers...)
	if hooks != nil {
		v.chargeMonitorLocked()
	}
	if hooks != nil || len(released) > 0 {
		// Emit the resource report and distributed-GC releases without
		// the VM lock held: GC listeners may partition and offload, which
		// re-enters the VM (the adaptive platform's trigger path).
		sort.Slice(released, func(i, j int) bool {
			if released[i].peer != released[j].peer {
				return released[i].peer < released[j].peer
			}
			return released[i].id < released[j].id
		})
		v.mu.Unlock()
		if hooks != nil {
			hooks.OnGC(free, v.cfg.HeapCapacity, freed)
		}
		for _, k := range released {
			if k.peer >= 0 && k.peer < len(peers) {
				peers[k.peer].Release(k.id)
			}
		}
		v.mu.Lock()
	}
}

// FreeObject explicitly discards a live object: it becomes garbage
// reclaimed at the next cycle. Application code uses this to model
// deterministic deaths; reachability-based collection handles everything
// else.
func (v *VM) FreeObject(id ObjectID) error {
	v.mu.Lock()
	defer v.mu.Unlock()
	o, ok := v.objects[id]
	if !ok {
		return ErrNoSuchObject
	}
	if o.Remote {
		// Dropping a stub: release the peer reference immediately and
		// account for the migrated object's memory leaving the platform.
		delete(v.objects, id)
		delete(v.imports, importKey{peer: o.PeerIdx, id: o.PeerID})
		v.dropResidualLocked(id)
		if v.hooks != nil && o.RemoteSize > 0 {
			v.hooks.OnDelete(o.Class.Name, id, o.RemoteSize)
			v.chargeMonitorLocked()
		}
		peer := v.peerAt(o.PeerIdx)
		if peer != nil {
			v.mu.Unlock()
			peer.Release(o.PeerID)
			v.mu.Lock()
		}
		return nil
	}
	delete(v.objects, id)
	v.liveBytes -= o.Size
	v.garbageBytes += o.Size
	if v.hooks != nil {
		v.hooks.OnDelete(o.Class.Name, id, o.Size)
	}
	v.chargeMonitorLocked()
	return nil
}
