package vm

import (
	"errors"
	"testing"
)

func wireRegistry(t *testing.T) *Registry {
	t.Helper()
	reg := NewRegistry()
	mustRegister(reg, ClassSpec{Name: "Node", Fields: []string{"next", "label"}})
	mustRegister(reg, ClassSpec{Name: "Leaf", Fields: []string{"v"}})
	return reg
}

func TestEncodeOutgoingScalars(t *testing.T) {
	v := New(wireRegistry(t), Config{})
	for _, val := range []Value{Nil(), Int(4), Float(1.5), Bool(true), Str("x"), Blob([]byte{1})} {
		w, err := v.EncodeOutgoing(0, val)
		if err != nil {
			t.Fatalf("%v: %v", val, err)
		}
		if w.Kind != val.Kind {
			t.Fatalf("kind changed: %v -> %v", val.Kind, w.Kind)
		}
		back, err := v.DecodeIncoming(0, w)
		if err != nil {
			t.Fatal(err)
		}
		if back.Kind != val.Kind || back.I != val.I || back.S != val.S {
			t.Fatalf("round trip changed %v -> %v", val, back)
		}
	}
}

func TestEncodeOutgoingExportsLocalRef(t *testing.T) {
	v := New(wireRegistry(t), Config{})
	th := v.NewThread()
	id, err := th.New("Leaf", 16)
	if err != nil {
		t.Fatal(err)
	}
	w, err := v.EncodeOutgoing(0, RefOf(id))
	if err != nil {
		t.Fatal(err)
	}
	if w.Ref.ReceiverLocal || w.Ref.ID != id || w.Ref.Class != "Leaf" {
		t.Fatalf("wire ref = %+v", w.Ref)
	}
	// The export pins the object against collection even with no local
	// roots.
	th.ClearTemps()
	v.Collect()
	if v.Object(id) == nil {
		t.Fatal("exported object collected")
	}
	v.ReleaseExport(id)
	v.Collect()
	if v.Object(id) != nil {
		t.Fatal("released object survived")
	}
}

func TestEncodeOutgoingNilAndDangling(t *testing.T) {
	v := New(wireRegistry(t), Config{})
	w, err := v.EncodeOutgoing(0, RefOf(InvalidObject))
	if err != nil || w.Kind != KindNil {
		t.Fatalf("nil ref: %+v %v", w, err)
	}
	if _, err := v.EncodeOutgoing(0, RefOf(ObjectID(777))); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("dangling ref err = %v", err)
	}
}

func TestStubForDeduplicates(t *testing.T) {
	v := New(wireRegistry(t), Config{})
	a, err := v.StubFor(0, ObjectID(5), "Leaf")
	if err != nil {
		t.Fatal(err)
	}
	b, err := v.StubFor(0, ObjectID(5), "Leaf")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same peer ID must map to one stub")
	}
	o := v.Object(a)
	if o == nil || !o.Remote || o.PeerID != 5 || o.Class.Name != "Leaf" {
		t.Fatalf("stub = %+v", o)
	}
	if _, err := v.StubFor(0, ObjectID(6), "Nope"); err == nil {
		t.Fatal("unknown class accepted")
	}
}

func TestDecodeIncomingCreatesStub(t *testing.T) {
	v := New(wireRegistry(t), Config{})
	val, err := v.DecodeIncoming(0, WireValue{Kind: KindRef, Ref: WireRef{ID: 9, Class: "Leaf"}})
	if err != nil {
		t.Fatal(err)
	}
	o := v.Object(val.Ref)
	if o == nil || !o.Remote || o.PeerID != 9 {
		t.Fatalf("decoded stub = %+v", o)
	}
	// ReceiverLocal refs must resolve to existing objects.
	if _, err := v.DecodeIncoming(0, WireValue{Kind: KindRef, Ref: WireRef{ReceiverLocal: true, ID: 12345}}); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("bogus receiver-local ref err = %v", err)
	}
	good, err := v.DecodeIncoming(0, WireValue{Kind: KindRef, Ref: WireRef{ReceiverLocal: true, ID: val.Ref}})
	if err != nil || good.Ref != val.Ref {
		t.Fatalf("receiver-local decode: %v %v", good, err)
	}
}

func TestMigrationRoundTripRelinksReferences(t *testing.T) {
	reg := wireRegistry(t)
	a := New(reg, Config{Role: RoleClient, HeapCapacity: 1 << 20})
	b := New(reg, Config{Role: RoleSurrogate, HeapCapacity: 1 << 20})

	// Build a 3-node list on A, plus a Leaf that stays behind.
	th := a.NewThread()
	leaf, err := th.New("Leaf", 8)
	if err != nil {
		t.Fatal(err)
	}
	var nodes []ObjectID
	var prev ObjectID
	for i := 0; i < 3; i++ {
		n, err := th.New("Node", 100)
		if err != nil {
			t.Fatal(err)
		}
		if prev != InvalidObject {
			if err := th.SetField(n, "next", RefOf(prev)); err != nil {
				t.Fatal(err)
			}
		}
		if err := th.SetField(n, "label", RefOf(leaf)); err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
		prev = n
	}
	a.SetRoot("head", prev)
	a.SetRoot("leaf", leaf)

	batch, err := a.ExtractMigration([]string{"Node"})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 3 {
		t.Fatalf("batch = %d objects", len(batch))
	}
	if got := MigrationWireBytes(batch); got < 300 {
		t.Fatalf("wire bytes = %d", got)
	}
	assigned, err := b.AdoptMigration(0, batch)
	if err != nil {
		t.Fatal(err)
	}
	ids := make([]ObjectID, len(batch))
	for i := range batch {
		ids[i] = batch[i].SenderID
	}
	if err := a.ConvertToStubs(0, ids, assigned); err != nil {
		t.Fatal(err)
	}

	// On B: intra-batch next references point at B-local objects; label
	// references are stubs back to A's leaf.
	for i, id := range assigned {
		o := b.Object(id)
		if o == nil || o.Remote {
			t.Fatalf("adopted object %d missing", i)
		}
		next := o.Fields[0]
		if next.Kind == KindRef && next.Ref != InvalidObject {
			no := b.Object(next.Ref)
			if no == nil || no.Remote {
				t.Fatal("intra-batch reference not re-linked locally")
			}
		}
		label := o.Fields[1]
		lo := b.Object(label.Ref)
		if lo == nil || !lo.Remote || lo.PeerID != leaf {
			t.Fatalf("leaf reference must be a stub to A: %+v", lo)
		}
	}
	// On A: nodes are stubs; heap space reclaimed.
	for _, id := range nodes {
		o := a.Object(id)
		if o == nil || !o.Remote {
			t.Fatal("sender object not converted to stub")
		}
	}
	if a.Heap().Live != 8 { // only the leaf remains
		t.Fatalf("A live = %d, want 8", a.Heap().Live)
	}
	if b.Heap().Live != 300 {
		t.Fatalf("B live = %d, want 300", b.Heap().Live)
	}
}

func TestAdoptMigrationUpgradesExistingStub(t *testing.T) {
	reg := wireRegistry(t)
	a := New(reg, Config{Role: RoleClient})
	b := New(reg, Config{Role: RoleSurrogate})

	th := a.NewThread()
	obj, err := th.New("Leaf", 64)
	if err != nil {
		t.Fatal(err)
	}
	a.SetRoot("o", obj)

	// B already holds a stub for A's object (it received a reference
	// earlier).
	stub, err := b.StubFor(0, obj, "Leaf")
	if err != nil {
		t.Fatal(err)
	}

	batch, err := a.ExtractMigration([]string{"Leaf"})
	if err != nil {
		t.Fatal(err)
	}
	assigned, err := b.AdoptMigration(0, batch)
	if err != nil {
		t.Fatal(err)
	}
	if assigned[0] != stub {
		t.Fatalf("stub must upgrade in place: got %d, had stub %d", assigned[0], stub)
	}
	o := b.Object(stub)
	if o.Remote || o.Size != 64 {
		t.Fatalf("upgraded stub = %+v", o)
	}
}

func TestConvertToStubsValidation(t *testing.T) {
	v := New(wireRegistry(t), Config{})
	if err := v.ConvertToStubs(0, []ObjectID{1}, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if err := v.ConvertToStubs(0, []ObjectID{99}, []ObjectID{1}); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("unknown object err = %v", err)
	}
	th := v.NewThread()
	id, err := th.New("Leaf", 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := v.ConvertToStubs(0, []ObjectID{id}, []ObjectID{7}); err != nil {
		t.Fatal(err)
	}
	if err := v.ConvertToStubs(0, []ObjectID{id}, []ObjectID{7}); err == nil {
		t.Fatal("double conversion accepted")
	}
}

func TestExtractMigrationUnknownClassIsEmpty(t *testing.T) {
	v := New(wireRegistry(t), Config{})
	batch, err := v.ExtractMigration([]string{"Ghost"})
	if err != nil || len(batch) != 0 {
		t.Fatalf("batch = %v, %v", batch, err)
	}
}
