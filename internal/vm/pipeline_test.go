package vm

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// fakePipePeer is a peer whose remote end predates MsgInvokeBatch: every
// pipelined frame is rejected with ErrPipelineUnsupported, while plain
// invocations succeed and are logged in order. It returns values in the
// client's namespace, the way remote.Peer does after decoding.
type fakePipePeer struct {
	self ObjectID // the client-side stub, for ref-returning replies

	mu        sync.Mutex
	invokes   []string
	pipelines int
}

func (p *fakePipePeer) InvokeRemote(id ObjectID, method string, args []Value) (Value, time.Duration, error) {
	p.mu.Lock()
	p.invokes = append(p.invokes, method)
	p.mu.Unlock()
	switch method {
	case "getVal":
		return RefOf(p.self), 0, nil
	case "setVal":
		return Int(args[0].I + 1), 0, nil
	}
	return Nil(), 0, errors.New("fake: no such method " + method)
}

func (p *fakePipePeer) InvokePipeline(ctx context.Context, calls []PipelineCall) (PipelineOutcome, error) {
	p.mu.Lock()
	p.pipelines++
	p.mu.Unlock()
	return PipelineOutcome{}, fmt.Errorf("%w: unknown request kind", ErrPipelineUnsupported)
}

func (p *fakePipePeer) GetFieldRemote(ObjectID, string) (Value, error) {
	return Nil(), errors.New("fake: unused")
}
func (p *fakePipePeer) SetFieldRemote(ObjectID, string, Value) error { return errors.New("fake") }
func (p *fakePipePeer) GetStaticRemote(string, string) (Value, error) {
	return Nil(), errors.New("fake: unused")
}
func (p *fakePipePeer) SetStaticRemote(string, string, Value) error { return errors.New("fake") }
func (p *fakePipePeer) InvokeNativeRemote(string, string, ObjectID, bool, []Value) (Value, time.Duration, error) {
	return Nil(), 0, errors.New("fake: unused")
}
func (p *fakePipePeer) Release(ObjectID) {}

// The fake must satisfy both the base peer contract and the pipelined
// extension, so batchTarget selects it and the frame rejection exercises
// the fallback.
var (
	_ Peer         = (*fakePipePeer)(nil)
	_ PipelinePeer = (*fakePipePeer)(nil)
)

// TestPipelineFallsBackSequentialOnOldPeer: a peer that rejects
// MsgInvokeBatch with "unknown request kind" makes the pipeline degrade
// to plain sequential invocations — same results, one InvokeRemote per
// call, in pipeline order.
func TestPipelineFallsBackSequentialOnOldPeer(t *testing.T) {
	v := New(migRegistry(t), Config{Role: RoleClient, HeapCapacity: 1 << 20, CPUSpeed: 1})
	fp := &fakePipePeer{}
	idx := v.AttachPeer(fp)
	stub, err := v.StubFor(idx, ObjectID(7), "Node")
	if err != nil {
		t.Fatal(err)
	}
	fp.self = stub
	v.SetRoot("stub", stub)

	p := v.NewPipeline()
	a := p.Invoke(stub, "getVal")
	b := p.Invoke(a, "setVal", Int(4))
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res[0].Kind != KindRef || res[0].Ref != stub {
		t.Fatalf("res[0] = %v, want ref to the stub", res[0])
	}
	if res[1].I != 5 {
		t.Fatalf("res[1] = %v, want 5", res[1])
	}
	if bv, berr := b.Value(); berr != nil || bv.I != 5 {
		t.Fatalf("promise b = %v err=%v, want 5", bv, berr)
	}
	fp.mu.Lock()
	defer fp.mu.Unlock()
	if fp.pipelines != 1 {
		t.Fatalf("frame attempted %d times, want exactly 1", fp.pipelines)
	}
	if len(fp.invokes) != 2 || fp.invokes[0] != "getVal" || fp.invokes[1] != "setVal" {
		t.Fatalf("fallback invokes = %v, want sequential [getVal setVal]", fp.invokes)
	}
}

// TestPipelineLocalChainRunsSequential: a chain whose receivers are local
// is unbatchable and runs as ordinary in-order invocations, including
// promise-argument substitution.
func TestPipelineLocalChainRunsSequential(t *testing.T) {
	v := New(migRegistry(t), Config{Role: RoleClient, HeapCapacity: 1 << 20, CPUSpeed: 1})
	th := v.NewThread()
	n, err := th.New("Node", 512)
	if err != nil {
		t.Fatal(err)
	}
	v.SetRoot("n", n)

	p := v.NewPipeline()
	p.Invoke(n, "setVal", Int(9))
	b := p.Invoke(n, "getVal")
	p.Invoke(n, "setVal", b) // promise as argument
	d := p.Invoke(n, "getVal")
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res[1].I != 9 || res[3].I != 9 {
		t.Fatalf("res = %v, want getVal results of 9", res)
	}
	if dv, derr := d.Value(); derr != nil || dv.I != 9 {
		t.Fatalf("promise d = %v err=%v, want 9", dv, derr)
	}
}

// TestPipelineSequentialErrorPoisonsDependents: when a sequential run
// fails at call k, promises k..N all observe the same *PipelineError and
// the calls after k never execute.
func TestPipelineSequentialErrorPoisonsDependents(t *testing.T) {
	v := New(migRegistry(t), Config{Role: RoleClient, HeapCapacity: 1 << 20, CPUSpeed: 1})
	th := v.NewThread()
	n, err := th.New("Node", 512)
	if err != nil {
		t.Fatal(err)
	}
	v.SetRoot("n", n)

	p := v.NewPipeline()
	a := p.Invoke(n, "setVal", Int(3))
	bad := p.Invoke(n, "nosuch")
	tail := p.Invoke(n, "setVal", Int(99))
	if _, err := p.Run(context.Background()); err == nil {
		t.Fatal("run must surface the failing call")
	}
	if _, aerr := a.Value(); aerr != nil {
		t.Fatalf("call before the failure errored: %v", aerr)
	}
	_, berr := bad.Value()
	_, terr := tail.Value()
	var pe *PipelineError
	if !errors.As(berr, &pe) || pe.Index != 1 {
		t.Fatalf("failing promise error = %v, want *PipelineError at index 1", berr)
	}
	if berr != terr {
		t.Fatalf("dependent promise got a different error: %v vs %v", berr, terr)
	}
	if got, err := th.GetField(n, "val"); err != nil || got.I != 3 {
		t.Fatalf("val = %v err=%v: the call after the failure must not execute", got, err)
	}
}

// TestPipelineBuildErrorsAndSingleUse: malformed receivers poison the
// pipeline before anything executes, and a pipeline runs at most once.
func TestPipelineBuildErrorsAndSingleUse(t *testing.T) {
	v := New(migRegistry(t), Config{Role: RoleClient, HeapCapacity: 1 << 20, CPUSpeed: 1})

	other := v.NewPipeline()
	foreign := other.Invoke(ObjectID(1), "getVal")

	p := v.NewPipeline()
	p.Invoke(foreign, "getVal") // promise from another pipeline
	if _, err := p.Run(context.Background()); err == nil {
		t.Fatal("foreign promise must poison the pipeline")
	}

	empty := v.NewPipeline()
	if res, err := empty.Run(context.Background()); err != nil || res != nil {
		t.Fatalf("empty run = %v, %v; want nil, nil", res, err)
	}
	if _, err := empty.Run(context.Background()); err == nil {
		t.Fatal("a pipeline must run at most once")
	}

	q := v.NewPipeline()
	pr := q.Invoke(Int(3), "getVal") // non-reference receiver
	if _, err := q.Run(context.Background()); err == nil {
		t.Fatal("scalar receiver must poison the pipeline")
	}
	if _, err := pr.Value(); err == nil {
		t.Fatal("promise on a poisoned pipeline must error")
	}
}
