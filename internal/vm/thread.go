package vm

import (
	"fmt"
	"time"
)

// frame is one entry of the logical application thread's call stack. The
// platform's serial-execution assumption (paper §4) means at most one
// application frame stack is active per VM; RPC service threads execute on
// behalf of the peer but never concurrently with local application code.
type frame struct {
	class  string
	method string

	// self accumulates Work() time exclusive of nested calls, at client
	// CPU speed (paper Figure 9).
	self time.Duration

	// temps are JNI-style local references: objects created or received in
	// this frame are GC roots until the frame exits.
	temps []ObjectID

	// thread is the execution context handed to this frame's method body.
	// Embedding it in the (pooled) frame makes it allocation-free; reuse
	// is safe because a Thread holds only the VM pointer, which is the
	// same for every frame of the pool's VM.
	thread Thread
}

// getFrameLocked returns a recycled (or fresh) frame initialized for one
// method invocation. Called with v.mu held.
func (v *VM) getFrameLocked(className, method string) *frame {
	if n := len(v.framePool); n > 0 {
		f := v.framePool[n-1]
		v.framePool = v.framePool[:n-1]
		f.class, f.method, f.self = className, method, 0
		f.temps = f.temps[:0]
		return f
	}
	f := &frame{class: className, method: method}
	f.thread.vm = v
	return f
}

// putFrameLocked recycles a popped frame. Called with v.mu held; the
// frame must no longer be on v.frames.
func (v *VM) putFrameLocked(f *frame) {
	if len(v.framePool) < 64 {
		v.framePool = append(v.framePool, f)
	}
}

// Thread is the execution context handed to method bodies. It is a
// lightweight view over the VM; create one per logical entry point with
// NewThread.
type Thread struct {
	vm *VM
}

// NewThread returns an execution context for the VM.
func (v *VM) NewThread() *Thread { return &Thread{vm: v} }

// VM returns the underlying VM.
func (t *Thread) VM() *VM { return t.vm }

func (v *VM) currentClassLocked() string {
	if len(v.frames) == 0 {
		return ""
	}
	return v.frames[len(v.frames)-1].class
}

func (v *VM) addTempLocked(id ObjectID) {
	if len(v.frames) == 0 {
		v.rootTemps = append(v.rootTemps, id)
		return
	}
	f := v.frames[len(v.frames)-1]
	f.temps = append(f.temps, id)
}

// ClearTemps releases the GC protection of objects created at top level
// (outside any method frame). Driver code calls this once the objects it
// wants to keep are reachable from named roots or object fields.
func (t *Thread) ClearTemps() {
	v := t.vm
	v.mu.Lock()
	defer v.mu.Unlock()
	v.rootTemps = v.rootTemps[:0]
}

// Work simulates d of pure computation at client speed: the clock advances
// by d scaled by the VM's CPU speed, and d accrues to the current method's
// self time.
func (t *Thread) Work(d time.Duration) {
	if d <= 0 {
		return
	}
	v := t.vm
	v.mu.Lock()
	defer v.mu.Unlock()
	v.clock += time.Duration(float64(d) / v.cfg.CPUSpeed)
	if len(v.frames) > 0 {
		v.frames[len(v.frames)-1].self += d
	}
}

// New allocates an object of the named class occupying size bytes. New
// objects are always created on the VM that performs the creation
// operation (paper §4).
func (t *Thread) New(className string, size int64) (ObjectID, error) {
	v := t.vm
	class := v.registry.Class(className)
	if class == nil {
		return InvalidObject, fmt.Errorf("vm: new %s: unknown class", className)
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	o, err := v.allocLocked(class, size)
	if err != nil {
		return InvalidObject, fmt.Errorf("vm: new %s: %w", className, err)
	}
	return o.ID, nil
}

// Free explicitly discards an object (it becomes garbage for the next
// collection cycle).
func (t *Thread) Free(id ObjectID) error { return t.vm.FreeObject(id) }

// Invoke calls method on the target object. If the object lives on the
// peer VM, the invocation transparently crosses the network: the thread is
// not migrated; the invocation follows the placement of the object (paper
// §3.2).
func (t *Thread) Invoke(target ObjectID, method string, args ...Value) (Value, error) {
	v := t.vm
	retried, drains := false, 0
	for {
		v.mu.Lock()
		o, ok := v.objects[target]
		if !ok {
			v.mu.Unlock()
			return Nil(), fmt.Errorf("vm: invoke %s on #%d: %w", method, target, ErrNoSuchObject)
		}
		if !o.Remote {
			return v.invokeLocalLocked(o, method, args)
		}
		peerIdx := o.PeerIdx
		used := v.peerAt(peerIdx)
		ret, err := v.invokeRemoteLocked(o, method, args)
		if err != nil && !retried && v.failoverIfGone(peerIdx, err) {
			// The handler re-homed the peer's objects locally; the retry
			// re-reads the object and executes on the reclaimed copy.
			retried = true
			continue
		}
		if err != nil && drains < maxDrainRedirects && v.drainIfRedirected(peerIdx, used, err) {
			// The hosting surrogate is draining and the handler re-pointed
			// the peer slot at the handoff destination; the rejected call
			// never executed, so the retry is exactly-once safe. Several
			// redirects may chain when handoffs ping-pong under the call.
			drains++
			continue
		}
		return ret, err
	}
}

// invokeRemoteLocked forwards an invocation to the peer VM, releasing the
// VM lock while waiting so the peer can call back in. Called with the lock
// held; returns with it released.
func (v *VM) invokeRemoteLocked(o *Object, method string, args []Value) (Value, error) {
	v.tm.invokeRemote.Inc()
	peer := v.peerAt(o.PeerIdx)
	if peer == nil {
		idx := o.PeerIdx
		callee := o.Class.Name
		v.mu.Unlock()
		return Nil(), fmt.Errorf("vm: invoke %s.%s: %w", callee, method, v.peerSlotErr(idx))
	}
	caller := v.currentClassLocked()
	argBytes := WireSizeAll(args)
	peerID := o.PeerID
	callee := o.Class.Name
	hooks := v.hooks
	v.mu.Unlock()

	ret, elapsed, err := peer.InvokeRemote(peerID, method, args)
	if err != nil {
		return Nil(), fmt.Errorf("vm: remote invoke %s.%s: %w", callee, method, err)
	}

	v.mu.Lock()
	v.clock += elapsed
	if ret.Kind == KindRef {
		v.addTempLocked(ret.Ref)
	}
	if hooks != nil {
		hooks.OnInvoke(caller, callee, method, o.ID, argBytes, ret.WireSize(), 0, false, false)
		v.chargeMonitorLocked()
	}
	v.mu.Unlock()
	return ret, nil
}

// invokeLocalLocked executes a method body on this VM. Called with the
// lock held; returns with it released.
func (v *VM) invokeLocalLocked(o *Object, method string, args []Value) (Value, error) {
	v.tm.invokeLocal.Inc()
	m := o.Class.Method(method)
	if m == nil {
		v.mu.Unlock()
		return Nil(), fmt.Errorf("vm: %s.%s: %w", o.Class.Name, method, ErrNoSuchMethod)
	}
	// Native methods are implemented with native code and cannot migrate;
	// instance natives only exist on pinned classes, whose objects never
	// leave the client, so reaching here with a native method on the
	// surrogate means the stateless enhancement is required to proceed.
	if m.Native && v.cfg.Role == RoleSurrogate && !(m.Stateless && v.statelessLocal) {
		return v.routeNativeToClientLocked(o.Class.Name, method, o.ID, args)
	}
	return v.runBodyLocked(o.Class.Name, m, o.ID, args)
}

// runBodyLocked pushes a frame, runs the body (without the lock), pops the
// frame, and reports monitoring. Called with the lock held; returns with it
// released.
func (v *VM) runBodyLocked(className string, m *Method, self ObjectID, args []Value) (Value, error) {
	caller := v.currentClassLocked()
	argBytes := WireSizeAll(args)
	f := v.getFrameLocked(className, m.Name)
	if self != InvalidObject {
		f.temps = append(f.temps, self)
	}
	for i := range args {
		if args[i].Kind == KindRef {
			f.temps = append(f.temps, args[i].Ref)
		}
	}
	v.frames = append(v.frames, f)
	v.mu.Unlock()

	ret, err := m.Body(&f.thread, self, args)

	v.mu.Lock()
	v.frames = v.frames[:len(v.frames)-1]
	if err != nil {
		v.putFrameLocked(f)
		v.mu.Unlock()
		return Nil(), fmt.Errorf("vm: %s.%s: %w", className, m.Name, err)
	}
	if ret.Kind == KindRef {
		v.addTempLocked(ret.Ref)
	}
	if v.hooks != nil {
		v.hooks.OnInvoke(caller, className, m.Name, self, argBytes, ret.WireSize(), f.self, m.Native, m.Stateless)
		v.chargeMonitorLocked()
	}
	v.putFrameLocked(f)
	v.mu.Unlock()
	return ret, nil
}

// routeNativeToClientLocked directs a native invocation back to the client
// VM (paper §3.2: "native invocations are directed back to the client").
// Called with the lock held; returns with it released.
func (v *VM) routeNativeToClientLocked(className, method string, self ObjectID, args []Value) (Value, error) {
	peer := v.peerAt(0) // natives are directed back to the client
	if peer == nil {
		v.mu.Unlock()
		return Nil(), fmt.Errorf("vm: native %s.%s on surrogate: %w", className, method, ErrNotAttached)
	}
	caller := v.currentClassLocked()
	argBytes := WireSizeAll(args)
	hooks := v.hooks
	peerSelf := ObjectID(0)
	selfIsCallerLocal := false
	if self != InvalidObject {
		if o, ok := v.objects[self]; ok && o.Remote {
			peerSelf = o.PeerID
		} else {
			peerSelf = self
			selfIsCallerLocal = true
		}
	}
	v.mu.Unlock()

	ret, elapsed, err := peer.InvokeNativeRemote(className, method, peerSelf, selfIsCallerLocal, args)
	if err != nil {
		return Nil(), fmt.Errorf("vm: native %s.%s via client: %w", className, method, err)
	}
	v.mu.Lock()
	v.clock += elapsed
	if ret.Kind == KindRef {
		v.addTempLocked(ret.Ref)
	}
	if hooks != nil {
		hooks.OnInvoke(caller, className, method, self, argBytes, ret.WireSize(), 0, true, false)
		v.chargeMonitorLocked()
	}
	v.mu.Unlock()
	return ret, nil
}

// InvokeStatic calls a static (class) method. Static methods written in
// Java may execute locally on either VM; native statics on the surrogate
// are directed back to the client unless stateless and the §5.2
// enhancement is on (paper §4, §5.2).
func (t *Thread) InvokeStatic(className, method string, args ...Value) (Value, error) {
	v := t.vm
	class := v.registry.Class(className)
	if class == nil {
		return Nil(), fmt.Errorf("vm: static %s.%s: unknown class", className, method)
	}
	m := class.Method(method)
	if m == nil {
		return Nil(), fmt.Errorf("vm: static %s.%s: %w", className, method, ErrNoSuchMethod)
	}
	v.mu.Lock()
	if m.Native && v.cfg.Role == RoleSurrogate && !(m.Stateless && v.statelessLocal) {
		return v.routeNativeToClientLocked(className, method, InvalidObject, args)
	}
	return v.runBodyLocked(className, m, InvalidObject, args)
}
