package vm

import "fmt"

// WireRef is an object reference as it appears on the network. Each VM has
// a private reference namespace; a reference on the wire is therefore
// tagged: either it names an object in the *receiver's* namespace (the
// sender was holding a stub for the receiver's object) or it names an
// object in the *sender's* namespace, in which case the receiver maps it to
// a local stub placeholder (paper §3.2).
type WireRef struct {
	// ReceiverLocal reports that ID is in the receiver's namespace.
	ReceiverLocal bool
	ID            ObjectID

	// Class names the referent's class, set when ReceiverLocal is false so
	// the receiver can type its stub.
	Class string
}

// WireValue is a Value in network form: identical to Value except that
// references are namespace-tagged.
type WireValue struct {
	Kind  ValueKind
	I     int64
	F     float64
	B     bool
	S     string
	Bytes []byte
	Ref   WireRef
}

// EncodeOutgoing converts a local value to wire form for the peer with the
// given index. Sending a reference to a locally hosted object exports it:
// the object is pinned against collection until the peer releases it
// (distributed GC). Forwarding a reference to an object hosted by a
// *different* surrogate is rejected: surrogate-to-surrogate references are
// the paper's future work (§2, §8).
func (v *VM) EncodeOutgoing(peerIdx int, val Value) (WireValue, error) {
	w := WireValue{Kind: val.Kind, I: val.I, F: val.F, B: val.B, S: val.S, Bytes: val.Bytes}
	if val.Kind != KindRef {
		return w, nil
	}
	if val.Ref == InvalidObject {
		w.Kind = KindNil
		return w, nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	o, ok := v.objects[val.Ref]
	if !ok {
		return WireValue{}, fmt.Errorf("vm: encode ref #%d: %w", val.Ref, ErrNoSuchObject)
	}
	if o.Remote {
		if o.PeerIdx != peerIdx {
			return WireValue{}, fmt.Errorf("vm: encode ref #%d: cross-surrogate references are unsupported", val.Ref)
		}
		w.Ref = WireRef{ReceiverLocal: true, ID: o.PeerID}
		return w, nil
	}
	o.exported++
	w.Ref = WireRef{ReceiverLocal: false, ID: o.ID, Class: o.Class.Name}
	return w, nil
}

// EncodeOutgoingAll converts a parameter list to wire form.
func (v *VM) EncodeOutgoingAll(peerIdx int, vals []Value) ([]WireValue, error) {
	out := make([]WireValue, len(vals))
	for i, val := range vals {
		w, err := v.EncodeOutgoing(peerIdx, val)
		if err != nil {
			return nil, err
		}
		out[i] = w
	}
	return out, nil
}

// DecodeIncoming converts a wire value received from the peer into a local
// value, creating stub placeholders for foreign references as needed.
func (v *VM) DecodeIncoming(peerIdx int, w WireValue) (Value, error) {
	val := Value{Kind: w.Kind, I: w.I, F: w.F, B: w.B, S: w.S, Bytes: w.Bytes}
	if w.Kind != KindRef {
		return val, nil
	}
	if w.Ref.ReceiverLocal {
		v.mu.Lock()
		_, ok := v.objects[w.Ref.ID]
		v.mu.Unlock()
		if !ok {
			return Nil(), fmt.Errorf("vm: incoming ref #%d: %w", w.Ref.ID, ErrNoSuchObject)
		}
		val.Ref = w.Ref.ID
		return val, nil
	}
	id, err := v.StubFor(peerIdx, w.Ref.ID, w.Ref.Class)
	if err != nil {
		return Nil(), err
	}
	val.Ref = id
	return val, nil
}

// DecodeIncomingAll converts a received parameter list.
func (v *VM) DecodeIncomingAll(peerIdx int, ws []WireValue) ([]Value, error) {
	out := make([]Value, len(ws))
	for i, w := range ws {
		val, err := v.DecodeIncoming(peerIdx, w)
		if err != nil {
			return nil, err
		}
		out[i] = val
	}
	return out, nil
}

// StubFor returns the local stub for the peer's object, creating one if
// this VM has not seen the reference before. The two VMs thereby maintain
// object reference mappings as objects and references move between them
// (paper §3.2).
func (v *VM) StubFor(peerIdx int, peerID ObjectID, className string) (ObjectID, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.stubForLocked(peerIdx, peerID, className)
}

// ReleaseExport decrements the export pin on a local object after the peer
// collected its stub.
func (v *VM) ReleaseExport(id ObjectID) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if o, ok := v.objects[id]; ok && o.exported > 0 {
		o.exported--
	}
}
