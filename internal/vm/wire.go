package vm

import "fmt"

// WireRef is an object reference as it appears on the network. Each VM has
// a private reference namespace; a reference on the wire is therefore
// tagged: either it names an object in the *receiver's* namespace (the
// sender was holding a stub for the receiver's object) or it names an
// object in the *sender's* namespace, in which case the receiver maps it to
// a local stub placeholder (paper §3.2).
type WireRef struct {
	// ReceiverLocal reports that ID is in the receiver's namespace.
	ReceiverLocal bool
	ID            ObjectID

	// Class names the referent's class, set when ReceiverLocal is false so
	// the receiver can type its stub.
	Class string
}

// WireValue is a Value in network form: identical to Value except that
// references are namespace-tagged.
type WireValue struct {
	Kind  ValueKind
	I     int64
	F     float64
	B     bool
	S     string
	Bytes []byte
	Ref   WireRef
}

// EncodeOutgoing converts a local value to wire form for the peer with the
// given index. Sending a reference to a locally hosted object exports it:
// the object is pinned against collection until the peer releases it
// (distributed GC). Forwarding a reference to an object hosted by a
// *different* surrogate is rejected: surrogate-to-surrogate references are
// the paper's future work (§2, §8).
func (v *VM) EncodeOutgoing(peerIdx int, val Value) (WireValue, error) {
	var w WireValue
	err := v.EncodeOutgoingInto(peerIdx, &val, &w)
	return w, err
}

// EncodeOutgoingInto is EncodeOutgoing writing through pointers, so
// parameter-list loops fill their slice elements without copying the
// ~90-byte structs through return values (the RPC hot path). On error
// *w is the zero value.
func (v *VM) EncodeOutgoingInto(peerIdx int, val *Value, w *WireValue) error {
	*w = WireValue{Kind: val.Kind, I: val.I, F: val.F, B: val.B, S: val.S, Bytes: val.Bytes}
	if val.Kind != KindRef {
		return nil
	}
	if val.Ref == InvalidObject {
		w.Kind = KindNil
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.encodeOutgoingRefLocked(peerIdx, val, w)
}

// encodeOutgoingRefLocked converts a live KindRef value's reference into
// *w (whose scalar fields are already filled). Called with v.mu held.
func (v *VM) encodeOutgoingRefLocked(peerIdx int, val *Value, w *WireValue) error {
	o, ok := v.objects[val.Ref]
	if !ok {
		*w = WireValue{}
		return fmt.Errorf("vm: encode ref #%d: %w", val.Ref, ErrNoSuchObject)
	}
	if o.Remote {
		if o.PeerIdx != peerIdx {
			*w = WireValue{}
			return fmt.Errorf("vm: encode ref #%d: cross-surrogate references are unsupported", val.Ref)
		}
		w.Ref = WireRef{ReceiverLocal: true, ID: o.PeerID}
		return nil
	}
	o.exported++
	w.Ref = WireRef{ReceiverLocal: false, ID: o.ID, Class: o.Class.Name}
	return nil
}

// EncodeOutgoingAll converts a parameter list to wire form. References
// in the list are exported under a single lock acquisition (a pipelined
// frame's reply is mostly references).
func (v *VM) EncodeOutgoingAll(peerIdx int, vals []Value) ([]WireValue, error) {
	out := make([]WireValue, len(vals))
	locked := false
	defer func() {
		if locked {
			v.mu.Unlock()
		}
	}()
	for i := range vals {
		val := &vals[i]
		out[i] = WireValue{Kind: val.Kind, I: val.I, F: val.F, B: val.B, S: val.S, Bytes: val.Bytes}
		if val.Kind != KindRef {
			continue
		}
		if val.Ref == InvalidObject {
			out[i].Kind = KindNil
			continue
		}
		if !locked {
			v.mu.Lock()
			locked = true
		}
		if err := v.encodeOutgoingRefLocked(peerIdx, val, &out[i]); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// DecodeIncoming converts a wire value received from the peer into a local
// value, creating stub placeholders for foreign references as needed.
func (v *VM) DecodeIncoming(peerIdx int, w WireValue) (Value, error) {
	var val Value
	err := v.DecodeIncomingInto(peerIdx, &w, &val)
	return val, err
}

// DecodeIncomingInto is DecodeIncoming writing through pointers (see
// EncodeOutgoingInto). On error *val is Nil().
func (v *VM) DecodeIncomingInto(peerIdx int, w *WireValue, val *Value) error {
	*val = Value{Kind: w.Kind, I: w.I, F: w.F, B: w.B, S: w.S, Bytes: w.Bytes}
	if w.Kind != KindRef {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.decodeIncomingRefLocked(peerIdx, w, val)
}

// decodeIncomingRefLocked resolves a KindRef wire value's reference into
// *val (whose scalar fields are already filled). Called with v.mu held.
func (v *VM) decodeIncomingRefLocked(peerIdx int, w *WireValue, val *Value) error {
	if w.Ref.ReceiverLocal {
		if _, ok := v.objects[w.Ref.ID]; !ok {
			*val = Nil()
			return fmt.Errorf("vm: incoming ref #%d: %w", w.Ref.ID, ErrNoSuchObject)
		}
		val.Ref = w.Ref.ID
		return nil
	}
	id, err := v.stubForLocked(peerIdx, w.Ref.ID, w.Ref.Class)
	if err != nil {
		*val = Nil()
		return err
	}
	val.Ref = id
	return nil
}

// DecodeIncomingAll converts a received parameter list.
func (v *VM) DecodeIncomingAll(peerIdx int, ws []WireValue) ([]Value, error) {
	out := make([]Value, len(ws))
	if err := v.DecodeIncomingSlice(peerIdx, ws, out); err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeIncomingSlice converts a received parameter list into the
// caller-provided destination (len(out) must equal len(ws)): the batched
// frame paths carve per-call slices out of one arena instead of
// allocating one per call, and references in the list are resolved under
// a single lock acquisition rather than one per value.
func (v *VM) DecodeIncomingSlice(peerIdx int, ws []WireValue, out []Value) error {
	if len(out) != len(ws) {
		return fmt.Errorf("vm: decode incoming: %d values into %d slots", len(ws), len(out))
	}
	locked := false
	defer func() {
		if locked {
			v.mu.Unlock()
		}
	}()
	for i := range ws {
		w := &ws[i]
		out[i] = Value{Kind: w.Kind, I: w.I, F: w.F, B: w.B, S: w.S, Bytes: w.Bytes}
		if w.Kind != KindRef {
			continue
		}
		if !locked {
			v.mu.Lock()
			locked = true
		}
		if err := v.decodeIncomingRefLocked(peerIdx, w, &out[i]); err != nil {
			return err
		}
	}
	return nil
}

// StubFor returns the local stub for the peer's object, creating one if
// this VM has not seen the reference before. The two VMs thereby maintain
// object reference mappings as objects and references move between them
// (paper §3.2).
func (v *VM) StubFor(peerIdx int, peerID ObjectID, className string) (ObjectID, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.stubForLocked(peerIdx, peerID, className)
}

// ReleaseExport decrements the export pin on a local object after the peer
// collected its stub.
func (v *VM) ReleaseExport(id ObjectID) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if o, ok := v.objects[id]; ok && o.exported > 0 {
		o.exported--
	}
}
