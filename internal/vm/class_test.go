package vm

import (
	"strings"
	"testing"
)

// mustRegister registers a class during test setup, panicking on the spec
// errors that Register reports (setup bugs, not VM behavior).
func mustRegister(reg *Registry, spec ClassSpec) {
	if _, err := reg.Register(spec); err != nil {
		panic(err)
	}
}

// Registration failures must be reported as errors, never as panics: the
// registry is library code and the platform degrades gracefully.
func TestRegisterErrorsDoNotPanic(t *testing.T) {
	cases := []struct {
		name string
		spec ClassSpec
		want string
	}{
		{"empty name", ClassSpec{}, "name must not be empty"},
		{"duplicate class", ClassSpec{Name: "Dup"}, "already registered"},
		{"duplicate field", ClassSpec{Name: "F", Fields: []string{"x", "x"}}, "duplicate field"},
		{"unnamed method", ClassSpec{Name: "M", Methods: []MethodSpec{{}}}, "unnamed method"},
		{"nil body", ClassSpec{Name: "B", Methods: []MethodSpec{{Name: "m"}}}, "no body"},
	}
	reg := NewRegistry()
	if _, err := reg.Register(ClassSpec{Name: "Dup"}); err != nil {
		t.Fatalf("seed class: %v", err)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Register panicked: %v", r)
				}
			}()
			c, err := reg.Register(tc.spec)
			if err == nil {
				t.Fatalf("Register(%+v) succeeded, want error", tc.spec)
			}
			if c != nil {
				t.Fatalf("Register returned non-nil class alongside error %v", err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
