package vm

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// TestLoopMigrationRoundTrip drives the full offload lifecycle over the
// in-package loop peer: extract/adopt/convert, transparent remote
// invocation with intra-batch and stay-behind references, remote field
// access, static redirection to the client, native routing, stateless
// natives, clock accounting, and distributed-GC export pins.
func TestLoopMigrationRoundTrip(t *testing.T) {
	client, surrogate, cp, sp := newLoopVMs(t)

	th := client.NewThread()
	a, err := th.New("Node", 1000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := th.New("Node", 1000)
	if err != nil {
		t.Fatal(err)
	}
	keep, err := th.New("Keep", 500)
	if err != nil {
		t.Fatal(err)
	}
	// a -> b -> keep; keep stays behind.
	mustSet := func(id ObjectID, field string, v Value) {
		t.Helper()
		if err := th.SetField(id, field, v); err != nil {
			t.Fatalf("set %v.%s: %v", id, field, err)
		}
	}
	mustSet(a, "val", Int(1))
	mustSet(a, "next", RefOf(b))
	mustSet(b, "val", Int(2))
	mustSet(b, "next", RefOf(keep))
	mustSet(keep, "val", Int(7))
	client.SetRoot("a", a)
	client.SetRoot("keep", keep)

	liveBefore := client.Heap().Live
	ids, assigned := offload(t, client, surrogate, cp, sp, "Node")
	if len(ids) != 2 || len(assigned) != 2 {
		t.Fatalf("migrated %d/%d objects, want 2", len(ids), len(assigned))
	}
	if client.Heap().Live >= liveBefore {
		t.Fatalf("client live bytes did not drop after offload: %d -> %d", liveBefore, client.Heap().Live)
	}
	// The stay-behind object is pinned by the surrogate's stub.
	if n := client.ExportCount(keep); n != 1 {
		t.Fatalf("ExportCount(keep) = %d, want 1 (referenced from the migrated batch)", n)
	}

	// Transparent chain walk: a and b execute on the surrogate, keep back
	// on the client, results flowing through both namespaces.
	ret, err := th.Invoke(a, "sum")
	if err != nil {
		t.Fatalf("remote sum: %v", err)
	}
	if ret.I != 1+2+7 {
		t.Fatalf("sum = %d, want 10", ret.I)
	}

	// Remote field access via the stub.
	if err := th.SetField(a, "val", Int(100)); err != nil {
		t.Fatalf("remote set: %v", err)
	}
	got, err := th.GetField(a, "val")
	if err != nil || got.I != 100 {
		t.Fatalf("remote get = %v err=%v, want 100", got, err)
	}

	// Static data is redirected to the client even from surrogate-side
	// method bodies.
	if err := th.SetStatic("Node", "config", Int(41)); err != nil {
		t.Fatalf("setstatic: %v", err)
	}
	if v, err := th.Invoke(a, "readCfg"); err != nil || v.I != 41 {
		t.Fatalf("remote readCfg = %v err=%v, want 41", v, err)
	}
	if _, err := th.Invoke(a, "writeCfg", Int(42)); err != nil {
		t.Fatalf("remote writeCfg: %v", err)
	}
	if v, err := th.GetStatic("Node", "config"); err != nil || v.I != 42 {
		t.Fatalf("config after remote write = %v err=%v, want 42", v, err)
	}

	// Native statics are directed back to the client...
	if v, err := th.Invoke(a, "hostname"); err != nil || v.S != "client" {
		t.Fatalf("remote hostname = %v err=%v, want \"client\"", v, err)
	}
	// ...unless stateless and the §5.2 enhancement is on.
	surrogate.SetStatelessNativeLocal(true)
	if v, err := th.Invoke(a, "abs", Int(-4)); err != nil || v.I != 4 {
		t.Fatalf("stateless abs = %v err=%v, want 4", v, err)
	}

	// Remote execution time is charged to the caller, not the server.
	surClock := surrogate.Clock()
	clkBefore := client.Clock()
	if _, err := th.Invoke(a, "work"); err != nil {
		t.Fatalf("remote work: %v", err)
	}
	if d := client.Clock() - clkBefore; d < time.Millisecond {
		t.Fatalf("client clock advanced %v, want >= 1ms (charged remote execution)", d)
	}
	if surrogate.Clock() != surClock {
		t.Fatalf("surrogate clock moved %v; serving must roll its clock back", surrogate.Clock()-surClock)
	}

	// Dropping the surrogate's stub for keep releases the export pin.
	stub, err := surrogate.StubFor(sp.selfIdx, keep, "Keep")
	if err != nil {
		t.Fatal(err)
	}
	if err := surrogate.FreeObject(stub); err != nil {
		t.Fatalf("free stub: %v", err)
	}
	if n := client.ExportCount(keep); n != 0 {
		t.Fatalf("ExportCount(keep) = %d after stub release, want 0", n)
	}
	if n := client.ExportCount(ObjectID(99999)); n != 0 {
		t.Fatalf("ExportCount(unknown) = %d, want 0", n)
	}

	// Accessor smoke: these are load-bearing for diagnostics and policy.
	if client.Role() != RoleClient || surrogate.Role() != RoleSurrogate {
		t.Fatal("Role() mismatch")
	}
	if client.Registry() != surrogate.Registry() {
		t.Fatal("Registry() must be the shared registry")
	}
	if client.CPUSpeed() != 1 {
		t.Fatalf("CPUSpeed() = %v, want 1", client.CPUSpeed())
	}
	if th.VM() != client {
		t.Fatal("Thread.VM() mismatch")
	}
	if id, ok := client.Root("a"); !ok || id != a {
		t.Fatalf("Root(a) = %v,%v", id, ok)
	}
	names := client.Registry().Names()
	if len(names) != 4 {
		t.Fatalf("Names() = %v, want 4 classes", names)
	}
	methods := client.Registry().Class("Node").Methods()
	if len(methods) != 8 || methods[0] > methods[len(methods)-1] {
		t.Fatalf("Methods() = %v, want 8 sorted names", methods)
	}
}

// TestLoopMigrationRefArguments covers reference passing in both
// directions: a client-local ref argument exports the object to the
// surrogate, and a surrogate-local return ref materializes as a client
// stub.
func TestLoopMigrationRefArguments(t *testing.T) {
	client, surrogate, cp, sp := newLoopVMs(t)

	th := client.NewThread()
	node, err := th.New("Node", 800)
	if err != nil {
		t.Fatal(err)
	}
	local, err := th.New("Keep", 300)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.SetField(local, "val", Int(9)); err != nil {
		t.Fatal(err)
	}
	client.SetRoot("node", node)
	client.SetRoot("local", local)
	offload(t, client, surrogate, cp, sp, "Node")

	// Ship a client-local reference as an argument: the encode exports
	// it, the surrogate gets a typed stub, and writing through the field
	// ends up routed back to the client copy.
	if _, err := th.Invoke(node, "setVal", Int(5)); err != nil {
		t.Fatalf("remote setVal: %v", err)
	}
	if err := th.SetField(node, "next", RefOf(local)); err != nil {
		t.Fatalf("remote set ref field: %v", err)
	}
	if n := client.ExportCount(local); n == 0 {
		t.Fatal("shipping a local ref must export (pin) the object")
	}
	// The chain now crosses namespaces twice: node (surrogate) -> local
	// (client).
	if ret, err := th.Invoke(node, "sum"); err != nil || ret.I != 5+9 {
		t.Fatalf("cross-namespace sum = %v err=%v, want 14", ret, err)
	}

	// Reading the ref field back returns a receiver-local reference that
	// maps to the original client object, not a new stub.
	got, err := th.GetField(node, "next")
	if err != nil {
		t.Fatalf("remote get ref: %v", err)
	}
	if got.Kind != KindRef || got.Ref != local {
		t.Fatalf("round-tripped ref = %+v, want the original local id %d", got, local)
	}
}

// TestMigrationFailurePaths pins every error branch of the migrate
// half: dangling refs at extraction, unknown classes and malformed
// batches at adoption, and the ConvertToStubs preconditions.
func TestMigrationFailurePaths(t *testing.T) {
	client, surrogate, cp, sp := newLoopVMs(t)
	_ = cp

	th := client.NewThread()
	node, err := th.New("Node", 400)
	if err != nil {
		t.Fatal(err)
	}
	victim, err := th.New("Keep", 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.SetField(node, "next", RefOf(victim)); err != nil {
		t.Fatal(err)
	}
	client.SetRoot("node", node)

	// A dangling field reference (the referent was explicitly freed) must
	// abort extraction, not ship garbage.
	if err := client.FreeObject(victim); err != nil {
		t.Fatal(err)
	}
	if _, err := client.ExtractMigration([]string{"Node"}); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("extract with dangling ref: err = %v, want ErrNoSuchObject", err)
	}
	if err := th.SetField(node, "next", Nil()); err != nil {
		t.Fatal(err)
	}

	// Unknown class in a received batch.
	if _, err := surrogate.AdoptMigration(sp.selfIdx, []MigratedObject{{SenderID: 1, Class: "Nope"}}); err == nil || !strings.Contains(err.Error(), "unknown class") {
		t.Fatalf("adopt unknown class: err = %v", err)
	}

	// More fields than the class declares.
	bad := []MigratedObject{{SenderID: 1, Class: "Keep", Size: 10, Fields: []WireValue{{Kind: KindInt, I: 1}, {Kind: KindInt, I: 2}}}}
	if _, err := surrogate.AdoptMigration(sp.selfIdx, bad); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("adopt oversized field list: err = %v", err)
	}

	// A batch referencing an unknown class through a field stub.
	badRef := []MigratedObject{{SenderID: 2, Class: "Keep", Size: 10, Fields: []WireValue{
		{Kind: KindRef, Ref: WireRef{ID: 77, Class: "Nope"}},
	}}}
	if _, err := surrogate.AdoptMigration(sp.selfIdx, badRef); err == nil || !strings.Contains(err.Error(), "unknown class") {
		t.Fatalf("adopt stub of unknown class: err = %v", err)
	}

	// ConvertToStubs preconditions.
	if err := client.ConvertToStubs(0, []ObjectID{node}, nil); err == nil {
		t.Fatal("length mismatch must fail")
	}
	if err := client.ConvertToStubs(0, []ObjectID{99999}, []ObjectID{1}); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("converting an unknown object: err = %v", err)
	}
	if err := client.ConvertToStubs(0, []ObjectID{node}, []ObjectID{50}); err != nil {
		t.Fatalf("first convert: %v", err)
	}
	if err := client.ConvertToStubs(0, []ObjectID{node}, []ObjectID{50}); err == nil || !strings.Contains(err.Error(), "already a stub") {
		t.Fatalf("double convert: err = %v", err)
	}
}

// TestPartialMigrationLeavesObjectsLocal models the sever-mid-migration
// case: a batch was extracted (and maybe even adopted) but the
// ConvertToStubs acknowledgment never happened. The client's objects
// must remain fully usable locally — extraction alone has no local side
// effects beyond export pins.
func TestPartialMigrationLeavesObjectsLocal(t *testing.T) {
	client, surrogate, _, sp := newLoopVMs(t)

	th := client.NewThread()
	node, err := th.New("Node", 600)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.SetField(node, "val", Int(11)); err != nil {
		t.Fatal(err)
	}
	client.SetRoot("node", node)

	batch, err := client.ExtractMigration([]string{"Node"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := surrogate.AdoptMigration(sp.selfIdx, batch); err != nil {
		t.Fatal(err)
	}
	// The link dies here: no ConvertToStubs. The client object must still
	// be local and live.
	if o := client.Object(node); o == nil || o.Remote {
		t.Fatal("object must remain local after an unacknowledged migration")
	}
	if ret, err := th.Invoke(node, "getVal"); err != nil || ret.I != 11 {
		t.Fatalf("local invoke after partial migration = %v err=%v, want 11", ret, err)
	}
	// Nothing to reclaim: the client never held stubs for that peer.
	if n := client.ReclaimStubs(0); n != 0 {
		t.Fatalf("ReclaimStubs = %d after partial migration, want 0", n)
	}
}

// TestReclaimStubsRebuildsLocally covers the fallback half of the
// migrate path: after a sever, every stub re-materializes as a zeroed
// local object of its remembered size, heap accounting is restored, and
// export pins are dropped when the vanished peer was the only one.
func TestReclaimStubsRebuildsLocally(t *testing.T) {
	client, surrogate, cp, sp := newLoopVMs(t)

	th := client.NewThread()
	node, err := th.New("Node", 2048)
	if err != nil {
		t.Fatal(err)
	}
	keep, err := th.New("Keep", 512)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.SetField(node, "val", Int(33)); err != nil {
		t.Fatal(err)
	}
	if err := th.SetField(node, "next", RefOf(keep)); err != nil {
		t.Fatal(err)
	}
	client.SetRoot("node", node)
	client.SetRoot("keep", keep)
	offload(t, client, surrogate, cp, sp, "Node")
	if client.ExportCount(keep) == 0 {
		t.Fatal("precondition: keep must be exported")
	}

	// The surrogate vanishes.
	client.DetachPeer(cp.selfIdx)
	liveBefore := client.Heap().Live
	n := client.ReclaimStubs(cp.selfIdx)
	if n != 1 {
		t.Fatalf("ReclaimStubs = %d, want 1", n)
	}
	o := client.Object(node)
	if o == nil || o.Remote {
		t.Fatal("reclaimed object must be local")
	}
	if o.Size != 2048 {
		t.Fatalf("reclaimed size = %d, want the remembered 2048", o.Size)
	}
	if client.Heap().Live != liveBefore+2048 {
		t.Fatalf("live bytes = %d, want %d (reclaimed memory re-accounted)", client.Heap().Live, liveBefore+2048)
	}
	// Fields restart zeroed; the remote copy is unrecoverable.
	if ret, err := th.Invoke(node, "getVal"); err != nil || ret.I != 0 {
		t.Fatalf("reclaimed getVal = %v err=%v, want 0", ret, err)
	}
	// Sole peer: the pins it held can never be released, so they drop.
	if n := client.ExportCount(keep); n != 0 {
		t.Fatalf("ExportCount(keep) = %d after sole-peer reclaim, want 0", n)
	}
}

// TestReclaimStubsKeepsPinsWithOtherPeers: with a second peer still
// attached, reclaiming one peer's stubs must NOT zero export pins — the
// survivor may still hold stubs (a leak is acceptable, a corruption is
// not).
func TestReclaimStubsKeepsPinsWithOtherPeers(t *testing.T) {
	client, surrogate, cp, sp := newLoopVMs(t)
	second := New(migRegistry(t), Config{Role: RoleSurrogate, HeapCapacity: 1 << 20, CPUSpeed: 1})
	secondIdx := client.AttachPeer(&loopPeer{self: client, other: second, selfIdx: 1, otherIdx: 0})

	th := client.NewThread()
	keep, err := th.New("Keep", 256)
	if err != nil {
		t.Fatal(err)
	}
	node, err := th.New("Node", 256)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.SetField(node, "next", RefOf(keep)); err != nil {
		t.Fatal(err)
	}
	client.SetRoot("node", node)
	client.SetRoot("keep", keep)
	offload(t, client, surrogate, cp, sp, "Node")
	if client.ExportCount(keep) == 0 {
		t.Fatal("precondition: keep must be exported")
	}

	client.DetachPeer(cp.selfIdx)
	if n := client.ReclaimStubs(cp.selfIdx); n != 1 {
		t.Fatalf("ReclaimStubs = %d, want 1", n)
	}
	if n := client.ExportCount(keep); n == 0 {
		t.Fatal("export pins must survive when another peer is still attached")
	}
	client.DetachPeer(secondIdx)
}
