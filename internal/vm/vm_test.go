package vm

import (
	"errors"
	"fmt"
	"testing"
	"time"
)

func testRegistry(t *testing.T) *Registry {
	t.Helper()
	reg := NewRegistry()
	_, err := reg.Register(ClassSpec{
		Name:         "Counter",
		Fields:       []string{"n", "peer"},
		StaticFields: []string{"total"},
		Methods: []MethodSpec{
			{Name: "inc", Body: func(th *Thread, self ObjectID, args []Value) (Value, error) {
				th.Work(10 * time.Microsecond)
				v, err := th.GetField(self, "n")
				if err != nil {
					return Nil(), err
				}
				n := v.I + 1
				return Int(n), th.SetField(self, "n", Int(n))
			}},
			{Name: "incPeer", Body: func(th *Thread, self ObjectID, args []Value) (Value, error) {
				p, err := th.GetField(self, "peer")
				if err != nil {
					return Nil(), err
				}
				return th.Invoke(p.Ref, "inc")
			}},
			{Name: "boom", Body: func(th *Thread, self ObjectID, args []Value) (Value, error) {
				return Nil(), errors.New("boom")
			}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = reg.Register(ClassSpec{
		Name: "Native",
		Methods: []MethodSpec{
			{Name: "sys", Native: true, Body: func(th *Thread, self ObjectID, args []Value) (Value, error) {
				return Str("host"), nil
			}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func TestRegistryRejectsBadSpecs(t *testing.T) {
	reg := NewRegistry()
	cases := []ClassSpec{
		{Name: ""},
		{Name: "Dup"},
		{Name: "DupField", Fields: []string{"a", "a"}},
		{Name: "DupStatic", StaticFields: []string{"s", "s"}},
		{Name: "NoBody", Methods: []MethodSpec{{Name: "m"}}},
		{Name: "NoName", Methods: []MethodSpec{{Body: func(*Thread, ObjectID, []Value) (Value, error) { return Nil(), nil }}}},
	}
	if _, err := reg.Register(ClassSpec{Name: "Dup"}); err != nil {
		t.Fatal(err)
	}
	for i, spec := range cases {
		if _, err := reg.Register(spec); err == nil {
			t.Errorf("case %d (%s): accepted", i, spec.Name)
		}
	}
}

func TestClassPinnedAndStateless(t *testing.T) {
	reg := NewRegistry()
	body := func(*Thread, ObjectID, []Value) (Value, error) { return Nil(), nil }
	mustRegister(reg, ClassSpec{Name: "Plain", Methods: []MethodSpec{{Name: "m", Body: body}}})
	mustRegister(reg, ClassSpec{Name: "Nat", Methods: []MethodSpec{{Name: "m", Native: true, Body: body}}})
	mustRegister(reg, ClassSpec{Name: "Math", Methods: []MethodSpec{{Name: "m", Native: true, Stateless: true, Body: body}}})
	mustRegister(reg, ClassSpec{Name: "Mixed", Methods: []MethodSpec{
		{Name: "a", Native: true, Stateless: true, Body: body},
		{Name: "b", Native: true, Body: body},
	}})
	if reg.Class("Plain").Pinned() || reg.Class("Plain").NativeStateless() {
		t.Fatal("Plain misclassified")
	}
	if !reg.Class("Nat").Pinned() || reg.Class("Nat").NativeStateless() {
		t.Fatal("Nat misclassified")
	}
	if !reg.Class("Math").Pinned() || !reg.Class("Math").NativeStateless() {
		t.Fatal("Math misclassified")
	}
	if reg.Class("Mixed").NativeStateless() {
		t.Fatal("a class with any stateful native is not stateless")
	}
}

func TestInvokeAndFields(t *testing.T) {
	v := New(testRegistry(t), Config{HeapCapacity: 1 << 20})
	th := v.NewThread()
	c, err := th.New("Counter", 64)
	if err != nil {
		t.Fatal(err)
	}
	v.SetRoot("c", c)
	for i := 1; i <= 3; i++ {
		got, err := th.Invoke(c, "inc")
		if err != nil {
			t.Fatal(err)
		}
		if got.I != int64(i) {
			t.Fatalf("inc #%d = %d", i, got.I)
		}
	}
	if _, err := th.Invoke(c, "nope"); !errors.Is(err, ErrNoSuchMethod) {
		t.Fatalf("unknown method err = %v", err)
	}
	if _, err := th.Invoke(ObjectID(999), "inc"); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("unknown object err = %v", err)
	}
	if _, err := th.GetField(c, "nope"); !errors.Is(err, ErrNoSuchField) {
		t.Fatalf("unknown field err = %v", err)
	}
	if _, err := th.Invoke(c, "boom"); err == nil || !errors.Is(err, err) {
		t.Fatal("body error must propagate")
	}
}

func TestStatics(t *testing.T) {
	v := New(testRegistry(t), Config{})
	th := v.NewThread()
	if err := th.SetStatic("Counter", "total", Int(5)); err != nil {
		t.Fatal(err)
	}
	got, err := th.GetStatic("Counter", "total")
	if err != nil || got.I != 5 {
		t.Fatalf("static = %v, %v", got, err)
	}
	if _, err := th.GetStatic("Counter", "nope"); !errors.Is(err, ErrNoSuchField) {
		t.Fatal("unknown static accepted")
	}
	if _, err := th.GetStatic("Nope", "x"); err == nil {
		t.Fatal("unknown class accepted")
	}
}

func TestClockAdvancesWithWorkScaledBySpeed(t *testing.T) {
	reg := testRegistry(t)
	slow := New(reg, Config{CPUSpeed: 1})
	fast := New(reg, Config{CPUSpeed: 4})
	for _, v := range []*VM{slow, fast} {
		th := v.NewThread()
		c, err := th.New("Counter", 64)
		if err != nil {
			t.Fatal(err)
		}
		v.SetRoot("c", c)
		if _, err := th.Invoke(c, "inc"); err != nil {
			t.Fatal(err)
		}
	}
	if slow.Clock() != 4*fast.Clock() {
		t.Fatalf("clock scaling: slow %v, fast %v", slow.Clock(), fast.Clock())
	}
}

func TestGCReclaimsUnreachable(t *testing.T) {
	v := New(testRegistry(t), Config{HeapCapacity: 1 << 20})
	th := v.NewThread()
	a, err := th.New("Counter", 1000)
	if err != nil {
		t.Fatal(err)
	}
	b, err := th.New("Counter", 2000)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.SetField(a, "peer", RefOf(b)); err != nil {
		t.Fatal(err)
	}
	v.SetRoot("a", a)
	th.ClearTemps()
	v.Collect()
	if got := v.Heap().Live; got != 3000 {
		t.Fatalf("live = %d, want 3000 (b reachable through a)", got)
	}
	// Cut the reference: b must be reclaimed.
	if err := th.SetField(a, "peer", Nil()); err != nil {
		t.Fatal(err)
	}
	v.Collect()
	if got := v.Heap().Live; got != 1000 {
		t.Fatalf("live = %d, want 1000", got)
	}
	// Drop the root: everything goes.
	v.SetRoot("a", InvalidObject)
	v.Collect()
	if got := v.Heap().Live; got != 0 {
		t.Fatalf("live = %d, want 0", got)
	}
}

func TestGCKeepsStaticReferences(t *testing.T) {
	v := New(testRegistry(t), Config{})
	th := v.NewThread()
	c, err := th.New("Counter", 500)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.SetStatic("Counter", "total", RefOf(c)); err != nil {
		t.Fatal(err)
	}
	th.ClearTemps()
	v.Collect()
	if v.Heap().Live != 500 {
		t.Fatal("object referenced from static data was collected")
	}
}

func TestGCTempsProtectNewborns(t *testing.T) {
	// A tight allocation loop with a tiny GC threshold: newborns must
	// survive the threshold collections triggered by their own birth.
	reg := testRegistry(t)
	v := New(reg, Config{HeapCapacity: 1 << 20, GCObjectTrigger: 2})
	th := v.NewThread()
	ids := make([]ObjectID, 0, 16)
	for i := 0; i < 16; i++ {
		id, err := th.New("Counter", 100)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		if v.Object(id) == nil {
			t.Fatal("temp-rooted newborn was collected")
		}
	}
	th.ClearTemps()
	v.Collect()
	if v.Heap().Live != 0 {
		t.Fatal("ClearTemps did not release the newborns")
	}
}

func TestOOMAndPressureHandler(t *testing.T) {
	v := New(testRegistry(t), Config{HeapCapacity: 1024})
	th := v.NewThread()
	if _, err := th.New("Counter", 2048); !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	// A pressure handler that frees the offending space rescues.
	big, err := th.New("Counter", 900)
	if err != nil {
		t.Fatal(err)
	}
	v.SetRoot("big", big)
	th.ClearTemps()
	calls := 0
	v.SetPressureHandler(func(needed int64) bool {
		calls++
		v.SetRoot("big", InvalidObject)
		return true
	})
	if _, err := th.New("Counter", 900); err != nil {
		t.Fatalf("pressure handler should have rescued: %v", err)
	}
	if calls != 1 {
		t.Fatalf("handler called %d times", calls)
	}
}

func TestFreeObject(t *testing.T) {
	v := New(testRegistry(t), Config{})
	th := v.NewThread()
	id, err := th.New("Counter", 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.Free(id); err != nil {
		t.Fatal(err)
	}
	if err := th.Free(id); !errors.Is(err, ErrNoSuchObject) {
		t.Fatal("double free must error")
	}
	h := v.Heap()
	if h.Live != 0 || h.Garbage != 100 {
		t.Fatalf("heap after free: %+v", h)
	}
	v.Collect()
	if v.Heap().Garbage != 0 {
		t.Fatal("garbage survived collection")
	}
}

func TestObjectsOfClass(t *testing.T) {
	v := New(testRegistry(t), Config{})
	th := v.NewThread()
	var want []ObjectID
	for i := 0; i < 5; i++ {
		id, err := th.New("Counter", 10)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, id)
	}
	got := v.ObjectsOfClass("Counter")
	if len(got) != 5 {
		t.Fatalf("got %d objects", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatal("IDs must be sorted")
		}
	}
	_ = want
	if n := len(v.ObjectsOfClass("Native")); n != 0 {
		t.Fatalf("Native count = %d", n)
	}
}

func TestNativeOnClientRunsLocally(t *testing.T) {
	v := New(testRegistry(t), Config{Role: RoleClient})
	th := v.NewThread()
	n, err := th.New("Native", 10)
	if err != nil {
		t.Fatal(err)
	}
	got, err := th.Invoke(n, "sys")
	if err != nil || got.S != "host" {
		t.Fatalf("native on client: %v %v", got, err)
	}
}

func TestSurrogateNativeWithoutPeerFails(t *testing.T) {
	v := New(testRegistry(t), Config{Role: RoleSurrogate})
	th := v.NewThread()
	if _, err := th.InvokeStatic("Native", "sys"); !errors.Is(err, ErrNotAttached) {
		t.Fatalf("err = %v, want ErrNotAttached", err)
	}
}

func TestMonitoringHooksFire(t *testing.T) {
	v := New(testRegistry(t), Config{})
	rec := &recordingHooks{}
	v.SetHooks(rec)
	th := v.NewThread()
	c, err := th.New("Counter", 64)
	if err != nil {
		t.Fatal(err)
	}
	v.SetRoot("c", c)
	if _, err := th.Invoke(c, "inc"); err != nil {
		t.Fatal(err)
	}
	v.Collect()
	// inc's field accesses are intra-class (Counter→Counter), which the
	// monitor does not record (paper §5.1).
	if rec.creates != 1 || rec.invokes != 1 || rec.accesses != 0 || rec.gcs != 1 {
		t.Fatalf("hooks: %+v", rec)
	}
	// Self time must be attributed to the callee, exclusive of nesting
	// (single frame here).
	if rec.lastSelf != 10*time.Microsecond {
		t.Fatalf("selfTime = %v", rec.lastSelf)
	}
}

func TestNestedSelfTimeAttribution(t *testing.T) {
	// Figure 9: outer works 20ms, nested works 100ms; outer's self time
	// must be 20ms.
	reg := NewRegistry()
	mustRegister(reg, ClassSpec{Name: "B", Methods: []MethodSpec{
		{Name: "g", Body: func(th *Thread, self ObjectID, args []Value) (Value, error) {
			th.Work(100 * time.Millisecond)
			return Nil(), nil
		}},
	}})
	mustRegister(reg, ClassSpec{Name: "A", Fields: []string{"b"}, Methods: []MethodSpec{
		{Name: "f", Body: func(th *Thread, self ObjectID, args []Value) (Value, error) {
			th.Work(20 * time.Millisecond)
			b, err := th.GetField(self, "b")
			if err != nil {
				return Nil(), err
			}
			return th.Invoke(b.Ref, "g")
		}},
	}})
	v := New(reg, Config{})
	rec := &recordingHooks{}
	v.SetHooks(rec)
	th := v.NewThread()
	a, _ := th.New("A", 10)
	b, _ := th.New("B", 10)
	v.SetRoot("a", a)
	if err := th.SetField(a, "b", RefOf(b)); err != nil {
		t.Fatal(err)
	}
	if _, err := th.Invoke(a, "f"); err != nil {
		t.Fatal(err)
	}
	if rec.self["A"] != 20*time.Millisecond || rec.self["B"] != 100*time.Millisecond {
		t.Fatalf("attribution: %v", rec.self)
	}
}

func TestMonitorCostChargesClock(t *testing.T) {
	reg := testRegistry(t)
	costed := New(reg, Config{MonitorCostPerEvent: time.Millisecond})
	costed.SetHooks(&recordingHooks{})
	free := New(reg, Config{MonitorCostPerEvent: time.Millisecond}) // no hooks → no charge
	for _, v := range []*VM{costed, free} {
		th := v.NewThread()
		c, err := th.New("Counter", 64)
		if err != nil {
			t.Fatal(err)
		}
		v.SetRoot("c", c)
		if _, err := th.Invoke(c, "inc"); err != nil {
			t.Fatal(err)
		}
	}
	if costed.Clock() <= free.Clock() {
		t.Fatalf("monitoring cost not charged: %v vs %v", costed.Clock(), free.Clock())
	}
}

// recordingHooks is a minimal Hooks capture.
type recordingHooks struct {
	invokes, accesses, creates, deletes, gcs int
	lastSelf                                 time.Duration
	self                                     map[string]time.Duration
}

func (r *recordingHooks) OnInvoke(caller, callee, method string, obj ObjectID, argBytes, retBytes int64, selfTime time.Duration, native, stateless bool) {
	r.invokes++
	r.lastSelf = selfTime
	if r.self == nil {
		r.self = map[string]time.Duration{}
	}
	r.self[callee] += selfTime
}
func (r *recordingHooks) OnAccess(from, to string, obj ObjectID, bytes int64) { r.accesses++ }
func (r *recordingHooks) OnCreate(class string, obj ObjectID, size int64)     { r.creates++ }
func (r *recordingHooks) OnDelete(class string, obj ObjectID, size int64)     { r.deletes++ }
func (r *recordingHooks) OnGC(free, capacity int64, freed bool)               { r.gcs++ }

func TestValueWireSizes(t *testing.T) {
	cases := []struct {
		v    Value
		want int64
	}{
		{Nil(), 1},
		{Int(7), 8},
		{Float(1.5), 8},
		{Bool(true), 1},
		{Str("abcd"), 8},
		{Blob(make([]byte, 100)), 104},
		{RefOf(3), 12},
	}
	for i, c := range cases {
		if got := c.v.WireSize(); got != c.want {
			t.Errorf("case %d (%s): WireSize = %d, want %d", i, c.v, got, c.want)
		}
	}
	if WireSizeAll([]Value{Int(1), Bool(false)}) != 9 {
		t.Fatal("WireSizeAll wrong")
	}
	if !Nil().IsNil() || !RefOf(InvalidObject).IsNil() || Int(0).IsNil() {
		t.Fatal("IsNil wrong")
	}
}

func TestValueStrings(t *testing.T) {
	for _, v := range []Value{Nil(), Int(1), Float(2), Bool(true), Str("s"), Blob(nil), RefOf(1), {Kind: ValueKind(99)}} {
		if v.String() == "" {
			t.Fatalf("empty String() for %v", v.Kind)
		}
	}
}

func TestRoleString(t *testing.T) {
	if RoleClient.String() != "client" || RoleSurrogate.String() != "surrogate" {
		t.Fatal("role names wrong")
	}
	if Role(9).String() == "" {
		t.Fatal("unknown role must still print")
	}
}

func TestHeapStats(t *testing.T) {
	v := New(testRegistry(t), Config{HeapCapacity: 10_000})
	th := v.NewThread()
	if _, err := th.New("Counter", 4000); err != nil {
		t.Fatal(err)
	}
	h := v.Heap()
	if h.Capacity != 10_000 || h.Live != 4000 || h.Free != 6000 || h.Objects != 1 {
		t.Fatalf("heap = %+v", h)
	}
}

func TestDeterministicTraceAcrossRuns(t *testing.T) {
	// Two identical runs must produce identical hook streams (GC sweeps
	// in sorted order; no map-iteration nondeterminism).
	run := func() []string {
		reg := testRegistry(t)
		v := New(reg, Config{HeapCapacity: 64 << 10, GCObjectTrigger: 8})
		log := &loggingHooks{}
		v.SetHooks(log)
		th := v.NewThread()
		for i := 0; i < 100; i++ {
			id, err := th.New("Counter", 512)
			if err != nil {
				t.Fatal(err)
			}
			if i%2 == 0 {
				v.SetRoot("keep", id)
			}
			th.ClearTemps()
		}
		v.Collect()
		return log.events
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("event counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %q vs %q", i, a[i], b[i])
		}
	}
}

type loggingHooks struct{ events []string }

func (l *loggingHooks) OnInvoke(caller, callee, method string, obj ObjectID, a, r int64, s time.Duration, n, st bool) {
	l.events = append(l.events, fmt.Sprintf("i %s %s %d", caller, callee, obj))
}
func (l *loggingHooks) OnAccess(from, to string, obj ObjectID, bytes int64) {
	l.events = append(l.events, fmt.Sprintf("a %s %s %d", from, to, obj))
}
func (l *loggingHooks) OnCreate(class string, obj ObjectID, size int64) {
	l.events = append(l.events, fmt.Sprintf("c %s %d %d", class, obj, size))
}
func (l *loggingHooks) OnDelete(class string, obj ObjectID, size int64) {
	l.events = append(l.events, fmt.Sprintf("d %s %d %d", class, obj, size))
}
func (l *loggingHooks) OnGC(free, capacity int64, freed bool) {
	l.events = append(l.events, fmt.Sprintf("g %d %t", free, freed))
}
