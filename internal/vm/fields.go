package vm

import "fmt"

// GetField reads an instance field. If the object lives on the peer VM the
// access transparently crosses the network (paper §3.2: accesses to remote
// objects are intercepted and converted into RPCs).
func (t *Thread) GetField(target ObjectID, field string) (Value, error) {
	v := t.vm
	retried, drains := false, 0
retry:
	v.mu.Lock()
	o, ok := v.objects[target]
	if !ok {
		v.mu.Unlock()
		return Nil(), fmt.Errorf("vm: get #%d.%s: %w", target, field, ErrNoSuchObject)
	}
	from := v.currentClassLocked()
	to := o.Class.Name
	if o.Remote {
		peer := v.peerAt(o.PeerIdx)
		if peer == nil {
			idx := o.PeerIdx
			v.mu.Unlock()
			err := v.peerSlotErr(idx)
			if !retried && v.failoverIfGone(idx, err) {
				retried = true
				goto retry
			}
			return Nil(), fmt.Errorf("vm: get %s.%s: %w", to, field, err)
		}
		peerIdx := o.PeerIdx
		peerID := o.PeerID
		hooks := v.hooks
		v.mu.Unlock()
		val, err := peer.GetFieldRemote(peerID, field)
		if err != nil {
			if !retried && v.failoverIfGone(peerIdx, err) {
				retried = true
				goto retry
			}
			if drains < maxDrainRedirects && v.drainIfRedirected(peerIdx, peer, err) {
				drains++
				goto retry
			}
			return Nil(), fmt.Errorf("vm: remote get %s.%s: %w", to, field, err)
		}
		v.mu.Lock()
		if val.Kind == KindRef {
			v.addTempLocked(val.Ref)
		}
		if v.fieldHooks != nil {
			v.fieldHooks.OnFieldAccess(to, field, val.WireSize())
		}
		if hooks != nil {
			hooks.OnAccess(from, to, target, val.WireSize())
			v.chargeMonitorLocked()
		}
		v.mu.Unlock()
		return val, nil
	}
	ix, fok := o.Class.FieldIndex(field)
	if !fok {
		v.mu.Unlock()
		return Nil(), fmt.Errorf("vm: get %s.%s: %w", to, field, ErrNoSuchField)
	}
	val := o.Fields[ix]
	if val.Kind == KindDeferred {
		// Lazy-migration fault: the value stayed behind on the origin VM.
		// Pull every withheld field of the object in one round trip, then
		// retry the access (fetchDeferred guarantees no slot stays
		// deferred, so the retry cannot fault again).
		v.mu.Unlock()
		v.fetchDeferred(target)
		goto retry
	}
	if val.Kind == KindRef {
		v.addTempLocked(val.Ref)
	}
	if v.fieldHooks != nil {
		v.fieldHooks.OnFieldAccess(to, field, val.WireSize())
	}
	if v.hooks != nil && from != to {
		v.hooks.OnAccess(from, to, target, val.WireSize())
		v.chargeMonitorLocked()
	}
	v.mu.Unlock()
	return val, nil
}

// SetField writes an instance field, crossing the network when the object
// is remote.
func (t *Thread) SetField(target ObjectID, field string, val Value) error {
	v := t.vm
	retried, drains := false, 0
retry:
	v.mu.Lock()
	o, ok := v.objects[target]
	if !ok {
		v.mu.Unlock()
		return fmt.Errorf("vm: set #%d.%s: %w", target, field, ErrNoSuchObject)
	}
	from := v.currentClassLocked()
	to := o.Class.Name
	if o.Remote {
		peer := v.peerAt(o.PeerIdx)
		if peer == nil {
			idx := o.PeerIdx
			v.mu.Unlock()
			err := v.peerSlotErr(idx)
			if !retried && v.failoverIfGone(idx, err) {
				retried = true
				goto retry
			}
			return fmt.Errorf("vm: set %s.%s: %w", to, field, err)
		}
		peerIdx := o.PeerIdx
		peerID := o.PeerID
		hooks := v.hooks
		v.mu.Unlock()
		if err := peer.SetFieldRemote(peerID, field, val); err != nil {
			if !retried && v.failoverIfGone(peerIdx, err) {
				retried = true
				goto retry
			}
			if drains < maxDrainRedirects && v.drainIfRedirected(peerIdx, peer, err) {
				drains++
				goto retry
			}
			return fmt.Errorf("vm: remote set %s.%s: %w", to, field, err)
		}
		v.mu.Lock()
		if v.fieldHooks != nil {
			v.fieldHooks.OnFieldAccess(to, field, val.WireSize())
		}
		if hooks != nil {
			hooks.OnAccess(from, to, target, val.WireSize())
			v.chargeMonitorLocked()
		}
		v.mu.Unlock()
		return nil
	}
	defer v.mu.Unlock()
	ix, ok := o.Class.FieldIndex(field)
	if !ok {
		return fmt.Errorf("vm: set %s.%s: %w", to, field, ErrNoSuchField)
	}
	// Writing a deferred slot overwrites the placeholder; the origin's
	// residual copy is stale from here on and loses to this value if the
	// object ever migrates home (AdoptMigration folds residuals into
	// still-deferred slots only).
	o.Fields[ix] = val
	if v.fieldHooks != nil {
		v.fieldHooks.OnFieldAccess(to, field, val.WireSize())
	}
	if v.hooks != nil && from != to {
		v.hooks.OnAccess(from, to, target, val.WireSize())
		v.chargeMonitorLocked()
	}
	return nil
}

// GetStatic reads static data. Static data may contain host-specific state
// (e.g. System.properties), so to ensure consistency all access is directed
// to the client VM (paper §3.2).
func (t *Thread) GetStatic(className, field string) (Value, error) {
	v := t.vm
	class := v.registry.Class(className)
	if class == nil {
		return Nil(), fmt.Errorf("vm: getstatic %s.%s: unknown class", className, field)
	}
	ix, ok := class.StaticIndex(field)
	if !ok {
		return Nil(), fmt.Errorf("vm: getstatic %s.%s: %w", className, field, ErrNoSuchField)
	}
	v.mu.Lock()
	if v.cfg.Role == RoleSurrogate {
		peer := v.peerAt(0) // a surrogate's sole peer is its client
		if peer == nil {
			v.mu.Unlock()
			return Nil(), fmt.Errorf("vm: getstatic %s.%s: %w", className, field, ErrNotAttached)
		}
		from := v.currentClassLocked()
		hooks := v.hooks
		v.mu.Unlock()
		val, err := peer.GetStaticRemote(className, field)
		if err != nil {
			return Nil(), fmt.Errorf("vm: remote getstatic %s.%s: %w", className, field, err)
		}
		v.mu.Lock()
		if val.Kind == KindRef {
			v.addTempLocked(val.Ref)
		}
		if hooks != nil {
			hooks.OnAccess(from, className, InvalidObject, val.WireSize())
			v.chargeMonitorLocked()
		}
		v.mu.Unlock()
		return val, nil
	}
	defer v.mu.Unlock()
	val := v.staticSlotsLocked(class)[ix]
	from := v.currentClassLocked()
	if val.Kind == KindRef {
		v.addTempLocked(val.Ref)
	}
	if v.hooks != nil && from != className {
		v.hooks.OnAccess(from, className, InvalidObject, val.WireSize())
		v.chargeMonitorLocked()
	}
	return val, nil
}

// SetStatic writes static data on the client VM.
func (t *Thread) SetStatic(className, field string, val Value) error {
	v := t.vm
	class := v.registry.Class(className)
	if class == nil {
		return fmt.Errorf("vm: setstatic %s.%s: unknown class", className, field)
	}
	ix, ok := class.StaticIndex(field)
	if !ok {
		return fmt.Errorf("vm: setstatic %s.%s: %w", className, field, ErrNoSuchField)
	}
	v.mu.Lock()
	if v.cfg.Role == RoleSurrogate {
		peer := v.peerAt(0) // a surrogate's sole peer is its client
		if peer == nil {
			v.mu.Unlock()
			return fmt.Errorf("vm: setstatic %s.%s: %w", className, field, ErrNotAttached)
		}
		from := v.currentClassLocked()
		hooks := v.hooks
		v.mu.Unlock()
		if err := peer.SetStaticRemote(className, field, val); err != nil {
			return fmt.Errorf("vm: remote setstatic %s.%s: %w", className, field, err)
		}
		v.mu.Lock()
		if hooks != nil {
			hooks.OnAccess(from, className, InvalidObject, val.WireSize())
			v.chargeMonitorLocked()
		}
		v.mu.Unlock()
		return nil
	}
	defer v.mu.Unlock()
	v.staticSlotsLocked(class)[ix] = val
	from := v.currentClassLocked()
	if v.hooks != nil && from != className {
		v.hooks.OnAccess(from, className, InvalidObject, val.WireSize())
		v.chargeMonitorLocked()
	}
	return nil
}

func (v *VM) staticSlotsLocked(class *Class) []Value {
	slots, ok := v.statics[class.Name]
	if !ok {
		slots = make([]Value, len(class.StaticFields))
		v.statics[class.Name] = slots
	}
	return slots
}
