package vm

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// erringPeer fails every remote operation with a fixed error. It stands
// in for a peer whose transport died mid-call.
type erringPeer struct{ err error }

func (p *erringPeer) InvokeRemote(ObjectID, string, []Value) (Value, time.Duration, error) {
	return Nil(), 0, p.err
}
func (p *erringPeer) GetFieldRemote(ObjectID, string) (Value, error) { return Nil(), p.err }
func (p *erringPeer) SetFieldRemote(ObjectID, string, Value) error   { return p.err }
func (p *erringPeer) GetStaticRemote(string, string) (Value, error)  { return Nil(), p.err }
func (p *erringPeer) SetStaticRemote(string, string, Value) error    { return p.err }
func (p *erringPeer) InvokeNativeRemote(string, string, ObjectID, bool, []Value) (Value, time.Duration, error) {
	return Nil(), 0, p.err
}
func (p *erringPeer) Release(ObjectID) {}

// newErringRig builds a client VM whose peer 0 always fails with err,
// holding one Node stub supposedly hosted there.
func newErringRig(t *testing.T, err error) (*VM, int, ObjectID) {
	t.Helper()
	v := New(migRegistry(t), Config{Role: RoleClient, HeapCapacity: 1 << 20, CPUSpeed: 1})
	idx := v.AttachPeer(&erringPeer{err: err})
	stub, serr := v.StubFor(idx, ObjectID(99), "Node")
	if serr != nil {
		t.Fatal(serr)
	}
	v.SetRoot("stub", stub)
	return v, idx, stub
}

// TestFailoverRetriesAfterRemoteError: when a remote call fails with
// ErrPeerGone and the failover handler re-homes the peer's objects, the
// operation retries transparently on the reclaimed local copy — for
// invoke, field read, and field write alike.
func TestFailoverRetriesAfterRemoteError(t *testing.T) {
	gone := fmt.Errorf("transport: %w", ErrPeerGone)
	ops := []struct {
		name string
		op   func(th *Thread, id ObjectID) error
	}{
		{"invoke", func(th *Thread, id ObjectID) error {
			ret, err := th.Invoke(id, "getVal")
			if err == nil && ret.I != 0 {
				return fmt.Errorf("reclaimed object returned %d, want zeroed", ret.I)
			}
			return err
		}},
		{"getfield", func(th *Thread, id ObjectID) error {
			_, err := th.GetField(id, "val")
			return err
		}},
		{"setfield", func(th *Thread, id ObjectID) error {
			return th.SetField(id, "val", Int(5))
		}},
	}
	for _, tc := range ops {
		t.Run(tc.name, func(t *testing.T) {
			v, idx, stub := newErringRig(t, gone)
			fired := 0
			v.SetFailoverHandler(func(peerIdx int) bool {
				fired++
				if peerIdx != idx {
					t.Errorf("handler got peer %d, want %d", peerIdx, idx)
				}
				v.DetachPeer(peerIdx)
				v.ReclaimStubs(peerIdx)
				return true
			})
			th := v.NewThread()
			if err := tc.op(th, stub); err != nil {
				t.Fatalf("%s after failover: %v", tc.name, err)
			}
			if fired != 1 {
				t.Fatalf("handler fired %d times, want 1", fired)
			}
			if o := v.Object(stub); o == nil || o.Remote {
				t.Fatal("object must be local after failover")
			}
		})
	}
}

// TestFailoverRetriesAfterDetachedSlot: the same retry works when the
// slot was already nilled (disconnect raced ahead of the call) — the nil
// slot classifies as ErrPeerGone, not ErrNotAttached.
func TestFailoverRetriesAfterDetachedSlot(t *testing.T) {
	v, idx, stub := newErringRig(t, errors.New("unused"))
	v.DetachPeer(idx)
	v.SetFailoverHandler(func(peerIdx int) bool {
		v.ReclaimStubs(peerIdx)
		return true
	})
	th := v.NewThread()
	if ret, err := th.Invoke(stub, "getVal"); err != nil || ret.I != 0 {
		t.Fatalf("invoke via detached slot = %v err=%v", ret, err)
	}

	v2, idx2, stub2 := newErringRig(t, errors.New("unused"))
	v2.DetachPeer(idx2)
	v2.SetFailoverHandler(func(peerIdx int) bool {
		v2.ReclaimStubs(peerIdx)
		return true
	})
	th2 := v2.NewThread()
	if _, err := th2.GetField(stub2, "val"); err != nil {
		t.Fatalf("getfield via detached slot: %v", err)
	}

	v3, idx3, stub3 := newErringRig(t, errors.New("unused"))
	v3.DetachPeer(idx3)
	v3.SetFailoverHandler(func(peerIdx int) bool {
		v3.ReclaimStubs(peerIdx)
		return true
	})
	th3 := v3.NewThread()
	if err := th3.SetField(stub3, "val", Int(1)); err != nil {
		t.Fatalf("setfield via detached slot: %v", err)
	}
}

// TestFailoverDoesNotRetryWithoutCause: no handler installed, a handler
// that declines, or an error that is not ErrPeerGone — in every case the
// original error must surface, untouched by retry machinery.
func TestFailoverDoesNotRetryWithoutCause(t *testing.T) {
	t.Run("no-handler", func(t *testing.T) {
		v, idx, stub := newErringRig(t, errors.New("unused"))
		v.DetachPeer(idx)
		th := v.NewThread()
		if _, err := th.Invoke(stub, "getVal"); !errors.Is(err, ErrPeerGone) {
			t.Fatalf("err = %v, want ErrPeerGone", err)
		}
		if _, err := th.GetField(stub, "val"); !errors.Is(err, ErrPeerGone) {
			t.Fatalf("getfield err = %v, want ErrPeerGone", err)
		}
		if err := th.SetField(stub, "val", Int(1)); !errors.Is(err, ErrPeerGone) {
			t.Fatalf("setfield err = %v, want ErrPeerGone", err)
		}
	})
	t.Run("handler-declines", func(t *testing.T) {
		v, idx, stub := newErringRig(t, errors.New("unused"))
		v.DetachPeer(idx)
		v.SetFailoverHandler(func(int) bool { return false })
		th := v.NewThread()
		if _, err := th.Invoke(stub, "getVal"); !errors.Is(err, ErrPeerGone) {
			t.Fatalf("err = %v, want ErrPeerGone", err)
		}
	})
	t.Run("other-error", func(t *testing.T) {
		cause := errors.New("i/o timeout")
		v, _, stub := newErringRig(t, cause)
		v.SetFailoverHandler(func(int) bool {
			t.Error("handler must not fire for a non-gone error")
			return true
		})
		th := v.NewThread()
		if _, err := th.Invoke(stub, "getVal"); !errors.Is(err, cause) {
			t.Fatalf("invoke err = %v, want the transport error", err)
		}
		if _, err := th.GetField(stub, "val"); !errors.Is(err, cause) {
			t.Fatalf("getfield err = %v, want the transport error", err)
		}
		if err := th.SetField(stub, "val", Int(2)); !errors.Is(err, cause) {
			t.Fatalf("setfield err = %v, want the transport error", err)
		}
	})
}

// TestPeerSlotBeyondTable: a stub whose peer index was never attached
// reports ErrNotAttached — it is a wiring bug, not a disconnect, and
// must not trigger failover.
func TestPeerSlotBeyondTable(t *testing.T) {
	v := New(migRegistry(t), Config{Role: RoleClient, HeapCapacity: 1 << 20, CPUSpeed: 1})
	stub, err := v.StubFor(7, ObjectID(99), "Node")
	if err != nil {
		t.Fatal(err)
	}
	v.SetRoot("stub", stub)
	v.SetFailoverHandler(func(int) bool {
		t.Error("failover must not fire for a never-attached index")
		return true
	})
	th := v.NewThread()
	if _, err := th.Invoke(stub, "getVal"); !errors.Is(err, ErrNotAttached) {
		t.Fatalf("invoke err = %v, want ErrNotAttached", err)
	}
	if _, err := th.GetField(stub, "val"); !errors.Is(err, ErrNotAttached) {
		t.Fatalf("getfield err = %v, want ErrNotAttached", err)
	}
	if err := th.SetField(stub, "val", Int(1)); !errors.Is(err, ErrNotAttached) {
		t.Fatalf("setfield err = %v, want ErrNotAttached", err)
	}
}

// TestSurrogateStaticsRequireClient: a surrogate with no client attached
// cannot serve static access or native routing — both redirect to peer 0.
func TestSurrogateStaticsRequireClient(t *testing.T) {
	v := New(migRegistry(t), Config{Role: RoleSurrogate, HeapCapacity: 1 << 20, CPUSpeed: 1})
	th := v.NewThread()
	if _, err := th.GetStatic("Node", "config"); !errors.Is(err, ErrNotAttached) {
		t.Fatalf("getstatic err = %v, want ErrNotAttached", err)
	}
	if err := th.SetStatic("Node", "config", Int(1)); !errors.Is(err, ErrNotAttached) {
		t.Fatalf("setstatic err = %v, want ErrNotAttached", err)
	}
	if _, err := th.InvokeStatic("Sys", "host"); !errors.Is(err, ErrNotAttached) {
		t.Fatalf("native static err = %v, want ErrNotAttached", err)
	}
}

// TestSurrogateStaticErrorsPropagate: transport failures on the static
// redirection path surface to the caller.
func TestSurrogateStaticErrorsPropagate(t *testing.T) {
	cause := errors.New("link reset")
	v := New(migRegistry(t), Config{Role: RoleSurrogate, HeapCapacity: 1 << 20, CPUSpeed: 1})
	v.AttachPeer(&erringPeer{err: cause})
	th := v.NewThread()
	if _, err := th.GetStatic("Node", "config"); !errors.Is(err, cause) {
		t.Fatalf("getstatic err = %v, want the transport error", err)
	}
	if err := th.SetStatic("Node", "config", Int(1)); !errors.Is(err, cause) {
		t.Fatalf("setstatic err = %v, want the transport error", err)
	}
	if _, err := th.InvokeStatic("Sys", "host"); !errors.Is(err, cause) {
		t.Fatalf("native static err = %v, want the transport error", err)
	}
}

// TestNativeInstanceOnMigratedObjectFails pins the platform invariant
// that instance natives only exist on pinned classes: if a Gadget
// somehow migrates, invoking its native through the stub must error
// rather than loop between the VMs.
func TestNativeInstanceOnMigratedObjectFails(t *testing.T) {
	client, surrogate, cp, sp := newLoopVMs(t)
	th := client.NewThread()
	g, err := th.New("Gadget", 200)
	if err != nil {
		t.Fatal(err)
	}
	client.SetRoot("g", g)
	offload(t, client, surrogate, cp, sp, "Gadget")
	_, err = th.Invoke(g, "poke")
	if err == nil || !strings.Contains(err.Error(), "invoked on migrated object") {
		t.Fatalf("native on migrated object: err = %v", err)
	}
}

// TestInvokeStaticErrors covers the static-dispatch error branches and
// the AdvanceClock accounting hook.
func TestInvokeStaticErrors(t *testing.T) {
	v := New(migRegistry(t), Config{Role: RoleClient, HeapCapacity: 1 << 20, CPUSpeed: 1})
	th := v.NewThread()
	if _, err := th.InvokeStatic("Nope", "x"); err == nil || !strings.Contains(err.Error(), "unknown class") {
		t.Fatalf("unknown class err = %v", err)
	}
	if _, err := th.InvokeStatic("Sys", "nope"); !errors.Is(err, ErrNoSuchMethod) {
		t.Fatalf("unknown method err = %v", err)
	}
	if _, err := th.Invoke(ObjectID(424242), "getVal"); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("unknown object err = %v", err)
	}

	before := v.Clock()
	v.AdvanceClock(5 * time.Millisecond)
	if v.Clock()-before != 5*time.Millisecond {
		t.Fatalf("AdvanceClock moved %v, want 5ms", v.Clock()-before)
	}
}
