package apps

import (
	"time"

	"aide/internal/vm"
)

// Biomer calibration knobs. The scenario models molecular editing: a
// molecule model (atoms, bonds) ground by a force engine and redrawn by a
// native renderer every round. Every cluster keeps a hot edge to a pinned
// class, so any memory partitioning that frees substantial heap crosses
// heavy edges (Figure 6 overhead ≈25–30%), the CPU policy correctly
// declines to offload (Figure 10, predicted ≈790 s vs 750 s local), and
// only a small cold trajectory archive offloads cheaply (Figure 7's best
// policies).
const (
	bioRounds = 40

	bioMolClasses = 16
	bioMolObjects = 41
	bioMolSize    = 3000

	bioAtomTiles  = 32
	bioAtomTileSz = 48 << 10
	bioBondTiles  = 14
	bioBondTileSz = 40 << 10

	bioTrajSnapshots = 9
	bioTrajSnapSize  = 72 << 10

	bioCacheClasses = 10
	bioCacheObjects = 26
	bioCacheSize    = 2200
)

// Biomer returns the molecular editing application of Table 1.
func Biomer() *Spec {
	return &Spec{
		Name:        "Biomer",
		Description: "Molecular editing application",
		Profile:     "Memory/CPU intensive",
		RecordHeap:  12 << 20,
		EmuHeap:     6 << 20,
		CPUBound:    true,
		Build:       buildBiomer,
	}
}

func buildBiomer() (*vm.Registry, Driver, error) {
	b := newBench()

	mols := namesOf("mol.M%02d", bioMolClasses)
	for _, n := range mols {
		b.worker(n, 40*time.Microsecond, 8)
	}
	b.array("mol.AtomArray")
	b.array("mol.BondArray")

	trajs := namesOf("traj.Snap%02d", 8)
	for _, n := range trajs {
		b.worker(n, 25*time.Microsecond, 8)
	}
	b.array("traj.SnapArray")

	engs := namesOf("eng.F%02d", 14)
	for _, n := range engs {
		b.worker(n, 120*time.Microsecond, 8)
	}

	rendNative := []string{"rend.Gl0", "rend.Gl1", "rend.Gl2", "rend.Gl3"}
	for _, n := range rendNative {
		b.nativeUI(n, 12*time.Microsecond, 16)
	}
	rends := namesOf("rend.R%02d", 6)
	for _, n := range rends {
		b.worker(n, 40*time.Microsecond, 8)
	}

	uiNative := []string{"ui.BIn", "ui.BWin"}
	for _, n := range uiNative {
		b.nativeUI(n, 15*time.Microsecond, 8)
	}
	uis := namesOf("ui.B%02d", 10)
	for _, n := range uis {
		b.worker(n, 20*time.Microsecond, 8)
	}

	utils := namesOf("util.B%02d", 20)
	for _, n := range utils {
		b.worker(n, 15*time.Microsecond, 8)
	}
	b.nativeMath("bio.Math", 20*time.Microsecond, 8)
	miscs := namesOf("misc.B%02d", 20)
	for _, n := range miscs {
		b.worker(n, 15*time.Microsecond, 8)
	}

	reg, err := b.build()
	if err != nil {
		return nil, nil, err
	}

	driver := func(th *vm.Thread) error {
		k := newKit(th)
		all := make([]string, 0, 120)
		all = append(all, mols...)
		all = append(all, trajs...)
		all = append(all, engs...)
		all = append(all, rendNative...)
		all = append(all, rends...)
		all = append(all, uiNative...)
		all = append(all, uis...)
		all = append(all, utils...)
		all = append(all, "bio.Math")
		all = append(all, miscs...)
		for _, n := range all {
			k.hub(n, 256)
		}

		// --- Load the molecule. ---
		// The previous session's trajectory archive loads first, so an
		// early-trigger policy finds cold data available to offload.
		var snaps []vm.ObjectID
		for i := 0; i < bioTrajSnapshots; i++ {
			_, s := k.chain("traj.SnapArray", 1, bioTrajSnapSize)
			snaps = append(snaps, s)
		}
		for _, t := range trajs {
			k.chain(t, 6, 800)
		}
		var atoms, bonds []vm.ObjectID
		for i := 0; i < bioAtomTiles; i++ {
			_, t := k.chain("mol.AtomArray", 1, bioAtomTileSz)
			k.poke(mols[i%len(mols)], t, 1, 512)
			atoms = append(atoms, t)
		}
		for i := 0; i < bioBondTiles; i++ {
			_, t := k.chain("mol.BondArray", 1, bioBondTileSz)
			k.poke(mols[(i+3)%len(mols)], t, 1, 512)
			bonds = append(bonds, t)
		}
		for _, m := range mols {
			k.chain(m, bioMolObjects, bioMolSize)
		}
		for i := 0; i < bioCacheClasses; i++ {
			k.chain(utils[i%len(utils)], bioCacheObjects, bioCacheSize)
		}
		for i := 0; i < 14; i++ {
			g, _ := k.chain("misc.B05", 60, 2200)
			k.freeGroup(g)
		}

		// --- Simulation + editing rounds. ---
		for r := 0; r < bioRounds && !k.failed(); r++ {
			// Force engine grinds the molecule: hot eng↔mol coupling.
			for i := 0; i < 8; i++ {
				k.call(engs[(r+i)%len(engs)], mols[(r+i)%len(mols)], 300, 64)
			}
			for i := 0; i < 8; i++ {
				k.call(mols[i%len(mols)], mols[(i+5)%len(mols)], 250, 48)
			}
			for i := 0; i < 12; i++ {
				k.touch(mols[i%len(mols)], atoms[(r+i)%len(atoms)], 60)
			}
			for i := 0; i < 5; i++ {
				k.touch(engs[i%len(engs)], atoms[(r+2*i)%len(atoms)], 80)
			}
			for i := 0; i < 4; i++ {
				k.touch(mols[(i+7)%len(mols)], bonds[(r+i)%len(bonds)], 50)
			}
			k.call(engs[r%len(engs)], "bio.Math", 250, 24)

			// The renderer redraws the molecule every round: the hot edge
			// between the memory-heavy data and the pinned client side.
			for i := 0; i < 6; i++ {
				k.call(rends[i%len(rends)], mols[(r+i)%len(mols)], 70, 96)
			}
			for i := 0; i < 4; i++ {
				k.call(mols[(r+i)%len(mols)], rendNative[i%len(rendNative)], 40, 128)
			}
			k.call(rends[r%len(rends)], rendNative[r%len(rendNative)], 300, 64)
			k.touch(rends[(r+1)%len(rends)], atoms[r%len(atoms)], 40)

			// UI and utility traffic; every cluster keeps a pinned tie.
			for i := 0; i < 5; i++ {
				k.call(uis[(r+i)%len(uis)], uiNative[i%len(uiNative)], 150, 32)
			}
			k.call(uis[0], rends[0], 60, 32)
			k.call(uis[2], engs[0], 60, 32)
			for i := 0; i < 5; i++ {
				k.call(utils[i%len(utils)], utils[(i+9)%len(utils)], 80, 16)
			}
			for i := 0; i < 4; i++ {
				k.call(utils[(r+i)%len(utils)], uis[(r+i)%len(uis)], 24, 160)
			}
			k.call(miscs[r%len(miscs)], utils[(r+3)%len(utils)], 100, 16)
			k.call(miscs[r%len(miscs)], "ui.BIn", 12, 160)
			k.call(miscs[(r+7)%len(miscs)], rends[(r+2)%len(rends)], 50, 160)

			// Trajectory archive: eng appends snapshots; nothing reads
			// them back.
			k.poke(engs[r%len(engs)], snaps[r%len(snaps)], 190, 8)
			if r%2 == 1 {
				_, s := k.chain("traj.SnapArray", 1, 24<<10)
				snaps = append(snaps, s)
			}
			k.call(trajs[r%len(trajs)], trajs[(r+3)%len(trajs)], 10, 16)

			g, _ := k.chain("misc.B06", 240, 1000)
			k.freeGroup(g)
		}
		return k.err
	}
	return reg, driver, nil
}
