package apps

import (
	"strings"
	"testing"

	"aide/internal/trace"
)

func TestCatalogMatchesTable1(t *testing.T) {
	specs := All()
	if len(specs) != 5 {
		t.Fatalf("%d applications, want 5 (Table 1)", len(specs))
	}
	want := map[string]string{
		"JavaNote": "Content-based, memory intensive",
		"Dia":      "Content-based, memory intensive",
		"Biomer":   "Memory/CPU intensive",
		"Voxel":    "CPU intensive, interactive",
		"Tracer":   "CPU intensive, low interaction",
	}
	for _, s := range specs {
		if want[s.Name] != s.Profile {
			t.Errorf("%s profile = %q, want %q", s.Name, s.Profile, want[s.Name])
		}
		if s.RecordHeap <= s.EmuHeap {
			t.Errorf("%s: record heap must exceed the constrained heap", s.Name)
		}
	}
	if _, err := ByName("JavaNote"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown app accepted")
	}
}

func TestRecordProducesValidTraces(t *testing.T) {
	if testing.Short() {
		t.Skip("recording all applications is slow")
	}
	for _, spec := range All() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			tr, err := Record(spec)
			if err != nil {
				t.Fatal(err)
			}
			if err := tr.Validate(); err != nil {
				t.Fatal(err)
			}
			if tr.App != spec.Name {
				t.Errorf("trace app = %q", tr.App)
			}
			st := trace.ComputeStats(tr)
			if st.InteractionEvents < 10_000 {
				t.Errorf("only %d interaction events; workload too small", st.InteractionEvents)
			}
			if st.PeakLiveBytes <= 0 || st.SelfTime <= 0 {
				t.Errorf("degenerate stats: %+v", st)
			}
			// Every application needs pinned (native) classes — they seed
			// the client partition.
			pinned := 0
			for _, c := range tr.Classes {
				if c.Pinned {
					pinned++
				}
			}
			if pinned == 0 {
				t.Error("no pinned classes recorded")
			}
			// The memory-bound applications must pressure their
			// constrained heap.
			if !spec.CPUBound && st.PeakLiveBytes < spec.EmuHeap*9/10 {
				t.Errorf("peak live %d never pressures the %d heap", st.PeakLiveBytes, spec.EmuHeap)
			}
		})
	}
}

func TestJavaNoteShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tr, err := Record(JavaNote())
	if err != nil {
		t.Fatal(err)
	}
	// Table 2 shape: ~138 classes, ~1.2M interaction events.
	if n := len(tr.Classes); n < 120 || n > 160 {
		t.Errorf("JavaNote classes = %d, want ≈138", n)
	}
	st := trace.ComputeStats(tr)
	if st.InteractionEvents < 800_000 || st.InteractionEvents > 1_800_000 {
		t.Errorf("interaction events = %d, want ≈1.2M", st.InteractionEvents)
	}
	// The document must be stored in a primitive-array pseudo-class.
	foundArray := false
	for _, c := range tr.Classes {
		if c.Array && strings.HasPrefix(c.Name, "doc.") {
			foundArray = true
		}
	}
	if !foundArray {
		t.Error("doc.CharArray missing")
	}
}

func TestCacheMemoizes(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	c := NewCache()
	spec := Tracer()
	a, err := c.Get(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Get(spec)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("cache must return the same trace instance")
	}
}

func TestRecordingIsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	a, err := Record(Dia())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Record(Dia())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
}
