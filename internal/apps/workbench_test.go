package apps

import (
	"testing"
	"time"

	"aide/internal/monitor"
	"aide/internal/vm"
)

func testBench(t *testing.T) (*vm.Registry, *vm.VM, *monitor.Monitor) {
	t.Helper()
	b := newBench()
	b.worker("w.A", 10*time.Microsecond, 8)
	b.worker("w.B", 20*time.Microsecond, 8)
	b.nativeUI("n.UI", 5*time.Microsecond, 8)
	b.nativeMath("n.Math", 5*time.Microsecond, 8)
	b.array("a.Arr")
	reg, err := b.build()
	if err != nil {
		t.Fatal(err)
	}
	v := vm.New(reg, vm.Config{HeapCapacity: 8 << 20})
	m := monitor.New(monitor.RegistryMeta(reg))
	v.SetHooks(m)
	return reg, v, m
}

func TestBenchClassKinds(t *testing.T) {
	reg, _, _ := testBench(t)
	if reg.Class("w.A").Pinned() {
		t.Fatal("worker must not be pinned")
	}
	if !reg.Class("n.UI").Pinned() || reg.Class("n.UI").NativeStateless() {
		t.Fatal("nativeUI misclassified")
	}
	if !reg.Class("n.Math").Pinned() || !reg.Class("n.Math").NativeStateless() {
		t.Fatal("nativeMath misclassified")
	}
	if !reg.Class("a.Arr").Array {
		t.Fatal("array class not flagged")
	}
}

func TestBenchRejectsDuplicates(t *testing.T) {
	b := newBench()
	b.worker("dup", time.Microsecond, 8)
	b.worker("dup", time.Microsecond, 8)
	if _, err := b.build(); err == nil {
		t.Fatal("duplicate class accepted")
	}
}

func TestKitCallRecordsEdges(t *testing.T) {
	_, v, m := testBench(t)
	k := newKit(v.NewThread())
	k.hub("w.A", 64)
	k.hub("w.B", 64)
	k.call("w.A", "w.B", 7, 32)
	if k.failed() {
		t.Fatal(k.err)
	}
	g := m.Graph()
	a, _ := g.Lookup("w.A")
	bn, _ := g.Lookup("w.B")
	e := g.Edge(a.ID, bn.ID)
	if e == nil || e.Invocations != 7 {
		t.Fatalf("edge = %+v, want 7 invocations", e)
	}
	if bn.CPUTime != 7*20*time.Microsecond {
		t.Fatalf("B CPU = %v", bn.CPUTime)
	}
}

func TestKitTouchAndPoke(t *testing.T) {
	_, v, m := testBench(t)
	k := newKit(v.NewThread())
	k.hub("w.A", 64)
	_, arr := k.chain("a.Arr", 1, 4096)
	k.poke("w.A", arr, 3, 256)
	k.touch("w.A", arr, 5)
	if k.failed() {
		t.Fatal(k.err)
	}
	g := m.Graph()
	a, _ := g.Lookup("w.A")
	an, ok := g.Lookup("a.Arr")
	if !ok {
		t.Fatal("array class missing from graph")
	}
	e := g.Edge(a.ID, an.ID)
	if e == nil || e.Accesses != 8 {
		t.Fatalf("edge = %+v, want 8 accesses", e)
	}
	// Touch reads back what poke wrote: 256-byte payloads.
	if e.Bytes < 5*256 {
		t.Fatalf("edge bytes = %d; touch should read the poked payload", e.Bytes)
	}
}

func TestKitChainKeepsObjectsAlive(t *testing.T) {
	_, v, _ := testBench(t)
	k := newKit(v.NewThread())
	group, head := k.chain("w.A", 10, 1000)
	if k.failed() {
		t.Fatal(k.err)
	}
	if head == vm.InvalidObject {
		t.Fatal("no head")
	}
	v.Collect()
	if got := v.Heap().Live; got != 10*1000 {
		t.Fatalf("live = %d, want 10000 (chain rooted)", got)
	}
	k.freeGroup(group)
	v.Collect()
	if got := v.Heap().Live; got != 0 {
		t.Fatalf("live = %d after freeGroup, want 0", got)
	}
}

func TestKitErrorPropagation(t *testing.T) {
	_, v, _ := testBench(t)
	k := newKit(v.NewThread())
	k.call("w.A", "w.B", 1, 0) // no hubs yet: must fail and stick
	if !k.failed() {
		t.Fatal("missing hub not reported")
	}
	// Subsequent operations are no-ops after failure.
	k.hub("w.A", 64)
	if k.hubs["w.A"] != vm.InvalidObject {
		t.Fatal("operations after failure must be inert")
	}
}

func TestNamesOf(t *testing.T) {
	names := namesOf("x.%02d", 3)
	if len(names) != 3 || names[0] != "x.00" || names[2] != "x.02" {
		t.Fatalf("names = %v", names)
	}
}
