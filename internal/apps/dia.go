package apps

import (
	"time"

	"aide/internal/vm"
)

// Dia calibration knobs. The scenario models an image-manipulation session:
// load an image into tiled pixel buffers, then apply filters while the UI
// previews the result. Targets: moderate cut coupling (Figure 6 overhead
// ≈8–9%), a cold undo-history cluster that a lower min-free policy can
// offload cheaply (Figure 7 improvement 30–43%), and a significant native
// share among remote invocations (Figure 8).
const (
	diaRounds = 40

	diaPixelTiles   = 40
	diaPixelTileSz  = 90 << 10
	diaLayerClasses = 10
	diaLayerObjects = 34
	diaLayerSize    = 1800

	diaUndoSnapshots = 12
	diaUndoSnapSize  = 56 << 10
	diaUndoPerRound  = 1 // snapshots appended per editing round

	diaCacheClasses = 8
	diaCacheObjects = 20
	diaCacheSize    = 2200
)

// Dia returns the image-manipulation program of Table 1.
func Dia() *Spec {
	return &Spec{
		Name:        "Dia",
		Description: "Image manipulation program",
		Profile:     "Content-based, memory intensive",
		RecordHeap:  12 << 20,
		EmuHeap:     6 << 20,
		Build:       buildDia,
	}
}

func buildDia() (*vm.Registry, Driver, error) {
	b := newBench()

	uiNative := []string{"ui.Canvas", "ui.Render", "ui.Pointer", "ui.Dialog"}
	for _, n := range uiNative {
		b.nativeUI(n, 35*time.Microsecond, 16)
	}
	uiW := namesOf("ui.W%02d", 20)
	for _, n := range uiW {
		b.worker(n, 20*time.Microsecond, 8)
	}

	b.worker("img.Image", 30*time.Microsecond, 8)
	layers := namesOf("img.Layer%02d", diaLayerClasses)
	for _, n := range layers {
		b.worker(n, 30*time.Microsecond, 8)
	}
	b.array("img.PixelArray")
	b.array("img.UndoArray")
	undos := namesOf("img.Undo%02d", 6)
	for _, n := range undos {
		b.worker(n, 25*time.Microsecond, 8)
	}

	filts := namesOf("filt.Op%02d", 16)
	for _, n := range filts {
		b.worker(n, 45*time.Microsecond, 8)
	}
	geoms := namesOf("geom.G%02d", 12)
	for _, n := range geoms {
		b.worker(n, 25*time.Microsecond, 8)
	}

	utils := namesOf("util.D%02d", 16)
	for _, n := range utils {
		b.worker(n, 15*time.Microsecond, 8)
	}
	b.nativeMath("util.Gfx", 20*time.Microsecond, 8)
	b.nativeMath("util.Mx", 12*time.Microsecond, 8)

	b.nativeUI("io.Load", 40*time.Microsecond, 16)
	b.worker("io.Dec", 20*time.Microsecond, 8)
	ios := namesOf("io.D%02d", 4)
	for _, n := range ios {
		b.worker(n, 20*time.Microsecond, 8)
	}

	reg, err := b.build()
	if err != nil {
		return nil, nil, err
	}

	driver := func(th *vm.Thread) error {
		k := newKit(th)
		all := make([]string, 0, 120)
		all = append(all, uiNative...)
		all = append(all, uiW...)
		all = append(all, "img.Image")
		all = append(all, layers...)
		all = append(all, undos...)
		all = append(all, filts...)
		all = append(all, geoms...)
		all = append(all, utils...)
		all = append(all, "util.Gfx", "util.Mx", "io.Load", "io.Dec")
		all = append(all, ios...)
		for _, n := range all {
			k.hub(n, 256)
		}

		// --- Load the image. ---
		k.call("io.Dec", "io.Load", 900, 1024)
		k.call("img.Image", "io.Dec", 600, 512)
		// Undo baseline loads first (the previous session's history), so
		// an early-trigger policy finds it available to offload.
		for i := 0; i < diaUndoSnapshots; i++ {
			_, snap := k.chain("img.UndoArray", 1, diaUndoSnapSize)
			k.poke(undos[i%len(undos)], snap, 1, 2048)
		}
		for _, u := range undos {
			k.chain(u, 12, 900)
		}
		var tiles []vm.ObjectID
		for i := 0; i < diaPixelTiles; i++ {
			_, tile := k.chain("img.PixelArray", 1, diaPixelTileSz)
			k.poke("img.Image", tile, 1, 8192)
			tiles = append(tiles, tile)
		}
		for _, l := range layers {
			k.chain(l, diaLayerObjects, diaLayerSize)
		}
		for i := 0; i < diaCacheClasses; i++ {
			k.chain(utils[i%len(utils)], diaCacheObjects, diaCacheSize)
		}
		// Decode churn.
		for i := 0; i < 16; i++ {
			g, _ := k.chain("util.D08", 70, 2400)
			k.freeGroup(g)
		}

		// --- Filter + preview rounds. ---
		for r := 0; r < diaRounds && !k.failed(); r++ {
			// UI traffic.
			for i := 0; i < 10; i++ {
				k.call("ui.W00", uiW[(r+i)%len(uiW)], 200, 48)
			}
			for i := 0; i < 6; i++ {
				k.call(uiW[(r+i)%len(uiW)], "ui.Render", 50, 64)
			}
			k.call("ui.W01", "ui.Pointer", 80, 16)

			// Filters grind the image data (surrogate-internal once
			// offloaded).
			for i := 0; i < 10; i++ {
				k.call(filts[(r+i)%len(filts)], layers[(r+i)%len(layers)], 260, 48)
			}
			for i := 0; i < 8; i++ {
				k.call(layers[i%len(layers)], layers[(i+3)%len(layers)], 220, 32)
			}
			for i := 0; i < 10; i++ {
				k.touch(layers[i%len(layers)], tiles[(r+i)%len(tiles)], 60)
			}
			for i := 0; i < 6; i++ {
				k.call(filts[i%len(filts)], filts[(i+5)%len(filts)], 150, 32)
			}
			k.call("img.Image", layers[r%len(layers)], 120, 64)

			// The UI previews pixel data directly: the medium-weight cut
			// edges that make Dia's offload cost more than JavaNote's.
			k.call("ui.W02", "img.Image", 75, 96)
			k.touch("ui.Render", tiles[r%len(tiles)], 40)
			k.call(uiW[(r+4)%len(uiW)], layers[(r+1)%len(layers)], 35, 64)

			// Image code calls rendering and math natives.
			k.call(layers[r%len(layers)], "ui.Render", 35, 96)
			k.call(filts[r%len(filts)], "util.Gfx", 30, 64)
			k.call(layers[(r+2)%len(layers)], "util.Mx", 15, 16)

			// Geometry + utility meshes.
			for i := 0; i < 6; i++ {
				k.call(geoms[i%len(geoms)], geoms[(i+4)%len(geoms)], 90, 24)
			}
			k.call(geoms[(r+1)%len(geoms)], "ui.Dialog", 15, 24)
			k.call(geoms[r%len(geoms)], utils[r%len(utils)], 70, 24)
			for i := 0; i < 4; i++ {
				k.call(utils[i%len(utils)], utils[(i+7)%len(utils)], 60, 16)
			}
			for i := 0; i < 4; i++ {
				k.call(utils[(r+i)%len(utils)], "ui.Canvas", 15, 128)
			}

			// Undo history: cold append-only snapshots (written, never
			// read back) — the cheap offload a 10% min-free policy finds.
			k.call("img.Image", undos[r%len(undos)], 95, 48)
			for i := 0; i < diaUndoPerRound; i++ {
				_, snap := k.chain("img.UndoArray", 1, 10<<10)
				k.poke(undos[r%len(undos)], snap, 90, 8)
			}

			// Scratch garbage.
			g, _ := k.chain("util.D09", 180, 1100)
			k.freeGroup(g)
		}
		return k.err
	}
	return reg, driver, nil
}
