package apps

import (
	"fmt"
	"sync"

	"aide/internal/monitor"
	"aide/internal/trace"
	"aide/internal/vm"
)

// Record runs the application scenario to completion on a single,
// unconstrained VM with monitoring attached and returns the extracted
// execution trace — the paper's trace-acquisition procedure (§4: "The
// traces for an application were extracted from the prototype while
// running the application to completion on a single PC").
func Record(spec *Spec) (*trace.Trace, error) {
	reg, driver, err := spec.Build()
	if err != nil {
		return nil, fmt.Errorf("apps: build %s: %w", spec.Name, err)
	}
	meta := monitor.RegistryMeta(reg)
	v := vm.New(reg, vm.Config{
		Role:         vm.RoleClient,
		HeapCapacity: spec.RecordHeap,
		// Frequent cycles give the emulator a dense stream of object
		// deaths to replay.
		GCBytesTrigger: 512 << 10,
	})
	mon := monitor.New(meta)
	rec := monitor.NewRecorder(spec.Name, spec.RecordHeap, meta)
	mon.SetRecorder(rec)
	v.SetHooks(mon)
	th := v.NewThread()
	if err := driver(th); err != nil {
		return nil, fmt.Errorf("apps: run %s: %w", spec.Name, err)
	}
	// Flush remaining garbage so the trace carries final object deaths.
	v.Collect()
	t := rec.Trace()
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("apps: %s produced an inconsistent trace: %w", spec.Name, err)
	}
	return t, nil
}

// Cache memoizes recorded traces by application name: trace extraction
// runs a full scenario through the VM, so experiments share one recording.
//
// Recording is per-entry singleflight: the cache's mutex guards only the
// entry map, never a Record call, so recordings of different applications
// proceed concurrently, concurrent Gets of the same application record
// exactly once, and Gets of an already-warm trace never contend.
type Cache struct {
	mu      sync.Mutex
	entries map[string]*cacheEntry
}

// cacheEntry is one application's recording flight.
type cacheEntry struct {
	once sync.Once
	t    *trace.Trace
	err  error
}

// NewCache returns an empty trace cache.
func NewCache() *Cache {
	return &Cache{entries: make(map[string]*cacheEntry)}
}

// Get returns the cached trace for the spec, recording it on first use.
// Concurrent callers for the same spec share a single Record call; a
// failed recording is reported to every waiter of that flight and then
// forgotten, so a later Get retries.
func (c *Cache) Get(spec *Spec) (*trace.Trace, error) {
	c.mu.Lock()
	e, ok := c.entries[spec.Name]
	if !ok {
		e = &cacheEntry{}
		c.entries[spec.Name] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.t, e.err = Record(spec) })
	if e.err != nil {
		c.mu.Lock()
		if c.entries[spec.Name] == e {
			delete(c.entries, spec.Name)
		}
		c.mu.Unlock()
	}
	return e.t, e.err
}

// All returns the five study applications of Table 1.
func All() []*Spec {
	return []*Spec{JavaNote(), Dia(), Biomer(), Voxel(), Tracer()}
}

// ByName returns the named application spec.
func ByName(name string) (*Spec, error) {
	for _, s := range All() {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("apps: unknown application %q", name)
}
