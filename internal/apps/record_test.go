package apps

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aide/internal/trace"
	"aide/internal/vm"
)

// tinySpec is a minimal recordable application whose Build invocations are
// counted, with an optional one-shot transient failure.
func tinySpec(builds *atomic.Int32, failFirst *atomic.Bool) *Spec {
	return &Spec{
		Name:       "tiny",
		RecordHeap: 1 << 20,
		Build: func() (*vm.Registry, Driver, error) {
			builds.Add(1)
			if failFirst != nil && failFirst.CompareAndSwap(true, false) {
				return nil, nil, errors.New("transient build failure")
			}
			b := newBench()
			b.worker("Tiny", time.Microsecond, 8)
			reg, err := b.build()
			if err != nil {
				return nil, nil, err
			}
			driver := func(th *vm.Thread) error {
				id, err := th.New("Tiny", 256)
				if err != nil {
					return err
				}
				for i := 0; i < 16; i++ {
					if _, err := th.Invoke(id, "ping", vm.Int(0)); err != nil {
						return err
					}
				}
				return nil
			}
			return reg, driver, nil
		},
	}
}

// TestCacheConcurrentGetRecordsOnce checks the singleflight contract:
// concurrent Gets of the same spec share one Record call and one trace.
func TestCacheConcurrentGetRecordsOnce(t *testing.T) {
	var builds atomic.Int32
	spec := tinySpec(&builds, nil)
	c := NewCache()

	const callers = 16
	traces := make([]*trace.Trace, callers)
	errs := make([]error, callers)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			traces[i], errs[i] = c.Get(spec)
		}(i)
	}
	close(start)
	wg.Wait()

	if n := builds.Load(); n != 1 {
		t.Fatalf("Build ran %d times, want exactly 1", n)
	}
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: %v", i, errs[i])
		}
		if traces[i] == nil || traces[i] != traces[0] {
			t.Fatalf("caller %d got a different trace pointer", i)
		}
	}
}

// TestCacheRetriesAfterFailure checks that a failed flight reports its error
// to that flight's waiters but is then forgotten, so a later Get re-records.
func TestCacheRetriesAfterFailure(t *testing.T) {
	var builds atomic.Int32
	var failFirst atomic.Bool
	failFirst.Store(true)
	spec := tinySpec(&builds, &failFirst)
	c := NewCache()

	if _, err := c.Get(spec); err == nil {
		t.Fatal("first Get should surface the transient build failure")
	}
	tr, err := c.Get(spec)
	if err != nil {
		t.Fatalf("second Get: %v", err)
	}
	if tr == nil {
		t.Fatal("second Get returned a nil trace")
	}
	if n := builds.Load(); n != 2 {
		t.Fatalf("Build ran %d times, want 2 (fail, then retry)", n)
	}

	// A third Get must hit the cache.
	tr2, err := c.Get(spec)
	if err != nil || tr2 != tr {
		t.Fatalf("third Get: trace=%p err=%v, want cached %p", tr2, err, tr)
	}
	if n := builds.Load(); n != 2 {
		t.Fatalf("Build ran %d times after warm Get, want 2", n)
	}
}
