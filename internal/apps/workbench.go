// Package apps provides the five study applications of the paper's Table 1
// — JavaNote, Dia, Biomer, Voxel, and Tracer — as synthetic workloads that
// execute on the interpreted VM.
//
// The original 2001 Java applications are not available; each workload here
// is calibrated to the structural characteristics the paper reports (class
// counts, memory distribution, native-call mix, inter-class coupling, CPU
// locality) so that monitoring, partitioning, and offloading traverse the
// same decision space. DESIGN.md documents the substitution.
package apps

import (
	"fmt"
	"time"

	"aide/internal/vm"
)

// Driver runs an application scenario on a VM thread.
type Driver func(th *vm.Thread) error

// Spec describes one application.
type Spec struct {
	// Name is the application name as the paper uses it.
	Name string

	// Description and Profile reproduce the paper's Table 1 entries.
	Description string
	Profile     string

	// RecordHeap is a heap size under which the scenario completes
	// without memory exhaustion (trace extraction runs use it).
	RecordHeap int64

	// EmuHeap is the constrained client heap the paper's experiments
	// emulate for this application.
	EmuHeap int64

	// CPUBound marks the applications studied under processing
	// constraints (paper §5.2).
	CPUBound bool

	// Build registers the application's classes into a fresh registry and
	// returns the scenario driver.
	Build func() (*vm.Registry, Driver, error)
}

// bench is the class-definition workbench shared by the application
// builders.
type bench struct {
	reg *vm.Registry
	err error
}

func newBench() *bench { return &bench{reg: vm.NewRegistry()} }

func (b *bench) fail(err error) {
	if b.err == nil {
		b.err = err
	}
}

// worker defines a regular (offloadable) class. Its "ping" method performs
// pingWork of computation and returns retBytes of payload; "call" fans out
// count pings to a target object; "touch" reads an object's data field
// count times; "store"/"drop" manage a retained reference.
func (b *bench) worker(name string, pingWork time.Duration, retBytes int) {
	b.defineClass(name, pingWork, retBytes, false, false)
}

// nativeUI defines a class with a native, stateful method (screen, input,
// file system): pinned to the client.
func (b *bench) nativeUI(name string, pingWork time.Duration, retBytes int) {
	b.defineClass(name, pingWork, retBytes, true, false)
}

// nativeMath defines a class whose native methods are stateless and
// idempotent (math functions, string copies): pinned, but eligible for the
// §5.2 local-execution enhancement.
func (b *bench) nativeMath(name string, pingWork time.Duration, retBytes int) {
	b.defineClass(name, pingWork, retBytes, true, true)
}

// array defines a primitive-array pseudo-class: data only, no methods.
func (b *bench) array(name string) {
	if b.err != nil {
		return
	}
	_, err := b.reg.Register(vm.ClassSpec{
		Name:   name,
		Fields: []string{"next", "data"},
		Array:  true,
	})
	if err != nil {
		b.fail(err)
	}
}

func (b *bench) defineClass(name string, pingWork time.Duration, retBytes int, native, stateless bool) {
	if b.err != nil {
		return
	}
	ret := vm.Int(0)
	if retBytes > 8 {
		ret = vm.Blob(make([]byte, retBytes))
	}
	ping := func(th *vm.Thread, self vm.ObjectID, args []vm.Value) (vm.Value, error) {
		th.Work(pingWork)
		return ret, nil
	}
	_, err := b.reg.Register(vm.ClassSpec{
		Name:   name,
		Fields: []string{"next", "head"},
		Methods: []vm.MethodSpec{
			{Name: "ping", Native: native, Stateless: stateless, Body: ping},
			{Name: "call", Body: func(th *vm.Thread, self vm.ObjectID, args []vm.Value) (vm.Value, error) {
				// args: target ref, count, payload bytes
				if len(args) != 3 {
					return vm.Nil(), fmt.Errorf("call expects (target, count, payloadBytes)")
				}
				payload := vm.Int(0)
				if n := args[2].I; n > 8 {
					payload = vm.Blob(make([]byte, n))
				}
				for i := int64(0); i < args[1].I; i++ {
					if _, err := th.Invoke(args[0].Ref, "ping", payload); err != nil {
						return vm.Nil(), err
					}
				}
				return vm.Nil(), nil
			}},
			{Name: "touch", Body: func(th *vm.Thread, self vm.ObjectID, args []vm.Value) (vm.Value, error) {
				// args: target ref, count — data-field accesses.
				if len(args) != 2 {
					return vm.Nil(), fmt.Errorf("touch expects (target, count)")
				}
				for i := int64(0); i < args[1].I; i++ {
					if _, err := th.GetField(args[0].Ref, "data"); err != nil {
						return vm.Nil(), err
					}
				}
				return vm.Nil(), nil
			}},
			{Name: "poke", Body: func(th *vm.Thread, self vm.ObjectID, args []vm.Value) (vm.Value, error) {
				// args: target ref, count, payload bytes — data-field writes.
				if len(args) != 3 {
					return vm.Nil(), fmt.Errorf("poke expects (target, count, payloadBytes)")
				}
				payload := vm.Int(0)
				if n := args[2].I; n > 8 {
					payload = vm.Blob(make([]byte, n))
				}
				for i := int64(0); i < args[1].I; i++ {
					if err := th.SetField(args[0].Ref, "data", payload); err != nil {
						return vm.Nil(), err
					}
				}
				return vm.Nil(), nil
			}},
			{Name: "store", Body: func(th *vm.Thread, self vm.ObjectID, args []vm.Value) (vm.Value, error) {
				if len(args) != 1 {
					return vm.Nil(), fmt.Errorf("store expects (ref)")
				}
				return vm.Nil(), th.SetField(self, "head", args[0])
			}},
			{Name: "drop", Body: func(th *vm.Thread, self vm.ObjectID, args []vm.Value) (vm.Value, error) {
				return vm.Nil(), th.SetField(self, "head", vm.Nil())
			}},
		},
	})
	if err != nil {
		b.fail(err)
	}
}

// build finalizes the workbench.
func (b *bench) build() (*vm.Registry, error) {
	if b.err != nil {
		return nil, b.err
	}
	return b.reg, nil
}

// driverKit bundles the operations scenario drivers perform at top level.
type driverKit struct {
	th  *vm.Thread
	err error

	// hubs maps class name to that class's hub object (one per class).
	hubs map[string]vm.ObjectID

	groups int
}

func newKit(th *vm.Thread) *driverKit {
	return &driverKit{th: th, hubs: make(map[string]vm.ObjectID)}
}

func (k *driverKit) failed() bool { return k.err != nil }

func (k *driverKit) fail(err error) {
	if k.err == nil {
		k.err = err
	}
}

// hub creates (once) a singleton object of the class, rooted for the
// duration of the scenario, sized objSize.
func (k *driverKit) hub(class string, objSize int64) vm.ObjectID {
	if k.err != nil {
		return vm.InvalidObject
	}
	if id, ok := k.hubs[class]; ok {
		return id
	}
	id, err := k.th.New(class, objSize)
	if err != nil {
		k.fail(fmt.Errorf("hub %s: %w", class, err))
		return vm.InvalidObject
	}
	k.th.VM().SetRoot("hub:"+class, id)
	k.hubs[class] = id
	k.th.ClearTemps()
	return id
}

// chain allocates count objects of the class, each of size bytes, linked
// through their "next" fields and rooted under a fresh group name. It
// returns the group name (for freeGroup) and the head object.
func (k *driverKit) chain(class string, count int, size int64) (string, vm.ObjectID) {
	if k.err != nil {
		return "", vm.InvalidObject
	}
	k.groups++
	group := fmt.Sprintf("group:%d", k.groups)
	var head vm.ObjectID
	for i := 0; i < count; i++ {
		id, err := k.th.New(class, size)
		if err != nil {
			k.fail(fmt.Errorf("chain %s[%d]: %w", class, i, err))
			return group, vm.InvalidObject
		}
		if head != vm.InvalidObject {
			if err := k.th.SetField(id, "next", vm.RefOf(head)); err != nil {
				k.fail(err)
				return group, vm.InvalidObject
			}
		}
		head = id
		// Root the head as we go so a mid-chain collection keeps the
		// partial chain alive, then release the temp protection.
		k.th.VM().SetRoot(group, head)
		k.th.ClearTemps()
	}
	return group, head
}

// freeGroup unroots a chain; its objects become garbage at the next
// collection.
func (k *driverKit) freeGroup(group string) {
	k.th.VM().SetRoot(group, vm.InvalidObject)
}

// call drives count interactions from the hub of one class to the hub of
// another: the monitored edge from→to accumulates count invocations of
// payloadBytes each.
func (k *driverKit) call(from, to string, count int, payloadBytes int64) {
	if k.err != nil {
		return
	}
	src, ok := k.hubs[from]
	if !ok {
		k.fail(fmt.Errorf("call: no hub for %s", from))
		return
	}
	dst, ok := k.hubs[to]
	if !ok {
		k.fail(fmt.Errorf("call: no hub for %s", to))
		return
	}
	if _, err := k.th.Invoke(src, "call", vm.RefOf(dst), vm.Int(int64(count)), vm.Int(payloadBytes)); err != nil {
		k.fail(fmt.Errorf("call %s->%s: %w", from, to, err))
	}
}

// callObj drives count interactions from a class hub to a specific object.
func (k *driverKit) callObj(from string, target vm.ObjectID, count int, payloadBytes int64) {
	if k.err != nil {
		return
	}
	src, ok := k.hubs[from]
	if !ok {
		k.fail(fmt.Errorf("callObj: no hub for %s", from))
		return
	}
	if _, err := k.th.Invoke(src, "call", vm.RefOf(target), vm.Int(int64(count)), vm.Int(payloadBytes)); err != nil {
		k.fail(fmt.Errorf("callObj %s: %w", from, err))
	}
}

// touch drives count data-field reads from a class hub to a target object
// (typically an array).
func (k *driverKit) touch(from string, target vm.ObjectID, count int) {
	if k.err != nil {
		return
	}
	src, ok := k.hubs[from]
	if !ok {
		k.fail(fmt.Errorf("touch: no hub for %s", from))
		return
	}
	if _, err := k.th.Invoke(src, "touch", vm.RefOf(target), vm.Int(int64(count))); err != nil {
		k.fail(fmt.Errorf("touch %s: %w", from, err))
	}
}

// poke drives count data-field writes of payloadBytes from a class hub to
// a target object (typically an array).
func (k *driverKit) poke(from string, target vm.ObjectID, count int, payloadBytes int64) {
	if k.err != nil {
		return
	}
	src, ok := k.hubs[from]
	if !ok {
		k.fail(fmt.Errorf("poke: no hub for %s", from))
		return
	}
	if _, err := k.th.Invoke(src, "poke", vm.RefOf(target), vm.Int(int64(count)), vm.Int(payloadBytes)); err != nil {
		k.fail(fmt.Errorf("poke %s: %w", from, err))
	}
}
