package apps

import (
	"fmt"
	"time"

	"aide/internal/vm"
)

// namesOf expands a numbered class-name family.
func namesOf(format string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf(format, i)
	}
	return out
}

// JavaNote calibration knobs. The scenario reproduces the paper's §5.1
// JavaNote study: load a 600 KB text file into a simple text editor, then
// edit and scroll. Targets: ~138 classes, ~1.2 M interaction events,
// ~31.6 s of PC-speed execution (Table 2, §5.1 monitoring study), heap
// pressure near 6 MB, a weakly coupled document-data cluster whose offload
// costs <10% overhead (Figure 6), and a large native share among remote
// invocations (Figure 8).
const (
	jnEditRounds = 75

	jnCharSegments = 42       // 600 KB document stored in char arrays with
	jnCharSegSize  = 64 << 10 // editor expansion (gap buffers, undo spans)

	jnDocPartClasses = 16
	jnDocPartObjects = 36
	jnDocPartSize    = 2000

	jnBufferCaches   = 24
	jnBufferCacheSz  = 20000
	jnLineIdxEntries = 16
	jnLineIdxSize    = 8000

	jnUtilCacheClasses = 6
	jnUtilCacheObjects = 30
	jnUtilCacheSize    = 3000

	jnWidgetObjects = 64
	jnWidgetSize    = 3000
)

// JavaNote returns the simple text editor of Table 1.
func JavaNote() *Spec {
	return &Spec{
		Name:        "JavaNote",
		Description: "Simple text editor",
		Profile:     "Content-based, memory intensive",
		RecordHeap:  12 << 20,
		EmuHeap:     6 << 20,
		Build:       buildJavaNote,
	}
}

func buildJavaNote() (*vm.Registry, Driver, error) {
	b := newBench()

	// GUI toolkit: framebuffer, fonts, input — native, pinned.
	guiNative := []string{"gui.Screen", "gui.Font", "gui.Framebuffer", "gui.Input", "gui.Clipboard", "gui.Sound"}
	for _, n := range guiNative {
		b.nativeUI(n, 30*time.Microsecond, 16)
	}
	widgets := namesOf("gui.Widget%02d", 24)
	for _, n := range widgets {
		b.worker(n, 20*time.Microsecond, 8)
	}

	// Editor core.
	b.worker("edit.Controller", 25*time.Microsecond, 8)
	b.worker("edit.UndoMgr", 25*time.Microsecond, 8)
	cores := namesOf("edit.Core%02d", 18)
	for _, n := range cores {
		b.worker(n, 25*time.Microsecond, 8)
	}

	// Document data: the content the 600 KB file expands into.
	b.worker("doc.TextBuffer", 30*time.Microsecond, 8)
	b.worker("doc.LineIndex", 30*time.Microsecond, 8)
	parts := namesOf("doc.Part%02d", jnDocPartClasses)
	for _, n := range parts {
		b.worker(n, 30*time.Microsecond, 8)
	}
	b.array("doc.CharArray")

	// Utility library: strings, math; the native members are stateless.
	utils := namesOf("util.Str%02d", 28)
	for _, n := range utils {
		b.worker(n, 15*time.Microsecond, 8)
	}
	b.nativeMath("util.StrOps", 18*time.Microsecond, 8)
	b.nativeMath("util.Math", 12*time.Microsecond, 8)

	// I/O and system property classes (host-specific; pinned).
	b.nativeUI("io.File", 40*time.Microsecond, 16)
	b.worker("io.Codec", 20*time.Microsecond, 8)
	ios := namesOf("io.Misc%02d", 8)
	for _, n := range ios {
		b.worker(n, 20*time.Microsecond, 8)
	}
	b.nativeUI("sys.Runtime", 25*time.Microsecond, 8)
	sysProps := namesOf("sys.Prop%02d", 9)
	for _, n := range sysProps {
		b.worker(n, 15*time.Microsecond, 8)
	}
	misc := namesOf("misc.Helper%02d", 19)
	for _, n := range misc {
		b.worker(n, 15*time.Microsecond, 8)
	}

	reg, err := b.build()
	if err != nil {
		return nil, nil, err
	}

	driver := func(th *vm.Thread) error {
		k := newKit(th)
		all := make([]string, 0, 160)
		all = append(all, guiNative...)
		all = append(all, widgets...)
		all = append(all, "edit.Controller", "edit.UndoMgr")
		all = append(all, cores...)
		all = append(all, "doc.TextBuffer", "doc.LineIndex")
		all = append(all, parts...)
		all = append(all, utils...)
		all = append(all, "util.StrOps", "util.Math", "io.File", "io.Codec")
		all = append(all, ios...)
		all = append(all, "sys.Runtime")
		all = append(all, sysProps...)
		all = append(all, misc...)
		for _, n := range all {
			k.hub(n, 256)
		}

		// --- Startup: widget tree, menu text. ---
		k.chain("gui.Widget00", jnWidgetObjects, jnWidgetSize)
		_, menu := k.chain("doc.CharArray", 30, 2000)
		k.poke("gui.Framebuffer", menu, 1, 1800)

		// --- Load the 600 KB file. ---
		k.call("io.Codec", "io.File", 1200, 512) // native file reads
		k.call("doc.TextBuffer", "io.Codec", 800, 256)
		var charSegs []vm.ObjectID
		for i := 0; i < jnCharSegments; i++ {
			_, seg := k.chain("doc.CharArray", 1, jnCharSegSize)
			k.poke("doc.TextBuffer", seg, 1, 4096)
			charSegs = append(charSegs, seg)
		}
		for _, p := range parts {
			k.chain(p, jnDocPartObjects, jnDocPartSize)
		}
		k.chain("doc.TextBuffer", jnBufferCaches, jnBufferCacheSz)
		k.chain("doc.LineIndex", jnLineIdxEntries, jnLineIdxSize)
		for i := 0; i < jnUtilCacheClasses; i++ {
			k.chain(utils[i], jnUtilCacheObjects, jnUtilCacheSize)
		}
		// Parse churn: transient garbage exercising the collector.
		for i := 0; i < 20; i++ {
			g, _ := k.chain("util.Str20", 30, 2500)
			k.freeGroup(g)
		}

		// --- Edit and scroll. ---
		for r := 0; r < jnEditRounds && !k.failed(); r++ {
			// GUI traffic: events, layout, repaints. The widget↔native
			// coupling is massive — that is what anchors the GUI side of
			// the graph to the pinned classes.
			for i := 0; i < 12; i++ {
				k.call("gui.Widget00", widgets[(r+i)%len(widgets)], 220, 48)
				k.call(widgets[(r+i)%len(widgets)], "gui.Screen", 150, 128)
			}
			for i := 0; i < 6; i++ {
				k.call(widgets[(r+2*i)%len(widgets)], "gui.Font", 60, 64)
				k.call(widgets[(r+2*i+1)%len(widgets)], "gui.Framebuffer", 50, 96)
			}
			k.call("gui.Widget01", "gui.Input", 60, 16)
			k.call("gui.Widget02", "edit.Controller", 36, 32)
			k.call("edit.Controller", "gui.Screen", 12, 64)

			// Editor core mesh.
			for i := 0; i < 6; i++ {
				k.call("edit.Controller", cores[(r+i)%len(cores)], 180, 40)
			}
			for i := 0; i < 8; i++ {
				k.call(cores[i%len(cores)], cores[(i+3)%len(cores)], 160, 32)
			}
			for i := 0; i < 6; i++ {
				k.call(cores[(r+i)%len(cores)], utils[(r+2*i)%len(utils)], 120, 24)
			}
			for i := 0; i < 6; i++ {
				k.call(utils[i%len(utils)], utils[(i+5)%len(utils)], 80, 16)
			}
			k.call("edit.Core00", "util.Math", 15, 16)
			k.call("edit.Core01", "util.Math", 15, 16)
			k.call("edit.Core02", "util.StrOps", 15, 24)
			k.call("edit.Core03", "util.StrOps", 15, 24)

			// The editor↔document boundary: batched, low-rate relative to
			// the meshes on either side (this is the cut the partitioner
			// should find).
			k.call("edit.Controller", "doc.TextBuffer", 20, 80)
			k.call("edit.Controller", "doc.LineIndex", 10, 24)

			// Document internals: heavy, self-contained.
			for i := 0; i < 12; i++ {
				k.call(parts[i%len(parts)], parts[(i+5)%len(parts)], 400, 32)
			}
			for i := 0; i < 16; i++ {
				k.call("doc.TextBuffer", parts[(r+i)%len(parts)], 90, 64)
			}
			for i := 0; i < 16; i++ {
				k.touch(parts[i%len(parts)], charSegs[(r+i)%len(charSegs)], 50)
			}
			k.touch("doc.TextBuffer", charSegs[r%len(charSegs)], 40)

			// Document rendering callbacks and string natives: these are
			// the remote native calls of Figure 8 once the document is
			// offloaded. Light in bytes so they do not pull the document
			// toward the pinned classes during partitioning.
			k.call("doc.TextBuffer", "gui.Screen", 14, 48)
			k.call("doc.TextBuffer", "util.StrOps", 18, 32)
			k.call(parts[r%len(parts)], "util.Math", 6, 16)

			// Undo log growth plus per-round scratch garbage.
			k.chain(parts[(r+7)%len(parts)], 5, 3800)
			g, _ := k.chain("misc.Helper00", 40, 1200)
			k.freeGroup(g)
		}
		return k.err
	}
	return reg, driver, nil
}
