package apps

import (
	"time"

	"aide/internal/vm"
)

// Voxel calibration knobs. The scenario models an interactive fractal
// landscape generator: terrain generators grind heightmap tiles while the
// native display blits them every frame. Targets (Figure 10): the initial
// class-granularity offload is slightly *slower* than local execution
// (math natives route back to the client; whole-class array placement
// forces heavy tile traffic across the link), each enhancement alone
// recovers part of the loss, and both combined run ~15% faster than local.
const (
	voxFrames = 40

	voxRenderTiles = 12 // tiles read by the display every frame
	voxBackTiles   = 12 // scratch tiles only the generators touch
	voxTileSize    = 60 << 10

	// Generator work per ping, recorded at tracing-PC speed. Figure 10
	// emulates the client at voxClientSlowdown× (the Jornada), making the
	// original run land near the paper's ~5900 s scale.
	voxGenWork = 1500 * time.Microsecond
)

// VoxelClientSlowdown is the Figure 10 client-speed factor for Voxel.
const VoxelClientSlowdown = 10.0

// Voxel returns the fractal landscape generator of Table 1.
func Voxel() *Spec {
	return &Spec{
		Name:        "Voxel",
		Description: "Fractal landscape generator",
		Profile:     "CPU intensive, interactive",
		RecordHeap:  12 << 20,
		EmuHeap:     8 << 20,
		CPUBound:    true,
		Build:       buildVoxel,
	}
}

func buildVoxel() (*vm.Registry, Driver, error) {
	b := newBench()

	gens := namesOf("terr.Gen%02d", 16)
	for _, n := range gens {
		b.worker(n, voxGenWork, 8)
	}
	b.array("terr.HeightMap")
	b.nativeMath("vox.Math", 250*time.Microsecond, 8)

	dispNative := []string{"disp.Blit0", "disp.Blit1", "disp.Blit2", "disp.Blit3"}
	for _, n := range dispNative {
		b.nativeUI(n, 450*time.Microsecond, 16)
	}
	disps := namesOf("disp.R%02d", 8)
	for _, n := range disps {
		b.worker(n, 80*time.Microsecond, 8)
	}

	b.nativeUI("ui.VIn", 30*time.Microsecond, 8)
	uis := namesOf("ui.V%02d", 8)
	for _, n := range uis {
		b.worker(n, 25*time.Microsecond, 8)
	}
	utils := namesOf("util.V%02d", 16)
	for _, n := range utils {
		b.worker(n, 25*time.Microsecond, 8)
	}
	miscs := namesOf("misc.V%02d", 12)
	for _, n := range miscs {
		b.worker(n, 25*time.Microsecond, 8)
	}

	reg, err := b.build()
	if err != nil {
		return nil, nil, err
	}

	driver := func(th *vm.Thread) error {
		k := newKit(th)
		all := make([]string, 0, 80)
		all = append(all, gens...)
		all = append(all, "vox.Math")
		all = append(all, dispNative...)
		all = append(all, disps...)
		all = append(all, "ui.VIn")
		all = append(all, uis...)
		all = append(all, utils...)
		all = append(all, miscs...)
		for _, n := range all {
			k.hub(n, 256)
		}

		var render, back []vm.ObjectID
		for i := 0; i < voxRenderTiles; i++ {
			_, t := k.chain("terr.HeightMap", 1, voxTileSize)
			render = append(render, t)
		}
		for i := 0; i < voxBackTiles; i++ {
			_, t := k.chain("terr.HeightMap", 1, voxTileSize)
			back = append(back, t)
		}
		for i := 0; i < 4; i++ {
			k.chain(utils[i], 20, 2000)
		}

		for f := 0; f < voxFrames && !k.failed(); f++ {
			// Terrain generation: the offloadable compute.
			for i := 0; i < 10; i++ {
				k.call(gens[(f+i)%len(gens)], gens[(f+i+5)%len(gens)], 16, 48)
			}
			// Generators lean on native math.
			for i := 0; i < 7; i++ {
				k.call(gens[(f+i)%len(gens)], "vox.Math", 50, 24)
			}
			// Generators write tiles: full rewrites of scratch tiles,
			// small delta updates of the on-screen tiles.
			for i := 0; i < len(back); i++ {
				k.poke(gens[i%len(gens)], back[(f+i)%len(back)], 75, 128)
			}
			for i := 0; i < len(render); i++ {
				k.poke(gens[(i+3)%len(gens)], render[(f+i)%len(render)], 5, 256)
			}
			// Generators read scratch tiles while composing.
			for i := 0; i < 6; i++ {
				k.touch(gens[i%len(gens)], back[(f+2*i)%len(back)], 20)
			}

			// Display: native blits read the on-screen tiles every frame.
			for i := 0; i < len(render); i++ {
				k.touch(disps[i%len(disps)], render[i], 20)
			}
			for i := 0; i < 6; i++ {
				k.call(disps[i%len(disps)], dispNative[i%len(dispNative)], 300, 128)
			}
			k.call(disps[f%len(disps)], disps[(f+3)%len(disps)], 40, 32)

			// UI and bookkeeping.
			k.call("ui.V00", "ui.VIn", 300, 256)
			k.call(uis[f%len(uis)], disps[f%len(disps)], 20, 32)
			k.call(uis[(f+1)%len(uis)], gens[f%len(gens)], 8, 96)
			for i := 0; i < 4; i++ {
				k.call(utils[i%len(utils)], utils[(i+7)%len(utils)], 30, 16)
			}
			k.call(miscs[f%len(miscs)], utils[f%len(utils)], 25, 16)

			g, _ := k.chain(miscs[(f+3)%len(miscs)], 10, 1200)
			k.freeGroup(g)
		}
		return k.err
	}
	return reg, driver, nil
}
