package apps

import (
	"time"

	"aide/internal/vm"
)

// Tracer calibration knobs. The scenario models an interactive raytracer
// rendering scanline by scanline: heavy, self-contained ray computation
// over scene data, occasional canvas submissions, little interaction
// (Table 1: "CPU intensive, low interaction"). Targets (Figure 10): the
// initial offload is roughly break-even (math natives routing back eat the
// surrogate's speed advantage), and the combined enhancements approach a
// ~15% improvement.
const (
	trcScanlines = 60

	// Ray work per ping at tracing-PC speed; Figure 10 emulates the
	// client at TracerClientSlowdown×.
	trcRayWork = 400 * time.Microsecond
)

// TracerClientSlowdown is the Figure 10 client-speed factor for Tracer.
const TracerClientSlowdown = 10.0

// Tracer returns the interactive Java raytracer of Table 1.
func Tracer() *Spec {
	return &Spec{
		Name:        "Tracer",
		Description: "Interactive Java raytracer",
		Profile:     "CPU intensive, low interaction",
		RecordHeap:  12 << 20,
		EmuHeap:     8 << 20,
		CPUBound:    true,
		Build:       buildTracer,
	}
}

func buildTracer() (*vm.Registry, Driver, error) {
	b := newBench()

	rays := namesOf("ray.R%02d", 16)
	for _, n := range rays {
		b.worker(n, trcRayWork, 8)
	}
	scenes := namesOf("scene.S%02d", 10)
	for _, n := range scenes {
		b.worker(n, 250*time.Microsecond, 8)
	}
	b.nativeMath("ray.Math", 120*time.Microsecond, 8)
	b.nativeUI("out.Canvas", 1050*time.Microsecond, 16)

	b.nativeUI("ui.TIn", 30*time.Microsecond, 8)
	uis := namesOf("ui.T%02d", 6)
	for _, n := range uis {
		b.worker(n, 200*time.Microsecond, 8)
	}
	utils := namesOf("util.T%02d", 12)
	for _, n := range utils {
		b.worker(n, 150*time.Microsecond, 8)
	}
	miscs := namesOf("misc.T%02d", 8)
	for _, n := range miscs {
		b.worker(n, 150*time.Microsecond, 8)
	}

	reg, err := b.build()
	if err != nil {
		return nil, nil, err
	}

	driver := func(th *vm.Thread) error {
		k := newKit(th)
		all := make([]string, 0, 60)
		all = append(all, rays...)
		all = append(all, scenes...)
		all = append(all, "ray.Math", "out.Canvas", "ui.TIn")
		all = append(all, uis...)
		all = append(all, utils...)
		all = append(all, miscs...)
		for _, n := range all {
			k.hub(n, 256)
		}

		// Scene construction.
		for _, s := range scenes {
			k.chain(s, 18, 2400)
		}
		k.call(scenes[0], scenes[1], 200, 64)

		for line := 0; line < trcScanlines && !k.failed(); line++ {
			// Ray computation: heavy, self-contained.
			for i := 0; i < 12; i++ {
				k.call(rays[(line+i)%len(rays)], rays[(line+i+7)%len(rays)], 20, 48)
			}
			// Rays intersect scene geometry: co-offloaded with rays.
			for i := 0; i < 8; i++ {
				k.call(rays[i%len(rays)], scenes[(line+i)%len(scenes)], 30, 64)
			}
			for i := 0; i < 4; i++ {
				k.call(scenes[i%len(scenes)], scenes[(i+5)%len(scenes)], 25, 32)
			}
			// Native math in the inner loop: the routing cost the §5.2
			// enhancement removes.
			for i := 0; i < 5; i++ {
				k.call(rays[i], "ray.Math", 60, 24)
			}
			// Scanline submission to the native canvas.
			k.call(rays[line%len(rays)], "out.Canvas", 300, 512)

			// Light UI traffic.
			k.call("ui.T00", "ui.TIn", 100, 16)
			k.call(uis[line%len(uis)], rays[line%len(rays)], 4, 64)
			k.call(utils[line%len(utils)], utils[(line+5)%len(utils)], 20, 16)
			k.call(miscs[line%len(miscs)], utils[line%len(utils)], 15, 16)

			if line%10 == 9 {
				g, _ := k.chain(miscs[line%len(miscs)], 10, 1000)
				k.freeGroup(g)
			}
		}
		return k.err
	}
	return reg, driver, nil
}
