package rpcbench

import "testing"

// TestEnvModes sanity-checks every transport flavor the benchmarks
// drive: the echo round trip works, and a release storm coalesces.
func TestEnvModes(t *testing.T) {
	for _, m := range Modes() {
		t.Run(string(m), func(t *testing.T) {
			e, err := New(Config{Mode: m})
			if err != nil {
				t.Fatal(err)
			}
			defer func() {
				if err := e.Close(); err != nil {
					t.Errorf("close: %v", err)
				}
			}()
			for i := 0; i < 3; i++ {
				if err := e.Invoke(); err != nil {
					t.Fatalf("invoke %d: %v", i, err)
				}
			}
			if err := e.ReleaseStorm(100); err != nil {
				t.Fatalf("release storm: %v", err)
			}
			st := e.PC.Stats()
			if st.ReleasesSent != 100 {
				t.Errorf("ReleasesSent = %d, want 100", st.ReleasesSent)
			}
			if st.ReleaseBatchesSent == 0 || st.ReleaseBatchesSent >= 100 {
				t.Errorf("ReleaseBatchesSent = %d, want coalesced (0 < batches < 100)", st.ReleaseBatchesSent)
			}
		})
	}
}

// TestEnvUnbatched pins the ReleaseBatchSize=1 baseline the storm
// benchmark compares against: one wire message per decref.
func TestEnvUnbatched(t *testing.T) {
	e, err := New(Config{Mode: ModeChan, ReleaseBatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := e.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	if err := e.ReleaseStorm(50); err != nil {
		t.Fatal(err)
	}
	st := e.PC.Stats()
	if st.ReleaseBatchesSent != 50 {
		t.Errorf("ReleaseBatchesSent = %d with batch size 1, want 50", st.ReleaseBatchesSent)
	}
}
