package rpcbench

import "testing"

// TestEnvModes sanity-checks every transport flavor the benchmarks
// drive: the echo round trip works, and a release storm coalesces.
func TestEnvModes(t *testing.T) {
	for _, m := range Modes() {
		t.Run(string(m), func(t *testing.T) {
			e, err := New(Config{Mode: m})
			if err != nil {
				t.Fatal(err)
			}
			defer func() {
				if err := e.Close(); err != nil {
					t.Errorf("close: %v", err)
				}
			}()
			for i := 0; i < 3; i++ {
				if err := e.Invoke(); err != nil {
					t.Fatalf("invoke %d: %v", i, err)
				}
			}
			if err := e.ReleaseStorm(100); err != nil {
				t.Fatalf("release storm: %v", err)
			}
			st := e.PC.Stats()
			if st.ReleasesSent != 100 {
				t.Errorf("ReleasesSent = %d, want 100", st.ReleasesSent)
			}
			if st.ReleaseBatchesSent == 0 || st.ReleaseBatchesSent >= 100 {
				t.Errorf("ReleaseBatchesSent = %d, want coalesced (0 < batches < 100)", st.ReleaseBatchesSent)
			}
		})
	}
}

// TestEnvChains sanity-checks the chained-call workload both ways: the
// pipelined transaction must actually batch (one frame per chain) and
// cost strictly fewer wire requests than the sequential baseline.
func TestEnvChains(t *testing.T) {
	for _, m := range Modes() {
		t.Run(string(m), func(t *testing.T) {
			e, err := New(Config{Mode: m})
			if err != nil {
				t.Fatal(err)
			}
			defer func() {
				if err := e.Close(); err != nil {
					t.Errorf("close: %v", err)
				}
			}()
			const depth = 16
			before := e.PC.Stats()
			if err := e.SequentialChain(depth); err != nil {
				t.Fatalf("sequential chain: %v", err)
			}
			mid := e.PC.Stats()
			if got := mid.RequestsSent - before.RequestsSent; got != depth {
				t.Errorf("sequential chain sent %d requests, want %d", got, depth)
			}
			if err := e.PipelineChain(depth); err != nil {
				t.Fatalf("pipeline chain: %v", err)
			}
			after := e.PC.Stats()
			if got := after.RequestsSent - mid.RequestsSent; got != 1 {
				t.Errorf("pipelined chain sent %d requests, want 1", got)
			}
			if after.PipelineFrames != 1 || after.PipelineCalls != depth {
				t.Errorf("frames=%d calls=%d, want 1 frame of %d calls",
					after.PipelineFrames, after.PipelineCalls, depth)
			}
		})
	}
}

// TestMeasureLazyMigration pins the lazy-vs-full comparison the
// benchmark report is built from: lazy ships measurably fewer wire
// bytes, faults zero times on hot fields, and at most once per object
// on cold ones.
func TestMeasureLazyMigration(t *testing.T) {
	const objects = 4
	full, err := MeasureLazyMigration(objects, false)
	if err != nil {
		t.Fatalf("full: %v", err)
	}
	lazy, err := MeasureLazyMigration(objects, true)
	if err != nil {
		t.Fatalf("lazy: %v", err)
	}
	if full.SavedBytes != 0 || full.HotFaults != 0 || full.ColdFaults != 0 {
		t.Errorf("full migration reported lazy activity: %+v", full)
	}
	if lazy.WireBytes >= full.WireBytes {
		t.Errorf("lazy wire bytes %d >= full %d: deferral saved nothing", lazy.WireBytes, full.WireBytes)
	}
	if lazy.SavedBytes <= 0 {
		t.Errorf("lazy SavedBytes = %d, want > 0", lazy.SavedBytes)
	}
	if lazy.HotFaults != 0 {
		t.Errorf("hot-field reads faulted %d times, want 0", lazy.HotFaults)
	}
	if lazy.ColdFaults != objects {
		t.Errorf("cold-field reads faulted %d times, want one per object (%d)", lazy.ColdFaults, objects)
	}
}

// TestEnvUnbatched pins the ReleaseBatchSize=1 baseline the storm
// benchmark compares against: one wire message per decref.
func TestEnvUnbatched(t *testing.T) {
	e, err := New(Config{Mode: ModeChan, ReleaseBatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := e.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
	}()
	if err := e.ReleaseStorm(50); err != nil {
		t.Fatal(err)
	}
	st := e.PC.Stats()
	if st.ReleaseBatchesSent != 50 {
		t.Errorf("ReleaseBatchesSent = %d with batch size 1, want 50", st.ReleaseBatchesSent)
	}
}
