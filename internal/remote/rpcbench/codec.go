package rpcbench

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"net"

	"aide/internal/remote"
	"aide/internal/vm"
)

// sampleMessage returns the echo request the invoke benchmarks carry:
// the same representative payload (short string, 96-byte blob, int), as
// one MsgInvoke envelope.
func sampleMessage() *remote.Message {
	blob := make([]byte, 96)
	for i := range blob {
		blob[i] = byte(i)
	}
	return &remote.Message{
		ID: 7, Kind: remote.MsgInvoke, Obj: 12, Method: "echo",
		Args: []vm.WireValue{
			{Kind: vm.KindString, S: "edit-buffer"},
			{Kind: vm.KindBytes, Bytes: blob},
			{Kind: vm.KindInt, I: 42},
		},
	}
}

// BinaryCodec returns a driver that performs one binary-codec round
// trip of the sample message — encode into a reused buffer, decode the
// frame back — isolating the codec from sockets and scheduling.
func BinaryCodec() func() error {
	m := sampleMessage()
	var buf []byte
	return func() error {
		var err error
		buf, err = remote.AppendFrame(buf[:0], m)
		if err != nil {
			return err
		}
		_, err = remote.DecodeFrame(buf)
		return err
	}
}

// GobCodec returns the same round trip through a persistent gob stream
// (encoder and decoder live across calls, so gob's one-time type
// transmission is amortized away — the framing NewGobConnTransport
// uses, at its best).
func GobCodec() func() error {
	m := sampleMessage()
	var network bytes.Buffer
	enc := gob.NewEncoder(&network)
	dec := gob.NewDecoder(&network)
	return func() error {
		if err := enc.Encode(m); err != nil {
			return err
		}
		var out remote.Message
		return dec.Decode(&out)
	}
}

// RawTCPEcho returns a driver that round-trips one frame-sized buffer
// over a fresh TCP loopback connection with no codec and no platform on
// either end: the host's syscall-and-scheduling floor that bounds every
// end-to-end RPC number, and the context for reading the invoke
// benchmarks. close tears the connection down.
func RawTCPEcho(size int) (step func() error, close func() error, err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	defer ln.Close()
	//lint:allow goroutinecheck bench scaffolding: the echo loop exits when close() tears down its connection
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		buf := make([]byte, size)
		for {
			if _, err := io.ReadFull(conn, buf); err != nil {
				return
			}
			if _, err := conn.Write(buf); err != nil {
				return
			}
		}
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return nil, nil, err
	}
	buf := make([]byte, size)
	step = func() error {
		if _, err := conn.Write(buf); err != nil {
			return err
		}
		if _, err := io.ReadFull(conn, buf); err != nil {
			return fmt.Errorf("rpcbench: raw echo read: %w", err)
		}
		return nil
	}
	return step, conn.Close, nil
}
