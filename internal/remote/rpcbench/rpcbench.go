// Package rpcbench builds miniature client/surrogate platforms for
// benchmarking the RPC fast path. An Env wires two VMs through one of
// three transport flavors — the in-process channel pair, the binary
// codec over a TCP loopback, and the legacy gob framing over the same
// loopback (the baseline the binary codec is measured against) — and
// offloads a small echo service whose payload is representative of real
// platform traffic: a short method string, a ~96-byte blob, and an
// integer.
//
// The package lives outside the deterministic-replay lint scope on
// purpose: benchmarks need real sockets and the wall clock.
package rpcbench

import (
	"context"
	"fmt"
	"net"

	"aide/internal/remote"
	"aide/internal/vm"
)

// Mode selects the transport flavor under test.
type Mode string

// Transport flavors.
const (
	// ModeChan crosses the in-process channel transport (no kernel
	// round trip; isolates codec + peer table overhead).
	ModeChan Mode = "chan"
	// ModeTCP crosses the binary codec over a TCP loopback socket.
	ModeTCP Mode = "tcp"
	// ModeTCPGob crosses the legacy gob framing over the same loopback:
	// the pre-codec wire protocol, kept as the benchmark baseline.
	ModeTCPGob Mode = "tcp-gob"
)

// Modes lists every transport flavor, in display order.
func Modes() []Mode { return []Mode{ModeChan, ModeTCP, ModeTCPGob} }

// Config parameterizes an Env.
type Config struct {
	Mode Mode

	// Workers sizes each peer's service pool. Zero defaults to 2.
	Workers int

	// ReleaseBatchSize is passed through to the client peer; 1 disables
	// release coalescing (the one-message-per-decref baseline), 0 keeps
	// the peer default.
	ReleaseBatchSize int
}

// Env is a connected pair of VMs with an offloaded echo service.
type Env struct {
	Client    *vm.VM
	Surrogate *vm.VM
	PC        *remote.Peer // client-side peer
	PS        *remote.Peer // surrogate-side peer

	th   *vm.Thread
	svc  vm.ObjectID
	args []vm.Value
}

// New builds a platform for the given configuration: two VMs joined by
// the selected transport, with one Echo object created on the client
// and offloaded to the surrogate so Invoke crosses the wire.
func New(cfg Config) (*Env, error) {
	workers := cfg.Workers
	if workers <= 0 {
		workers = 2
	}
	reg := vm.NewRegistry()
	if _, err := reg.Register(vm.ClassSpec{
		Name: "Echo",
		Methods: []vm.MethodSpec{{
			Name: "echo",
			Body: func(th *vm.Thread, self vm.ObjectID, args []vm.Value) (vm.Value, error) {
				if len(args) != 3 {
					return vm.Nil(), fmt.Errorf("echo: got %d args, want 3", len(args))
				}
				return args[1], nil // the blob rides both directions
			},
		}, {
			// hop is the chained-call step: it returns its receiver, so a
			// depth-N chain needs each call's result before the next call
			// can be issued — the dependency pattern promise pipelining
			// collapses into one round trip.
			Name: "hop",
			Body: func(th *vm.Thread, self vm.ObjectID, args []vm.Value) (vm.Value, error) {
				if len(args) != 3 {
					return vm.Nil(), fmt.Errorf("hop: got %d args, want 3", len(args))
				}
				return vm.RefOf(self), nil
			},
		}},
	}); err != nil {
		return nil, err
	}
	client := vm.New(reg, vm.Config{Role: vm.RoleClient, HeapCapacity: 1 << 20})
	surrogate := vm.New(reg, vm.Config{Role: vm.RoleSurrogate, HeapCapacity: 8 << 20})

	opts := remote.Options{Workers: workers, ReleaseBatchSize: cfg.ReleaseBatchSize}
	var pc, ps *remote.Peer
	switch cfg.Mode {
	case ModeChan, "":
		pc, ps = remote.NewPair(client, surrogate, opts)
	case ModeTCP:
		tc, ts, err := tcpPair(remote.NewConnTransport)
		if err != nil {
			return nil, err
		}
		pc = remote.NewPeer(client, tc, opts)
		ps = remote.NewPeer(surrogate, ts, opts)
	case ModeTCPGob:
		tc, ts, err := tcpPair(remote.NewGobConnTransport)
		if err != nil {
			return nil, err
		}
		pc = remote.NewPeer(client, tc, opts)
		ps = remote.NewPeer(surrogate, ts, opts)
	default:
		return nil, fmt.Errorf("rpcbench: unknown mode %q", cfg.Mode)
	}
	e := &Env{Client: client, Surrogate: surrogate, PC: pc, PS: ps}

	e.th = client.NewThread()
	svc, err := e.th.New("Echo", 64)
	if err != nil {
		return nil, combine(err, e.Close())
	}
	client.SetRoot("svc", svc)
	e.svc = svc
	if n, _, err := pc.Offload([]string{"Echo"}); err != nil || n != 1 {
		return nil, combine(fmt.Errorf("rpcbench: offload moved %d objects: %w", n, err), e.Close())
	}
	blob := make([]byte, 96)
	for i := range blob {
		blob[i] = byte(i)
	}
	e.args = []vm.Value{vm.Str("edit-buffer"), vm.Blob(blob), vm.Int(42)}
	return e, nil
}

// tcpPair returns two connected transports over a fresh TCP loopback
// socket, both wrapped by the given framing constructor.
func tcpPair(wrap func(net.Conn) remote.Transport) (remote.Transport, remote.Transport, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, nil, err
	}
	defer ln.Close()
	type accepted struct {
		conn net.Conn
		err  error
	}
	ch := make(chan accepted, 1)
	go func() {
		conn, err := ln.Accept()
		ch <- accepted{conn, err}
	}()
	dialed, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		return nil, nil, err
	}
	a := <-ch
	if a.err != nil {
		dialed.Close()
		return nil, nil, a.err
	}
	return wrap(dialed), wrap(a.conn), nil
}

// Invoke performs one remote echo round trip: the request carries the
// representative payload, the reply carries the blob back.
func (e *Env) Invoke() error {
	return invoke(e.th, e.svc, e.args)
}

// Caller returns an independent invoker bound to its own VM thread.
// Concurrent callers model the platform's real load — the paper's apps
// issue crossings from many threads at once — and exercise the sharded
// call table and lock-free send path under contention.
func (e *Env) Caller() func() error {
	th := e.Client.NewThread()
	return func() error { return invoke(th, e.svc, e.args) }
}

func invoke(th *vm.Thread, svc vm.ObjectID, args []vm.Value) error {
	ret, err := th.Invoke(svc, "echo", args...)
	if err != nil {
		return err
	}
	if ret.Kind != vm.KindBytes || len(ret.Bytes) != 96 {
		return fmt.Errorf("rpcbench: echo returned %v kind, %d bytes", ret.Kind, len(ret.Bytes))
	}
	return nil
}

// SequentialChain runs one chained-call transaction of depth dependent
// hops the pre-pipelining way: each call blocks for its round trip
// because the returned reference is the next call's receiver.
func (e *Env) SequentialChain(depth int) error {
	recv := e.svc
	for i := 0; i < depth; i++ {
		ret, err := e.th.Invoke(recv, "hop", e.args...)
		if err != nil {
			return err
		}
		if ret.Kind != vm.KindRef || ret.Ref == vm.InvalidObject {
			return fmt.Errorf("rpcbench: hop %d returned %v, want a reference", i, ret)
		}
		recv = ret.Ref
	}
	e.th.ClearTemps()
	return nil
}

// PipelineChain runs the same depth-call transaction as one pipelined
// MsgInvokeBatch frame: every hop's receiver is the previous hop's
// promise, and the whole chain costs one round trip.
func (e *Env) PipelineChain(depth int) error {
	return e.PipelineChainContext(context.Background(), depth)
}

// PipelineChainContext is PipelineChain under a caller-supplied context,
// so chaos harnesses can cancel a frame mid-flight.
func (e *Env) PipelineChainContext(ctx context.Context, depth int) error {
	p := e.Client.NewPipeline()
	var recv any = e.svc
	for i := 0; i < depth; i++ {
		recv = p.Invoke(recv, "hop", e.args[0], e.args[1], e.args[2])
	}
	res, err := p.Run(ctx)
	if err != nil {
		return err
	}
	if last := res[depth-1]; last.Kind != vm.KindRef || last.Ref == vm.InvalidObject {
		return fmt.Errorf("rpcbench: chain resolved to %v, want a reference", last)
	}
	e.th.ClearTemps()
	return nil
}

// WireBytes returns the client peer's cumulative wire volume in both
// directions; callers diff snapshots around a workload to charge it.
func (e *Env) WireBytes() int64 {
	st := e.PC.Stats()
	return st.BytesSent + st.BytesReceived
}

// PipelineFrames returns how many MsgInvokeBatch frames the client peer
// has sent — the guard that a "pipelined" measurement did not silently
// degrade to sequential calls.
func (e *Env) PipelineFrames() int64 { return e.PC.Stats().PipelineFrames }

// ReleaseStorm sends n distributed-GC decrefs for synthetic object IDs
// and round-trips a ping so the tail batch is flushed and the wire
// drained before the caller reads Stats. The surrogate ignores decrefs
// for IDs it never exported, so the storm is purely wire traffic.
func (e *Env) ReleaseStorm(n int) error {
	for i := 0; i < n; i++ {
		e.PC.Release(vm.ObjectID(1_000_000 + i))
	}
	return e.PC.Ping()
}

// Close tears the platform down, returning the first close error.
func (e *Env) Close() error {
	err := e.PC.Close()
	return combine(err, e.PS.Close())
}

// combine returns the first non-nil error.
func combine(a, b error) error {
	if a != nil {
		return a
	}
	return b
}
