package rpcbench

import (
	"fmt"

	"aide/internal/remote"
	"aide/internal/vm"
)

// Lazy-migration measurement: a JavaNote-like document set — a small hot
// text field the editor touches constantly next to a large cold
// thumbnail blob it rarely renders — migrated full-state and lazily, so
// the wire-byte reduction of monitor-driven lazy state transfer is a
// measured number rather than a claim.

// LazyMigration records one migration of the document set.
type LazyMigration struct {
	// Objects is the number of migrated documents.
	Objects int

	// WireBytes is the actual encoded size of the migration traffic
	// (client-peer bytes sent during Offload): lazily deferred fields
	// ride as empty placeholders, so this is where the reduction shows.
	WireBytes int64

	// SavedBytes is the logical field volume the lazy plan withheld
	// (zero for a full-state migration).
	SavedBytes int64

	// HotFaults counts lazy faults while reading only hot fields on the
	// surrogate — must stay zero, or the predictor shipped too little.
	HotFaults int64

	// ColdFaults counts lazy faults once every cold field is read: at
	// most one per object (a fault pulls the whole remainder).
	ColdFaults int64
}

// MeasureLazyMigration migrates `objects` documents (1 KiB hot text,
// 16 KiB cold thumbnail each) to a surrogate over the in-process
// transport, then reads every hot field and every cold field on the
// surrogate. With lazy=false the migration ships full state — the
// baseline the lazy run's wire volume is compared against.
func MeasureLazyMigration(objects int, lazy bool) (out LazyMigration, err error) {
	const hotBytes, coldBytes = 1 << 10, 16 << 10
	reg := vm.NewRegistry()
	if _, err := reg.Register(vm.ClassSpec{
		Name:   "Note",
		Fields: []string{"text", "thumb"},
	}); err != nil {
		return LazyMigration{}, err
	}
	client := vm.New(reg, vm.Config{Role: vm.RoleClient, HeapCapacity: 64 << 20})
	surrogate := vm.New(reg, vm.Config{Role: vm.RoleSurrogate, HeapCapacity: 64 << 20})
	pc, ps := remote.NewPair(client, surrogate, remote.Options{Workers: 2, LazyMigration: lazy})
	defer func() {
		if cerr := pc.Close(); err == nil {
			err = cerr
		}
		if cerr := ps.Close(); err == nil {
			err = cerr
		}
	}()
	if lazy {
		client.SetFieldPredictor(func(class, field string) bool { return field == "text" })
	}

	th := client.NewThread()
	ids := make([]vm.ObjectID, objects)
	hot := make([]byte, hotBytes)
	cold := make([]byte, coldBytes)
	for i := range cold {
		cold[i] = byte(i)
	}
	copy(hot, cold)
	for i := range ids {
		id, err := th.New("Note", hotBytes+coldBytes+64)
		if err != nil {
			return LazyMigration{}, err
		}
		if err := th.SetField(id, "text", vm.Blob(hot)); err != nil {
			return LazyMigration{}, err
		}
		if err := th.SetField(id, "thumb", vm.Blob(cold)); err != nil {
			return LazyMigration{}, err
		}
		client.SetRoot(fmt.Sprintf("note%d", i), id)
		ids[i] = id
	}
	th.ClearTemps()

	sentBefore := pc.Stats().BytesSent
	n, _, err := pc.Offload([]string{"Note"})
	if err != nil {
		return LazyMigration{}, err
	}
	if n != objects {
		return LazyMigration{}, fmt.Errorf("rpcbench: offload moved %d objects, want %d", n, objects)
	}
	out = LazyMigration{
		Objects:    objects,
		WireBytes:  pc.Stats().BytesSent - sentBefore,
		SavedBytes: pc.Stats().LazyBytesSaved,
	}

	// The editor's working set: every hot field, then every cold one.
	sth := surrogate.NewThread()
	peerIDs := make([]vm.ObjectID, objects)
	for i, id := range ids {
		peerIDs[i] = client.Object(id).PeerID
	}
	for i, sid := range peerIDs {
		v, err := sth.GetField(sid, "text")
		if err != nil {
			return LazyMigration{}, err
		}
		if v.Kind != vm.KindBytes || len(v.Bytes) != hotBytes {
			return LazyMigration{}, fmt.Errorf("rpcbench: note %d hot field came back as %v", i, v)
		}
	}
	out.HotFaults = ps.Stats().FieldFetches
	for i, sid := range peerIDs {
		v, err := sth.GetField(sid, "thumb")
		if err != nil {
			return LazyMigration{}, err
		}
		if v.Kind != vm.KindBytes || len(v.Bytes) != coldBytes {
			return LazyMigration{}, fmt.Errorf("rpcbench: note %d cold field came back as %v", i, v)
		}
	}
	out.ColdFaults = ps.Stats().FieldFetches - out.HotFaults
	return out, nil
}
