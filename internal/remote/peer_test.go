package remote

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"aide/internal/netmodel"
	"aide/internal/vm"
)

// testRegistry builds a small application: a pinned UI class (native
// method), an offloadable Doc class holding text, and a stateless native
// math class.
func testRegistry(t *testing.T) *vm.Registry {
	t.Helper()
	reg := vm.NewRegistry()
	mustRegister(reg, vm.ClassSpec{
		Name:   "UI",
		Fields: []string{"doc"},
		Methods: []vm.MethodSpec{
			{Name: "draw", Native: true, Body: func(th *vm.Thread, self vm.ObjectID, args []vm.Value) (vm.Value, error) {
				th.Work(time.Millisecond)
				return vm.Int(1), nil
			}},
			{Name: "edit", Body: func(th *vm.Thread, self vm.ObjectID, args []vm.Value) (vm.Value, error) {
				doc, err := th.GetField(self, "doc")
				if err != nil {
					return vm.Nil(), err
				}
				return th.Invoke(doc.Ref, "append", args...)
			}},
		},
	})
	mustRegister(reg, vm.ClassSpec{
		Name:         "Doc",
		Fields:       []string{"len", "title"},
		StaticFields: []string{"count"},
		Methods: []vm.MethodSpec{
			{Name: "append", Body: func(th *vm.Thread, self vm.ObjectID, args []vm.Value) (vm.Value, error) {
				th.Work(100 * time.Microsecond)
				cur, err := th.GetField(self, "len")
				if err != nil {
					return vm.Nil(), err
				}
				n := cur.I + args[0].I
				if err := th.SetField(self, "len", vm.Int(n)); err != nil {
					return vm.Nil(), err
				}
				return vm.Int(n), nil
			}},
			{Name: "me", Body: func(th *vm.Thread, self vm.ObjectID, args []vm.Value) (vm.Value, error) {
				return vm.RefOf(self), nil
			}},
			{Name: "sqrt", Native: true, Stateless: true, Static: true, Body: func(th *vm.Thread, self vm.ObjectID, args []vm.Value) (vm.Value, error) {
				th.Work(10 * time.Microsecond)
				return vm.Float(1.41), nil
			}},
		},
	})
	return reg
}

func newPlatform(t *testing.T) (client, surrogate *vm.VM, pc, ps *Peer) {
	t.Helper()
	reg := testRegistry(t)
	client = vm.New(reg, vm.Config{Role: vm.RoleClient, HeapCapacity: 1 << 20})
	surrogate = vm.New(reg, vm.Config{Role: vm.RoleSurrogate, HeapCapacity: 8 << 20, CPUSpeed: 3.5})
	link := netmodel.WaveLAN()
	pc, ps = NewPair(client, surrogate, Options{Workers: 2, Link: &link})
	t.Cleanup(func() {
		if err := pc.Close(); err != nil {
			t.Errorf("close client peer: %v", err)
		}
		if err := ps.Close(); err != nil {
			t.Errorf("close surrogate peer: %v", err)
		}
	})
	return client, surrogate, pc, ps
}

func TestRemoteInvocationAfterOffload(t *testing.T) {
	client, surrogate, pc, _ := newPlatform(t)

	th := client.NewThread()
	ui, err := th.New("UI", 128)
	if err != nil {
		t.Fatalf("new UI: %v", err)
	}
	client.SetRoot("ui", ui)
	doc, err := th.New("Doc", 4096)
	if err != nil {
		t.Fatalf("new Doc: %v", err)
	}
	if err := th.SetField(ui, "doc", vm.RefOf(doc)); err != nil {
		t.Fatalf("set field: %v", err)
	}
	if _, err := th.Invoke(ui, "edit", vm.Int(10)); err != nil {
		t.Fatalf("local edit: %v", err)
	}

	// Offload Doc objects to the surrogate.
	n, bytes, err := pc.Offload([]string{"Doc"})
	if err != nil {
		t.Fatalf("offload: %v", err)
	}
	if n != 1 || bytes <= 0 {
		t.Fatalf("offload moved %d objects, %d bytes; want 1, >0", n, bytes)
	}
	if got := client.Object(doc); !got.Remote {
		t.Fatal("client Doc should be a stub after offload")
	}
	if live := surrogate.Heap().Live; live < 4096 {
		t.Fatalf("surrogate live bytes = %d, want >= 4096", live)
	}

	// Invocations now transparently cross to the surrogate.
	ret, err := th.Invoke(ui, "edit", vm.Int(5))
	if err != nil {
		t.Fatalf("edit after offload: %v", err)
	}
	if ret.I != 15 {
		t.Fatalf("edit returned %d, want 15 (state must survive migration)", ret.I)
	}

	// Field reads cross too.
	v, err := th.GetField(doc, "len")
	if err != nil {
		t.Fatalf("remote get field: %v", err)
	}
	if v.I != 15 {
		t.Fatalf("remote field read = %d, want 15", v.I)
	}
}

func TestNativeRoutesBackToClient(t *testing.T) {
	client, surrogate, pc, _ := newPlatform(t)

	th := client.NewThread()
	ui, err := th.New("UI", 128)
	if err != nil {
		t.Fatalf("new UI: %v", err)
	}
	client.SetRoot("ui", ui)
	doc, err := th.New("Doc", 1024)
	if err != nil {
		t.Fatalf("new Doc: %v", err)
	}
	client.SetRoot("doc", doc)
	if _, _, err := pc.Offload([]string{"Doc"}); err != nil {
		t.Fatalf("offload: %v", err)
	}

	// A native static invoked on the surrogate must be directed back to
	// the client by default.
	sth := surrogate.NewThread()
	before := surrogate.Clock()
	if _, err := sth.InvokeStatic("Doc", "sqrt"); err != nil {
		t.Fatalf("surrogate native static: %v", err)
	}
	if surrogate.Clock() <= before {
		t.Fatal("surrogate clock should advance by the remote native cost")
	}

	// With the stateless enhancement the call executes locally.
	surrogate.SetStatelessNativeLocal(true)
	if _, err := sth.InvokeStatic("Doc", "sqrt"); err != nil {
		t.Fatalf("surrogate stateless native: %v", err)
	}
}

func TestStaticDataServedByClient(t *testing.T) {
	client, surrogate, _, _ := newPlatform(t)
	cth := client.NewThread()
	if err := cth.SetStatic("Doc", "count", vm.Int(7)); err != nil {
		t.Fatalf("client set static: %v", err)
	}
	sth := surrogate.NewThread()
	v, err := sth.GetStatic("Doc", "count")
	if err != nil {
		t.Fatalf("surrogate get static: %v", err)
	}
	if v.I != 7 {
		t.Fatalf("surrogate read static = %d, want 7 (statics live on the client)", v.I)
	}
	if err := sth.SetStatic("Doc", "count", vm.Int(9)); err != nil {
		t.Fatalf("surrogate set static: %v", err)
	}
	v2, err := cth.GetStatic("Doc", "count")
	if err != nil {
		t.Fatalf("client get static: %v", err)
	}
	if v2.I != 9 {
		t.Fatalf("client read static = %d, want 9", v2.I)
	}
}

func TestDistributedGCReleasesExports(t *testing.T) {
	client, surrogate, pc, _ := newPlatform(t)

	th := client.NewThread()
	doc, err := th.New("Doc", 2048)
	if err != nil {
		t.Fatalf("new Doc: %v", err)
	}
	client.SetRoot("doc", doc)
	if _, _, err := pc.Offload([]string{"Doc"}); err != nil {
		t.Fatalf("offload: %v", err)
	}
	if surrogate.Heap().Live < 2048 {
		t.Fatal("object should live on surrogate")
	}

	// Drop the client's only reference; collecting the stub must release
	// the surrogate object.
	client.SetRoot("doc", vm.InvalidObject)
	client.Collect()
	deadline := time.Now().Add(2 * time.Second)
	for surrogate.Heap().Live >= 2048 && time.Now().Before(deadline) {
		surrogate.Collect()
		time.Sleep(5 * time.Millisecond)
	}
	if live := surrogate.Heap().Live; live >= 2048 {
		t.Fatalf("surrogate live = %d; release should have unpinned the migrated object", live)
	}
}

func TestOOMWithoutOffload(t *testing.T) {
	reg := testRegistry(t)
	client := vm.New(reg, vm.Config{Role: vm.RoleClient, HeapCapacity: 8 << 10})
	th := client.NewThread()
	var last vm.ObjectID
	var err error
	for i := 0; i < 64; i++ {
		var id vm.ObjectID
		id, err = th.New("Doc", 1024)
		if err != nil {
			break
		}
		// Chain the objects so they stay reachable.
		if last != vm.InvalidObject {
			if serr := th.SetField(id, "title", vm.RefOf(last)); serr != nil {
				t.Fatalf("set: %v", serr)
			}
		}
		client.SetRoot("head", id)
		last = id
	}
	if !errors.Is(err, vm.ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory (the unmodified VM fails)", err)
	}
}

func TestPressureHandlerRescuesAllocation(t *testing.T) {
	client, _, pc, _ := newPlatform(t)
	client.SetPressureHandler(func(needed int64) bool {
		_, _, err := pc.Offload([]string{"Doc"})
		return err == nil
	})
	th := client.NewThread()
	var prev vm.ObjectID
	for i := 0; i < 2048; i++ { // 2048 KiB of Doc through a 1 MiB heap
		id, err := th.New("Doc", 1024)
		if err != nil {
			t.Fatalf("alloc %d failed despite offloading: %v", i, err)
		}
		if prev != vm.InvalidObject {
			if err := th.SetField(id, "title", vm.RefOf(prev)); err != nil {
				t.Fatalf("set: %v", err)
			}
		}
		client.SetRoot("head", id)
		prev = id
	}
}

func TestPingAndClose(t *testing.T) {
	_, _, pc, ps := newPlatform(t)
	if err := pc.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if err := ps.Ping(); err != nil {
		t.Fatalf("reverse ping: %v", err)
	}
}

// mustRegister registers a class during test setup, panicking on the spec
// errors that Register reports (setup bugs, not remote behavior).
func mustRegister(reg *vm.Registry, spec vm.ClassSpec) {
	if _, err := reg.Register(spec); err != nil {
		panic(err)
	}
}

// TestInfoRTTFakeClock verifies the probe's round-trip measurement uses
// the injectable clock: with a deterministic clock that advances 5 ms per
// reading, the measured RTT is exactly 5 ms (one reading before the call,
// one after).
func TestInfoRTTFakeClock(t *testing.T) {
	reg := testRegistry(t)
	client := vm.New(reg, vm.Config{Role: vm.RoleClient, HeapCapacity: 1 << 20})
	surrogate := vm.New(reg, vm.Config{Role: vm.RoleSurrogate, HeapCapacity: 1 << 20})

	base := time.Unix(1_000_000, 0)
	var readings atomic.Int64
	fake := func() time.Time {
		return base.Add(time.Duration(readings.Add(1)) * 5 * time.Millisecond)
	}
	pc, ps := NewPair(client, surrogate, Options{Workers: 1, Now: fake})
	defer func() {
		if err := pc.Close(); err != nil {
			t.Errorf("close client peer: %v", err)
		}
		if err := ps.Close(); err != nil {
			t.Errorf("close surrogate peer: %v", err)
		}
	}()

	info, err := pc.Info()
	if err != nil {
		t.Fatalf("Info: %v", err)
	}
	if info.RTT != 5*time.Millisecond {
		t.Fatalf("RTT = %v with fake clock, want exactly 5ms", info.RTT)
	}
	if got := readings.Load(); got != 2 {
		t.Fatalf("clock read %d times during Info, want 2", got)
	}
}
