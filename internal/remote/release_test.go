package remote

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"aide/internal/vm"
)

// pinnedObjects builds n surrogate-hosted Doc objects, each exported to
// the client exactly once: the client creates and roots them, offloads
// the class (adoption does not pin), then invokes Doc.me on each stub —
// the surrogate encodes the returned self-reference, which pins the
// export. Returns the surrogate-namespace IDs and the matching client
// stub IDs.
func pinnedObjects(t *testing.T, client, surrogate *vm.VM, pc *Peer, n int) (objs, stubs []vm.ObjectID) {
	t.Helper()
	th := client.NewThread()
	for i := 0; i < n; i++ {
		obj, err := th.New("Doc", 64)
		if err != nil {
			t.Fatalf("new Doc %d: %v", i, err)
		}
		client.SetRoot(fmt.Sprintf("storm-%d", i), obj)
		stubs = append(stubs, obj)
	}
	moved, _, err := pc.Offload([]string{"Doc"})
	if err != nil {
		t.Fatalf("offload: %v", err)
	}
	if moved != n {
		t.Fatalf("offload moved %d objects, want %d", moved, n)
	}
	for i, id := range stubs {
		o := client.Object(id)
		if o == nil || !o.Remote {
			t.Fatalf("object %d is not a stub after offload", i)
		}
		if _, err := th.Invoke(id, "me"); err != nil {
			t.Fatalf("invoke me on %d: %v", i, err)
		}
		if got := surrogate.ExportCount(o.PeerID); got != 1 {
			t.Fatalf("object %d export count = %d after pin, want 1", i, got)
		}
		objs = append(objs, o.PeerID)
	}
	return objs, stubs
}

// TestReleaseStormExactlyOnce is the distributed-GC batching storm: a
// thousand stubs die (concurrently, to exercise the buffer under -race),
// and every export pin must drop exactly once — no decref lost across
// flush thresholds and the Close-time flush, none duplicated — while the
// wire carries at least 10x fewer messages than one-per-release.
func TestReleaseStormExactlyOnce(t *testing.T) {
	const n = 1000
	client, surrogate, pc, ps := newPlatformBatched(t, Options{Workers: 2, ReleaseBatchSize: 32, Now: fixedClock()})
	objs, stubs := pinnedObjects(t, client, surrogate, pc, n)

	var wg sync.WaitGroup
	const workers = 4
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += workers {
				if err := client.FreeObject(stubs[i]); err != nil {
					t.Errorf("free stub %d: %v", i, err)
				}
			}
		}(w)
	}
	wg.Wait()

	// Close both halves: the client flushes its partial batch before the
	// transport dies, and the surrogate's Close waits for its workers to
	// drain every queued batch.
	if err := pc.Close(); err != nil {
		t.Fatalf("close client peer: %v", err)
	}
	if err := ps.Close(); err != nil {
		t.Fatalf("close surrogate peer: %v", err)
	}

	cs, ss := pc.Stats(), ps.Stats()
	if cs.ReleasesSent != n {
		t.Errorf("client ReleasesSent = %d, want %d", cs.ReleasesSent, n)
	}
	if ss.ReleasesReceived != n {
		t.Errorf("surrogate ReleasesReceived = %d, want exactly %d (lost or duplicated decrefs)", ss.ReleasesReceived, n)
	}
	for i, obj := range objs {
		if got := surrogate.ExportCount(obj); got != 0 {
			t.Errorf("object %d export count = %d after storm, want 0", i, got)
		}
	}
	if cs.ReleaseBatchesSent == 0 || cs.ReleasesSent < 10*cs.ReleaseBatchesSent {
		t.Errorf("coalescing too weak: %d releases in %d wire messages, want >= 10x fewer messages",
			cs.ReleasesSent, cs.ReleaseBatchesSent)
	}
}

// fixedClock returns a Now func pinned to one instant, so neither the
// interval trigger nor RTT measurement can fire nondeterministically.
func fixedClock() func() time.Time {
	base := time.Unix(1000, 0)
	return func() time.Time { return base }
}

// TestReleaseBatchSizeThreshold pins the size trigger: the batch ships
// exactly when the buffer reaches ReleaseBatchSize, not before.
func TestReleaseBatchSizeThreshold(t *testing.T) {
	reg := testRegistry(t)
	client := vm.New(reg, vm.Config{Role: vm.RoleClient, HeapCapacity: 1 << 20})
	ta, tb := NewChannelPair()
	pc := NewPeer(client, ta, Options{ReleaseBatchSize: 4, Now: fixedClock()})
	t.Cleanup(func() { _ = pc.Close(); _ = tb.Close() })

	for i := 0; i < 3; i++ {
		pc.Release(vm.ObjectID(1_000_000 + i))
	}
	if got := pc.Stats().ReleaseBatchesSent; got != 0 {
		t.Fatalf("after 3 releases with batch size 4: %d batches sent, want 0", got)
	}
	pc.Release(1_000_003)
	st := pc.Stats()
	if st.ReleaseBatchesSent != 1 {
		t.Fatalf("after 4th release: %d batches sent, want 1", st.ReleaseBatchesSent)
	}
	if st.ReleasesSent != 4 {
		t.Fatalf("ReleasesSent = %d, want 4", st.ReleasesSent)
	}
	if m, err := tb.Recv(); err != nil || m.Kind != MsgReleaseBatch || len(m.IDs) != 4 {
		t.Fatalf("peer received %+v (err %v), want a release-batch of 4 IDs", m, err)
	}
}

// TestReleaseIntervalFlush pins the aging trigger: a Release arriving
// ReleaseFlushInterval after the buffer's first entry flushes it even
// though the batch is far from full.
func TestReleaseIntervalFlush(t *testing.T) {
	reg := testRegistry(t)
	client := vm.New(reg, vm.Config{Role: vm.RoleClient, HeapCapacity: 1 << 20})
	now := time.Unix(1000, 0)
	var mu sync.Mutex
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	ta, tb := NewChannelPair()
	pc := NewPeer(client, ta, Options{ReleaseBatchSize: 1000, ReleaseFlushInterval: time.Millisecond, Now: clock})
	t.Cleanup(func() { _ = pc.Close(); _ = tb.Close() })

	pc.Release(1_000_000)
	pc.Release(1_000_001)
	if got := pc.Stats().ReleaseBatchesSent; got != 0 {
		t.Fatalf("batches = %d before the interval elapsed, want 0", got)
	}
	advance(2 * time.Millisecond)
	pc.Release(1_000_002)
	if got := pc.Stats().ReleaseBatchesSent; got != 1 {
		t.Fatalf("batches = %d after an overdue release, want 1", got)
	}
	if m, err := tb.Recv(); err != nil || len(m.IDs) != 3 {
		t.Fatalf("peer received %+v (err %v), want a batch of all 3 buffered IDs", m, err)
	}
}

// TestReleaseFlushBeforeCall pins the ordering contract: buffered
// releases ship before any blocking request, so a release can never
// reorder after a call that re-exports the same object.
func TestReleaseFlushBeforeCall(t *testing.T) {
	_, _, pc, _ := newPlatformBatched(t, Options{Workers: 2, ReleaseBatchSize: 1000, Now: fixedClock()})

	pc.Release(1_000_000)
	pc.Release(1_000_001)
	if got := pc.Stats().ReleaseBatchesSent; got != 0 {
		t.Fatalf("batches = %d before any call, want 0", got)
	}
	if err := pc.Ping(); err != nil {
		t.Fatalf("ping: %v", err)
	}
	if got := pc.Stats().ReleaseBatchesSent; got != 1 {
		t.Fatalf("batches = %d after a blocking call, want 1 (flush-before-call)", got)
	}
}

// newPlatformBatched is newPlatform with explicit peer options.
func newPlatformBatched(t *testing.T, opts Options) (client, surrogate *vm.VM, pc, ps *Peer) {
	t.Helper()
	reg := testRegistry(t)
	client = vm.New(reg, vm.Config{Role: vm.RoleClient, HeapCapacity: 1 << 20})
	surrogate = vm.New(reg, vm.Config{Role: vm.RoleSurrogate, HeapCapacity: 8 << 20, CPUSpeed: 3.5})
	pc, ps = NewPair(client, surrogate, opts)
	t.Cleanup(func() {
		_ = pc.Close()
		_ = ps.Close()
	})
	return client, surrogate, pc, ps
}

// flakyTransport drops the failOn-th message of kind failKind, modeling
// a transport failure mid-batch.
type flakyTransport struct {
	Transport
	failKind MsgKind
	failOn   int64
	seen     atomic.Int64
}

func (f *flakyTransport) Send(m *Message) error {
	if m.Kind == f.failKind && f.seen.Add(1) == f.failOn {
		return fmt.Errorf("flaky transport: dropped %s", m.Kind)
	}
	return f.Transport.Send(m)
}

// TestReleaseBatchTransportFailure pins the failure contract: a batch
// that hits a transient transport error is retried with the same message
// ID, so the decrefs it carried apply exactly once — nothing leaks and
// nothing double-releases. With retries disabled the pre-retry contract
// still holds: the lost batch leaks exactly its own pins and the decrefs
// it carried never corrupt neighbouring batches.
func TestReleaseBatchTransportFailure(t *testing.T) {
	const n, batch = 12, 4
	run := func(t *testing.T, retryMax int) (*vm.VM, []vm.ObjectID, Stats) {
		t.Helper()
		reg := testRegistry(t)
		client := vm.New(reg, vm.Config{Role: vm.RoleClient, HeapCapacity: 1 << 20})
		surrogate := vm.New(reg, vm.Config{Role: vm.RoleSurrogate, HeapCapacity: 8 << 20, CPUSpeed: 3.5})
		ta, tb := NewChannelPair()
		flaky := &flakyTransport{Transport: ta, failKind: MsgReleaseBatch, failOn: 2}
		pc := NewPeer(client, flaky, Options{Workers: 2, ReleaseBatchSize: batch, Now: fixedClock(), RetryMax: retryMax})
		ps := NewPeer(surrogate, tb, Options{Workers: 2})
		t.Cleanup(func() { _ = pc.Close(); _ = ps.Close() })

		objs, stubs := pinnedObjects(t, client, surrogate, pc, n)
		for i := range stubs {
			if err := client.FreeObject(stubs[i]); err != nil {
				t.Fatalf("free stub %d: %v", i, err)
			}
		}
		if err := pc.Close(); err != nil {
			t.Fatalf("close client peer: %v", err)
		}
		if err := ps.Close(); err != nil {
			t.Fatalf("close surrogate peer: %v", err)
		}
		return surrogate, objs, ps.Stats()
	}

	t.Run("retried", func(t *testing.T) {
		surrogate, objs, st := run(t, 0) // default retry budget
		if st.ReleasesReceived != n {
			t.Errorf("surrogate ReleasesReceived = %d, want %d (retried batch redelivered)", st.ReleasesReceived, n)
		}
		for i, obj := range objs {
			if got := surrogate.ExportCount(obj); got != 0 {
				t.Errorf("object %d export count = %d, want 0", i, got)
			}
		}
	})

	t.Run("retry-disabled", func(t *testing.T) {
		// Frees run in order with a fixed clock, so batch boundaries are
		// deterministic: [0..3] delivered, [4..7] dropped, [8..11]
		// delivered.
		surrogate, objs, st := run(t, -1)
		if st.ReleasesReceived != n-batch {
			t.Errorf("surrogate ReleasesReceived = %d, want %d (one lost batch of %d)", st.ReleasesReceived, n-batch, batch)
		}
		for i, obj := range objs {
			want := int64(0)
			if i >= 4 && i < 8 {
				want = 1 // leaked by the dropped batch, never double-released
			}
			if got := surrogate.ExportCount(obj); got != want {
				t.Errorf("object %d export count = %d, want %d", i, got, want)
			}
		}
	})
}

// TestOrphanReplyCounted pins the recvLoop fix: a reply with no pending
// waiter is counted in Stats.OrphanReplies and recorded once in the
// peer's warning state instead of vanishing silently.
func TestOrphanReplyCounted(t *testing.T) {
	reg := testRegistry(t)
	client := vm.New(reg, vm.Config{Role: vm.RoleClient, HeapCapacity: 1 << 20})
	ta, tb := NewChannelPair()
	pc := NewPeer(client, ta, Options{})
	t.Cleanup(func() { _ = pc.Close() })

	if pc.Warn() != nil {
		t.Fatal("fresh peer already has a warning")
	}
	for _, id := range []uint64{999, 1000} {
		if err := tb.Send(&Message{ID: id, Reply: true, Kind: MsgPing}); err != nil {
			t.Fatalf("send orphan reply: %v", err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for pc.Stats().OrphanReplies < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("OrphanReplies = %d, want 2", pc.Stats().OrphanReplies)
		}
		time.Sleep(time.Millisecond)
	}
	w := pc.Warn()
	if w == nil {
		t.Fatal("orphan replies produced no warning")
	}
	if want := "id=999"; !strings.Contains(w.Error(), want) {
		t.Errorf("warning %q does not mention the first orphan (%s)", w, want)
	}
}
