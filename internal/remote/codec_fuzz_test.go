package remote

import (
	"bytes"
	"testing"
)

// FuzzMessageRoundTrip feeds arbitrary bytes to the frame decoder. Any
// payload the decoder accepts must re-encode canonically: encoding the
// decoded message, decoding that, and encoding again must be
// byte-identical (byte comparison sidesteps NaN != NaN), and the size
// derivation must match the bytes produced. Inputs the decoder rejects
// are fine — the invariant is that acceptance implies canonical
// round-tripping, never a silent misread.
//
// The seed corpus in testdata/fuzz/FuzzMessageRoundTrip holds one
// encoded payload per message kind; `go test -run=FuzzMessageRoundTrip`
// replays it deterministically in CI, `go test -fuzz=FuzzMessageRoundTrip`
// explores from it.
func FuzzMessageRoundTrip(f *testing.F) {
	for _, m := range codecMessages() {
		f.Add(appendMessage(nil, m))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := decodeMessage(data)
		if err != nil {
			return
		}
		b1 := appendMessage(nil, m)
		if sizeMessage(m) != len(b1) {
			t.Fatalf("sizeMessage = %d, encoded %d bytes", sizeMessage(m), len(b1))
		}
		m2, err := decodeMessage(b1)
		if err != nil {
			t.Fatalf("re-decode of canonical encoding failed: %v", err)
		}
		b2 := appendMessage(nil, m2)
		if !bytes.Equal(b1, b2) {
			t.Fatalf("canonical encoding is not a fixed point:\n b1 %x\n b2 %x", b1, b2)
		}
	})
}
