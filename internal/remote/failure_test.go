package remote

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"aide/internal/vm"
)

// failureRegistry has one offloadable class and a method that blocks until
// released, for in-flight-failure tests.
func failureRegistry(block chan struct{}) *vm.Registry {
	reg := vm.NewRegistry()
	mustRegister(reg, vm.ClassSpec{
		Name:   "Box",
		Fields: []string{"v"},
		Methods: []vm.MethodSpec{
			{Name: "get", Body: func(th *vm.Thread, self vm.ObjectID, args []vm.Value) (vm.Value, error) {
				return th.GetField(self, "v")
			}},
			{Name: "wait", Body: func(th *vm.Thread, self vm.ObjectID, args []vm.Value) (vm.Value, error) {
				if block != nil {
					<-block
				}
				return vm.Nil(), nil
			}},
		},
	})
	return reg
}

func TestCallAfterCloseFails(t *testing.T) {
	reg := failureRegistry(nil)
	client := vm.New(reg, vm.Config{Role: vm.RoleClient})
	surrogate := vm.New(reg, vm.Config{Role: vm.RoleSurrogate})
	pc, ps := NewPair(client, surrogate, Options{Workers: 1})

	th := client.NewThread()
	id, err := th.New("Box", 32)
	if err != nil {
		t.Fatal(err)
	}
	client.SetRoot("box", id)
	if _, _, err := pc.Offload([]string{"Box"}); err != nil {
		t.Fatal(err)
	}
	if err := ps.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pc.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := th.Invoke(id, "get"); err == nil {
		t.Fatal("invoke over a closed platform must fail")
	}
}

func TestInFlightCallFailsOnTransportDeath(t *testing.T) {
	block := make(chan struct{})
	reg := failureRegistry(block)
	client := vm.New(reg, vm.Config{Role: vm.RoleClient})
	surrogate := vm.New(reg, vm.Config{Role: vm.RoleSurrogate})
	ct, st := NewChannelPair()
	pc := NewPeer(client, ct, Options{Workers: 1})
	ps := NewPeer(surrogate, st, Options{Workers: 1})
	defer ps.Close()
	defer close(block)

	th := client.NewThread()
	id, err := th.New("Box", 32)
	if err != nil {
		t.Fatal(err)
	}
	client.SetRoot("box", id)
	if _, _, err := pc.Offload([]string{"Box"}); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		_, err := th.Invoke(id, "wait") // blocks on the surrogate
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	if err := pc.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("in-flight call returned nil after connection death")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("in-flight call never unblocked")
	}
}

func TestPeerErrorsSurfaceAsRemoteError(t *testing.T) {
	reg := failureRegistry(nil)
	client := vm.New(reg, vm.Config{Role: vm.RoleClient})
	surrogate := vm.New(reg, vm.Config{Role: vm.RoleSurrogate})
	pc, ps := NewPair(client, surrogate, Options{Workers: 1})
	defer pc.Close()
	defer ps.Close()

	// Ask the surrogate to invoke an object it does not host.
	_, _, err := pc.InvokeRemote(vm.ObjectID(4242), "get", nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RemoteError", err)
	}
	if !strings.Contains(re.Error(), "no such object") {
		t.Fatalf("remote error text: %v", re)
	}
}

func TestOffloadNothingIsNoop(t *testing.T) {
	reg := failureRegistry(nil)
	client := vm.New(reg, vm.Config{Role: vm.RoleClient})
	surrogate := vm.New(reg, vm.Config{Role: vm.RoleSurrogate})
	pc, ps := NewPair(client, surrogate, Options{Workers: 1})
	defer pc.Close()
	defer ps.Close()
	n, bytes, err := pc.Offload([]string{"Box"}) // no live objects
	if err != nil || n != 0 || bytes != 0 {
		t.Fatalf("empty offload: %d %d %v", n, bytes, err)
	}
}

func TestStatsAccounting(t *testing.T) {
	reg := failureRegistry(nil)
	client := vm.New(reg, vm.Config{Role: vm.RoleClient})
	surrogate := vm.New(reg, vm.Config{Role: vm.RoleSurrogate})
	pc, ps := NewPair(client, surrogate, Options{Workers: 1})
	defer pc.Close()
	defer ps.Close()

	th := client.NewThread()
	id, err := th.New("Box", 128)
	if err != nil {
		t.Fatal(err)
	}
	client.SetRoot("box", id)
	if _, _, err := pc.Offload([]string{"Box"}); err != nil {
		t.Fatal(err)
	}
	if _, err := th.Invoke(id, "get"); err != nil {
		t.Fatal(err)
	}
	cs := pc.Stats()
	if cs.RequestsSent < 2 || cs.ObjectsMigrated != 1 || cs.MigrationBytes == 0 || cs.BytesSent == 0 {
		t.Fatalf("client stats: %+v", cs)
	}
	ss := ps.Stats()
	if ss.RequestsServed < 2 {
		t.Fatalf("surrogate stats: %+v", ss)
	}
}

func TestDoubleCloseAndPingAfterClose(t *testing.T) {
	reg := failureRegistry(nil)
	client := vm.New(reg, vm.Config{Role: vm.RoleClient})
	surrogate := vm.New(reg, vm.Config{Role: vm.RoleSurrogate})
	pc, ps := NewPair(client, surrogate, Options{Workers: 1})
	if err := pc.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pc.Close(); err != nil {
		t.Fatal("double close must be fine")
	}
	if err := pc.Ping(); err == nil {
		t.Fatal("ping after close must fail")
	}
	_ = ps.Close()
}

// TestOrphanReplyLogsOncePerPeer pins the orphan-reply diagnostics: every
// orphan is counted, but the log line fires once per peer — not once per
// pending-table shard — no matter which shards the orphan IDs land in.
func TestOrphanReplyLogsOncePerPeer(t *testing.T) {
	reg := failureRegistry(nil)
	client := vm.New(reg, vm.Config{Role: vm.RoleClient})
	ct, st := NewChannelPair()
	var mu sync.Mutex
	var lines []string
	pc := NewPeer(client, ct, Options{Workers: 1, Logf: func(format string, args ...any) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}})
	defer func() { _ = pc.Close() }()

	// Replies nobody is waiting for; the IDs land in four different
	// shards of the 16-way pending-call table (id & 15).
	ids := []uint64{3, 4, 17, 18, 33}
	for _, id := range ids {
		if err := st.Send(&Message{ID: id, Reply: true, Kind: MsgPong}); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for pc.Stats().OrphanReplies < int64(len(ids)) && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := pc.Stats().OrphanReplies; got != int64(len(ids)) {
		t.Fatalf("OrphanReplies = %d, want %d (every orphan counted)", got, len(ids))
	}
	mu.Lock()
	defer mu.Unlock()
	logged := 0
	for _, l := range lines {
		if strings.Contains(l, "orphan") {
			logged++
		}
	}
	if logged != 1 {
		t.Fatalf("orphan log fired %d times, want exactly once per peer:\n%s",
			logged, strings.Join(lines, "\n"))
	}
	if pc.Warn() == nil {
		t.Fatal("Warn() must report the recorded orphan anomaly")
	}
}
