package remote

import (
	"aide/internal/telemetry"
)

// Metric names, lowercase_snake constants (telemetrycheck enforces the
// shape at every registration site). Every peer registers its own child
// under these names; exposition sums the children, while Stats() reads
// this peer's children back privately.
const (
	metricRequestsSent       = "aide_remote_requests_sent_total"
	metricRequestsServed     = "aide_remote_requests_served_total"
	metricBytesSent          = "aide_remote_bytes_sent_total"
	metricBytesReceived      = "aide_remote_bytes_received_total"
	metricObjectsMigrated    = "aide_remote_objects_migrated_total"
	metricMigrationBytes     = "aide_remote_migration_bytes_total"
	metricReleasesSent       = "aide_remote_releases_sent_total"
	metricReleasesReceived   = "aide_remote_releases_received_total"
	metricReleaseBatchesSent = "aide_remote_release_batches_sent_total"
	metricOrphanReplies      = "aide_remote_orphan_replies_total"
	metricSendRetries        = "aide_remote_send_retries_total"
	metricCallTimeouts       = "aide_remote_call_timeouts_total"
	metricBatchSendRetries   = "aide_remote_batch_send_retries_total"
	metricBatchCallTimeouts  = "aide_remote_batch_call_timeouts_total"
	metricPipelineFrames     = "aide_remote_pipeline_frames_total"
	metricPipelineCalls      = "aide_remote_pipeline_calls_total"
	metricFieldFetches       = "aide_remote_field_fetches_total"
	metricLazyBytesSaved     = "aide_remote_lazy_migration_saved_bytes_total"
	metricDuplicatesDropped  = "aide_remote_duplicates_dropped_total"
	metricReleasesDropped    = "aide_remote_releases_dropped_total"
	metricDegraded           = "aide_remote_state_degraded_total"
	metricHealed             = "aide_remote_state_healed_total"
	metricDisconnected       = "aide_remote_state_disconnected_total"
	metricCallLatency        = "aide_remote_call_latency_seconds"
	metricReleaseBatchSize   = "aide_remote_release_batch_size"
	metricPipelineDepth      = "aide_remote_pipeline_depth"
	metricSnapshotChunks     = "aide_remote_snapshot_chunks_total"
	metricSnapshotBytes      = "aide_remote_snapshot_bytes_total"
)

// peerMetrics is the peer's wire accounting, held as telemetry
// instruments so the same atomics feed both the Stats() snapshot shim
// and the process-wide registry. Counters are always live (standalone
// when no registry is wired) because existing callers rely on Stats;
// histograms only exist when a registry is attached — a nil histogram
// observation is a no-op, and more importantly the call path only
// reads the wall clock when the latency histogram is non-nil, so
// fake-clock tests see no extra clock consumption.
type peerMetrics struct {
	requestsSent       *telemetry.Counter
	requestsServed     *telemetry.Counter
	bytesSent          *telemetry.Counter
	bytesReceived      *telemetry.Counter
	objectsMigrated    *telemetry.Counter
	migrationBytes     *telemetry.Counter
	releasesSent       *telemetry.Counter
	releasesReceived   *telemetry.Counter
	releaseBatchesSent *telemetry.Counter
	orphanReplies      *telemetry.Counter
	sendRetries        *telemetry.Counter
	callTimeouts       *telemetry.Counter
	batchSendRetries   *telemetry.Counter
	batchCallTimeouts  *telemetry.Counter
	pipelineFrames     *telemetry.Counter
	pipelineCalls      *telemetry.Counter
	fieldFetches       *telemetry.Counter
	lazyBytesSaved     *telemetry.Counter
	duplicatesDropped  *telemetry.Counter
	releasesDropped    *telemetry.Counter
	snapshotChunks     *telemetry.Counter
	snapshotBytes      *telemetry.Counter

	degraded     *telemetry.Counter
	healed       *telemetry.Counter
	disconnected *telemetry.Counter

	callLatency   *telemetry.Histogram // nil without a registry
	releaseBatch  *telemetry.Histogram // nil without a registry
	pipelineDepth *telemetry.Histogram // nil without a registry
}

// counterIn returns a registered child when a registry is wired, a
// standalone counter otherwise, so peer accounting never goes dark.
func counterIn(reg *telemetry.Registry, name, help string) *telemetry.Counter {
	if reg == nil {
		return telemetry.NewCounter()
	}
	//lint:allow telemetrycheck forwards caller-provided const names to the registry
	return reg.Counter(name, help)
}

func newPeerMetrics(reg *telemetry.Registry) *peerMetrics {
	m := &peerMetrics{
		requestsSent:       counterIn(reg, metricRequestsSent, "requests issued to the peer"),
		requestsServed:     counterIn(reg, metricRequestsServed, "peer requests executed by the worker pool"),
		bytesSent:          counterIn(reg, metricBytesSent, "wire bytes sent"),
		bytesReceived:      counterIn(reg, metricBytesReceived, "wire bytes received"),
		objectsMigrated:    counterIn(reg, metricObjectsMigrated, "objects moved by migrations (both directions)"),
		migrationBytes:     counterIn(reg, metricMigrationBytes, "payload bytes moved by outgoing migrations"),
		releasesSent:       counterIn(reg, metricReleasesSent, "distributed-GC decrefs issued"),
		releasesReceived:   counterIn(reg, metricReleasesReceived, "distributed-GC decrefs applied"),
		releaseBatchesSent: counterIn(reg, metricReleaseBatchesSent, "coalesced release batches shipped"),
		orphanReplies:      counterIn(reg, metricOrphanReplies, "replies that arrived with no pending waiter"),
		sendRetries:        counterIn(reg, metricSendRetries, "re-sends after transient transport errors"),
		callTimeouts:       counterIn(reg, metricCallTimeouts, "calls abandoned at their deadline"),
		batchSendRetries:   counterIn(reg, metricBatchSendRetries, "re-sends of batched frames (invoke-batch, release-batch)"),
		batchCallTimeouts:  counterIn(reg, metricBatchCallTimeouts, "batched-frame calls abandoned at their deadline"),
		pipelineFrames:     counterIn(reg, metricPipelineFrames, "pipelined invoke-batch frames sent"),
		pipelineCalls:      counterIn(reg, metricPipelineCalls, "invocations carried by pipelined frames"),
		fieldFetches:       counterIn(reg, metricFieldFetches, "lazy-migration field pulls issued"),
		lazyBytesSaved:     counterIn(reg, metricLazyBytesSaved, "migration wire bytes withheld by lazy state transfer"),
		duplicatesDropped:  counterIn(reg, metricDuplicatesDropped, "incoming requests suppressed by the dedupe window"),
		releasesDropped:    counterIn(reg, metricReleasesDropped, "decrefs lost when a release batch exhausted its retries"),
		snapshotChunks:     counterIn(reg, metricSnapshotChunks, "snapshot image chunks moved (both directions)"),
		snapshotBytes:      counterIn(reg, metricSnapshotBytes, "snapshot image bytes moved (both directions)"),
		degraded:           counterIn(reg, metricDegraded, "healthy to degraded state transitions"),
		healed:             counterIn(reg, metricHealed, "degraded to healthy state transitions"),
		disconnected:       counterIn(reg, metricDisconnected, "involuntary disconnects"),
	}
	if reg != nil {
		m.callLatency = reg.Histogram(metricCallLatency, "wall-clock round trip of peer calls", telemetry.DefaultLatencyBuckets())
		m.releaseBatch = reg.SizeHistogram(metricReleaseBatchSize, "decrefs coalesced per release batch", telemetry.DefaultSizeBuckets())
		m.pipelineDepth = reg.SizeHistogram(metricPipelineDepth, "calls per pipelined invoke-batch frame", telemetry.DefaultSizeBuckets())
	}
	return m
}
