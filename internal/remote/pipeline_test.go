package remote

import (
	"context"
	"errors"
	"testing"

	"aide/internal/netmodel"
	"aide/internal/vm"
)

// newLazyPlatform is newPlatform with lazy state transfer enabled on
// both peers (only the offloading side's flag matters).
func newLazyPlatform(t *testing.T) (client, surrogate *vm.VM, pc, ps *Peer) {
	t.Helper()
	reg := testRegistry(t)
	client = vm.New(reg, vm.Config{Role: vm.RoleClient, HeapCapacity: 1 << 20})
	surrogate = vm.New(reg, vm.Config{Role: vm.RoleSurrogate, HeapCapacity: 8 << 20, CPUSpeed: 3.5})
	link := netmodel.WaveLAN()
	pc, ps = NewPair(client, surrogate, Options{Workers: 2, Link: &link, LazyMigration: true})
	t.Cleanup(func() {
		if err := pc.Close(); err != nil {
			t.Errorf("close client peer: %v", err)
		}
		if err := ps.Close(); err != nil {
			t.Errorf("close surrogate peer: %v", err)
		}
	})
	return client, surrogate, pc, ps
}

// offloadDoc creates one Doc, roots it, and offloads the Doc class.
func offloadDoc(t *testing.T, client *vm.VM, pc *Peer) vm.ObjectID {
	t.Helper()
	th := client.NewThread()
	doc, err := th.New("Doc", 2048)
	if err != nil {
		t.Fatalf("new Doc: %v", err)
	}
	client.SetRoot("doc", doc)
	if _, _, err := pc.Offload([]string{"Doc"}); err != nil {
		t.Fatalf("offload: %v", err)
	}
	return doc
}

// TestPipelineOneRoundTrip: a three-call chain — promise receiver and
// promise argument — ships as one MsgInvokeBatch frame, costs one wire
// request, and leaves the surrogate state as if the calls ran one by one.
func TestPipelineOneRoundTrip(t *testing.T) {
	client, _, pc, _ := newPlatform(t)
	doc := offloadDoc(t, client, pc)
	before := pc.Stats()

	p := client.NewPipeline()
	a := p.Invoke(doc, "me")
	b := p.Invoke(a, "append", vm.Int(5)) // promise receiver
	c := p.Invoke(a, "append", b)         // promise receiver + promise argument
	res, err := p.Run(context.Background())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res[0].Kind != vm.KindRef || res[0].Ref != doc {
		t.Fatalf("res[0] = %v, want the doc stub (imports must re-map the returned ref)", res[0])
	}
	if res[1].I != 5 || res[2].I != 10 {
		t.Fatalf("res = [%v %v %v], want appends of 5 then 10", res[0], res[1], res[2])
	}
	if cv, cerr := c.Value(); cerr != nil || cv.I != 10 {
		t.Fatalf("promise c = %v err=%v, want 10", cv, cerr)
	}

	st := pc.Stats()
	if frames := st.PipelineFrames - before.PipelineFrames; frames != 1 {
		t.Fatalf("PipelineFrames = %d, want 1", frames)
	}
	if calls := st.PipelineCalls - before.PipelineCalls; calls != 3 {
		t.Fatalf("PipelineCalls = %d, want 3", calls)
	}
	if reqs := st.RequestsSent - before.RequestsSent; reqs != 1 {
		t.Fatalf("RequestsSent = %d for a 3-call chain, want 1 (that is the whole point)", reqs)
	}

	th := client.NewThread()
	if v, err := th.GetField(doc, "len"); err != nil || v.I != 10 {
		t.Fatalf("len after pipeline = %v err=%v, want 10", v, err)
	}
}

// TestPipelineFrameErrorFailsDependentsOnce: when call k of a frame
// fails, the successful prefix resolves, promises k..N yield the same
// *PipelineError, and the calls after k never execute on the surrogate.
func TestPipelineFrameErrorFailsDependentsOnce(t *testing.T) {
	client, _, pc, _ := newPlatform(t)
	doc := offloadDoc(t, client, pc)
	before := pc.Stats()

	p := client.NewPipeline()
	a := p.Invoke(doc, "me")
	bad := p.Invoke(a, "nosuch")
	tail := p.Invoke(a, "append", vm.Int(3))
	res, err := p.Run(context.Background())
	var perr *vm.PipelineError
	if !errors.As(err, &perr) || perr.Index != 1 {
		t.Fatalf("run err = %v, want *PipelineError at index 1", err)
	}
	if res[0].Kind != vm.KindRef || res[0].Ref != doc {
		t.Fatalf("prefix result = %v, want the doc ref", res[0])
	}
	if _, aerr := a.Value(); aerr != nil {
		t.Fatalf("prefix promise errored: %v", aerr)
	}
	_, berr := bad.Value()
	_, terr := tail.Value()
	if berr == nil || berr != terr {
		t.Fatalf("dependent promises must share one error, got %v vs %v", berr, terr)
	}
	if st := pc.Stats(); st.PipelineFrames-before.PipelineFrames != 1 {
		t.Fatalf("failing chain used %d frames, want 1", st.PipelineFrames-before.PipelineFrames)
	}

	th := client.NewThread()
	if v, gerr := th.GetField(doc, "len"); gerr != nil || v.I != 0 {
		t.Fatalf("len = %v err=%v: the call after the failure must not have executed", v, gerr)
	}
}

// TestLazyMigrationDefersAndFetches: with a predictor marking only "len"
// hot, the migration withholds "title", charges fewer wire bytes than a
// full-state migration, and the surrogate's first access to the cold
// field pulls it with one MsgFieldFetch.
func TestLazyMigrationDefersAndFetches(t *testing.T) {
	seed := func(t *testing.T, client *vm.VM) vm.ObjectID {
		t.Helper()
		th := client.NewThread()
		doc, err := th.New("Doc", 2048)
		if err != nil {
			t.Fatalf("new Doc: %v", err)
		}
		if err := th.SetField(doc, "len", vm.Int(3)); err != nil {
			t.Fatal(err)
		}
		if err := th.SetField(doc, "title", vm.Str("cold title payload")); err != nil {
			t.Fatal(err)
		}
		client.SetRoot("doc", doc)
		return doc
	}

	// Full-state baseline for the wire-byte comparison.
	fullClient, _, fullPC, _ := newPlatform(t)
	seed(t, fullClient)
	_, movedFull, err := fullPC.Offload([]string{"Doc"})
	if err != nil {
		t.Fatalf("full offload: %v", err)
	}

	client, surrogate, pc, ps := newLazyPlatform(t)
	client.SetFieldPredictor(func(class, field string) bool { return field == "len" })
	doc := seed(t, client)
	n, movedLazy, err := pc.Offload([]string{"Doc"})
	if err != nil {
		t.Fatalf("lazy offload: %v", err)
	}
	if n != 1 {
		t.Fatalf("offloaded %d objects, want 1", n)
	}
	saved := pc.Stats().LazyBytesSaved
	if saved <= 0 {
		t.Fatalf("LazyBytesSaved = %d, want > 0", saved)
	}
	if movedLazy+saved != movedFull {
		t.Fatalf("moved %d + saved %d != full migration's %d", movedLazy, saved, movedFull)
	}
	if rc := client.ResidualCount(); rc != 1 {
		t.Fatalf("residuals = %d, want 1", rc)
	}

	// The hot field shipped eagerly: reading it on the surrogate must not
	// fault back to the client.
	sid := client.Object(doc).PeerID
	sth := surrogate.NewThread()
	if v, err := sth.GetField(sid, "len"); err != nil || v.I != 3 {
		t.Fatalf("hot field = %v err=%v, want 3", v, err)
	}
	if f := ps.Stats().FieldFetches; f != 0 {
		t.Fatalf("hot-field read triggered %d fetches, want 0", f)
	}

	// First cold access pulls the residual; the second is served locally.
	if v, err := sth.GetField(sid, "title"); err != nil || v.S != "cold title payload" {
		t.Fatalf("cold field = %v err=%v", v, err)
	}
	if f := ps.Stats().FieldFetches; f != 1 {
		t.Fatalf("FieldFetches = %d after first cold access, want 1", f)
	}
	if rc := client.ResidualCount(); rc != 0 {
		t.Fatalf("residuals = %d after fetch, want 0 (store must drain)", rc)
	}
	if v, err := sth.GetField(sid, "title"); err != nil || v.S != "cold title payload" {
		t.Fatalf("second cold read = %v err=%v", v, err)
	}
	if f := ps.Stats().FieldFetches; f != 1 {
		t.Fatalf("FieldFetches = %d after second read, want still 1", f)
	}
}

// TestLazyFetchPullsAllRemainingOnce: one fault fetches every withheld
// field of the object (prefetch batching) — the second cold field is
// already present when accessed, so the object faults at most once.
func TestLazyFetchPullsAllRemainingOnce(t *testing.T) {
	client, surrogate, pc, ps := newLazyPlatform(t)
	client.SetFieldPredictor(func(class, field string) bool { return false })

	th := client.NewThread()
	doc, err := th.New("Doc", 2048)
	if err != nil {
		t.Fatalf("new Doc: %v", err)
	}
	if err := th.SetField(doc, "len", vm.Int(7)); err != nil {
		t.Fatal(err)
	}
	if err := th.SetField(doc, "title", vm.Str("also cold")); err != nil {
		t.Fatal(err)
	}
	client.SetRoot("doc", doc)
	if _, _, err := pc.Offload([]string{"Doc"}); err != nil {
		t.Fatalf("offload: %v", err)
	}

	sid := client.Object(doc).PeerID
	sth := surrogate.NewThread()
	if v, err := sth.GetField(sid, "len"); err != nil || v.I != 7 {
		t.Fatalf("first cold field = %v err=%v, want 7", v, err)
	}
	if v, err := sth.GetField(sid, "title"); err != nil || v.S != "also cold" {
		t.Fatalf("second cold field = %v err=%v", v, err)
	}
	if f := ps.Stats().FieldFetches; f != 1 {
		t.Fatalf("FieldFetches = %d, want 1 — one fault must batch the whole object", f)
	}
	if rc := client.ResidualCount(); rc != 0 {
		t.Fatalf("residuals = %d, want 0", rc)
	}
}
