package remote

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"aide/internal/vm"
)

// snapPair wires two peers over an in-process channel transport with a
// snapshot chunk size small enough that modest images cross in many
// chunks.
func snapPair(t *testing.T, opts Options) (pc, ps *Peer) {
	t.Helper()
	reg := testRegistry(t)
	client := vm.New(reg, vm.Config{Role: vm.RoleClient, HeapCapacity: 1 << 20})
	surrogate := vm.New(reg, vm.Config{Role: vm.RoleSurrogate, HeapCapacity: 8 << 20})
	pc, ps = NewPair(client, surrogate, opts)
	t.Cleanup(func() {
		if err := pc.Close(); err != nil {
			t.Errorf("close client peer: %v", err)
		}
		if err := ps.Close(); err != nil {
			t.Errorf("close surrogate peer: %v", err)
		}
	})
	return pc, ps
}

// testImage builds a payload big enough to split into several chunks at
// the given chunk size, with a recognizable byte pattern.
func testImage(n int) []byte {
	img := make([]byte, n)
	for i := range img {
		img[i] = byte(i * 31)
	}
	return img
}

func TestPushSnapshotChunkedDelivery(t *testing.T) {
	var gotMethod, gotDest string
	var gotImg []byte
	done := make(chan struct{})
	pc, ps := snapPair(t, Options{Workers: 2, SnapshotChunkSize: 64})
	ps.SetSnapshotHandler(func(method, dest string, img []byte) error {
		gotMethod, gotDest = method, dest
		gotImg = img
		close(done)
		return nil
	})

	img := testImage(1000) // 16 chunks at 64 bytes
	if err := pc.PushSnapshot(context.Background(), SnapRestore, "surrogate-2:9000", img); err != nil {
		t.Fatalf("push: %v", err)
	}
	<-done
	if gotMethod != SnapRestore || gotDest != "surrogate-2:9000" {
		t.Fatalf("handler saw method=%q dest=%q", gotMethod, gotDest)
	}
	if !bytes.Equal(gotImg, img) {
		t.Fatalf("assembled image differs: got %d bytes, want %d", len(gotImg), len(img))
	}
	if st := pc.Stats(); st.BytesSent == 0 {
		t.Fatal("no wire bytes accounted for the push")
	}
}

func TestPushSnapshotEmptyImage(t *testing.T) {
	var calls atomic.Int64
	pc, ps := snapPair(t, Options{Workers: 1})
	ps.SetSnapshotHandler(func(method, dest string, img []byte) error {
		if method != SnapDrain || dest != "10.0.0.7:9021" || string(img) != "fleet-key" {
			t.Errorf("handler saw method=%q dest=%q img=%q", method, dest, img)
		}
		calls.Add(1)
		return nil
	})
	if err := pc.DrainRemote(context.Background(), "10.0.0.7:9021", []byte("fleet-key")); err != nil {
		t.Fatalf("drain directive: %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("handler ran %d times, want 1", calls.Load())
	}

	// A key-less directive still crosses as a single empty frame; the
	// receiver's handler (not the transport) is what refuses it.
	ps.SetSnapshotHandler(func(method, dest string, img []byte) error {
		if len(img) != 0 {
			t.Errorf("key-less directive carried %d image bytes", len(img))
		}
		calls.Add(1)
		return nil
	})
	if err := pc.DrainRemote(context.Background(), "10.0.0.7:9021", nil); err != nil {
		t.Fatalf("key-less drain directive: %v", err)
	}
	if calls.Load() != 2 {
		t.Fatalf("handler ran %d times, want 2", calls.Load())
	}
}

func TestPushSnapshotHandlerErrorCarriesCode(t *testing.T) {
	pc, ps := snapPair(t, Options{Workers: 1, SnapshotChunkSize: 32})
	ps.SetSnapshotHandler(func(method, dest string, img []byte) error {
		return ErrDrained
	})
	err := pc.PushSnapshot(context.Background(), SnapHandoff, "x", testImage(100))
	if err == nil {
		t.Fatal("push succeeded despite handler rejection")
	}
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != CodeDrained {
		t.Fatalf("error %v does not carry CodeDrained", err)
	}
	// The typed code must round-trip to the sentinel the VM drain-retry
	// path recognizes.
	if !errors.Is(re.Code.sentinel(), vm.ErrSessionDrained) {
		t.Fatal("CodeDrained sentinel does not unwrap to vm.ErrSessionDrained")
	}
}

func TestPushSnapshotNoHandler(t *testing.T) {
	pc, _ := snapPair(t, Options{Workers: 1})
	err := pc.PushSnapshot(context.Background(), SnapRestore, "", testImage(10))
	if err == nil || !strings.Contains(err.Error(), "no snapshot handler") {
		t.Fatalf("push without handler: %v", err)
	}
}

func TestPullSnapshotChunkedRoundTrip(t *testing.T) {
	img := testImage(777) // 13 chunks at 64 bytes, last one partial
	var captures atomic.Int64
	pc, ps := snapPair(t, Options{Workers: 2, SnapshotChunkSize: 64})
	ps.SetSnapshotSource(func() ([]byte, error) {
		captures.Add(1)
		return img, nil
	})

	got, err := pc.PullSnapshot(context.Background())
	if err != nil {
		t.Fatalf("pull: %v", err)
	}
	if !bytes.Equal(got, img) {
		t.Fatalf("pulled image differs: got %d bytes, want %d", len(got), len(img))
	}
	if captures.Load() != 1 {
		t.Fatalf("source captured %d times during one pull, want 1 (chunks must share a cache)", captures.Load())
	}

	// The ack released the cache: a second pull captures afresh.
	if _, err := pc.PullSnapshot(context.Background()); err != nil {
		t.Fatalf("second pull: %v", err)
	}
	if captures.Load() != 2 {
		t.Fatalf("source captured %d times after two pulls, want 2", captures.Load())
	}
}

func TestPullSnapshotNoSource(t *testing.T) {
	pc, _ := snapPair(t, Options{Workers: 1})
	if _, err := pc.PullSnapshot(context.Background()); err == nil || !strings.Contains(err.Error(), "no snapshot source") {
		t.Fatalf("pull without source: %v", err)
	}
}

func TestPullSnapshotSourceError(t *testing.T) {
	pc, ps := snapPair(t, Options{Workers: 1})
	ps.SetSnapshotSource(func() ([]byte, error) {
		return nil, errors.New("heap walk failed")
	})
	if _, err := pc.PullSnapshot(context.Background()); err == nil || !strings.Contains(err.Error(), "heap walk failed") {
		t.Fatalf("pull with failing source: %v", err)
	}
}

func TestSnapshotGateRejectionCarriesDrainedCode(t *testing.T) {
	reg := testRegistry(t)
	client := vm.New(reg, vm.Config{Role: vm.RoleClient, HeapCapacity: 1 << 20})
	surrogate := vm.New(reg, vm.Config{Role: vm.RoleSurrogate, HeapCapacity: 8 << 20})
	ta, tb := NewChannelPair()
	pc := NewPeer(client, ta, Options{Workers: 1})
	ps := NewPeer(surrogate, tb, Options{Workers: 1, Gate: func(kind MsgKind) error {
		if kind == MsgInvoke {
			return ErrDrained
		}
		return nil
	}})
	t.Cleanup(func() {
		if err := pc.Close(); err != nil {
			t.Errorf("close client peer: %v", err)
		}
		if err := ps.Close(); err != nil {
			t.Errorf("close surrogate peer: %v", err)
		}
	})

	_, err := pc.Call(context.Background(), &Message{Kind: MsgInvoke, Obj: 1, Method: "x"})
	if err == nil {
		t.Fatal("gated invoke succeeded")
	}
	var re *RemoteError
	if !errors.As(err, &re) || re.Code != CodeDrained {
		t.Fatalf("gated invoke error %v does not carry CodeDrained", err)
	}
	if !errors.Is(re.Code.sentinel(), ErrDrained) {
		t.Fatal("CodeDrained does not unwrap to ErrDrained")
	}
}

func TestWaitServeIdleQuiesces(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{})
	pc, ps := snapPair(t, Options{Workers: 2})
	ps.SetSnapshotHandler(func(method, dest string, img []byte) error {
		close(entered)
		<-release
		return nil
	})

	pushDone := make(chan error, 1)
	go func() { pushDone <- pc.PushSnapshot(context.Background(), SnapRestore, "", nil) }()
	<-entered

	// With the handler parked inside serve(), allow=1 passes immediately
	// while allow=0 must block until the handler returns.
	ps.WaitServeIdle(1)
	idle := make(chan struct{})
	go func() { ps.WaitServeIdle(0); close(idle) }()
	select {
	case <-idle:
		t.Fatal("WaitServeIdle(0) returned with a serve in flight")
	default:
	}
	close(release)
	<-idle
	if err := <-pushDone; err != nil {
		t.Fatalf("push: %v", err)
	}
}

func TestSnapshotTransferOverTCP(t *testing.T) {
	reg := testRegistry(t)
	client := vm.New(reg, vm.Config{Role: vm.RoleClient, HeapCapacity: 1 << 20})
	surrogate := vm.New(reg, vm.Config{Role: vm.RoleSurrogate, HeapCapacity: 8 << 20})
	tClient, tServer := tcpTransportPair(t, NewConnTransport)
	pc := NewPeer(client, tClient, Options{Workers: 2, SnapshotChunkSize: 128})
	ps := NewPeer(surrogate, tServer, Options{Workers: 2, SnapshotChunkSize: 128})
	t.Cleanup(func() {
		if err := pc.Close(); err != nil {
			t.Errorf("close client peer: %v", err)
		}
		if err := ps.Close(); err != nil {
			t.Errorf("close surrogate peer: %v", err)
		}
	})

	img := testImage(5000)
	ps.SetSnapshotSource(func() ([]byte, error) { return img, nil })
	got, err := pc.PullSnapshot(context.Background())
	if err != nil {
		t.Fatalf("pull over TCP: %v", err)
	}
	if !bytes.Equal(got, img) {
		t.Fatalf("pulled image differs over TCP: got %d bytes, want %d", len(got), len(img))
	}

	assembled := make(chan []byte, 1)
	ps.SetSnapshotHandler(func(method, dest string, in []byte) error {
		assembled <- append([]byte(nil), in...)
		return nil
	})
	if err := pc.PushSnapshot(context.Background(), SnapRestore, "", img); err != nil {
		t.Fatalf("push over TCP: %v", err)
	}
	if got := <-assembled; !bytes.Equal(got, img) {
		t.Fatalf("pushed image differs over TCP: got %d bytes, want %d", len(got), len(img))
	}
}
