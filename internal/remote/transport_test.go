package remote

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"aide/internal/vm"
)

func TestChannelPairRoundTrip(t *testing.T) {
	a, b := NewChannelPair()
	defer a.Close()
	msg := &Message{ID: 1, Kind: MsgPing}
	if err := a.Send(msg); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 1 || got.Kind != MsgPing {
		t.Fatalf("got %+v", got)
	}
}

func TestChannelPairClose(t *testing.T) {
	a, b := NewChannelPair()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal("Close must be idempotent")
	}
	if err := a.Send(&Message{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
	if _, err := b.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("recv after close: %v", err)
	}
}

// tcpTransportPair connects a client and server transport over a fresh
// TCP loopback socket using the given framing constructor.
func tcpTransportPair(t *testing.T, wrap func(net.Conn) Transport) (client, server Transport) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := ln.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		server = wrap(conn)
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	client = wrap(conn)
	wg.Wait()
	if server == nil {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() {
		_ = client.Close()
		_ = server.Close()
	})
	return client, server
}

// fullMessage exercises every field group: scalars, args with nested
// refs, a return value, a migration batch, and an ID list.
func fullMessage() *Message {
	return &Message{
		ID: 42, Kind: MsgMigrate, Class: "C", Method: "m", Field: "f",
		Args: []vm.WireValue{{Kind: vm.KindInt, I: 7}, {Kind: vm.KindRef, Ref: vm.WireRef{ID: 3, Class: "C"}}},
		Ret:  vm.WireValue{Kind: vm.KindString, S: "ok"},
		Batch: []vm.MigratedObject{{
			SenderID: 9, Class: "C", Size: 100,
			Fields: []vm.WireValue{{Kind: vm.KindBytes, Bytes: []byte{1, 2, 3}}},
		}},
		IDs:          []vm.ObjectID{5, 6},
		ElapsedNanos: 12345,
	}
}

func checkFullMessage(t *testing.T, got *Message, framing string) {
	t.Helper()
	want := fullMessage()
	if got.ID != want.ID || got.Kind != want.Kind || len(got.Args) != 2 ||
		got.Ret.S != "ok" || len(got.Batch) != 1 || got.Batch[0].Size != 100 ||
		len(got.IDs) != 2 || got.ElapsedNanos != 12345 {
		t.Fatalf("%s round trip lost data: %+v", framing, got)
	}
}

// TestBinaryTransportOverTCP round-trips a fully populated message
// through the default (binary codec) TCP framing.
func TestBinaryTransportOverTCP(t *testing.T) {
	client, server := tcpTransportPair(t, NewConnTransport)
	if err := client.Send(fullMessage()); err != nil {
		t.Fatal(err)
	}
	got, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	checkFullMessage(t, got, "binary")
}

// TestGobTransportOverTCP round-trips the same message through the
// legacy gob framing, which stays wire-runnable as the codec baseline.
func TestGobTransportOverTCP(t *testing.T) {
	client, server := tcpTransportPair(t, NewGobConnTransport)
	if err := client.Send(fullMessage()); err != nil {
		t.Fatal(err)
	}
	got, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	checkFullMessage(t, got, "gob")
}

// TestChannelSenderMayReuseMessage pins the Transport ownership
// contract: the sender retains the message it passed to Send and may
// mutate and resend it immediately, because the channel transport hands
// the receiver a deep copy. Run under -race this fails loudly if the
// copy ever aliases the sender's slices.
func TestChannelSenderMayReuseMessage(t *testing.T) {
	a, b := NewChannelPair()
	defer a.Close()

	const rounds = 200
	done := make(chan error, 1)
	go func() {
		for i := 0; i < rounds; i++ {
			got, err := b.Recv()
			if err != nil {
				done <- err
				return
			}
			// Touch every mutable field the sender scribbles on.
			if len(got.Args) != 1 || len(got.IDs) != 2 || len(got.Args[0].Bytes) != 4 {
				done <- fmt.Errorf("round %d: message shape lost: %+v", i, got)
				return
			}
		}
		done <- nil
	}()

	m := &Message{
		Kind: MsgInvoke, Method: "m",
		Args: []vm.WireValue{{Kind: vm.KindBytes, Bytes: []byte{0, 0, 0, 0}}},
		IDs:  []vm.ObjectID{1, 2},
	}
	for i := 0; i < rounds; i++ {
		m.ID = uint64(i)
		m.Args[0].Bytes[i%4] = byte(i) // reuse the same backing array every round
		m.IDs[i%2] = vm.ObjectID(i)
		if err := a.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestGobTransportCloseUnblocksRecv(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		tr := NewConnTransport(conn)
		_, err = tr.Recv()
		done <- err
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	tr := NewConnTransport(conn)
	time.Sleep(20 * time.Millisecond)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Recv returned nil after peer close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock")
	}
}

func TestMsgKindStrings(t *testing.T) {
	for k := MsgInvoke; k <= MsgReleaseBatch; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if MsgKind(99).String() == "" {
		t.Fatal("unknown kind must still print")
	}
}

func TestRemoteErrorMessage(t *testing.T) {
	e := &RemoteError{Kind: MsgInvoke, Msg: "nope"}
	if e.Error() == "" {
		t.Fatal("empty error text")
	}
}
