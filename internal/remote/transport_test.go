package remote

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"aide/internal/vm"
)

func TestChannelPairRoundTrip(t *testing.T) {
	a, b := NewChannelPair()
	defer a.Close()
	msg := &Message{ID: 1, Kind: MsgPing}
	if err := a.Send(msg); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != 1 || got.Kind != MsgPing {
		t.Fatalf("got %+v", got)
	}
}

func TestChannelPairClose(t *testing.T) {
	a, b := NewChannelPair()
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal("Close must be idempotent")
	}
	if err := a.Send(&Message{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
	if _, err := b.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("recv after close: %v", err)
	}
}

func TestGobTransportOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	var server Transport
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := ln.Accept()
		if err != nil {
			t.Error(err)
			return
		}
		server = NewConnTransport(conn)
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	client := NewConnTransport(conn)
	wg.Wait()
	defer client.Close()
	defer server.Close()

	// Exercise every field through gob framing.
	want := &Message{
		ID: 42, Kind: MsgMigrate, Class: "C", Method: "m", Field: "f",
		Args: []vm.WireValue{{Kind: vm.KindInt, I: 7}, {Kind: vm.KindRef, Ref: vm.WireRef{ID: 3, Class: "C"}}},
		Ret:  vm.WireValue{Kind: vm.KindString, S: "ok"},
		Batch: []vm.MigratedObject{{
			SenderID: 9, Class: "C", Size: 100,
			Fields: []vm.WireValue{{Kind: vm.KindBytes, Bytes: []byte{1, 2, 3}}},
		}},
		IDs:          []vm.ObjectID{5, 6},
		ElapsedNanos: 12345,
	}
	if err := client.Send(want); err != nil {
		t.Fatal(err)
	}
	got, err := server.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.ID != want.ID || got.Kind != want.Kind || len(got.Args) != 2 ||
		got.Ret.S != "ok" || len(got.Batch) != 1 || got.Batch[0].Size != 100 ||
		len(got.IDs) != 2 || got.ElapsedNanos != 12345 {
		t.Fatalf("gob round trip lost data: %+v", got)
	}
}

func TestGobTransportCloseUnblocksRecv(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		tr := NewConnTransport(conn)
		_, err = tr.Recv()
		done <- err
	}()
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	tr := NewConnTransport(conn)
	time.Sleep(20 * time.Millisecond)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Recv returned nil after peer close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock")
	}
}

func TestMsgKindStrings(t *testing.T) {
	for k := MsgInvoke; k <= MsgPing; k++ {
		if k.String() == "" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if MsgKind(99).String() == "" {
		t.Fatal("unknown kind must still print")
	}
}

func TestRemoteErrorMessage(t *testing.T) {
	e := &RemoteError{Kind: MsgInvoke, Msg: "nope"}
	if e.Error() == "" {
		t.Fatal("empty error text")
	}
}
