package remote

import (
	"fmt"
	"sync"
	"testing"

	"aide/internal/vm"
)

// TestConcurrentInvokeReleaseStress hammers one client/surrogate pair
// from 8 goroutines — remote invocations, field reads, latency probes,
// and distributed-GC releases — so the race detector sees the peer
// tables, worker pool, and transport under real contention:
//
//	go test -race ./internal/remote/...
func TestConcurrentInvokeReleaseStress(t *testing.T) {
	client, _, pc, _ := newPlatform(t)

	const (
		invokers = 4
		iters    = 50
	)

	setup := client.NewThread()
	docs := make([]vm.ObjectID, invokers)
	for i := range docs {
		doc, err := setup.New("Doc", 512)
		if err != nil {
			t.Fatalf("new Doc: %v", err)
		}
		client.SetRoot(fmt.Sprintf("doc%d", i), doc)
		docs[i] = doc
	}
	if _, _, err := pc.Offload([]string{"Doc"}); err != nil {
		t.Fatalf("offload: %v", err)
	}
	for i, doc := range docs {
		if o := client.Object(doc); o == nil || !o.Remote {
			t.Fatalf("doc %d is not a stub after offload", i)
		}
	}

	errc := make(chan error, 8*iters)
	var wg sync.WaitGroup

	// Four invokers: remote method calls and field reads, each on its
	// own doc so the expected final state is exact.
	for i := 0; i < invokers; i++ {
		wg.Add(1)
		go func(doc vm.ObjectID) {
			defer wg.Done()
			th := client.NewThread()
			for n := 0; n < iters; n++ {
				if _, err := th.Invoke(doc, "append", vm.Int(1)); err != nil {
					errc <- fmt.Errorf("append: %w", err)
					return
				}
				if _, err := th.GetField(doc, "len"); err != nil {
					errc <- fmt.Errorf("get len: %w", err)
					return
				}
			}
		}(docs[i])
	}

	// Two probers: Ping and Info share the RPC call path and the stats
	// counters with the invokers.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < iters; n++ {
				if err := pc.Ping(); err != nil {
					errc <- fmt.Errorf("ping: %w", err)
					return
				}
				if _, err := pc.Info(); err != nil {
					errc <- fmt.Errorf("info: %w", err)
					return
				}
			}
		}()
	}

	// Two releasers: fire-and-forget distributed-GC decrements racing
	// the invocations. The IDs are unknown on the serving side, where
	// releasing an unknown export is a no-op.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for n := 0; n < iters; n++ {
				pc.Release(vm.ObjectID(1_000_000 + seed*iters + n))
			}
		}(i)
	}

	wg.Wait()
	close(errc)
	for err := range errc {
		t.Errorf("stress op: %v", err)
	}

	th := client.NewThread()
	for i, doc := range docs {
		v, err := th.GetField(doc, "len")
		if err != nil {
			t.Fatalf("final read of doc %d: %v", i, err)
		}
		if v.I != iters {
			t.Errorf("doc %d len = %d after %d concurrent appends, want %d", i, v.I, iters, iters)
		}
	}
}
