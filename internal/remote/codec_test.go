package remote

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"reflect"
	"testing"

	"aide/internal/vm"
)

// codecMessages is one representative message per wire kind, every field
// the kind uses populated, plus reply and error variants. The table
// backs both the exact-size regression test and the gob-equivalence
// test.
func codecMessages() []*Message {
	return []*Message{
		{Kind: MsgInvoke, ID: 1, Obj: 42, Method: "append", Args: []vm.WireValue{
			{Kind: vm.KindInt, I: -7},
			{Kind: vm.KindString, S: "hello"},
			{Kind: vm.KindBytes, Bytes: []byte{1, 2, 3}},
			{Kind: vm.KindRef, Ref: vm.WireRef{ReceiverLocal: false, ID: 9, Class: "Doc"}},
		}},
		{Kind: MsgInvoke, ID: 1, Reply: true, Ret: vm.WireValue{Kind: vm.KindInt, I: 15}, ElapsedNanos: 120_000},
		{Kind: MsgInvoke, ID: 2, Reply: true, Err: "no such method"},
		{Kind: MsgNativeInvoke, ID: 3, Class: "UI", Method: "draw", Obj: 7, SelfIsSenderLocal: true},
		{Kind: MsgGetField, ID: 4, Obj: 42, Field: "len"},
		{Kind: MsgGetField, ID: 4, Reply: true, Ret: vm.WireValue{Kind: vm.KindFloat, F: 2.5}},
		{Kind: MsgSetField, ID: 5, Obj: 42, Field: "len", Args: []vm.WireValue{{Kind: vm.KindBool, B: true}}},
		{Kind: MsgGetStatic, ID: 6, Class: "Doc", Field: "count"},
		{Kind: MsgSetStatic, ID: 7, Class: "Doc", Field: "count", Args: []vm.WireValue{{Kind: vm.KindNil}}},
		{Kind: MsgMigrate, ID: 8, Batch: []vm.MigratedObject{
			{SenderID: 11, Class: "Doc", Size: 4096, Fields: []vm.WireValue{
				{Kind: vm.KindInt, I: 10},
				{Kind: vm.KindRef, Ref: vm.WireRef{ReceiverLocal: true, ID: 3}},
			}},
			{SenderID: 12, Class: "Doc", Size: 128},
		}},
		{Kind: MsgMigrate, ID: 8, Reply: true, IDs: []vm.ObjectID{1001, 1002}},
		{Kind: MsgRelease, ID: 9, Obj: 1001},
		{Kind: MsgReleaseBatch, ID: 10, IDs: []vm.ObjectID{1001, 1002, 1002, 1003}},
		{Kind: MsgPing, ID: 11},
		{Kind: MsgPing, ID: 11, Reply: true},
		{Kind: MsgPong, ID: 11, Reply: true},
		{Kind: MsgRecall, ID: 12, Classes: []string{"Doc", "Filter"}},
		{Kind: MsgRecall, ID: 12, Reply: true, Objects: 3, MovedBytes: 8192},
		{Kind: MsgInfo, ID: 13},
		{Kind: MsgInfo, ID: 13, Reply: true, FreeBytes: 1 << 20, CapacityBytes: 8 << 20, CPUSpeed: 3.5},
		{Kind: MsgInvokeBatch, ID: 14, Calls: []vm.PipelineCall{
			{Recv: -1, Obj: 42, Method: "head", Args: []vm.WireValue{{Kind: vm.KindInt, I: 3}}},
			{Recv: 0, Method: "next", Args: []vm.WireValue{{Kind: vm.KindNil}, {Kind: vm.KindString, S: "x"}},
				ArgPromises: []vm.PromiseArg{{Pos: 0, Call: 0}}},
			{Recv: 1, Method: "value"},
		}},
		{Kind: MsgInvokeBatch, ID: 14, Reply: true, ElapsedNanos: 42_000, Rets: []vm.WireValue{
			{Kind: vm.KindRef, Ref: vm.WireRef{ReceiverLocal: false, ID: 7, Class: "Node"}},
			{Kind: vm.KindRef, Ref: vm.WireRef{ReceiverLocal: false, ID: 8, Class: "Node"}},
			{Kind: vm.KindInt, I: 99},
		}},
		// Failed frame: ErrIndex is 1-based on the wire, Rets carry the
		// successful prefix.
		{Kind: MsgInvokeBatch, ID: 15, Reply: true, Err: "no such method", ErrIndex: 2,
			Rets: []vm.WireValue{{Kind: vm.KindInt, I: 1}}},
		{Kind: MsgFieldFetch, ID: 16, Obj: 11, Classes: []string{"text", "thumb"}},
		{Kind: MsgFieldFetch, ID: 16, Reply: true, Classes: []string{"text"}, MovedBytes: 6,
			Args: []vm.WireValue{{Kind: vm.KindString, S: "hello"}}},
		// A lazy migration ships withheld fields as KindDeferred markers.
		{Kind: MsgMigrate, ID: 17, Batch: []vm.MigratedObject{
			{SenderID: 13, Class: "Note", Size: 2048, Fields: []vm.WireValue{
				{Kind: vm.KindString, S: "title"},
				{Kind: vm.KindDeferred},
			}},
		}},
		{Kind: MsgAttach, ID: 18},
		// Admitted: the reply carries surrogate-wide occupancy.
		{Kind: MsgAttach, ID: 18, Reply: true, Sessions: 7,
			FreeBytes: 1 << 20, CapacityBytes: 1 << 22, CPUSpeed: 2.0},
		// Rejected: the typed code rides next to the error text.
		{Kind: MsgAttach, ID: 19, Reply: true, Err: "session cap reached",
			ErrCode: uint8(CodeAdmission)},
		// Snapshot chunk 2 of 3 of a restore push.
		{Kind: MsgSnapshot, ID: 20, Method: "restore", Seq: 2, Total: 3,
			Blob: []byte{0xca, 0xfe, 0xba, 0xbe}},
		// Handoff announcement: the destination address rides in Class.
		{Kind: MsgSnapshot, ID: 21, Method: "handoff", Class: "127.0.0.1:9021",
			Seq: 1, Total: 1, Blob: []byte{1, 0}},
		// Pull request for chunk 1; the reply carries the chunk and count.
		{Kind: MsgSnapshot, ID: 22, Method: "pull", Seq: 1},
		{Kind: MsgSnapshot, ID: 22, Reply: true, Seq: 1, Total: 2,
			Blob: []byte{9, 9, 9}},
		// Refused mid-drain: the typed drain code rides on the reply.
		{Kind: MsgSnapshot, ID: 23, Reply: true, Err: "surrogate draining",
			ErrCode: uint8(CodeDrained)},
		{Kind: MsgSnapshotAck, ID: 24},
		{Kind: MsgSnapshotAck, ID: 24, Reply: true},
	}
}

// TestWireBytesExact pins wireBytes() to the bytes the codec actually
// produces, for every message kind: Stats and the netmodel costing must
// charge real frame sizes.
func TestWireBytesExact(t *testing.T) {
	seenKinds := map[MsgKind]bool{}
	for _, m := range codecMessages() {
		seenKinds[m.Kind] = true
		frame, err := appendFrame(nil, m)
		if err != nil {
			t.Fatalf("%s: appendFrame: %v", m.Kind, err)
		}
		if got, want := m.wireBytes(), int64(len(frame)); got != want {
			t.Errorf("%s (reply=%v): wireBytes() = %d, encoded frame is %d bytes", m.Kind, m.Reply, got, want)
		}
	}
	for k := MsgInvoke; k <= MsgSnapshotAck; k++ {
		if k == MsgPromiseRef {
			// Never a top-level frame kind: it is the per-call receiver
			// discriminator inside MsgInvokeBatch payloads.
			continue
		}
		if !seenKinds[k] {
			t.Errorf("codecMessages covers no %s message", k)
		}
	}
}

// TestMessageRoundTrip pins decode(encode(m)) == m for the
// representative table.
func TestMessageRoundTrip(t *testing.T) {
	for _, m := range codecMessages() {
		buf := appendMessage(nil, m)
		got, err := decodeMessage(buf)
		if err != nil {
			t.Fatalf("%s: decode: %v", m.Kind, err)
		}
		if !reflect.DeepEqual(got, m) {
			t.Errorf("%s (reply=%v): round trip mismatch:\n got %+v\nwant %+v", m.Kind, m.Reply, got, m)
		}
	}
}

// TestBinaryMatchesGobSemantics round-trips the same messages through
// the binary codec and through gob and requires identical decoded
// structs: the codec change alters wire mechanics, not meaning.
func TestBinaryMatchesGobSemantics(t *testing.T) {
	for _, m := range codecMessages() {
		bin, err := decodeMessage(appendMessage(nil, m))
		if err != nil {
			t.Fatalf("%s: binary decode: %v", m.Kind, err)
		}
		var network bytes.Buffer
		if err := gob.NewEncoder(&network).Encode(m); err != nil {
			t.Fatalf("%s: gob encode: %v", m.Kind, err)
		}
		var viaGob Message
		if err := gob.NewDecoder(&network).Decode(&viaGob); err != nil {
			t.Fatalf("%s: gob decode: %v", m.Kind, err)
		}
		if !reflect.DeepEqual(bin, &viaGob) {
			t.Errorf("%s (reply=%v): binary and gob disagree:\n binary %+v\n gob    %+v", m.Kind, m.Reply, bin, &viaGob)
		}
	}
}

// randomWireValue produces a canonical WireValue: only the field the
// kind uses is populated, empty blobs stay nil.
func randomWireValue(rng *rand.Rand) vm.WireValue {
	kinds := []vm.ValueKind{vm.KindNil, vm.KindInt, vm.KindFloat, vm.KindBool, vm.KindString, vm.KindBytes, vm.KindRef, vm.KindDeferred}
	switch k := kinds[rng.Intn(len(kinds))]; k {
	case vm.KindInt:
		return vm.WireValue{Kind: k, I: rng.Int63() - rng.Int63()}
	case vm.KindFloat:
		return vm.WireValue{Kind: k, F: rng.NormFloat64()}
	case vm.KindBool:
		return vm.WireValue{Kind: k, B: rng.Intn(2) == 1}
	case vm.KindString:
		return vm.WireValue{Kind: k, S: randomString(rng, 1+rng.Intn(12))}
	case vm.KindBytes:
		b := make([]byte, 1+rng.Intn(32))
		rng.Read(b)
		return vm.WireValue{Kind: k, Bytes: b}
	case vm.KindRef:
		r := vm.WireRef{ReceiverLocal: rng.Intn(2) == 1, ID: vm.ObjectID(rng.Int63n(1 << 20))}
		if !r.ReceiverLocal {
			r.Class = randomString(rng, 1+rng.Intn(8))
		}
		return vm.WireValue{Kind: vm.KindRef, Ref: r}
	default:
		return vm.WireValue{Kind: vm.KindNil}
	}
}

func randomString(rng *rand.Rand, n int) string {
	b := make([]byte, n)
	rng.Read(b)
	return string(b)
}

func randomMessage(rng *rand.Rand) *Message {
	m := &Message{
		Kind: MsgKind(1 + rng.Intn(int(MsgSnapshotAck))),
		ID:   rng.Uint64() >> uint(rng.Intn(64)),
	}
	if rng.Intn(2) == 1 {
		m.Reply = true
	}
	if rng.Intn(4) == 0 {
		m.Err = randomString(rng, 1+rng.Intn(20))
	}
	if rng.Intn(2) == 0 {
		m.Obj = vm.ObjectID(rng.Int63n(1 << 30))
	}
	if rng.Intn(3) == 0 {
		m.Class = randomString(rng, 1+rng.Intn(10))
	}
	if rng.Intn(3) == 0 {
		m.Method = randomString(rng, 1+rng.Intn(10))
	}
	if rng.Intn(3) == 0 {
		m.Field = randomString(rng, 1+rng.Intn(10))
	}
	m.SelfIsSenderLocal = rng.Intn(8) == 0
	if n := rng.Intn(5); n > 0 {
		m.Args = make([]vm.WireValue, n)
		for i := range m.Args {
			m.Args[i] = randomWireValue(rng)
		}
	}
	m.Ret = randomWireValue(rng)
	if rng.Intn(3) == 0 {
		m.ElapsedNanos = rng.Int63()
	}
	if n := rng.Intn(3); n > 0 {
		m.Batch = make([]vm.MigratedObject, n)
		for i := range m.Batch {
			mo := vm.MigratedObject{
				SenderID: vm.ObjectID(rng.Int63n(1 << 20)),
				Class:    randomString(rng, 1+rng.Intn(8)),
				Size:     rng.Int63n(1 << 16),
			}
			if f := rng.Intn(4); f > 0 {
				mo.Fields = make([]vm.WireValue, f)
				for j := range mo.Fields {
					mo.Fields[j] = randomWireValue(rng)
				}
			}
			m.Batch[i] = mo
		}
	}
	if n := rng.Intn(6); n > 0 {
		m.IDs = make([]vm.ObjectID, n)
		for i := range m.IDs {
			m.IDs[i] = vm.ObjectID(rng.Int63n(1 << 24))
		}
	}
	if n := rng.Intn(3); n > 0 {
		m.Classes = make([]string, n)
		for i := range m.Classes {
			m.Classes[i] = randomString(rng, 1+rng.Intn(8))
		}
	}
	if rng.Intn(4) == 0 {
		m.Objects = rng.Int63n(1 << 20)
		m.MovedBytes = rng.Int63n(1 << 30)
	}
	if rng.Intn(4) == 0 {
		m.FreeBytes = rng.Int63n(1 << 30)
		m.CapacityBytes = rng.Int63n(1 << 32)
		m.CPUSpeed = float64(rng.Intn(100)) / 10
	}
	if n := rng.Intn(3); n > 0 {
		m.Calls = make([]vm.PipelineCall, n)
		for i := range m.Calls {
			// Canonical forms only: a concrete receiver has Recv -1, a
			// promise receiver leaves Obj zero (it is not encoded).
			c := vm.PipelineCall{Method: randomString(rng, 1+rng.Intn(8))}
			if rng.Intn(2) == 0 {
				c.Recv = -1
				c.Obj = vm.ObjectID(rng.Int63n(1 << 20))
			} else {
				c.Recv = int32(rng.Intn(4))
			}
			if f := rng.Intn(3); f > 0 {
				c.Args = make([]vm.WireValue, f)
				for j := range c.Args {
					c.Args[j] = randomWireValue(rng)
				}
				if rng.Intn(2) == 0 {
					c.ArgPromises = []vm.PromiseArg{{Pos: int32(rng.Intn(f)), Call: int32(rng.Intn(4))}}
				}
			}
			m.Calls[i] = c
		}
	}
	if n := rng.Intn(3); n > 0 {
		m.Rets = make([]vm.WireValue, n)
		for i := range m.Rets {
			m.Rets[i] = randomWireValue(rng)
		}
	}
	if rng.Intn(4) == 0 {
		m.ErrIndex = int32(rng.Intn(64))
	}
	if rng.Intn(4) == 0 {
		m.ErrCode = uint8(rng.Intn(5))
	}
	if rng.Intn(4) == 0 {
		m.Sessions = rng.Int63n(1 << 16)
	}
	if n := rng.Intn(4); n > 0 {
		m.Blob = make([]byte, 1+rng.Intn(64))
		rng.Read(m.Blob)
		m.Seq = 1 + rng.Int63n(16)
		m.Total = m.Seq + rng.Int63n(16)
	}
	return m
}

// TestMessageRoundTripRandom drives the codec with seeded random
// messages: decode(encode(m)) must equal m, the size derivation must be
// exact, and re-encoding the decoded message must reproduce the bytes.
func TestMessageRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		m := randomMessage(rng)
		buf := appendMessage(nil, m)
		if got, want := sizeMessage(m), len(buf); got != want {
			t.Fatalf("iter %d: sizeMessage = %d, encoded %d bytes (%+v)", i, got, want, m)
		}
		dec, err := decodeMessage(buf)
		if err != nil {
			t.Fatalf("iter %d: decode: %v (%+v)", i, err, m)
		}
		if !reflect.DeepEqual(dec, m) {
			t.Fatalf("iter %d: round trip mismatch:\n got %+v\nwant %+v", i, dec, m)
		}
		if again := appendMessage(nil, dec); !bytes.Equal(again, buf) {
			t.Fatalf("iter %d: re-encode differs from original encoding", i)
		}
	}
}

// TestDecodeMessageRejectsCorruptFrames pins the codec's strictness:
// truncation, bad versions, unknown tags, unknown value kinds, and
// absurd element counts are errors, never silent misreads.
func TestDecodeMessageRejectsCorruptFrames(t *testing.T) {
	good := appendMessage(nil, codecMessages()[0])
	cases := map[string][]byte{
		"empty":            {},
		"header only":      {wireVersion},
		"bad version":      {99, byte(MsgPing), 1},
		"unknown tag":      {wireVersion, byte(MsgPing), 1, 200},
		"truncated string": {wireVersion, byte(MsgPing), 1, tagErr, 10, 'x'},
		"huge arg count":   {wireVersion, byte(MsgPing), 1, tagArgs, 0xff, 0xff, 0xff, 0xff, 0x0f},
		"huge id count":    {wireVersion, byte(MsgPing), 1, tagIDs, 0xff, 0xff, 0xff, 0xff, 0x0f},
		"bad value kind":   {wireVersion, byte(MsgPing), 1, tagRet, 99},
		"truncated float":  {wireVersion, byte(MsgPing), 1, tagCPUSpeed, 1, 2, 3},
		"truncated frame":  good[:len(good)-1],

		"huge call count":          {wireVersion, byte(MsgInvokeBatch), 1, tagCalls, 0xff, 0xff, 0xff, 0xff, 0x0f},
		"truncated pipeline call":  {wireVersion, byte(MsgInvokeBatch), 1, tagCalls, 1},
		"bad receiver form":        {wireVersion, byte(MsgInvokeBatch), 1, tagCalls, 1, 99, 0},
		"truncated promise recv":   {wireVersion, byte(MsgInvokeBatch), 1, tagCalls, 1, byte(MsgPromiseRef)},
		"truncated rets":           {wireVersion, byte(MsgInvokeBatch), 1, tagRets, 1},
		"truncated err index":      {wireVersion, byte(MsgInvokeBatch), 1, tagErrIndex},
		"truncated fetch classes":  {wireVersion, byte(MsgFieldFetch), 1, tagClasses, 1, 5, 't', 'e'},
		"negative promise arg pos": {wireVersion, byte(MsgInvokeBatch), 1, tagCalls, 1, byte(MsgInvoke), 2, 1, 'f', 0, 1, 1, 1},

		// Snapshot chunk hostile matrix: truncated chunk payloads, oversize
		// declared lengths, and truncated sequence numbers must all reject.
		"truncated snapshot chunk": {wireVersion, byte(MsgSnapshot), 1, tagBlob, 8, 0xca, 0xfe},
		"huge snapshot blob":       {wireVersion, byte(MsgSnapshot), 1, tagBlob, 0xff, 0xff, 0xff, 0xff, 0x0f},
		"truncated snapshot seq":   {wireVersion, byte(MsgSnapshot), 1, tagSeq},
		"truncated snapshot total": {wireVersion, byte(MsgSnapshot), 1, tagSeq, 2, tagTotal},
	}
	for name, data := range cases {
		if _, err := decodeMessage(data); err == nil {
			t.Errorf("%s: decodeMessage accepted corrupt input", name)
		}
	}
}

// TestCopyMessageDoesNotAlias pins the chan-transport boundary contract:
// the copy shares no mutable memory with the original.
func TestCopyMessageDoesNotAlias(t *testing.T) {
	m := &Message{Kind: MsgInvoke, ID: 1, Method: "m", Args: []vm.WireValue{{Kind: vm.KindBytes, Bytes: []byte{1, 2, 3}}}, IDs: []vm.ObjectID{5}}
	cp, err := copyMessage(m)
	if err != nil {
		t.Fatalf("copyMessage: %v", err)
	}
	if !reflect.DeepEqual(cp, m) {
		t.Fatalf("copy differs: got %+v want %+v", cp, m)
	}
	m.Args[0].Bytes[0] = 99
	m.IDs[0] = 77
	m.Method = "other"
	if cp.Args[0].Bytes[0] != 1 || cp.IDs[0] != 5 || cp.Method != "m" {
		t.Fatal("copyMessage aliases the sender's memory")
	}
}
