package remote

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"aide/internal/vm"
)

// Binary wire codec for the RPC envelope. Every remote crossing — field
// access, invocation, migration, distributed-GC release — moves one
// Message, so the per-message encode cost is the platform's per-call
// overhead (the difference CloneCloud and COARA identify between
// offloading that pays off and offloading that doesn't). The codec is a
// hand-rolled length-prefixed frame:
//
//	frame   := uvarint(len(payload)) payload
//	payload := version kind uvarint(ID) field*
//	field   := tag tag-dependent-encoding
//
// Zero-valued fields are omitted entirely; the tag's presence is the
// field's presence. Decoding an unknown tag or version fails loudly —
// evolution happens by bumping wireVersion, never by silently skipping.
// Encode buffers are pooled; decode copies what it keeps, so frames can
// be reused immediately.
//
// wireBytes() (message.go) is derived from sizeMessage below, so Stats
// and netmodel.Link costing charge the exact frame size; the codec tests
// and FuzzMessageRoundTrip pin sizeMessage == len(appendMessage) for
// every message kind.

// wireVersion is the frame format version; the first payload byte.
const wireVersion = 1

// maxFrame bounds incoming frame sizes so a corrupt length prefix cannot
// force an arbitrary allocation.
const maxFrame = 1 << 28

// Field tags, one per Message field that can appear on the wire (ID and
// Kind live in the fixed header). Presence tags (tagReply,
// tagSelfIsSenderLocal) carry no payload.
const (
	tagReply = iota + 1
	tagErr
	tagObj
	tagClass
	tagMethod
	tagField
	tagSelfIsSenderLocal
	tagArgs
	tagRet
	tagElapsedNanos
	tagBatch
	tagIDs
	tagClasses
	tagObjects
	tagMovedBytes
	tagFreeBytes
	tagCapacityBytes
	tagCPUSpeed
	tagCalls
	tagRets
	tagErrIndex
	tagErrCode
	tagSessions
	tagBlob
	tagSeq
	tagTotal
)

// The binary codec encodes every field of the structs below; these pins
// are checked by the gobwire analyzer against the struct definitions, so
// a new field cannot be added without updating the codec (and the pin)
// in the same change.
//
//lint:wire Message
const messageWireFields = 28

//lint:wire aide/internal/vm.WireValue
const wireValueWireFields = 7

//lint:wire aide/internal/vm.WireRef
const wireRefWireFields = 3

//lint:wire aide/internal/vm.MigratedObject
const migratedObjectWireFields = 4

//lint:wire aide/internal/vm.PipelineCall
const pipelineCallWireFields = 5

//lint:wire aide/internal/vm.PromiseArg
const promiseArgWireFields = 2

// framePool recycles encode/receive buffers across messages.
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

func getFrameBuf() *[]byte            { return framePool.Get().(*[]byte) }
func putFrameBuf(p *[]byte, b []byte) { *p = b[:0]; framePool.Put(p) }

func isZeroWireValue(w *vm.WireValue) bool {
	return w.Kind == vm.KindNil
}

// appendMessage appends m's payload (no length prefix) to buf.
func appendMessage(buf []byte, m *Message) []byte {
	buf = append(buf, wireVersion, byte(m.Kind))
	buf = binary.AppendUvarint(buf, m.ID)
	if m.Reply {
		buf = append(buf, tagReply)
	}
	if m.Err != "" {
		buf = append(buf, tagErr)
		buf = vm.AppendString(buf, m.Err)
	}
	if m.Obj != 0 {
		buf = append(buf, tagObj)
		buf = binary.AppendVarint(buf, int64(m.Obj))
	}
	if m.Class != "" {
		buf = append(buf, tagClass)
		buf = vm.AppendString(buf, m.Class)
	}
	if m.Method != "" {
		buf = append(buf, tagMethod)
		buf = vm.AppendString(buf, m.Method)
	}
	if m.Field != "" {
		buf = append(buf, tagField)
		buf = vm.AppendString(buf, m.Field)
	}
	if m.SelfIsSenderLocal {
		buf = append(buf, tagSelfIsSenderLocal)
	}
	if len(m.Args) > 0 {
		buf = append(buf, tagArgs)
		buf = binary.AppendUvarint(buf, uint64(len(m.Args)))
		for i := range m.Args {
			buf = m.Args[i].AppendWire(buf)
		}
	}
	if !isZeroWireValue(&m.Ret) {
		buf = append(buf, tagRet)
		buf = m.Ret.AppendWire(buf)
	}
	if m.ElapsedNanos != 0 {
		buf = append(buf, tagElapsedNanos)
		buf = binary.AppendVarint(buf, m.ElapsedNanos)
	}
	if len(m.Batch) > 0 {
		buf = append(buf, tagBatch)
		buf = binary.AppendUvarint(buf, uint64(len(m.Batch)))
		for i := range m.Batch {
			buf = m.Batch[i].AppendWire(buf)
		}
	}
	if len(m.IDs) > 0 {
		buf = append(buf, tagIDs)
		buf = binary.AppendUvarint(buf, uint64(len(m.IDs)))
		for _, id := range m.IDs {
			buf = binary.AppendVarint(buf, int64(id))
		}
	}
	if len(m.Classes) > 0 {
		buf = append(buf, tagClasses)
		buf = binary.AppendUvarint(buf, uint64(len(m.Classes)))
		for _, c := range m.Classes {
			buf = vm.AppendString(buf, c)
		}
	}
	if m.Objects != 0 {
		buf = append(buf, tagObjects)
		buf = binary.AppendVarint(buf, m.Objects)
	}
	if m.MovedBytes != 0 {
		buf = append(buf, tagMovedBytes)
		buf = binary.AppendVarint(buf, m.MovedBytes)
	}
	if m.FreeBytes != 0 {
		buf = append(buf, tagFreeBytes)
		buf = binary.AppendVarint(buf, m.FreeBytes)
	}
	if m.CapacityBytes != 0 {
		buf = append(buf, tagCapacityBytes)
		buf = binary.AppendVarint(buf, m.CapacityBytes)
	}
	if m.CPUSpeed != 0 {
		buf = append(buf, tagCPUSpeed)
		buf = appendFloat(buf, m.CPUSpeed)
	}
	if len(m.Calls) > 0 {
		buf = append(buf, tagCalls)
		buf = binary.AppendUvarint(buf, uint64(len(m.Calls)))
		for i := range m.Calls {
			buf = appendPipelineCall(buf, &m.Calls[i])
		}
	}
	if len(m.Rets) > 0 {
		buf = append(buf, tagRets)
		buf = binary.AppendUvarint(buf, uint64(len(m.Rets)))
		for i := range m.Rets {
			buf = m.Rets[i].AppendWire(buf)
		}
	}
	if m.ErrIndex != 0 {
		buf = append(buf, tagErrIndex)
		buf = binary.AppendVarint(buf, int64(m.ErrIndex))
	}
	if m.ErrCode != 0 {
		buf = append(buf, tagErrCode, m.ErrCode)
	}
	if m.Sessions != 0 {
		buf = append(buf, tagSessions)
		buf = binary.AppendVarint(buf, m.Sessions)
	}
	if len(m.Blob) > 0 {
		buf = append(buf, tagBlob)
		buf = binary.AppendUvarint(buf, uint64(len(m.Blob)))
		buf = append(buf, m.Blob...)
	}
	if m.Seq != 0 {
		buf = append(buf, tagSeq)
		buf = binary.AppendVarint(buf, m.Seq)
	}
	if m.Total != 0 {
		buf = append(buf, tagTotal)
		buf = binary.AppendVarint(buf, m.Total)
	}
	return buf
}

// appendPipelineCall appends one pipelined call. The first byte
// discriminates the receiver form — byte(MsgPromiseRef) introduces a
// varint index of an earlier call in the same frame, byte(MsgInvoke) a
// varint object ID in the receiver's namespace — followed by the method
// name, the argument list (KindNil placeholders at promise positions),
// and the promise-argument substitutions.
func appendPipelineCall(buf []byte, c *vm.PipelineCall) []byte {
	if c.Recv >= 0 {
		buf = append(buf, byte(MsgPromiseRef))
		buf = binary.AppendVarint(buf, int64(c.Recv))
	} else {
		buf = append(buf, byte(MsgInvoke))
		buf = binary.AppendVarint(buf, int64(c.Obj))
	}
	buf = vm.AppendString(buf, c.Method)
	buf = binary.AppendUvarint(buf, uint64(len(c.Args)))
	for i := range c.Args {
		buf = c.Args[i].AppendWire(buf)
	}
	buf = binary.AppendUvarint(buf, uint64(len(c.ArgPromises)))
	for _, ap := range c.ArgPromises {
		buf = binary.AppendVarint(buf, int64(ap.Pos))
		buf = binary.AppendVarint(buf, int64(ap.Call))
	}
	return buf
}

// sizePipelineCall mirrors appendPipelineCall exactly.
func sizePipelineCall(c *vm.PipelineCall) int {
	n := 1
	if c.Recv >= 0 {
		n += vm.VarintSize(int64(c.Recv))
	} else {
		n += vm.VarintSize(int64(c.Obj))
	}
	n += vm.StringSize(c.Method)
	n += vm.UvarintSize(uint64(len(c.Args)))
	for i := range c.Args {
		n += c.Args[i].WireLen()
	}
	n += vm.UvarintSize(uint64(len(c.ArgPromises)))
	for _, ap := range c.ArgPromises {
		n += vm.VarintSize(int64(ap.Pos)) + vm.VarintSize(int64(ap.Call))
	}
	return n
}

// decodePipelineCall decodes one pipelined call in place, returning the
// remaining bytes. A concrete receiver decodes with the canonical Recv
// of -1. Argument slices are carved full-capacity out of *arena (grown
// in blocks), so a frame of many calls costs a handful of allocations
// rather than one per call.
func decodePipelineCall(c *vm.PipelineCall, data []byte, arena *[]vm.WireValue) ([]byte, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("truncated pipeline call")
	}
	form := MsgKind(data[0])
	x, rest, err := vm.ReadVarint(data[1:])
	if err != nil {
		return nil, err
	}
	switch form {
	case MsgPromiseRef:
		if x < 0 || x > math.MaxInt32 {
			return nil, fmt.Errorf("pipeline promise receiver %d out of range", x)
		}
		c.Recv = int32(x)
	case MsgInvoke:
		c.Recv = -1
		c.Obj = vm.ObjectID(x)
	default:
		return nil, fmt.Errorf("unknown pipeline receiver form %d", data[0])
	}
	if c.Method, rest, err = vm.ReadString(rest); err != nil {
		return nil, err
	}
	n, rest, err := readCount(rest)
	if err != nil {
		return nil, err
	}
	if n > 0 {
		if n > uint64(len(*arena)) {
			size := n
			if size < 64 {
				size = 64
			}
			*arena = make([]vm.WireValue, size)
		}
		c.Args = (*arena)[:n:n]
		*arena = (*arena)[n:]
		for i := range c.Args {
			if rest, err = vm.DecodeWireValueInto(&c.Args[i], rest); err != nil {
				return nil, err
			}
		}
	}
	if n, rest, err = readCount(rest); err != nil {
		return nil, err
	}
	if n > 0 {
		c.ArgPromises = make([]vm.PromiseArg, n)
		for i := range c.ArgPromises {
			var pos, call int64
			if pos, rest, err = vm.ReadVarint(rest); err != nil {
				return nil, err
			}
			if call, rest, err = vm.ReadVarint(rest); err != nil {
				return nil, err
			}
			if pos < 0 || pos > math.MaxInt32 || call < 0 || call > math.MaxInt32 {
				return nil, fmt.Errorf("pipeline promise argument (%d, %d) out of range", pos, call)
			}
			c.ArgPromises[i] = vm.PromiseArg{Pos: int32(pos), Call: int32(call)}
		}
	}
	return rest, nil
}

// sizeMessage returns the exact payload size appendMessage would
// produce. It must mirror appendMessage field for field; the codec tests
// and the fuzz round-trip enforce equality.
func sizeMessage(m *Message) int {
	n := 2 + vm.UvarintSize(m.ID)
	if m.Reply {
		n++
	}
	if m.Err != "" {
		n += 1 + vm.StringSize(m.Err)
	}
	if m.Obj != 0 {
		n += 1 + vm.VarintSize(int64(m.Obj))
	}
	if m.Class != "" {
		n += 1 + vm.StringSize(m.Class)
	}
	if m.Method != "" {
		n += 1 + vm.StringSize(m.Method)
	}
	if m.Field != "" {
		n += 1 + vm.StringSize(m.Field)
	}
	if m.SelfIsSenderLocal {
		n++
	}
	if len(m.Args) > 0 {
		n += 1 + vm.UvarintSize(uint64(len(m.Args)))
		for i := range m.Args {
			n += m.Args[i].WireLen()
		}
	}
	if !isZeroWireValue(&m.Ret) {
		n += 1 + m.Ret.WireLen()
	}
	if m.ElapsedNanos != 0 {
		n += 1 + vm.VarintSize(m.ElapsedNanos)
	}
	if len(m.Batch) > 0 {
		n += 1 + vm.UvarintSize(uint64(len(m.Batch)))
		for i := range m.Batch {
			n += m.Batch[i].WireLen()
		}
	}
	if len(m.IDs) > 0 {
		n += 1 + vm.UvarintSize(uint64(len(m.IDs)))
		for _, id := range m.IDs {
			n += vm.VarintSize(int64(id))
		}
	}
	if len(m.Classes) > 0 {
		n += 1 + vm.UvarintSize(uint64(len(m.Classes)))
		for _, c := range m.Classes {
			n += vm.StringSize(c)
		}
	}
	if m.Objects != 0 {
		n += 1 + vm.VarintSize(m.Objects)
	}
	if m.MovedBytes != 0 {
		n += 1 + vm.VarintSize(m.MovedBytes)
	}
	if m.FreeBytes != 0 {
		n += 1 + vm.VarintSize(m.FreeBytes)
	}
	if m.CapacityBytes != 0 {
		n += 1 + vm.VarintSize(m.CapacityBytes)
	}
	if m.CPUSpeed != 0 {
		n += 1 + 8
	}
	if len(m.Calls) > 0 {
		n += 1 + vm.UvarintSize(uint64(len(m.Calls)))
		for i := range m.Calls {
			n += sizePipelineCall(&m.Calls[i])
		}
	}
	if len(m.Rets) > 0 {
		n += 1 + vm.UvarintSize(uint64(len(m.Rets)))
		for i := range m.Rets {
			n += m.Rets[i].WireLen()
		}
	}
	if m.ErrIndex != 0 {
		n += 1 + vm.VarintSize(int64(m.ErrIndex))
	}
	if m.ErrCode != 0 {
		n += 2
	}
	if m.Sessions != 0 {
		n += 1 + vm.VarintSize(m.Sessions)
	}
	if len(m.Blob) > 0 {
		n += 1 + vm.UvarintSize(uint64(len(m.Blob))) + len(m.Blob)
	}
	if m.Seq != 0 {
		n += 1 + vm.VarintSize(m.Seq)
	}
	if m.Total != 0 {
		n += 1 + vm.VarintSize(m.Total)
	}
	return n
}

// frameSize returns the exact on-the-wire frame size (length prefix plus
// payload) for the message.
func frameSize(m *Message) int {
	n := sizeMessage(m)
	return vm.UvarintSize(uint64(n)) + n
}

// appendFrame appends the length-prefixed frame to buf. It verifies the
// size derivation against the bytes actually produced, so a codec drift
// bug surfaces as a transport error instead of a corrupt stream.
func appendFrame(buf []byte, m *Message) ([]byte, error) {
	n := sizeMessage(m)
	buf = binary.AppendUvarint(buf, uint64(n))
	head := len(buf)
	buf = appendMessage(buf, m)
	if len(buf)-head != n {
		return nil, fmt.Errorf("remote: codec: sized %s frame at %d bytes but encoded %d", m.Kind, n, len(buf)-head)
	}
	return buf, nil
}

// decodeMessage decodes one payload (without length prefix) into a fresh
// Message. The result does not alias data; callers may recycle the
// buffer immediately.
func decodeMessage(data []byte) (*Message, error) {
	if len(data) < 2 {
		return nil, fmt.Errorf("remote: codec: truncated header (%d bytes)", len(data))
	}
	if data[0] != wireVersion {
		return nil, fmt.Errorf("remote: codec: unsupported wire version %d (have %d)", data[0], wireVersion)
	}
	m := &Message{Kind: MsgKind(data[1])}
	id, rest, err := vm.ReadUvarint(data[2:])
	if err != nil {
		return nil, fmt.Errorf("remote: codec: message id: %w", err)
	}
	m.ID = id
	for len(rest) > 0 {
		tag := rest[0]
		rest = rest[1:]
		switch tag {
		case tagReply:
			m.Reply = true
		case tagErr:
			m.Err, rest, err = vm.ReadString(rest)
		case tagObj:
			var v int64
			v, rest, err = vm.ReadVarint(rest)
			m.Obj = vm.ObjectID(v)
		case tagClass:
			m.Class, rest, err = vm.ReadString(rest)
		case tagMethod:
			m.Method, rest, err = vm.ReadString(rest)
		case tagField:
			m.Field, rest, err = vm.ReadString(rest)
		case tagSelfIsSenderLocal:
			m.SelfIsSenderLocal = true
		case tagArgs:
			var n uint64
			if n, rest, err = readCount(rest); err == nil && n > 0 {
				m.Args = make([]vm.WireValue, n)
				for i := range m.Args {
					if rest, err = vm.DecodeWireValueInto(&m.Args[i], rest); err != nil {
						break
					}
				}
			}
		case tagRet:
			m.Ret, rest, err = vm.DecodeWireValue(rest)
		case tagElapsedNanos:
			m.ElapsedNanos, rest, err = vm.ReadVarint(rest)
		case tagBatch:
			var n uint64
			if n, rest, err = readCount(rest); err == nil && n > 0 {
				m.Batch = make([]vm.MigratedObject, n)
				for i := range m.Batch {
					if m.Batch[i], rest, err = vm.DecodeMigratedObject(rest); err != nil {
						break
					}
				}
			}
		case tagIDs:
			var n uint64
			if n, rest, err = readCount(rest); err == nil && n > 0 {
				m.IDs = make([]vm.ObjectID, n)
				for i := range m.IDs {
					var v int64
					if v, rest, err = vm.ReadVarint(rest); err != nil {
						break
					}
					m.IDs[i] = vm.ObjectID(v)
				}
			}
		case tagClasses:
			var n uint64
			if n, rest, err = readCount(rest); err == nil && n > 0 {
				m.Classes = make([]string, n)
				for i := range m.Classes {
					if m.Classes[i], rest, err = vm.ReadString(rest); err != nil {
						break
					}
				}
			}
		case tagObjects:
			m.Objects, rest, err = vm.ReadVarint(rest)
		case tagMovedBytes:
			m.MovedBytes, rest, err = vm.ReadVarint(rest)
		case tagFreeBytes:
			m.FreeBytes, rest, err = vm.ReadVarint(rest)
		case tagCapacityBytes:
			m.CapacityBytes, rest, err = vm.ReadVarint(rest)
		case tagCPUSpeed:
			m.CPUSpeed, rest, err = readFloat(rest)
		case tagCalls:
			var n uint64
			if n, rest, err = readCount(rest); err == nil && n > 0 {
				m.Calls = make([]vm.PipelineCall, n)
				var argArena []vm.WireValue
				for i := range m.Calls {
					if rest, err = decodePipelineCall(&m.Calls[i], rest, &argArena); err != nil {
						break
					}
				}
			}
		case tagRets:
			var n uint64
			if n, rest, err = readCount(rest); err == nil && n > 0 {
				m.Rets = make([]vm.WireValue, n)
				for i := range m.Rets {
					if rest, err = vm.DecodeWireValueInto(&m.Rets[i], rest); err != nil {
						break
					}
				}
			}
		case tagErrIndex:
			var v int64
			v, rest, err = vm.ReadVarint(rest)
			m.ErrIndex = int32(v)
		case tagErrCode:
			if len(rest) < 1 {
				return nil, fmt.Errorf("remote: codec: truncated error code")
			}
			m.ErrCode = rest[0]
			rest = rest[1:]
		case tagSessions:
			m.Sessions, rest, err = vm.ReadVarint(rest)
		case tagBlob:
			var n uint64
			if n, rest, err = readCount(rest); err == nil && n > 0 {
				m.Blob = append([]byte(nil), rest[:n]...)
				rest = rest[n:]
			}
		case tagSeq:
			m.Seq, rest, err = vm.ReadVarint(rest)
		case tagTotal:
			m.Total, rest, err = vm.ReadVarint(rest)
		default:
			return nil, fmt.Errorf("remote: codec: unknown field tag %d", tag)
		}
		if err != nil {
			return nil, fmt.Errorf("remote: codec: field tag %d: %w", tag, err)
		}
	}
	return m, nil
}

// readCount reads a list-length uvarint and rejects counts that exceed
// the remaining bytes (every encoded element occupies at least one
// byte), so a corrupt frame cannot force an arbitrary allocation.
func readCount(data []byte) (uint64, []byte, error) {
	n, rest, err := vm.ReadUvarint(data)
	if err != nil {
		return 0, nil, err
	}
	if n > uint64(len(rest)) {
		return 0, nil, fmt.Errorf("element count %d exceeds %d remaining bytes", n, len(rest))
	}
	return n, rest, nil
}

func appendFloat(buf []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(f))
}

func readFloat(data []byte) (float64, []byte, error) {
	if len(data) < 8 {
		return 0, nil, fmt.Errorf("truncated float")
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(data)), data[8:], nil
}

// AppendFrame appends m's complete wire frame — uvarint length prefix
// plus binary-codec payload, exactly the bytes NewConnTransport puts on
// the socket — to buf and returns the extended slice. It is the codec's
// public face for tools and benchmarks; the transports use it
// internally.
func AppendFrame(buf []byte, m *Message) ([]byte, error) {
	return appendFrame(buf, m)
}

// DecodeFrame decodes one frame produced by AppendFrame.
func DecodeFrame(data []byte) (*Message, error) {
	n, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, fmt.Errorf("remote: codec: bad frame length prefix")
	}
	if n > maxFrame || n > uint64(len(data)-k) {
		return nil, fmt.Errorf("remote: codec: frame length %d exceeds %d available bytes", n, len(data)-k)
	}
	return decodeMessage(data[k : k+int(n)])
}
