package remote

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"
)

// TestMain wraps the whole package run in a goroutine-leak check: the
// peer's receive loop, worker pool, and health prober must all have
// joined (Close waits on p.wg) by the time the tests finish.
func TestMain(m *testing.M) {
	before := runtime.NumGoroutine()
	code := m.Run()
	if code == 0 {
		if leaked := settleGoroutines(before); leaked > 0 {
			fmt.Fprintf(os.Stderr, "goroutine leak: %d goroutines outlived the package tests (started with %d)\n",
				leaked, before)
			code = 1
		}
	}
	os.Exit(code)
}

// settleGoroutines waits for the goroutine count to return to the
// baseline, tolerating runtime-internal stragglers that need a few
// scheduler rounds to park.
func settleGoroutines(baseline int) int {
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline || time.Now().After(deadline) {
			if n <= baseline {
				return 0
			}
			return n - baseline
		}
		time.Sleep(20 * time.Millisecond)
	}
}
