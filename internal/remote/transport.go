package remote

import (
	"encoding/gob"
	"fmt"
	"net"
	"sync"
)

// Transport moves Messages between the two halves of the distributed
// platform. Implementations must allow concurrent Send calls and a single
// Recv loop.
type Transport interface {
	Send(*Message) error
	// Recv blocks for the next message; it returns an error once the
	// transport closes.
	Recv() (*Message, error)
	Close() error
}

// chanTransport is an in-process transport over paired channels, used for
// single-process experiments and tests.
type chanTransport struct {
	out chan<- *Message
	in  <-chan *Message

	mu     sync.Mutex
	closed chan struct{}
}

// NewChannelPair returns two connected in-memory transports.
func NewChannelPair() (Transport, Transport) {
	ab := make(chan *Message, 64)
	ba := make(chan *Message, 64)
	closed := make(chan struct{})
	a := &chanTransport{out: ab, in: ba, closed: closed}
	b := &chanTransport{out: ba, in: ab, closed: closed}
	return a, b
}

func (t *chanTransport) Send(m *Message) error {
	// Check for closure first: with buffered channels a racing select
	// could otherwise accept a message into a dead transport.
	select {
	case <-t.closed:
		return ErrClosed
	default:
	}
	select {
	case <-t.closed:
		return ErrClosed
	case t.out <- m:
		return nil
	}
}

func (t *chanTransport) Recv() (*Message, error) {
	select {
	case <-t.closed:
		return nil, ErrClosed
	case m := <-t.in:
		return m, nil
	}
}

func (t *chanTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	select {
	case <-t.closed:
	default:
		close(t.closed)
	}
	return nil
}

// gobTransport frames Messages with gob over a single connection (the
// ad-hoc platform's wire protocol between a client device and a surrogate
// server).
type gobTransport struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder

	sendMu  sync.Mutex
	closeMu sync.Mutex
	closed  bool
}

// NewConnTransport wraps a connected net.Conn.
func NewConnTransport(conn net.Conn) Transport {
	return &gobTransport{
		conn: conn,
		enc:  gob.NewEncoder(conn),
		dec:  gob.NewDecoder(conn),
	}
}

func (t *gobTransport) Send(m *Message) error {
	t.sendMu.Lock()
	defer t.sendMu.Unlock()
	if err := t.enc.Encode(m); err != nil {
		return fmt.Errorf("remote: send: %w", err)
	}
	return nil
}

func (t *gobTransport) Recv() (*Message, error) {
	var m Message
	if err := t.dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("remote: recv: %w", err)
	}
	return &m, nil
}

func (t *gobTransport) Close() error {
	t.closeMu.Lock()
	defer t.closeMu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	return t.conn.Close()
}
