package remote

import (
	"bufio"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"
	"net"
	"sync"
)

// Transport moves Messages between the two halves of the distributed
// platform. Implementations must allow concurrent Send calls and a single
// Recv loop. Senders retain ownership of the message they pass to Send
// and may reuse it once Send returns; received messages are owned by the
// receiver.
type Transport interface {
	Send(*Message) error
	// Recv blocks for the next message; it returns an error once the
	// transport closes.
	Recv() (*Message, error)
	Close() error
}

// chanTransport is an in-process transport over paired channels, used for
// single-process experiments and tests. Messages cross the channel as a
// fresh copy produced by an encode/decode round trip through the binary
// codec, so the two peers never alias mutable state (and the in-process
// path exercises exactly the bytes the TCP path would carry).
type chanTransport struct {
	out chan<- *Message
	in  <-chan *Message

	mu     sync.Mutex
	closed chan struct{}
}

// NewChannelPair returns two connected in-memory transports.
func NewChannelPair() (Transport, Transport) {
	ab := make(chan *Message, 64)
	ba := make(chan *Message, 64)
	closed := make(chan struct{})
	a := &chanTransport{out: ab, in: ba, closed: closed}
	b := &chanTransport{out: ba, in: ab, closed: closed}
	return a, b
}

func (t *chanTransport) Send(m *Message) error {
	// Check for closure first: with buffered channels a racing select
	// could otherwise accept a message into a dead transport.
	select {
	case <-t.closed:
		return ErrClosed
	default:
	}
	cp, err := copyMessage(m)
	if err != nil {
		return err
	}
	select {
	case <-t.closed:
		return ErrClosed
	case t.out <- cp:
		return nil
	}
}

// copyMessage deep-copies m via the binary codec so the receiver shares
// no memory with the sender.
func copyMessage(m *Message) (*Message, error) {
	bp := getFrameBuf()
	buf := appendMessage((*bp)[:0], m)
	cp, err := decodeMessage(buf)
	putFrameBuf(bp, buf)
	if err != nil {
		return nil, fmt.Errorf("remote: chan send: %w", err)
	}
	return cp, nil
}

func (t *chanTransport) Recv() (*Message, error) {
	// Drain queued messages before honoring closure: Close-time release
	// flushes are sent just before the transport closes, and the select
	// below chooses randomly when both cases are ready.
	select {
	case m := <-t.in:
		return m, nil
	default:
	}
	select {
	case <-t.closed:
		select {
		case m := <-t.in:
			return m, nil
		default:
		}
		return nil, ErrClosed
	case m := <-t.in:
		return m, nil
	}
}

func (t *chanTransport) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	select {
	case <-t.closed:
	default:
		close(t.closed)
	}
	return nil
}

// binTransport frames Messages with the hand-rolled binary codec over a
// single connection — the ad-hoc platform's wire protocol between a
// client device and a surrogate server. Each frame is a uvarint length
// prefix followed by the payload (codec.go); encode buffers are pooled
// and the read side reuses one buffer across frames.
type binTransport struct {
	conn net.Conn
	w    *bufio.Writer
	r    *bufio.Reader

	readBuf []byte

	sendMu  sync.Mutex
	closeMu sync.Mutex
	closed  bool
}

// NewConnTransport wraps a connected net.Conn in the binary-codec
// transport. Both endpoints must use the same constructor; the gob
// framing remains available via NewGobConnTransport for wire-compat
// tests.
func NewConnTransport(conn net.Conn) Transport {
	return &binTransport{
		conn: conn,
		w:    bufio.NewWriter(conn),
		r:    bufio.NewReader(conn),
	}
}

func (t *binTransport) Send(m *Message) error {
	bp := getFrameBuf()
	buf, err := appendFrame((*bp)[:0], m)
	if err != nil {
		putFrameBuf(bp, *bp)
		return fmt.Errorf("remote: send: %w", err)
	}
	t.sendMu.Lock()
	_, werr := t.w.Write(buf)
	if werr == nil {
		werr = t.w.Flush()
	}
	t.sendMu.Unlock()
	putFrameBuf(bp, buf)
	if werr != nil {
		return fmt.Errorf("remote: send: %w", werr)
	}
	return nil
}

func (t *binTransport) Recv() (*Message, error) {
	n, err := binary.ReadUvarint(t.r)
	if err != nil {
		return nil, fmt.Errorf("remote: recv: %w", err)
	}
	if n > maxFrame {
		return nil, fmt.Errorf("remote: recv: frame of %d bytes exceeds limit", n)
	}
	if uint64(cap(t.readBuf)) < n {
		t.readBuf = make([]byte, n)
	}
	buf := t.readBuf[:n]
	if _, err := io.ReadFull(t.r, buf); err != nil {
		return nil, fmt.Errorf("remote: recv: %w", err)
	}
	m, err := decodeMessage(buf)
	if err != nil {
		return nil, fmt.Errorf("remote: recv: %w", err)
	}
	return m, nil
}

func (t *binTransport) Close() error {
	t.closeMu.Lock()
	defer t.closeMu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	return t.conn.Close()
}

// gobTransport frames Messages with gob over a single connection. It is
// the pre-codec wire protocol, kept runnable for wire-compat tests and
// as the benchmark baseline the binary codec is measured against.
type gobTransport struct {
	conn net.Conn
	enc  *gob.Encoder
	dec  *gob.Decoder

	sendMu  sync.Mutex
	closeMu sync.Mutex
	closed  bool
}

// NewGobConnTransport wraps a connected net.Conn in the legacy
// gob-framed transport.
func NewGobConnTransport(conn net.Conn) Transport {
	return &gobTransport{
		conn: conn,
		enc:  gob.NewEncoder(conn),
		dec:  gob.NewDecoder(conn),
	}
}

func (t *gobTransport) Send(m *Message) error {
	t.sendMu.Lock()
	defer t.sendMu.Unlock()
	if err := t.enc.Encode(m); err != nil {
		return fmt.Errorf("remote: send: %w", err)
	}
	return nil
}

func (t *gobTransport) Recv() (*Message, error) {
	var m Message
	if err := t.dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("remote: recv: %w", err)
	}
	return &m, nil
}

func (t *gobTransport) Close() error {
	t.closeMu.Lock()
	defer t.closeMu.Unlock()
	if t.closed {
		return nil
	}
	t.closed = true
	return t.conn.Close()
}
