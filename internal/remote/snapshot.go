package remote

import (
	"context"
	"fmt"

	"aide/internal/telemetry"
)

// snapshotChunk is the default cap on Blob bytes per MsgSnapshot frame:
// 1 MiB keeps every chunk far under the maxFrame guard while still
// amortizing the per-frame round trip over a useful payload.
// Options.SnapshotChunkSize overrides it (tests shrink it to exercise
// multi-chunk transfers with small images).
const snapshotChunk = 1 << 20

// Snapshot transfer modes, carried in Message.Method. A push
// (SnapRestore, SnapHandoff, SnapDrain) streams chunks at the receiver,
// whose handler consumes the assembled image; a pull (SnapPull) asks
// the receiver to chunk its own image back.
const (
	// SnapRestore replaces the receiving session VM's heap with the image.
	SnapRestore = "restore"
	// SnapHandoff announces a drain: the image is the sender's copy of
	// the receiver's session, and Class names the destination surrogate
	// the receiver should re-home it to.
	SnapHandoff = "handoff"
	// SnapDrain orders the receiving surrogate to drain toward the
	// destination named in Class. No session image crosses: Blob carries
	// the sender's drain-key credential, which the receiver validates
	// before acting.
	SnapDrain = "drain"
	// SnapPull requests chunk Seq of the receiver's own snapshot; the
	// reply carries Blob and Total.
	SnapPull = "pull"
)

// SetSnapshotHandler installs the consumer for fully assembled incoming
// snapshot pushes. The handler runs on a worker goroutine with the push
// mode (SnapRestore, SnapHandoff, SnapDrain), the destination address
// from the frame's Class field, and the assembled image bytes; its
// error (text plus typed code via CodeOf) fails the final chunk's reply.
func (p *Peer) SetSnapshotHandler(h func(method, dest string, img []byte) error) {
	p.snapMu.Lock()
	p.snapHandler = h
	p.snapMu.Unlock()
}

// SetSnapshotSource installs the capture function serving PullSnapshot
// requests from the other side. It runs on a worker goroutine; its
// result is cached until the puller acks (MsgSnapshotAck), so every
// chunk of one pull reads the same consistent image.
func (p *Peer) SetSnapshotSource(src func() ([]byte, error)) {
	p.snapMu.Lock()
	p.snapSource = src
	p.snapMu.Unlock()
}

// WaitServeIdle blocks until no more than allow serve() dispatches are
// in flight, or the peer closes. A draining surrogate quiesces a
// session peer with allow=0 before snapshotting it; a handler that
// itself runs inside a serve dispatch of the same peer passes allow=1
// to discount its own slot.
func (p *Peer) WaitServeIdle(allow int) {
	p.serveMu.Lock()
	defer p.serveMu.Unlock()
	for p.serveN > allow && !p.closed.Load() {
		p.serveCond.Wait()
	}
}

// PushSnapshot streams img to the peer as a sequence of MsgSnapshot
// frames of at most the configured chunk size, awaiting each chunk's
// reply before sending the next (so the receiver assembles strictly in
// order). method is the push mode (SnapRestore, SnapHandoff, SnapDrain)
// and dest rides in each frame's Class field. The final chunk's reply
// carries the receiving handler's verdict: a nil return means the
// handler consumed the image.
func (p *Peer) PushSnapshot(ctx context.Context, method, dest string, img []byte) error {
	if !p.tracer.Enabled() {
		return p.pushSnapshot(ctx, method, dest, img)
	}
	sid := p.tracer.NextID()
	start := p.mnow()
	err := p.pushSnapshot(telemetry.WithSpan(ctx, sid), method, dest, img)
	p.tracer.Emit(telemetry.Span{
		ID: sid, Kind: telemetry.SpanSnapshot, Note: "push:" + method, Peer: p.idx,
		Bytes: int64(len(img)), Err: err != nil, Start: start, Dur: p.mnow().Sub(start),
	})
	return err
}

func (p *Peer) pushSnapshot(ctx context.Context, method, dest string, img []byte) error {
	total := (len(img) + p.chunkSize - 1) / p.chunkSize
	if total == 0 {
		total = 1 // an empty image (drain directive) still crosses as one frame
	}
	for seq := 1; seq <= total; seq++ {
		lo := (seq - 1) * p.chunkSize
		hi := lo + p.chunkSize
		if hi > len(img) {
			hi = len(img)
		}
		req := &Message{
			Kind: MsgSnapshot, Method: method, Class: dest,
			Seq: int64(seq), Total: int64(total), Blob: img[lo:hi],
		}
		if _, err := p.Call(ctx, req); err != nil {
			return fmt.Errorf("remote: snapshot push (%s chunk %d/%d): %w", method, seq, total, err)
		}
		p.m.snapshotChunks.Inc()
		p.m.snapshotBytes.Add(int64(hi - lo))
	}
	return nil
}

// PullSnapshot fetches the peer's snapshot image (captured by its
// SetSnapshotSource hook) chunk by chunk and acknowledges receipt so
// the peer releases its cached copy. The speculation path uses this to
// seed a local shadow clone from the surrogate's authoritative state.
func (p *Peer) PullSnapshot(ctx context.Context) ([]byte, error) {
	if !p.tracer.Enabled() {
		return p.pullSnapshot(ctx)
	}
	sid := p.tracer.NextID()
	start := p.mnow()
	img, err := p.pullSnapshot(telemetry.WithSpan(ctx, sid))
	p.tracer.Emit(telemetry.Span{
		ID: sid, Kind: telemetry.SpanSnapshot, Note: "pull", Peer: p.idx,
		Bytes: int64(len(img)), Err: err != nil, Start: start, Dur: p.mnow().Sub(start),
	})
	return img, err
}

func (p *Peer) pullSnapshot(ctx context.Context) ([]byte, error) {
	var img []byte
	for seq := int64(1); ; seq++ {
		reply, err := p.Call(ctx, &Message{Kind: MsgSnapshot, Method: SnapPull, Seq: seq})
		if err != nil {
			return nil, fmt.Errorf("remote: snapshot pull chunk %d: %w", seq, err)
		}
		if reply.Seq != seq || reply.Total < seq {
			return nil, fmt.Errorf("remote: snapshot pull: peer answered chunk %d/%d to a request for chunk %d", reply.Seq, reply.Total, seq)
		}
		img = append(img, reply.Blob...)
		p.m.snapshotChunks.Inc()
		p.m.snapshotBytes.Add(int64(len(reply.Blob)))
		if seq == reply.Total {
			break
		}
	}
	// Release the peer's cached capture. A lost ack is harmless: the
	// cache is overwritten by the next pull's fresh capture.
	if _, err := p.Call(ctx, &Message{Kind: MsgSnapshotAck}); err != nil {
		p.logfSafe("remote: snapshot pull: ack failed (peer cache retained): %v", err)
	}
	return img, nil
}

// DrainRemote orders the serving side to hand its live sessions off to
// the surrogate at dest and blocks until the drain completes (the
// directive's reply is the receiving handler's verdict). The fleet
// coordinator sends this over an ordinary client connection; the
// surrogate's lobby gate admits the directive without a session, so key
// — carried as the directive's image bytes — must prove the sender's
// authority (the surrogate checks it against its configured drain key
// and refuses the directive otherwise).
func (p *Peer) DrainRemote(ctx context.Context, dest string, key []byte) error {
	if !p.tracer.Enabled() {
		return p.PushSnapshot(ctx, SnapDrain, dest, key)
	}
	sid := p.tracer.NextID()
	start := p.mnow()
	err := p.pushSnapshot(telemetry.WithSpan(ctx, sid), SnapDrain, dest, key)
	p.tracer.Emit(telemetry.Span{
		ID: sid, Kind: telemetry.SpanDrain, Note: "directive:" + dest, Peer: p.idx,
		Err: err != nil, Start: start, Dur: p.mnow().Sub(start),
	})
	return err
}

// serveSnapshot handles one incoming MsgSnapshot frame: a pull request
// answers with a chunk of this side's own captured image; a push chunk
// joins the in-order assembly buffer, and the final chunk hands the
// assembled image to the installed handler, whose error becomes the
// reply's.
func (p *Peer) serveSnapshot(m *Message, reply *Message) {
	if m.Method == SnapPull {
		p.servePull(m, reply)
		return
	}
	if m.Seq < 1 || m.Total < 1 || m.Seq > m.Total {
		reply.Err = fmt.Sprintf("snapshot chunk %d/%d out of range", m.Seq, m.Total)
		return
	}
	p.snapMu.Lock()
	switch {
	case m.Seq == 1:
		// First chunk (re)starts assembly, discarding any stale partial
		// transfer a failed earlier push left behind.
		p.snapBuf = append([]byte(nil), m.Blob...)
	case m.Seq != p.snapSeq+1:
		seen := p.snapSeq
		p.snapMu.Unlock()
		reply.Err = fmt.Sprintf("snapshot chunk %d arrived after chunk %d (out of order)", m.Seq, seen)
		return
	default:
		p.snapBuf = append(p.snapBuf, m.Blob...)
	}
	p.snapSeq = m.Seq
	done := m.Seq == m.Total
	var img []byte
	if done {
		img = p.snapBuf
		p.snapBuf = nil
		p.snapSeq = 0
	}
	h := p.snapHandler
	p.snapMu.Unlock()
	p.m.snapshotChunks.Inc()
	p.m.snapshotBytes.Add(int64(len(m.Blob)))
	if !done {
		return // plain ack reply releases the pusher's next chunk
	}
	if h == nil {
		reply.Err = fmt.Sprintf("no snapshot handler installed for %q push", m.Method)
		return
	}
	if err := h(m.Method, m.Class, img); err != nil {
		reply.Err = err.Error()
		reply.ErrCode = uint8(CodeOf(err))
	}
}

// servePull answers one chunk of this side's own snapshot, capturing
// the image via the installed source on the pull's first chunk and
// serving every later chunk from that cache so the puller assembles a
// consistent image even if the VM keeps running.
func (p *Peer) servePull(m *Message, reply *Message) {
	p.snapMu.Lock()
	img := p.snapCache
	src := p.snapSource
	p.snapMu.Unlock()
	if img == nil {
		if src == nil {
			reply.Err = "no snapshot source installed"
			return
		}
		fresh, err := src() // capture outside snapMu: it may walk a large heap
		if err != nil {
			reply.Err = err.Error()
			reply.ErrCode = uint8(CodeOf(err))
			return
		}
		p.snapMu.Lock()
		if p.snapCache == nil {
			p.snapCache = fresh
		}
		img = p.snapCache
		p.snapMu.Unlock()
	}
	total := (len(img) + p.chunkSize - 1) / p.chunkSize
	if total == 0 {
		total = 1
	}
	if m.Seq < 1 || m.Seq > int64(total) {
		reply.Err = fmt.Sprintf("snapshot pull chunk %d of %d out of range", m.Seq, total)
		return
	}
	lo := int(m.Seq-1) * p.chunkSize
	hi := lo + p.chunkSize
	if hi > len(img) {
		hi = len(img)
	}
	reply.Blob = img[lo:hi]
	reply.Seq = m.Seq
	reply.Total = int64(total)
	p.m.snapshotChunks.Inc()
	p.m.snapshotBytes.Add(int64(hi - lo))
}

// serveSnapshotAck releases the cached pull capture and any stale
// assembly state: the puller has the image, or the exchange is being
// reset.
func (p *Peer) serveSnapshotAck() {
	p.snapMu.Lock()
	p.snapCache = nil
	p.snapBuf = nil
	p.snapSeq = 0
	p.snapMu.Unlock()
}
