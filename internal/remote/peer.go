package remote

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"aide/internal/netmodel"
	"aide/internal/vm"
)

// pendingShards sizes the pending-reply table. Power of two, so the
// shard index is a mask of the request ID; IDs are sequential, so
// consecutive in-flight calls land on distinct shards.
const pendingShards = 16

// pendingShard is one lock-striped slice of the pending-reply table.
type pendingShard struct {
	mu sync.Mutex
	m  map[uint64]chan *Message
}

func (s *pendingShard) put(id uint64, ch chan *Message) {
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[uint64]chan *Message)
	}
	s.m[id] = ch
	s.mu.Unlock()
}

// take removes and returns the waiter for id, if any.
func (s *pendingShard) take(id uint64) (chan *Message, bool) {
	s.mu.Lock()
	ch, ok := s.m[id]
	if ok {
		delete(s.m, id)
	}
	s.mu.Unlock()
	return ch, ok
}

// sweep closes and removes every waiter (connection teardown).
func (s *pendingShard) sweep() {
	s.mu.Lock()
	for id, ch := range s.m {
		close(ch)
		delete(s.m, id)
	}
	s.mu.Unlock()
}

// counters is the peer's wire accounting, all atomic so the RPC fast
// path never serializes on a stats lock.
type counters struct {
	requestsSent       atomic.Int64
	requestsServed     atomic.Int64
	bytesSent          atomic.Int64
	bytesReceived      atomic.Int64
	objectsMigrated    atomic.Int64
	migrationBytes     atomic.Int64
	releasesSent       atomic.Int64
	releasesReceived   atomic.Int64
	releaseBatchesSent atomic.Int64
	orphanReplies      atomic.Int64
}

// Peer is one VM's half of the distributed platform connection. It
// implements vm.Peer for outgoing operations and services the other VM's
// requests with a pool of worker threads (paper §3.2: "Either JVM that
// receives a request uses a pool of threads to perform RPCs on behalf of
// the other JVM").
//
// Concurrency: the call fast path is lock-free up to the pending-table
// shard — an atomic ID allocation, one sharded map insert, atomic
// counters — so concurrent calls from VM threads and the worker pool do
// not serialize on a single peer lock.
type Peer struct {
	local     *vm.VM
	idx       int // this peer's index in the local VM's peer table
	transport Transport

	// link, when set, charges simulated network time to every crossing
	// (the paper's emulator WaveLAN model); nil charges nothing, leaving
	// wall-clock behaviour to the real transport.
	link *netmodel.Link

	nextID atomic.Uint64
	shards [pendingShards]pendingShard

	// closed flips exactly once; closeE (guarded by closeMu) records why.
	closed  atomic.Bool
	closeMu sync.Mutex
	closeE  error

	requests chan *Message
	wg       sync.WaitGroup

	// now is the wall-clock source for RTT measurement and release-batch
	// aging, injectable so tests can drive both with a fake clock.
	now func() time.Time

	// Release coalescing: decrefs buffer in relBuf and flush as one
	// MsgReleaseBatch when the buffer reaches relBatch entries, when a
	// Release arrives relInterval after the buffer's first entry, before
	// any blocking call (ordering relative to re-export), and on Close.
	relMu       sync.Mutex
	relBuf      []vm.ObjectID
	relFirst    time.Time
	relBatch    int
	relInterval time.Duration

	// orphanE records (once) the first reply that arrived with no
	// pending waiter; OrphanReplies counts them all.
	orphanOnce sync.Once
	orphanE    atomic.Value // error

	c counters
}

var _ vm.Peer = (*Peer)(nil)

// Stats counts wire activity.
type Stats struct {
	RequestsSent     int64
	RequestsServed   int64
	BytesSent        int64
	BytesReceived    int64
	ObjectsMigrated  int64
	MigrationBytes   int64
	ReleasesSent     int64
	ReleasesReceived int64

	// ReleaseBatchesSent counts MsgReleaseBatch wire messages; the
	// coalescing win is ReleasesSent / ReleaseBatchesSent.
	ReleaseBatchesSent int64

	// OrphanReplies counts replies that arrived with no pending waiter
	// (late reply after a failed send, or a peer protocol bug).
	OrphanReplies int64
}

// Options configures a Peer.
type Options struct {
	// Workers sizes the RPC service pool. Zero defaults to 4.
	Workers int

	// Link enables simulated network costing.
	Link *netmodel.Link

	// Now overrides the peer's wall-clock source (RTT probes, release
	// batch aging). Nil defaults to time.Now; tests inject a fake clock.
	Now func() time.Time

	// ReleaseBatchSize caps the release buffer; reaching it flushes a
	// MsgReleaseBatch. Zero defaults to 32; 1 disables coalescing.
	ReleaseBatchSize int

	// ReleaseFlushInterval bounds how long a buffered release may wait
	// for the batch to fill before the next Release flushes it. Zero
	// defaults to 1ms.
	ReleaseFlushInterval time.Duration
}

// NewPeer attaches a VM to a transport and starts the receive loop and
// worker pool. The caller must Close the peer to stop them.
func NewPeer(local *vm.VM, t Transport, opts Options) *Peer {
	workers := opts.Workers
	if workers <= 0 {
		workers = 4
	}
	p := &Peer{
		local:       local,
		transport:   t,
		link:        opts.Link,
		requests:    make(chan *Message, workers),
		now:         opts.Now,
		relBatch:    opts.ReleaseBatchSize,
		relInterval: opts.ReleaseFlushInterval,
	}
	if p.now == nil {
		p.now = time.Now
	}
	if p.relBatch <= 0 {
		p.relBatch = 32
	}
	if p.relInterval <= 0 {
		p.relInterval = time.Millisecond
	}
	p.idx = local.AttachPeer(p)
	p.wg.Add(1 + workers)
	go p.recvLoop()
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// shardFor returns the pending-table shard owning a request ID.
func (p *Peer) shardFor(id uint64) *pendingShard {
	return &p.shards[id&(pendingShards-1)]
}

// fail marks the peer closed with the given cause (first cause wins) and
// wakes every pending caller. It reports whether this call won the race.
func (p *Peer) fail(cause error) bool {
	p.closeMu.Lock()
	if p.closed.Load() {
		p.closeMu.Unlock()
		return false
	}
	p.closeE = cause
	p.closed.Store(true)
	p.closeMu.Unlock()
	for i := range p.shards {
		p.shards[i].sweep()
	}
	return true
}

// failErr returns the recorded close cause.
func (p *Peer) failErr() error {
	p.closeMu.Lock()
	defer p.closeMu.Unlock()
	if p.closeE != nil {
		return p.closeE
	}
	return ErrClosed
}

// Close tears down the connection half: in-flight calls fail with
// ErrClosed. Ad-hoc platform teardown (paper §2) is Close on both sides.
// Buffered releases flush first, so the peer drops its export pins
// before the transport dies.
func (p *Peer) Close() error {
	p.flushReleases()
	first := p.fail(ErrClosed)
	err := p.transport.Close()
	p.wg.Wait()
	if !first {
		// Already torn down (earlier Close, or a transport failure);
		// waiting above still guarantees the workers have drained.
		return nil
	}
	return err
}

// Stats returns a snapshot of wire counters.
func (p *Peer) Stats() Stats {
	return Stats{
		RequestsSent:       p.c.requestsSent.Load(),
		RequestsServed:     p.c.requestsServed.Load(),
		BytesSent:          p.c.bytesSent.Load(),
		BytesReceived:      p.c.bytesReceived.Load(),
		ObjectsMigrated:    p.c.objectsMigrated.Load(),
		MigrationBytes:     p.c.migrationBytes.Load(),
		ReleasesSent:       p.c.releasesSent.Load(),
		ReleasesReceived:   p.c.releasesReceived.Load(),
		ReleaseBatchesSent: p.c.releaseBatchesSent.Load(),
		OrphanReplies:      p.c.orphanReplies.Load(),
	}
}

// Warn returns the first anomaly the receive loop observed (currently:
// a reply with no pending waiter), or nil. The condition is recorded
// once; OrphanReplies in Stats counts every occurrence.
func (p *Peer) Warn() error {
	if e, ok := p.orphanE.Load().(error); ok {
		return e
	}
	return nil
}

func (p *Peer) recvLoop() {
	defer p.wg.Done()
	defer close(p.requests)
	for {
		m, err := p.transport.Recv()
		if err != nil {
			p.fail(err)
			return
		}
		p.c.bytesReceived.Add(m.wireBytes())
		if m.Reply {
			if ch, ok := p.shardFor(m.ID).take(m.ID); ok {
				ch <- m
			} else {
				// No waiter: a late reply after a failed send, or a
				// peer protocol bug. Count every one, record the first.
				p.c.orphanReplies.Add(1)
				p.orphanOnce.Do(func() {
					p.orphanE.Store(fmt.Errorf("remote: orphan %s reply id=%d (no pending waiter)", m.Kind, m.ID))
				})
			}
			continue
		}
		// Forward even when the peer is closing: Close waits for the
		// workers, so requests already on the wire (Close-time release
		// flushes in particular) drain instead of silently dropping. The
		// loop exits when Recv reports the transport closed and empty.
		p.requests <- m
	}
}

func (p *Peer) worker() {
	defer p.wg.Done()
	for m := range p.requests {
		p.serve(m)
	}
}

// call sends a request and blocks for the matching reply. Buffered
// releases flush first so a release never reorders after a call that
// could re-export the same object.
func (p *Peer) call(m *Message) (*Message, error) {
	p.flushReleases()
	if p.closed.Load() {
		return nil, p.failErr()
	}
	id := p.nextID.Add(1)
	m.ID = id
	ch := make(chan *Message, 1)
	sh := p.shardFor(id)
	sh.put(id, ch)
	// Re-check after publishing the waiter: a concurrent fail() that
	// swept before our insert would otherwise strand this call forever.
	if p.closed.Load() {
		sh.take(id)
		return nil, p.failErr()
	}
	p.c.requestsSent.Add(1)
	p.c.bytesSent.Add(m.wireBytes())

	if err := p.transport.Send(m); err != nil {
		sh.take(id)
		return nil, err
	}
	reply, ok := <-ch
	if !ok {
		return nil, ErrClosed
	}
	if reply.Err != "" {
		return nil, &RemoteError{Kind: m.Kind, Msg: reply.Err}
	}
	return reply, nil
}

// netCost returns the simulated link time for a request/reply exchange.
func (p *Peer) netCost(req, reply *Message) time.Duration {
	if p.link == nil {
		return 0
	}
	var replyBytes int64
	if reply != nil {
		replyBytes = reply.wireBytes()
	}
	return p.link.RPC(req.wireBytes(), replyBytes)
}

// InvokeRemote implements vm.Peer.
func (p *Peer) InvokeRemote(peerObj vm.ObjectID, method string, args []vm.Value) (vm.Value, time.Duration, error) {
	wargs, err := p.local.EncodeOutgoingAll(p.idx, args)
	if err != nil {
		return vm.Nil(), 0, err
	}
	req := &Message{Kind: MsgInvoke, Obj: peerObj, Method: method, Args: wargs}
	reply, err := p.call(req)
	if err != nil {
		return vm.Nil(), 0, err
	}
	ret, err := p.local.DecodeIncoming(p.idx, reply.Ret)
	if err != nil {
		return vm.Nil(), 0, err
	}
	return ret, time.Duration(reply.ElapsedNanos) + p.netCost(req, reply), nil
}

// InvokeNativeRemote implements vm.Peer: a native method is directed back
// to the client VM.
func (p *Peer) InvokeNativeRemote(class, method string, peerSelf vm.ObjectID, selfIsCallerLocal bool, args []vm.Value) (vm.Value, time.Duration, error) {
	if selfIsCallerLocal {
		// Instance natives only exist on pinned classes, whose objects
		// never migrate; a locally hosted receiver here means a policy
		// violated that invariant.
		return vm.Nil(), 0, fmt.Errorf("remote: native %s.%s invoked on migrated object %d", class, method, peerSelf)
	}
	wargs, err := p.local.EncodeOutgoingAll(p.idx, args)
	if err != nil {
		return vm.Nil(), 0, err
	}
	req := &Message{Kind: MsgNativeInvoke, Class: class, Method: method, Obj: peerSelf, Args: wargs}
	reply, err := p.call(req)
	if err != nil {
		return vm.Nil(), 0, err
	}
	ret, err := p.local.DecodeIncoming(p.idx, reply.Ret)
	if err != nil {
		return vm.Nil(), 0, err
	}
	return ret, time.Duration(reply.ElapsedNanos) + p.netCost(req, reply), nil
}

// GetFieldRemote implements vm.Peer.
func (p *Peer) GetFieldRemote(peerObj vm.ObjectID, field string) (vm.Value, error) {
	req := &Message{Kind: MsgGetField, Obj: peerObj, Field: field}
	reply, err := p.call(req)
	if err != nil {
		return vm.Nil(), err
	}
	p.local.AdvanceClock(p.netCost(req, reply))
	return p.local.DecodeIncoming(p.idx, reply.Ret)
}

// SetFieldRemote implements vm.Peer.
func (p *Peer) SetFieldRemote(peerObj vm.ObjectID, field string, v vm.Value) error {
	wv, err := p.local.EncodeOutgoing(p.idx, v)
	if err != nil {
		return err
	}
	req := &Message{Kind: MsgSetField, Obj: peerObj, Field: field, Args: []vm.WireValue{wv}}
	reply, err := p.call(req)
	if err != nil {
		return err
	}
	p.local.AdvanceClock(p.netCost(req, reply))
	return nil
}

// GetStaticRemote implements vm.Peer.
func (p *Peer) GetStaticRemote(class, field string) (vm.Value, error) {
	req := &Message{Kind: MsgGetStatic, Class: class, Field: field}
	reply, err := p.call(req)
	if err != nil {
		return vm.Nil(), err
	}
	p.local.AdvanceClock(p.netCost(req, reply))
	return p.local.DecodeIncoming(p.idx, reply.Ret)
}

// SetStaticRemote implements vm.Peer.
func (p *Peer) SetStaticRemote(class, field string, v vm.Value) error {
	wv, err := p.local.EncodeOutgoing(p.idx, v)
	if err != nil {
		return err
	}
	req := &Message{Kind: MsgSetStatic, Class: class, Field: field, Args: []vm.WireValue{wv}}
	reply, err := p.call(req)
	if err != nil {
		return err
	}
	p.local.AdvanceClock(p.netCost(req, reply))
	return nil
}

// Release implements vm.Peer: fire-and-forget distributed-GC decrement.
// Decrefs coalesce into a per-peer buffer and ship as one
// MsgReleaseBatch (paper §3.2's reference releases, batched so a stub
// collection storm costs O(storm/batch) wire messages, not O(storm)).
func (p *Peer) Release(peerObj vm.ObjectID) {
	if p.closed.Load() {
		return
	}
	p.c.releasesSent.Add(1)
	t := p.now()
	p.relMu.Lock()
	if len(p.relBuf) == 0 {
		p.relFirst = t
	}
	p.relBuf = append(p.relBuf, peerObj)
	flush := len(p.relBuf) >= p.relBatch || t.Sub(p.relFirst) >= p.relInterval
	p.relMu.Unlock()
	if flush {
		p.flushReleases()
	}
}

// flushReleases ships the buffered release decrefs as one batch message.
// It deliberately does not read the clock: callers on the blocking-call
// path (call, Info) must not consume fake-clock readings.
func (p *Peer) flushReleases() {
	p.relMu.Lock()
	ids := p.relBuf
	p.relBuf = nil
	p.relMu.Unlock()
	if len(ids) == 0 {
		return
	}
	m := &Message{ID: p.nextID.Add(1), Kind: MsgReleaseBatch, IDs: ids}
	p.c.releaseBatchesSent.Add(1)
	p.c.bytesSent.Add(m.wireBytes())
	// Best effort: a lost batch leaks export pins, never corrupts.
	//lint:allow rpcerr fire-and-forget release batch; recvLoop owns transport failure
	_ = p.transport.Send(m)
}

// Offload migrates all live local objects of the named classes to the
// peer, converting the local copies to stubs. It returns the number of
// objects and payload bytes moved and charges the transfer to the
// simulated clock when a link model is attached.
func (p *Peer) Offload(classNames []string) (objects int, bytes int64, err error) {
	batch, err := p.local.ExtractMigration(classNames)
	if err != nil {
		return 0, 0, fmt.Errorf("remote: offload: %w", err)
	}
	if len(batch) == 0 {
		return 0, 0, nil
	}
	req := &Message{Kind: MsgMigrate, Batch: batch}
	reply, err := p.call(req)
	if err != nil {
		return 0, 0, fmt.Errorf("remote: offload: %w", err)
	}
	if len(reply.IDs) != len(batch) {
		return 0, 0, fmt.Errorf("remote: offload: peer assigned %d ids for %d objects", len(reply.IDs), len(batch))
	}
	ids := make([]vm.ObjectID, len(batch))
	for i := range batch {
		ids[i] = batch[i].SenderID
	}
	if err := p.local.ConvertToStubs(p.idx, ids, reply.IDs); err != nil {
		return 0, 0, fmt.Errorf("remote: offload: %w", err)
	}
	moved := vm.MigrationWireBytes(batch)
	if p.link != nil {
		p.local.AdvanceClock(p.link.Transfer(moved, 1400))
	}
	p.c.objectsMigrated.Add(int64(len(batch)))
	p.c.migrationBytes.Add(moved)
	return len(batch), moved, nil
}

// Ping round-trips a null message (latency probe; the ad-hoc platform uses
// it to rank candidate surrogates).
func (p *Peer) Ping() error {
	_, err := p.call(&Message{Kind: MsgPing})
	return err
}

// PeerInfo describes the remote VM's resources (surrogate selection,
// paper §2: clients determine which surrogates are most appropriate based
// on latency of access and resource availability).
type PeerInfo struct {
	FreeBytes     int64
	CapacityBytes int64
	CPUSpeed      float64

	// RTT is the wall-clock round trip of the info probe.
	RTT time.Duration
}

// Info probes the peer's resources and measures the probe's round trip.
func (p *Peer) Info() (PeerInfo, error) {
	start := p.now()
	reply, err := p.call(&Message{Kind: MsgInfo})
	if err != nil {
		return PeerInfo{}, err
	}
	return PeerInfo{
		FreeBytes:     reply.FreeBytes,
		CapacityBytes: reply.CapacityBytes,
		CPUSpeed:      reply.CPUSpeed,
		RTT:           p.now().Sub(start),
	}, nil
}

// Recall asks the peer to migrate its live objects of the named classes
// back to this VM: the reverse of Offload, the paper's §8 "global
// placement" direction ("moving objects from the surrogate to the client
// device"). Stubs this VM already holds upgrade in place, so references
// stay valid.
func (p *Peer) Recall(classNames []string) (objects int, bytes int64, err error) {
	reply, err := p.call(&Message{Kind: MsgRecall, Classes: classNames})
	if err != nil {
		return 0, 0, fmt.Errorf("remote: recall: %w", err)
	}
	if p.link != nil && reply.MovedBytes > 0 {
		p.local.AdvanceClock(p.link.Transfer(reply.MovedBytes, 1400))
	}
	return int(reply.Objects), reply.MovedBytes, nil
}

// serve executes one incoming request and replies.
func (p *Peer) serve(m *Message) {
	p.c.requestsServed.Add(1)

	reply := &Message{ID: m.ID, Reply: true, Kind: m.Kind}
	switch m.Kind {
	case MsgRelease:
		p.c.releasesReceived.Add(1)
		p.local.ReleaseExport(m.Obj)
		return // one-way
	case MsgReleaseBatch:
		p.c.releasesReceived.Add(int64(len(m.IDs)))
		for _, id := range m.IDs {
			p.local.ReleaseExport(id)
		}
		return // one-way
	case MsgPing:
		// empty reply
	case MsgInfo:
		h := p.local.Heap()
		reply.FreeBytes = h.Free
		reply.CapacityBytes = h.Capacity
		reply.CPUSpeed = p.local.CPUSpeed()
	case MsgRecall:
		// Push our objects of the named classes back to the requester:
		// exactly an Offload in the opposite direction. Offload blocks on
		// the requester adopting the batch; its recv loop services that
		// while it waits for this reply.
		n, bytes, err := p.Offload(m.Classes)
		if err != nil {
			reply.Err = err.Error()
			break
		}
		reply.Objects = int64(n)
		reply.MovedBytes = bytes
	case MsgInvoke:
		args, err := p.local.DecodeIncomingAll(p.idx, m.Args)
		if err != nil {
			reply.Err = err.Error()
			break
		}
		ret, elapsed, err := p.local.ServeInvoke(m.Obj, m.Method, args)
		if err != nil {
			reply.Err = err.Error()
			break
		}
		reply.ElapsedNanos = int64(elapsed)
		if reply.Ret, err = p.local.EncodeOutgoing(p.idx, ret); err != nil {
			reply.Err = err.Error()
		}
	case MsgNativeInvoke:
		args, err := p.local.DecodeIncomingAll(p.idx, m.Args)
		if err != nil {
			reply.Err = err.Error()
			break
		}
		ret, elapsed, err := p.local.ServeNative(m.Class, m.Method, m.Obj, args)
		if err != nil {
			reply.Err = err.Error()
			break
		}
		reply.ElapsedNanos = int64(elapsed)
		if reply.Ret, err = p.local.EncodeOutgoing(p.idx, ret); err != nil {
			reply.Err = err.Error()
		}
	case MsgGetField:
		ret, err := p.local.ServeGetField(m.Obj, m.Field)
		if err != nil {
			reply.Err = err.Error()
			break
		}
		if reply.Ret, err = p.local.EncodeOutgoing(p.idx, ret); err != nil {
			reply.Err = err.Error()
		}
	case MsgSetField:
		if len(m.Args) != 1 {
			reply.Err = "set-field expects one value"
			break
		}
		val, err := p.local.DecodeIncoming(p.idx, m.Args[0])
		if err != nil {
			reply.Err = err.Error()
			break
		}
		if err := p.local.ServeSetField(m.Obj, m.Field, val); err != nil {
			reply.Err = err.Error()
		}
	case MsgGetStatic:
		ret, err := p.local.ServeGetStatic(m.Class, m.Field)
		if err != nil {
			reply.Err = err.Error()
			break
		}
		if reply.Ret, err = p.local.EncodeOutgoing(p.idx, ret); err != nil {
			reply.Err = err.Error()
		}
	case MsgSetStatic:
		if len(m.Args) != 1 {
			reply.Err = "set-static expects one value"
			break
		}
		val, err := p.local.DecodeIncoming(p.idx, m.Args[0])
		if err != nil {
			reply.Err = err.Error()
			break
		}
		if err := p.local.ServeSetStatic(m.Class, m.Field, val); err != nil {
			reply.Err = err.Error()
		}
	case MsgMigrate:
		ids, err := p.local.AdoptMigration(p.idx, m.Batch)
		if err != nil {
			reply.Err = err.Error()
			break
		}
		reply.IDs = ids
		p.c.objectsMigrated.Add(int64(len(m.Batch)))
	default:
		reply.Err = fmt.Sprintf("unknown request kind %d", m.Kind)
	}

	if p.closed.Load() {
		return
	}
	p.c.bytesSent.Add(reply.wireBytes())
	if err := p.transport.Send(reply); err != nil {
		// The connection is gone; recvLoop will observe and shut down.
		return
	}
}

// NewPair wires two VMs together in process: the client and surrogate
// halves of an ad-hoc platform without a network. Close both peers to tear
// the platform down.
func NewPair(client, surrogate *vm.VM, opts Options) (*Peer, *Peer) {
	ta, tb := NewChannelPair()
	pc := NewPeer(client, ta, opts)
	ps := NewPeer(surrogate, tb, opts)
	return pc, ps
}
