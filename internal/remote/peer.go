package remote

import (
	"fmt"
	"sync"
	"time"

	"aide/internal/netmodel"
	"aide/internal/vm"
)

// Peer is one VM's half of the distributed platform connection. It
// implements vm.Peer for outgoing operations and services the other VM's
// requests with a pool of worker threads (paper §3.2: "Either JVM that
// receives a request uses a pool of threads to perform RPCs on behalf of
// the other JVM").
type Peer struct {
	local     *vm.VM
	idx       int // this peer's index in the local VM's peer table
	transport Transport

	// link, when set, charges simulated network time to every crossing
	// (the paper's emulator WaveLAN model); nil charges nothing, leaving
	// wall-clock behaviour to the real transport.
	link *netmodel.Link

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]chan *Message
	closed  bool
	closeE  error

	requests chan *Message
	wg       sync.WaitGroup

	// now is the wall-clock source for RTT measurement, injectable so
	// tests can measure probe latency with a fake clock.
	now func() time.Time

	stats Stats
}

var _ vm.Peer = (*Peer)(nil)

// Stats counts wire activity.
type Stats struct {
	RequestsSent     int64
	RequestsServed   int64
	BytesSent        int64
	BytesReceived    int64
	ObjectsMigrated  int64
	MigrationBytes   int64
	ReleasesSent     int64
	ReleasesReceived int64
}

// Options configures a Peer.
type Options struct {
	// Workers sizes the RPC service pool. Zero defaults to 4.
	Workers int

	// Link enables simulated network costing.
	Link *netmodel.Link

	// Now overrides the peer's wall-clock source (RTT probes). Nil
	// defaults to time.Now; tests inject a fake clock.
	Now func() time.Time
}

// NewPeer attaches a VM to a transport and starts the receive loop and
// worker pool. The caller must Close the peer to stop them.
func NewPeer(local *vm.VM, t Transport, opts Options) *Peer {
	workers := opts.Workers
	if workers <= 0 {
		workers = 4
	}
	p := &Peer{
		local:     local,
		transport: t,
		link:      opts.Link,
		pending:   make(map[uint64]chan *Message),
		requests:  make(chan *Message, workers),
		now:       opts.Now,
	}
	if p.now == nil {
		p.now = time.Now
	}
	p.idx = local.AttachPeer(p)
	p.wg.Add(1 + workers)
	go p.recvLoop()
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// Close tears down the connection half: in-flight calls fail with
// ErrClosed. Ad-hoc platform teardown (paper §2) is Close on both sides.
func (p *Peer) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.closeE = ErrClosed
	for id, ch := range p.pending {
		close(ch)
		delete(p.pending, id)
	}
	p.mu.Unlock()
	err := p.transport.Close()
	p.wg.Wait()
	return err
}

// Stats returns a snapshot of wire counters.
func (p *Peer) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

func (p *Peer) recvLoop() {
	defer p.wg.Done()
	defer close(p.requests)
	for {
		m, err := p.transport.Recv()
		if err != nil {
			p.mu.Lock()
			if !p.closed {
				p.closed = true
				p.closeE = err
			}
			for id, ch := range p.pending {
				close(ch)
				delete(p.pending, id)
			}
			p.mu.Unlock()
			return
		}
		if m.Reply {
			p.mu.Lock()
			ch, ok := p.pending[m.ID]
			if ok {
				delete(p.pending, m.ID)
			}
			p.stats.BytesReceived += m.wireBytes()
			p.mu.Unlock()
			if ok {
				ch <- m
			}
			continue
		}
		p.mu.Lock()
		p.stats.BytesReceived += m.wireBytes()
		closed := p.closed
		p.mu.Unlock()
		if closed {
			return
		}
		p.requests <- m
	}
}

func (p *Peer) worker() {
	defer p.wg.Done()
	for m := range p.requests {
		p.serve(m)
	}
}

// call sends a request and blocks for the matching reply.
func (p *Peer) call(m *Message) (*Message, error) {
	ch := make(chan *Message, 1)
	p.mu.Lock()
	if p.closed {
		err := p.closeE
		p.mu.Unlock()
		return nil, err
	}
	p.nextID++
	m.ID = p.nextID
	p.pending[m.ID] = ch
	p.stats.RequestsSent++
	p.stats.BytesSent += m.wireBytes()
	p.mu.Unlock()

	if err := p.transport.Send(m); err != nil {
		p.mu.Lock()
		delete(p.pending, m.ID)
		p.mu.Unlock()
		return nil, err
	}
	reply, ok := <-ch
	if !ok {
		return nil, ErrClosed
	}
	if reply.Err != "" {
		return nil, &RemoteError{Kind: m.Kind, Msg: reply.Err}
	}
	return reply, nil
}

// netCost returns the simulated link time for a request/reply exchange.
func (p *Peer) netCost(req, reply *Message) time.Duration {
	if p.link == nil {
		return 0
	}
	var replyBytes int64
	if reply != nil {
		replyBytes = reply.wireBytes()
	}
	return p.link.RPC(req.wireBytes(), replyBytes)
}

// InvokeRemote implements vm.Peer.
func (p *Peer) InvokeRemote(peerObj vm.ObjectID, method string, args []vm.Value) (vm.Value, time.Duration, error) {
	wargs, err := p.local.EncodeOutgoingAll(p.idx, args)
	if err != nil {
		return vm.Nil(), 0, err
	}
	req := &Message{Kind: MsgInvoke, Obj: peerObj, Method: method, Args: wargs}
	reply, err := p.call(req)
	if err != nil {
		return vm.Nil(), 0, err
	}
	ret, err := p.local.DecodeIncoming(p.idx, reply.Ret)
	if err != nil {
		return vm.Nil(), 0, err
	}
	return ret, time.Duration(reply.ElapsedNanos) + p.netCost(req, reply), nil
}

// InvokeNativeRemote implements vm.Peer: a native method is directed back
// to the client VM.
func (p *Peer) InvokeNativeRemote(class, method string, peerSelf vm.ObjectID, selfIsCallerLocal bool, args []vm.Value) (vm.Value, time.Duration, error) {
	if selfIsCallerLocal {
		// Instance natives only exist on pinned classes, whose objects
		// never migrate; a locally hosted receiver here means a policy
		// violated that invariant.
		return vm.Nil(), 0, fmt.Errorf("remote: native %s.%s invoked on migrated object %d", class, method, peerSelf)
	}
	wargs, err := p.local.EncodeOutgoingAll(p.idx, args)
	if err != nil {
		return vm.Nil(), 0, err
	}
	req := &Message{Kind: MsgNativeInvoke, Class: class, Method: method, Obj: peerSelf, Args: wargs}
	reply, err := p.call(req)
	if err != nil {
		return vm.Nil(), 0, err
	}
	ret, err := p.local.DecodeIncoming(p.idx, reply.Ret)
	if err != nil {
		return vm.Nil(), 0, err
	}
	return ret, time.Duration(reply.ElapsedNanos) + p.netCost(req, reply), nil
}

// GetFieldRemote implements vm.Peer.
func (p *Peer) GetFieldRemote(peerObj vm.ObjectID, field string) (vm.Value, error) {
	req := &Message{Kind: MsgGetField, Obj: peerObj, Field: field}
	reply, err := p.call(req)
	if err != nil {
		return vm.Nil(), err
	}
	p.local.AdvanceClock(p.netCost(req, reply))
	return p.local.DecodeIncoming(p.idx, reply.Ret)
}

// SetFieldRemote implements vm.Peer.
func (p *Peer) SetFieldRemote(peerObj vm.ObjectID, field string, v vm.Value) error {
	wv, err := p.local.EncodeOutgoing(p.idx, v)
	if err != nil {
		return err
	}
	req := &Message{Kind: MsgSetField, Obj: peerObj, Field: field, Args: []vm.WireValue{wv}}
	reply, err := p.call(req)
	if err != nil {
		return err
	}
	p.local.AdvanceClock(p.netCost(req, reply))
	return nil
}

// GetStaticRemote implements vm.Peer.
func (p *Peer) GetStaticRemote(class, field string) (vm.Value, error) {
	req := &Message{Kind: MsgGetStatic, Class: class, Field: field}
	reply, err := p.call(req)
	if err != nil {
		return vm.Nil(), err
	}
	p.local.AdvanceClock(p.netCost(req, reply))
	return p.local.DecodeIncoming(p.idx, reply.Ret)
}

// SetStaticRemote implements vm.Peer.
func (p *Peer) SetStaticRemote(class, field string, v vm.Value) error {
	wv, err := p.local.EncodeOutgoing(p.idx, v)
	if err != nil {
		return err
	}
	req := &Message{Kind: MsgSetStatic, Class: class, Field: field, Args: []vm.WireValue{wv}}
	reply, err := p.call(req)
	if err != nil {
		return err
	}
	p.local.AdvanceClock(p.netCost(req, reply))
	return nil
}

// Release implements vm.Peer: fire-and-forget distributed-GC decrement.
func (p *Peer) Release(peerObj vm.ObjectID) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.nextID++
	m := &Message{ID: p.nextID, Kind: MsgRelease, Obj: peerObj}
	p.stats.ReleasesSent++
	p.stats.BytesSent += m.wireBytes()
	p.mu.Unlock()
	// Best effort: a lost release leaks one export pin, never corrupts.
	//lint:allow rpcerr fire-and-forget release; recvLoop owns transport failure
	_ = p.transport.Send(m)
}

// Offload migrates all live local objects of the named classes to the
// peer, converting the local copies to stubs. It returns the number of
// objects and payload bytes moved and charges the transfer to the
// simulated clock when a link model is attached.
func (p *Peer) Offload(classNames []string) (objects int, bytes int64, err error) {
	batch, err := p.local.ExtractMigration(classNames)
	if err != nil {
		return 0, 0, fmt.Errorf("remote: offload: %w", err)
	}
	if len(batch) == 0 {
		return 0, 0, nil
	}
	req := &Message{Kind: MsgMigrate, Batch: batch}
	reply, err := p.call(req)
	if err != nil {
		return 0, 0, fmt.Errorf("remote: offload: %w", err)
	}
	if len(reply.IDs) != len(batch) {
		return 0, 0, fmt.Errorf("remote: offload: peer assigned %d ids for %d objects", len(reply.IDs), len(batch))
	}
	ids := make([]vm.ObjectID, len(batch))
	for i := range batch {
		ids[i] = batch[i].SenderID
	}
	if err := p.local.ConvertToStubs(p.idx, ids, reply.IDs); err != nil {
		return 0, 0, fmt.Errorf("remote: offload: %w", err)
	}
	moved := vm.MigrationWireBytes(batch)
	if p.link != nil {
		p.local.AdvanceClock(p.link.Transfer(moved, 1400))
	}
	p.mu.Lock()
	p.stats.ObjectsMigrated += int64(len(batch))
	p.stats.MigrationBytes += moved
	p.mu.Unlock()
	return len(batch), moved, nil
}

// Ping round-trips a null message (latency probe; the ad-hoc platform uses
// it to rank candidate surrogates).
func (p *Peer) Ping() error {
	_, err := p.call(&Message{Kind: MsgPing})
	return err
}

// PeerInfo describes the remote VM's resources (surrogate selection,
// paper §2: clients determine which surrogates are most appropriate based
// on latency of access and resource availability).
type PeerInfo struct {
	FreeBytes     int64
	CapacityBytes int64
	CPUSpeed      float64

	// RTT is the wall-clock round trip of the info probe.
	RTT time.Duration
}

// Info probes the peer's resources and measures the probe's round trip.
func (p *Peer) Info() (PeerInfo, error) {
	start := p.now()
	reply, err := p.call(&Message{Kind: MsgInfo})
	if err != nil {
		return PeerInfo{}, err
	}
	return PeerInfo{
		FreeBytes:     reply.FreeBytes,
		CapacityBytes: reply.CapacityBytes,
		CPUSpeed:      reply.CPUSpeed,
		RTT:           p.now().Sub(start),
	}, nil
}

// Recall asks the peer to migrate its live objects of the named classes
// back to this VM: the reverse of Offload, the paper's §8 "global
// placement" direction ("moving objects from the surrogate to the client
// device"). Stubs this VM already holds upgrade in place, so references
// stay valid.
func (p *Peer) Recall(classNames []string) (objects int, bytes int64, err error) {
	reply, err := p.call(&Message{Kind: MsgRecall, Classes: classNames})
	if err != nil {
		return 0, 0, fmt.Errorf("remote: recall: %w", err)
	}
	if p.link != nil && reply.MovedBytes > 0 {
		p.local.AdvanceClock(p.link.Transfer(reply.MovedBytes, 1400))
	}
	return int(reply.Objects), reply.MovedBytes, nil
}

// serve executes one incoming request and replies.
func (p *Peer) serve(m *Message) {
	p.mu.Lock()
	p.stats.RequestsServed++
	p.mu.Unlock()

	reply := &Message{ID: m.ID, Reply: true, Kind: m.Kind}
	switch m.Kind {
	case MsgRelease:
		p.mu.Lock()
		p.stats.ReleasesReceived++
		p.mu.Unlock()
		p.local.ReleaseExport(m.Obj)
		return // one-way
	case MsgPing:
		// empty reply
	case MsgInfo:
		h := p.local.Heap()
		reply.FreeBytes = h.Free
		reply.CapacityBytes = h.Capacity
		reply.CPUSpeed = p.local.CPUSpeed()
	case MsgRecall:
		// Push our objects of the named classes back to the requester:
		// exactly an Offload in the opposite direction. Offload blocks on
		// the requester adopting the batch; its recv loop services that
		// while it waits for this reply.
		n, bytes, err := p.Offload(m.Classes)
		if err != nil {
			reply.Err = err.Error()
			break
		}
		reply.Objects = int64(n)
		reply.MovedBytes = bytes
	case MsgInvoke:
		args, err := p.local.DecodeIncomingAll(p.idx, m.Args)
		if err != nil {
			reply.Err = err.Error()
			break
		}
		ret, elapsed, err := p.local.ServeInvoke(m.Obj, m.Method, args)
		if err != nil {
			reply.Err = err.Error()
			break
		}
		reply.ElapsedNanos = int64(elapsed)
		if reply.Ret, err = p.local.EncodeOutgoing(p.idx, ret); err != nil {
			reply.Err = err.Error()
		}
	case MsgNativeInvoke:
		args, err := p.local.DecodeIncomingAll(p.idx, m.Args)
		if err != nil {
			reply.Err = err.Error()
			break
		}
		ret, elapsed, err := p.local.ServeNative(m.Class, m.Method, m.Obj, args)
		if err != nil {
			reply.Err = err.Error()
			break
		}
		reply.ElapsedNanos = int64(elapsed)
		if reply.Ret, err = p.local.EncodeOutgoing(p.idx, ret); err != nil {
			reply.Err = err.Error()
		}
	case MsgGetField:
		ret, err := p.local.ServeGetField(m.Obj, m.Field)
		if err != nil {
			reply.Err = err.Error()
			break
		}
		if reply.Ret, err = p.local.EncodeOutgoing(p.idx, ret); err != nil {
			reply.Err = err.Error()
		}
	case MsgSetField:
		if len(m.Args) != 1 {
			reply.Err = "set-field expects one value"
			break
		}
		val, err := p.local.DecodeIncoming(p.idx, m.Args[0])
		if err != nil {
			reply.Err = err.Error()
			break
		}
		if err := p.local.ServeSetField(m.Obj, m.Field, val); err != nil {
			reply.Err = err.Error()
		}
	case MsgGetStatic:
		ret, err := p.local.ServeGetStatic(m.Class, m.Field)
		if err != nil {
			reply.Err = err.Error()
			break
		}
		if reply.Ret, err = p.local.EncodeOutgoing(p.idx, ret); err != nil {
			reply.Err = err.Error()
		}
	case MsgSetStatic:
		if len(m.Args) != 1 {
			reply.Err = "set-static expects one value"
			break
		}
		val, err := p.local.DecodeIncoming(p.idx, m.Args[0])
		if err != nil {
			reply.Err = err.Error()
			break
		}
		if err := p.local.ServeSetStatic(m.Class, m.Field, val); err != nil {
			reply.Err = err.Error()
		}
	case MsgMigrate:
		ids, err := p.local.AdoptMigration(p.idx, m.Batch)
		if err != nil {
			reply.Err = err.Error()
			break
		}
		reply.IDs = ids
		p.mu.Lock()
		p.stats.ObjectsMigrated += int64(len(m.Batch))
		p.mu.Unlock()
	default:
		reply.Err = fmt.Sprintf("unknown request kind %d", m.Kind)
	}

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.stats.BytesSent += reply.wireBytes()
	p.mu.Unlock()
	if err := p.transport.Send(reply); err != nil {
		// The connection is gone; recvLoop will observe and shut down.
		return
	}
}

// NewPair wires two VMs together in process: the client and surrogate
// halves of an ad-hoc platform without a network. Close both peers to tear
// the platform down.
func NewPair(client, surrogate *vm.VM, opts Options) (*Peer, *Peer) {
	ta, tb := NewChannelPair()
	pc := NewPeer(client, ta, opts)
	ps := NewPeer(surrogate, tb, opts)
	return pc, ps
}
