package remote

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"aide/internal/netmodel"
	"aide/internal/telemetry"
	"aide/internal/vm"
)

// pendingShards sizes the pending-reply table. Power of two, so the
// shard index is a mask of the request ID; IDs are sequential, so
// consecutive in-flight calls land on distinct shards.
const pendingShards = 16

// pendingShard is one lock-striped slice of the pending-reply table.
type pendingShard struct {
	mu sync.Mutex
	m  map[uint64]chan *Message
}

func (s *pendingShard) put(id uint64, ch chan *Message) {
	s.mu.Lock()
	if s.m == nil {
		s.m = make(map[uint64]chan *Message)
	}
	s.m[id] = ch
	s.mu.Unlock()
}

// take removes and returns the waiter for id, if any.
func (s *pendingShard) take(id uint64) (chan *Message, bool) {
	s.mu.Lock()
	ch, ok := s.m[id]
	if ok {
		delete(s.m, id)
	}
	s.mu.Unlock()
	return ch, ok
}

// sweep closes and removes every waiter (connection teardown).
func (s *pendingShard) sweep() {
	s.mu.Lock()
	for id, ch := range s.m {
		close(ch)
		delete(s.m, id)
	}
	s.mu.Unlock()
}

// State is the connection-health state machine: healthy until a send
// needs retrying or a call times out (degraded), healthy again on the
// next clean reply, disconnected — terminally — when the transport dies
// or enough consecutive timeouts accumulate (Options.DisconnectAfter).
type State int32

// Connection states.
const (
	StateHealthy State = iota
	StateDegraded
	StateDisconnected
)

// String returns the state's name.
func (s State) String() string {
	switch s {
	case StateHealthy:
		return "healthy"
	case StateDegraded:
		return "degraded"
	case StateDisconnected:
		return "disconnected"
	default:
		return fmt.Sprintf("State(%d)", int32(s))
	}
}

// dedupeWindow remembers the last N request IDs seen from the peer so a
// duplicated frame (retried send that did arrive, duplication fault) is
// executed at most once. Entries evict FIFO.
type dedupeWindow struct {
	mu   sync.Mutex
	seen map[uint64]struct{}
	ring []uint64
	next int
}

func newDedupeWindow(n int) *dedupeWindow {
	return &dedupeWindow{seen: make(map[uint64]struct{}, n), ring: make([]uint64, n)}
}

// firstTime records id and reports whether this is its first appearance
// within the window.
func (d *dedupeWindow) firstTime(id uint64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.seen[id]; dup {
		return false
	}
	if old := d.ring[d.next]; old != 0 {
		delete(d.seen, old)
	}
	d.ring[d.next] = id
	d.next = (d.next + 1) % len(d.ring)
	d.seen[id] = struct{}{}
	return true
}

// Peer is one VM's half of the distributed platform connection. It
// implements vm.Peer for outgoing operations and services the other VM's
// requests with a pool of worker threads (paper §3.2: "Either JVM that
// receives a request uses a pool of threads to perform RPCs on behalf of
// the other JVM").
//
// Concurrency: the call fast path is lock-free up to the pending-table
// shard — an atomic ID allocation, one sharded map insert, atomic
// counters — so concurrent calls from VM threads and the worker pool do
// not serialize on a single peer lock.
type Peer struct {
	local     *vm.VM
	idx       int // this peer's index in the local VM's peer table
	transport Transport

	// link, when set, charges simulated network time to every crossing
	// (the paper's emulator WaveLAN model); nil charges nothing, leaving
	// wall-clock behaviour to the real transport.
	link *netmodel.Link

	nextID atomic.Uint64
	shards [pendingShards]pendingShard

	// closed flips exactly once; closeE (guarded by closeMu) records why.
	closed  atomic.Bool
	closeMu sync.Mutex
	closeE  error

	requests chan *Message
	wg       sync.WaitGroup

	// now is the wall-clock source for RTT measurement and release-batch
	// aging, injectable so tests can drive both with a fake clock.
	now func() time.Time

	// Release coalescing: decrefs buffer in relBuf and flush as one
	// MsgReleaseBatch when the buffer reaches relBatch entries, when a
	// Release arrives relInterval after the buffer's first entry, before
	// any blocking call (ordering relative to re-export), and on Close.
	relMu       sync.Mutex
	relBuf      []vm.ObjectID
	relFirst    time.Time
	relBatch    int
	relInterval time.Duration

	// orphanE records (once per peer) the first reply that arrived with
	// no pending waiter; OrphanReplies counts them all. The once guard is
	// peer-wide — orphans landing on different pending-table shards still
	// produce a single record and a single log line.
	orphanOnce sync.Once
	orphanE    atomic.Value // error

	// Robustness knobs (fixed at construction, read lock-free).
	callTimeout     time.Duration
	retryMax        int
	retryBase       time.Duration
	disconnectAfter int32
	logf            func(format string, args ...any)
	onDown          func(p *Peer, cause error)
	gate            func(kind MsgKind) error
	sessionInfo     func() (sessions, freeBytes, capacityBytes int64)

	// state is the health state machine; consecTimeouts feeds the
	// degraded→disconnected escalation; jitterSeq drives deterministic
	// backoff jitter; stop wakes the health prober on teardown.
	state          atomic.Int32
	consecTimeouts atomic.Int32
	jitterSeq      atomic.Uint64
	stop           chan struct{}

	// dedupe drops duplicate incoming requests (dup faults, send retries
	// that did arrive) so server-side execution stays at-most-once and
	// release decrefs apply exactly once.
	dedupe *dedupeWindow

	// lazyMigration switches offload to predictor-driven partial state
	// transfer (vm.ExtractMigrationLazy); fixed at construction.
	lazyMigration bool

	// Snapshot transfer state. snapHandler consumes a fully assembled
	// incoming image (push modes: restore, handoff, drain); snapSource
	// captures this side's image for pull mode, cached in snapCache until
	// the puller acks. snapBuf/snapSeq assemble the in-order chunk stream
	// of one incoming push — one transfer at a time per peer, which the
	// protocol guarantees because a pusher awaits each chunk's reply
	// before sending the next. chunkSize is fixed at construction.
	snapMu      sync.Mutex
	snapHandler func(method, dest string, img []byte) error
	snapSource  func() ([]byte, error)
	snapBuf     []byte
	snapSeq     int64
	snapCache   []byte
	chunkSize   int

	// serveN counts in-flight serve() dispatches; serveCond (over
	// serveMu) wakes WaitServeIdle so a draining surrogate can quiesce a
	// session before snapshotting it.
	serveMu   sync.Mutex
	serveN    int
	serveCond *sync.Cond

	// m holds the wire accounting as telemetry instruments (atomic on
	// the fast path, like the counters struct it replaced); tracer
	// records offload-event spans when enabled. mnow is the metrics
	// clock — always the wall clock, deliberately separate from the
	// injectable now so latency measurement never consumes fake-clock
	// readings, and only consulted when the latency histogram exists
	// or the tracer is on.
	m      *peerMetrics
	tracer *telemetry.Tracer
	mnow   func() time.Time
}

var _ vm.Peer = (*Peer)(nil)

// A Peer also implements the optional pipelining and lazy-state
// extensions; the VM type-asserts for them, so test fakes stay minimal.
var (
	_ vm.PipelinePeer = (*Peer)(nil)
	_ vm.FieldFetcher = (*Peer)(nil)
)

// Stats counts wire activity.
type Stats struct {
	RequestsSent     int64
	RequestsServed   int64
	BytesSent        int64
	BytesReceived    int64
	ObjectsMigrated  int64
	MigrationBytes   int64
	ReleasesSent     int64
	ReleasesReceived int64

	// ReleaseBatchesSent counts MsgReleaseBatch wire messages; the
	// coalescing win is ReleasesSent / ReleaseBatchesSent.
	ReleaseBatchesSent int64

	// OrphanReplies counts replies that arrived with no pending waiter
	// (late reply after a failed send, or a peer protocol bug).
	OrphanReplies int64

	// SendRetries counts re-sends after transient transport errors;
	// CallTimeouts counts calls abandoned at their deadline.
	SendRetries  int64
	CallTimeouts int64

	// BatchSendRetries and BatchCallTimeouts are the subsets of
	// SendRetries/CallTimeouts attributable to batched frames
	// (MsgInvokeBatch, MsgReleaseBatch), so single-call and multi-op
	// frame health read separately.
	BatchSendRetries  int64
	BatchCallTimeouts int64

	// PipelineFrames counts MsgInvokeBatch frames sent; PipelineCalls the
	// invocations they carried (PipelineCalls/PipelineFrames is the mean
	// pipeline depth). FieldFetches counts lazy-migration field pulls and
	// LazyBytesSaved the migration wire bytes lazy extraction withheld.
	PipelineFrames int64
	PipelineCalls  int64
	FieldFetches   int64
	LazyBytesSaved int64

	// DuplicatesDropped counts incoming requests suppressed by the
	// dedupe window; ReleasesDropped counts decrefs lost when a release
	// batch exhausted its retry budget (export pins leak, never corrupt).
	DuplicatesDropped int64
	ReleasesDropped   int64
}

// Options configures a Peer.
type Options struct {
	// Workers sizes the RPC service pool. Zero defaults to 4.
	Workers int

	// Link enables simulated network costing.
	Link *netmodel.Link

	// Now overrides the peer's wall-clock source (RTT probes, release
	// batch aging). Nil defaults to time.Now; tests inject a fake clock.
	Now func() time.Time

	// ReleaseBatchSize caps the release buffer; reaching it flushes a
	// MsgReleaseBatch. Zero defaults to 32; 1 disables coalescing.
	ReleaseBatchSize int

	// ReleaseFlushInterval bounds how long a buffered release may wait
	// for the batch to fill before the next Release flushes it. Zero
	// defaults to 1ms.
	ReleaseFlushInterval time.Duration

	// CallTimeout bounds how long a call waits for its reply. Zero
	// disables the deadline (a half-closed transport then hangs the
	// call, the pre-fault-tolerance behavior). Expired calls return
	// ErrCallTimeout and mark the connection degraded.
	CallTimeout time.Duration

	// RetryMax bounds re-send attempts after a transient transport
	// error, and reply-retries for idempotent requests (ping, info).
	// Zero defaults to 3; negative disables retries.
	RetryMax int

	// RetryBase is the first backoff step; attempt n waits in
	// [base<<n/2, base<<n] with deterministic jitter. Zero defaults
	// to 2ms.
	RetryBase time.Duration

	// DisconnectAfter escalates the peer to disconnected after this many
	// consecutive call timeouts. Zero defaults to 3; negative disables
	// the escalation.
	DisconnectAfter int

	// ProbeInterval starts a background health prober pinging the peer
	// at this period. Zero disables it. The prober relies on CallTimeout
	// to bound each probe; its failures feed the same DisconnectAfter
	// escalation as ordinary calls.
	ProbeInterval time.Duration

	// DedupeWindow sizes the incoming-request dedupe ring (duplicate
	// suppression across send retries and duplication faults). Zero
	// defaults to 1024; negative disables deduplication.
	DedupeWindow int

	// Logf, when set, receives the peer's rare diagnostic lines (orphan
	// replies, disconnect escalations). Nil discards them.
	Logf func(format string, args ...any)

	// OnDown, when set, is called exactly once if the connection is lost
	// involuntarily (transport failure or timeout escalation — never a
	// plain Close). It runs synchronously on the goroutine that observed
	// the failure, after every pending call has been failed; it must not
	// call p.Close directly (Close waits for that same goroutine —
	// spawn it).
	OnDown func(p *Peer, cause error)

	// Telemetry, when set, registers this peer's wire counters plus a
	// call-latency and release-batch-size histogram in the registry
	// (each peer a child; exposition sums them). Nil keeps the counters
	// standalone — Stats() works either way — and skips the histograms,
	// leaving the call path free of wall-clock reads.
	Telemetry *telemetry.Registry

	// Tracer, when set and enabled, receives structured offload-event
	// spans (RPC calls, migrations, disconnects, orphan replies).
	Tracer *telemetry.Tracer

	// LazyMigration switches Offload to predictor-driven partial state
	// transfer: fields the local VM's FieldPredictor calls cold stay
	// behind as residuals and cross on first access (MsgFieldFetch).
	// Without a predictor installed the option is inert.
	LazyMigration bool

	// Gate, when set, screens every incoming request before dispatch
	// (admission control, load shedding). A non-nil return fails the
	// request with the error's text and typed code (CodeOf) instead of
	// serving it; one-way kinds (release, release-batch) are dropped. The
	// gate runs on worker goroutines and must be safe for concurrent use.
	Gate func(kind MsgKind) error

	// SessionInfo, when set, overrides the occupancy payload of info and
	// attach replies with surrogate-wide numbers — admitted session
	// count, free and capacity bytes across every tenant — instead of
	// this peer's single VM heap. Runs on worker goroutines.
	SessionInfo func() (sessions, freeBytes, capacityBytes int64)

	// SnapshotChunkSize caps the Blob bytes per MsgSnapshot frame when
	// pushing or serving a snapshot image. Zero defaults to 1 MiB; tests
	// shrink it to exercise multi-chunk transfers with small images.
	SnapshotChunkSize int

	// Takeover, when set, builds the peer to inherit an existing peer
	// slot instead of attaching a fresh one: the peer adopts *Takeover as
	// its index for wire encode/decode but is NOT bound into the local
	// VM's peer table. The live-handoff path uses this to construct the
	// replacement connection to the destination surrogate, restore the
	// session there, and only then vm.ReplacePeer the slot — preserving
	// the stub and import-table namespace while keeping the VM off the
	// half-initialized connection.
	Takeover *int
}

// NewPeer attaches a VM to a transport and starts the receive loop and
// worker pool. The caller must Close the peer to stop them.
func NewPeer(local *vm.VM, t Transport, opts Options) *Peer {
	workers := opts.Workers
	if workers <= 0 {
		workers = 4
	}
	p := &Peer{
		local:           local,
		transport:       t,
		link:            opts.Link,
		requests:        make(chan *Message, workers),
		now:             opts.Now,
		relBatch:        opts.ReleaseBatchSize,
		relInterval:     opts.ReleaseFlushInterval,
		callTimeout:     opts.CallTimeout,
		retryMax:        opts.RetryMax,
		retryBase:       opts.RetryBase,
		disconnectAfter: int32(opts.DisconnectAfter),
		logf:            opts.Logf,
		onDown:          opts.OnDown,
		gate:            opts.Gate,
		sessionInfo:     opts.SessionInfo,
		lazyMigration:   opts.LazyMigration,
		chunkSize:       opts.SnapshotChunkSize,
		stop:            make(chan struct{}),
		m:               newPeerMetrics(opts.Telemetry),
		tracer:          opts.Tracer,
		mnow:            time.Now,
	}
	p.serveCond = sync.NewCond(&p.serveMu)
	if p.now == nil {
		p.now = time.Now
	}
	if p.chunkSize <= 0 {
		p.chunkSize = snapshotChunk
	}
	if p.relBatch <= 0 {
		p.relBatch = 32
	}
	if p.relInterval <= 0 {
		p.relInterval = time.Millisecond
	}
	if p.retryMax == 0 {
		p.retryMax = 3
	} else if p.retryMax < 0 {
		p.retryMax = 0
	}
	if p.retryBase <= 0 {
		p.retryBase = 2 * time.Millisecond
	}
	if p.disconnectAfter == 0 {
		p.disconnectAfter = 3
	} else if p.disconnectAfter < 0 {
		p.disconnectAfter = 0
	}
	window := opts.DedupeWindow
	if window == 0 {
		window = 1024
	}
	if window > 0 {
		p.dedupe = newDedupeWindow(window)
	}
	if opts.Takeover != nil {
		p.idx = *opts.Takeover
	} else {
		p.idx = local.AttachPeer(p)
	}
	workersPlus := 1 + workers
	if opts.ProbeInterval > 0 {
		workersPlus++
	}
	p.wg.Add(workersPlus)
	go p.recvLoop()
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	if opts.ProbeInterval > 0 {
		go p.prober(opts.ProbeInterval)
	}
	return p
}

// shardFor returns the pending-table shard owning a request ID.
func (p *Peer) shardFor(id uint64) *pendingShard {
	return &p.shards[id&(pendingShards-1)]
}

// fail marks the peer closed with the given cause (first cause wins) and
// wakes every pending caller. It reports whether this call won the race.
// An involuntary cause (one wrapping ErrDisconnected) flips the state
// machine to disconnected and fires the OnDown hook exactly once.
func (p *Peer) fail(cause error) bool {
	p.closeMu.Lock()
	if p.closed.Load() {
		p.closeMu.Unlock()
		return false
	}
	p.closeE = cause
	p.closed.Store(true)
	p.closeMu.Unlock()
	p.state.Store(int32(StateDisconnected))
	close(p.stop)
	p.serveCond.Broadcast() // wake WaitServeIdle waiters on teardown
	for i := range p.shards {
		p.shards[i].sweep()
	}
	if errors.Is(cause, ErrDisconnected) {
		p.m.disconnected.Inc()
		if p.tracer.Enabled() {
			p.tracer.Emit(telemetry.Span{Kind: telemetry.SpanDisconnect, Peer: p.idx, Note: cause.Error(), Err: true})
		}
		p.logfSafe("remote: peer disconnected: %v", cause)
		if p.onDown != nil {
			p.onDown(p, cause)
		}
	}
	return true
}

// logfSafe forwards to the configured logger, if any.
func (p *Peer) logfSafe(format string, args ...any) {
	if p.logf != nil {
		p.logf(format, args...)
	}
}

// VMIndex returns this peer's slot in the local VM's peer table — the
// index DetachPeer and ReclaimStubs address it by.
func (p *Peer) VMIndex() int { return p.idx }

// PendingCalls reports how many issued calls are still awaiting a
// reply. A retiring connection (live handoff) polls this to zero before
// closing, so replies already on the wire are delivered rather than
// orphaned by the teardown.
func (p *Peer) PendingCalls() int {
	n := 0
	for i := range p.shards {
		s := &p.shards[i]
		s.mu.Lock()
		n += len(s.m)
		s.mu.Unlock()
	}
	return n
}

// State returns the connection-health state.
func (p *Peer) State() State {
	if p.closed.Load() {
		return StateDisconnected
	}
	return State(p.state.Load())
}

// markDegraded downgrades a healthy connection (send retry, timeout).
func (p *Peer) markDegraded() {
	if p.state.CompareAndSwap(int32(StateHealthy), int32(StateDegraded)) {
		p.m.degraded.Inc()
	}
}

// noteReplyOK records a clean round trip: the timeout streak resets and
// a degraded connection heals.
func (p *Peer) noteReplyOK() {
	p.consecTimeouts.Store(0)
	if p.state.CompareAndSwap(int32(StateDegraded), int32(StateHealthy)) {
		p.m.healed.Inc()
	}
}

// failErr returns the recorded close cause.
func (p *Peer) failErr() error {
	p.closeMu.Lock()
	defer p.closeMu.Unlock()
	if p.closeE != nil {
		return p.closeE
	}
	return ErrClosed
}

// Close tears down the connection half: in-flight calls fail with
// ErrClosed. Ad-hoc platform teardown (paper §2) is Close on both sides.
// Buffered releases flush first, so the peer drops its export pins
// before the transport dies.
func (p *Peer) Close() error {
	p.flushReleases()
	first := p.fail(ErrClosed)
	err := p.transport.Close()
	p.wg.Wait()
	if !first {
		// Already torn down (earlier Close, or a transport failure);
		// waiting above still guarantees the workers have drained.
		return nil
	}
	return err
}

// Stats returns a snapshot of wire counters. It is a shim over this
// peer's telemetry instruments: the same atomics feed the process-wide
// registry (when one is wired) and this per-peer read-back.
func (p *Peer) Stats() Stats {
	return Stats{
		RequestsSent:       p.m.requestsSent.Value(),
		RequestsServed:     p.m.requestsServed.Value(),
		BytesSent:          p.m.bytesSent.Value(),
		BytesReceived:      p.m.bytesReceived.Value(),
		ObjectsMigrated:    p.m.objectsMigrated.Value(),
		MigrationBytes:     p.m.migrationBytes.Value(),
		ReleasesSent:       p.m.releasesSent.Value(),
		ReleasesReceived:   p.m.releasesReceived.Value(),
		ReleaseBatchesSent: p.m.releaseBatchesSent.Value(),
		OrphanReplies:      p.m.orphanReplies.Value(),
		SendRetries:        p.m.sendRetries.Value(),
		CallTimeouts:       p.m.callTimeouts.Value(),
		BatchSendRetries:   p.m.batchSendRetries.Value(),
		BatchCallTimeouts:  p.m.batchCallTimeouts.Value(),
		PipelineFrames:     p.m.pipelineFrames.Value(),
		PipelineCalls:      p.m.pipelineCalls.Value(),
		FieldFetches:       p.m.fieldFetches.Value(),
		LazyBytesSaved:     p.m.lazyBytesSaved.Value(),
		DuplicatesDropped:  p.m.duplicatesDropped.Value(),
		ReleasesDropped:    p.m.releasesDropped.Value(),
	}
}

// Warn returns the first anomaly the receive loop observed (currently:
// a reply with no pending waiter), or nil. The condition is recorded
// once; OrphanReplies in Stats counts every occurrence.
func (p *Peer) Warn() error {
	if e, ok := p.orphanE.Load().(error); ok {
		return e
	}
	return nil
}

func (p *Peer) recvLoop() {
	defer p.wg.Done()
	defer close(p.requests)
	for {
		m, err := p.transport.Recv()
		if err != nil {
			// A Recv error with the peer not yet closed is an involuntary
			// loss: wrap it so failErr callers (and the VM's failover
			// path) can recognize the disconnect. Our own Close fails the
			// peer with plain ErrClosed before closing the transport, so
			// graceful teardown never takes this branch first.
			p.fail(fmt.Errorf("%w: %v", ErrDisconnected, err))
			return
		}
		p.m.bytesReceived.Add(m.wireBytes())
		if m.Reply {
			if ch, ok := p.shardFor(m.ID).take(m.ID); ok {
				ch <- m
			} else {
				// No waiter: a late reply after a failed send, or a
				// peer protocol bug. Count every one; record and log the
				// first only — the guard is per peer, not per shard, so
				// orphans spread across shards still log once.
				p.m.orphanReplies.Inc()
				if p.tracer.Enabled() {
					p.tracer.Emit(telemetry.Span{Kind: telemetry.SpanOrphan, Peer: p.idx, Note: m.Kind.String(), N: int64(m.ID)})
				}
				p.orphanOnce.Do(func() {
					e := fmt.Errorf("remote: orphan %s reply id=%d (no pending waiter)", m.Kind, m.ID)
					p.orphanE.Store(e)
					p.logfSafe("%v (suppressing further orphan-reply logs for this peer)", e)
				})
			}
			continue
		}
		// At-most-once execution: a request ID seen before (duplication
		// fault, or a send retry whose first copy did arrive) is dropped
		// before it reaches the worker pool.
		if p.dedupe != nil && m.ID != 0 && !p.dedupe.firstTime(m.ID) {
			p.m.duplicatesDropped.Inc()
			continue
		}
		// Forward even when the peer is closing: Close waits for the
		// workers, so requests already on the wire (Close-time release
		// flushes in particular) drain instead of silently dropping. The
		// loop exits when Recv reports the transport closed and empty.
		p.requests <- m
	}
}

func (p *Peer) worker() {
	defer p.wg.Done()
	for m := range p.requests {
		p.serve(m)
	}
}

// call sends a request and blocks for the matching reply, under the
// peer's configured deadline.
func (p *Peer) call(m *Message) (*Message, error) {
	return p.Call(p.lifeCtx(), m)
}

// lifeCtx returns a context bound to the peer's lifetime: done when the
// peer fails or closes, with Err reporting the peer's failure error
// (ErrClosed, or the wrapped ErrDisconnected cause) so failover paths
// that errors.Is on those sentinels keep working. The peer deliberately
// does not store a context.Context — contexts are call-scoped, and a
// stored one would hide the cancel's lifetime (ctxcheck flags that
// shape); instead the context is derived on demand from the stop
// channel the peer already owns.
func (p *Peer) lifeCtx() context.Context { return peerCtx{p} }

// LifeContext exposes the peer-lifetime context to platform layers whose
// work is scoped to this connection but runs outside any caller's call
// chain — a handoff handler re-homing a session, a speculation race. It
// is done exactly when the peer fails or closes.
func (p *Peer) LifeContext() context.Context { return p.lifeCtx() }

// peerCtx adapts the peer's stop channel to context.Context for the
// ctx-less compatibility wrappers and the peer's own background loops.
type peerCtx struct{ p *Peer }

func (c peerCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c peerCtx) Done() <-chan struct{}       { return c.p.stop }
func (c peerCtx) Value(key any) any           { return nil }

func (c peerCtx) Err() error {
	if c.p.closed.Load() {
		return c.p.failErr()
	}
	return nil
}

// Call sends a request and blocks for the matching reply. Buffered
// releases flush first so a release never reorders after a call that
// could re-export the same object. The wait honors ctx (cancellation and
// deadline) plus the peer's configured CallTimeout; a transient send
// failure is retried with backoff — safe for every request kind, since a
// failed send never reached the peer. A call abandoned at its deadline
// marks the connection degraded; Options.DisconnectAfter consecutive
// timeouts escalate to a full disconnect.
//
// With telemetry wired the round trip lands in the call-latency
// histogram and, when the tracer is on, an rpc span (parent-linked via
// telemetry.WithSpan on ctx). Without it, this wrapper adds one nil
// check and no clock reads.
func (p *Peer) Call(ctx context.Context, m *Message) (*Message, error) {
	lat := p.m.callLatency
	traced := p.tracer.Enabled()
	if lat == nil && !traced {
		return p.doCall(ctx, m)
	}
	start := p.mnow()
	reply, err := p.doCall(ctx, m)
	d := p.mnow().Sub(start)
	lat.Observe(d)
	if traced {
		p.tracer.Emit(telemetry.Span{
			Parent: telemetry.SpanFrom(ctx),
			Kind:   telemetry.SpanRPC,
			Note:   m.Kind.String(),
			Peer:   p.idx,
			Bytes:  m.wireBytes(),
			Err:    err != nil,
			Start:  start,
			Dur:    d,
		})
	}
	return reply, err
}

// doCall is Call without the instrumentation wrapper.
func (p *Peer) doCall(ctx context.Context, m *Message) (*Message, error) {
	p.flushReleases()
	if p.closed.Load() {
		return nil, p.failErr()
	}
	id := p.nextID.Add(1)
	m.ID = id
	ch := make(chan *Message, 1)
	sh := p.shardFor(id)
	sh.put(id, ch)
	// Re-check after publishing the waiter: a concurrent fail() that
	// swept before our insert would otherwise strand this call forever.
	if p.closed.Load() {
		sh.take(id)
		return nil, p.failErr()
	}
	p.m.requestsSent.Inc()
	p.m.bytesSent.Add(m.wireBytes())

	if err := p.sendRetry(ctx, m); err != nil {
		sh.take(id)
		return nil, err
	}

	var timeoutC <-chan time.Time
	if p.callTimeout > 0 {
		timer := time.NewTimer(p.callTimeout)
		defer timer.Stop()
		timeoutC = timer.C
	}
	select {
	case reply, ok := <-ch:
		return p.finishCall(m, reply, ok)
	case <-timeoutC:
		if reply, ok, raced := p.raceReply(id, sh, ch); raced {
			return p.finishCall(m, reply, ok)
		}
		p.m.callTimeouts.Inc()
		if isBatchFrame(m.Kind) {
			p.m.batchCallTimeouts.Inc()
		}
		p.markDegraded()
		n := p.consecTimeouts.Add(1)
		if p.disconnectAfter > 0 && n >= p.disconnectAfter {
			cause := fmt.Errorf("%w: %d consecutive call timeouts", ErrDisconnected, n)
			p.fail(cause)
			return nil, fmt.Errorf("remote: %s call id=%d: %w after %v: %w", m.Kind, id, ErrCallTimeout, p.callTimeout, cause)
		}
		return nil, fmt.Errorf("remote: %s call id=%d: %w after %v", m.Kind, id, ErrCallTimeout, p.callTimeout)
	case <-ctx.Done():
		if reply, ok, raced := p.raceReply(id, sh, ch); raced {
			return p.finishCall(m, reply, ok)
		}
		return nil, fmt.Errorf("remote: %s call id=%d: %w", m.Kind, id, ctx.Err())
	}
}

// raceReply resolves the race between an expiring deadline and an
// arriving reply: if the receive loop already claimed the waiter, the
// reply is imminent (or buffered) and wins over the timeout.
func (p *Peer) raceReply(id uint64, sh *pendingShard, ch chan *Message) (*Message, bool, bool) {
	if _, ok := sh.take(id); ok {
		// We won: no reply will ever be delivered to ch.
		return nil, false, false
	}
	// The receive loop took the waiter first; its buffered send cannot
	// block, so the reply is either here or arrives momentarily.
	reply, ok := <-ch
	return reply, ok, true
}

// finishCall turns a delivered reply (or a swept waiter) into the call's
// result.
func (p *Peer) finishCall(m *Message, reply *Message, ok bool) (*Message, error) {
	if !ok {
		return nil, p.failErr()
	}
	p.noteReplyOK()
	// A failed MsgInvokeBatch reply is not an error at this layer: it
	// carries the successful-prefix results and the failing call's index,
	// which InvokePipeline turns into a per-call outcome.
	if reply.Err != "" && m.Kind != MsgInvokeBatch {
		return nil, &RemoteError{Kind: m.Kind, Msg: reply.Err, Code: ErrorCode(reply.ErrCode)}
	}
	return reply, nil
}

// isBatchFrame reports whether a message kind carries many operations in
// one frame; Stats tracks their retry/timeout health separately from
// single-call frames.
func isBatchFrame(k MsgKind) bool {
	return k == MsgInvokeBatch || k == MsgReleaseBatch
}

// sendRetry sends m, retrying transient transport errors with
// exponential backoff and deterministic jitter. A send failure means the
// message never reached the wire, so a retry of any kind is safe —
// exactly-once is only at risk after a successful send, and the
// receiver's dedupe window covers even that (an "errored" send that was
// in fact delivered). context.Canceled propagates immediately, never
// retried.
func (p *Peer) sendRetry(ctx context.Context, m *Message) error {
	var err error
	for attempt := 0; ; attempt++ {
		if p.closed.Load() {
			return p.failErr()
		}
		if err = p.transport.Send(m); err == nil {
			return nil
		}
		if attempt >= p.retryMax {
			return err
		}
		if cerr := ctx.Err(); cerr != nil {
			// context.Canceled (and an expired deadline) aborts the
			// retry loop unretried: a canceled caller must never be held
			// hostage by backoff sleeps.
			return cerr
		}
		p.markDegraded()
		p.m.sendRetries.Inc()
		if isBatchFrame(m.Kind) {
			p.m.batchSendRetries.Inc()
		}
		time.Sleep(p.backoff(attempt))
	}
}

// backoff returns the wait before retry attempt n: exponential from
// RetryBase with deterministic decorrelated jitter in [step/2, step].
// The jitter source is a splitmix64 hash of a per-peer sequence — no
// global randomness, so runs with a fixed schedule stay reproducible.
func (p *Peer) backoff(attempt int) time.Duration {
	if attempt > 10 {
		attempt = 10
	}
	step := p.retryBase << uint(attempt)
	x := p.jitterSeq.Add(1) * 0x9E3779B97F4A7C15
	x ^= x >> 31
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	half := uint64(step / 2)
	return time.Duration(half + x%(half+1))
}

// netCost returns the simulated link time for a request/reply exchange.
func (p *Peer) netCost(req, reply *Message) time.Duration {
	if p.link == nil {
		return 0
	}
	var replyBytes int64
	if reply != nil {
		replyBytes = reply.wireBytes()
	}
	return p.link.RPC(req.wireBytes(), replyBytes)
}

// InvokeRemote implements vm.Peer.
func (p *Peer) InvokeRemote(peerObj vm.ObjectID, method string, args []vm.Value) (vm.Value, time.Duration, error) {
	wargs, err := p.local.EncodeOutgoingAll(p.idx, args)
	if err != nil {
		return vm.Nil(), 0, err
	}
	req := &Message{Kind: MsgInvoke, Obj: peerObj, Method: method, Args: wargs}
	reply, err := p.call(req)
	if err != nil {
		return vm.Nil(), 0, err
	}
	ret, err := p.local.DecodeIncoming(p.idx, reply.Ret)
	if err != nil {
		return vm.Nil(), 0, err
	}
	return ret, time.Duration(reply.ElapsedNanos) + p.netCost(req, reply), nil
}

// InvokeNativeRemote implements vm.Peer: a native method is directed back
// to the client VM.
func (p *Peer) InvokeNativeRemote(class, method string, peerSelf vm.ObjectID, selfIsCallerLocal bool, args []vm.Value) (vm.Value, time.Duration, error) {
	if selfIsCallerLocal {
		// Instance natives only exist on pinned classes, whose objects
		// never migrate; a locally hosted receiver here means a policy
		// violated that invariant.
		return vm.Nil(), 0, fmt.Errorf("remote: native %s.%s invoked on migrated object %d", class, method, peerSelf)
	}
	wargs, err := p.local.EncodeOutgoingAll(p.idx, args)
	if err != nil {
		return vm.Nil(), 0, err
	}
	req := &Message{Kind: MsgNativeInvoke, Class: class, Method: method, Obj: peerSelf, Args: wargs}
	reply, err := p.call(req)
	if err != nil {
		return vm.Nil(), 0, err
	}
	ret, err := p.local.DecodeIncoming(p.idx, reply.Ret)
	if err != nil {
		return vm.Nil(), 0, err
	}
	return ret, time.Duration(reply.ElapsedNanos) + p.netCost(req, reply), nil
}

// InvokePipeline implements vm.PipelinePeer: it ships a whole chain of
// dependent calls as one MsgInvokeBatch frame. The reply's Rets hold the
// executed calls' results in order; a frame that failed part-way comes
// back as a PipelineOutcome naming the failing call (nil error), so the
// VM can fail exactly the dependent promises. A peer that predates the
// frame kind answers "unknown request kind", reported as
// vm.ErrPipelineUnsupported so the pipeline falls back to sequential
// calls.
func (p *Peer) InvokePipeline(ctx context.Context, calls []vm.PipelineCall) (vm.PipelineOutcome, error) {
	p.m.pipelineFrames.Inc()
	p.m.pipelineCalls.Add(int64(len(calls)))
	p.m.pipelineDepth.ObserveInt(int64(len(calls)))
	req := &Message{Kind: MsgInvokeBatch, Calls: calls}
	reply, err := p.Call(ctx, req)
	if err != nil {
		return vm.PipelineOutcome{}, err
	}
	out := vm.PipelineOutcome{
		Rets:     reply.Rets,
		ErrIndex: -1,
		Elapsed:  time.Duration(reply.ElapsedNanos) + p.netCost(req, reply),
	}
	if reply.Err != "" {
		if strings.Contains(reply.Err, "unknown request kind") {
			return vm.PipelineOutcome{}, fmt.Errorf("%w: %s", vm.ErrPipelineUnsupported, reply.Err)
		}
		if reply.ErrIndex <= 0 {
			// Not attributable to a single call: a frame-level failure
			// (decode error, protocol violation) surfaces as a plain
			// remote error.
			return vm.PipelineOutcome{}, &RemoteError{Kind: MsgInvokeBatch, Msg: reply.Err}
		}
		out.ErrIndex = int(reply.ErrIndex) - 1
		out.ErrMsg = reply.Err
	}
	return out, nil
}

// servePipeline executes a MsgInvokeBatch frame: strictly in call order,
// resolving promise receivers and promise arguments against earlier
// results. On a failure at call i it returns the successful prefix's
// encoded results with errIdx=i; errIdx -1 means either full success or
// (with err non-nil) a failure not attributable to one call.
func (p *Peer) servePipeline(calls []vm.PipelineCall) (rets []vm.WireValue, elapsed time.Duration, errIdx int, err error) {
	results := make([]vm.Value, 0, len(calls))
	// The frame executes inside one virtual-clock bracket: the accrued
	// service time is rewound here and charged to the requester via the
	// returned elapsed, exactly like a single served invocation's.
	mark := p.local.ClockMark()
	fail := func(i int, ferr error) ([]vm.WireValue, time.Duration, int, error) {
		elapsed = p.local.ClockRewind(mark)
		prefix, eerr := p.local.EncodeOutgoingAll(p.idx, results)
		if eerr != nil {
			return nil, elapsed, -1, eerr
		}
		return prefix, elapsed, i, ferr
	}
	// One decoded-argument arena and one service thread for the whole
	// frame: per-call slices are carved full-capacity out of the arena
	// (never overlapping, so a body retaining its args stays safe).
	total := 0
	for i := range calls {
		total += len(calls[i].Args)
	}
	arena := make([]vm.Value, total)
	off := 0
	th := p.local.NewThread()
	for i := range calls {
		c := &calls[i]
		target := c.Obj
		if c.Recv >= 0 {
			if int(c.Recv) >= i {
				return fail(i, fmt.Errorf("pipeline call %d: receiver promise %d not yet resolved", i, c.Recv))
			}
			rv := results[c.Recv]
			if rv.Kind != vm.KindRef || rv.Ref == vm.InvalidObject {
				return fail(i, fmt.Errorf("pipeline call %d: receiver promise %d resolved to %s, not an object reference", i, c.Recv, rv))
			}
			target = rv.Ref
		}
		args := arena[off : off+len(c.Args) : off+len(c.Args)]
		off += len(c.Args)
		if derr := p.local.DecodeIncomingSlice(p.idx, c.Args, args); derr != nil {
			return fail(i, derr)
		}
		for _, pa := range c.ArgPromises {
			if pa.Pos < 0 || int(pa.Pos) >= len(args) || pa.Call < 0 || int(pa.Call) >= i {
				return fail(i, fmt.Errorf("pipeline call %d: bad argument promise (pos %d, call %d)", i, pa.Pos, pa.Call))
			}
			args[pa.Pos] = results[pa.Call]
		}
		ret, serr := th.Invoke(target, c.Method, args...)
		if serr != nil {
			return fail(i, serr)
		}
		results = append(results, ret)
	}
	elapsed = p.local.ClockRewind(mark)
	rets, err = p.local.EncodeOutgoingAll(p.idx, results)
	if err != nil {
		return nil, elapsed, -1, err
	}
	return rets, elapsed, -1, nil
}

// FetchFieldsRemote implements vm.FieldFetcher: it pulls fields a lazy
// migration withheld from the origin VM (nil fields = all remaining).
func (p *Peer) FetchFieldsRemote(peerObj vm.ObjectID, fields []string) ([]string, []vm.Value, int64, error) {
	p.m.fieldFetches.Inc()
	req := &Message{Kind: MsgFieldFetch, Obj: peerObj, Classes: fields}
	reply, err := p.call(req)
	if err != nil {
		return nil, nil, 0, err
	}
	vals, err := p.local.DecodeIncomingAll(p.idx, reply.Args)
	if err != nil {
		return nil, nil, 0, err
	}
	p.local.AdvanceClock(p.netCost(req, reply))
	return reply.Classes, vals, reply.MovedBytes, nil
}

// GetFieldRemote implements vm.Peer.
func (p *Peer) GetFieldRemote(peerObj vm.ObjectID, field string) (vm.Value, error) {
	req := &Message{Kind: MsgGetField, Obj: peerObj, Field: field}
	reply, err := p.call(req)
	if err != nil {
		return vm.Nil(), err
	}
	p.local.AdvanceClock(p.netCost(req, reply))
	return p.local.DecodeIncoming(p.idx, reply.Ret)
}

// SetFieldRemote implements vm.Peer.
func (p *Peer) SetFieldRemote(peerObj vm.ObjectID, field string, v vm.Value) error {
	wv, err := p.local.EncodeOutgoing(p.idx, v)
	if err != nil {
		return err
	}
	req := &Message{Kind: MsgSetField, Obj: peerObj, Field: field, Args: []vm.WireValue{wv}}
	reply, err := p.call(req)
	if err != nil {
		return err
	}
	p.local.AdvanceClock(p.netCost(req, reply))
	return nil
}

// GetStaticRemote implements vm.Peer.
func (p *Peer) GetStaticRemote(class, field string) (vm.Value, error) {
	req := &Message{Kind: MsgGetStatic, Class: class, Field: field}
	reply, err := p.call(req)
	if err != nil {
		return vm.Nil(), err
	}
	p.local.AdvanceClock(p.netCost(req, reply))
	return p.local.DecodeIncoming(p.idx, reply.Ret)
}

// SetStaticRemote implements vm.Peer.
func (p *Peer) SetStaticRemote(class, field string, v vm.Value) error {
	wv, err := p.local.EncodeOutgoing(p.idx, v)
	if err != nil {
		return err
	}
	req := &Message{Kind: MsgSetStatic, Class: class, Field: field, Args: []vm.WireValue{wv}}
	reply, err := p.call(req)
	if err != nil {
		return err
	}
	p.local.AdvanceClock(p.netCost(req, reply))
	return nil
}

// Release implements vm.Peer: fire-and-forget distributed-GC decrement.
// Decrefs coalesce into a per-peer buffer and ship as one
// MsgReleaseBatch (paper §3.2's reference releases, batched so a stub
// collection storm costs O(storm/batch) wire messages, not O(storm)).
func (p *Peer) Release(peerObj vm.ObjectID) {
	if p.closed.Load() {
		return
	}
	p.m.releasesSent.Inc()
	t := p.now()
	p.relMu.Lock()
	if len(p.relBuf) == 0 {
		p.relFirst = t
	}
	p.relBuf = append(p.relBuf, peerObj)
	flush := len(p.relBuf) >= p.relBatch || t.Sub(p.relFirst) >= p.relInterval
	p.relMu.Unlock()
	if flush {
		p.flushReleases()
	}
}

// flushReleases ships the buffered release decrefs as one batch message.
// It deliberately does not read the clock: callers on the blocking-call
// path (call, Info) must not consume fake-clock readings.
func (p *Peer) flushReleases() {
	p.relMu.Lock()
	ids := p.relBuf
	p.relBuf = nil
	p.relMu.Unlock()
	if len(ids) == 0 {
		return
	}
	m := &Message{ID: p.nextID.Add(1), Kind: MsgReleaseBatch, IDs: ids}
	p.m.releaseBatchesSent.Inc()
	p.m.releaseBatch.ObserveInt(int64(len(ids)))
	p.m.bytesSent.Add(m.wireBytes())
	// Retried with the same message ID on transient failure, so the
	// receiver's dedupe window makes an "errored but delivered" send
	// harmless: every decref applies exactly once. A batch that exhausts
	// the retry budget is dropped — export pins leak, never corrupt.
	if err := p.sendRetry(p.lifeCtx(), m); err != nil {
		p.m.releasesDropped.Add(int64(len(ids)))
	}
}

// Offload migrates all live local objects of the named classes to the
// peer, converting the local copies to stubs. It returns the number of
// objects and payload bytes moved and charges the transfer to the
// simulated clock when a link model is attached. With the tracer on it
// emits a migration span whose ID parents the underlying RPC span.
func (p *Peer) Offload(classNames []string) (objects int, bytes int64, err error) {
	return p.OffloadContext(p.lifeCtx(), classNames)
}

// OffloadContext is Offload bounded by ctx: the migration call aborts
// when ctx is cancelled or its deadline expires.
func (p *Peer) OffloadContext(ctx context.Context, classNames []string) (objects int, bytes int64, err error) {
	if !p.tracer.Enabled() {
		return p.offload(ctx, classNames)
	}
	sid := p.tracer.NextID()
	start := p.mnow()
	objects, bytes, err = p.offload(telemetry.WithSpan(ctx, sid), classNames)
	p.tracer.Emit(telemetry.Span{
		ID: sid, Kind: telemetry.SpanMigration, Note: "offload", Peer: p.idx,
		N: int64(objects), Bytes: bytes, Err: err != nil, Start: start, Dur: p.mnow().Sub(start),
	})
	return objects, bytes, err
}

func (p *Peer) offload(ctx context.Context, classNames []string) (objects int, bytes int64, err error) {
	var batch []vm.MigratedObject
	var plan *vm.LazyPlan
	if p.lazyMigration {
		batch, plan, err = p.local.ExtractMigrationLazy(classNames)
	} else {
		batch, err = p.local.ExtractMigration(classNames)
	}
	if err != nil {
		return 0, 0, fmt.Errorf("remote: offload: %w", err)
	}
	if len(batch) == 0 {
		return 0, 0, nil
	}
	req := &Message{Kind: MsgMigrate, Batch: batch}
	reply, err := p.Call(ctx, req)
	if err != nil {
		return 0, 0, fmt.Errorf("remote: offload: %w", err)
	}
	if len(reply.IDs) != len(batch) {
		return 0, 0, fmt.Errorf("remote: offload: peer assigned %d ids for %d objects", len(reply.IDs), len(batch))
	}
	ids := make([]vm.ObjectID, len(batch))
	for i := range batch {
		ids[i] = batch[i].SenderID
	}
	if err := p.local.ConvertToStubsLazy(p.idx, ids, reply.IDs, plan); err != nil {
		return 0, 0, fmt.Errorf("remote: offload: %w", err)
	}
	moved := vm.MigrationWireBytes(batch)
	if plan != nil && plan.SavedBytes > 0 {
		// Withheld fields crossed as one-byte placeholders; the residual
		// bytes stay home until (unless) the receiver faults them in.
		moved -= plan.SavedBytes
		if moved < 0 {
			moved = 0
		}
		p.m.lazyBytesSaved.Add(plan.SavedBytes)
	}
	if p.link != nil {
		p.local.AdvanceClock(p.link.Transfer(moved, 1400))
	}
	p.m.objectsMigrated.Add(int64(len(batch)))
	p.m.migrationBytes.Add(moved)
	return len(batch), moved, nil
}

// Ping round-trips a health probe (MsgPing → MsgPong; latency probe; the
// ad-hoc platform uses it to rank candidate surrogates). Pings are
// idempotent, so a failed round trip is retried up to the peer's retry
// budget.
func (p *Peer) Ping() error {
	return p.Probe(p.lifeCtx())
}

// Probe sends one health-check ping under ctx with idempotent retries.
// Probe timeouts feed the same consecutive-timeout escalation as
// ordinary calls, so repeated probing of a silently dead transport
// eventually declares the peer disconnected.
func (p *Peer) Probe(ctx context.Context) error {
	_, err := p.retryIdempotent(ctx, func() *Message { return &Message{Kind: MsgPing} })
	return err
}

// retryIdempotent reissues an idempotent request (ping, info) until it
// succeeds or the retry budget runs out. Only safe for requests whose
// re-execution is harmless — the reply may have been lost after the peer
// executed an earlier copy. context.Canceled propagates unretried;
// remote application errors and a closed peer end the loop immediately.
func (p *Peer) retryIdempotent(ctx context.Context, mk func() *Message) (*Message, error) {
	var reply *Message
	var err error
	for attempt := 0; attempt <= p.retryMax; attempt++ {
		if attempt > 0 {
			if cerr := ctx.Err(); cerr != nil {
				// context.Canceled is never retried.
				return nil, cerr
			}
			time.Sleep(p.backoff(attempt - 1))
		}
		reply, err = p.Call(ctx, mk())
		if err == nil {
			return reply, nil
		}
		var rerr *RemoteError
		if errors.Is(err, context.Canceled) || errors.As(err, &rerr) || p.closed.Load() {
			return nil, err
		}
	}
	return nil, err
}

// prober is the background health probe: one ping every interval,
// bounded by the peer's CallTimeout. It keeps the state machine honest
// while the application is idle — a silently dead transport accumulates
// probe timeouts until DisconnectAfter escalates it.
func (p *Peer) prober(interval time.Duration) {
	defer p.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-p.stop:
			return
		case <-t.C:
			if p.closed.Load() {
				return
			}
			if _, err := p.Call(p.lifeCtx(), &Message{Kind: MsgPing}); err != nil {
				p.logfSafe("remote: health probe failed: %v", err)
			}
		}
	}
}

// PeerInfo describes the remote VM's resources (surrogate selection,
// paper §2: clients determine which surrogates are most appropriate based
// on latency of access and resource availability).
type PeerInfo struct {
	FreeBytes     int64
	CapacityBytes int64
	CPUSpeed      float64

	// Sessions is the serving surrogate's admitted session count, when it
	// reports one (info/attach against a session-aware surrogate); 0
	// otherwise.
	Sessions int64

	// RTT is the wall-clock round trip of the info probe.
	RTT time.Duration
}

// Info probes the peer's resources and measures the probe's round trip.
// Info requests are read-only, hence idempotent and retried like pings;
// the measured RTT includes any retry latency (a degraded link honestly
// ranks worse).
func (p *Peer) Info() (PeerInfo, error) {
	return p.InfoContext(p.lifeCtx())
}

// InfoContext is Info bounded by ctx: the resource probe (including its
// idempotent retries) aborts when ctx is cancelled or expires.
func (p *Peer) InfoContext(ctx context.Context) (PeerInfo, error) {
	start := p.now()
	reply, err := p.retryIdempotent(ctx, func() *Message { return &Message{Kind: MsgInfo} })
	if err != nil {
		return PeerInfo{}, err
	}
	return PeerInfo{
		FreeBytes:     reply.FreeBytes,
		CapacityBytes: reply.CapacityBytes,
		CPUSpeed:      reply.CPUSpeed,
		Sessions:      reply.Sessions,
		RTT:           p.now().Sub(start),
	}, nil
}

// Attach opens this peer's session with the serving side: the request
// runs the remote admission control and the reply reports occupancy
// (PeerInfo plus Sessions). A rejection comes back as a RemoteError
// whose code unwraps to ErrAdmissionRejected or ErrShed. Attaching is
// idempotent — the serving side's decision is sticky — so lost replies
// retry like pings. A peer that predates MsgAttach answers with an
// unknown-kind error, mapped to ErrAttachUnsupported; callers treat
// that as an open session with no admission control.
func (p *Peer) Attach(ctx context.Context) (PeerInfo, error) {
	start := p.now()
	reply, err := p.retryIdempotent(ctx, func() *Message { return &Message{Kind: MsgAttach} })
	if err != nil {
		var re *RemoteError
		if errors.As(err, &re) && re.Code == CodeNone && strings.Contains(re.Msg, "unknown request kind") {
			return PeerInfo{}, fmt.Errorf("%w: %s", ErrAttachUnsupported, re.Msg)
		}
		return PeerInfo{}, err
	}
	return PeerInfo{
		FreeBytes:     reply.FreeBytes,
		CapacityBytes: reply.CapacityBytes,
		CPUSpeed:      reply.CPUSpeed,
		Sessions:      reply.Sessions,
		RTT:           p.now().Sub(start),
	}, nil
}

// Recall asks the peer to migrate its live objects of the named classes
// back to this VM: the reverse of Offload, the paper's §8 "global
// placement" direction ("moving objects from the surrogate to the client
// device"). Stubs this VM already holds upgrade in place, so references
// stay valid.
func (p *Peer) Recall(classNames []string) (objects int, bytes int64, err error) {
	return p.RecallContext(p.lifeCtx(), classNames)
}

// RecallContext is Recall bounded by ctx: the migration call aborts
// when ctx is cancelled or its deadline expires.
func (p *Peer) RecallContext(ctx context.Context, classNames []string) (objects int, bytes int64, err error) {
	if !p.tracer.Enabled() {
		return p.recall(ctx, classNames)
	}
	sid := p.tracer.NextID()
	start := p.mnow()
	objects, bytes, err = p.recall(telemetry.WithSpan(ctx, sid), classNames)
	p.tracer.Emit(telemetry.Span{
		ID: sid, Kind: telemetry.SpanMigration, Note: "recall", Peer: p.idx,
		N: int64(objects), Bytes: bytes, Err: err != nil, Start: start, Dur: p.mnow().Sub(start),
	})
	return objects, bytes, err
}

func (p *Peer) recall(ctx context.Context, classNames []string) (objects int, bytes int64, err error) {
	reply, err := p.Call(ctx, &Message{Kind: MsgRecall, Classes: classNames})
	if err != nil {
		return 0, 0, fmt.Errorf("remote: recall: %w", err)
	}
	if p.link != nil && reply.MovedBytes > 0 {
		p.local.AdvanceClock(p.link.Transfer(reply.MovedBytes, 1400))
	}
	return int(reply.Objects), reply.MovedBytes, nil
}

// serve executes one incoming request and replies.
func (p *Peer) serve(m *Message) {
	p.m.requestsServed.Inc()
	p.serveMu.Lock()
	p.serveN++
	p.serveMu.Unlock()
	defer func() {
		p.serveMu.Lock()
		p.serveN--
		p.serveMu.Unlock()
		p.serveCond.Broadcast()
	}()

	reply := &Message{ID: m.ID, Reply: true, Kind: m.Kind}
	if p.gate != nil {
		if gerr := p.gate(m.Kind); gerr != nil {
			switch m.Kind {
			case MsgRelease, MsgReleaseBatch:
				// One-way: there is no reply to carry the rejection, and
				// dropping a decref would leak the export ledger — gates
				// should always admit these; a misconfigured gate drops
				// them silently rather than corrupting the pending table.
				return
			}
			reply.Err = gerr.Error()
			reply.ErrCode = uint8(CodeOf(gerr))
			if p.closed.Load() {
				return
			}
			p.m.bytesSent.Add(reply.wireBytes())
			if err := p.transport.Send(reply); err != nil {
				// The connection is gone; recvLoop will observe it.
				return
			}
			return
		}
	}
	switch m.Kind {
	case MsgRelease:
		p.m.releasesReceived.Inc()
		p.local.ReleaseExport(m.Obj)
		return // one-way
	case MsgReleaseBatch:
		p.m.releasesReceived.Add(int64(len(m.IDs)))
		for _, id := range m.IDs {
			p.local.ReleaseExport(id)
		}
		return // one-way
	case MsgPing:
		// A pong reply carries no payload; the distinct kind lets the
		// prober (and wire traces) tell probe answers apart.
		reply.Kind = MsgPong
	case MsgInfo, MsgAttach:
		// MsgAttach is MsgInfo plus admission: the gate above has already
		// admitted (or rejected) the session by the time dispatch runs, so
		// the reply only reports occupancy. With a SessionInfo hook the
		// payload covers the whole surrogate, not this one session's VM.
		h := p.local.Heap()
		reply.FreeBytes = h.Free
		reply.CapacityBytes = h.Capacity
		reply.CPUSpeed = p.local.CPUSpeed()
		if p.sessionInfo != nil {
			reply.Sessions, reply.FreeBytes, reply.CapacityBytes = p.sessionInfo()
		}
	case MsgRecall:
		// Push our objects of the named classes back to the requester:
		// exactly an Offload in the opposite direction. Offload blocks on
		// the requester adopting the batch; its recv loop services that
		// while it waits for this reply.
		n, bytes, err := p.Offload(m.Classes)
		if err != nil {
			reply.Err = err.Error()
			break
		}
		reply.Objects = int64(n)
		reply.MovedBytes = bytes
	case MsgInvoke:
		args, err := p.local.DecodeIncomingAll(p.idx, m.Args)
		if err != nil {
			reply.Err = err.Error()
			break
		}
		ret, elapsed, err := p.local.ServeInvoke(m.Obj, m.Method, args)
		if err != nil {
			reply.Err = err.Error()
			break
		}
		reply.ElapsedNanos = int64(elapsed)
		if reply.Ret, err = p.local.EncodeOutgoing(p.idx, ret); err != nil {
			reply.Err = err.Error()
		}
	case MsgNativeInvoke:
		args, err := p.local.DecodeIncomingAll(p.idx, m.Args)
		if err != nil {
			reply.Err = err.Error()
			break
		}
		ret, elapsed, err := p.local.ServeNative(m.Class, m.Method, m.Obj, args)
		if err != nil {
			reply.Err = err.Error()
			break
		}
		reply.ElapsedNanos = int64(elapsed)
		if reply.Ret, err = p.local.EncodeOutgoing(p.idx, ret); err != nil {
			reply.Err = err.Error()
		}
	case MsgGetField:
		ret, err := p.local.ServeGetField(m.Obj, m.Field)
		if err != nil {
			reply.Err = err.Error()
			break
		}
		if reply.Ret, err = p.local.EncodeOutgoing(p.idx, ret); err != nil {
			reply.Err = err.Error()
		}
	case MsgSetField:
		if len(m.Args) != 1 {
			reply.Err = "set-field expects one value"
			break
		}
		val, err := p.local.DecodeIncoming(p.idx, m.Args[0])
		if err != nil {
			reply.Err = err.Error()
			break
		}
		if err := p.local.ServeSetField(m.Obj, m.Field, val); err != nil {
			reply.Err = err.Error()
		}
	case MsgGetStatic:
		ret, err := p.local.ServeGetStatic(m.Class, m.Field)
		if err != nil {
			reply.Err = err.Error()
			break
		}
		if reply.Ret, err = p.local.EncodeOutgoing(p.idx, ret); err != nil {
			reply.Err = err.Error()
		}
	case MsgSetStatic:
		if len(m.Args) != 1 {
			reply.Err = "set-static expects one value"
			break
		}
		val, err := p.local.DecodeIncoming(p.idx, m.Args[0])
		if err != nil {
			reply.Err = err.Error()
			break
		}
		if err := p.local.ServeSetStatic(m.Class, m.Field, val); err != nil {
			reply.Err = err.Error()
		}
	case MsgInvokeBatch:
		rets, elapsed, errIdx, err := p.servePipeline(m.Calls)
		reply.ElapsedNanos = int64(elapsed)
		reply.Rets = rets
		if err != nil {
			reply.Err = err.Error()
			// 1-based on the wire; errIdx -1 (not attributable) maps to 0.
			reply.ErrIndex = int32(errIdx) + 1
		}
	case MsgFieldFetch:
		names, vals, moved, err := p.local.ServeFetchFields(m.Obj, m.Classes)
		if err != nil {
			reply.Err = err.Error()
			break
		}
		wvals, err := p.local.EncodeOutgoingAll(p.idx, vals)
		if err != nil {
			reply.Err = err.Error()
			break
		}
		reply.Classes = names
		reply.Args = wvals
		reply.MovedBytes = moved
	case MsgMigrate:
		ids, err := p.local.AdoptMigration(p.idx, m.Batch)
		if err != nil {
			reply.Err = err.Error()
			break
		}
		reply.IDs = ids
		p.m.objectsMigrated.Add(int64(len(m.Batch)))
		if p.tracer.Enabled() {
			p.tracer.Emit(telemetry.Span{Kind: telemetry.SpanMigration, Note: "adopt", Peer: p.idx, N: int64(len(m.Batch))})
		}
	case MsgSnapshot:
		p.serveSnapshot(m, reply)
	case MsgSnapshotAck:
		p.serveSnapshotAck()
	default:
		reply.Err = fmt.Sprintf("unknown request kind %d", m.Kind)
	}

	if p.closed.Load() {
		return
	}
	p.m.bytesSent.Add(reply.wireBytes())
	if err := p.transport.Send(reply); err != nil {
		// The connection is gone; recvLoop will observe and shut down.
		return
	}
}

// NewPair wires two VMs together in process: the client and surrogate
// halves of an ad-hoc platform without a network. Close both peers to tear
// the platform down.
func NewPair(client, surrogate *vm.VM, opts Options) (*Peer, *Peer) {
	ta, tb := NewChannelPair()
	pc := NewPeer(client, ta, opts)
	ps := NewPeer(surrogate, tb, opts)
	return pc, ps
}
