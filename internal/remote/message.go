// Package remote implements AIDE's remote invocation module (paper §3.2,
// §4): it converts accesses to remote objects into transparent RPCs
// between two VMs, manages external object references, migrates offloaded
// objects, and services the peer's requests with a pool of worker threads.
package remote

import (
	"errors"
	"fmt"

	"aide/internal/vm"
)

// MsgKind discriminates wire messages.
type MsgKind uint8

// Message kinds.
const (
	MsgInvoke MsgKind = iota + 1
	MsgNativeInvoke
	MsgGetField
	MsgSetField
	MsgGetStatic
	MsgSetStatic
	MsgMigrate
	MsgRelease
	MsgPing
	MsgRecall
	MsgInfo
	// MsgReleaseBatch coalesces many stub-death decrefs into one one-way
	// message; IDs carries the released object IDs, duplicates included
	// (one entry per decref).
	MsgReleaseBatch
	// MsgPong answers a MsgPing health probe. A distinct reply kind lets a
	// receiver tell a probe answer from an echoed request without
	// consulting the pending-call table.
	MsgPong
	// MsgInvokeBatch carries a pipelined multi-invoke frame: Calls execute
	// strictly in order on the serving VM; a call may name an earlier
	// call's result as its receiver or argument (promise pipelining), so a
	// chain of N dependent invocations costs one round trip.
	MsgInvokeBatch
	// MsgPromiseRef is the per-call receiver discriminator inside a
	// MsgInvokeBatch frame: it introduces the promise form (an earlier
	// call's index) where MsgInvoke introduces a concrete object ID. It
	// never appears as a top-level frame kind.
	MsgPromiseRef
	// MsgFieldFetch pulls fields a lazy migration withheld: Obj names the
	// object in the serving VM's namespace (the lazy migration's origin),
	// Classes the requested field names (empty = all remaining). The reply
	// carries the served names in Classes, values in Args, and their wire
	// size in MovedBytes.
	MsgFieldFetch
)

// String returns the kind's name.
func (k MsgKind) String() string {
	switch k {
	case MsgInvoke:
		return "invoke"
	case MsgNativeInvoke:
		return "native-invoke"
	case MsgGetField:
		return "get-field"
	case MsgSetField:
		return "set-field"
	case MsgGetStatic:
		return "get-static"
	case MsgSetStatic:
		return "set-static"
	case MsgMigrate:
		return "migrate"
	case MsgRelease:
		return "release"
	case MsgPing:
		return "ping"
	case MsgRecall:
		return "recall"
	case MsgInfo:
		return "info"
	case MsgReleaseBatch:
		return "release-batch"
	case MsgPong:
		return "pong"
	case MsgInvokeBatch:
		return "invoke-batch"
	case MsgPromiseRef:
		return "promise-ref"
	case MsgFieldFetch:
		return "field-fetch"
	default:
		return fmt.Sprintf("MsgKind(%d)", uint8(k))
	}
}

// Message is the single wire envelope. A fat struct keeps gob encoding
// simple and self-describing; unused fields cost nothing on the wire
// beyond their zero markers.
type Message struct {
	ID    uint64 // request correlation; replies echo it
	Reply bool
	Kind  MsgKind
	Err   string // non-empty on failed replies

	Obj    vm.ObjectID // target object, in the receiver's namespace
	Class  string
	Method string
	Field  string

	// SelfIsSenderLocal marks native invocations whose receiver object is
	// in the *sender's* namespace (diagnostic; see Peer.handleNative).
	SelfIsSenderLocal bool

	Args []vm.WireValue
	Ret  vm.WireValue

	// ElapsedNanos is the simulated execution time the serving VM spent,
	// charged to the requester (paper §4's serial execution accounting).
	ElapsedNanos int64

	// Batch and IDs carry object migration payloads and assigned IDs.
	Batch []vm.MigratedObject
	IDs   []vm.ObjectID

	// Classes names the classes a recall requests; Objects and MovedBytes
	// report what a recall moved.
	Classes    []string
	Objects    int64
	MovedBytes int64

	// FreeBytes, CapacityBytes, and CPUSpeed describe the serving VM in
	// info replies (surrogate selection, paper §2).
	FreeBytes     int64
	CapacityBytes int64
	CPUSpeed      float64

	// Calls carries a pipelined multi-invoke frame (MsgInvokeBatch); Rets
	// carries its reply's per-call results, in call order — on a failed
	// frame, the successful prefix only.
	Calls []vm.PipelineCall
	Rets  []vm.WireValue

	// ErrIndex, on a failed MsgInvokeBatch reply (Err non-empty), is
	// 1 + the index of the call that failed; 0 means the failure was not
	// attributable to a single call (the offset keeps the zero value off
	// the wire under tag-presence encoding).
	ErrIndex int32
}

// wireBytes returns the exact on-the-wire frame size of the message
// under the binary codec (length prefix included), so Stats and the
// netmodel.Link costing charge real transfer sizes. TestWireBytesExact
// pins this against the bytes the codec actually emits for every kind.
func (m *Message) wireBytes() int64 {
	return int64(frameSize(m))
}

// RemoteError is an error returned by the peer VM while servicing a
// request.
type RemoteError struct {
	Kind MsgKind
	Msg  string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("remote: peer %s failed: %s", e.Kind, e.Msg)
}

// ErrClosed is returned for operations on a closed peer connection.
var ErrClosed = errors.New("remote: connection closed")

// ErrCallTimeout is returned when a call's deadline (Options.CallTimeout)
// expires before the reply arrives. The peer is marked degraded; enough
// consecutive timeouts (Options.DisconnectAfter) escalate to a full
// disconnect.
var ErrCallTimeout = errors.New("remote: call timed out")

// ErrDisconnected marks an involuntary connection loss — a transport
// failure or a timeout storm, as opposed to a deliberate Close. It wraps
// both ErrClosed (existing callers matching on "connection closed" keep
// working) and vm.ErrPeerGone (the VM layer recognizes the condition and
// fails calls over to local execution).
var ErrDisconnected error = fmt.Errorf("%w: connection lost: %w", ErrClosed, vm.ErrPeerGone)
