// Package remote implements AIDE's remote invocation module (paper §3.2,
// §4): it converts accesses to remote objects into transparent RPCs
// between two VMs, manages external object references, migrates offloaded
// objects, and services the peer's requests with a pool of worker threads.
package remote

import (
	"errors"
	"fmt"

	"aide/internal/vm"
)

// MsgKind discriminates wire messages.
type MsgKind uint8

// Message kinds.
const (
	MsgInvoke MsgKind = iota + 1
	MsgNativeInvoke
	MsgGetField
	MsgSetField
	MsgGetStatic
	MsgSetStatic
	MsgMigrate
	MsgRelease
	MsgPing
	MsgRecall
	MsgInfo
)

// String returns the kind's name.
func (k MsgKind) String() string {
	switch k {
	case MsgInvoke:
		return "invoke"
	case MsgNativeInvoke:
		return "native-invoke"
	case MsgGetField:
		return "get-field"
	case MsgSetField:
		return "set-field"
	case MsgGetStatic:
		return "get-static"
	case MsgSetStatic:
		return "set-static"
	case MsgMigrate:
		return "migrate"
	case MsgRelease:
		return "release"
	case MsgPing:
		return "ping"
	case MsgRecall:
		return "recall"
	case MsgInfo:
		return "info"
	default:
		return fmt.Sprintf("MsgKind(%d)", uint8(k))
	}
}

// Message is the single wire envelope. A fat struct keeps gob encoding
// simple and self-describing; unused fields cost nothing on the wire
// beyond their zero markers.
type Message struct {
	ID    uint64 // request correlation; replies echo it
	Reply bool
	Kind  MsgKind
	Err   string // non-empty on failed replies

	Obj    vm.ObjectID // target object, in the receiver's namespace
	Class  string
	Method string
	Field  string

	// SelfIsSenderLocal marks native invocations whose receiver object is
	// in the *sender's* namespace (diagnostic; see Peer.handleNative).
	SelfIsSenderLocal bool

	Args []vm.WireValue
	Ret  vm.WireValue

	// ElapsedNanos is the simulated execution time the serving VM spent,
	// charged to the requester (paper §4's serial execution accounting).
	ElapsedNanos int64

	// Batch and IDs carry object migration payloads and assigned IDs.
	Batch []vm.MigratedObject
	IDs   []vm.ObjectID

	// Classes names the classes a recall requests; Objects and MovedBytes
	// report what a recall moved.
	Classes    []string
	Objects    int64
	MovedBytes int64

	// FreeBytes, CapacityBytes, and CPUSpeed describe the serving VM in
	// info replies (surrogate selection, paper §2).
	FreeBytes     int64
	CapacityBytes int64
	CPUSpeed      float64
}

// wireBytes approximates the payload size of the message for the network
// model.
func (m *Message) wireBytes() int64 {
	n := int64(16 + len(m.Class) + len(m.Method) + len(m.Field))
	for i := range m.Args {
		n += wireValueBytes(&m.Args[i])
	}
	n += wireValueBytes(&m.Ret)
	for i := range m.Batch {
		n += m.Batch[i].Size + 16
	}
	n += int64(8 * len(m.IDs))
	for _, c := range m.Classes {
		n += int64(len(c)) + 2
	}
	return n
}

func wireValueBytes(w *vm.WireValue) int64 {
	switch w.Kind {
	case vm.KindNil:
		return 1
	case vm.KindInt, vm.KindFloat:
		return 8
	case vm.KindBool:
		return 1
	case vm.KindString:
		return int64(len(w.S)) + 4
	case vm.KindBytes:
		return int64(len(w.Bytes)) + 4
	case vm.KindRef:
		return 12
	default:
		return 1
	}
}

// RemoteError is an error returned by the peer VM while servicing a
// request.
type RemoteError struct {
	Kind MsgKind
	Msg  string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("remote: peer %s failed: %s", e.Kind, e.Msg)
}

// ErrClosed is returned for operations on a closed peer connection.
var ErrClosed = errors.New("remote: connection closed")
