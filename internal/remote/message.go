// Package remote implements AIDE's remote invocation module (paper §3.2,
// §4): it converts accesses to remote objects into transparent RPCs
// between two VMs, manages external object references, migrates offloaded
// objects, and services the peer's requests with a pool of worker threads.
package remote

import (
	"errors"
	"fmt"

	"aide/internal/vm"
)

// MsgKind discriminates wire messages.
type MsgKind uint8

// Message kinds.
const (
	MsgInvoke MsgKind = iota + 1
	MsgNativeInvoke
	MsgGetField
	MsgSetField
	MsgGetStatic
	MsgSetStatic
	MsgMigrate
	MsgRelease
	MsgPing
	MsgRecall
	MsgInfo
	// MsgReleaseBatch coalesces many stub-death decrefs into one one-way
	// message; IDs carries the released object IDs, duplicates included
	// (one entry per decref).
	MsgReleaseBatch
	// MsgPong answers a MsgPing health probe. A distinct reply kind lets a
	// receiver tell a probe answer from an echoed request without
	// consulting the pending-call table.
	MsgPong
	// MsgInvokeBatch carries a pipelined multi-invoke frame: Calls execute
	// strictly in order on the serving VM; a call may name an earlier
	// call's result as its receiver or argument (promise pipelining), so a
	// chain of N dependent invocations costs one round trip.
	MsgInvokeBatch
	// MsgPromiseRef is the per-call receiver discriminator inside a
	// MsgInvokeBatch frame: it introduces the promise form (an earlier
	// call's index) where MsgInvoke introduces a concrete object ID. It
	// never appears as a top-level frame kind.
	MsgPromiseRef
	// MsgFieldFetch pulls fields a lazy migration withheld: Obj names the
	// object in the serving VM's namespace (the lazy migration's origin),
	// Classes the requested field names (empty = all remaining). The reply
	// carries the served names in Classes, values in Args, and their wire
	// size in MovedBytes.
	MsgFieldFetch
	// MsgAttach opens a session: the serving side runs admission control
	// and either admits the sender (reply carries the same occupancy
	// payload as MsgInfo plus Sessions) or rejects it with a typed error
	// code (ErrCode). Surrogates that predate this kind answer with an
	// "unknown request kind" error, which Peer.Attach maps to
	// ErrAttachUnsupported so callers can fall back to implicit admission.
	MsgAttach
	// MsgSnapshot moves one VM snapshot image, chunked under the maxFrame
	// guard: Blob carries the chunk bytes, Seq the 1-based chunk number,
	// Total the chunk count. Method selects what the receiver does with
	// the assembled image ("restore" replaces its session VM's heap,
	// "handoff" announces a drain destination named by Class, "drain"
	// orders a surrogate to drain toward Class, "pull" requests chunk Seq
	// of the receiver's own snapshot — the reply carries Blob and Total).
	MsgSnapshot
	// MsgSnapshotAck finalizes a snapshot exchange: the sender confirms it
	// acted on the assembled image (restored it, or completed a handoff),
	// letting the receiver release any cached snapshot state.
	MsgSnapshotAck
)

// String returns the kind's name.
func (k MsgKind) String() string {
	switch k {
	case MsgInvoke:
		return "invoke"
	case MsgNativeInvoke:
		return "native-invoke"
	case MsgGetField:
		return "get-field"
	case MsgSetField:
		return "set-field"
	case MsgGetStatic:
		return "get-static"
	case MsgSetStatic:
		return "set-static"
	case MsgMigrate:
		return "migrate"
	case MsgRelease:
		return "release"
	case MsgPing:
		return "ping"
	case MsgRecall:
		return "recall"
	case MsgInfo:
		return "info"
	case MsgReleaseBatch:
		return "release-batch"
	case MsgPong:
		return "pong"
	case MsgInvokeBatch:
		return "invoke-batch"
	case MsgPromiseRef:
		return "promise-ref"
	case MsgFieldFetch:
		return "field-fetch"
	case MsgAttach:
		return "attach"
	case MsgSnapshot:
		return "snapshot"
	case MsgSnapshotAck:
		return "snapshot-ack"
	default:
		return fmt.Sprintf("MsgKind(%d)", uint8(k))
	}
}

// Message is the single wire envelope. A fat struct keeps gob encoding
// simple and self-describing; unused fields cost nothing on the wire
// beyond their zero markers.
type Message struct {
	ID    uint64 // request correlation; replies echo it
	Reply bool
	Kind  MsgKind
	Err   string // non-empty on failed replies

	Obj    vm.ObjectID // target object, in the receiver's namespace
	Class  string
	Method string
	Field  string

	// SelfIsSenderLocal marks native invocations whose receiver object is
	// in the *sender's* namespace (diagnostic; see Peer.handleNative).
	SelfIsSenderLocal bool

	Args []vm.WireValue
	Ret  vm.WireValue

	// ElapsedNanos is the simulated execution time the serving VM spent,
	// charged to the requester (paper §4's serial execution accounting).
	ElapsedNanos int64

	// Batch and IDs carry object migration payloads and assigned IDs.
	Batch []vm.MigratedObject
	IDs   []vm.ObjectID

	// Classes names the classes a recall requests; Objects and MovedBytes
	// report what a recall moved.
	Classes    []string
	Objects    int64
	MovedBytes int64

	// FreeBytes, CapacityBytes, and CPUSpeed describe the serving VM in
	// info replies (surrogate selection, paper §2).
	FreeBytes     int64
	CapacityBytes int64
	CPUSpeed      float64

	// Calls carries a pipelined multi-invoke frame (MsgInvokeBatch); Rets
	// carries its reply's per-call results, in call order — on a failed
	// frame, the successful prefix only.
	Calls []vm.PipelineCall
	Rets  []vm.WireValue

	// ErrIndex, on a failed MsgInvokeBatch reply (Err non-empty), is
	// 1 + the index of the call that failed; 0 means the failure was not
	// attributable to a single call (the offset keeps the zero value off
	// the wire under tag-presence encoding).
	ErrIndex int32

	// ErrCode, on a failed reply, classifies the failure machine-readably
	// (admission rejection, load shed, eviction); 0 means unclassified.
	// RemoteError carries it to the caller as an ErrorCode.
	ErrCode uint8

	// Sessions reports the serving surrogate's live admitted session count
	// in info and attach replies (fleet placement input).
	Sessions int64

	// Blob, Seq, and Total carry one chunk of a snapshot image
	// (MsgSnapshot): Blob the chunk bytes, Seq the 1-based chunk number,
	// Total the chunk count. Chunking keeps every frame under the
	// maxFrame guard regardless of heap size.
	Blob  []byte
	Seq   int64
	Total int64
}

// wireBytes returns the exact on-the-wire frame size of the message
// under the binary codec (length prefix included), so Stats and the
// netmodel.Link costing charge real transfer sizes. TestWireBytesExact
// pins this against the bytes the codec actually emits for every kind.
func (m *Message) wireBytes() int64 {
	return int64(frameSize(m))
}

// ErrorCode classifies a failed reply machine-readably. It rides the
// wire as Message.ErrCode and surfaces on RemoteError, whose Unwrap maps
// each code to a matching sentinel so errors.Is works across the link.
type ErrorCode uint8

// Error codes carried on failed replies.
const (
	// CodeNone marks an unclassified failure (the pre-session wire format).
	CodeNone ErrorCode = iota
	// CodeAdmission marks an attach or request rejected by admission
	// control: the surrogate is at its session or heap-quota cap.
	CodeAdmission
	// CodeShed marks work refused by load shedding: the surrogate's
	// health probe reports degraded and new sessions are turned away.
	CodeShed
	// CodeEvicted marks a session torn down by the surrogate to reclaim
	// capacity; late requests on the severed session carry it.
	CodeEvicted
	// CodeDrained marks a request refused because the surrogate is
	// draining: the session is being handed off to another surrogate, and
	// the refused call never executed (retrying it elsewhere is
	// exactly-once safe).
	CodeDrained
)

// String returns the code's name.
func (c ErrorCode) String() string {
	switch c {
	case CodeNone:
		return "none"
	case CodeAdmission:
		return "admission-rejected"
	case CodeShed:
		return "shed"
	case CodeEvicted:
		return "evicted"
	case CodeDrained:
		return "drained"
	default:
		return fmt.Sprintf("ErrorCode(%d)", uint8(c))
	}
}

// Typed session-control failures. A surrogate rejecting work puts the
// matching code on the wire; the requesting side's RemoteError unwraps to
// these, so clients match with errors.Is regardless of transport.
var (
	// ErrAdmissionRejected reports an attach refused by admission control.
	ErrAdmissionRejected = errors.New("remote: admission rejected")
	// ErrShed reports work refused because the surrogate is shedding load.
	ErrShed = errors.New("remote: load shed")
	// ErrEvicted reports a session the surrogate evicted to reclaim capacity.
	ErrEvicted = errors.New("remote: session evicted")
	// ErrAttachUnsupported reports a peer that predates MsgAttach; callers
	// treat it as a successful attach with no admission control.
	ErrAttachUnsupported = errors.New("remote: peer does not support attach")
	// ErrDrained reports a request refused because the surrogate is
	// draining the session toward another surrogate. It wraps
	// vm.ErrSessionDrained so the VM's drain-redirect retry recognizes the
	// condition through the remote module's wrapping.
	ErrDrained error = fmt.Errorf("remote: surrogate draining: %w", vm.ErrSessionDrained)
)

// sentinel maps an ErrorCode to its errors.Is target.
func (c ErrorCode) sentinel() error {
	switch c {
	case CodeAdmission:
		return ErrAdmissionRejected
	case CodeShed:
		return ErrShed
	case CodeEvicted:
		return ErrEvicted
	case CodeDrained:
		return ErrDrained
	default:
		return nil
	}
}

// CodeOf extracts the ErrorCode riding err, or CodeNone. It recognizes
// both RemoteError values and the bare sentinels.
func CodeOf(err error) ErrorCode {
	var re *RemoteError
	if errors.As(err, &re) {
		return re.Code
	}
	switch {
	case errors.Is(err, ErrAdmissionRejected):
		return CodeAdmission
	case errors.Is(err, ErrShed):
		return CodeShed
	case errors.Is(err, ErrEvicted):
		return CodeEvicted
	case errors.Is(err, ErrDrained):
		return CodeDrained
	}
	return CodeNone
}

// RemoteError is an error returned by the peer VM while servicing a
// request.
type RemoteError struct {
	Kind MsgKind
	Msg  string
	Code ErrorCode // typed session-control classification; CodeNone if unclassified
}

// Error implements error.
func (e *RemoteError) Error() string {
	if e.Code != CodeNone {
		return fmt.Sprintf("remote: peer %s failed (%s): %s", e.Kind, e.Code, e.Msg)
	}
	return fmt.Sprintf("remote: peer %s failed: %s", e.Kind, e.Msg)
}

// Unwrap exposes the sentinel matching the error's code, so
// errors.Is(err, ErrAdmissionRejected) holds across the wire.
func (e *RemoteError) Unwrap() error {
	return e.Code.sentinel()
}

// ErrClosed is returned for operations on a closed peer connection.
var ErrClosed = errors.New("remote: connection closed")

// ErrCallTimeout is returned when a call's deadline (Options.CallTimeout)
// expires before the reply arrives. The peer is marked degraded; enough
// consecutive timeouts (Options.DisconnectAfter) escalate to a full
// disconnect.
var ErrCallTimeout = errors.New("remote: call timed out")

// ErrDisconnected marks an involuntary connection loss — a transport
// failure or a timeout storm, as opposed to a deliberate Close. It wraps
// both ErrClosed (existing callers matching on "connection closed" keep
// working) and vm.ErrPeerGone (the VM layer recognizes the condition and
// fails calls over to local execution).
var ErrDisconnected error = fmt.Errorf("%w: connection lost: %w", ErrClosed, vm.ErrPeerGone)
