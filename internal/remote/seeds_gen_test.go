package remote

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestRegenerateFuzzSeeds rewrites the checked-in corpus seeds that are
// derived from codecMessages(): one file per late-added message kind
// plus a truncated frame. Guarded so a normal test run never touches
// testdata; regenerate after a codec change with
//
//	AIDE_REGEN_SEEDS=1 go test -run TestRegenerateFuzzSeeds ./internal/remote
func TestRegenerateFuzzSeeds(t *testing.T) {
	if os.Getenv("AIDE_REGEN_SEEDS") == "" {
		t.Skip("set AIDE_REGEN_SEEDS=1 to rewrite the fuzz corpus")
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzMessageRoundTrip")
	write := func(name string, data []byte) {
		t.Helper()
		content := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	var invoke, batch, snap []byte
	for _, m := range codecMessages() {
		buf := appendMessage(nil, m)
		switch {
		case m.Kind == MsgInvoke && !m.Reply && invoke == nil:
			invoke = buf
		case m.Kind == MsgPong:
			write("seed-19-pong", buf)
		case m.Kind == MsgReleaseBatch:
			write("seed-20-release-batch", buf)
		case m.Kind == MsgPing && !m.Reply:
			write("seed-22-ping-request", buf)
		case m.Kind == MsgInvokeBatch && !m.Reply:
			batch = buf
			write("seed-23-invoke-batch", buf)
		case m.Kind == MsgInvokeBatch && m.Reply && m.Err != "":
			write("seed-24-invoke-batch-error-reply", buf)
		case m.Kind == MsgFieldFetch && !m.Reply:
			write("seed-25-field-fetch", buf)
		case m.Kind == MsgFieldFetch && m.Reply:
			write("seed-26-field-fetch-reply", buf)
		case m.Kind == MsgSnapshot && !m.Reply && m.Method == "restore" && snap == nil:
			snap = buf
			write("seed-28-snapshot-chunk", buf)
		case m.Kind == MsgSnapshot && m.Reply && m.Err != "":
			write("seed-30-snapshot-drained-reply", buf)
		case m.Kind == MsgSnapshotAck && !m.Reply:
			write("seed-31-snapshot-ack", buf)
		}
	}
	// A mid-payload truncation: the decoder must reject it, and the
	// fuzzer mutates outward from the cut point.
	write("seed-21-truncated-invoke", invoke[:len(invoke)/2])
	// Cut inside the multi-invoke frame's call list.
	write("seed-27-truncated-invoke-batch", batch[:len(batch)*2/3])
	// Cut inside the snapshot chunk's blob bytes.
	write("seed-29-truncated-snapshot-chunk", snap[:len(snap)-2])
	// A snapshot chunk whose blob declares far more bytes than follow.
	write("seed-32-oversize-snapshot-blob",
		[]byte{wireVersion, byte(MsgSnapshot), 1, tagBlob, 0xff, 0xff, 0xff, 0xff, 0x0f})
	// A snapshot chunk leading with a bad image version byte in the blob:
	// the frame decodes, the image layer must reject it.
	write("seed-33-bad-image-version",
		appendMessage(nil, &Message{Kind: MsgSnapshot, ID: 9, Method: "restore",
			Seq: 1, Total: 1, Blob: []byte{0x7f, 1, 0}}))
}
