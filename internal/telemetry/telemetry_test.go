package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestNilRegistryAndInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("x", "")
	h := r.Histogram("x_seconds", "", DefaultLatencyBuckets())
	r.GaugeFunc("y", "", func() int64 { return 1 })
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must hand out nil instruments: %v %v %v", c, g, h)
	}
	// All of these must be safe no-ops.
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(time.Millisecond)
	h.ObserveInt(7)
	if c.Value() != 0 || g.Value() != 0 {
		t.Fatalf("nil instruments must read zero")
	}
	if err := r.Check(); err != nil {
		t.Fatalf("nil registry Check: %v", err)
	}
	if s := r.Snapshot(); len(s.Families) != 0 {
		t.Fatalf("nil registry snapshot: %+v", s)
	}
}

func TestFamilyChildrenSumAtSnapshot(t *testing.T) {
	base := time.Date(2026, 8, 5, 0, 0, 0, 0, time.UTC)
	r := NewWithClock(func() time.Time { return base })
	a := r.Counter("aide_requests_total", "requests")
	b := r.Counter("aide_requests_total", "requests")
	if a == b {
		t.Fatal("re-registering a name must return a distinct child")
	}
	a.Add(3)
	b.Add(4)
	if a.Value() != 3 || b.Value() != 4 {
		t.Fatalf("children must read back privately: %d %d", a.Value(), b.Value())
	}
	snap := r.Snapshot()
	if len(snap.Families) != 1 {
		t.Fatalf("want one family, got %d", len(snap.Families))
	}
	f := snap.Families[0]
	if f.Value != 7 || f.Kind != "counter" {
		t.Fatalf("family must sum children: %+v", f)
	}
	if !snap.TakenAt.Equal(base) {
		t.Fatalf("snapshot must use the injected clock, got %v", snap.TakenAt)
	}
	if err := r.Check(); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestGaugeFuncAndGaugeSum(t *testing.T) {
	r := New()
	g := r.Gauge("aide_live", "")
	g.Set(10)
	r.GaugeFunc("aide_live", "", func() int64 { return 32 })
	if v := r.Snapshot().Families[0].Value; v != 42 {
		t.Fatalf("gauge + func sum = %d, want 42", v)
	}
}

func TestHistogramBucketsAndSnapshotConsistency(t *testing.T) {
	r := New()
	h := r.Histogram("aide_latency_seconds", "", []time.Duration{time.Microsecond, time.Millisecond})
	h.Observe(500 * time.Nanosecond) // bucket 0
	h.Observe(time.Microsecond)      // bucket 0 (le is inclusive)
	h.Observe(2 * time.Microsecond)  // bucket 1
	h.Observe(time.Second)           // +Inf
	hs := r.Snapshot().Families[0].Histogram
	if hs == nil {
		t.Fatal("histogram family lost its snapshot")
	}
	want := []int64{2, 1, 1}
	for i, w := range want {
		if hs.Buckets[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%+v)", i, hs.Buckets[i], w, hs)
		}
	}
	if hs.Count != 4 {
		t.Fatalf("count = %d, want 4", hs.Count)
	}
	wantSum := int64(500 + 1000 + 2000 + int64(time.Second))
	if hs.Sum != wantSum {
		t.Fatalf("sum = %d, want %d", hs.Sum, wantSum)
	}
}

func TestSizeHistogram(t *testing.T) {
	r := New()
	h := r.SizeHistogram("aide_batch_size", "", []int64{1, 8, 32})
	for _, v := range []int64{1, 2, 8, 9, 100} {
		h.ObserveInt(v)
	}
	hs := r.Snapshot().Families[0].Histogram
	want := []int64{1, 2, 1, 1}
	for i, w := range want {
		if hs.Buckets[i] != w {
			t.Fatalf("bucket %d = %d, want %d", i, hs.Buckets[i], w)
		}
	}
	if hs.Unit != "count" {
		t.Fatalf("unit = %q", hs.Unit)
	}
}

func TestRegistrationProblems(t *testing.T) {
	r := New()
	c := r.Counter("Bad-Name", "")
	if c == nil {
		t.Fatal("malformed registration must still return a live instrument")
	}
	c.Inc() // must not crash; instrument is standalone
	r.Gauge("aide_thing", "")
	mismatched := r.Counter("aide_thing", "") // kind conflict
	mismatched.Inc()
	r.Histogram("aide_h_seconds", "", []time.Duration{time.Second})
	r.Histogram("aide_h_seconds", "", []time.Duration{time.Minute}) // bounds conflict
	r.Histogram("aide_desc_seconds", "", []time.Duration{time.Second, time.Millisecond})
	probs := r.Problems()
	if len(probs) != 4 {
		t.Fatalf("want 4 problems, got %d: %v", len(probs), probs)
	}
	err := r.Check()
	if err == nil || !strings.Contains(err.Error(), "and 3 more") {
		t.Fatalf("Check must summarize problems, got %v", err)
	}
	// The conflicting registrations must not have joined the families.
	for _, f := range r.Snapshot().Families {
		if f.Name == "aide_thing" && f.Value != 0 {
			t.Fatalf("conflicting child leaked into family: %+v", f)
		}
	}
}

func TestStandaloneInstruments(t *testing.T) {
	c := NewCounter()
	c.Add(2)
	if c.Value() != 2 {
		t.Fatalf("standalone counter = %d", c.Value())
	}
	g := NewGauge()
	g.Set(5)
	g.Add(-2)
	if g.Value() != 3 {
		t.Fatalf("standalone gauge = %d", g.Value())
	}
	h := NewHistogram([]time.Duration{time.Millisecond})
	h.Observe(time.Microsecond)
	h.Observe(time.Second)
	hs := h.Snapshot()
	if hs.Count != 2 || hs.Buckets[0] != 1 || hs.Buckets[1] != 1 {
		t.Fatalf("standalone histogram snapshot: %+v", hs)
	}
	// Malformed bounds degrade to a single overflow bucket, no panic.
	bad := NewHistogram([]time.Duration{time.Second, time.Millisecond})
	bad.Observe(time.Minute)
	if s := bad.Snapshot(); s.Count != 1 || len(s.Buckets) != 1 {
		t.Fatalf("malformed-bounds histogram: %+v", s)
	}
}
