package telemetry

import (
	"testing"
	"time"
)

// The disabled-path benchmarks back the ISSUE acceptance bar: every
// suppressed metric update or span emission must cost ≤10 ns and
// 0 allocs. "Disabled" is a nil instrument (what a layer wired without
// telemetry carries) or a constructed-but-off tracer.

func BenchmarkDisabledCounterAdd(b *testing.B) {
	var r *Registry
	c := r.Counter("aide_bench_ops_total", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkDisabledGaugeSet(b *testing.B) {
	var g *Gauge
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Set(int64(i))
	}
}

func BenchmarkDisabledHistogramObserve(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Microsecond)
	}
}

func BenchmarkDisabledTracerEmit(b *testing.B) {
	tr := NewTracer(256) // wired but switched off
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The instrumentation-site pattern: gate before building the
		// span, so a disabled tracer costs one atomic load and the
		// span struct is never even constructed.
		if tr.Enabled() {
			tr.Emit(Span{Kind: SpanRPC, Peer: 1, Bytes: int64(i)})
		}
	}
}

func BenchmarkDisabledNilTracerEmit(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if tr.Enabled() {
			tr.Emit(Span{Kind: SpanRPC, Peer: 1, Bytes: int64(i)})
		}
	}
}

func BenchmarkEnabledCounterAdd(b *testing.B) {
	r := New()
	c := r.Counter("aide_bench_ops_total", "")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

func BenchmarkEnabledHistogramObserve(b *testing.B) {
	r := New()
	h := r.Histogram("aide_bench_latency_seconds", "", DefaultLatencyBuckets())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(time.Duration(i) * time.Nanosecond)
	}
}

func BenchmarkEnabledTracerEmit(b *testing.B) {
	base := time.Unix(0, 0)
	tr := NewTracerWithClock(256, func() time.Time { return base })
	tr.SetEnabled(true)
	s := Span{Kind: SpanRPC, Peer: 1, Bytes: 128, Start: base}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Emit(s)
	}
}
