package telemetry

import (
	"context"
	"testing"
	"time"
)

func TestTracerDisabledIsInert(t *testing.T) {
	var nilTr *Tracer
	nilTr.Emit(Span{Kind: SpanRPC})
	nilTr.SetEnabled(true)
	if nilTr.Enabled() || nilTr.NextID() != 0 || nilTr.Events() != nil || nilTr.Total() != 0 {
		t.Fatal("nil tracer must be fully inert")
	}

	tr := NewTracer(4) // starts disabled
	tr.Emit(Span{Kind: SpanRPC})
	if tr.Enabled() || tr.NextID() != 0 || len(tr.Events()) != 0 || tr.Total() != 0 {
		t.Fatal("disabled tracer must drop spans")
	}
}

func TestTracerRingWrapAndOrder(t *testing.T) {
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	tick := 0
	tr := NewTracerWithClock(3, func() time.Time {
		tick++
		return base.Add(time.Duration(tick) * time.Second)
	})
	tr.SetEnabled(true)
	for i := int64(1); i <= 5; i++ {
		tr.Emit(Span{Kind: SpanGC, N: i})
	}
	ev := tr.Events()
	if len(ev) != 3 {
		t.Fatalf("ring of 3 retained %d", len(ev))
	}
	for i, want := range []int64{3, 4, 5} {
		if ev[i].N != want {
			t.Fatalf("event %d: N=%d want %d (oldest first)", i, ev[i].N, want)
		}
	}
	if tr.Total() != 5 {
		t.Fatalf("total = %d, want 5", tr.Total())
	}
	if ev[0].ID == 0 || ev[1].ID != ev[0].ID+1 {
		t.Fatalf("IDs must auto-assign sequentially: %d %d", ev[0].ID, ev[1].ID)
	}
	if !ev[0].Start.After(base) {
		t.Fatalf("zero Start must be stamped from the injected clock: %v", ev[0].Start)
	}
}

func TestTracerPartialFill(t *testing.T) {
	tr := NewTracer(8)
	tr.SetEnabled(true)
	tr.Emit(Span{Kind: SpanProbe, Note: "a"})
	tr.Emit(Span{Kind: SpanProbe, Note: "b"})
	ev := tr.Events()
	if len(ev) != 2 || ev[0].Note != "a" || ev[1].Note != "b" {
		t.Fatalf("partial ring: %+v", ev)
	}
}

func TestTracerExplicitFieldsPreserved(t *testing.T) {
	tr := NewTracer(2)
	tr.SetEnabled(true)
	start := time.Date(2026, 1, 2, 3, 4, 5, 0, time.UTC)
	id := tr.NextID()
	tr.Emit(Span{ID: id, Parent: 7, Kind: SpanMigration, Note: "offload", Peer: 1, N: 12, Bytes: 4096, Err: true, Start: start, Dur: time.Millisecond})
	ev := tr.Events()[0]
	if ev.ID != id || ev.Parent != 7 || ev.Kind != SpanMigration || ev.Note != "offload" ||
		ev.Peer != 1 || ev.N != 12 || ev.Bytes != 4096 || !ev.Err || !ev.Start.Equal(start) || ev.Dur != time.Millisecond {
		t.Fatalf("span fields mangled: %+v", ev)
	}
}

func TestSpanContextLinking(t *testing.T) {
	ctx := context.Background()
	if SpanFrom(ctx) != 0 {
		t.Fatal("background context must carry no span")
	}
	if WithSpan(ctx, 0) != ctx {
		t.Fatal("WithSpan(ctx, 0) must not allocate a new context")
	}
	child := WithSpan(ctx, 42)
	if SpanFrom(child) != 42 {
		t.Fatalf("SpanFrom = %d", SpanFrom(child))
	}
	var nilCtx context.Context
	if SpanFrom(nilCtx) != 0 {
		t.Fatal("nil context must be safe")
	}
}

func TestSpanKindStrings(t *testing.T) {
	kinds := map[SpanKind]string{
		SpanRPC: "rpc", SpanMigration: "migration", SpanRepartition: "repartition",
		SpanGC: "gc", SpanFailover: "failover", SpanDisconnect: "disconnect",
		SpanReattach: "reattach", SpanProbe: "probe", SpanOrphan: "orphan",
		SpanFault: "fault", SpanKind(0): "unknown", SpanKind(200): "unknown",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Fatalf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
}
