package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRegistry builds a registry with one family of every shape and a
// fixed set of observations, so the exposition output is a constant.
func goldenRegistry() *Registry {
	base := time.Date(2026, 8, 5, 12, 0, 0, 0, time.UTC)
	r := NewWithClock(func() time.Time { return base })
	a := r.Counter("aide_remote_requests_sent_total", "requests issued to the peer")
	b := r.Counter("aide_remote_requests_sent_total", "requests issued to the peer")
	a.Add(3)
	b.Add(9)
	g := r.Gauge("aide_vm_heap_live_bytes", "live bytes in the VM heap")
	g.Set(1 << 20)
	r.GaugeFunc("aide_vm_heap_live_bytes", "live bytes in the VM heap", func() int64 { return 512 })
	h := r.Histogram("aide_remote_call_latency_seconds", "round-trip latency of peer calls",
		[]time.Duration{100 * time.Microsecond, time.Millisecond, 10 * time.Millisecond})
	h.Observe(50 * time.Microsecond)
	h.Observe(500 * time.Microsecond)
	h.Observe(2 * time.Millisecond)
	h.Observe(time.Second)
	s := r.SizeHistogram("aide_remote_release_batch_size", "decrefs coalesced per release batch",
		[]int64{1, 8, 32})
	s.ObserveInt(1)
	s.ObserveInt(6)
	s.ObserveInt(32)
	s.ObserveInt(40)
	return r
}

func TestWritePromGolden(t *testing.T) {
	r := goldenRegistry()
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	path := filepath.Join("testdata", "golden.prom")
	if *update {
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatalf("update golden: %v", err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("Prometheus exposition drifted from golden.\n-- got --\n%s\n-- want --\n%s", buf.Bytes(), want)
	}
}

func TestWritePromDeterministic(t *testing.T) {
	r := goldenRegistry()
	var a, b bytes.Buffer
	if err := r.WriteProm(&a); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two scrapes of an idle registry must be byte-identical")
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	r := goldenRegistry()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(snap.Families) != 4 {
		t.Fatalf("families = %d, want 4", len(snap.Families))
	}
	byName := map[string]FamilySnapshot{}
	for _, f := range snap.Families {
		byName[f.Name] = f
	}
	if f := byName["aide_remote_requests_sent_total"]; f.Value != 12 || f.Kind != "counter" {
		t.Fatalf("counter family: %+v", f)
	}
	if f := byName["aide_vm_heap_live_bytes"]; f.Value != (1<<20)+512 {
		t.Fatalf("gauge family: %+v", f)
	}
	if f := byName["aide_remote_call_latency_seconds"]; f.Histogram == nil || f.Histogram.Count != 4 {
		t.Fatalf("histogram family: %+v", f)
	}
}
