package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// escapeHelp quotes backslashes and newlines per the Prometheus text
// exposition rules for HELP lines.
var escapeHelp = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

// promFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips.
func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteProm writes the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, histogram buckets
// cumulative with an explicit +Inf bucket. Deterministic for a given
// registry state.
func (r *Registry) WriteProm(w io.Writer) error {
	var buf bytes.Buffer
	for _, f := range r.Snapshot().Families {
		if f.Help != "" {
			fmt.Fprintf(&buf, "# HELP %s %s\n", f.Name, escapeHelp.Replace(f.Help))
		}
		fmt.Fprintf(&buf, "# TYPE %s %s\n", f.Name, f.Kind)
		h := f.Histogram
		if h == nil {
			fmt.Fprintf(&buf, "%s %d\n", f.Name, f.Value)
			continue
		}
		cum := int64(0)
		for i, bound := range h.Bounds {
			cum += h.Buckets[i]
			le := promFloat(float64(bound))
			if h.Unit == UnitNanoseconds.String() {
				le = promFloat(float64(bound) / 1e9)
			}
			fmt.Fprintf(&buf, "%s_bucket{le=%q} %d\n", f.Name, le, cum)
		}
		fmt.Fprintf(&buf, "%s_bucket{le=\"+Inf\"} %d\n", f.Name, h.Count)
		if h.Unit == UnitNanoseconds.String() {
			fmt.Fprintf(&buf, "%s_sum %s\n", f.Name, promFloat(float64(h.Sum)/1e9))
		} else {
			fmt.Fprintf(&buf, "%s_sum %d\n", f.Name, h.Sum)
		}
		fmt.Fprintf(&buf, "%s_count %d\n", f.Name, h.Count)
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// WriteJSON writes the registry snapshot as indented JSON (the
// /metrics.json payload; aide-stat decodes it back into Snapshot).
func (r *Registry) WriteJSON(w io.Writer) error {
	buf, err := json.MarshalIndent(r.Snapshot(), "", "  ")
	if err != nil {
		return err
	}
	_, err = w.Write(append(buf, '\n'))
	return err
}
