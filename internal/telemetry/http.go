package telemetry

import (
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
)

// Handler serves the telemetry surface:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  Snapshot as JSON
//	/events        retained tracer spans as JSON (?limit=N newest)
//	/healthz       200 "ok" or 503 with the health error
//	/debug/pprof/  the standard Go profiler endpoints
//
// healthz is optional; with nil the endpoint always reports healthy.
// pprof is served on this mux explicitly so nothing leaks onto
// http.DefaultServeMux.
func Handler(reg *Registry, tr *Tracer, healthz func() error) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WriteProm(w); err != nil {
			return // client went away mid-scrape; nothing to clean up
		}
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if err := reg.WriteJSON(w); err != nil {
			return
		}
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, req *http.Request) {
		events := tr.Events()
		if s := req.URL.Query().Get("limit"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n >= 0 && n < len(events) {
				events = events[len(events)-n:]
			}
		}
		w.Header().Set("Content-Type", "application/json")
		buf, err := json.MarshalIndent(events, "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		if _, err := w.Write(append(buf, '\n')); err != nil {
			return
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		if healthz != nil {
			if err := healthz(); err != nil {
				http.Error(w, fmt.Sprintf("unhealthy: %v", err), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if _, err := w.Write([]byte("ok\n")); err != nil {
			return
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// Server is a running telemetry HTTP listener. Close shuts it down.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	errc chan error
}

// Serve starts serving h on addr (use ":0" or "127.0.0.1:0" for an
// ephemeral port) and returns once the listener is bound.
func Serve(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: h}, errc: make(chan error, 1)}
	go func() { s.errc <- s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error {
	if err := s.srv.Close(); err != nil {
		return err
	}
	if err := <-s.errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
