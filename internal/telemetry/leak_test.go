package telemetry

import (
	"fmt"
	"net/http"
	"os"
	"runtime"
	"testing"
	"time"
)

// TestMain wraps the whole package run in a goroutine-leak check: the
// exposition server's Serve goroutine must have joined (Close receives
// its exit error) by the time the tests finish.
func TestMain(m *testing.M) {
	before := runtime.NumGoroutine()
	code := m.Run()
	if code == 0 {
		if leaked := settleGoroutines(before); leaked > 0 {
			fmt.Fprintf(os.Stderr, "goroutine leak: %d goroutines outlived the package tests (started with %d)\n",
				leaked, before)
			code = 1
		}
	}
	os.Exit(code)
}

// settleGoroutines waits for the goroutine count to return to the
// baseline, tolerating runtime-internal stragglers that need a few
// scheduler rounds to park.
func settleGoroutines(baseline int) int {
	// Scrape tests use the default client; idle keep-alive connections
	// hold their goroutines until dropped.
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline || time.Now().After(deadline) {
			if n <= baseline {
				return 0
			}
			return n - baseline
		}
		time.Sleep(20 * time.Millisecond)
	}
}
