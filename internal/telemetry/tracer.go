package telemetry

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// SpanKind classifies an offload event.
type SpanKind uint8

const (
	SpanRPC SpanKind = iota + 1
	SpanMigration
	SpanRepartition
	SpanGC
	SpanFailover
	SpanDisconnect
	SpanReattach
	SpanProbe
	SpanOrphan
	SpanFault
	// SpanSnapshot records a VM snapshot moving across the wire (capture,
	// push, pull, restore); SpanDrain records a live session handoff from
	// a draining surrogate; SpanSpeculate records one speculative race of
	// local clone execution against the remote call.
	SpanSnapshot
	SpanDrain
	SpanSpeculate
)

var spanKindNames = [...]string{
	SpanRPC:         "rpc",
	SpanMigration:   "migration",
	SpanRepartition: "repartition",
	SpanGC:          "gc",
	SpanFailover:    "failover",
	SpanDisconnect:  "disconnect",
	SpanReattach:    "reattach",
	SpanProbe:       "probe",
	SpanOrphan:      "orphan",
	SpanFault:       "fault",
	SpanSnapshot:    "snapshot",
	SpanDrain:       "drain",
	SpanSpeculate:   "speculate",
}

// String names the kind as it appears in /events output.
func (k SpanKind) String() string {
	if int(k) < len(spanKindNames) && spanKindNames[k] != "" {
		return spanKindNames[k]
	}
	return "unknown"
}

// MarshalText lets Span serialize kinds as readable strings.
func (k SpanKind) MarshalText() ([]byte, error) { return []byte(k.String()), nil }

// UnmarshalText parses the names MarshalText produces, so /events
// payloads round-trip through consumers like aide-stat. Unrecognized
// names (including "unknown") decode to the zero kind.
func (k *SpanKind) UnmarshalText(text []byte) error {
	s := string(text)
	for i, name := range spanKindNames {
		if name != "" && name == s {
			*k = SpanKind(i)
			return nil
		}
	}
	*k = 0
	return nil
}

// Span is one structured offload event. Parent links a child to the
// span that caused it (an RPC call carries the migration that issued
// it), threaded through context by WithSpan/SpanFrom.
type Span struct {
	ID     uint64        `json:"id"`
	Parent uint64        `json:"parent,omitempty"`
	Kind   SpanKind      `json:"kind"`
	Note   string        `json:"note,omitempty"`
	Peer   int           `json:"peer"`
	N      int64         `json:"n,omitempty"`
	Bytes  int64         `json:"bytes,omitempty"`
	Err    bool          `json:"err,omitempty"`
	Start  time.Time     `json:"start"`
	Dur    time.Duration `json:"dur_ns"`
}

// Tracer records spans into a bounded ring, overwriting the oldest
// when full. It is nil-safe and additionally gated on an atomic
// enabled flag: a nil or disabled tracer's Emit is a single atomic
// load and allocates nothing, which is what lets instrumentation sit
// on the RPC fast path unconditionally.
type Tracer struct {
	now func() time.Time
	on  atomic.Bool
	seq atomic.Uint64

	mu    sync.Mutex
	ring  []Span
	next  int
	total uint64
}

// NewTracer builds a tracer with capacity slots (minimum 1) stamping
// spans with the wall clock. The tracer starts disabled.
func NewTracer(capacity int) *Tracer { return NewTracerWithClock(capacity, time.Now) }

// NewTracerWithClock builds a tracer with an injectable clock. Spans
// emitted with a zero Start are stamped with this clock.
func NewTracerWithClock(capacity int, now func() time.Time) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	if now == nil {
		now = time.Now
	}
	return &Tracer{now: now, ring: make([]Span, capacity)}
}

// SetEnabled switches span recording on or off. No-op on nil.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.on.Store(on)
	}
}

// Enabled reports whether spans are being recorded. Instrumentation
// sites that would allocate to build a span (formatting a note,
// deriving a context) must check this first; sites that emit a
// ready-made struct may call Emit unconditionally.
func (t *Tracer) Enabled() bool { return t != nil && t.on.Load() }

// NextID allocates a span ID for parent/child linking, or 0 when the
// tracer is off (0 is "no parent").
func (t *Tracer) NextID() uint64 {
	if !t.Enabled() {
		return 0
	}
	return t.seq.Add(1)
}

// Emit records s, assigning an ID if s.ID is zero and stamping s.Start
// from the tracer clock if zero. No-op when nil or disabled.
func (t *Tracer) Emit(s Span) {
	if !t.Enabled() {
		return
	}
	if s.ID == 0 {
		s.ID = t.seq.Add(1)
	}
	if s.Start.IsZero() {
		s.Start = t.now()
	}
	t.mu.Lock()
	t.ring[t.next] = s
	t.next++
	if t.next == len(t.ring) {
		t.next = 0
	}
	t.total++
	t.mu.Unlock()
}

// Events returns the retained spans, oldest first.
func (t *Tracer) Events() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := len(t.ring)
	if t.total < uint64(n) {
		n = int(t.total)
	}
	out := make([]Span, 0, n)
	start := t.next - n
	if start < 0 {
		start += len(t.ring)
	}
	for i := 0; i < n; i++ {
		out = append(out, t.ring[(start+i)%len(t.ring)])
	}
	return out
}

// Total reports how many spans were ever emitted, including ones the
// ring has since overwritten.
func (t *Tracer) Total() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.total
}

// ctxKey carries a parent span ID through a context.
type ctxKey struct{}

// WithSpan returns ctx carrying id as the parent for downstream spans.
// With id zero (tracer off) it returns ctx unchanged — no allocation.
func WithSpan(ctx context.Context, id uint64) context.Context {
	if id == 0 {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, id)
}

// SpanFrom extracts the parent span ID from ctx (0 when absent).
func SpanFrom(ctx context.Context) uint64 {
	if ctx == nil {
		return 0
	}
	id, _ := ctx.Value(ctxKey{}).(uint64)
	return id
}
