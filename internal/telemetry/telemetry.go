// Package telemetry is AIDE's dependency-free observability core: atomic
// counters, gauges and fixed-bucket histograms collected in a named
// registry, plus a bounded ring of structured offload events (tracer.go)
// and live exposition in Prometheus text and JSON form (prom.go, http.go).
//
// The package is built so that instrumentation costs nothing when it is
// switched off:
//
//   - every instrument method is nil-safe — a nil *Counter, *Gauge,
//     *Histogram or *Tracer is a no-op, so "disabled" is a nil check on
//     the hot path (no branch on configuration, no allocation);
//   - a nil *Registry hands out nil instruments, so a layer wired
//     without telemetry carries nil fields all the way down;
//   - the tracer additionally gates on an atomic enabled flag so a
//     wired-but-quiet tracer stays allocation-free.
//
// Determinism contract: the registry and tracer never read the wall
// clock directly — they call an injectable clock (defaulting to
// time.Now) so the simulated-time test rigs stay bit-identical. The
// telemetrycheck analyzer (internal/lint) enforces this, along with
// lowercase_snake constant metric names at every registration site.
package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// MetricKind discriminates the families a registry can hold.
type MetricKind uint8

const (
	KindCounter MetricKind = iota + 1
	KindGauge
	KindHistogram
)

// String names the kind as it appears in snapshots and TYPE lines.
func (k MetricKind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// family is one named metric and every instrument registered under that
// name. Registering the same name again hands back a fresh child, so
// per-peer (or per-VM) code keeps a private instrument to read back
// while exposition sums the children into one series.
type family struct {
	name   string
	help   string
	kind   MetricKind
	unit   HistUnit
	bounds []int64

	counters []*Counter
	gauges   []*Gauge
	fns      []func() int64
	hists    []*Histogram
}

// Registry is a named collection of metric families. The zero value is
// not usable; construct with New or NewWithClock. A nil *Registry is a
// valid "telemetry off" registry: every registration returns a nil
// (no-op) instrument.
//
// Registration never panics (rpcerr bans library panics): malformed or
// conflicting registrations are recorded as problems — retrievable via
// Check — and the caller receives a live but unregistered instrument so
// its own reads keep working.
type Registry struct {
	now func() time.Time

	mu       sync.Mutex
	families map[string]*family
	problems []string
}

// New builds a registry stamping snapshots with the wall clock.
func New() *Registry { return NewWithClock(time.Now) }

// NewWithClock builds a registry with an injectable clock (simulated
// time in tests; time.Now in production).
func NewWithClock(now func() time.Time) *Registry {
	if now == nil {
		now = time.Now
	}
	return &Registry{now: now, families: make(map[string]*family)}
}

// validMetricName reports whether name is lowercase_snake: it must
// match ^[a-z][a-z0-9_]*$ (the same shape telemetrycheck enforces on
// registration-site constants).
func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z':
		case c == '_' && i > 0:
		case c >= '0' && c <= '9' && i > 0:
		default:
			return false
		}
	}
	return true
}

// lookup finds-or-creates the family for a registration and reports
// whether the registration is compatible with it. It records a problem
// and returns nil on mismatch. Called with r.mu held.
func (r *Registry) lookupLocked(name, help string, kind MetricKind, unit HistUnit, bounds []int64) *family {
	if !validMetricName(name) {
		r.problems = append(r.problems, fmt.Sprintf("metric %q: name must be lowercase_snake ([a-z][a-z0-9_]*)", name))
		return nil
	}
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, kind: kind, unit: unit, bounds: bounds}
		r.families[name] = f
		return f
	}
	if f.kind != kind {
		r.problems = append(r.problems, fmt.Sprintf("metric %q: registered as %s and %s", name, f.kind, kind))
		return nil
	}
	if kind == KindHistogram && !sameBounds(f.bounds, bounds, f.unit, unit) {
		r.problems = append(r.problems, fmt.Sprintf("metric %q: histogram re-registered with different buckets", name))
		return nil
	}
	return f
}

func sameBounds(a, b []int64, ua, ub HistUnit) bool {
	if ua != ub || len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter registers a monotonically increasing counter under name and
// returns a fresh child instrument. On a nil registry it returns nil
// (a no-op counter).
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	c := &Counter{}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookupLocked(name, help, KindCounter, 0, nil)
	if f == nil {
		return c // live but unregistered; the problem is queued for Check
	}
	f.counters = append(f.counters, c)
	return c
}

// Gauge registers a gauge (a value that can go down) under name and
// returns a fresh child instrument. Children are summed at scrape.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	g := &Gauge{}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookupLocked(name, help, KindGauge, 0, nil)
	if f == nil {
		return g
	}
	f.gauges = append(f.gauges, g)
	return g
}

// GaugeFunc registers a gauge sampled by calling fn at scrape time. fn
// must be safe to call from the exposition goroutine and must not touch
// this registry (it runs with the registry lock held).
func (r *Registry) GaugeFunc(name, help string, fn func() int64) {
	if r == nil || fn == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookupLocked(name, help, KindGauge, 0, nil)
	if f == nil {
		return
	}
	f.fns = append(f.fns, fn)
}

// Histogram registers a duration histogram with the given ascending
// bucket upper bounds and returns a fresh child instrument. Exposition
// renders bounds in seconds (Prometheus convention).
func (r *Registry) Histogram(name, help string, bounds []time.Duration) *Histogram {
	if r == nil {
		return nil
	}
	b := make([]int64, len(bounds))
	for i, d := range bounds {
		b[i] = int64(d)
	}
	return r.histogram(name, help, UnitNanoseconds, b)
}

// SizeHistogram registers a histogram over dimensionless integer values
// (batch sizes, object counts) with the given ascending upper bounds.
func (r *Registry) SizeHistogram(name, help string, bounds []int64) *Histogram {
	if r == nil {
		return nil
	}
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return r.histogram(name, help, UnitCount, b)
}

func (r *Registry) histogram(name, help string, unit HistUnit, bounds []int64) *Histogram {
	if !ascending(bounds) {
		h := newHistogram(unit, nil)
		r.mu.Lock()
		r.problems = append(r.problems, fmt.Sprintf("metric %q: histogram bounds must be non-empty and strictly ascending", name))
		r.mu.Unlock()
		return h
	}
	h := newHistogram(unit, bounds)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.lookupLocked(name, help, KindHistogram, unit, bounds)
	if f == nil {
		return h
	}
	f.hists = append(f.hists, h)
	return h
}

func ascending(b []int64) bool {
	if len(b) == 0 {
		return false
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			return false
		}
	}
	return true
}

// Check returns an error describing every malformed registration seen
// so far, or nil if the registry is clean. Mirrors the rpcerr rule that
// libraries surface misuse as errors, never panics.
func (r *Registry) Check() error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.problems) == 0 {
		return nil
	}
	msg := r.problems[0]
	if n := len(r.problems); n > 1 {
		msg = fmt.Sprintf("%s (and %d more)", msg, n-1)
	}
	return fmt.Errorf("telemetry: %s", msg)
}

// Problems returns a copy of every registration problem recorded.
func (r *Registry) Problems() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.problems))
	copy(out, r.problems)
	return out
}

// FamilySnapshot is the aggregated point-in-time state of one metric
// family: children registered under the same name are summed into a
// single series.
type FamilySnapshot struct {
	Name      string        `json:"name"`
	Help      string        `json:"help,omitempty"`
	Kind      string        `json:"kind"`
	Value     int64         `json:"value"`
	Histogram *HistSnapshot `json:"histogram,omitempty"`
}

// Snapshot is the whole registry at one instant, families sorted by
// name so output is deterministic.
type Snapshot struct {
	TakenAt  time.Time        `json:"taken_at"`
	Families []FamilySnapshot `json:"families"`
}

// Snapshot captures every family. The per-instrument reads are atomic
// and each histogram snapshot is internally consistent (its count is
// derived from its bucket sums), so a snapshot taken mid-increment is
// always a valid state of the system.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)

	snap := Snapshot{TakenAt: r.now(), Families: make([]FamilySnapshot, 0, len(names))}
	for _, name := range names {
		f := r.families[name]
		fs := FamilySnapshot{Name: f.name, Help: f.help, Kind: f.kind.String()}
		switch f.kind {
		case KindCounter:
			for _, c := range f.counters {
				fs.Value += c.Value()
			}
		case KindGauge:
			for _, g := range f.gauges {
				fs.Value += g.Value()
			}
			for _, fn := range f.fns {
				fs.Value += fn()
			}
		case KindHistogram:
			hs := &HistSnapshot{Unit: f.unit.String(), Bounds: f.bounds}
			hs.Buckets = make([]int64, len(f.bounds)+1)
			for _, h := range f.hists {
				h.accumulate(hs)
			}
			for _, b := range hs.Buckets {
				hs.Count += b
			}
			fs.Histogram = hs
		}
		snap.Families = append(snap.Families, fs)
	}
	return snap
}
