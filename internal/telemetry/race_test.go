package telemetry

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

// TestSnapshotWhileIncrementRace hammers the registry from writer
// goroutines while scraping continuously. Under -race this proves the
// snapshot path is data-race free; the assertions prove each snapshot
// is internally consistent (histogram count equals its bucket sum and
// counters are monotonic across snapshots).
func TestSnapshotWhileIncrementRace(t *testing.T) {
	r := New()
	tr := NewTracer(64)
	tr.SetEnabled(true)

	const writers = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Each writer registers its own children mid-flight, so
			// registration races the scrape loop too.
			c := r.Counter("aide_race_ops_total", "")
			g := r.Gauge("aide_race_live", "")
			h := r.Histogram("aide_race_latency_seconds", "", []time.Duration{time.Microsecond, time.Millisecond})
			sz := r.SizeHistogram("aide_race_batch", "", []int64{2, 16})
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Add(1)
				h.Observe(time.Duration(i%2000) * time.Microsecond)
				sz.ObserveInt(int64(i % 32))
				tr.Emit(Span{Kind: SpanRPC, Peer: w, N: int64(i)})
			}
		}(w)
	}

	var lastOps int64
	deadline := time.Now().Add(200 * time.Millisecond)
	for time.Now().Before(deadline) {
		snap := r.Snapshot()
		for _, f := range snap.Families {
			if f.Histogram != nil {
				var sum int64
				for _, b := range f.Histogram.Buckets {
					sum += b
				}
				if sum != f.Histogram.Count {
					t.Fatalf("inconsistent snapshot: %s count=%d Σbuckets=%d", f.Name, f.Histogram.Count, sum)
				}
			}
			if f.Name == "aide_race_ops_total" {
				if f.Value < lastOps {
					t.Fatalf("counter went backwards: %d -> %d", lastOps, f.Value)
				}
				lastOps = f.Value
			}
		}
		var buf bytes.Buffer
		if err := r.WriteProm(&buf); err != nil {
			t.Fatalf("WriteProm: %v", err)
		}
		tr.Events()
	}
	close(stop)
	wg.Wait()
	if lastOps == 0 {
		t.Fatal("writers never ran")
	}
	if err := r.Check(); err != nil {
		t.Fatalf("Check after race: %v", err)
	}
}
