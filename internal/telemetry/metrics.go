package telemetry

import (
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing count. All methods are nil-safe
// no-ops so a disabled counter is simply a nil pointer; a live counter
// update is one atomic add.
type Counter struct{ v atomic.Int64 }

// NewCounter builds a standalone (unregistered) counter. Layers that
// must keep counting even when telemetry is off — remote.Peer's Stats
// shim — fall back to standalone instruments.
func NewCounter() *Counter { return &Counter{} }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n (n must be non-negative; counters are monotonic).
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value reads the current count (0 on a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value that can move both ways.
type Gauge struct{ v atomic.Int64 }

// NewGauge builds a standalone (unregistered) gauge.
func NewGauge() *Gauge { return &Gauge{} }

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g != nil {
		g.v.Store(v)
	}
}

// Add moves the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) {
	if g != nil {
		g.v.Add(delta)
	}
}

// Value reads the gauge (0 on a nil gauge).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// HistUnit says what a histogram's observations measure; it selects how
// bucket bounds render in the Prometheus exposition.
type HistUnit uint8

const (
	// UnitNanoseconds marks a latency histogram; bounds are exposed in
	// seconds per the Prometheus convention.
	UnitNanoseconds HistUnit = iota
	// UnitCount marks a dimensionless histogram (batch sizes, object
	// counts); bounds are exposed verbatim.
	UnitCount
)

// String names the unit as it appears in JSON snapshots.
func (u HistUnit) String() string {
	if u == UnitCount {
		return "count"
	}
	return "ns"
}

// Histogram counts observations into fixed buckets with ascending upper
// bounds plus one overflow bucket. Observation is two atomic adds after
// a binary search over ~20 bounds; no locks, no allocation.
type Histogram struct {
	unit    HistUnit
	bounds  []int64
	buckets []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sum     atomic.Int64
}

func newHistogram(unit HistUnit, bounds []int64) *Histogram {
	return &Histogram{unit: unit, bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
}

// NewHistogram builds a standalone duration histogram. Bounds must be
// strictly ascending; a malformed set degrades to a single overflow
// bucket (sum and count still work) rather than panicking.
func NewHistogram(bounds []time.Duration) *Histogram {
	b := make([]int64, len(bounds))
	for i, d := range bounds {
		b[i] = int64(d)
	}
	if !ascending(b) {
		b = nil
	}
	return newHistogram(UnitNanoseconds, b)
}

// Observe records a duration.
func (h *Histogram) Observe(d time.Duration) { h.ObserveInt(int64(d)) }

// ObserveInt records a raw observation in the histogram's unit
// (nanoseconds for latency histograms, a count for size histograms).
func (h *Histogram) ObserveInt(v int64) {
	if h == nil {
		return
	}
	// Binary search for the first bound >= v; misses land in +Inf.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.buckets[lo].Add(1)
	h.sum.Add(v)
}

// HistSnapshot is a point-in-time histogram state. Count is derived
// from the bucket sums, so Count == Σ Buckets always holds even for a
// snapshot taken concurrently with observations.
type HistSnapshot struct {
	Unit    string  `json:"unit"`
	Bounds  []int64 `json:"bounds"`
	Buckets []int64 `json:"buckets"`
	Count   int64   `json:"count"`
	Sum     int64   `json:"sum"`
}

// accumulate folds this histogram's buckets and sum into hs. The
// snapshot's bounds govern; a child with mismatched bounds cannot be
// registered (the registry rejects it), so indexes line up.
func (h *Histogram) accumulate(hs *HistSnapshot) {
	for i := range h.buckets {
		if i < len(hs.Buckets) {
			hs.Buckets[i] += h.buckets[i].Load()
		}
	}
	hs.Sum += h.sum.Load()
}

// Snapshot captures this single histogram (standalone use; registered
// histograms are aggregated by Registry.Snapshot).
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	hs := HistSnapshot{Unit: h.unit.String(), Bounds: h.bounds, Buckets: make([]int64, len(h.buckets))}
	h.accumulate(&hs)
	for _, b := range hs.Buckets {
		hs.Count += b
	}
	return hs
}

// DefaultLatencyBuckets spans 1µs to 5s in a 1-2-5 progression — wide
// enough for in-process RPC (µs) through WAN retries (seconds).
func DefaultLatencyBuckets() []time.Duration {
	return []time.Duration{
		1 * time.Microsecond, 2 * time.Microsecond, 5 * time.Microsecond,
		10 * time.Microsecond, 20 * time.Microsecond, 50 * time.Microsecond,
		100 * time.Microsecond, 200 * time.Microsecond, 500 * time.Microsecond,
		1 * time.Millisecond, 2 * time.Millisecond, 5 * time.Millisecond,
		10 * time.Millisecond, 20 * time.Millisecond, 50 * time.Millisecond,
		100 * time.Millisecond, 200 * time.Millisecond, 500 * time.Millisecond,
		1 * time.Second, 2 * time.Second, 5 * time.Second,
	}
}

// DefaultSizeBuckets is a power-of-two ladder for batch/object-count
// histograms (1 to 4096).
func DefaultSizeBuckets() []int64 {
	return []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}
}
