package experiments

import (
	"time"

	"aide/internal/graph"
	"aide/internal/monitor"
	"aide/internal/vm"
)

// figure9Graph executes the paper's Figure 9 example on the live VM with
// monitoring attached: a::f() works for 0.02 s and calls b::g(), which
// works for 0.10 s. The monitor must attribute 0.02 s to class a and
// 0.10 s to class b.
func figure9Graph() (*graph.Graph, error) {
	reg := vm.NewRegistry()
	if _, err := reg.Register(vm.ClassSpec{
		Name: "b",
		Methods: []vm.MethodSpec{
			{Name: "g", Body: func(th *vm.Thread, self vm.ObjectID, args []vm.Value) (vm.Value, error) {
				th.Work(100 * time.Millisecond)
				return vm.Nil(), nil
			}},
		},
	}); err != nil {
		return nil, err
	}
	if _, err := reg.Register(vm.ClassSpec{
		Name:   "a",
		Fields: []string{"b"},
		Methods: []vm.MethodSpec{
			{Name: "f", Body: func(th *vm.Thread, self vm.ObjectID, args []vm.Value) (vm.Value, error) {
				th.Work(20 * time.Millisecond)
				bref, err := th.GetField(self, "b")
				if err != nil {
					return vm.Nil(), err
				}
				return th.Invoke(bref.Ref, "g")
			}},
		},
	}); err != nil {
		return nil, err
	}

	v := vm.New(reg, vm.Config{HeapCapacity: 1 << 20})
	mon := monitor.New(monitor.RegistryMeta(reg))
	v.SetHooks(mon)
	th := v.NewThread()
	a, err := th.New("a", 64)
	if err != nil {
		return nil, err
	}
	bObj, err := th.New("b", 64)
	if err != nil {
		return nil, err
	}
	if err := th.SetField(a, "b", vm.RefOf(bObj)); err != nil {
		return nil, err
	}
	if _, err := th.Invoke(a, "f"); err != nil {
		return nil, err
	}
	return mon.Graph(), nil
}
