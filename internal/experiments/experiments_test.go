package experiments

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// sharedSuite caches the (expensive) application recordings across the
// experiment shape tests.
var (
	sharedOnce  sync.Once
	sharedSuite *Suite
)

func suite() *Suite {
	sharedOnce.Do(func() { sharedSuite = NewSuite() })
	return sharedSuite
}

func TestTable1(t *testing.T) {
	rows := Table1()
	if len(rows) != 5 {
		t.Fatalf("%d rows", len(rows))
	}
	if rows[0].Name != "JavaNote" || rows[0].Description != "Simple text editor" {
		t.Fatalf("row 0 = %+v", rows[0])
	}
}

func TestTable2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	r, err := suite().Table2()
	if err != nil {
		t.Fatal(err)
	}
	s := r.Stats
	// Paper: classes 134/138/138.
	if s.ClassesMax != 138 || s.ClassEvents != 138 {
		t.Errorf("classes = %.0f/%d/%d, want ≈134/138/138", s.ClassesAvg, s.ClassesMax, s.ClassEvents)
	}
	// Paper: interactions ≪ interaction events.
	if s.LinksMax >= s.InteractionEvents/100 {
		t.Errorf("links %d not ≪ events %d", s.LinksMax, s.InteractionEvents)
	}
	if r.String() == "" || !strings.Contains(r.String(), "interactions") {
		t.Error("Table 2 rendering broken")
	}
}

func TestFigure5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	r, err := suite().Figure5()
	if err != nil {
		t.Fatal(err)
	}
	if !r.FailsWithoutOffload {
		t.Error("the unmodified 6 MB VM must fail (paper §5.1)")
	}
	if !r.Survived {
		t.Error("the offloaded run must complete")
	}
	// Paper: ~90% of the heap offloaded.
	if r.FractionOfHeap < 0.5 {
		t.Errorf("offloaded only %.0f%% of the heap; paper reports ~90%%", r.FractionOfHeap*100)
	}
	if r.OffloadClasses == 0 || r.Classes < 120 {
		t.Errorf("graph/offload sizes wrong: %+v", r)
	}
	// Paper: heuristic ~0.1 s on a 600 MHz Pentium; anything sub-second
	// here is consistent.
	if r.HeuristicTime > time.Second {
		t.Errorf("heuristic took %v", r.HeuristicTime)
	}
	if !strings.Contains(r.DOTAfter, "style=dotted") {
		t.Error("Figure 5b rendering must show cut edges dotted")
	}
}

func TestFigure6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rows, err := suite().Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	byApp := map[string]Figure6Row{}
	for _, r := range rows {
		byApp[r.App] = r
		if r.OverheadFrac < 0 {
			t.Errorf("%s overhead negative: %v", r.App, r.OverheadFrac)
		}
	}
	// Paper shape: JavaNote and Dia reasonable (<15%), Biomer much worse
	// (20–40%), and Biomer strictly the worst.
	if byApp["JavaNote"].OverheadFrac > 0.15 {
		t.Errorf("JavaNote overhead %.1f%%, want <15%% (paper 4.8%%)", byApp["JavaNote"].OverheadFrac*100)
	}
	if byApp["Dia"].OverheadFrac > 0.15 {
		t.Errorf("Dia overhead %.1f%%, want <15%% (paper 8.5%%)", byApp["Dia"].OverheadFrac*100)
	}
	b := byApp["Biomer"].OverheadFrac
	if b < 0.15 || b > 0.45 {
		t.Errorf("Biomer overhead %.1f%%, want 15–45%% (paper 27.5%%)", b*100)
	}
	if b <= byApp["JavaNote"].OverheadFrac || b <= byApp["Dia"].OverheadFrac {
		t.Error("Biomer must be the worst (paper Figure 6)")
	}
}

func TestFigure7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rows, err := suite().Figure7(true)
	if err != nil {
		t.Fatal(err)
	}
	byApp := map[string]Figure7Row{}
	for _, r := range rows {
		byApp[r.App] = r
		if r.BestOverhead > r.InitialOverhead {
			t.Errorf("%s: best (%v) worse than initial (%v)", r.App, r.BestOverhead, r.InitialOverhead)
		}
	}
	// Paper shape: policy search substantially reduces Biomer's and Dia's
	// overhead while JavaNote's stays roughly put.
	if byApp["Biomer"].ReductionFrac < 0.25 {
		t.Errorf("Biomer reduction %.0f%%, want ≥25%% (paper 30–43%%)", byApp["Biomer"].ReductionFrac*100)
	}
	if byApp["Dia"].ReductionFrac < 0.25 {
		t.Errorf("Dia reduction %.0f%%, want ≥25%% (paper 30–43%%)", byApp["Dia"].ReductionFrac*100)
	}
	if byApp["JavaNote"].ReductionFrac > 0.3 {
		t.Errorf("JavaNote reduction %.0f%%, paper found essentially none", byApp["JavaNote"].ReductionFrac*100)
	}
}

func TestFigure8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rows, err := suite().Figure8()
	if err != nil {
		t.Fatal(err)
	}
	byApp := map[string]Figure8Row{}
	for _, r := range rows {
		byApp[r.App] = r
		if r.Native > r.TotalRemote {
			t.Errorf("%s: native %d exceeds total %d", r.App, r.Native, r.TotalRemote)
		}
	}
	// Paper: native calls account for quite a large percentage for
	// JavaNote and Dia, a relatively small one for Biomer.
	if byApp["JavaNote"].NativeShare < 0.4 {
		t.Errorf("JavaNote native share %.0f%%, want large", byApp["JavaNote"].NativeShare*100)
	}
	if byApp["Dia"].NativeShare < 0.4 {
		t.Errorf("Dia native share %.0f%%, want large", byApp["Dia"].NativeShare*100)
	}
	if byApp["Biomer"].NativeShare > byApp["JavaNote"].NativeShare ||
		byApp["Biomer"].NativeShare > byApp["Dia"].NativeShare {
		t.Error("Biomer's native share must be relatively small (paper Figure 8)")
	}
}

func TestMonitoringOverheadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	r, err := suite().MonitoringOverhead()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: ~11% (31.59 s → 35.04 s).
	if r.OverheadFrac < 0.05 || r.OverheadFrac > 0.20 {
		t.Errorf("monitoring overhead %.1f%%, want ≈11%%", r.OverheadFrac*100)
	}
	if r.On <= r.Off {
		t.Error("monitoring must cost time")
	}
}

func TestFigure9Attribution(t *testing.T) {
	d, err := Figure9()
	if err != nil {
		t.Fatal(err)
	}
	if !d.Expected {
		t.Fatalf("attribution wrong: %s", d)
	}
	if d.SelfA != 20*time.Millisecond || d.SelfB != 100*time.Millisecond {
		t.Fatalf("self times: %v / %v", d.SelfA, d.SelfB)
	}
}

func TestFigure10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rows, err := suite().Figure10()
	if err != nil {
		t.Fatal(err)
	}
	byApp := map[string]Figure10Row{}
	for _, r := range rows {
		byApp[r.App] = r
	}
	// Voxel: initial no better than original; combined meaningfully
	// faster (paper: up to ~15%).
	v := byApp["Voxel"]
	if v.Initial < v.Original {
		t.Errorf("Voxel initial %v must not beat original %v", v.Initial, v.Original)
	}
	if v.Speedup() < 0.05 {
		t.Errorf("Voxel combined speedup %.1f%%, want >5%%", v.Speedup()*100)
	}
	if v.Native >= v.Initial {
		t.Error("Voxel native enhancement must improve on initial")
	}
	// Tracer: combined faster than original.
	tr := byApp["Tracer"]
	if tr.Speedup() < 0.03 {
		t.Errorf("Tracer combined speedup %.1f%%", tr.Speedup()*100)
	}
	// Biomer: the beneficial policy declines; combined equals original.
	b := byApp["Biomer"]
	if !b.Declined {
		t.Error("Biomer must decline to offload (paper §5.2)")
	}
	if b.Combined != b.Original {
		t.Errorf("declined Biomer must run locally: %v vs %v", b.Combined, b.Original)
	}
}

func TestBeneficialProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	checks, err := suite().Beneficial()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range checks {
		if c.Offloaded && c.Achieved > c.Original {
			t.Errorf("%s: offloaded but slower (%v > %v): offloading was not beneficial",
				c.App, c.Achieved, c.Original)
		}
		if !c.Offloaded && c.Achieved != c.Original {
			t.Errorf("%s: declined but time differs", c.App)
		}
	}
}

func TestAblationHeuristicsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rows, err := suite().AblationHeuristics()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.MinCutOOM {
			t.Errorf("%s: the paper's heuristic must keep the application alive", r.App)
		}
		// The KL swap pass refines the same decision: never worse.
		if !r.MinCutKLOOM && r.MinCutKL > r.MinCut+1e-9 {
			t.Errorf("%s: KL refinement worsened overhead: %.3f vs %.3f", r.App, r.MinCutKL, r.MinCut)
		}
	}
}

func TestEnergyStudyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rows, err := suite().EnergyStudy()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if r.LocalJ <= 0 || r.OffloadedJ <= 0 {
			t.Errorf("%s: degenerate energy: %+v", r.App, r)
		}
		// With an always-hot WaveLAN radio, offloading costs energy; with
		// 802.11 power save it must cost strictly less than always-on.
		if r.PSMOffloadedJ >= r.OffloadedJ {
			t.Errorf("%s: PSM did not reduce energy: %v vs %v", r.App, r.PSMOffloadedJ, r.OffloadedJ)
		}
	}
	// The CPU-bound applications must become battery-positive under PSM.
	for _, r := range rows {
		if (r.App == "Voxel" || r.App == "Tracer") && r.PSMSavingFrac <= 0 {
			t.Errorf("%s: compute offloading with PSM should save energy: %+v", r.App, r)
		}
	}
}

func TestHeapSweepShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	points, err := suite().HeapSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 5 {
		t.Fatalf("%d points", len(points))
	}
	// The smallest heap must be unrescuable; the largest must run
	// locally; 6 MiB must offload with modest overhead.
	if !points[0].OOM {
		t.Errorf("tiniest heap should OOM: %+v", points[0])
	}
	last := points[len(points)-1]
	if last.OOM || last.Offloaded {
		t.Errorf("roomiest heap should run locally: %+v", last)
	}
	for _, p := range points {
		if p.HeapMB == 6 {
			if p.OOM || !p.Offloaded || p.Overhead > 0.2 {
				t.Errorf("6 MiB point off: %+v", p)
			}
		}
	}
}

func TestLinkSweepMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	points, err := suite().LinkSweep()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(points); i++ {
		if points[i].OOM || points[i-1].OOM {
			t.Fatalf("link sweep point died: %+v", points[i])
		}
		if points[i].Overhead > points[i-1].Overhead {
			t.Errorf("overhead must not grow as the link improves: %s (%.1f%%) vs %s (%.1f%%)",
				points[i-1].Label, points[i-1].Overhead*100,
				points[i].Label, points[i].Overhead*100)
		}
	}
}
