package experiments

import (
	"fmt"
	"time"

	"aide/internal/apps"
	"aide/internal/emulator"
)

// cpuSlowdown returns the Figure 10 client-speed factor for an
// application.
func cpuSlowdown(name string) float64 {
	switch name {
	case "Voxel":
		return apps.VoxelClientSlowdown
	case "Tracer":
		return apps.TracerClientSlowdown
	default:
		return MemoryClientSlowdown
	}
}

// Figure10Row reports the five bars of Figure 10 for one application:
// original (client-only), the initial forced offload, each §5.2
// enhancement alone, and both combined under the beneficial policy.
type Figure10Row struct {
	App      string
	Original time.Duration
	Initial  time.Duration
	Native   time.Duration
	Array    time.Duration
	Combined time.Duration

	// Declined reports that the beneficial policy refused to offload in
	// the combined configuration (the paper's Biomer outcome); Predicted
	// is the policy's best predicted time and Manual the best time
	// achievable by forcing the offload anyway (paper: 790 s predicted,
	// 750 s original, 711 s manual).
	Declined  bool
	Predicted time.Duration
	Manual    time.Duration
}

// String renders a paper-style row.
func (r Figure10Row) String() string {
	s := fmt.Sprintf("%-7s original %7.0fs  initial %7.0fs  native %7.0fs  array %7.0fs  combined %7.0fs",
		r.App, r.Original.Seconds(), r.Initial.Seconds(), r.Native.Seconds(),
		r.Array.Seconds(), r.Combined.Seconds())
	if r.Declined {
		s += fmt.Sprintf("  [declined: predicted %.0fs, manual %.0fs]",
			r.Predicted.Seconds(), r.Manual.Seconds())
	}
	return s
}

// Speedup returns the combined configuration's improvement over the
// original as a fraction (positive = faster).
func (r Figure10Row) Speedup() float64 {
	if r.Original <= 0 {
		return 0
	}
	return 1 - float64(r.Combined)/float64(r.Original)
}

// Figure10 runs the §5.2 processing-constraint study: the surrogate
// executes 3.5× faster than the client, communication runs over WaveLAN,
// and offloading is evaluated without enhancements, with each enhancement
// alone, and with both combined.
func (s *Suite) Figure10() ([]Figure10Row, error) {
	names := []string{"Voxel", "Tracer", "Biomer"}
	return runAll(s.parallelism(), len(names), func(i int) (Figure10Row, error) {
		row, err := s.figure10One(names[i])
		if err != nil {
			return Figure10Row{}, err
		}
		return *row, nil
	})
}

func (s *Suite) figure10One(name string) (*Figure10Row, error) {
	spec, err := apps.ByName(name)
	if err != nil {
		return nil, err
	}
	slow := cpuSlowdown(name)

	base := emulator.Config{
		Mode:             emulator.CPUMode,
		HeapCapacity:     spec.RecordHeap,
		Link:             s.link,
		SurrogateSpeedup: 3.5,
		ClientSlowdown:   slow,
	}

	origCfg := base
	origCfg.DisableOffload = true
	orig, err := s.run(spec, origCfg)
	if err != nil {
		return nil, err
	}
	// Re-evaluate placement once a representative slice of steady-state
	// execution history exists, early enough that most of the run
	// reflects the partitioned execution (the prototype partitions once).
	base.ReevalEvery = orig.Time / 8

	type variant struct {
		stateless, array, forced bool
	}
	runVariant := func(v variant) (*emulator.Result, error) {
		cfg := base
		cfg.StatelessNativeLocal = v.stateless
		cfg.ArrayGranularity = v.array
		cfg.ForceCPUOffload = v.forced
		return s.run(spec, cfg)
	}

	// The four study variants depend only on the original run (through
	// ReevalEvery), so they replay concurrently.
	variants := []variant{
		{forced: true},
		{stateless: true, forced: true},
		{array: true, forced: true},
		{stateless: true, array: true},
	}
	res, err := runAll(s.parallelism(), len(variants), func(i int) (*emulator.Result, error) {
		return runVariant(variants[i])
	})
	if err != nil {
		return nil, err
	}
	initial, native, array, combined := res[0], res[1], res[2], res[3]

	row := &Figure10Row{
		App:      name,
		Original: orig.Time,
		Initial:  initial.Time,
		Native:   native.Time,
		Array:    array.Time,
		Combined: combined.Time,
	}
	if !combined.Offloaded {
		row.Declined = true
		for _, p := range combined.Partitions {
			if p.Rejected && p.Decision.PredictedTime > 0 {
				row.Predicted = p.Decision.PredictedTime
				break
			}
		}
		// "Manual" partitioning: force the best offload with both
		// enhancements.
		manual, err := runVariant(variant{stateless: true, array: true, forced: true})
		if err != nil {
			return nil, err
		}
		row.Manual = manual.Time
	}
	return row, nil
}

// BeneficialCheck verifies the beneficial-offloading property on one
// application: the combined-policy decision against its realized outcome.
type BeneficialCheck struct {
	App       string
	Offloaded bool
	Original  time.Duration
	Achieved  time.Duration
}

// Beneficial runs the combined configuration for every CPU-bound
// application and reports whether offloading was applied and what it
// achieved — the platform should offload exactly when it helps (paper §2,
// §5.2).
func (s *Suite) Beneficial() ([]BeneficialCheck, error) {
	var names []string
	for _, spec := range apps.All() {
		if spec.CPUBound {
			names = append(names, spec.Name)
		}
	}
	return runAll(s.parallelism(), len(names), func(i int) (BeneficialCheck, error) {
		row, err := s.figure10One(names[i])
		if err != nil {
			return BeneficialCheck{}, err
		}
		return BeneficialCheck{
			App:       names[i],
			Offloaded: !row.Declined,
			Original:  row.Original,
			Achieved:  row.Combined,
		}, nil
	})
}

// Figure9Demo reproduces the paper's Figure 9 worked example: a method
// a::f() that takes 0.12 s total but spends 0.10 s in a nested call to
// b::g() must be attributed 0.02 s of self time.
type Figure9Demo struct {
	TotalF   time.Duration
	SelfA    time.Duration
	SelfB    time.Duration
	EdgeAB   int64
	Expected bool
}

// String renders the attribution.
func (d Figure9Demo) String() string {
	return fmt.Sprintf("a::f total %v → class a self %v, class b self %v, a–b interactions %d (correct: %t)",
		d.TotalF, d.SelfA, d.SelfB, d.EdgeAB, d.Expected)
}

// Figure9 runs the worked example through the live VM and monitor.
func Figure9() (*Figure9Demo, error) {
	g, err := figure9Graph()
	if err != nil {
		return nil, err
	}
	na, okA := g.Lookup("a")
	nb, okB := g.Lookup("b")
	if !okA || !okB {
		return nil, fmt.Errorf("experiments: figure 9 classes missing")
	}
	var edge int64
	if e := g.Edge(na.ID, nb.ID); e != nil {
		edge = e.Interactions()
	}
	d := &Figure9Demo{
		TotalF: 120 * time.Millisecond,
		SelfA:  na.CPUTime,
		SelfB:  nb.CPUTime,
		EdgeAB: edge,
	}
	d.Expected = d.SelfA == 20*time.Millisecond && d.SelfB == 100*time.Millisecond && edge == 1
	return d, nil
}
