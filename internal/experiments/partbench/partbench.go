// Package partbench measures the incremental monitor→partition pipeline
// against the classic from-scratch pipeline: repartition latency versus
// class count and dirty fraction, monitor ingestion throughput versus
// stripe count under concurrent event sources, and the streaming-decay
// overhead. It lives outside the deterministic-replay packages because
// it measures wall-clock time; everything it drives (monitor, graph,
// mincut, policy) stays deterministic.
package partbench

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"aide/internal/graph"
	"aide/internal/mincut"
	"aide/internal/monitor"
	"aide/internal/policy"
	"aide/internal/vm"
)

// RepartitionPoint is one (N, dirty-fraction) measurement comparing the
// classic pipeline — Graph() clone, dense O(N²) fill, full modified
// MINCUT, policy sweep over every candidate — against the incremental
// pipeline — Delta pull, O(changed) matrix patch, warm-started local
// refinement, dense policy check.
type RepartitionPoint struct {
	N          int     `json:"classes"`
	Edges      int     `json:"edges"`
	DirtyFrac  float64 `json:"dirty_frac"`
	ClassicNs  float64 `json:"classic_ns_per_repartition"`
	IncrNs     float64 `json:"incremental_ns_per_repartition"`
	SpeedupX   float64 `json:"speedup_x"`
	WarmRounds int     `json:"warm_rounds"`
	FullRounds int     `json:"full_rounds"`

	// Equivalent records the per-point equivalence gate: after the warm
	// rounds, a forced full pass over the incrementally maintained matrix
	// must agree candidate-for-candidate with a cold run on a fresh
	// snapshot of the same graph.
	Equivalent bool `json:"incremental_equals_scratch"`
}

// workload deterministically drives a synthetic application with n
// classes through a monitor: a ring of hot neighbors plus seeded random
// chords, the usual shape of class-interaction graphs.
type workload struct {
	n   int
	rng *rand.Rand
}

func (w *workload) class(i int) string { return fmt.Sprintf("C%04d", ((i % w.n) + w.n) % w.n) }

// base feeds the initial dense history: every class gets memory and a
// few edges.
func (w *workload) base(m *monitor.Monitor) {
	for i := 0; i < w.n; i++ {
		m.OnCreate(w.class(i), vm.ObjectID(i), int64(1024+w.rng.Intn(4096)))
		m.OnInvoke(w.class(i), w.class(i+1), "m", 0, int64(64+w.rng.Intn(512)), 32, time.Microsecond, false, false)
		for k := 0; k < 4; k++ {
			j := w.rng.Intn(w.n)
			if j != i {
				m.OnAccess(w.class(i), w.class(j), 0, int64(16+w.rng.Intn(256)))
			}
		}
	}
}

// churn touches roughly dirtyFrac of the edge population: repeated
// interactions on existing pairs (the steady-state shape of a running
// application — new classes are rare, new traffic on known pairs is
// constant).
func (w *workload) churn(m *monitor.Monitor, edges int, dirtyFrac float64) {
	touches := int(float64(edges) * dirtyFrac)
	if touches < 1 {
		touches = 1
	}
	for t := 0; t < touches; t++ {
		i := w.rng.Intn(w.n)
		if w.rng.Intn(2) == 0 {
			m.OnInvoke(w.class(i), w.class(i+1), "m", 0, int64(64+w.rng.Intn(512)), 32, 0, false, false)
		} else {
			m.OnAccess(w.class(i), w.class(i+1), 0, int64(16+w.rng.Intn(256)))
		}
	}
}

// MeasureRepartition runs `rounds` repartitions at each class count,
// with churn touching dirtyFrac of edges between rounds, and reports the
// median per-round latency of both pipelines.
func MeasureRepartition(classCounts []int, dirtyFrac float64, rounds int) []RepartitionPoint {
	var out []RepartitionPoint
	for _, n := range classCounts {
		out = append(out, measureOne(n, dirtyFrac, rounds))
	}
	return out
}

func measureOne(n int, dirtyFrac float64, rounds int) RepartitionPoint {
	w := &workload{n: n, rng: rand.New(rand.NewSource(int64(n)))}
	m := monitor.New(nil)
	w.base(m)

	heap := int64(n) * 16 * 1024
	pol := policy.MemoryPolicy{MinFreeFraction: 0.05}

	// Classic pipeline state: a scratch amortizing the dense matrix, as
	// the emulator uses it today.
	var scr mincut.Scratch

	// Incremental pipeline state: matrix maintained across deltas plus
	// the dense per-class memory vector ChooseDense reads.
	var inc mincut.Incremental
	var mem []int64

	edges := m.Live().EdgeCount()
	point := RepartitionPoint{N: n, Edges: edges, DirtyFrac: dirtyFrac}

	classic := func() {
		g := m.Graph()
		in := scr.FromGraph(g, graph.BytesWeight)
		cands, err := scr.Candidates(in)
		if err != nil {
			return
		}
		_, _ = pol.Choose(g, heap, cands)
	}
	incremental := func() {
		d := m.Delta(inc.Epoch())
		for i := range d.Nodes {
			nd := &d.Nodes[i]
			for int(nd.ID) >= len(mem) {
				mem = append(mem, 0)
			}
			mem[nd.ID] = nd.Memory
		}
		inc.Update(d, graph.BytesWeight)
		cands, err := inc.Candidates()
		if err != nil {
			return
		}
		if inc.WasFull() {
			point.FullRounds++
		} else {
			point.WarmRounds++
		}
		dec, err := pol.ChooseDense(mem, heap, cands)
		if err == nil {
			inc.Commit(mincut.Candidate{InClient: dec.InClient, CutWeight: dec.CutWeight, Offloaded: dec.OffloadClasses})
		} else {
			inc.Commit(cands[len(cands)-1])
		}
	}

	// Prime both pipelines (cold start is the same O(N²) for both).
	classic()
	incremental()

	var classicNs, incrNs []float64
	for r := 0; r < rounds; r++ {
		// One churn batch per round: the classic pipeline re-derives
		// everything from it, the incremental pipeline sees exactly this
		// batch in its next delta (classic consumes no dirty state).
		w.churn(m, edges, dirtyFrac)
		t0 := time.Now()
		classic()
		classicNs = append(classicNs, float64(time.Since(t0)))

		t1 := time.Now()
		incremental()
		incrNs = append(incrNs, float64(time.Since(t1)))
	}
	point.ClassicNs = median(classicNs)
	point.IncrNs = median(incrNs)
	if point.IncrNs > 0 {
		point.SpeedupX = point.ClassicNs / point.IncrNs
	}
	point.Equivalent = equivalenceGate(m, &inc)
	return point
}

// equivalenceGate forces the incremental partitioner through its full
// pass and compares it candidate-for-candidate against a cold run on a
// fresh snapshot: the maintained matrix must have drifted nowhere.
func equivalenceGate(m *monitor.Monitor, inc *mincut.Incremental) bool {
	d := m.Delta(inc.Epoch())
	inc.Update(d, graph.BytesWeight)
	got, err := inc.FullCandidates()
	if err != nil {
		return false
	}
	want, err := mincut.Candidates(mincut.FromGraph(m.Graph(), graph.BytesWeight))
	if err != nil || len(got) != len(want) {
		return false
	}
	for i := range want {
		if got[i].CutWeight != want[i].CutWeight || got[i].Offloaded != want[i].Offloaded {
			return false
		}
		for v := range want[i].InClient {
			if got[i].InClient[v] != want[i].InClient[v] {
				return false
			}
		}
	}
	return true
}

// IngestionPoint is one sustained monitor-pipeline throughput
// measurement: `sources` goroutines feed events while one of them pulls
// a partitioner snapshot every SnapshotEvery events — the steady state
// of high-frequency repartitioning. The legacy design's snapshot is a
// full O(N+E) Clone under the global ingestion mutex; the striped
// design's is an O(changed) delta pull, so ingestion throughput holds as
// N grows.
type IngestionPoint struct {
	// Design names the ingestion implementation: "legacy" is the
	// pre-incremental monitor (one global mutex around direct graph
	// mutation and a fieldHeat map, full-clone snapshots), "striped-K"
	// the delta-buffering monitor with K shards and delta snapshots.
	Design        string  `json:"design"`
	Shards        int     `json:"shards"`
	Sources       int     `json:"sources"`
	Events        int     `json:"events"`
	SnapshotEvery int     `json:"snapshot_every_events"`
	Snapshots     int     `json:"snapshots"`
	EventsPerSec  float64 `json:"events_per_sec"`
}

// hotPairs is the size of the skewed workload's hot set: real
// applications hammer a few class pairs while the rest of the graph
// stays quiet, which is precisely the regime delta snapshots exploit.
const hotPairs = 32

// skewedEvent feeds one event of the 90/10 skewed mix through hooks
// shared by both monitor designs.
type eventSink interface {
	OnInvoke(caller, callee, method string, obj vm.ObjectID, argBytes, retBytes int64, selfTime time.Duration, native, stateless bool)
	OnAccess(from, to string, obj vm.ObjectID, bytes int64)
	OnCreate(class string, obj vm.ObjectID, size int64)
	OnFieldAccess(class, field string, bytes int64)
}

func skewedEvent(m eventSink, names []string, i int) {
	classes := len(names)
	var a, b string
	if i%10 != 0 {
		h := i % hotPairs
		a, b = names[h], names[h+1]
	} else {
		r := (i * 2654435761) % classes
		a, b = names[r], names[(r*7+1)%classes]
	}
	switch i & 3 {
	case 0:
		m.OnInvoke(a, b, "m", vm.ObjectID(i), 64, 16, 0, false, false)
	case 1:
		m.OnAccess(a, b, vm.ObjectID(i), 32)
	case 2:
		m.OnCreate(a, vm.ObjectID(i), 128)
	case 3:
		m.OnFieldAccess(a, "f", 8)
	}
}

// prepopulate gives both designs the same full-size starting graph, so
// snapshots cost their steady-state O(N+E) (legacy) vs O(changed)
// (striped) from the first pull.
func prepopulate(m eventSink, names []string) {
	for i := range names {
		m.OnCreate(names[i], vm.ObjectID(i), 1024)
		m.OnInvoke(names[i], names[(i*7+1)%len(names)], "m", 0, 64, 16, 0, false, false)
		m.OnAccess(names[i], names[(i+1)%len(names)], 0, 32)
	}
}

// MeasureIngestion runs the sustained-pipeline measurement for the
// legacy monitor and for striped monitors with each stripe count.
func MeasureIngestion(shardCounts []int, sources, events, classes, snapEvery int) []IngestionPoint {
	names := make([]string, classes)
	for i := range names {
		names[i] = fmt.Sprintf("C%04d", i)
	}

	lm := newLegacy()
	prepopulate(lm, names)
	snaps := 0
	t0 := time.Now()
	ingest(lm, names, sources, events, snapEvery, func() {
		g := lm.Graph() // legacy repartition input: full deep copy
		_ = g
		snaps++
	})
	out := []IngestionPoint{{
		Design: "legacy", Shards: 1, Sources: sources, Events: events,
		SnapshotEvery: snapEvery, Snapshots: snaps,
		EventsPerSec: float64(events) / time.Since(t0).Seconds(),
	}}

	for _, shards := range shardCounts {
		m := monitor.New(nil, monitor.WithShards(shards))
		prepopulate(m, names)
		m.Flush()
		var epoch int64
		snaps := 0
		t0 := time.Now()
		ingest(m, names, sources, events, snapEvery, func() {
			d := m.Delta(epoch) // incremental repartition input: changes only
			epoch = d.Epoch
			snaps++
		})
		out = append(out, IngestionPoint{
			Design: fmt.Sprintf("striped-%d", shards), Shards: shards,
			Sources: sources, Events: events,
			SnapshotEvery: snapEvery, Snapshots: snaps,
			EventsPerSec: float64(events) / time.Since(t0).Seconds(),
		})
	}
	return out
}

// ingest drives the sink from `sources` goroutines, joined before
// returning; source 0 pulls a snapshot every snapEvery of its events,
// interleaving the consumer with ingestion exactly as the platform's
// repartition loop does. Class names are precomputed so the measurement
// isolates the monitor's ingestion path (the VM hands it interned
// strings, not formatting work).
func ingest(m eventSink, names []string, sources, events, snapEvery int, snap func()) {
	// snapEvery is a global interval; source 0 triggers on its share.
	localEvery := snapEvery / sources
	if localEvery < 1 {
		localEvery = 1
	}
	var wg sync.WaitGroup
	for s := 0; s < sources; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			n := 0
			for i := s; i < events; i += sources {
				skewedEvent(m, names, i)
				n++
				if s == 0 && snap != nil && n%localEvery == 0 {
					snap()
				}
			}
		}(s)
	}
	wg.Wait()
}

// DecayPoint compares ingestion+flush cost with streaming decay off and
// on: the marginal price of aging edge weights.
type DecayPoint struct {
	Events       int     `json:"events"`
	PlainNs      float64 `json:"plain_ns_per_event"`
	DecayNs      float64 `json:"decay_ns_per_event"`
	OverheadFrac float64 `json:"decay_overhead_frac"`
}

// MeasureDecay measures serial ingestion with periodic flushes, decay
// disabled versus enabled.
func MeasureDecay(events, classes, flushEvery int) DecayPoint {
	run := func(opts ...monitor.Option) float64 {
		m := monitor.New(nil, opts...)
		t0 := time.Now()
		for i := 0; i < events; i++ {
			a := fmt.Sprintf("C%04d", i%classes)
			b := fmt.Sprintf("C%04d", (i*7+1)%classes)
			m.OnAccess(a, b, vm.ObjectID(i), 64)
			if i%flushEvery == flushEvery-1 {
				m.Flush()
			}
		}
		m.Flush()
		return float64(time.Since(t0)) / float64(events)
	}
	p := DecayPoint{Events: events}
	p.PlainNs = run()
	p.DecayNs = run(monitor.WithDecay(float64(events) / 4))
	if p.PlainNs > 0 {
		p.OverheadFrac = p.DecayNs/p.PlainNs - 1
	}
	return p
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return s[len(s)/2]
}
