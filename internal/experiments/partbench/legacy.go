package partbench

import (
	"sync"
	"time"

	"aide/internal/graph"
	"aide/internal/vm"
)

// legacyMonitor reproduces the pre-incremental monitor's ingestion path
// — one global mutex around direct execution-graph mutation, counters,
// and the fieldHeat map — as the measured baseline for the striped
// design. It implements just enough of vm.Hooks for the ingestion
// benchmark; snapshotting (the old full Clone per repartition) is
// measured separately on the repartition axis.
type legacyMonitor struct {
	mu        sync.Mutex
	g         *graph.Graph
	inv, acc  int64
	creates   int64
	fieldHeat map[fieldKey]int64
}

type fieldKey struct{ class, field string }

func newLegacy() *legacyMonitor {
	return &legacyMonitor{g: graph.New(), fieldHeat: make(map[fieldKey]int64)}
}

// Graph is the legacy snapshot path: a full deep copy under the global
// mutex, O(N+E) regardless of how little changed.
func (m *legacyMonitor) Graph() *graph.Graph {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.g.Clone()
}

func (m *legacyMonitor) OnInvoke(caller, callee, method string, obj vm.ObjectID, argBytes, retBytes int64, selfTime time.Duration, native, stateless bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	cn := m.g.Intern(callee)
	cn.CPUTime += selfTime
	m.inv++
	if caller != "" && caller != callee {
		from := m.g.Intern(caller)
		m.g.AddInvocation(from.ID, cn.ID, argBytes+retBytes)
	}
}

func (m *legacyMonitor) OnAccess(from, to string, obj vm.ObjectID, bytes int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.acc++
	tn := m.g.Intern(to)
	if from != "" && from != to {
		fn := m.g.Intern(from)
		m.g.AddAccess(fn.ID, tn.ID, bytes)
	}
}

func (m *legacyMonitor) OnCreate(class string, obj vm.ObjectID, size int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.creates++
	n := m.g.Intern(class)
	m.g.AddObject(n.ID, size)
}

func (m *legacyMonitor) OnFieldAccess(class, field string, bytes int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.fieldHeat[fieldKey{class, field}]++
}
