package partbench

import "testing"

// TestRepartitionEquivalenceGate runs the smallest real measurement and
// requires the per-point equivalence gate to hold: the incrementally
// maintained pipeline, forced through its full pass, must agree with a
// from-scratch partition of the same graph.
func TestRepartitionEquivalenceGate(t *testing.T) {
	points := MeasureRepartition([]int{60}, 0.05, 2)
	for _, p := range points {
		if !p.Equivalent {
			t.Fatalf("N=%d: incremental != from-scratch partition", p.N)
		}
		if p.WarmRounds == 0 {
			t.Fatalf("N=%d: no round took the warm path (dirty=%v)", p.N, p.DirtyFrac)
		}
	}
}

// TestIngestionPipelines exercises legacy and striped sustained-pipeline
// measurement end to end (throughput numbers are hardware-dependent and
// not asserted).
func TestIngestionPipelines(t *testing.T) {
	points := MeasureIngestion([]int{2}, 4, 20000, 64, 2000)
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.EventsPerSec <= 0 || p.Snapshots == 0 {
			t.Fatalf("%s: events/s=%v snapshots=%d", p.Design, p.EventsPerSec, p.Snapshots)
		}
	}
}

// TestDecayMeasurement exercises the decay-overhead comparison.
func TestDecayMeasurement(t *testing.T) {
	p := MeasureDecay(20000, 64, 1024)
	if p.PlainNs <= 0 || p.DecayNs <= 0 {
		t.Fatalf("decay point = %+v", p)
	}
}
