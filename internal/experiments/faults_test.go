package experiments

import (
	"testing"
	"time"
)

func TestFaultToleranceSweepCompletes(t *testing.T) {
	points, err := FaultToleranceSweep()
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	if len(points) != 15 {
		t.Fatalf("sweep produced %d points, want 15 (5 profiles x 3 rates)", len(points))
	}
	injected := int64(0)
	for _, p := range points {
		if p.Calls != 120 {
			t.Fatalf("point %s@%.2f completed %d calls, want 120", p.Profile, p.Rate, p.Calls)
		}
		injected += p.Injected
	}
	if injected == 0 {
		t.Fatal("the sweep injected no faults at all; the study measures nothing")
	}
}

func TestRecoveryStudyMeasuresSevers(t *testing.T) {
	st, err := RecoveryStudy(time.Now, 12)
	if err != nil {
		t.Fatalf("recovery study: %v", err)
	}
	if st.Runs != 12 {
		t.Fatalf("Runs = %d, want 12", st.Runs)
	}
	if st.Recovered == 0 {
		t.Fatal("no run recovered from a sever; the sever points never landed")
	}
	if st.MinNs <= 0 || st.MaxNs < st.MedianNs || st.MedianNs < st.MinNs {
		t.Fatalf("latency ordering broken: min %v median %v max %v", st.MinNs, st.MedianNs, st.MaxNs)
	}
}
