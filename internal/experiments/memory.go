package experiments

import (
	"fmt"
	"strings"
	"time"

	"aide/internal/apps"
	"aide/internal/emulator"
	"aide/internal/graph"
	"aide/internal/mincut"
	"aide/internal/monitor"
	"aide/internal/policy"
	"aide/internal/trace"
)

// Table1Row is one application-catalog entry (paper Table 1).
type Table1Row struct {
	Name        string
	Description string
	Profile     string
}

// Table1 reproduces the application catalog.
func Table1() []Table1Row {
	specs := apps.All()
	rows := make([]Table1Row, len(specs))
	for i, s := range specs {
		rows[i] = Table1Row{Name: s.Name, Description: s.Description, Profile: s.Profile}
	}
	return rows
}

// Table2Result reports JavaNote's execution metrics (paper Table 2).
type Table2Result struct {
	Stats trace.Stats
}

// String renders the paper's three-row table.
func (r Table2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %10s %10s %14s\n", "", "average", "maximum", "total events")
	fmt.Fprintf(&b, "%-14s %10.0f %10d %14d\n", "classes", r.Stats.ClassesAvg, r.Stats.ClassesMax, r.Stats.ClassEvents)
	fmt.Fprintf(&b, "%-14s %10.0f %10d %14d\n", "objects", r.Stats.ObjectsAvg, r.Stats.ObjectsMax, r.Stats.ObjectEvents)
	fmt.Fprintf(&b, "%-14s %10.0f %10d %14d\n", "interactions", r.Stats.LinksAvg, r.Stats.LinksMax, r.Stats.InteractionEvents)
	return b.String()
}

// Table2 computes the execution metrics of the JavaNote scenario.
func (s *Suite) Table2() (*Table2Result, error) {
	t, err := s.Trace("JavaNote")
	if err != nil {
		return nil, err
	}
	return &Table2Result{Stats: trace.ComputeStats(t)}, nil
}

// Figure5Result captures the JavaNote execution graph at the moment memory
// runs out and the partitioning that rescues it (paper Figure 5, §5.1
// "Avoiding Memory Constraints").
type Figure5Result struct {
	// Classes and Links describe the execution graph's size.
	Classes int
	Links   int

	// LiveBytes is the live heap at partition time; OffloadBytes is what
	// the partitioning moved; FractionOfLive and FractionOfHeap relate
	// them (the paper reports ~90% of the heap offloaded).
	LiveBytes      int64
	OffloadBytes   int64
	FractionOfLive float64
	FractionOfHeap float64

	// OffloadClasses counts classes moved to the surrogate.
	OffloadClasses int

	// PredictedBandwidthBps is the interaction bandwidth the history
	// predicts for the cut (paper: ~100 KB/s).
	PredictedBandwidthBps float64

	// HeuristicTime is the wall-clock cost of generating and scoring the
	// candidate partitionings (paper: ~0.1 s on a 600 MHz Pentium).
	HeuristicTime time.Duration

	// Survived reports that the run completed after offloading, and
	// FailsWithoutOffload that the same heap kills the unmodified run.
	Survived            bool
	FailsWithoutOffload bool

	// DOTBefore and DOTAfter render Figures 5a/5b in Graphviz format.
	DOTBefore, DOTAfter string
}

// String summarizes the rescue.
func (r Figure5Result) String() string {
	return fmt.Sprintf(
		"graph: %d classes, %d links; offloaded %d classes, %.0f KB (%.0f%% of live heap, %.0f%% of capacity); predicted bandwidth %.0f KB/s; heuristic %v; unmodified VM fails: %t; offloaded run survives: %t",
		r.Classes, r.Links, r.OffloadClasses, float64(r.OffloadBytes)/1024,
		r.FractionOfLive*100, r.FractionOfHeap*100,
		r.PredictedBandwidthBps/1024, r.HeuristicTime.Round(time.Millisecond),
		r.FailsWithoutOffload, r.Survived)
}

// Figure5 runs the JavaNote out-of-memory rescue on the constrained heap.
func (s *Suite) Figure5() (*Figure5Result, error) {
	spec, err := apps.ByName("JavaNote")
	if err != nil {
		return nil, err
	}
	t, err := s.cache.Get(spec)
	if err != nil {
		return nil, err
	}

	// The unmodified VM: same constrained heap, no offloading.
	orig, err := emulator.Run(t, emulator.Config{
		Mode:           emulator.MemoryMode,
		HeapCapacity:   spec.EmuHeap,
		Link:           s.link,
		ClientSlowdown: MemoryClientSlowdown,
		DisableOffload: true,
	})
	if err != nil {
		return nil, err
	}

	// The platform: offloads when the trigger fires.
	res, err := emulator.Run(t, s.memoryConfig(spec, policy.InitialParams()))
	if err != nil {
		return nil, err
	}
	if !res.Offloaded || len(res.Partitions) == 0 {
		return nil, fmt.Errorf("experiments: figure 5: JavaNote did not partition")
	}
	part := res.Partitions[0]

	// Rebuild the graph at the partition point to render Figure 5a/5b and
	// time the heuristic.
	g, err := graphAt(t, part.EventIndex)
	if err != nil {
		return nil, err
	}
	start := s.now()
	cands, err := mincut.Candidates(mincut.FromGraph(g, graph.BytesWeight))
	if err != nil {
		return nil, err
	}
	mp := policy.MemoryPolicy{MinFreeFraction: policy.InitialParams().MinFreeFraction}
	dec, err := mp.Choose(g, spec.EmuHeap, cands)
	heuristic := s.now().Sub(start)
	if err != nil {
		return nil, fmt.Errorf("experiments: figure 5 repartition: %w", err)
	}

	offloaded := make(map[graph.NodeID]bool)
	for _, n := range g.Nodes() {
		if !dec.InClient[n.ID] {
			offloaded[n.ID] = true
		}
	}
	live := g.TotalMemory()
	r := &Figure5Result{
		Classes:               g.Len(),
		Links:                 g.EdgeCount(),
		LiveBytes:             live,
		OffloadBytes:          part.TransferBytes,
		OffloadClasses:        dec.OffloadClasses,
		PredictedBandwidthBps: part.PredictedBandwidthBps,
		HeuristicTime:         heuristic,
		Survived:              !res.OOM,
		FailsWithoutOffload:   orig.OOM,
		DOTBefore:             g.DOT(nil),
		DOTAfter:              g.DOT(offloaded),
	}
	if live > 0 {
		r.FractionOfLive = float64(part.TransferBytes) / float64(live)
	}
	r.FractionOfHeap = float64(part.TransferBytes) / float64(spec.EmuHeap)
	return r, nil
}

// graphAt replays the trace's first n events into a fresh monitor and
// returns the execution graph, with class metadata applied.
func graphAt(t *trace.Trace, n int) (*graph.Graph, error) {
	if n > len(t.Events) {
		n = len(t.Events)
	}
	m := monitor.New(nil)
	for i := 0; i < n; i++ {
		m.Feed(t, &t.Events[i])
	}
	return m.Graph(), nil
}

// Figure6Row is one bar pair of Figure 6: original execution time and the
// remote-execution overhead added by offloading under the initial policy.
type Figure6Row struct {
	App          string
	Original     time.Duration
	Offloaded    time.Duration
	OverheadFrac float64
}

// String renders a paper-style row.
func (r Figure6Row) String() string {
	return fmt.Sprintf("%-9s original %8.1fs  offloaded %8.1fs  overhead %5.1f%%",
		r.App, r.Original.Seconds(), r.Offloaded.Seconds(), r.OverheadFrac*100)
}

// memoryApps are the three memory-study applications of §5.1.
var memoryApps = []string{"JavaNote", "Dia", "Biomer"}

// Figure6 measures the remote-execution overhead of the initial policy
// (threshold 5%, three reports, free ≥20%) for the three memory-study
// applications. The three applications replay concurrently.
func (s *Suite) Figure6() ([]Figure6Row, error) {
	return runAll(s.parallelism(), len(memoryApps), func(i int) (Figure6Row, error) {
		row, _, err := s.figure6One(memoryApps[i], policy.InitialParams())
		if err != nil {
			return Figure6Row{}, err
		}
		return *row, nil
	})
}

func (s *Suite) figure6One(name string, params policy.Params) (*Figure6Row, *emulator.Result, error) {
	spec, err := apps.ByName(name)
	if err != nil {
		return nil, nil, err
	}
	// The original and offloaded replays are independent.
	res, err := runAll(s.parallelism(), 2, func(i int) (*emulator.Result, error) {
		if i == 0 {
			return s.run(spec, s.originalConfig(spec))
		}
		return s.run(spec, s.memoryConfig(spec, params))
	})
	if err != nil {
		return nil, nil, err
	}
	orig, off := res[0], res[1]
	if orig.OOM {
		return nil, nil, fmt.Errorf("experiments: %s original run must not exhaust the record heap", name)
	}
	if off.OOM {
		return nil, nil, fmt.Errorf("experiments: %s offloaded run died of OOM", name)
	}
	return &Figure6Row{
		App:          name,
		Original:     orig.Time,
		Offloaded:    off.Time,
		OverheadFrac: off.Overhead(orig.Time),
	}, off, nil
}

// Figure7Row compares the initial policy against the best policy found by
// the parameter sweep for one application.
type Figure7Row struct {
	App             string
	Original        time.Duration
	InitialOverhead float64
	BestOverhead    float64
	BestParams      policy.Params

	// ReductionFrac is how much of the initial overhead the best policy
	// removes (the paper reports 30–43% for Biomer and Dia, none for
	// JavaNote).
	ReductionFrac float64
}

// String renders a paper-style row.
func (r Figure7Row) String() string {
	return fmt.Sprintf("%-9s initial %5.1f%%  best %5.1f%% (%s)  overhead reduced %4.1f%%",
		r.App, r.InitialOverhead*100, r.BestOverhead*100, r.BestParams, r.ReductionFrac*100)
}

// Figure7 sweeps the policy space for the three memory-study applications.
// When coarse is true, a reduced grid (the corner points of each axis)
// keeps the sweep cheap for tests; the full grid matches the paper's
// ranges (trigger 2–50%, tolerance 1–3, min-free 10–80%).
func (s *Suite) Figure7(coarse bool) ([]Figure7Row, error) {
	space := policy.SweepSpace()
	if coarse {
		space = []policy.Params{
			{TriggerFreeFraction: 0.05, Tolerance: 3, MinFreeFraction: 0.20},
			{TriggerFreeFraction: 0.05, Tolerance: 3, MinFreeFraction: 0.10},
			{TriggerFreeFraction: 0.05, Tolerance: 1, MinFreeFraction: 0.10},
			{TriggerFreeFraction: 0.50, Tolerance: 1, MinFreeFraction: 0.10},
			{TriggerFreeFraction: 0.02, Tolerance: 3, MinFreeFraction: 0.40},
		}
	}
	return runAll(s.parallelism(), len(memoryApps), func(i int) (Figure7Row, error) {
		row, err := s.figure7One(memoryApps[i], space)
		if err != nil {
			return Figure7Row{}, err
		}
		return *row, nil
	})
}

// figure7One sweeps the policy space for one application. Every replay —
// the original, the initial policy, and each sweep point — is independent,
// so the whole grid fans out to the worker pool; the best-policy reduction
// then walks the results in sweep order, which keeps the selected
// parameters (ties break toward the earlier grid point, exactly as the
// serial loop did) independent of completion order.
func (s *Suite) figure7One(name string, space []policy.Params) (*Figure7Row, error) {
	spec, err := apps.ByName(name)
	if err != nil {
		return nil, err
	}
	// Jobs: 0 = original, 1 = initial policy, 2+k = sweep point k.
	res, err := runAll(s.parallelism(), 2+len(space), func(i int) (*emulator.Result, error) {
		switch i {
		case 0:
			return s.run(spec, s.originalConfig(spec))
		case 1:
			return s.run(spec, s.memoryConfig(spec, policy.InitialParams()))
		default:
			return s.run(spec, s.memoryConfig(spec, space[i-2]))
		}
	})
	if err != nil {
		return nil, err
	}
	orig, initial := res[0], res[1]
	if orig.OOM {
		return nil, fmt.Errorf("experiments: %s original run must not exhaust the record heap", name)
	}
	if initial.OOM {
		return nil, fmt.Errorf("experiments: %s offloaded run died of OOM", name)
	}
	best := initial.Overhead(orig.Time)
	bestParams := policy.InitialParams()
	for k, p := range space {
		off := res[2+k]
		if off.OOM {
			continue // an unusable policy: the application died
		}
		if o := off.Overhead(orig.Time); o < best {
			best = o
			bestParams = p
		}
	}
	row := &Figure7Row{
		App:             name,
		Original:        orig.Time,
		InitialOverhead: initial.Overhead(orig.Time),
		BestOverhead:    best,
		BestParams:      bestParams,
	}
	if row.InitialOverhead > 0 {
		row.ReductionFrac = (row.InitialOverhead - row.BestOverhead) / row.InitialOverhead
	}
	return row, nil
}

// Figure8Row counts remote invocations and the subset leading to native
// calls for one application (paper Figure 8).
type Figure8Row struct {
	App         string
	TotalRemote int64
	Native      int64
	NativeShare float64
}

// String renders a paper-style row.
func (r Figure8Row) String() string {
	return fmt.Sprintf("%-9s remote invocations %6d  leading to native calls %6d (%4.1f%%)",
		r.App, r.TotalRemote, r.Native, r.NativeShare*100)
}

// Figure8 measures native-call pressure under the initial policy.
func (s *Suite) Figure8() ([]Figure8Row, error) {
	return runAll(s.parallelism(), len(memoryApps), func(i int) (Figure8Row, error) {
		name := memoryApps[i]
		_, off, err := s.figure6One(name, policy.InitialParams())
		if err != nil {
			return Figure8Row{}, err
		}
		row := Figure8Row{App: name, TotalRemote: off.RemoteInvocations, Native: off.RemoteNative}
		if row.TotalRemote > 0 {
			row.NativeShare = float64(row.Native) / float64(row.TotalRemote)
		}
		return row, nil
	})
}

// MonitoringResult reports the §5.1 monitoring-overhead measurement: the
// JavaNote scenario with monitoring off and on (paper: 31.59 s → 35.04 s,
// ≈11%).
type MonitoringResult struct {
	Off, On      time.Duration
	OverheadFrac float64
	Events       int64
}

// String renders the measurement.
func (r MonitoringResult) String() string {
	return fmt.Sprintf("monitoring off %.2fs, on %.2fs: overhead %.1f%% over %d events",
		r.Off.Seconds(), r.On.Seconds(), r.OverheadFrac*100, r.Events)
}

// MonitoringOverhead replays JavaNote on an unconstrained 8 MB-class heap
// (PC speed) with and without the per-event monitoring charge.
func (s *Suite) MonitoringOverhead() (*MonitoringResult, error) {
	spec, err := apps.ByName("JavaNote")
	if err != nil {
		return nil, err
	}
	base := emulator.Config{
		Mode:           emulator.MemoryMode,
		HeapCapacity:   spec.RecordHeap,
		Link:           s.link,
		ClientSlowdown: 1, // the monitoring study ran on the 600 MHz PC
		DisableOffload: true,
	}
	off, err := s.run(spec, base)
	if err != nil {
		return nil, err
	}
	withCfg := base
	withCfg.MonitorCostPerEvent = MonitorCostPerEvent
	on, err := s.run(spec, withCfg)
	if err != nil {
		return nil, err
	}
	res := &MonitoringResult{Off: off.Time, On: on.Time, Events: on.Events}
	if off.Time > 0 {
		res.OverheadFrac = float64(on.Time-off.Time) / float64(off.Time)
	}
	return res, nil
}
