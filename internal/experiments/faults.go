package experiments

// Disconnection study: the paper's central robustness claim (§2, §7) is
// that a client keeps working when the surrogate vanishes — execution
// degrades to the local heap instead of crashing. This module measures
// that claim on the live platform (vm + remote + faults, no emulator):
// first the cost of staying correct under lossy links, then the latency
// of recovering from a hard sever.

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"aide/internal/faults"
	"aide/internal/remote"
	"aide/internal/vm"
)

// FaultPoint is one profile/rate cell of the fault-tolerance sweep: a
// serial counter workload (inherently non-idempotent, so a duplicated or
// lost execution is detectable) run to completion through an injector.
type FaultPoint struct {
	Profile     string  `json:"profile"`
	Rate        float64 `json:"rate"`
	Calls       int     `json:"calls"`
	SendRetries int64   `json:"send_retries"`
	Injected    int64   `json:"injected_faults"`
	DedupeDrops int64   `json:"surrogate_dedupe_drops"`
}

// String renders a sweep point.
func (p FaultPoint) String() string {
	return fmt.Sprintf("%-8s rate %4.2f: %3d calls exact, %3d send retries, %3d faults injected, %2d dup frames dropped",
		p.Profile, p.Rate, p.Calls, p.SendRetries, p.Injected, p.DedupeDrops)
}

// RecoveryStats aggregates the sever-recovery measurements: the link is
// hard-severed at a seeded random send, and recovery latency is the
// duration of the first application call that rides through the failure
// — timeout detection, stub reclamation, and local re-execution
// included.
type RecoveryStats struct {
	Runs      int           `json:"runs"`
	Recovered int           `json:"recovered"`
	MinNs     time.Duration `json:"min_ns"`
	MedianNs  time.Duration `json:"median_ns"`
	MaxNs     time.Duration `json:"max_ns"`
}

// String renders the aggregate.
func (r RecoveryStats) String() string {
	return fmt.Sprintf("sever recovery over %d runs (%d hit mid-workload): min %v  median %v  max %v",
		r.Runs, r.Recovered, r.MinNs, r.MedianNs, r.MaxNs)
}

// faultRig is a minimal live platform: one client VM talking to one
// surrogate VM through a fault-injecting transport.
type faultRig struct {
	client, surrogate *vm.VM
	pc, ps            *remote.Peer
	inj               *faults.Transport
}

func counterRegistry() (*vm.Registry, error) {
	reg := vm.NewRegistry()
	_, err := reg.Register(vm.ClassSpec{
		Name:   "Counter",
		Fields: []string{"n"},
		Methods: []vm.MethodSpec{
			{Name: "inc", Body: func(th *vm.Thread, self vm.ObjectID, args []vm.Value) (vm.Value, error) {
				cur, err := th.GetField(self, "n")
				if err != nil {
					return vm.Nil(), err
				}
				n := cur.I + 1
				return vm.Int(n), th.SetField(self, "n", vm.Int(n))
			}},
		},
	})
	if err != nil {
		return nil, err
	}
	return reg, nil
}

func newFaultRig(prof faults.Profile, opts remote.Options) (*faultRig, error) {
	reg, err := counterRegistry()
	if err != nil {
		return nil, err
	}
	client := vm.New(reg, vm.Config{Role: vm.RoleClient, HeapCapacity: 1 << 20})
	surrogate := vm.New(reg, vm.Config{Role: vm.RoleSurrogate, HeapCapacity: 8 << 20})
	ct, st := remote.NewChannelPair()
	inj := faults.Wrap(ct, prof)
	pc := remote.NewPeer(client, inj, opts)
	ps := remote.NewPeer(surrogate, st, remote.Options{Workers: 2})
	return &faultRig{client: client, surrogate: surrogate, pc: pc, ps: ps, inj: inj}, nil
}

// close tears the rig down; teardown errors caused by the injected
// failure itself (the link is already dead) are expected and swallowed.
func (r *faultRig) close() error {
	for _, err := range []error{r.pc.Close(), r.ps.Close()} {
		if err != nil &&
			!errors.Is(err, remote.ErrClosed) &&
			!errors.Is(err, remote.ErrDisconnected) &&
			!errors.Is(err, faults.ErrSevered) {
			return err
		}
	}
	return nil
}

// profileFor builds the injector profile for one sweep cell.
func profileFor(kind string, rate float64, seed int64) faults.Profile {
	p := faults.Profile{Seed: seed}
	switch kind {
	case "drop":
		p.DropRate = rate
	case "dup":
		p.DupRate = rate
	case "delay":
		p.DelayRate = rate
		p.DelayMax = 500 * time.Microsecond
	case "corrupt":
		p.CorruptRate = rate
	case "mixed":
		p.DropRate = rate / 4
		p.DupRate = rate / 4
		p.DelayRate = rate / 4
		p.CorruptRate = rate / 4
		p.DelayMax = 500 * time.Microsecond
	}
	return p
}

// FaultToleranceSweep runs the counter workload under each fault profile
// and rate, requiring every call to return its exact sequence value:
// retries and the dedupe window must hide the faults completely, so the
// sweep quantifies the cost of correctness (retries) rather than an
// error rate, which must stay zero.
func FaultToleranceSweep() ([]FaultPoint, error) {
	const calls = 120
	kinds := []string{"drop", "dup", "delay", "corrupt", "mixed"}
	rates := []float64{0.05, 0.15, 0.30}
	var points []FaultPoint
	for ki, kind := range kinds {
		for ri, rate := range rates {
			seed := int64(0xFA17 + 100*ki + ri)
			rig, err := newFaultRig(profileFor(kind, rate, seed), remote.Options{
				Workers:   2,
				RetryMax:  14,
				RetryBase: 100 * time.Microsecond,
			})
			if err != nil {
				return nil, err
			}
			err = runCounterWorkload(rig, calls)
			ist, cst, sst := rig.inj.Stats(), rig.pc.Stats(), rig.ps.Stats()
			if cerr := rig.close(); err == nil {
				err = cerr
			}
			if err != nil {
				return nil, fmt.Errorf("fault sweep %s@%.2f: %w", kind, rate, err)
			}
			points = append(points, FaultPoint{
				Profile:     kind,
				Rate:        rate,
				Calls:       calls,
				SendRetries: cst.SendRetries,
				Injected:    ist.Dropped + ist.Duplicated + ist.Delayed + ist.Corrupted,
				DedupeDrops: sst.DuplicatesDropped,
			})
		}
	}
	return points, nil
}

// runCounterWorkload offloads one counter and runs serial incs, checking
// the exactly-once sequence invariant.
func runCounterWorkload(rig *faultRig, calls int) error {
	th := rig.client.NewThread()
	id, err := th.New("Counter", 4096)
	if err != nil {
		return err
	}
	rig.client.SetRoot("ctr", id)
	if _, _, err := rig.pc.Offload([]string{"Counter"}); err != nil {
		return fmt.Errorf("offload: %w", err)
	}
	for i := 1; i <= calls; i++ {
		ret, err := th.Invoke(id, "inc")
		if err != nil {
			return fmt.Errorf("inc %d: %w", i, err)
		}
		if ret.I != int64(i) {
			return fmt.Errorf("inc %d returned %d: lost or duplicated execution", i, ret.I)
		}
	}
	return nil
}

// RecoveryStudy severs the link hard at a seeded random send and times
// the first call that crosses the failure: from the invoke that finds
// the link dead to its successful local-fallback return. The clock is
// injected so the deterministic-replay lint holds; callers pass
// time.Now.
func RecoveryStudy(now func() time.Time, runs int) (RecoveryStats, error) {
	rng := rand.New(rand.NewSource(0x0A1DE))
	stats := RecoveryStats{Runs: runs}
	var latencies []time.Duration
	for run := 0; run < runs; run++ {
		severAt := 1 + rng.Int63n(40)
		d, recovered, err := recoveryRun(now, severAt)
		if err != nil {
			return RecoveryStats{}, fmt.Errorf("recovery run %d (sever@%d): %w", run, severAt, err)
		}
		if recovered {
			latencies = append(latencies, d)
		}
	}
	stats.Recovered = len(latencies)
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		stats.MinNs = latencies[0]
		stats.MedianNs = latencies[len(latencies)/2]
		stats.MaxNs = latencies[len(latencies)-1]
	}
	return stats, nil
}

// recoveryRun executes one sever iteration and returns the recovery
// latency if the sever landed inside the workload (a sever point beyond
// the run's traffic never fires and yields recovered=false).
func recoveryRun(now func() time.Time, severAt int64) (d time.Duration, recovered bool, err error) {
	rig, err := newFaultRig(faults.Profile{SeverAfter: severAt}, remote.Options{
		Workers:     2,
		RetryMax:    2,
		RetryBase:   50 * time.Microsecond,
		CallTimeout: 2 * time.Second,
	})
	if err != nil {
		return 0, false, err
	}
	defer func() {
		// A second close on an already-severed rig cannot fail harder
		// than the sever the run is about.
		if cerr := rig.close(); cerr != nil && err == nil {
			err = cerr
		}
	}()

	var mu sync.Mutex
	failovers := 0
	rig.client.SetFailoverHandler(func(idx int) bool {
		mu.Lock()
		defer mu.Unlock()
		failovers++
		rig.client.DetachPeer(idx)
		rig.client.ReclaimStubs(idx)
		return true
	})

	th := rig.client.NewThread()
	id, err := th.New("Counter", 1024)
	if err != nil {
		return 0, false, err
	}
	rig.client.SetRoot("ctr", id)

	start := now()
	if _, _, err := rig.pc.Offload([]string{"Counter"}); err != nil {
		// Severed during migration: the object never left, degradation is
		// immediate, and the "recovery" is the cost of discovering it.
		if _, err := th.Invoke(id, "inc"); err != nil {
			return 0, false, fmt.Errorf("local run after failed offload: %w", err)
		}
		return now().Sub(start), true, nil
	}

	const incs = 30
	prev := int64(0)
	for i := 0; i < incs; i++ {
		mu.Lock()
		before := failovers
		mu.Unlock()
		t0 := now()
		ret, err := th.Invoke(id, "inc")
		if err != nil {
			return 0, false, fmt.Errorf("inc %d: %w", i, err)
		}
		switch {
		case ret.I == prev+1:
		case ret.I == 1:
			// Reclaimed local copy restarted from zero.
		default:
			return 0, false, fmt.Errorf("inc %d returned %d after %d", i, ret.I, prev)
		}
		prev = ret.I
		mu.Lock()
		after := failovers
		mu.Unlock()
		if after > before {
			return now().Sub(t0), true, nil
		}
	}
	return 0, false, nil
}
