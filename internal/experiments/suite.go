// Package experiments reproduces every table and figure of the paper's
// evaluation (§5): each runner regenerates one artifact from the synthetic
// applications, the trace-driven emulator, and the partitioning modules,
// and returns a typed result that prints paper-style rows.
package experiments

import (
	"runtime"
	"time"

	"aide/internal/apps"
	"aide/internal/emulator"
	"aide/internal/netmodel"
	"aide/internal/policy"
	"aide/internal/trace"
)

// MemoryClientSlowdown scales PC-speed traces to the emulated handheld
// client for the §5.1 memory experiments (the paper measured its
// applications ~3.5–10× slower on a Jornada 547 than on the tracing PC;
// Figure 6's absolute scale corresponds to the slow end).
const MemoryClientSlowdown = 10.0

// MonitorCostPerEvent is the simulated cost of one monitoring event,
// calibrated against the prototype's measured ~11% JavaNote overhead
// (§5.1: 31.59 s → 35.04 s over ~1.2 M events ≈ 2.9 µs/event).
const MonitorCostPerEvent = 2900 * time.Nanosecond

// Suite shares recorded traces across experiment runners.
type Suite struct {
	// Parallelism bounds how many independent emulator replays an
	// experiment runs concurrently. Zero (the default) uses
	// runtime.GOMAXPROCS(0); 1 reproduces the serial engine exactly.
	// Every replay is deterministic and results are merged in job order,
	// so experiment output is bit-identical at any setting.
	Parallelism int

	cache *apps.Cache
	link  netmodel.Link

	// now is the wall-clock source for the heuristic-cost measurement
	// (Figure 5); injectable so tests can use a fake clock.
	now func() time.Time
}

// NewSuite returns a suite with an empty trace cache and the paper's
// WaveLAN link model.
func NewSuite() *Suite {
	return &Suite{cache: apps.NewCache(), link: netmodel.WaveLAN(), now: time.Now}
}

// parallelism resolves the effective worker-pool width.
func (s *Suite) parallelism() int {
	if s.Parallelism > 0 {
		return s.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// Trace returns the (cached) recorded trace of the named application.
func (s *Suite) Trace(name string) (*trace.Trace, error) {
	spec, err := apps.ByName(name)
	if err != nil {
		return nil, err
	}
	return s.cache.Get(spec)
}

// Warm records the named applications' traces concurrently (all five
// study applications when no names are given). Trace extraction runs a
// full scenario through the live VM per application, so warming the
// cache up front parallelizes the most expensive serial stretch of a
// fresh suite; the cache's per-application singleflight keeps each
// recording exactly-once even with experiments racing against Warm.
func (s *Suite) Warm(names ...string) error {
	if len(names) == 0 {
		for _, spec := range apps.All() {
			names = append(names, spec.Name)
		}
	}
	_, err := runAll(s.parallelism(), len(names), func(i int) (struct{}, error) {
		_, err := s.Trace(names[i])
		return struct{}{}, err
	})
	return err
}

// memoryConfig is the shared §5.1 emulation setup for an application under
// the given policy parameters.
func (s *Suite) memoryConfig(spec *apps.Spec, params policy.Params) emulator.Config {
	return emulator.Config{
		Mode:             emulator.MemoryMode,
		HeapCapacity:     spec.EmuHeap,
		Link:             s.link,
		SurrogateSpeedup: 1, // §5.1: same processor speed on both sides
		ClientSlowdown:   MemoryClientSlowdown,
		Params:           params,
		// Chai's incremental collector sweeps often, producing frequent
		// memory reports (paper §5.1).
		GCBytesTrigger: 96 << 10,
	}
}

// originalConfig replays the application unpartitioned with an
// unconstrained heap: the paper's "Original" bars.
func (s *Suite) originalConfig(spec *apps.Spec) emulator.Config {
	cfg := s.memoryConfig(spec, policy.InitialParams())
	cfg.HeapCapacity = spec.RecordHeap
	cfg.DisableOffload = true
	return cfg
}

// run replays the application's trace under the config.
func (s *Suite) run(spec *apps.Spec, cfg emulator.Config) (*emulator.Result, error) {
	t, err := s.cache.Get(spec)
	if err != nil {
		return nil, err
	}
	return emulator.Run(t, cfg)
}

// TraceStats exposes trace statistics for diagnostic tools.
func TraceStats(t *trace.Trace) trace.Stats { return trace.ComputeStats(t) }

// DiagMemoryRun runs the Figure 6 configuration for one application and
// returns the raw emulator result for calibration diagnostics.
func (s *Suite) DiagMemoryRun(name string) (*emulator.Result, error) {
	spec, err := apps.ByName(name)
	if err != nil {
		return nil, err
	}
	return s.run(spec, s.memoryConfig(spec, policy.InitialParams()))
}

// DiagCPURun runs one Figure 10 variant for calibration diagnostics.
func (s *Suite) DiagCPURun(name string, stateless, array, forced bool) (*emulator.Result, error) {
	spec, err := apps.ByName(name)
	if err != nil {
		return nil, err
	}
	slow := MemoryClientSlowdown
	switch name {
	case "Voxel":
		slow = apps.VoxelClientSlowdown
	case "Tracer":
		slow = apps.TracerClientSlowdown
	}
	origCfg := emulator.Config{
		Mode: emulator.CPUMode, HeapCapacity: spec.RecordHeap, Link: s.link,
		SurrogateSpeedup: 3.5, ClientSlowdown: slow, DisableOffload: true,
	}
	orig, err := s.run(spec, origCfg)
	if err != nil {
		return nil, err
	}
	cfg := origCfg
	cfg.DisableOffload = false
	cfg.ReevalEvery = orig.Time / 8
	cfg.StatelessNativeLocal = stateless
	cfg.ArrayGranularity = array
	cfg.ForceCPUOffload = forced
	return s.run(spec, cfg)
}
