package experiments

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestRunAllPreservesJobOrder(t *testing.T) {
	out, err := runAll(8, 100, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 100 {
		t.Fatalf("%d results", len(out))
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestRunAllBoundsConcurrency(t *testing.T) {
	var cur, peak atomic.Int64
	_, err := runAll(3, 64, func(i int) (struct{}, error) {
		c := cur.Add(1)
		for {
			p := peak.Load()
			if c <= p || peak.CompareAndSwap(p, c) {
				break
			}
		}
		// Busy the slot briefly so overlap is observable.
		for j := 0; j < 1000; j++ {
			_ = j
		}
		cur.Add(-1)
		return struct{}{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 3 {
		t.Fatalf("observed %d concurrent jobs, pool width is 3", p)
	}
}

func TestRunAllReturnsLowestIndexError(t *testing.T) {
	err3 := errors.New("job 3")
	err7 := errors.New("job 7")
	_, err := runAll(4, 10, func(i int) (int, error) {
		switch i {
		case 3:
			return 0, err3
		case 7:
			return 0, err7
		}
		return i, nil
	})
	// Dispatch is in-order, so job 3 always runs and always wins the
	// lowest-failed-index selection — regardless of scheduling.
	if !errors.Is(err, err3) {
		t.Fatalf("err = %v, want %v", err, err3)
	}
}

func TestRunAllSerialStopsAtFirstError(t *testing.T) {
	boom := errors.New("boom")
	var ran []int
	_, err := runAll(1, 5, func(i int) (int, error) {
		ran = append(ran, i)
		if i == 2 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if len(ran) != 3 || ran[0] != 0 || ran[1] != 1 || ran[2] != 2 {
		t.Fatalf("serial engine ran %v, want [0 1 2]", ran)
	}
}

func TestRunAllSkipsAfterFailure(t *testing.T) {
	boom := errors.New("boom")
	var ran atomic.Int64
	_, err := runAll(2, 1000, func(i int) (int, error) {
		ran.Add(1)
		if i == 0 {
			return 0, boom
		}
		return i, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if n := ran.Load(); n == 1000 {
		t.Error("no jobs were skipped after the failure")
	}
}

func TestRunAllZeroJobs(t *testing.T) {
	out, err := runAll(4, 0, func(i int) (int, error) { return 0, errors.New("never") })
	if err != nil || len(out) != 0 {
		t.Fatalf("out=%v err=%v", out, err)
	}
}

func TestRunAllDefaultsParallelism(t *testing.T) {
	out, err := runAll(0, 5, func(i int) (int, error) { return i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}
