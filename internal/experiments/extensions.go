package experiments

// Extensions beyond the paper's evaluation, following its §8 future-work
// agenda: alternative partitioning heuristics (with a refinement pass) and
// energy/battery-life accounting.

import (
	"fmt"
	"time"

	"aide/internal/apps"
	"aide/internal/emulator"
	"aide/internal/netmodel"
	"aide/internal/policy"
)

// AblationRow compares partitioning-heuristic variants on one application
// under the Figure 6 memory setup: the paper's modified MINCUT, the
// greedy memory-density heuristic, and modified MINCUT with a
// Kernighan–Lin swap-refinement pass.
type AblationRow struct {
	App      string
	Original time.Duration

	MinCut      float64 // overhead fraction
	Greedy      float64
	MinCutKL    float64
	GreedyOOM   bool
	MinCutOOM   bool
	MinCutKLOOM bool
}

// String renders a comparison row.
func (r AblationRow) String() string {
	f := func(ovh float64, oom bool) string {
		if oom {
			return "  died"
		}
		return fmt.Sprintf("%5.1f%%", ovh*100)
	}
	return fmt.Sprintf("%-9s mincut %s  mincut+KL %s  greedy-density %s",
		r.App, f(r.MinCut, r.MinCutOOM), f(r.MinCutKL, r.MinCutKLOOM), f(r.Greedy, r.GreedyOOM))
}

// AblationHeuristics runs the heuristic comparison for the three
// memory-study applications (paper §8: "study additional partitioning
// heuristics besides the modified MINCUT approach").
func (s *Suite) AblationHeuristics() ([]AblationRow, error) {
	rows := make([]AblationRow, 0, 3)
	for _, name := range []string{"JavaNote", "Dia", "Biomer"} {
		spec, err := apps.ByName(name)
		if err != nil {
			return nil, err
		}
		orig, err := s.run(spec, s.originalConfig(spec))
		if err != nil {
			return nil, err
		}
		row := AblationRow{App: name, Original: orig.Time}

		variant := func(h emulator.Heuristic, kl bool) (float64, bool, error) {
			cfg := s.memoryConfig(spec, policy.InitialParams())
			cfg.Heuristic = h
			cfg.KLRefine = kl
			res, err := s.run(spec, cfg)
			if err != nil {
				return 0, false, err
			}
			return res.Overhead(orig.Time), res.OOM, nil
		}
		if row.MinCut, row.MinCutOOM, err = variant(emulator.HeuristicModifiedMinCut, false); err != nil {
			return nil, err
		}
		if row.MinCutKL, row.MinCutKLOOM, err = variant(emulator.HeuristicModifiedMinCut, true); err != nil {
			return nil, err
		}
		if row.Greedy, row.GreedyOOM, err = variant(emulator.HeuristicGreedyDensity, false); err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// EnergyRow compares the client's battery drain with and without
// offloading for one application (paper §2: offloading may extend battery
// life; §8: power as a constraint to examine).
type EnergyRow struct {
	App string

	// LocalJ and OffloadedJ are the client's total energy for the run.
	LocalJ, OffloadedJ float64

	// LocalBreakdown and OffloadedBreakdown decompose the totals.
	LocalBreakdown, OffloadedBreakdown netmodel.EnergyBreakdown

	// SavingFrac is the energy saved by offloading (negative = offloading
	// costs energy).
	SavingFrac float64

	// PSMOffloadedJ and PSMSavingFrac repeat the offloaded measurement
	// with 802.11 power-save mode (the radio dozes between transfers).
	PSMOffloadedJ float64
	PSMSavingFrac float64
}

// String renders a comparison row.
func (r EnergyRow) String() string {
	return fmt.Sprintf("%-9s local %7.0f J  offloaded %7.0f J (saving %+5.1f%%)  with radio PSM %7.0f J (saving %+5.1f%%)",
		r.App, r.LocalJ, r.OffloadedJ, r.SavingFrac*100, r.PSMOffloadedJ, r.PSMSavingFrac*100)
}

// EnergyStudy measures client energy for the CPU-bound applications under
// the Figure 10 combined configuration and for JavaNote under the memory
// configuration, using a 2001-era handheld power model. CPU-heavy
// offloads trade active CPU-seconds for cheaper radio-seconds; chatty
// workloads pay more in radio than they save.
func (s *Suite) EnergyStudy() ([]EnergyRow, error) {
	model := netmodel.HandheldEnergy()
	rows := make([]EnergyRow, 0, 3)

	psm := netmodel.HandheldEnergyPSM()
	add := func(name string, orig, off *emulator.Result) {
		row := EnergyRow{App: name}
		row.LocalBreakdown = orig.ClientEnergy(model)
		row.OffloadedBreakdown = off.ClientEnergy(model)
		row.LocalJ = row.LocalBreakdown.TotalJ
		row.OffloadedJ = row.OffloadedBreakdown.TotalJ
		row.PSMOffloadedJ = off.ClientEnergy(psm).TotalJ
		if row.LocalJ > 0 {
			row.SavingFrac = 1 - row.OffloadedJ/row.LocalJ
			row.PSMSavingFrac = 1 - row.PSMOffloadedJ/row.LocalJ
		}
		rows = append(rows, row)
	}

	// Memory-bound: JavaNote (offloading is about survival, energy is the
	// price paid).
	jn, err := apps.ByName("JavaNote")
	if err != nil {
		return nil, err
	}
	jnOrig, err := s.run(jn, s.originalConfig(jn))
	if err != nil {
		return nil, err
	}
	jnOff, err := s.run(jn, s.memoryConfig(jn, policy.InitialParams()))
	if err != nil {
		return nil, err
	}
	add("JavaNote", jnOrig, jnOff)

	// CPU-bound: Voxel and Tracer under the combined §5.2 configuration.
	for _, name := range []string{"Voxel", "Tracer"} {
		spec, err := apps.ByName(name)
		if err != nil {
			return nil, err
		}
		slow := cpuSlowdown(name)
		base := emulator.Config{
			Mode:             emulator.CPUMode,
			HeapCapacity:     spec.RecordHeap,
			Link:             s.link,
			SurrogateSpeedup: 3.5,
			ClientSlowdown:   slow,
		}
		origCfg := base
		origCfg.DisableOffload = true
		orig, err := s.run(spec, origCfg)
		if err != nil {
			return nil, err
		}
		cfg := base
		cfg.ReevalEvery = orig.Time / 8
		cfg.StatelessNativeLocal = true
		cfg.ArrayGranularity = true
		off, err := s.run(spec, cfg)
		if err != nil {
			return nil, err
		}
		add(name, orig, off)
	}
	return rows, nil
}
