package experiments

// Extensions beyond the paper's evaluation, following its §8 future-work
// agenda: alternative partitioning heuristics (with a refinement pass) and
// energy/battery-life accounting.

import (
	"fmt"
	"time"

	"aide/internal/apps"
	"aide/internal/emulator"
	"aide/internal/netmodel"
	"aide/internal/policy"
)

// AblationRow compares partitioning-heuristic variants on one application
// under the Figure 6 memory setup: the paper's modified MINCUT, the
// greedy memory-density heuristic, and modified MINCUT with a
// Kernighan–Lin swap-refinement pass.
type AblationRow struct {
	App      string
	Original time.Duration

	MinCut      float64 // overhead fraction
	Greedy      float64
	MinCutKL    float64
	GreedyOOM   bool
	MinCutOOM   bool
	MinCutKLOOM bool
}

// String renders a comparison row.
func (r AblationRow) String() string {
	f := func(ovh float64, oom bool) string {
		if oom {
			return "  died"
		}
		return fmt.Sprintf("%5.1f%%", ovh*100)
	}
	return fmt.Sprintf("%-9s mincut %s  mincut+KL %s  greedy-density %s",
		r.App, f(r.MinCut, r.MinCutOOM), f(r.MinCutKL, r.MinCutKLOOM), f(r.Greedy, r.GreedyOOM))
}

// AblationHeuristics runs the heuristic comparison for the three
// memory-study applications (paper §8: "study additional partitioning
// heuristics besides the modified MINCUT approach").
func (s *Suite) AblationHeuristics() ([]AblationRow, error) {
	names := []string{"JavaNote", "Dia", "Biomer"}
	return runAll(s.parallelism(), len(names), func(i int) (AblationRow, error) {
		row, err := s.ablationOne(names[i])
		if err != nil {
			return AblationRow{}, err
		}
		return *row, nil
	})
}

// ablationOne runs the original replay and all three heuristic variants
// for one application concurrently; overheads are derived from the
// original's time only after every replay has finished.
func (s *Suite) ablationOne(name string) (*AblationRow, error) {
	spec, err := apps.ByName(name)
	if err != nil {
		return nil, err
	}
	type vcfg struct {
		h  emulator.Heuristic
		kl bool
	}
	variants := []vcfg{
		{emulator.HeuristicModifiedMinCut, false},
		{emulator.HeuristicModifiedMinCut, true},
		{emulator.HeuristicGreedyDensity, false},
	}
	// Jobs: 0 = original, 1+k = heuristic variant k.
	res, err := runAll(s.parallelism(), 1+len(variants), func(i int) (*emulator.Result, error) {
		if i == 0 {
			return s.run(spec, s.originalConfig(spec))
		}
		cfg := s.memoryConfig(spec, policy.InitialParams())
		cfg.Heuristic = variants[i-1].h
		cfg.KLRefine = variants[i-1].kl
		return s.run(spec, cfg)
	})
	if err != nil {
		return nil, err
	}
	orig := res[0]
	row := &AblationRow{App: name, Original: orig.Time}
	row.MinCut, row.MinCutOOM = res[1].Overhead(orig.Time), res[1].OOM
	row.MinCutKL, row.MinCutKLOOM = res[2].Overhead(orig.Time), res[2].OOM
	row.Greedy, row.GreedyOOM = res[3].Overhead(orig.Time), res[3].OOM
	return row, nil
}

// EnergyRow compares the client's battery drain with and without
// offloading for one application (paper §2: offloading may extend battery
// life; §8: power as a constraint to examine).
type EnergyRow struct {
	App string

	// LocalJ and OffloadedJ are the client's total energy for the run.
	LocalJ, OffloadedJ float64

	// LocalBreakdown and OffloadedBreakdown decompose the totals.
	LocalBreakdown, OffloadedBreakdown netmodel.EnergyBreakdown

	// SavingFrac is the energy saved by offloading (negative = offloading
	// costs energy).
	SavingFrac float64

	// PSMOffloadedJ and PSMSavingFrac repeat the offloaded measurement
	// with 802.11 power-save mode (the radio dozes between transfers).
	PSMOffloadedJ float64
	PSMSavingFrac float64
}

// String renders a comparison row.
func (r EnergyRow) String() string {
	return fmt.Sprintf("%-9s local %7.0f J  offloaded %7.0f J (saving %+5.1f%%)  with radio PSM %7.0f J (saving %+5.1f%%)",
		r.App, r.LocalJ, r.OffloadedJ, r.SavingFrac*100, r.PSMOffloadedJ, r.PSMSavingFrac*100)
}

// EnergyStudy measures client energy for the CPU-bound applications under
// the Figure 10 combined configuration and for JavaNote under the memory
// configuration, using a 2001-era handheld power model. CPU-heavy
// offloads trade active CPU-seconds for cheaper radio-seconds; chatty
// workloads pay more in radio than they save.
func (s *Suite) EnergyStudy() ([]EnergyRow, error) {
	model := netmodel.HandheldEnergy()
	psm := netmodel.HandheldEnergyPSM()

	// Memory-bound JavaNote (offloading is about survival, energy is the
	// price paid), then the CPU-bound pair under the combined §5.2
	// configuration; the three applications replay concurrently.
	names := []string{"JavaNote", "Voxel", "Tracer"}
	return runAll(s.parallelism(), len(names), func(i int) (EnergyRow, error) {
		orig, off, err := s.energyPair(names[i])
		if err != nil {
			return EnergyRow{}, err
		}
		row := EnergyRow{App: names[i]}
		row.LocalBreakdown = orig.ClientEnergy(model)
		row.OffloadedBreakdown = off.ClientEnergy(model)
		row.LocalJ = row.LocalBreakdown.TotalJ
		row.OffloadedJ = row.OffloadedBreakdown.TotalJ
		row.PSMOffloadedJ = off.ClientEnergy(psm).TotalJ
		if row.LocalJ > 0 {
			row.SavingFrac = 1 - row.OffloadedJ/row.LocalJ
			row.PSMSavingFrac = 1 - row.PSMOffloadedJ/row.LocalJ
		}
		return row, nil
	})
}

// energyPair returns the local and offloaded replays for one application
// of the energy study. The memory-bound pair is independent and replays
// concurrently; the CPU-bound offloaded run derives its re-evaluation
// interval from the original's time, so that pair stays sequential.
func (s *Suite) energyPair(name string) (orig, off *emulator.Result, err error) {
	spec, err := apps.ByName(name)
	if err != nil {
		return nil, nil, err
	}
	if name == "JavaNote" {
		res, err := runAll(s.parallelism(), 2, func(i int) (*emulator.Result, error) {
			if i == 0 {
				return s.run(spec, s.originalConfig(spec))
			}
			return s.run(spec, s.memoryConfig(spec, policy.InitialParams()))
		})
		if err != nil {
			return nil, nil, err
		}
		return res[0], res[1], nil
	}
	base := emulator.Config{
		Mode:             emulator.CPUMode,
		HeapCapacity:     spec.RecordHeap,
		Link:             s.link,
		SurrogateSpeedup: 3.5,
		ClientSlowdown:   cpuSlowdown(name),
	}
	origCfg := base
	origCfg.DisableOffload = true
	if orig, err = s.run(spec, origCfg); err != nil {
		return nil, nil, err
	}
	cfg := base
	cfg.ReevalEvery = orig.Time / 8
	cfg.StatelessNativeLocal = true
	cfg.ArrayGranularity = true
	if off, err = s.run(spec, cfg); err != nil {
		return nil, nil, err
	}
	return orig, off, nil
}
