package experiments

// Sensitivity sweeps beyond the paper's evaluation: where offloading stops
// being needed (heap size) and where it stops being viable (link quality).
// Both extend the paper's assumption checks — it fixed the heap at 6 MB
// and the link at WaveLAN.

import (
	"fmt"
	"time"

	"aide/internal/apps"
	"aide/internal/netmodel"
	"aide/internal/policy"
)

// HeapPoint is one heap size in the sweep.
type HeapPoint struct {
	HeapMB    float64
	OOM       bool // the platform could not save the run
	Offloaded bool
	Overhead  float64 // vs the unconstrained original
}

// String renders a sweep point.
func (p HeapPoint) String() string {
	switch {
	case p.OOM:
		return fmt.Sprintf("%5.1f MiB: out of memory", p.HeapMB)
	case p.Offloaded:
		return fmt.Sprintf("%5.1f MiB: offloaded, overhead %5.1f%%", p.HeapMB, p.Overhead*100)
	default:
		return fmt.Sprintf("%5.1f MiB: ran locally", p.HeapMB)
	}
}

// HeapSweep replays JavaNote across client heap sizes: below the workload's
// floor even offloading cannot help (the pinned classes alone overflow),
// in the constrained band the platform offloads with modest overhead, and
// with enough memory it correctly never offloads.
func (s *Suite) HeapSweep() ([]HeapPoint, error) {
	spec, err := apps.ByName("JavaNote")
	if err != nil {
		return nil, err
	}
	orig, err := s.run(spec, s.originalConfig(spec))
	if err != nil {
		return nil, err
	}
	sizes := []float64{1, 2, 4, 5, 6, 7, 8, 12}
	return runAll(s.parallelism(), len(sizes), func(i int) (HeapPoint, error) {
		mb := sizes[i]
		cfg := s.memoryConfig(spec, policy.InitialParams())
		cfg.HeapCapacity = int64(mb * float64(1<<20))
		res, err := s.run(spec, cfg)
		if err != nil {
			return HeapPoint{}, err
		}
		return HeapPoint{
			HeapMB:    mb,
			OOM:       res.OOM,
			Offloaded: res.Offloaded,
			Overhead:  res.Overhead(orig.Time),
		}, nil
	})
}

// LinkPoint is one link configuration in the sweep.
type LinkPoint struct {
	Label    string
	Link     netmodel.Link
	Overhead float64
	OOM      bool
}

// String renders a sweep point.
func (p LinkPoint) String() string {
	if p.OOM {
		return fmt.Sprintf("%-22s out of memory", p.Label)
	}
	return fmt.Sprintf("%-22s overhead %6.1f%%", p.Label, p.Overhead*100)
}

// LinkSweep replays the JavaNote offload across link technologies, from a
// 2001 Bluetooth-class serial link to switched fast Ethernet: the
// remote-execution overhead is dominated by round-trip latency, so the
// viability of transparent offloading tracks the link's RTT more than its
// bandwidth.
func (s *Suite) LinkSweep() ([]LinkPoint, error) {
	spec, err := apps.ByName("JavaNote")
	if err != nil {
		return nil, err
	}
	orig, err := s.run(spec, s.originalConfig(spec))
	if err != nil {
		return nil, err
	}
	links := []LinkPoint{
		{Label: "Bluetooth 1.0 (721kbps)", Link: netmodel.Link{BandwidthBps: 721e3, RTT: 30 * time.Millisecond, HeaderBytes: 32}},
		{Label: "802.11b ad-hoc (2Mbps)", Link: netmodel.Link{BandwidthBps: 2e6, RTT: 5 * time.Millisecond, HeaderBytes: 32}},
		{Label: "WaveLAN (11Mbps)", Link: netmodel.WaveLAN()},
		{Label: "Ethernet 10 (10Mbps)", Link: netmodel.Link{BandwidthBps: 10e6, RTT: 1 * time.Millisecond, HeaderBytes: 32}},
		{Label: "Fast Ethernet (100M)", Link: netmodel.Link{BandwidthBps: 100e6, RTT: 300 * time.Microsecond, HeaderBytes: 32}},
	}
	return runAll(s.parallelism(), len(links), func(i int) (LinkPoint, error) {
		p := links[i]
		cfg := s.memoryConfig(spec, policy.InitialParams())
		cfg.Link = p.Link
		res, err := s.run(spec, cfg)
		if err != nil {
			return LinkPoint{}, err
		}
		p.Overhead = res.Overhead(orig.Time)
		p.OOM = res.OOM
		return p, nil
	})
}
