package experiments

// Golden regression tests: every workload and emulation in this repository
// is fully deterministic, so the headline numbers of EXPERIMENTS.md can be
// pinned exactly. A calibration change that shifts them is visible here
// and must be reflected in the documentation.

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"aide/internal/graph"
	"aide/internal/monitor"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.4f, want %.4f ±%.4f (update EXPERIMENTS.md if this calibration change is intentional)",
			name, got, want, tol)
	}
}

func TestGoldenFigure6(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rows, err := suite().Figure6()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"JavaNote": 0.0769, "Dia": 0.0931, "Biomer": 0.2891}
	for _, r := range rows {
		approx(t, "figure6/"+r.App, r.OverheadFrac, want[r.App], 0.002)
	}
}

func TestGoldenTable2(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	r, err := suite().Table2()
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.ClassEvents != 138 {
		t.Errorf("classes = %d, want 138", r.Stats.ClassEvents)
	}
	if r.Stats.InteractionEvents != 1192103 {
		t.Errorf("interaction events = %d, want 1192103", r.Stats.InteractionEvents)
	}
	if r.Stats.ObjectEvents != 8644 {
		t.Errorf("object events = %d, want 8644", r.Stats.ObjectEvents)
	}
}

func TestGoldenMonitoring(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	r, err := suite().MonitoringOverhead()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, "monitoring overhead", r.OverheadFrac, 0.119, 0.002)
}

// renderAll renders every parallelized artifact to text: the byte-identity
// oracle for TestGoldenParallelDeterminism.
func renderAll(t *testing.T, s *Suite) string {
	t.Helper()
	var b strings.Builder
	f6, err := s.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range f6 {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	f7, err := s.Figure7(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range f7 {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	f10, err := s.Figure10()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range f10 {
		b.WriteString(r.String())
		b.WriteByte('\n')
	}
	hs, err := s.HeapSweep()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range hs {
		b.WriteString(p.String())
		b.WriteByte('\n')
	}
	ls, err := s.LinkSweep()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range ls {
		b.WriteString(p.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// TestGoldenParallelDeterminism runs Figure 6/7/10 and both sweeps serially
// and with an 8-wide worker pool and requires byte-identical output: the
// engine's order-preservation contract, end to end.
func TestGoldenParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	s := suite()
	old := s.Parallelism
	defer func() { s.Parallelism = old }()

	s.Parallelism = 1
	serial := renderAll(t, s)
	s.Parallelism = 8
	parallel := renderAll(t, s)
	if serial != parallel {
		t.Fatalf("parallel output diverges from serial output:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}

func TestGoldenFigure10(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	rows, err := suite().Figure10()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		switch r.App {
		case "Voxel":
			approx(t, "voxel combined speedup", r.Speedup(), 0.109, 0.005)
		case "Tracer":
			approx(t, "tracer combined speedup", r.Speedup(), 0.076, 0.005)
		case "Biomer":
			if !r.Declined {
				t.Error("Biomer must decline")
			}
		}
	}
}

// TestGoldenDecayDeterminism pins the streaming-decay contract alongside
// the engine's order-preservation gate above: the same event multiset fed
// serially and from 8 round-robin concurrent sources, flushed once, must
// produce bit-identical decayed edge weights — shard merges commute and
// every event in a flush window decays from the same event-time stamp, so
// ingestion interleaving can never leak into the partitioner's input.
func TestGoldenDecayDeterminism(t *testing.T) {
	feed := func(sources int) *graph.Graph {
		m := monitor.New(nil, monitor.WithDecay(5000))
		var wg sync.WaitGroup
		for s := 0; s < sources; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				for i := s; i < 40000; i += sources {
					a := fmt.Sprintf("C%02d", i%37)
					b := fmt.Sprintf("C%02d", (i*11+3)%37)
					if i%3 == 0 {
						m.OnInvoke(a, b, "m", 0, int64(i%512), 32, 0, false, false)
					} else {
						m.OnAccess(a, b, 0, int64(i%256))
					}
				}
			}(s)
		}
		wg.Wait()
		return m.Live() // single flush: one decay window for all events
	}

	serial, parallel := feed(1), feed(8)
	if serial.Clock() != parallel.Clock() {
		t.Fatalf("clock diverges: %v vs %v", serial.Clock(), parallel.Clock())
	}
	// NodeIDs differ under concurrent interning; compare by name pair.
	type pair struct{ a, b string }
	index := func(g *graph.Graph) map[pair]float64 {
		out := map[pair]float64{}
		g.EdgesFunc(func(e *graph.Edge) {
			a, b := g.Node(e.A).Name, g.Node(e.B).Name
			if a > b {
				a, b = b, a
			}
			out[pair{a, b}] = e.Hot
		})
		return out
	}
	si, pi := index(serial), index(parallel)
	if len(si) != len(pi) {
		t.Fatalf("edge sets differ: %d vs %d", len(si), len(pi))
	}
	for k, hot := range si {
		if got, ok := pi[k]; !ok || got != hot {
			t.Fatalf("edge %v: serial Hot %v, parallel Hot %v (ok=%t) — decay must be bit-identical", k, hot, got, ok)
		}
	}
}
