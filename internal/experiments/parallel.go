package experiments

// Parallel experiment engine. The paper's evaluation is a grid of
// independent deterministic trace replays (Figure 7 alone is a 168-point
// policy sweep × 3 applications), so the runners fan independent
// iterations out to a bounded worker pool. Everything stays bit-identical
// to the serial engine: results land in a slice indexed by job — never by
// completion order — and reductions over them run serially in index
// order, so no goroutine interleaving, map order, or scheduling decision
// can leak into experiment output.

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// runAll executes jobs 0..n-1 on at most parallelism concurrent
// goroutines and returns their results indexed by job number.
//
// Jobs must be independent of one another; each job's result is written
// only to its own slot. With parallelism 1 the jobs run serially in
// order, stopping at the first error — exactly the historical serial
// loops. With parallelism > 1, job indices are dispatched in increasing
// order; after any job fails, not-yet-started jobs are skipped, and the
// error of the lowest-numbered failed job is returned. Because dispatch
// is in-order, every job below the first failure has run to completion,
// so the returned error is the same one the serial engine would have
// produced.
func runAll[T any](parallelism, n int, job func(int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}
	if parallelism == 1 {
		for i := 0; i < n; i++ {
			var err error
			if out[i], err = job(i); err != nil {
				return nil, err
			}
		}
		return out, nil
	}

	errs := make([]error, n)
	var (
		next   atomic.Int64
		failed atomic.Bool
		wg     sync.WaitGroup
	)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if out[i], errs[i] = job(i); errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return nil, errs[i]
		}
	}
	return out, nil
}
