package snapshot

import (
	"bytes"
	"testing"
)

// FuzzImageDecode drives hostile bytes through Decode and pins the
// canonical fixed point: any accepted input must re-encode to exactly
// the bytes that were decoded. Rejections only need to be clean (no
// panic, no hang).
func FuzzImageDecode(f *testing.F) {
	f.Add(goldenImage().Encode())
	f.Add((&Image{}).Encode())
	// Truncated mid-object.
	f.Add([]byte{1, 2, 1, 1, 1, 'A'})
	// Bad version byte.
	f.Add([]byte{0x7f, 1, 0})
	// Oversize declared length: object count far beyond the input.
	f.Add([]byte{1, 1, 0xff, 0xff, 0xff, 0xff, 0x0f})
	f.Fuzz(func(t *testing.T, data []byte) {
		img, err := Decode(data)
		if err != nil {
			return
		}
		out := img.Encode()
		if !bytes.Equal(out, data) {
			t.Fatalf("accepted input is not canonical:\n in  %x\n out %x", data, out)
		}
		re, err := Decode(out)
		if err != nil {
			t.Fatalf("re-decode of canonical bytes failed: %v", err)
		}
		if !bytes.Equal(re.Encode(), out) {
			t.Fatal("encode/decode not a fixed point")
		}
	})
}
