package snapshot

import (
	"encoding/binary"
	"fmt"
	"math"

	"aide/internal/vm"
)

// Versioned binary encoding of an Image. The rules match the platform's
// wire codec (internal/vm/wirecodec.go): LEB128 uvarints for counts,
// zigzag varints for signed integers, 8-byte little-endian IEEE-754 for
// floats, length-prefixed strings and blobs, and canonicalization of
// zero-length blobs to nil so encode(decode(encode(x))) is
// byte-identical to encode(x). Field order inside the image is fixed by
// vm.ExportSnapshot's deterministic sort, so the same VM state always
// encodes to the same bytes.
//
// The gobwire analyzer pins every encoded struct's field count against
// this codec: growing a struct without teaching the codec its new field
// is a build-time lint failure, not a silent wire corruption.

//lint:wire aide/internal/vm.SnapshotState
const snapshotStateWireFields = 5

//lint:wire aide/internal/vm.SnapshotObject
const snapshotObjectWireFields = 11

//lint:wire aide/internal/vm.SnapshotRoot
const snapshotRootWireFields = 2

//lint:wire aide/internal/vm.SnapshotStatic
const snapshotStaticWireFields = 2

//lint:wire aide/internal/vm.SnapshotResidual
const snapshotResidualWireFields = 4

//lint:wire Image
const imageWireFields = 2

// imageVersion is the encoding version byte leading every image.
const imageVersion = 1

// Object flag bits (one flags byte per encoded object).
const (
	flagRemote   = 1 << 0
	flagExported = 1 << 1
	flagLazy     = 1 << 2
	flagFields   = 1 << 3
	flagKnown    = flagRemote | flagExported | flagLazy | flagFields
)

// Encode serializes the image. Two images of identical state encode to
// identical bytes.
func (img *Image) Encode() []byte {
	s := img.State
	if s == nil {
		s = &vm.SnapshotState{}
	}
	buf := []byte{imageVersion}
	buf = binary.AppendUvarint(buf, uint64(s.NextID))

	buf = binary.AppendUvarint(buf, uint64(len(s.Objects)))
	for i := range s.Objects {
		buf = appendObject(buf, &s.Objects[i])
	}

	buf = binary.AppendUvarint(buf, uint64(len(s.Roots)))
	for _, r := range s.Roots {
		buf = vm.AppendString(buf, r.Name)
		buf = binary.AppendUvarint(buf, uint64(r.ID))
	}

	buf = binary.AppendUvarint(buf, uint64(len(s.Statics)))
	for _, ss := range s.Statics {
		buf = vm.AppendString(buf, ss.Class)
		buf = binary.AppendUvarint(buf, uint64(len(ss.Values)))
		for i := range ss.Values {
			buf = appendValue(buf, &ss.Values[i])
		}
	}

	buf = binary.AppendUvarint(buf, uint64(len(s.Residual)))
	for _, sr := range s.Residual {
		buf = binary.AppendUvarint(buf, uint64(sr.ID))
		buf = binary.AppendVarint(buf, sr.Bytes)
		buf = binary.AppendUvarint(buf, uint64(len(sr.Names)))
		for i, name := range sr.Names {
			buf = vm.AppendString(buf, name)
			buf = appendValue(buf, &sr.Values[i])
		}
	}

	buf = binary.AppendUvarint(buf, uint64(len(img.Aux)))
	buf = append(buf, img.Aux...)
	return buf
}

func appendObject(buf []byte, so *vm.SnapshotObject) []byte {
	buf = binary.AppendUvarint(buf, uint64(so.ID))
	buf = vm.AppendString(buf, so.Class)
	buf = binary.AppendVarint(buf, so.Size)
	var flags byte
	if so.Remote {
		flags |= flagRemote
	}
	if so.Exported != 0 {
		flags |= flagExported
	}
	if so.LazyFrom != 0 || so.LazySrc != 0 {
		flags |= flagLazy
	}
	if len(so.Fields) > 0 {
		flags |= flagFields
	}
	buf = append(buf, flags)
	if so.Remote {
		buf = binary.AppendVarint(buf, int64(so.PeerIdx))
		buf = binary.AppendUvarint(buf, uint64(so.PeerID))
		buf = binary.AppendVarint(buf, so.RemoteSize)
	}
	if flags&flagExported != 0 {
		buf = binary.AppendVarint(buf, so.Exported)
	}
	if flags&flagLazy != 0 {
		buf = binary.AppendVarint(buf, int64(so.LazyFrom))
		buf = binary.AppendUvarint(buf, uint64(so.LazySrc))
	}
	if flags&flagFields != 0 {
		buf = binary.AppendUvarint(buf, uint64(len(so.Fields)))
		for i := range so.Fields {
			buf = appendValue(buf, &so.Fields[i])
		}
	}
	return buf
}

// appendValue encodes one heap value: a kind byte plus the kind's
// payload. References encode their snapshot-local ID — the snapshot has
// a single ID namespace, so no locality tag is needed.
func appendValue(buf []byte, val *vm.Value) []byte {
	buf = append(buf, byte(val.Kind))
	switch val.Kind {
	case vm.KindInt:
		buf = binary.AppendVarint(buf, val.I)
	case vm.KindFloat:
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(val.F))
	case vm.KindBool:
		if val.B {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	case vm.KindString:
		buf = vm.AppendString(buf, val.S)
	case vm.KindBytes:
		buf = binary.AppendUvarint(buf, uint64(len(val.Bytes)))
		buf = append(buf, val.Bytes...)
	case vm.KindRef:
		buf = binary.AppendUvarint(buf, uint64(val.Ref))
	}
	return buf
}

// Decode parses an encoded image. It rejects unknown versions, unknown
// flag bits, unknown value kinds, truncation, and declared lengths that
// exceed the remaining input — acceptance implies the canonical
// round-trip property Encode pins.
func Decode(data []byte) (*Image, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("snapshot: decode: empty input")
	}
	if data[0] != imageVersion {
		return nil, fmt.Errorf("snapshot: decode: unsupported version %d", data[0])
	}
	rest := data[1:]

	s := &vm.SnapshotState{}
	n, rest, err := vm.ReadUvarint(rest)
	if err != nil {
		return nil, fmt.Errorf("snapshot: decode next-id: %w", err)
	}
	s.NextID = vm.ObjectID(n)

	count, rest, err := vm.ReadUvarint(rest)
	if err != nil {
		return nil, fmt.Errorf("snapshot: decode object count: %w", err)
	}
	// Every encoded object occupies at least 4 bytes (ID, class length,
	// size, flags); a count beyond the remaining bytes is corrupt —
	// reject before allocating.
	if count > uint64(len(rest)) {
		return nil, fmt.Errorf("snapshot: decode: object count %d exceeds %d remaining bytes", count, len(rest))
	}
	if count > 0 {
		s.Objects = make([]vm.SnapshotObject, count)
		for i := range s.Objects {
			if rest, err = decodeObject(&s.Objects[i], rest); err != nil {
				return nil, fmt.Errorf("snapshot: decode object %d: %w", i, err)
			}
		}
	}

	count, rest, err = vm.ReadUvarint(rest)
	if err != nil {
		return nil, fmt.Errorf("snapshot: decode root count: %w", err)
	}
	if count > uint64(len(rest)) {
		return nil, fmt.Errorf("snapshot: decode: root count %d exceeds %d remaining bytes", count, len(rest))
	}
	if count > 0 {
		s.Roots = make([]vm.SnapshotRoot, count)
		for i := range s.Roots {
			r := &s.Roots[i]
			if r.Name, rest, err = vm.ReadString(rest); err != nil {
				return nil, fmt.Errorf("snapshot: decode root %d: %w", i, err)
			}
			var id uint64
			if id, rest, err = vm.ReadUvarint(rest); err != nil {
				return nil, fmt.Errorf("snapshot: decode root %d: %w", i, err)
			}
			r.ID = vm.ObjectID(id)
		}
	}

	count, rest, err = vm.ReadUvarint(rest)
	if err != nil {
		return nil, fmt.Errorf("snapshot: decode static count: %w", err)
	}
	if count > uint64(len(rest)) {
		return nil, fmt.Errorf("snapshot: decode: static count %d exceeds %d remaining bytes", count, len(rest))
	}
	if count > 0 {
		s.Statics = make([]vm.SnapshotStatic, count)
		for i := range s.Statics {
			ss := &s.Statics[i]
			if ss.Class, rest, err = vm.ReadString(rest); err != nil {
				return nil, fmt.Errorf("snapshot: decode static %d: %w", i, err)
			}
			var vals uint64
			if vals, rest, err = vm.ReadUvarint(rest); err != nil {
				return nil, fmt.Errorf("snapshot: decode static %d: %w", i, err)
			}
			if vals > uint64(len(rest)) {
				return nil, fmt.Errorf("snapshot: decode: static %d value count %d exceeds %d remaining bytes", i, vals, len(rest))
			}
			if vals > 0 {
				ss.Values = make([]vm.Value, vals)
				for j := range ss.Values {
					if rest, err = decodeValue(&ss.Values[j], rest); err != nil {
						return nil, fmt.Errorf("snapshot: decode static %d value %d: %w", i, j, err)
					}
				}
			}
		}
	}

	count, rest, err = vm.ReadUvarint(rest)
	if err != nil {
		return nil, fmt.Errorf("snapshot: decode residual count: %w", err)
	}
	if count > uint64(len(rest)) {
		return nil, fmt.Errorf("snapshot: decode: residual count %d exceeds %d remaining bytes", count, len(rest))
	}
	if count > 0 {
		s.Residual = make([]vm.SnapshotResidual, count)
		for i := range s.Residual {
			sr := &s.Residual[i]
			var id uint64
			if id, rest, err = vm.ReadUvarint(rest); err != nil {
				return nil, fmt.Errorf("snapshot: decode residual %d: %w", i, err)
			}
			sr.ID = vm.ObjectID(id)
			if sr.Bytes, rest, err = vm.ReadVarint(rest); err != nil {
				return nil, fmt.Errorf("snapshot: decode residual %d: %w", i, err)
			}
			var fields uint64
			if fields, rest, err = vm.ReadUvarint(rest); err != nil {
				return nil, fmt.Errorf("snapshot: decode residual %d: %w", i, err)
			}
			if fields > uint64(len(rest)) {
				return nil, fmt.Errorf("snapshot: decode: residual %d field count %d exceeds %d remaining bytes", i, fields, len(rest))
			}
			if fields > 0 {
				sr.Names = make([]string, fields)
				sr.Values = make([]vm.Value, fields)
				for j := range sr.Names {
					if sr.Names[j], rest, err = vm.ReadString(rest); err != nil {
						return nil, fmt.Errorf("snapshot: decode residual %d field %d: %w", i, j, err)
					}
					if rest, err = decodeValue(&sr.Values[j], rest); err != nil {
						return nil, fmt.Errorf("snapshot: decode residual %d field %d: %w", i, j, err)
					}
				}
			}
		}
	}

	auxLen, rest, err := vm.ReadUvarint(rest)
	if err != nil {
		return nil, fmt.Errorf("snapshot: decode aux length: %w", err)
	}
	if auxLen > uint64(len(rest)) {
		return nil, fmt.Errorf("snapshot: decode: aux length %d exceeds %d remaining bytes", auxLen, len(rest))
	}
	img := &Image{State: s}
	if auxLen > 0 {
		img.Aux = append([]byte(nil), rest[:auxLen]...)
	}
	rest = rest[auxLen:]
	if len(rest) != 0 {
		return nil, fmt.Errorf("snapshot: decode: %d trailing bytes", len(rest))
	}
	return img, nil
}

func decodeObject(so *vm.SnapshotObject, data []byte) ([]byte, error) {
	id, rest, err := vm.ReadUvarint(data)
	if err != nil {
		return nil, err
	}
	so.ID = vm.ObjectID(id)
	if so.Class, rest, err = vm.ReadString(rest); err != nil {
		return nil, err
	}
	if so.Size, rest, err = vm.ReadVarint(rest); err != nil {
		return nil, err
	}
	if len(rest) == 0 {
		return nil, fmt.Errorf("truncated flags")
	}
	flags := rest[0]
	rest = rest[1:]
	if flags&^byte(flagKnown) != 0 {
		return nil, fmt.Errorf("unknown flag bits %#x", flags)
	}
	if flags&flagRemote != 0 {
		so.Remote = true
		var idx int64
		if idx, rest, err = vm.ReadVarint(rest); err != nil {
			return nil, err
		}
		so.PeerIdx = int(idx)
		var pid uint64
		if pid, rest, err = vm.ReadUvarint(rest); err != nil {
			return nil, err
		}
		so.PeerID = vm.ObjectID(pid)
		if so.RemoteSize, rest, err = vm.ReadVarint(rest); err != nil {
			return nil, err
		}
	}
	if flags&flagExported != 0 {
		if so.Exported, rest, err = vm.ReadVarint(rest); err != nil {
			return nil, err
		}
		if so.Exported == 0 {
			return nil, fmt.Errorf("non-canonical zero export pin")
		}
	}
	if flags&flagLazy != 0 {
		var from int64
		if from, rest, err = vm.ReadVarint(rest); err != nil {
			return nil, err
		}
		so.LazyFrom = int(from)
		var src uint64
		if src, rest, err = vm.ReadUvarint(rest); err != nil {
			return nil, err
		}
		so.LazySrc = vm.ObjectID(src)
		if so.LazyFrom == 0 && so.LazySrc == 0 {
			return nil, fmt.Errorf("non-canonical zero lazy provenance")
		}
	}
	if flags&flagFields != 0 {
		var fields uint64
		if fields, rest, err = vm.ReadUvarint(rest); err != nil {
			return nil, err
		}
		if fields == 0 {
			return nil, fmt.Errorf("non-canonical empty field list")
		}
		if fields > uint64(len(rest)) {
			return nil, fmt.Errorf("field count %d exceeds %d remaining bytes", fields, len(rest))
		}
		so.Fields = make([]vm.Value, fields)
		for i := range so.Fields {
			if rest, err = decodeValue(&so.Fields[i], rest); err != nil {
				return nil, err
			}
		}
	}
	return rest, nil
}

func decodeValue(val *vm.Value, data []byte) ([]byte, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("truncated value")
	}
	*val = vm.Value{Kind: vm.ValueKind(data[0])}
	rest := data[1:]
	var err error
	switch val.Kind {
	case vm.KindNil, vm.KindDeferred:
	case vm.KindInt:
		val.I, rest, err = vm.ReadVarint(rest)
	case vm.KindFloat:
		if len(rest) < 8 {
			return nil, fmt.Errorf("truncated float")
		}
		val.F = math.Float64frombits(binary.LittleEndian.Uint64(rest))
		rest = rest[8:]
	case vm.KindBool:
		if len(rest) < 1 {
			return nil, fmt.Errorf("truncated bool")
		}
		val.B = rest[0] != 0
		rest = rest[1:]
	case vm.KindString:
		val.S, rest, err = vm.ReadString(rest)
	case vm.KindBytes:
		var n uint64
		n, rest, err = vm.ReadUvarint(rest)
		if err == nil {
			if n > uint64(len(rest)) {
				return nil, fmt.Errorf("blob length %d exceeds %d remaining bytes", n, len(rest))
			}
			if n > 0 {
				val.Bytes = append([]byte(nil), rest[:n]...)
			}
			rest = rest[n:]
		}
	case vm.KindRef:
		var id uint64
		id, rest, err = vm.ReadUvarint(rest)
		val.Ref = vm.ObjectID(id)
	default:
		return nil, fmt.Errorf("unknown value kind %d", val.Kind)
	}
	if err != nil {
		return nil, err
	}
	return rest, nil
}
