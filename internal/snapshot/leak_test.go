package snapshot

import (
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"
)

// TestMain wraps the whole package run in a goroutine-leak check: the
// snapshot codec is pure and must spawn nothing that outlives a test.
func TestMain(m *testing.M) {
	before := runtime.NumGoroutine()
	code := m.Run()
	if code == 0 {
		if leaked := settleGoroutines(before); leaked > 0 {
			fmt.Fprintf(os.Stderr, "goroutine leak: %d goroutines outlived the package tests (started with %d)\n",
				leaked, before)
			code = 1
		}
	}
	os.Exit(code)
}

// settleGoroutines waits for the goroutine count to return to the
// baseline, tolerating runtime-internal stragglers that need a few
// scheduler rounds to park.
func settleGoroutines(baseline int) int {
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline || time.Now().After(deadline) {
			if n <= baseline {
				return 0
			}
			return n - baseline
		}
		time.Sleep(20 * time.Millisecond)
	}
}
