package snapshot

import (
	"bytes"
	"encoding/hex"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"aide/internal/vm"
)

// goldenImage is a hand-crafted canonical image exercising every
// encoder path: a plain object, a stub, an exported pin, lazy
// provenance, every value kind, roots, statics, a residual, and an aux
// blob. Canonical means it matches what ExportSnapshot would produce:
// sorted, with zero-length blobs and field lists as nil.
func goldenImage() *Image {
	return &Image{
		State: &vm.SnapshotState{
			NextID: 9,
			Objects: []vm.SnapshotObject{
				{ID: 1, Class: "Account", Size: 64, Exported: 2, Fields: []vm.Value{
					vm.Int(-42),
					vm.Float(2.5),
					vm.Bool(true),
					vm.Str("alice"),
					vm.Blob([]byte{0xde, 0xad}),
					vm.RefOf(3),
					vm.Nil(),
					{Kind: vm.KindDeferred},
				}},
				{ID: 3, Class: "Leaf", Size: 16},
				{ID: 5, Class: "Account", Size: 0, Remote: true, PeerIdx: 1, PeerID: 7, RemoteSize: 128},
				{ID: 8, Class: "Leaf", Size: 24, LazyFrom: 0, LazySrc: 4, Fields: []vm.Value{
					{Kind: vm.KindDeferred},
				}},
			},
			Roots: []vm.SnapshotRoot{
				{Name: "acct", ID: 1},
				{Name: "leaf", ID: 3},
			},
			Statics: []vm.SnapshotStatic{
				{Class: "Account", Values: []vm.Value{vm.Int(100), vm.Str("bank")}},
			},
			Residual: []vm.SnapshotResidual{
				{ID: 2, Bytes: 48, Names: []string{"hidden", "kept"},
					Values: []vm.Value{vm.Str("withheld"), vm.Int(7)}},
			},
		},
		Aux: []byte("monitor-heat"),
	}
}

const goldenFile = "testdata/image_v1.golden"

// TestImageGoldenBytes pins the version-1 encoding byte for byte
// against a committed golden file: any codec change that alters the
// bytes of an existing image is a wire break and must bump the version.
// Regenerate with AIDE_REGEN_GOLDEN=1.
func TestImageGoldenBytes(t *testing.T) {
	got := goldenImage().Encode()
	if os.Getenv("AIDE_REGEN_GOLDEN") == "1" {
		if err := os.MkdirAll(filepath.Dir(goldenFile), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenFile, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden bytes", len(got))
		return
	}
	want, err := os.ReadFile(goldenFile)
	if err != nil {
		t.Fatalf("read golden (regenerate with AIDE_REGEN_GOLDEN=1): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("encoding drifted from golden:\n got %s\nwant %s",
			hex.EncodeToString(got), hex.EncodeToString(want))
	}
}

// TestImageCodecRoundTrip pins Decode(Encode(img)) == img and the
// byte-identity Encode(Decode(b)) == b on the golden image.
func TestImageCodecRoundTrip(t *testing.T) {
	img := goldenImage()
	buf := img.Encode()
	got, err := Decode(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got, img) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, img)
	}
	if again := got.Encode(); !bytes.Equal(again, buf) {
		t.Fatalf("re-encode not byte-identical:\n got %s\nwant %s",
			hex.EncodeToString(again), hex.EncodeToString(buf))
	}
}

// TestEmptyImage pins the degenerate encodings: a nil state encodes and
// round-trips, and an empty VM's image survives the same way.
func TestEmptyImage(t *testing.T) {
	img := &Image{State: &vm.SnapshotState{NextID: 1}}
	buf := img.Encode()
	got, err := Decode(buf)
	if err != nil {
		t.Fatalf("decode empty: %v", err)
	}
	if !bytes.Equal(got.Encode(), buf) {
		t.Fatal("empty image round trip not byte-identical")
	}
}

func snapRegistry(t *testing.T) *vm.Registry {
	t.Helper()
	reg := vm.NewRegistry()
	mustReg := func(spec vm.ClassSpec) {
		t.Helper()
		if _, err := reg.Register(spec); err != nil {
			t.Fatal(err)
		}
	}
	body := func(th *vm.Thread, self vm.ObjectID, args []vm.Value) (vm.Value, error) {
		th.Work(time.Microsecond)
		return vm.Nil(), nil
	}
	mustReg(vm.ClassSpec{
		Name:         "Account",
		Fields:       []string{"balance", "owner", "tags", "next", "ratio", "open", "blob", "pending"},
		StaticFields: []string{"total", "bank"},
		Methods:      []vm.MethodSpec{{Name: "touch", Body: body}},
	})
	mustReg(vm.ClassSpec{Name: "Leaf", Fields: []string{"v"}})
	return reg
}

// TestSnapshotRestoreByteIdentical builds real VM state through the
// public API, snapshots it, restores the encoded image into a fresh VM,
// and requires the re-snapshot to encode to the very same bytes — the
// subsystem's core guarantee.
func TestSnapshotRestoreByteIdentical(t *testing.T) {
	reg := snapRegistry(t)
	v := vm.New(reg, vm.Config{HeapCapacity: 1 << 20})
	th := v.NewThread()

	acct, err := th.New("Account", 64)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := th.New("Leaf", 16)
	if err != nil {
		t.Fatal(err)
	}
	set := func(id vm.ObjectID, field string, val vm.Value) {
		t.Helper()
		if err := th.SetField(id, field, val); err != nil {
			t.Fatal(err)
		}
	}
	set(acct, "balance", vm.Int(1234))
	set(acct, "owner", vm.Str("alice"))
	set(acct, "tags", vm.Blob([]byte{1, 2, 3}))
	set(acct, "next", vm.RefOf(leaf))
	set(acct, "ratio", vm.Float(0.75))
	set(acct, "open", vm.Bool(true))
	set(leaf, "v", vm.Int(-9))
	if err := th.SetStatic("Account", "total", vm.Int(1)); err != nil {
		t.Fatal(err)
	}
	if err := th.SetStatic("Account", "bank", vm.Str("main")); err != nil {
		t.Fatal(err)
	}
	v.SetRoot("acct", acct)
	th.ClearTemps()

	img := Snapshot(v)
	img.Aux = []byte("heat")
	buf := img.Encode()

	decoded, err := Decode(buf)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	fresh := vm.New(reg, vm.Config{HeapCapacity: 1 << 20})
	if err := Restore(fresh, decoded); err != nil {
		t.Fatalf("restore: %v", err)
	}
	re := Snapshot(fresh)
	re.Aux = append([]byte(nil), decoded.Aux...)
	if got := re.Encode(); !bytes.Equal(got, buf) {
		t.Fatalf("restore→snapshot not byte-identical:\n got %s\nwant %s",
			hex.EncodeToString(got), hex.EncodeToString(buf))
	}

	// Restored state behaves: the field graph survived with exact IDs.
	fth := fresh.NewThread()
	val, err := fth.GetField(acct, "next")
	if err != nil {
		t.Fatal(err)
	}
	if val.Ref != leaf {
		t.Fatalf("restored acct.next = #%d, want #%d", val.Ref, leaf)
	}
	if got, err := fth.GetField(leaf, "v"); err != nil || got.I != -9 {
		t.Fatalf("restored leaf.v = %v, %v", got, err)
	}
}

// TestSnapshotIsCopyOnWrite pins the isolation guarantee: mutating the
// VM after Snapshot leaves the image's bytes unchanged.
func TestSnapshotIsCopyOnWrite(t *testing.T) {
	reg := snapRegistry(t)
	v := vm.New(reg, vm.Config{HeapCapacity: 1 << 20})
	th := v.NewThread()
	acct, err := th.New("Account", 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.SetField(acct, "tags", vm.Blob([]byte{9, 9})); err != nil {
		t.Fatal(err)
	}
	v.SetRoot("a", acct)
	th.ClearTemps()

	img := Snapshot(v)
	before := img.Encode()

	if err := th.SetField(acct, "balance", vm.Int(777)); err != nil {
		t.Fatal(err)
	}
	blob, err := th.GetField(acct, "tags")
	if err != nil {
		t.Fatal(err)
	}
	blob.Bytes[0] = 0xff // mutate the live heap's blob in place
	if _, err := th.New("Leaf", 8); err != nil {
		t.Fatal(err)
	}

	if after := img.Encode(); !bytes.Equal(before, after) {
		t.Fatal("snapshot changed when the VM mutated after capture")
	}
}

// TestCloneVM pins clone independence: the clone carries the source's
// state, and divergence after the fork flows neither way.
func TestCloneVM(t *testing.T) {
	reg := snapRegistry(t)
	src := vm.New(reg, vm.Config{HeapCapacity: 1 << 20})
	th := src.NewThread()
	acct, err := th.New("Account", 64)
	if err != nil {
		t.Fatal(err)
	}
	if err := th.SetField(acct, "balance", vm.Int(10)); err != nil {
		t.Fatal(err)
	}
	src.SetRoot("a", acct)
	th.ClearTemps()

	clone, err := CloneVM(src, vm.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if clone.Heap().Capacity != src.Heap().Capacity {
		t.Fatalf("clone capacity %d, src %d", clone.Heap().Capacity, src.Heap().Capacity)
	}
	cth := clone.NewThread()
	if got, err := cth.GetField(acct, "balance"); err != nil || got.I != 10 {
		t.Fatalf("clone balance = %v, %v", got, err)
	}
	if err := cth.SetField(acct, "balance", vm.Int(99)); err != nil {
		t.Fatal(err)
	}
	if got, _ := th.GetField(acct, "balance"); got.I != 10 {
		t.Fatalf("clone write leaked into source: balance = %d", got.I)
	}
	if err := th.SetField(acct, "balance", vm.Int(-1)); err != nil {
		t.Fatal(err)
	}
	if got, _ := cth.GetField(acct, "balance"); got.I != 99 {
		t.Fatalf("source write leaked into clone: balance = %d", got.I)
	}
}

// TestRestoreRejectsBadImages pins Restore's validation: the VM must be
// left untouched on every rejected image.
func TestRestoreRejectsBadImages(t *testing.T) {
	reg := snapRegistry(t)
	cases := []struct {
		name  string
		state *vm.SnapshotState
	}{
		{"unknown class", &vm.SnapshotState{NextID: 2, Objects: []vm.SnapshotObject{
			{ID: 1, Class: "Ghost", Size: 8}}}},
		{"duplicate id", &vm.SnapshotState{NextID: 3, Objects: []vm.SnapshotObject{
			{ID: 1, Class: "Leaf", Size: 8}, {ID: 1, Class: "Leaf", Size: 8}}}},
		{"id above next", &vm.SnapshotState{NextID: 2, Objects: []vm.SnapshotObject{
			{ID: 5, Class: "Leaf", Size: 8}}}},
		{"dangling field ref", &vm.SnapshotState{NextID: 3, Objects: []vm.SnapshotObject{
			{ID: 1, Class: "Leaf", Size: 8, Fields: []vm.Value{vm.RefOf(2)}}}}},
		{"dangling root", &vm.SnapshotState{NextID: 2,
			Roots: []vm.SnapshotRoot{{Name: "r", ID: 1}}}},
		{"unknown static class", &vm.SnapshotState{NextID: 1,
			Statics: []vm.SnapshotStatic{{Class: "Ghost"}}}},
		{"dangling static ref", &vm.SnapshotState{NextID: 1,
			Statics: []vm.SnapshotStatic{{Class: "Account", Values: []vm.Value{vm.RefOf(9)}}}}},
		{"residual name/value mismatch", &vm.SnapshotState{NextID: 1,
			Residual: []vm.SnapshotResidual{{ID: 1, Names: []string{"a"}}}}},
		{"dangling residual ref", &vm.SnapshotState{NextID: 1,
			Residual: []vm.SnapshotResidual{{ID: 1, Names: []string{"a"},
				Values: []vm.Value{vm.RefOf(9)}}}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := vm.New(reg, vm.Config{HeapCapacity: 1 << 20})
			th := v.NewThread()
			keep, err := th.New("Leaf", 8)
			if err != nil {
				t.Fatal(err)
			}
			v.SetRoot("keep", keep)
			th.ClearTemps()
			before := Snapshot(v).Encode()
			if err := Restore(v, &Image{State: tc.state}); err == nil {
				t.Fatal("accepted")
			}
			if after := Snapshot(v).Encode(); !bytes.Equal(before, after) {
				t.Fatal("VM changed by rejected restore")
			}
		})
	}

	v := vm.New(reg, vm.Config{HeapCapacity: 1 << 20})
	if err := Restore(v, nil); err == nil {
		t.Fatal("nil image accepted")
	}
	if err := Restore(v, &Image{}); err == nil {
		t.Fatal("empty image accepted")
	}
	tiny := vm.New(reg, vm.Config{HeapCapacity: 16})
	big := &vm.SnapshotState{NextID: 2, Objects: []vm.SnapshotObject{
		{ID: 1, Class: "Leaf", Size: 1 << 20}}}
	if err := Restore(tiny, &Image{State: big}); !errors.Is(err, vm.ErrOutOfMemory) {
		t.Fatalf("oversized restore err = %v, want ErrOutOfMemory", err)
	}
}

// TestDecodeHostileInputs walks the decoder's rejection matrix: every
// corrupt frame must produce an error, never a panic or a silent
// misparse.
func TestDecodeHostileInputs(t *testing.T) {
	valid := goldenImage().Encode()
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad version", []byte{0x7f}},
		{"version only", []byte{1}},
		{"oversize object count", []byte{1, 1, 0xff, 0xff, 0xff, 0xff, 0x0f}},
		{"oversize root count", []byte{1, 1, 0, 0xff, 0xff, 0xff, 0xff, 0x0f}},
		{"oversize static count", []byte{1, 1, 0, 0, 0xff, 0xff, 0xff, 0xff, 0x0f}},
		{"oversize residual count", []byte{1, 1, 0, 0, 0, 0xff, 0xff, 0xff, 0xff, 0x0f}},
		{"oversize aux length", []byte{1, 1, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff, 0x0f}},
		{"truncated aux", []byte{1, 1, 0, 0, 0, 0, 4, 'x'}},
		{"trailing bytes", append(append([]byte(nil), goldenImage().Encode()...), 0)},
		// One object, valid header, then garbage where flags belong.
		{"unknown flag bits", []byte{1, 2, 1, 1, 1, 'A', 2, 0x80}},
		{"truncated flags", []byte{1, 2, 1, 1, 1, 'A', 2}},
		{"unknown value kind", []byte{1, 2, 1, 1, 1, 'A', 2, 8, 1, 0xee}},
		{"zero field count", []byte{1, 2, 1, 1, 1, 'A', 2, 8, 0}},
		{"zero export pin", []byte{1, 2, 1, 1, 1, 'A', 2, 2, 0}},
		{"zero lazy provenance", []byte{1, 2, 1, 1, 1, 'A', 2, 4, 0, 0}},
	}
	for i := 1; i < len(valid); i++ {
		cases = append(cases, struct {
			name string
			data []byte
		}{"truncated", valid[:i]})
	}
	for _, tc := range cases {
		img, err := Decode(tc.data)
		if err == nil {
			// Truncation can land exactly on a smaller valid image only if
			// the re-encode reproduces the input; anything else is a
			// misparse.
			if !bytes.Equal(img.Encode(), tc.data) {
				t.Errorf("%s (%d bytes): accepted non-canonical input", tc.name, len(tc.data))
			}
		}
	}
}
