// Package snapshot captures a VM's complete heap and class state as a
// deterministic, self-contained image: the object table with exact IDs,
// field values, roots, statics, lazy-migration residuals, and an opaque
// auxiliary blob (monitor heat travels there). The image has a versioned
// binary encoding with a byte-identical round-trip guarantee — encoding
// the restored state reproduces the original bytes exactly — pinned by
// golden tests.
//
// Copy-on-write: a snapshot copies object payloads once, at capture, and
// shares the immutable class state (the registry) by reference. Mutating
// the VM after Snapshot never changes the image, and restoring the image
// into several VMs (CloneVM) shares the class definitions between them.
//
// The image is the unit two platform features move around:
//
//   - speculative clone execution: the client keeps a clone of the
//     surrogate session's heap and, when the link degrades, races local
//     execution on the clone against the remote call — first result
//     wins, and on promotion the clone's state is the authoritative copy
//     (the remote copy is discarded wholesale, keeping the merge
//     exactly-once);
//   - live session handoff: a draining surrogate snapshots each session
//     and ships it to the destination surrogate, where the restore
//     preserves every object ID, so the client's stubs stay valid and
//     only its peer slot needs re-pointing.
package snapshot

import (
	"fmt"

	"aide/internal/vm"
)

// Image is one captured VM state plus an opaque auxiliary blob the
// platform uses for monitor heat. The zero Aux is valid (no heat).
type Image struct {
	State *vm.SnapshotState
	Aux   []byte
}

// Snapshot captures v's heap, roots, statics, and residual store. The
// image shares no mutable memory with the VM.
func Snapshot(v *vm.VM) *Image {
	return &Image{State: v.ExportSnapshot()}
}

// Restore replaces v's heap and class state with the image's, preserving
// object IDs exactly. Every class named by the image must exist in v's
// registry and the restored bytes must fit v's heap; on error v is
// unchanged. The image's Aux blob is the caller's to interpret.
func Restore(v *vm.VM, img *Image) error {
	if img == nil || img.State == nil {
		return fmt.Errorf("snapshot: restore: empty image")
	}
	return v.ImportSnapshot(img.State)
}

// CloneVM builds a new VM sharing src's class registry and carrying a
// copy of its heap state. Zero cfg fields inherit src's role, heap
// capacity, and CPU speed. The clone starts with no peers attached:
// operations on stubs fail until the caller attaches (or the platform
// treats the failure as a speculation miss).
func CloneVM(src *vm.VM, cfg vm.Config) (*vm.VM, error) {
	if cfg.Role == 0 {
		cfg.Role = src.Role()
	}
	if cfg.HeapCapacity == 0 {
		cfg.HeapCapacity = src.Heap().Capacity
	}
	if cfg.CPUSpeed == 0 {
		cfg.CPUSpeed = src.CPUSpeed()
	}
	clone := vm.New(src.Registry(), cfg)
	if err := clone.ImportSnapshot(src.ExportSnapshot()); err != nil {
		return nil, fmt.Errorf("snapshot: clone: %w", err)
	}
	return clone, nil
}
