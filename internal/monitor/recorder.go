package monitor

import (
	"aide/internal/trace"
	"aide/internal/vm"
	"time"
)

// Recorder captures a trace.Trace from the monitoring stream. The paper
// extracts traces from the prototype while running the application to
// completion on a single PC (paper §4); attach a Recorder to a Monitor on
// an unpartitioned VM to do the same.
//
// Recorder is not safe for concurrent use on its own; the owning Monitor
// serializes calls.
type Recorder struct {
	t       *trace.Trace
	classIx map[string]trace.ClassID
	meta    ClassMetaFunc
}

// NewRecorder returns a recorder for the named application. meta supplies
// pinned/array class metadata for the trace class table.
func NewRecorder(app string, heapCapacity int64, meta ClassMetaFunc) *Recorder {
	return &Recorder{
		t: &trace.Trace{
			App:          app,
			HeapCapacity: heapCapacity,
		},
		classIx: make(map[string]trace.ClassID),
		meta:    meta,
	}
}

// Trace returns the recorded trace.
func (r *Recorder) Trace() *trace.Trace { return r.t }

func (r *Recorder) class(name string) trace.ClassID {
	if id, ok := r.classIx[name]; ok {
		return id
	}
	id := trace.ClassID(len(r.t.Classes))
	info := trace.ClassInfo{Name: name}
	if r.meta != nil {
		m := r.meta(name)
		info.Pinned, info.Array, info.Stateless = m.Pinned, m.Array, m.Stateless
	}
	r.t.Classes = append(r.t.Classes, info)
	r.classIx[name] = id
	return id
}

func (r *Recorder) invoke(caller, callee string, obj vm.ObjectID, bytes int64, selfTime time.Duration, native, stateless bool) {
	callerID := trace.ClassID(-1)
	if caller != "" {
		callerID = r.class(caller)
	} else {
		callerID = r.class(callee) // self-sourced entry invocation
	}
	r.t.Events = append(r.t.Events, trace.Event{
		Kind:      trace.KindInvoke,
		Caller:    callerID,
		Callee:    r.class(callee),
		Obj:       trace.ObjectID(obj),
		Bytes:     bytes,
		SelfTime:  selfTime,
		Native:    native,
		Stateless: stateless,
	})
}

func (r *Recorder) access(from, to string, obj vm.ObjectID, bytes int64) {
	fromID := trace.ClassID(-1)
	if from != "" {
		fromID = r.class(from)
	} else {
		fromID = r.class(to)
	}
	r.t.Events = append(r.t.Events, trace.Event{
		Kind:   trace.KindAccess,
		Caller: fromID,
		Callee: r.class(to),
		Obj:    trace.ObjectID(obj),
		Bytes:  bytes,
	})
}

func (r *Recorder) create(class string, obj vm.ObjectID, size int64) {
	r.t.Events = append(r.t.Events, trace.Event{
		Kind:   trace.KindCreate,
		Callee: r.class(class),
		Obj:    trace.ObjectID(obj),
		Bytes:  size,
	})
}

func (r *Recorder) delete(class string, obj vm.ObjectID, size int64) {
	r.t.Events = append(r.t.Events, trace.Event{
		Kind:   trace.KindDelete,
		Callee: r.class(class),
		Obj:    trace.ObjectID(obj),
		Bytes:  size,
	})
}

func (r *Recorder) gc(free, capacity int64, freed bool) {
	r.t.Events = append(r.t.Events, trace.Event{
		Kind:     trace.KindGC,
		Free:     free,
		Capacity: capacity,
		Freed:    freed,
	})
}
